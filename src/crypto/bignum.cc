#include "crypto/bignum.h"

#include <algorithm>
#include <bit>
#include <cassert>

#include "crypto/drbg.h"

namespace aedb::crypto {

using u128 = unsigned __int128;

void BigNum::Normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigNum::BigNum(uint64_t v) {
  if (v != 0) limbs_.push_back(v);
}

BigNum BigNum::FromBytesBE(Slice bytes) {
  BigNum out;
  size_t n = bytes.size();
  out.limbs_.assign((n + 7) / 8, 0);
  for (size_t i = 0; i < n; ++i) {
    // bytes[n-1-i] is the i-th least significant byte.
    out.limbs_[i / 8] |= static_cast<uint64_t>(bytes[n - 1 - i]) << (8 * (i % 8));
  }
  out.Normalize();
  return out;
}

Result<BigNum> BigNum::FromHex(std::string_view hex) {
  Bytes raw;
  std::string padded(hex);
  if (padded.size() >= 2 && padded[0] == '0' && (padded[1] == 'x' || padded[1] == 'X')) {
    padded = padded.substr(2);
  }
  if (padded.size() % 2 != 0) padded = "0" + padded;
  AEDB_ASSIGN_OR_RETURN(raw, HexDecode(padded));
  return FromBytesBE(raw);
}

Bytes BigNum::ToBytesBE(size_t min_size) const {
  Bytes out;
  size_t nbytes = (BitLength() + 7) / 8;
  if (nbytes < min_size) nbytes = min_size;
  out.assign(nbytes, 0);
  for (size_t i = 0; i < nbytes; ++i) {
    size_t limb = i / 8;
    if (limb < limbs_.size()) {
      out[nbytes - 1 - i] = static_cast<uint8_t>(limbs_[limb] >> (8 * (i % 8)));
    }
  }
  return out;
}

std::string BigNum::ToHex() const {
  if (IsZero()) return "0";
  std::string s = HexEncode(ToBytesBE());
  size_t first = s.find_first_not_of('0');
  return first == std::string::npos ? "0" : s.substr(first);
}

size_t BigNum::BitLength() const {
  if (limbs_.empty()) return 0;
  return 64 * limbs_.size() - std::countl_zero(limbs_.back());
}

bool BigNum::Bit(size_t i) const {
  size_t limb = i / 64;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 64)) & 1;
}

int BigNum::Compare(const BigNum& other) const {
  if (limbs_.size() != other.limbs_.size()) {
    return limbs_.size() < other.limbs_.size() ? -1 : 1;
  }
  for (size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != other.limbs_[i]) return limbs_[i] < other.limbs_[i] ? -1 : 1;
  }
  return 0;
}

BigNum BigNum::operator+(const BigNum& o) const {
  BigNum out;
  size_t n = std::max(limbs_.size(), o.limbs_.size());
  out.limbs_.assign(n + 1, 0);
  uint64_t carry = 0;
  for (size_t i = 0; i < n; ++i) {
    u128 s = static_cast<u128>(i < limbs_.size() ? limbs_[i] : 0) +
             (i < o.limbs_.size() ? o.limbs_[i] : 0) + carry;
    out.limbs_[i] = static_cast<uint64_t>(s);
    carry = static_cast<uint64_t>(s >> 64);
  }
  out.limbs_[n] = carry;
  out.Normalize();
  return out;
}

BigNum BigNum::operator-(const BigNum& o) const {
  assert(*this >= o);
  BigNum out;
  out.limbs_.assign(limbs_.size(), 0);
  uint64_t borrow = 0;
  for (size_t i = 0; i < limbs_.size(); ++i) {
    uint64_t rhs = i < o.limbs_.size() ? o.limbs_[i] : 0;
    u128 d = static_cast<u128>(limbs_[i]) - rhs - borrow;
    out.limbs_[i] = static_cast<uint64_t>(d);
    borrow = static_cast<uint64_t>((d >> 64) & 1);
  }
  out.Normalize();
  return out;
}

BigNum BigNum::operator*(const BigNum& o) const {
  if (IsZero() || o.IsZero()) return BigNum();
  BigNum out;
  out.limbs_.assign(limbs_.size() + o.limbs_.size(), 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    uint64_t carry = 0;
    for (size_t j = 0; j < o.limbs_.size(); ++j) {
      u128 s = static_cast<u128>(limbs_[i]) * o.limbs_[j] +
               out.limbs_[i + j] + carry;
      out.limbs_[i + j] = static_cast<uint64_t>(s);
      carry = static_cast<uint64_t>(s >> 64);
    }
    out.limbs_[i + o.limbs_.size()] = carry;
  }
  out.Normalize();
  return out;
}

BigNum BigNum::operator<<(size_t bits) const {
  if (IsZero()) return BigNum();
  size_t limb_shift = bits / 64;
  size_t bit_shift = bits % 64;
  BigNum out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    out.limbs_[i + limb_shift] |= bit_shift == 0 ? limbs_[i] : (limbs_[i] << bit_shift);
    if (bit_shift != 0) {
      out.limbs_[i + limb_shift + 1] |= limbs_[i] >> (64 - bit_shift);
    }
  }
  out.Normalize();
  return out;
}

BigNum BigNum::operator>>(size_t bits) const {
  size_t limb_shift = bits / 64;
  size_t bit_shift = bits % 64;
  if (limb_shift >= limbs_.size()) return BigNum();
  BigNum out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (size_t i = 0; i < out.limbs_.size(); ++i) {
    uint64_t lo = limbs_[i + limb_shift];
    uint64_t hi = i + limb_shift + 1 < limbs_.size() ? limbs_[i + limb_shift + 1] : 0;
    out.limbs_[i] = bit_shift == 0 ? lo : ((lo >> bit_shift) | (hi << (64 - bit_shift)));
  }
  out.Normalize();
  return out;
}

Status BigNum::DivMod(const BigNum& u, const BigNum& v, BigNum* quotient,
                      BigNum* remainder) {
  if (v.IsZero()) return Status::InvalidArgument("division by zero");
  if (u < v) {
    if (quotient) *quotient = BigNum();
    if (remainder) *remainder = u;
    return Status::OK();
  }
  // Single-limb divisor fast path.
  if (v.limbs_.size() == 1) {
    uint64_t d = v.limbs_[0];
    BigNum q;
    q.limbs_.assign(u.limbs_.size(), 0);
    u128 rem = 0;
    for (size_t i = u.limbs_.size(); i-- > 0;) {
      u128 cur = (rem << 64) | u.limbs_[i];
      q.limbs_[i] = static_cast<uint64_t>(cur / d);
      rem = cur % d;
    }
    q.Normalize();
    if (quotient) *quotient = std::move(q);
    if (remainder) *remainder = BigNum(static_cast<uint64_t>(rem));
    return Status::OK();
  }

  // Knuth TAOCP Vol.2 Algorithm D.
  const size_t n = v.limbs_.size();
  const size_t m = u.limbs_.size() - n;
  const int s = std::countl_zero(v.limbs_.back());

  std::vector<uint64_t> vn(n), un(u.limbs_.size() + 1, 0);
  for (size_t i = n; i-- > 0;) {
    vn[i] = (v.limbs_[i] << s);
    if (s != 0 && i > 0) vn[i] |= v.limbs_[i - 1] >> (64 - s);
  }
  for (size_t i = u.limbs_.size(); i-- > 0;) {
    if (s != 0) {
      un[i + 1] |= u.limbs_[i] >> (64 - s);
      un[i] = u.limbs_[i] << s;
    } else {
      un[i] = u.limbs_[i];
    }
  }

  constexpr uint64_t kMaxDigit = ~static_cast<uint64_t>(0);
  BigNum q;
  q.limbs_.assign(m + 1, 0);
  for (size_t j = m + 1; j-- > 0;) {
    // Estimate the quotient digit from the top limbs, clamp it to the digit
    // range, refine with the classic two-limb test, and rely on a repeated
    // add-back to absorb any residual overestimate (at most 2).
    u128 num = (static_cast<u128>(un[j + n]) << 64) | un[j + n - 1];
    u128 qhat = num / vn[n - 1];
    u128 rhat = num % vn[n - 1];
    if (qhat > kMaxDigit) {
      qhat = kMaxDigit;
      rhat = num - qhat * vn[n - 1];
    }
    while ((rhat >> 64) == 0 &&
           qhat * vn[n - 2] > ((rhat << 64) | un[j + n - 2])) {
      qhat -= 1;
      rhat += vn[n - 1];
    }
    // Multiply and subtract: un[j..j+n] -= qhat * vn (two's complement on
    // n+1 limbs; a final borrow marks a negative result).
    u128 borrow = 0;
    u128 carry = 0;
    for (size_t i = 0; i < n; ++i) {
      u128 p = qhat * vn[i] + static_cast<uint64_t>(carry);
      carry = p >> 64;
      u128 d = static_cast<u128>(un[j + i]) - static_cast<uint64_t>(p) - borrow;
      un[j + i] = static_cast<uint64_t>(d);
      borrow = (d >> 64) & 1;
    }
    u128 d = static_cast<u128>(un[j + n]) - static_cast<uint64_t>(carry) - borrow;
    un[j + n] = static_cast<uint64_t>(d);
    bool negative = ((d >> 64) & 1) != 0;

    q.limbs_[j] = static_cast<uint64_t>(qhat);
    while (negative) {
      q.limbs_[j] -= 1;
      u128 c = 0;
      for (size_t i = 0; i < n; ++i) {
        u128 sum = static_cast<u128>(un[j + i]) + vn[i] + static_cast<uint64_t>(c);
        un[j + i] = static_cast<uint64_t>(sum);
        c = sum >> 64;
      }
      u128 top = static_cast<u128>(un[j + n]) + static_cast<uint64_t>(c);
      un[j + n] = static_cast<uint64_t>(top);
      // A carry out of the top limb cancels the earlier borrow.
      negative = (top >> 64) == 0;
    }
  }
  q.Normalize();
  if (quotient) *quotient = std::move(q);
  if (remainder) {
    BigNum r;
    r.limbs_.assign(n, 0);
    for (size_t i = 0; i < n; ++i) {
      r.limbs_[i] = un[i] >> s;
      if (s != 0 && i + 1 < un.size()) r.limbs_[i] |= un[i + 1] << (64 - s);
    }
    r.Normalize();
    *remainder = std::move(r);
  }
  return Status::OK();
}

BigNum BigNum::operator/(const BigNum& o) const {
  BigNum q;
  Status st = DivMod(*this, o, &q, nullptr);
  assert(st.ok());
  (void)st;
  return q;
}

BigNum BigNum::operator%(const BigNum& o) const {
  BigNum r;
  Status st = DivMod(*this, o, nullptr, &r);
  assert(st.ok());
  (void)st;
  return r;
}

// ---------------------------------------------------------------------------
// Montgomery arithmetic.

MontgomeryContext::MontgomeryContext(const BigNum& modulus) : modulus_(modulus) {
  assert(modulus.IsOdd());
  n_ = modulus.limbs_.size();
  // Newton iteration for inverse of modulus[0] mod 2^64.
  uint64_t m0 = modulus.limbs_[0];
  uint64_t x = 1;
  for (int i = 0; i < 6; ++i) x *= 2 - m0 * x;
  n0_inv_ = ~x + 1;  // -x mod 2^64
  // R^2 mod m, R = 2^(64 n).
  BigNum r2 = BigNum(1) << (64 * n_ * 2);
  r2_ = r2 % modulus_;
}

BigNum MontgomeryContext::MulMont(const BigNum& a, const BigNum& b) const {
  // CIOS: t has n_ + 2 limbs.
  std::vector<uint64_t> t(n_ + 2, 0);
  for (size_t i = 0; i < n_; ++i) {
    uint64_t ai = i < a.limbs_.size() ? a.limbs_[i] : 0;
    // t += ai * b
    u128 carry = 0;
    for (size_t j = 0; j < n_; ++j) {
      uint64_t bj = j < b.limbs_.size() ? b.limbs_[j] : 0;
      u128 s = static_cast<u128>(ai) * bj + t[j] + static_cast<uint64_t>(carry);
      t[j] = static_cast<uint64_t>(s);
      carry = s >> 64;
    }
    u128 s = static_cast<u128>(t[n_]) + static_cast<uint64_t>(carry);
    t[n_] = static_cast<uint64_t>(s);
    t[n_ + 1] = static_cast<uint64_t>(s >> 64);
    // m = t[0] * n0_inv mod 2^64; t = (t + m*mod) / 2^64
    uint64_t mfac = t[0] * n0_inv_;
    carry = (static_cast<u128>(mfac) * modulus_.limbs_[0] + t[0]) >> 64;
    for (size_t j = 1; j < n_; ++j) {
      u128 s2 = static_cast<u128>(mfac) * modulus_.limbs_[j] + t[j] +
                static_cast<uint64_t>(carry);
      t[j - 1] = static_cast<uint64_t>(s2);
      carry = s2 >> 64;
    }
    u128 s3 = static_cast<u128>(t[n_]) + static_cast<uint64_t>(carry);
    t[n_ - 1] = static_cast<uint64_t>(s3);
    t[n_] = t[n_ + 1] + static_cast<uint64_t>(s3 >> 64);
    t[n_ + 1] = 0;
  }
  BigNum out;
  out.limbs_.assign(t.begin(), t.begin() + n_);
  out.Normalize();
  if (t[n_] != 0 || out >= modulus_) out = out - modulus_;
  return out;
}

BigNum MontgomeryContext::ToMont(const BigNum& a) const {
  return MulMont(a, r2_);
}

BigNum MontgomeryContext::FromMont(const BigNum& a) const {
  return MulMont(a, BigNum(1));
}

BigNum BigNum::ModExp(const BigNum& base, const BigNum& exp, const BigNum& m) {
  if (m.IsZero()) return BigNum();
  if (m == BigNum(1)) return BigNum();
  BigNum b = base % m;
  if (exp.IsZero()) return BigNum(1);
  if (m.IsOdd()) {
    MontgomeryContext ctx(m);
    BigNum result = ctx.ToMont(BigNum(1));
    BigNum bm = ctx.ToMont(b);
    for (size_t i = exp.BitLength(); i-- > 0;) {
      result = ctx.MulMont(result, result);
      if (exp.Bit(i)) result = ctx.MulMont(result, bm);
    }
    return ctx.FromMont(result);
  }
  // Even modulus: square-and-multiply with divide-based reduction.
  BigNum result(1);
  for (size_t i = exp.BitLength(); i-- > 0;) {
    result = (result * result) % m;
    if (exp.Bit(i)) result = (result * b) % m;
  }
  return result;
}

Result<BigNum> BigNum::ModInverse(const BigNum& a, const BigNum& m) {
  if (m.IsZero()) return Status::InvalidArgument("zero modulus");
  // Extended Euclid with coefficients tracked as (value, negative) pairs.
  BigNum r0 = m, r1 = a % m;
  BigNum t0, t1(1);
  bool t0_neg = false, t1_neg = false;
  while (!r1.IsZero()) {
    BigNum q, r2;
    Status st = DivMod(r0, r1, &q, &r2);
    if (!st.ok()) return st;
    // t2 = t0 - q * t1 (signed)
    BigNum qt = q * t1;
    BigNum t2;
    bool t2_neg;
    if (t0_neg == t1_neg) {
      // t0 and q*t1 have the same sign: subtract magnitudes.
      if (t0 >= qt) {
        t2 = t0 - qt;
        t2_neg = t0_neg;
      } else {
        t2 = qt - t0;
        t2_neg = !t0_neg;
      }
    } else {
      t2 = t0 + qt;
      t2_neg = t0_neg;
    }
    r0 = std::move(r1);
    r1 = std::move(r2);
    t0 = std::move(t1);
    t0_neg = t1_neg;
    t1 = std::move(t2);
    t1_neg = t2_neg;
  }
  if (!(r0 == BigNum(1))) return Status::InvalidArgument("not invertible");
  if (t0_neg) return m - (t0 % m);
  return t0 % m;
}

BigNum BigNum::Gcd(BigNum a, BigNum b) {
  while (!b.IsZero()) {
    BigNum r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

BigNum BigNum::RandomBits(size_t bits, HmacDrbg* drbg) {
  assert(bits > 0);
  size_t nbytes = (bits + 7) / 8;
  Bytes raw = drbg->Generate(nbytes);
  size_t top_bits = bits % 8 == 0 ? 8 : bits % 8;
  raw[0] &= static_cast<uint8_t>((1u << top_bits) - 1);
  raw[0] |= static_cast<uint8_t>(1u << (top_bits - 1));
  return FromBytesBE(raw);
}

BigNum BigNum::RandomBelow(const BigNum& bound, HmacDrbg* drbg) {
  assert(!bound.IsZero());
  size_t bits = bound.BitLength();
  size_t nbytes = (bits + 7) / 8;
  size_t top_bits = bits % 8 == 0 ? 8 : bits % 8;
  for (;;) {
    Bytes raw = drbg->Generate(nbytes);
    raw[0] &= static_cast<uint8_t>((1u << top_bits) - 1);
    BigNum candidate = FromBytesBE(raw);
    if (candidate < bound) return candidate;
  }
}

namespace {
// Small primes for trial division before Miller-Rabin.
constexpr uint64_t kSmallPrimes[] = {
    3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,  47,  53,
    59,  61,  67,  71,  73,  79,  83,  89,  97,  101, 103, 107, 109, 113, 127,
    131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199,
    211, 223, 227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277, 281, 283};

uint64_t ModU64(const BigNum& n, uint64_t d) {
  Bytes be = n.ToBytesBE();
  u128 rem = 0;
  for (uint8_t byte : be) rem = ((rem << 8) | byte) % d;
  return static_cast<uint64_t>(rem);
}
}  // namespace

bool BigNum::IsProbablePrime(const BigNum& n, int rounds, HmacDrbg* drbg) {
  if (n < BigNum(2)) return false;
  if (n == BigNum(2)) return true;
  if (!n.IsOdd()) return false;
  for (uint64_t p : kSmallPrimes) {
    if (n == BigNum(p)) return true;
    if (ModU64(n, p) == 0) return false;
  }
  BigNum n_minus_1 = n - BigNum(1);
  BigNum d = n_minus_1;
  size_t r = 0;
  while (!d.IsOdd()) {
    d = d >> 1;
    ++r;
  }
  for (int round = 0; round < rounds; ++round) {
    BigNum a = BigNum(2) + RandomBelow(n - BigNum(4), drbg);
    BigNum x = ModExp(a, d, n);
    if (x == BigNum(1) || x == n_minus_1) continue;
    bool composite = true;
    for (size_t i = 0; i + 1 < r; ++i) {
      x = (x * x) % n;
      if (x == n_minus_1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

BigNum BigNum::GeneratePrime(size_t bits, HmacDrbg* drbg) {
  for (;;) {
    BigNum candidate = RandomBits(bits, drbg);
    if (!candidate.IsOdd()) candidate = candidate + BigNum(1);
    bool divisible = false;
    for (uint64_t p : kSmallPrimes) {
      if (ModU64(candidate, p) == 0) {
        divisible = true;
        break;
      }
    }
    if (divisible) continue;
    if (IsProbablePrime(candidate, 12, drbg)) return candidate;
  }
}

}  // namespace aedb::crypto
