#include "crypto/aes.h"

#include <cassert>
#include <cstring>

namespace aedb::crypto {

namespace {

// GF(2^8) multiply with the AES reduction polynomial x^8+x^4+x^3+x+1.
constexpr uint8_t GfMul(uint8_t a, uint8_t b) {
  uint8_t p = 0;
  for (int i = 0; i < 8; ++i) {
    if (b & 1) p ^= a;
    bool hi = a & 0x80;
    a = static_cast<uint8_t>(a << 1);
    if (hi) a ^= 0x1b;
    b >>= 1;
  }
  return p;
}

struct SboxTables {
  uint8_t sbox[256] = {};
  uint8_t inv_sbox[256] = {};
};

// Generates the S-box from first principles (multiplicative inverse followed
// by the affine transform) instead of a hand-typed table.
constexpr SboxTables MakeSboxTables() {
  SboxTables t{};
  // Multiplicative inverses by brute force; inv(0) = 0 by convention.
  uint8_t inv[256] = {};
  for (int a = 1; a < 256; ++a) {
    for (int b = 1; b < 256; ++b) {
      if (GfMul(static_cast<uint8_t>(a), static_cast<uint8_t>(b)) == 1) {
        inv[a] = static_cast<uint8_t>(b);
        break;
      }
    }
  }
  for (int i = 0; i < 256; ++i) {
    uint8_t x = inv[i];
    uint8_t y = static_cast<uint8_t>(
        x ^ static_cast<uint8_t>((x << 1) | (x >> 7)) ^
        static_cast<uint8_t>((x << 2) | (x >> 6)) ^
        static_cast<uint8_t>((x << 3) | (x >> 5)) ^
        static_cast<uint8_t>((x << 4) | (x >> 4)) ^ 0x63);
    t.sbox[i] = y;
    t.inv_sbox[y] = static_cast<uint8_t>(i);
  }
  return t;
}

constexpr SboxTables kTables = MakeSboxTables();

// T-tables fusing SubBytes + ShiftRows + MixColumns into four 256-entry word
// lookups per state column (the classic software formulation). Generated at
// compile time from the same GF(2^8) arithmetic as the S-box: Te0[x] packs
// the MixColumns contribution of S[x] landing in row 0 of a column —
// (2·S, S, S, 3·S) big-endian — and Te1..Te3 are its byte rotations. The
// decryption tables Td0..Td3 pack InvMixColumns of InvS[x]: (14, 9, 13, 11).
struct RoundTables {
  uint32_t te[4][256] = {};
  uint32_t td[4][256] = {};
};

constexpr uint32_t Ror8(uint32_t w) { return (w >> 8) | (w << 24); }

constexpr RoundTables MakeRoundTables() {
  RoundTables t{};
  for (int x = 0; x < 256; ++x) {
    uint8_t s = kTables.sbox[x];
    uint32_t e = (static_cast<uint32_t>(GfMul(s, 2)) << 24) |
                 (static_cast<uint32_t>(s) << 16) |
                 (static_cast<uint32_t>(s) << 8) |
                 static_cast<uint32_t>(GfMul(s, 3));
    uint8_t is = kTables.inv_sbox[x];
    uint32_t d = (static_cast<uint32_t>(GfMul(is, 14)) << 24) |
                 (static_cast<uint32_t>(GfMul(is, 9)) << 16) |
                 (static_cast<uint32_t>(GfMul(is, 13)) << 8) |
                 static_cast<uint32_t>(GfMul(is, 11));
    for (int r = 0; r < 4; ++r) {
      t.te[r][x] = e;
      t.td[r][x] = d;
      e = Ror8(e);
      d = Ror8(d);
    }
  }
  return t;
}

constexpr RoundTables kRound = MakeRoundTables();

constexpr uint8_t kRcon[15] = {0x00, 0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40,
                               0x80, 0x1b, 0x36, 0x6c, 0xd8, 0xab, 0x4d};

inline uint32_t SubWord(uint32_t w) {
  return (static_cast<uint32_t>(kTables.sbox[(w >> 24) & 0xff]) << 24) |
         (static_cast<uint32_t>(kTables.sbox[(w >> 16) & 0xff]) << 16) |
         (static_cast<uint32_t>(kTables.sbox[(w >> 8) & 0xff]) << 8) |
         static_cast<uint32_t>(kTables.sbox[w & 0xff]);
}

inline uint32_t RotWord(uint32_t w) { return (w << 8) | (w >> 24); }

// InvMixColumns of one packed column, via the decryption tables: Td_r[S[a]]
// is exactly the InvMixColumns contribution of byte a at row r.
inline uint32_t InvMixColumn(uint32_t w) {
  return kRound.td[0][kTables.sbox[(w >> 24) & 0xff]] ^
         kRound.td[1][kTables.sbox[(w >> 16) & 0xff]] ^
         kRound.td[2][kTables.sbox[(w >> 8) & 0xff]] ^
         kRound.td[3][kTables.sbox[w & 0xff]];
}

inline uint32_t LoadBe32(const uint8_t* p) {
  return (static_cast<uint32_t>(p[0]) << 24) |
         (static_cast<uint32_t>(p[1]) << 16) |
         (static_cast<uint32_t>(p[2]) << 8) | static_cast<uint32_t>(p[3]);
}

inline void StoreBe32(uint8_t* p, uint32_t w) {
  p[0] = static_cast<uint8_t>(w >> 24);
  p[1] = static_cast<uint8_t>(w >> 16);
  p[2] = static_cast<uint8_t>(w >> 8);
  p[3] = static_cast<uint8_t>(w);
}

}  // namespace

Aes256::Aes256(Slice key) {
  assert(key.size() == kKeySize);
  constexpr int nk = 8;
  constexpr int nw = 4 * (kRounds + 1);
  for (int i = 0; i < nk; ++i) {
    round_keys_[i] = LoadBe32(key.data() + 4 * i);
  }
  for (int i = nk; i < nw; ++i) {
    uint32_t temp = round_keys_[i - 1];
    if (i % nk == 0) {
      temp = SubWord(RotWord(temp)) ^
             (static_cast<uint32_t>(kRcon[i / nk]) << 24);
    } else if (i % nk == 4) {
      temp = SubWord(temp);
    }
    round_keys_[i] = round_keys_[i - nk] ^ temp;
  }
  // Equivalent inverse cipher: reverse the schedule and push the middle round
  // keys through InvMixColumns so DecryptBlock can reuse the T-table shape.
  for (int c = 0; c < 4; ++c) {
    dec_round_keys_[c] = round_keys_[4 * kRounds + c];
    dec_round_keys_[4 * kRounds + c] = round_keys_[c];
  }
  for (int round = 1; round < kRounds; ++round) {
    for (int c = 0; c < 4; ++c) {
      dec_round_keys_[4 * round + c] =
          InvMixColumn(round_keys_[4 * (kRounds - round) + c]);
    }
  }
}

void Aes256::EncryptBlock(const uint8_t in[kBlockSize],
                          uint8_t out[kBlockSize]) const {
  const uint32_t* rk = round_keys_;
  uint32_t s0 = LoadBe32(in) ^ rk[0];
  uint32_t s1 = LoadBe32(in + 4) ^ rk[1];
  uint32_t s2 = LoadBe32(in + 8) ^ rk[2];
  uint32_t s3 = LoadBe32(in + 12) ^ rk[3];
  for (int round = 1; round < kRounds; ++round) {
    rk += 4;
    uint32_t t0 = kRound.te[0][s0 >> 24] ^ kRound.te[1][(s1 >> 16) & 0xff] ^
                  kRound.te[2][(s2 >> 8) & 0xff] ^ kRound.te[3][s3 & 0xff] ^
                  rk[0];
    uint32_t t1 = kRound.te[0][s1 >> 24] ^ kRound.te[1][(s2 >> 16) & 0xff] ^
                  kRound.te[2][(s3 >> 8) & 0xff] ^ kRound.te[3][s0 & 0xff] ^
                  rk[1];
    uint32_t t2 = kRound.te[0][s2 >> 24] ^ kRound.te[1][(s3 >> 16) & 0xff] ^
                  kRound.te[2][(s0 >> 8) & 0xff] ^ kRound.te[3][s1 & 0xff] ^
                  rk[2];
    uint32_t t3 = kRound.te[0][s3 >> 24] ^ kRound.te[1][(s0 >> 16) & 0xff] ^
                  kRound.te[2][(s1 >> 8) & 0xff] ^ kRound.te[3][s2 & 0xff] ^
                  rk[3];
    s0 = t0;
    s1 = t1;
    s2 = t2;
    s3 = t3;
  }
  rk += 4;
  const uint8_t* sb = kTables.sbox;
  StoreBe32(out, ((static_cast<uint32_t>(sb[s0 >> 24]) << 24) |
                  (static_cast<uint32_t>(sb[(s1 >> 16) & 0xff]) << 16) |
                  (static_cast<uint32_t>(sb[(s2 >> 8) & 0xff]) << 8) |
                  static_cast<uint32_t>(sb[s3 & 0xff])) ^
                     rk[0]);
  StoreBe32(out + 4, ((static_cast<uint32_t>(sb[s1 >> 24]) << 24) |
                      (static_cast<uint32_t>(sb[(s2 >> 16) & 0xff]) << 16) |
                      (static_cast<uint32_t>(sb[(s3 >> 8) & 0xff]) << 8) |
                      static_cast<uint32_t>(sb[s0 & 0xff])) ^
                         rk[1]);
  StoreBe32(out + 8, ((static_cast<uint32_t>(sb[s2 >> 24]) << 24) |
                      (static_cast<uint32_t>(sb[(s3 >> 16) & 0xff]) << 16) |
                      (static_cast<uint32_t>(sb[(s0 >> 8) & 0xff]) << 8) |
                      static_cast<uint32_t>(sb[s1 & 0xff])) ^
                         rk[2]);
  StoreBe32(out + 12, ((static_cast<uint32_t>(sb[s3 >> 24]) << 24) |
                       (static_cast<uint32_t>(sb[(s0 >> 16) & 0xff]) << 16) |
                       (static_cast<uint32_t>(sb[(s1 >> 8) & 0xff]) << 8) |
                       static_cast<uint32_t>(sb[s2 & 0xff])) ^
                          rk[3]);
}

void Aes256::DecryptBlock(const uint8_t in[kBlockSize],
                          uint8_t out[kBlockSize]) const {
  const uint32_t* rk = dec_round_keys_;
  uint32_t s0 = LoadBe32(in) ^ rk[0];
  uint32_t s1 = LoadBe32(in + 4) ^ rk[1];
  uint32_t s2 = LoadBe32(in + 8) ^ rk[2];
  uint32_t s3 = LoadBe32(in + 12) ^ rk[3];
  for (int round = 1; round < kRounds; ++round) {
    rk += 4;
    uint32_t t0 = kRound.td[0][s0 >> 24] ^ kRound.td[1][(s3 >> 16) & 0xff] ^
                  kRound.td[2][(s2 >> 8) & 0xff] ^ kRound.td[3][s1 & 0xff] ^
                  rk[0];
    uint32_t t1 = kRound.td[0][s1 >> 24] ^ kRound.td[1][(s0 >> 16) & 0xff] ^
                  kRound.td[2][(s3 >> 8) & 0xff] ^ kRound.td[3][s2 & 0xff] ^
                  rk[1];
    uint32_t t2 = kRound.td[0][s2 >> 24] ^ kRound.td[1][(s1 >> 16) & 0xff] ^
                  kRound.td[2][(s0 >> 8) & 0xff] ^ kRound.td[3][s3 & 0xff] ^
                  rk[2];
    uint32_t t3 = kRound.td[0][s3 >> 24] ^ kRound.td[1][(s2 >> 16) & 0xff] ^
                  kRound.td[2][(s1 >> 8) & 0xff] ^ kRound.td[3][s0 & 0xff] ^
                  rk[3];
    s0 = t0;
    s1 = t1;
    s2 = t2;
    s3 = t3;
  }
  rk += 4;
  const uint8_t* isb = kTables.inv_sbox;
  StoreBe32(out, ((static_cast<uint32_t>(isb[s0 >> 24]) << 24) |
                  (static_cast<uint32_t>(isb[(s3 >> 16) & 0xff]) << 16) |
                  (static_cast<uint32_t>(isb[(s2 >> 8) & 0xff]) << 8) |
                  static_cast<uint32_t>(isb[s1 & 0xff])) ^
                     rk[0]);
  StoreBe32(out + 4, ((static_cast<uint32_t>(isb[s1 >> 24]) << 24) |
                      (static_cast<uint32_t>(isb[(s0 >> 16) & 0xff]) << 16) |
                      (static_cast<uint32_t>(isb[(s3 >> 8) & 0xff]) << 8) |
                      static_cast<uint32_t>(isb[s2 & 0xff])) ^
                         rk[1]);
  StoreBe32(out + 8, ((static_cast<uint32_t>(isb[s2 >> 24]) << 24) |
                      (static_cast<uint32_t>(isb[(s1 >> 16) & 0xff]) << 16) |
                      (static_cast<uint32_t>(isb[(s0 >> 8) & 0xff]) << 8) |
                      static_cast<uint32_t>(isb[s3 & 0xff])) ^
                         rk[2]);
  StoreBe32(out + 12, ((static_cast<uint32_t>(isb[s3 >> 24]) << 24) |
                       (static_cast<uint32_t>(isb[(s2 >> 16) & 0xff]) << 16) |
                       (static_cast<uint32_t>(isb[(s1 >> 8) & 0xff]) << 8) |
                       static_cast<uint32_t>(isb[s0 & 0xff])) ^
                          rk[3]);
}

}  // namespace aedb::crypto
