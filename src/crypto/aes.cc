#include "crypto/aes.h"

#include <cassert>
#include <cstring>

namespace aedb::crypto {

namespace {

// GF(2^8) multiply with the AES reduction polynomial x^8+x^4+x^3+x+1.
constexpr uint8_t GfMul(uint8_t a, uint8_t b) {
  uint8_t p = 0;
  for (int i = 0; i < 8; ++i) {
    if (b & 1) p ^= a;
    bool hi = a & 0x80;
    a = static_cast<uint8_t>(a << 1);
    if (hi) a ^= 0x1b;
    b >>= 1;
  }
  return p;
}

struct SboxTables {
  uint8_t sbox[256] = {};
  uint8_t inv_sbox[256] = {};
};

// Generates the S-box from first principles (multiplicative inverse followed
// by the affine transform) instead of a hand-typed table.
constexpr SboxTables MakeSboxTables() {
  SboxTables t{};
  // Multiplicative inverses by brute force; inv(0) = 0 by convention.
  uint8_t inv[256] = {};
  for (int a = 1; a < 256; ++a) {
    for (int b = 1; b < 256; ++b) {
      if (GfMul(static_cast<uint8_t>(a), static_cast<uint8_t>(b)) == 1) {
        inv[a] = static_cast<uint8_t>(b);
        break;
      }
    }
  }
  for (int i = 0; i < 256; ++i) {
    uint8_t x = inv[i];
    uint8_t y = static_cast<uint8_t>(
        x ^ static_cast<uint8_t>((x << 1) | (x >> 7)) ^
        static_cast<uint8_t>((x << 2) | (x >> 6)) ^
        static_cast<uint8_t>((x << 3) | (x >> 5)) ^
        static_cast<uint8_t>((x << 4) | (x >> 4)) ^ 0x63);
    t.sbox[i] = y;
    t.inv_sbox[y] = static_cast<uint8_t>(i);
  }
  return t;
}

constexpr SboxTables kTables = MakeSboxTables();

constexpr uint8_t kRcon[15] = {0x00, 0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40,
                               0x80, 0x1b, 0x36, 0x6c, 0xd8, 0xab, 0x4d};

inline uint32_t SubWord(uint32_t w) {
  return (static_cast<uint32_t>(kTables.sbox[(w >> 24) & 0xff]) << 24) |
         (static_cast<uint32_t>(kTables.sbox[(w >> 16) & 0xff]) << 16) |
         (static_cast<uint32_t>(kTables.sbox[(w >> 8) & 0xff]) << 8) |
         static_cast<uint32_t>(kTables.sbox[w & 0xff]);
}

inline uint32_t RotWord(uint32_t w) { return (w << 8) | (w >> 24); }

inline void AddRoundKey(uint8_t state[16], const uint32_t* rk) {
  for (int c = 0; c < 4; ++c) {
    state[4 * c] ^= static_cast<uint8_t>(rk[c] >> 24);
    state[4 * c + 1] ^= static_cast<uint8_t>(rk[c] >> 16);
    state[4 * c + 2] ^= static_cast<uint8_t>(rk[c] >> 8);
    state[4 * c + 3] ^= static_cast<uint8_t>(rk[c]);
  }
}

inline void SubBytes(uint8_t state[16]) {
  for (int i = 0; i < 16; ++i) state[i] = kTables.sbox[state[i]];
}

inline void InvSubBytes(uint8_t state[16]) {
  for (int i = 0; i < 16; ++i) state[i] = kTables.inv_sbox[state[i]];
}

// State layout: state[4*c + r] = byte at row r, column c (column-major, as in
// FIPS 197's one-dimensional input ordering).
inline void ShiftRows(uint8_t s[16]) {
  uint8_t t;
  // Row 1: shift left by 1.
  t = s[1]; s[1] = s[5]; s[5] = s[9]; s[9] = s[13]; s[13] = t;
  // Row 2: shift left by 2.
  t = s[2]; s[2] = s[10]; s[10] = t;
  t = s[6]; s[6] = s[14]; s[14] = t;
  // Row 3: shift left by 3 (== right by 1).
  t = s[15]; s[15] = s[11]; s[11] = s[7]; s[7] = s[3]; s[3] = t;
}

inline void InvShiftRows(uint8_t s[16]) {
  uint8_t t;
  t = s[13]; s[13] = s[9]; s[9] = s[5]; s[5] = s[1]; s[1] = t;
  t = s[2]; s[2] = s[10]; s[10] = t;
  t = s[6]; s[6] = s[14]; s[14] = t;
  t = s[3]; s[3] = s[7]; s[7] = s[11]; s[11] = s[15]; s[15] = t;
}

inline void MixColumns(uint8_t s[16]) {
  for (int c = 0; c < 4; ++c) {
    uint8_t* col = s + 4 * c;
    uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
    col[0] = GfMul(a0, 2) ^ GfMul(a1, 3) ^ a2 ^ a3;
    col[1] = a0 ^ GfMul(a1, 2) ^ GfMul(a2, 3) ^ a3;
    col[2] = a0 ^ a1 ^ GfMul(a2, 2) ^ GfMul(a3, 3);
    col[3] = GfMul(a0, 3) ^ a1 ^ a2 ^ GfMul(a3, 2);
  }
}

inline void InvMixColumns(uint8_t s[16]) {
  for (int c = 0; c < 4; ++c) {
    uint8_t* col = s + 4 * c;
    uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
    col[0] = GfMul(a0, 14) ^ GfMul(a1, 11) ^ GfMul(a2, 13) ^ GfMul(a3, 9);
    col[1] = GfMul(a0, 9) ^ GfMul(a1, 14) ^ GfMul(a2, 11) ^ GfMul(a3, 13);
    col[2] = GfMul(a0, 13) ^ GfMul(a1, 9) ^ GfMul(a2, 14) ^ GfMul(a3, 11);
    col[3] = GfMul(a0, 11) ^ GfMul(a1, 13) ^ GfMul(a2, 9) ^ GfMul(a3, 14);
  }
}

}  // namespace

Aes256::Aes256(Slice key) {
  assert(key.size() == kKeySize);
  constexpr int nk = 8;
  constexpr int nw = 4 * (kRounds + 1);
  for (int i = 0; i < nk; ++i) {
    round_keys_[i] = (static_cast<uint32_t>(key[4 * i]) << 24) |
                     (static_cast<uint32_t>(key[4 * i + 1]) << 16) |
                     (static_cast<uint32_t>(key[4 * i + 2]) << 8) |
                     static_cast<uint32_t>(key[4 * i + 3]);
  }
  for (int i = nk; i < nw; ++i) {
    uint32_t temp = round_keys_[i - 1];
    if (i % nk == 0) {
      temp = SubWord(RotWord(temp)) ^
             (static_cast<uint32_t>(kRcon[i / nk]) << 24);
    } else if (i % nk == 4) {
      temp = SubWord(temp);
    }
    round_keys_[i] = round_keys_[i - nk] ^ temp;
  }
}

void Aes256::EncryptBlock(const uint8_t in[kBlockSize],
                          uint8_t out[kBlockSize]) const {
  uint8_t state[16];
  std::memcpy(state, in, 16);
  AddRoundKey(state, round_keys_);
  for (int round = 1; round < kRounds; ++round) {
    SubBytes(state);
    ShiftRows(state);
    MixColumns(state);
    AddRoundKey(state, round_keys_ + 4 * round);
  }
  SubBytes(state);
  ShiftRows(state);
  AddRoundKey(state, round_keys_ + 4 * kRounds);
  std::memcpy(out, state, 16);
}

void Aes256::DecryptBlock(const uint8_t in[kBlockSize],
                          uint8_t out[kBlockSize]) const {
  uint8_t state[16];
  std::memcpy(state, in, 16);
  AddRoundKey(state, round_keys_ + 4 * kRounds);
  for (int round = kRounds - 1; round >= 1; --round) {
    InvShiftRows(state);
    InvSubBytes(state);
    AddRoundKey(state, round_keys_ + 4 * round);
    InvMixColumns(state);
  }
  InvShiftRows(state);
  InvSubBytes(state);
  AddRoundKey(state, round_keys_);
  std::memcpy(out, state, 16);
}

}  // namespace aedb::crypto
