#ifndef AEDB_CRYPTO_CBC_H_
#define AEDB_CRYPTO_CBC_H_

#include "common/bytes.h"
#include "common/result.h"
#include "crypto/aes.h"

namespace aedb::crypto {

/// AES-256-CBC with PKCS#7 padding. `iv` must be 16 bytes.
Bytes CbcEncrypt(const Aes256& cipher, Slice iv, Slice plaintext);

/// Decrypts and strips PKCS#7 padding; fails with Corruption on bad padding.
Result<Bytes> CbcDecrypt(const Aes256& cipher, Slice iv, Slice ciphertext);

}  // namespace aedb::crypto

#endif  // AEDB_CRYPTO_CBC_H_
