#ifndef AEDB_CRYPTO_HMAC_H_
#define AEDB_CRYPTO_HMAC_H_

#include "common/bytes.h"
#include "crypto/sha256.h"

namespace aedb::crypto {

/// Incremental HMAC-SHA-256 (RFC 2104).
class HmacSha256 {
 public:
  static constexpr size_t kDigestSize = Sha256::kDigestSize;

  explicit HmacSha256(Slice key);

  void Update(Slice data);
  Bytes Finish();

  /// One-shot convenience.
  static Bytes Mac(Slice key, Slice data);

 private:
  uint8_t opad_key_[Sha256::kBlockSize];
  Sha256 inner_;
};

}  // namespace aedb::crypto

#endif  // AEDB_CRYPTO_HMAC_H_
