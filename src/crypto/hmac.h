#ifndef AEDB_CRYPTO_HMAC_H_
#define AEDB_CRYPTO_HMAC_H_

#include "common/bytes.h"
#include "crypto/sha256.h"

namespace aedb::crypto {

/// Incremental HMAC-SHA-256 (RFC 2104). Copyable: the constructor absorbs
/// the ipad/opad key blocks into SHA midstates, so a keyed instance can be
/// kept as a prototype and copied per message — hot paths (cell MAC checks)
/// then skip the two key-block compressions entirely.
class HmacSha256 {
 public:
  static constexpr size_t kDigestSize = Sha256::kDigestSize;

  explicit HmacSha256(Slice key);

  void Update(Slice data);
  Bytes Finish();

  /// One-shot convenience.
  static Bytes Mac(Slice key, Slice data);

 private:
  Sha256 inner_;        // keyed with the ipad block, then fed message data
  Sha256 outer_keyed_;  // midstate after the opad block, copied in Finish
};

}  // namespace aedb::crypto

#endif  // AEDB_CRYPTO_HMAC_H_
