#include "crypto/cell_codec.h"

#include <cassert>

#include "crypto/cbc.h"
#include "crypto/drbg.h"
#include "crypto/hmac.h"

namespace aedb::crypto {

namespace {

// Derivation labels mirror the product's (MS-TDS documented) strings.
constexpr std::string_view kEncLabel =
    "Microsoft SQL Server cell encryption key with encryption algorithm:"
    "AEAD_AES_256_CBC_HMAC_SHA_256 and key length:256";
constexpr std::string_view kMacLabel =
    "Microsoft SQL Server cell MAC key with encryption algorithm:"
    "AEAD_AES_256_CBC_HMAC_SHA_256 and key length:256";
constexpr std::string_view kIvLabel =
    "Microsoft SQL Server cell IV key with encryption algorithm:"
    "AEAD_AES_256_CBC_HMAC_SHA_256 and key length:256";

Bytes DeriveKey(Slice cek, std::string_view label) {
  return HmacSha256::Mac(cek, Utf16LeBytes(label));
}

}  // namespace

const char* EncryptionSchemeName(EncryptionScheme scheme) {
  switch (scheme) {
    case EncryptionScheme::kDeterministic: return "Deterministic";
    case EncryptionScheme::kRandomized: return "Randomized";
  }
  return "Unknown";
}

CellCodec::CellCodec(Slice cek)
    : enc_cipher_(Slice(DeriveKey(cek, kEncLabel))),
      mac_key_(DeriveKey(cek, kMacLabel)),
      iv_key_(DeriveKey(cek, kIvLabel)),
      mac_proto_(Slice(mac_key_)) {
  assert(cek.size() == 32);
}

Bytes CellCodec::ComputeMac(Slice iv, Slice ciphertext) const {
  HmacSha256 mac = mac_proto_;
  uint8_t version = kAlgorithmVersion;
  mac.Update(Slice(&version, 1));
  mac.Update(iv);
  mac.Update(ciphertext);
  return mac.Finish();
}

Bytes CellCodec::Encrypt(Slice plaintext, EncryptionScheme scheme) const {
  Bytes iv;
  if (scheme == EncryptionScheme::kDeterministic) {
    // IV = HMAC(iv_key, plaintext) truncated to the block size: whole-value
    // determinism (paper §2.3 — stronger than per-block ECB determinism).
    iv = HmacSha256::Mac(iv_key_, plaintext);
    iv.resize(kIvSize);
  } else {
    iv = SecureRandom(kIvSize);
  }
  Bytes ciphertext = CbcEncrypt(enc_cipher_, iv, plaintext);
  Bytes mac = ComputeMac(iv, ciphertext);

  Bytes cell;
  cell.reserve(1 + mac.size() + iv.size() + ciphertext.size());
  cell.push_back(kAlgorithmVersion);
  cell.insert(cell.end(), mac.begin(), mac.end());
  cell.insert(cell.end(), iv.begin(), iv.end());
  cell.insert(cell.end(), ciphertext.begin(), ciphertext.end());
  return cell;
}

Result<Bytes> CellCodec::Decrypt(Slice cell) const {
  if (cell.size() < kMinCellSize) {
    return Status::Corruption("encrypted cell too short");
  }
  if (cell[0] != kAlgorithmVersion) {
    return Status::Corruption("unknown cell algorithm version");
  }
  Slice mac = cell.subslice(1, kMacSize);
  Slice iv = cell.subslice(1 + kMacSize, kIvSize);
  Slice ciphertext = cell.subslice(1 + kMacSize + kIvSize,
                                   cell.size() - 1 - kMacSize - kIvSize);
  Bytes expected = ComputeMac(iv, ciphertext);
  if (!ConstantTimeEquals(mac, expected)) {
    return Status::SecurityError("cell MAC verification failed");
  }
  return CbcDecrypt(enc_cipher_, iv, ciphertext);
}

}  // namespace aedb::crypto
