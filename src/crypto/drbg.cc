#include "crypto/drbg.h"

#include <cstring>
#include <random>

#include "crypto/hmac.h"

namespace aedb::crypto {

HmacDrbg::HmacDrbg(Slice entropy, Slice personalization) {
  key_.assign(HmacSha256::kDigestSize, 0x00);
  v_.assign(HmacSha256::kDigestSize, 0x01);
  Bytes seed(entropy.data(), entropy.data() + entropy.size());
  seed.insert(seed.end(), personalization.data(),
              personalization.data() + personalization.size());
  UpdateState(seed);
}

void HmacDrbg::UpdateState(Slice provided) {
  // K = HMAC(K, V || 0x00 || provided); V = HMAC(K, V)
  HmacSha256 h0(key_);
  h0.Update(v_);
  uint8_t zero = 0x00;
  h0.Update(Slice(&zero, 1));
  h0.Update(provided);
  key_ = h0.Finish();
  v_ = HmacSha256::Mac(key_, v_);
  if (!provided.empty()) {
    HmacSha256 h1(key_);
    h1.Update(v_);
    uint8_t one = 0x01;
    h1.Update(Slice(&one, 1));
    h1.Update(provided);
    key_ = h1.Finish();
    v_ = HmacSha256::Mac(key_, v_);
  }
}

void HmacDrbg::Generate(uint8_t* out, size_t n) {
  size_t produced = 0;
  while (produced < n) {
    v_ = HmacSha256::Mac(key_, v_);
    size_t take = n - produced < v_.size() ? n - produced : v_.size();
    std::memcpy(out + produced, v_.data(), take);
    produced += take;
  }
  UpdateState(Slice());
}

Bytes HmacDrbg::Generate(size_t n) {
  Bytes out(n);
  Generate(out.data(), n);
  return out;
}

void HmacDrbg::Reseed(Slice entropy) { UpdateState(entropy); }

namespace {
HmacDrbg MakeThreadDrbg() {
  std::random_device rd;
  Bytes entropy(48);
  for (size_t i = 0; i < entropy.size(); i += 4) {
    uint32_t r = rd();
    std::memcpy(entropy.data() + i, &r, 4);
  }
  return HmacDrbg(entropy, Slice(std::string_view("aedb-secure-random")));
}
}  // namespace

void SecureRandom(uint8_t* out, size_t n) {
  thread_local HmacDrbg drbg = MakeThreadDrbg();
  drbg.Generate(out, n);
}

Bytes SecureRandom(size_t n) {
  Bytes out(n);
  SecureRandom(out.data(), n);
  return out;
}

}  // namespace aedb::crypto
