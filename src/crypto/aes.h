#ifndef AEDB_CRYPTO_AES_H_
#define AEDB_CRYPTO_AES_H_

#include <cstdint>

#include "common/bytes.h"

namespace aedb::crypto {

/// AES-256 block cipher (FIPS 197). Only the 256-bit key size is supported,
/// matching the paper's AEAD_AES_256_CBC_HMAC_SHA_256 cell algorithm.
class Aes256 {
 public:
  static constexpr size_t kBlockSize = 16;
  static constexpr size_t kKeySize = 32;
  static constexpr int kRounds = 14;

  /// `key` must be exactly 32 bytes; the constructor expands the round keys.
  explicit Aes256(Slice key);

  void EncryptBlock(const uint8_t in[kBlockSize], uint8_t out[kBlockSize]) const;
  void DecryptBlock(const uint8_t in[kBlockSize], uint8_t out[kBlockSize]) const;

 private:
  uint32_t round_keys_[4 * (kRounds + 1)];
  /// Equivalent-inverse-cipher schedule (InvMixColumns applied to the middle
  /// encryption round keys) so decryption can run on the same T-table shape.
  uint32_t dec_round_keys_[4 * (kRounds + 1)];
};

}  // namespace aedb::crypto

#endif  // AEDB_CRYPTO_AES_H_
