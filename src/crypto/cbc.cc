#include "crypto/cbc.h"

#include <cassert>
#include <cstring>

namespace aedb::crypto {

Bytes CbcEncrypt(const Aes256& cipher, Slice iv, Slice plaintext) {
  assert(iv.size() == Aes256::kBlockSize);
  const size_t block = Aes256::kBlockSize;
  size_t pad = block - (plaintext.size() % block);
  size_t total = plaintext.size() + pad;
  Bytes out(total);

  uint8_t chain[Aes256::kBlockSize];
  std::memcpy(chain, iv.data(), block);
  uint8_t buf[Aes256::kBlockSize];
  for (size_t off = 0; off < total; off += block) {
    for (size_t i = 0; i < block; ++i) {
      size_t idx = off + i;
      uint8_t pt = idx < plaintext.size() ? plaintext[idx]
                                          : static_cast<uint8_t>(pad);
      buf[i] = pt ^ chain[i];
    }
    cipher.EncryptBlock(buf, out.data() + off);
    std::memcpy(chain, out.data() + off, block);
  }
  return out;
}

Result<Bytes> CbcDecrypt(const Aes256& cipher, Slice iv, Slice ciphertext) {
  const size_t block = Aes256::kBlockSize;
  if (iv.size() != block) return Status::InvalidArgument("CBC IV must be 16 bytes");
  if (ciphertext.empty() || ciphertext.size() % block != 0) {
    return Status::Corruption("CBC ciphertext length not a positive block multiple");
  }
  Bytes out(ciphertext.size());
  uint8_t chain[Aes256::kBlockSize];
  std::memcpy(chain, iv.data(), block);
  uint8_t buf[Aes256::kBlockSize];
  for (size_t off = 0; off < ciphertext.size(); off += block) {
    cipher.DecryptBlock(ciphertext.data() + off, buf);
    for (size_t i = 0; i < block; ++i) out[off + i] = buf[i] ^ chain[i];
    std::memcpy(chain, ciphertext.data() + off, block);
  }
  uint8_t pad = out.back();
  if (pad == 0 || pad > block || pad > out.size()) {
    return Status::Corruption("invalid PKCS#7 padding");
  }
  for (size_t i = out.size() - pad; i < out.size(); ++i) {
    if (out[i] != pad) return Status::Corruption("invalid PKCS#7 padding");
  }
  out.resize(out.size() - pad);
  return out;
}

}  // namespace aedb::crypto
