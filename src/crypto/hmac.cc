#include "crypto/hmac.h"

#include <cstring>

namespace aedb::crypto {

HmacSha256::HmacSha256(Slice key) {
  uint8_t key_block[Sha256::kBlockSize];
  std::memset(key_block, 0, sizeof(key_block));
  if (key.size() > Sha256::kBlockSize) {
    Bytes hashed = Sha256::Hash(key);
    std::memcpy(key_block, hashed.data(), hashed.size());
  } else {
    std::memcpy(key_block, key.data(), key.size());
  }
  uint8_t pad[Sha256::kBlockSize];
  for (size_t i = 0; i < Sha256::kBlockSize; ++i) pad[i] = key_block[i] ^ 0x36;
  inner_.Update(Slice(pad, sizeof(pad)));
  for (size_t i = 0; i < Sha256::kBlockSize; ++i) pad[i] = key_block[i] ^ 0x5c;
  outer_keyed_.Update(Slice(pad, sizeof(pad)));
}

void HmacSha256::Update(Slice data) { inner_.Update(data); }

Bytes HmacSha256::Finish() {
  auto inner_digest = inner_.Finish();
  Sha256 outer = outer_keyed_;
  outer.Update(Slice(inner_digest.data(), inner_digest.size()));
  auto d = outer.Finish();
  return Bytes(d.begin(), d.end());
}

Bytes HmacSha256::Mac(Slice key, Slice data) {
  HmacSha256 h(key);
  h.Update(data);
  return h.Finish();
}

}  // namespace aedb::crypto
