#ifndef AEDB_CRYPTO_BIGNUM_H_
#define AEDB_CRYPTO_BIGNUM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"

namespace aedb::crypto {

class HmacDrbg;

/// Arbitrary-precision unsigned integer with the operations needed for
/// RSA-OAEP, RSA signatures and finite-field Diffie-Hellman: schoolbook
/// multiply, Knuth Algorithm D division, Montgomery modular exponentiation,
/// extended-Euclid modular inverse, and Miller-Rabin primality testing.
class BigNum {
 public:
  BigNum() = default;
  explicit BigNum(uint64_t v);

  static BigNum FromBytesBE(Slice bytes);
  static Result<BigNum> FromHex(std::string_view hex);

  /// Big-endian encoding without leading zeros (empty for zero). If
  /// `min_size` > 0 the output is left-padded with zeros to that size.
  Bytes ToBytesBE(size_t min_size = 0) const;
  std::string ToHex() const;

  bool IsZero() const { return limbs_.empty(); }
  bool IsOdd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  size_t BitLength() const;
  bool Bit(size_t i) const;

  int Compare(const BigNum& other) const;
  bool operator==(const BigNum& o) const { return Compare(o) == 0; }
  bool operator<(const BigNum& o) const { return Compare(o) < 0; }
  bool operator<=(const BigNum& o) const { return Compare(o) <= 0; }
  bool operator>(const BigNum& o) const { return Compare(o) > 0; }
  bool operator>=(const BigNum& o) const { return Compare(o) >= 0; }

  BigNum operator+(const BigNum& o) const;
  /// Requires *this >= o.
  BigNum operator-(const BigNum& o) const;
  BigNum operator*(const BigNum& o) const;
  BigNum operator<<(size_t bits) const;
  BigNum operator>>(size_t bits) const;

  /// Knuth Algorithm D. `quotient`/`remainder` may be null.
  static Status DivMod(const BigNum& u, const BigNum& v, BigNum* quotient,
                       BigNum* remainder);
  BigNum operator/(const BigNum& o) const;
  BigNum operator%(const BigNum& o) const;

  /// base^exp mod m. Uses Montgomery multiplication when m is odd (the RSA
  /// and DH cases), falling back to divide-based reduction otherwise.
  static BigNum ModExp(const BigNum& base, const BigNum& exp, const BigNum& m);

  /// a^{-1} mod m via extended Euclid; fails when gcd(a, m) != 1.
  static Result<BigNum> ModInverse(const BigNum& a, const BigNum& m);

  static BigNum Gcd(BigNum a, BigNum b);

  /// Uniform integer with exactly `bits` bits (top bit set).
  static BigNum RandomBits(size_t bits, HmacDrbg* drbg);
  /// Uniform integer in [0, bound).
  static BigNum RandomBelow(const BigNum& bound, HmacDrbg* drbg);

  /// Miller-Rabin with `rounds` random bases.
  static bool IsProbablePrime(const BigNum& n, int rounds, HmacDrbg* drbg);
  /// Random prime with exactly `bits` bits.
  static BigNum GeneratePrime(size_t bits, HmacDrbg* drbg);

 private:
  void Normalize();

  // Little-endian 64-bit limbs; empty represents zero.
  std::vector<uint64_t> limbs_;

  friend class MontgomeryContext;
};

/// Precomputed context for repeated multiplications modulo an odd modulus.
class MontgomeryContext {
 public:
  /// `modulus` must be odd and nonzero.
  explicit MontgomeryContext(const BigNum& modulus);

  /// Montgomery form conversions and multiplication.
  BigNum ToMont(const BigNum& a) const;
  BigNum FromMont(const BigNum& a) const;
  BigNum MulMont(const BigNum& a, const BigNum& b) const;

  const BigNum& modulus() const { return modulus_; }

 private:
  BigNum modulus_;
  size_t n_;           // limb count of modulus
  uint64_t n0_inv_;    // -modulus^{-1} mod 2^64
  BigNum r2_;          // R^2 mod modulus, R = 2^(64n)
};

}  // namespace aedb::crypto

#endif  // AEDB_CRYPTO_BIGNUM_H_
