#ifndef AEDB_CRYPTO_CELL_CODEC_H_
#define AEDB_CRYPTO_CELL_CODEC_H_

#include <memory>

#include "common/bytes.h"
#include "common/result.h"
#include "crypto/aes.h"
#include "crypto/hmac.h"

namespace aedb::crypto {

/// Cell-level encryption scheme (paper §2.3).
enum class EncryptionScheme : uint8_t {
  /// AES-CBC with an IV derived from an HMAC of the plaintext: equal
  /// plaintexts yield equal ciphertexts (whole-value determinism, stronger
  /// than ECB's per-block determinism). Leaks the frequency distribution.
  kDeterministic = 1,
  /// IND-CPA-secure AES-CBC with a random IV.
  kRandomized = 2,
};

const char* EncryptionSchemeName(EncryptionScheme scheme);

/// \brief Implements AEAD_AES_256_CBC_HMAC_SHA_256, the cell encryption
/// algorithm of Always Encrypted (paper §2.3, Figure 1).
///
/// From the 32-byte column encryption key (CEK), three keys are derived with
/// HMAC-SHA-256 over UTF-16LE labels: an AES-256 encryption key, a MAC key and
/// an IV-generation key (the latter used only by the deterministic variant).
///
/// Cell layout:  version(1) | MAC(32) | IV(16) | AES-256-CBC ciphertext
///
/// The MAC authenticates version || IV || ciphertext. Per the paper, the MAC
/// is a *usability* feature (detecting garbage cells), not an integrity
/// guarantee against the strong adversary.
class CellCodec {
 public:
  static constexpr uint8_t kAlgorithmVersion = 0x01;
  static constexpr size_t kMacSize = 32;
  static constexpr size_t kIvSize = 16;
  /// version + MAC + IV + at least one AES block of ciphertext.
  static constexpr size_t kMinCellSize = 1 + kMacSize + kIvSize + 16;

  /// `cek` must be 32 bytes of key material.
  explicit CellCodec(Slice cek);

  /// Encrypts one cell value.
  Bytes Encrypt(Slice plaintext, EncryptionScheme scheme) const;

  /// Verifies the MAC and decrypts; fails with SecurityError on MAC mismatch
  /// and Corruption on malformed cells.
  Result<Bytes> Decrypt(Slice cell) const;

  /// Cheap structural check used by ingest paths (does not verify the MAC).
  static bool LooksLikeCell(Slice cell) {
    return cell.size() >= kMinCellSize && cell[0] == kAlgorithmVersion;
  }

 private:
  Bytes ComputeMac(Slice iv, Slice ciphertext) const;

  Aes256 enc_cipher_;
  Bytes mac_key_;
  Bytes iv_key_;
  /// Keyed HMAC midstate, copied per MAC so the per-cell cost is data
  /// compressions only (the codec is cached per CEK; cells are tiny).
  HmacSha256 mac_proto_;
};

}  // namespace aedb::crypto

#endif  // AEDB_CRYPTO_CELL_CODEC_H_
