#include "crypto/dh.h"

#include "crypto/drbg.h"
#include "crypto/sha256.h"

namespace aedb::crypto {

namespace {
// RFC 3526, group 14 (2048-bit MODP).
constexpr std::string_view kGroup14PrimeHex =
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
    "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
    "9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718"
    "3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFFFFFFFFFF";

constexpr size_t kGroupBytes = 256;
}  // namespace

const BigNum& DhGroupPrime() {
  static const BigNum* prime = [] {
    auto r = BigNum::FromHex(kGroup14PrimeHex);
    return new BigNum(std::move(r).value());
  }();
  return *prime;
}

DhKeyPair GenerateDhKeyPair(HmacDrbg* drbg) {
  DhKeyPair kp;
  kp.private_key = BigNum::RandomBits(256, drbg);
  kp.public_key = BigNum::ModExp(BigNum(2), kp.private_key, DhGroupPrime());
  return kp;
}

Bytes DhPublicKeyBytes(const DhKeyPair& kp) {
  return kp.public_key.ToBytesBE(kGroupBytes);
}

Result<Bytes> DhComputeSharedSecret(const BigNum& private_key,
                                    Slice peer_public) {
  const BigNum& p = DhGroupPrime();
  BigNum peer = BigNum::FromBytesBE(peer_public);
  // Reject degenerate public keys that would force a trivial shared secret.
  if (peer <= BigNum(1) || peer >= p - BigNum(1)) {
    return Status::SecurityError("degenerate DH public key");
  }
  BigNum z = BigNum::ModExp(peer, private_key, p);
  return Sha256::Hash(Slice(z.ToBytesBE(kGroupBytes)));
}

}  // namespace aedb::crypto
