#include "crypto/rsa.h"

#include "crypto/drbg.h"
#include "crypto/sha256.h"

namespace aedb::crypto {

namespace {
constexpr size_t kHashLen = Sha256::kDigestSize;

// DER DigestInfo prefix for SHA-256 (RFC 8017 §9.2 note 1).
constexpr uint8_t kSha256DigestInfo[] = {0x30, 0x31, 0x30, 0x0d, 0x06, 0x09,
                                         0x60, 0x86, 0x48, 0x01, 0x65, 0x03,
                                         0x04, 0x02, 0x01, 0x05, 0x00, 0x04,
                                         0x20};
}  // namespace

Bytes RsaPublicKey::Serialize() const {
  Bytes out;
  PutLengthPrefixed(&out, Slice(n.ToBytesBE()));
  PutLengthPrefixed(&out, Slice(e.ToBytesBE()));
  return out;
}

Result<RsaPublicKey> RsaPublicKey::Deserialize(Slice in) {
  size_t off = 0;
  Bytes n_bytes, e_bytes;
  AEDB_ASSIGN_OR_RETURN(n_bytes, GetLengthPrefixed(in, &off));
  AEDB_ASSIGN_OR_RETURN(e_bytes, GetLengthPrefixed(in, &off));
  RsaPublicKey pub;
  pub.n = BigNum::FromBytesBE(n_bytes);
  pub.e = BigNum::FromBytesBE(e_bytes);
  if (pub.n.IsZero() || pub.e.IsZero()) {
    return Status::Corruption("invalid RSA public key");
  }
  return pub;
}

RsaPrivateKey GenerateRsaKey(size_t bits, HmacDrbg* drbg) {
  const BigNum e(65537);
  for (;;) {
    BigNum p = BigNum::GeneratePrime(bits / 2, drbg);
    BigNum q = BigNum::GeneratePrime(bits - bits / 2, drbg);
    if (p == q) continue;
    BigNum n = p * q;
    if (n.BitLength() != bits) continue;
    BigNum phi = (p - BigNum(1)) * (q - BigNum(1));
    Result<BigNum> d = BigNum::ModInverse(e, phi);
    if (!d.ok()) continue;  // gcd(e, phi) != 1; pick new primes
    RsaPrivateKey key;
    key.pub.n = std::move(n);
    key.pub.e = e;
    key.d = std::move(d).value();
    return key;
  }
}

Bytes Mgf1(Slice seed, size_t out_len) {
  Bytes out;
  out.reserve(out_len + kHashLen);
  uint32_t counter = 0;
  while (out.size() < out_len) {
    Sha256 h;
    h.Update(seed);
    uint8_t ctr_be[4] = {static_cast<uint8_t>(counter >> 24),
                         static_cast<uint8_t>(counter >> 16),
                         static_cast<uint8_t>(counter >> 8),
                         static_cast<uint8_t>(counter)};
    h.Update(Slice(ctr_be, 4));
    auto digest = h.Finish();
    out.insert(out.end(), digest.begin(), digest.end());
    ++counter;
  }
  out.resize(out_len);
  return out;
}

Result<Bytes> OaepEncrypt(const RsaPublicKey& pub, Slice message,
                          HmacDrbg* drbg) {
  size_t k = pub.ModulusSize();
  if (k < 2 * kHashLen + 2 || message.size() > k - 2 * kHashLen - 2) {
    return Status::InvalidArgument("OAEP message too long for modulus");
  }
  // DB = lHash || PS || 0x01 || M
  Bytes db = Sha256::Hash(Slice());
  db.resize(k - kHashLen - 1 - message.size() - 1, 0);
  db.push_back(0x01);
  db.insert(db.end(), message.data(), message.data() + message.size());

  Bytes seed = drbg->Generate(kHashLen);
  Bytes db_mask = Mgf1(seed, db.size());
  for (size_t i = 0; i < db.size(); ++i) db[i] ^= db_mask[i];
  Bytes seed_mask = Mgf1(db, kHashLen);
  for (size_t i = 0; i < seed.size(); ++i) seed[i] ^= seed_mask[i];

  Bytes em;
  em.reserve(k);
  em.push_back(0x00);
  em.insert(em.end(), seed.begin(), seed.end());
  em.insert(em.end(), db.begin(), db.end());

  BigNum m = BigNum::FromBytesBE(em);
  BigNum c = BigNum::ModExp(m, pub.e, pub.n);
  return c.ToBytesBE(k);
}

Result<Bytes> OaepDecrypt(const RsaPrivateKey& priv, Slice ciphertext) {
  size_t k = priv.pub.ModulusSize();
  if (ciphertext.size() != k || k < 2 * kHashLen + 2) {
    return Status::SecurityError("OAEP decryption error");
  }
  BigNum c = BigNum::FromBytesBE(ciphertext);
  if (c >= priv.pub.n) return Status::SecurityError("OAEP decryption error");
  BigNum m = BigNum::ModExp(c, priv.d, priv.pub.n);
  Bytes em = m.ToBytesBE(k);

  if (em[0] != 0x00) return Status::SecurityError("OAEP decryption error");
  Bytes seed(em.begin() + 1, em.begin() + 1 + kHashLen);
  Bytes db(em.begin() + 1 + kHashLen, em.end());

  Bytes seed_mask = Mgf1(db, kHashLen);
  for (size_t i = 0; i < seed.size(); ++i) seed[i] ^= seed_mask[i];
  Bytes db_mask = Mgf1(seed, db.size());
  for (size_t i = 0; i < db.size(); ++i) db[i] ^= db_mask[i];

  Bytes lhash = Sha256::Hash(Slice());
  if (!ConstantTimeEquals(Slice(db.data(), kHashLen), lhash)) {
    return Status::SecurityError("OAEP decryption error");
  }
  size_t i = kHashLen;
  while (i < db.size() && db[i] == 0x00) ++i;
  if (i == db.size() || db[i] != 0x01) {
    return Status::SecurityError("OAEP decryption error");
  }
  return Bytes(db.begin() + i + 1, db.end());
}

namespace {
Bytes BuildPkcs1Em(Slice message, size_t k) {
  Bytes digest = Sha256::Hash(message);
  Bytes t(kSha256DigestInfo, kSha256DigestInfo + sizeof(kSha256DigestInfo));
  t.insert(t.end(), digest.begin(), digest.end());
  // EM = 0x00 01 FF..FF 00 || T
  Bytes em;
  em.reserve(k);
  em.push_back(0x00);
  em.push_back(0x01);
  em.resize(k - t.size() - 1, 0xff);
  em.push_back(0x00);
  em.insert(em.end(), t.begin(), t.end());
  return em;
}
}  // namespace

Bytes Pkcs1Sign(const RsaPrivateKey& priv, Slice message) {
  size_t k = priv.pub.ModulusSize();
  Bytes em = BuildPkcs1Em(message, k);
  BigNum m = BigNum::FromBytesBE(em);
  BigNum s = BigNum::ModExp(m, priv.d, priv.pub.n);
  return s.ToBytesBE(k);
}

Status Pkcs1Verify(const RsaPublicKey& pub, Slice message, Slice signature) {
  size_t k = pub.ModulusSize();
  if (signature.size() != k) {
    return Status::SecurityError("RSA signature has wrong length");
  }
  BigNum s = BigNum::FromBytesBE(signature);
  if (s >= pub.n) return Status::SecurityError("RSA signature out of range");
  BigNum m = BigNum::ModExp(s, pub.e, pub.n);
  Bytes em = m.ToBytesBE(k);
  Bytes expected = BuildPkcs1Em(message, k);
  if (!ConstantTimeEquals(em, expected)) {
    return Status::SecurityError("RSA signature verification failed");
  }
  return Status::OK();
}

}  // namespace aedb::crypto
