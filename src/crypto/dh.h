#ifndef AEDB_CRYPTO_DH_H_
#define AEDB_CRYPTO_DH_H_

#include "common/bytes.h"
#include "common/result.h"
#include "crypto/bignum.h"

namespace aedb::crypto {

class HmacDrbg;

/// Finite-field Diffie-Hellman over the RFC 3526 2048-bit MODP group
/// (group 14, generator 2). The attestation protocol (paper §4.2) folds a DH
/// exchange into the enclave report to establish the driver-enclave shared
/// secret without extra round trips.
struct DhKeyPair {
  BigNum private_key;  // random 256-bit exponent
  BigNum public_key;   // g^private mod p
};

/// The group prime (2048 bits).
const BigNum& DhGroupPrime();

DhKeyPair GenerateDhKeyPair(HmacDrbg* drbg);

/// Serialized (fixed 256-byte big-endian) public key.
Bytes DhPublicKeyBytes(const DhKeyPair& kp);

/// Derives the 32-byte session key: SHA-256 over the fixed-width shared
/// group element. Fails when the peer key is out of range (0, 1, p-1, >= p).
Result<Bytes> DhComputeSharedSecret(const BigNum& private_key, Slice peer_public);

}  // namespace aedb::crypto

#endif  // AEDB_CRYPTO_DH_H_
