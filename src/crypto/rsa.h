#ifndef AEDB_CRYPTO_RSA_H_
#define AEDB_CRYPTO_RSA_H_

#include "common/bytes.h"
#include "common/result.h"
#include "crypto/bignum.h"

namespace aedb::crypto {

class HmacDrbg;

/// RSA public key (n, e). Used for CEK wrapping in key providers (RSA-OAEP,
/// paper §2.2 Figure 1) and signatures (CMK metadata, HGS/host/enclave
/// signing keys, §4.2).
struct RsaPublicKey {
  BigNum n;
  BigNum e;

  size_t ModulusSize() const { return (n.BitLength() + 7) / 8; }

  /// Canonical serialization: len-prefixed big-endian n and e.
  Bytes Serialize() const;
  static Result<RsaPublicKey> Deserialize(Slice in);
};

/// RSA private key; holds the public part as well.
struct RsaPrivateKey {
  RsaPublicKey pub;
  BigNum d;
};

/// Generates an RSA key pair with an n of `bits` bits and e = 65537.
RsaPrivateKey GenerateRsaKey(size_t bits, HmacDrbg* drbg);

/// RSAES-OAEP with SHA-256 and MGF1-SHA-256 (RFC 8017). The empty label is
/// used. Message length is limited to k - 2*32 - 2 bytes.
Result<Bytes> OaepEncrypt(const RsaPublicKey& pub, Slice message, HmacDrbg* drbg);
Result<Bytes> OaepDecrypt(const RsaPrivateKey& priv, Slice ciphertext);

/// RSASSA-PKCS1-v1_5 with SHA-256.
Bytes Pkcs1Sign(const RsaPrivateKey& priv, Slice message);
/// Returns OK when the signature verifies; SecurityError otherwise.
Status Pkcs1Verify(const RsaPublicKey& pub, Slice message, Slice signature);

/// MGF1 mask generation (SHA-256).
Bytes Mgf1(Slice seed, size_t out_len);

}  // namespace aedb::crypto

#endif  // AEDB_CRYPTO_RSA_H_
