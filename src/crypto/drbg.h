#ifndef AEDB_CRYPTO_DRBG_H_
#define AEDB_CRYPTO_DRBG_H_

#include "common/bytes.h"

namespace aedb::crypto {

/// HMAC-DRBG (SP 800-90A) over HMAC-SHA-256. All key material, IVs, nonces
/// and DH exponents in the system come from this generator.
class HmacDrbg {
 public:
  /// Instantiates with the given entropy input (plus optional personalization
  /// string, e.g. a component name).
  explicit HmacDrbg(Slice entropy, Slice personalization = Slice());

  /// Fills `out[0..n)` with pseudorandom bytes.
  void Generate(uint8_t* out, size_t n);
  Bytes Generate(size_t n);

  /// Mixes additional entropy into the state.
  void Reseed(Slice entropy);

 private:
  void UpdateState(Slice provided);

  Bytes key_;  // K
  Bytes v_;    // V
};

/// Process-wide DRBG seeded from std::random_device; thread-safe via a
/// thread_local instance. Use for all secrets.
void SecureRandom(uint8_t* out, size_t n);
Bytes SecureRandom(size_t n);

}  // namespace aedb::crypto

#endif  // AEDB_CRYPTO_DRBG_H_
