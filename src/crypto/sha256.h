#ifndef AEDB_CRYPTO_SHA256_H_
#define AEDB_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace aedb::crypto {

/// Incremental SHA-256 (FIPS 180-4). Used for deterministic IVs, key
/// derivation labels, attestation measurements, and signature digests.
class Sha256 {
 public:
  static constexpr size_t kDigestSize = 32;
  static constexpr size_t kBlockSize = 64;

  Sha256() { Reset(); }

  void Reset();
  void Update(Slice data);
  /// Finalizes and returns the 32-byte digest. The object must be Reset()
  /// before reuse.
  std::array<uint8_t, kDigestSize> Finish();

  /// One-shot convenience.
  static Bytes Hash(Slice data);

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t state_[8];
  uint64_t total_len_;
  uint8_t buffer_[kBlockSize];
  size_t buffer_len_;
};

}  // namespace aedb::crypto

#endif  // AEDB_CRYPTO_SHA256_H_
