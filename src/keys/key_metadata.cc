#include "keys/key_metadata.h"

#include "crypto/drbg.h"

namespace aedb::keys {

namespace {
void PutString(Bytes* out, const std::string& s) {
  PutLengthPrefixed(out, Slice(std::string_view(s)));
}

Result<std::string> GetString(Slice in, size_t* off) {
  Bytes raw;
  AEDB_ASSIGN_OR_RETURN(raw, GetLengthPrefixed(in, off));
  return std::string(raw.begin(), raw.end());
}
}  // namespace

Bytes CmkInfo::SignedPayload() const {
  Bytes payload;
  PutString(&payload, "aedb-cmk-metadata-v1");
  PutString(&payload, provider_name);
  PutString(&payload, key_path);
  payload.push_back(enclave_enabled ? 1 : 0);
  return payload;
}

Bytes CmkInfo::Serialize() const {
  Bytes out;
  PutString(&out, name);
  PutString(&out, provider_name);
  PutString(&out, key_path);
  out.push_back(enclave_enabled ? 1 : 0);
  PutLengthPrefixed(&out, signature);
  return out;
}

Result<CmkInfo> CmkInfo::Deserialize(Slice in) {
  CmkInfo cmk;
  size_t off = 0;
  AEDB_ASSIGN_OR_RETURN(cmk.name, GetString(in, &off));
  AEDB_ASSIGN_OR_RETURN(cmk.provider_name, GetString(in, &off));
  AEDB_ASSIGN_OR_RETURN(cmk.key_path, GetString(in, &off));
  if (off >= in.size()) return Status::Corruption("truncated CMK metadata");
  cmk.enclave_enabled = in[off++] != 0;
  AEDB_ASSIGN_OR_RETURN(cmk.signature, GetLengthPrefixed(in, &off));
  return cmk;
}

Bytes CekInfo::Serialize() const {
  Bytes out;
  PutString(&out, name);
  PutU32(&out, static_cast<uint32_t>(values.size()));
  for (const CekValue& v : values) {
    PutString(&out, v.cmk_name);
    PutString(&out, v.algorithm);
    PutLengthPrefixed(&out, v.encrypted_value);
    PutLengthPrefixed(&out, v.signature);
  }
  return out;
}

Result<CekInfo> CekInfo::Deserialize(Slice in) {
  CekInfo cek;
  size_t off = 0;
  AEDB_ASSIGN_OR_RETURN(cek.name, GetString(in, &off));
  uint32_t count;
  AEDB_ASSIGN_OR_RETURN(count, GetU32(in, &off));
  for (uint32_t i = 0; i < count; ++i) {
    CekValue v;
    AEDB_ASSIGN_OR_RETURN(v.cmk_name, GetString(in, &off));
    AEDB_ASSIGN_OR_RETURN(v.algorithm, GetString(in, &off));
    AEDB_ASSIGN_OR_RETURN(v.encrypted_value, GetLengthPrefixed(in, &off));
    AEDB_ASSIGN_OR_RETURN(v.signature, GetLengthPrefixed(in, &off));
    cek.values.push_back(std::move(v));
  }
  return cek;
}

Result<CmkInfo> KeyTools::CreateCmk(KeyProvider* provider,
                                    const std::string& name,
                                    const std::string& key_path,
                                    bool enclave_enabled) {
  CmkInfo cmk;
  cmk.name = name;
  cmk.provider_name = provider->name();
  cmk.key_path = key_path;
  cmk.enclave_enabled = enclave_enabled;
  AEDB_ASSIGN_OR_RETURN(cmk.signature,
                        provider->Sign(key_path, cmk.SignedPayload()));
  return cmk;
}

Bytes KeyTools::CekValueSignedPayload(const std::string& cek_name,
                                      const CekValue& value) {
  Bytes payload;
  PutString(&payload, "aedb-cek-value-v1");
  PutString(&payload, cek_name);
  PutString(&payload, value.cmk_name);
  PutString(&payload, value.algorithm);
  PutLengthPrefixed(&payload, value.encrypted_value);
  return payload;
}

Result<CekInfo> KeyTools::CreateCek(KeyProvider* provider, const CmkInfo& cmk,
                                    const std::string& name,
                                    Bytes* plaintext_cek) {
  Bytes material = crypto::SecureRandom(32);
  CekInfo cek;
  cek.name = name;
  CekValue value;
  value.cmk_name = cmk.name;
  AEDB_ASSIGN_OR_RETURN(value.encrypted_value,
                        provider->WrapKey(cmk.key_path, material));
  AEDB_ASSIGN_OR_RETURN(
      value.signature,
      provider->Sign(cmk.key_path, CekValueSignedPayload(name, value)));
  cek.values.push_back(std::move(value));
  if (plaintext_cek != nullptr) *plaintext_cek = std::move(material);
  return cek;
}

Status KeyTools::AddCekValueForCmkRotation(KeyProvider* provider,
                                           const CmkInfo& new_cmk,
                                           Slice plaintext_cek, CekInfo* cek) {
  CekValue value;
  value.cmk_name = new_cmk.name;
  AEDB_ASSIGN_OR_RETURN(value.encrypted_value,
                        provider->WrapKey(new_cmk.key_path, plaintext_cek));
  AEDB_ASSIGN_OR_RETURN(
      value.signature,
      provider->Sign(new_cmk.key_path, CekValueSignedPayload(cek->name, value)));
  cek->values.push_back(std::move(value));
  return Status::OK();
}

Status KeyTools::VerifyCmk(KeyProvider* provider, const CmkInfo& cmk) {
  Status st =
      provider->Verify(cmk.key_path, cmk.SignedPayload(), cmk.signature);
  if (!st.ok()) {
    return Status::SecurityError("CMK metadata signature invalid for '" +
                                 cmk.name + "': " + st.message());
  }
  return Status::OK();
}

Status KeyTools::VerifyCekValue(KeyProvider* provider, const CmkInfo& cmk,
                                const std::string& cek_name,
                                const CekValue& value) {
  if (value.cmk_name != cmk.name) {
    return Status::InvalidArgument("CEK value references different CMK");
  }
  Status st = provider->Verify(cmk.key_path,
                               CekValueSignedPayload(cek_name, value),
                               value.signature);
  if (!st.ok()) {
    return Status::SecurityError("CEK value signature invalid for '" +
                                 cek_name + "': " + st.message());
  }
  return Status::OK();
}

}  // namespace aedb::keys
