#ifndef AEDB_KEYS_KEY_PROVIDER_H_
#define AEDB_KEYS_KEY_PROVIDER_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/bytes.h"
#include "common/result.h"
#include "crypto/rsa.h"

namespace aedb::keys {

/// \brief Client-controlled store of column master keys (paper §2.2).
///
/// The CMK never leaves the provider: the engine stores only a URI reference
/// (key path). All CMK operations — wrapping/unwrapping CEKs (RSA-OAEP) and
/// signing/verifying CMK metadata — happen inside the provider, exactly as
/// with Azure Key Vault or an HSM-backed store.
class KeyProvider {
 public:
  virtual ~KeyProvider() = default;

  virtual const std::string& name() const = 0;

  /// RSA-OAEP-wraps 32 bytes of CEK material under the CMK at `key_path`.
  virtual Result<Bytes> WrapKey(const std::string& key_path, Slice key) = 0;
  virtual Result<Bytes> UnwrapKey(const std::string& key_path, Slice wrapped) = 0;

  /// PKCS#1 signature with the CMK's private key (used over CMK metadata so
  /// the untrusted server cannot flip the ENCLAVE_COMPUTATIONS bit, §2.2).
  virtual Result<Bytes> Sign(const std::string& key_path, Slice data) = 0;
  /// Verification needs only the public part and is also exposed so trusted
  /// components (driver) can validate without a private-key roundtrip.
  virtual Status Verify(const std::string& key_path, Slice data, Slice sig) = 0;
};

/// In-memory key vault simulating Azure Key Vault: holds RSA keypairs under
/// URI-style paths. Thread-safe.
class InMemoryKeyVault : public KeyProvider {
 public:
  explicit InMemoryKeyVault(std::string name = "AZURE_KEY_VAULT_PROVIDER")
      : name_(std::move(name)) {}

  const std::string& name() const override { return name_; }

  /// Creates an RSA key under `key_path`. Fails if the path already exists.
  Status CreateKey(const std::string& key_path, size_t bits = 2048);
  bool HasKey(const std::string& key_path) const;
  /// Removes the key (simulates key deletion / revocation).
  Status DeleteKey(const std::string& key_path);

  Result<Bytes> WrapKey(const std::string& key_path, Slice key) override;
  Result<Bytes> UnwrapKey(const std::string& key_path, Slice wrapped) override;
  Result<Bytes> Sign(const std::string& key_path, Slice data) override;
  Status Verify(const std::string& key_path, Slice data, Slice sig) override;

  /// Number of UnwrapKey calls served; the driver CEK cache tests use this to
  /// show that caching avoids provider round trips (paper §4.1).
  int64_t unwrap_calls() const { return unwrap_calls_; }

 private:
  Result<const crypto::RsaPrivateKey*> Find(const std::string& key_path) const;

  std::string name_;
  mutable std::mutex mu_;
  std::map<std::string, crypto::RsaPrivateKey> keys_;
  int64_t unwrap_calls_ = 0;
};

/// Extensible name → provider registry (paper §2.2: "an extensible interface
/// that lets customers plug in key providers of their choice").
class KeyProviderRegistry {
 public:
  Status Register(KeyProvider* provider);
  Result<KeyProvider*> Find(const std::string& name) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, KeyProvider*> providers_;
};

}  // namespace aedb::keys

#endif  // AEDB_KEYS_KEY_PROVIDER_H_
