#ifndef AEDB_KEYS_KEY_METADATA_H_
#define AEDB_KEYS_KEY_METADATA_H_

#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "keys/key_provider.h"

namespace aedb::keys {

/// Column master key metadata, as provisioned by CREATE COLUMN MASTER KEY
/// (paper Figure 1). Stored in the (untrusted) server catalog; the signature
/// is computed with the CMK itself over the key path and the
/// ENCLAVE_COMPUTATIONS flag so the server cannot enable enclave use behind
/// the client's back (§2.2).
struct CmkInfo {
  std::string name;
  std::string provider_name;
  std::string key_path;
  bool enclave_enabled = false;
  Bytes signature;

  /// The byte string the signature covers.
  Bytes SignedPayload() const;

  Bytes Serialize() const;
  static Result<CmkInfo> Deserialize(Slice in);
};

/// One encrypted copy of a CEK under a particular CMK. A CEK normally has one
/// value; during an online CMK rotation it temporarily has two (§2.4.2).
struct CekValue {
  std::string cmk_name;
  std::string algorithm = "RSA_OAEP";
  Bytes encrypted_value;
  Bytes signature;  // CMK signature over (cek name, algorithm, wrapped value)
};

/// Column encryption key metadata (CREATE COLUMN ENCRYPTION KEY).
struct CekInfo {
  std::string name;
  std::vector<CekValue> values;

  Bytes Serialize() const;
  static Result<CekInfo> Deserialize(Slice in);
};

/// Client-side provisioning helpers ("we automate the above steps in our
/// tools", §2.4.1).
class KeyTools {
 public:
  /// Signs CMK metadata with the key at `key_path`.
  static Result<CmkInfo> CreateCmk(KeyProvider* provider,
                                   const std::string& name,
                                   const std::string& key_path,
                                   bool enclave_enabled);

  /// Generates fresh 32-byte CEK material, wraps it under the CMK and signs
  /// the wrapped value. Returns the metadata; `plaintext_cek` (optional out)
  /// receives the raw key so tests and the initial-encryption tool can use it.
  static Result<CekInfo> CreateCek(KeyProvider* provider, const CmkInfo& cmk,
                                   const std::string& name,
                                   Bytes* plaintext_cek = nullptr);

  /// Re-wraps an existing CEK under `new_cmk`, appending a second value; used
  /// for zero-downtime CMK rotation.
  static Status AddCekValueForCmkRotation(KeyProvider* provider,
                                          const CmkInfo& new_cmk,
                                          Slice plaintext_cek, CekInfo* cek);

  /// Verifies the CMK metadata signature. A tampered ENCLAVE_COMPUTATIONS
  /// flag or key path fails here.
  static Status VerifyCmk(KeyProvider* provider, const CmkInfo& cmk);

  /// Verifies one CEK value's signature against its CMK.
  static Status VerifyCekValue(KeyProvider* provider, const CmkInfo& cmk,
                               const std::string& cek_name,
                               const CekValue& value);

  static Bytes CekValueSignedPayload(const std::string& cek_name,
                                     const CekValue& value);
};

}  // namespace aedb::keys

#endif  // AEDB_KEYS_KEY_METADATA_H_
