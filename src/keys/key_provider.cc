#include "keys/key_provider.h"

#include "crypto/drbg.h"

namespace aedb::keys {

Status InMemoryKeyVault::CreateKey(const std::string& key_path, size_t bits) {
  crypto::HmacDrbg drbg(crypto::SecureRandom(48),
                        Slice(std::string_view("key-vault-keygen")));
  crypto::RsaPrivateKey key = crypto::GenerateRsaKey(bits, &drbg);
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = keys_.emplace(key_path, std::move(key));
  (void)it;
  if (!inserted) return Status::AlreadyExists("key path exists: " + key_path);
  return Status::OK();
}

bool InMemoryKeyVault::HasKey(const std::string& key_path) const {
  std::lock_guard<std::mutex> lock(mu_);
  return keys_.count(key_path) > 0;
}

Status InMemoryKeyVault::DeleteKey(const std::string& key_path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (keys_.erase(key_path) == 0) {
    return Status::NotFound("no key at path: " + key_path);
  }
  return Status::OK();
}

Result<const crypto::RsaPrivateKey*> InMemoryKeyVault::Find(
    const std::string& key_path) const {
  auto it = keys_.find(key_path);
  if (it == keys_.end()) return Status::NotFound("no key at path: " + key_path);
  return &it->second;
}

Result<Bytes> InMemoryKeyVault::WrapKey(const std::string& key_path, Slice key) {
  std::lock_guard<std::mutex> lock(mu_);
  const crypto::RsaPrivateKey* rsa;
  AEDB_ASSIGN_OR_RETURN(rsa, Find(key_path));
  crypto::HmacDrbg drbg(crypto::SecureRandom(48),
                        Slice(std::string_view("key-vault-wrap")));
  return crypto::OaepEncrypt(rsa->pub, key, &drbg);
}

Result<Bytes> InMemoryKeyVault::UnwrapKey(const std::string& key_path,
                                          Slice wrapped) {
  std::lock_guard<std::mutex> lock(mu_);
  ++unwrap_calls_;
  const crypto::RsaPrivateKey* rsa;
  AEDB_ASSIGN_OR_RETURN(rsa, Find(key_path));
  return crypto::OaepDecrypt(*rsa, wrapped);
}

Result<Bytes> InMemoryKeyVault::Sign(const std::string& key_path, Slice data) {
  std::lock_guard<std::mutex> lock(mu_);
  const crypto::RsaPrivateKey* rsa;
  AEDB_ASSIGN_OR_RETURN(rsa, Find(key_path));
  return crypto::Pkcs1Sign(*rsa, data);
}

Status InMemoryKeyVault::Verify(const std::string& key_path, Slice data,
                                Slice sig) {
  std::lock_guard<std::mutex> lock(mu_);
  const crypto::RsaPrivateKey* rsa;
  AEDB_ASSIGN_OR_RETURN(rsa, Find(key_path));
  return crypto::Pkcs1Verify(rsa->pub, data, sig);
}

Status KeyProviderRegistry::Register(KeyProvider* provider) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = providers_.emplace(provider->name(), provider);
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("provider registered: " + provider->name());
  }
  return Status::OK();
}

Result<KeyProvider*> KeyProviderRegistry::Find(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = providers_.find(name);
  if (it == providers_.end()) {
    return Status::NotFound("unknown key provider: " + name);
  }
  return it->second;
}

}  // namespace aedb::keys
