#include "tpcc/tpcc.h"

#include <algorithm>
#include <mutex>
#include <thread>

namespace aedb::tpcc {

using types::Value;

const char* EncryptionName(Encryption e) {
  switch (e) {
    case Encryption::kPlaintext: return "plaintext";
    case Encryption::kDeterministic: return "DET";
    case Encryption::kRandomized: return "RND";
  }
  return "?";
}

std::string LastName(int num) {
  static constexpr const char* kSyllables[] = {
      "BAR", "OUGHT", "ABLE", "PRI", "PRES",
      "ESE", "ANTI",  "CALLY", "ATION", "EING"};
  return std::string(kSyllables[(num / 100) % 10]) + kSyllables[(num / 10) % 10] +
         kSyllables[num % 10];
}

namespace {
constexpr int64_t kCLoadLast = 157;  // load-time NURand constant

std::string EncClause(const TpccConfig& config) {
  if (config.encryption == Encryption::kPlaintext) return "";
  std::string kind = config.encryption == Encryption::kDeterministic
                         ? "Deterministic"
                         : "Randomized";
  return " ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = " + config.cek_name +
         ", ENCRYPTION_TYPE = " + kind +
         ", ALGORITHM = 'AEAD_AES_256_CBC_HMAC_SHA_256')";
}
}  // namespace

Status TpccLoader::CreateSchema() {
  const std::string enc = EncClause(config_);
  const char* kPlainTables[] = {
      "CREATE TABLE Warehouse (W_ID INT NOT NULL, W_NAME VARCHAR(10), "
      "W_TAX DOUBLE, W_YTD DOUBLE)",
      "CREATE TABLE District (D_ID INT NOT NULL, D_W_ID INT NOT NULL, "
      "D_NAME VARCHAR(10), D_TAX DOUBLE, D_YTD DOUBLE, D_NEXT_O_ID INT)",
      "CREATE TABLE History (H_C_ID INT, H_C_D_ID INT, H_C_W_ID INT, "
      "H_D_ID INT, H_W_ID INT, H_DATE BIGINT, H_AMOUNT DOUBLE, "
      "H_DATA VARCHAR(24))",
      "CREATE TABLE NewOrder (NO_O_ID INT NOT NULL, NO_D_ID INT NOT NULL, "
      "NO_W_ID INT NOT NULL)",
      "CREATE TABLE Orders (O_ID INT NOT NULL, O_D_ID INT NOT NULL, "
      "O_W_ID INT NOT NULL, O_C_ID INT, O_ENTRY_D BIGINT, O_CARRIER_ID INT, "
      "O_OL_CNT INT)",
      "CREATE TABLE OrderLine (OL_O_ID INT NOT NULL, OL_D_ID INT NOT NULL, "
      "OL_W_ID INT NOT NULL, OL_NUMBER INT, OL_I_ID INT, OL_DELIVERY_D BIGINT, "
      "OL_QUANTITY INT, OL_AMOUNT DOUBLE)",
      "CREATE TABLE Item (I_ID INT NOT NULL, I_NAME VARCHAR(24), "
      "I_PRICE DOUBLE, I_DATA VARCHAR(50))",
      "CREATE TABLE Stock (S_I_ID INT NOT NULL, S_W_ID INT NOT NULL, "
      "S_QUANTITY INT, S_YTD DOUBLE, S_ORDER_CNT INT)",
  };
  for (const char* ddl : kPlainTables) {
    AEDB_RETURN_IF_ERROR(driver_->ExecuteDdl(ddl));
  }
  // CUSTOMER: the six PII columns carry the configured encryption (§5.3).
  AEDB_RETURN_IF_ERROR(driver_->ExecuteDdl(
      "CREATE TABLE Customer (C_ID INT NOT NULL, C_D_ID INT NOT NULL, "
      "C_W_ID INT NOT NULL, "
      "C_FIRST VARCHAR(16)" + enc + ", "
      "C_MIDDLE CHAR(2), "
      "C_LAST VARCHAR(16)" + enc + ", "
      "C_STREET_1 VARCHAR(20)" + enc + ", "
      "C_STREET_2 VARCHAR(20)" + enc + ", "
      "C_CITY VARCHAR(20)" + enc + ", "
      "C_STATE CHAR(2)" + enc + ", "
      "C_ZIP CHAR(9), C_PHONE CHAR(16), C_CREDIT CHAR(2), "
      "C_CREDIT_LIM DOUBLE, C_DISCOUNT DOUBLE, C_BALANCE DOUBLE, "
      "C_YTD_PAYMENT DOUBLE, C_PAYMENT_CNT INT, C_DELIVERY_CNT INT)"));

  const char* kIndexes[] = {
      "CREATE INDEX W_PK ON Warehouse (W_ID)",
      "CREATE INDEX D_W ON District (D_W_ID)",
      "CREATE INDEX C_PK ON Customer (C_ID)",
      "CREATE INDEX NO_W ON NewOrder (NO_W_ID)",
      "CREATE INDEX O_C ON Orders (O_C_ID)",
      "CREATE INDEX OL_O ON OrderLine (OL_O_ID)",
      "CREATE INDEX I_PK ON Item (I_ID)",
      "CREATE INDEX S_I ON Stock (S_I_ID)",
  };
  for (const char* ddl : kIndexes) {
    AEDB_RETURN_IF_ERROR(driver_->ExecuteDdl(ddl));
  }
  // CUSTOMER_NC1 analog: the last-name access path (the paper creates a
  // non-unique index; ours is single-column on C_LAST). Equality index for
  // DET, enclave range index for RND, plain range index otherwise.
  return driver_->ExecuteDdl("CREATE INDEX CUSTOMER_NC1 ON Customer (C_LAST)");
}

Status TpccLoader::LoadWarehouse(int w) {
  Xoshiro256 rng(config_.seed * 7919 + w);
  uint64_t txn = driver_->Begin();
  auto exec = [&](const std::string& sql,
                  const client::Driver::NamedParams& params) -> Status {
    auto r = driver_->Query(sql, params, txn);
    return r.status();
  };
  Status st = exec(
      "INSERT INTO Warehouse (W_ID, W_NAME, W_TAX, W_YTD) VALUES "
      "(@w, @n, @t, @y)",
      {{"w", Value::Int32(w)},
       {"n", Value::String("W" + std::to_string(w))},
       {"t", Value::Double(rng.Uniform(0, 2000) / 10000.0)},
       {"y", Value::Double(300000.0)}});
  for (int d = 1; st.ok() && d <= config_.districts_per_warehouse; ++d) {
    st = exec(
        "INSERT INTO District (D_ID, D_W_ID, D_NAME, D_TAX, D_YTD, "
        "D_NEXT_O_ID) VALUES (@d, @w, @n, @t, @y, @o)",
        {{"d", Value::Int32(d)},
         {"w", Value::Int32(w)},
         {"n", Value::String("D" + std::to_string(d))},
         {"t", Value::Double(rng.Uniform(0, 2000) / 10000.0)},
         {"y", Value::Double(30000.0)},
         {"o", Value::Int32(config_.initial_orders_per_district + 1)}});
    for (int c = 1; st.ok() && c <= config_.customers_per_district; ++c) {
      // Spec: first customers get sequential last names, the rest NURand.
      int64_t max_name =
          std::min<int64_t>(999, config_.customers_per_district * 3);
      int name_num = c <= std::min<int64_t>(config_.customers_per_district,
                                            max_name + 1) &&
                             c <= 1000
                         ? c - 1
                         : static_cast<int>(rng.NURand(255, 0, max_name,
                                                       kCLoadLast));
      st = exec(
          "INSERT INTO Customer (C_ID, C_D_ID, C_W_ID, C_FIRST, C_MIDDLE, "
          "C_LAST, C_STREET_1, C_STREET_2, C_CITY, C_STATE, C_ZIP, C_PHONE, "
          "C_CREDIT, C_CREDIT_LIM, C_DISCOUNT, C_BALANCE, C_YTD_PAYMENT, "
          "C_PAYMENT_CNT, C_DELIVERY_CNT) VALUES (@c, @d, @w, @first, 'OE', "
          "@last, @s1, @s2, @city, @state, @zip, @phone, @credit, 50000.0, "
          "@disc, -10.0, 10.0, 1, 0)",
          {{"c", Value::Int32(c)},
           {"d", Value::Int32(d)},
           {"w", Value::Int32(w)},
           {"first", Value::String("First" + std::to_string(rng.Uniform(1, 9999)))},
           {"last", Value::String(LastName(name_num))},
           {"s1", Value::String("Street" + std::to_string(rng.Uniform(1, 999)))},
           {"s2", Value::String("Apt" + std::to_string(rng.Uniform(1, 999)))},
           {"city", Value::String("City" + std::to_string(rng.Uniform(1, 99)))},
           {"state", Value::String(std::string(1, 'A' + static_cast<char>(rng.Uniform(0, 25))) +
                                   std::string(1, 'A' + static_cast<char>(rng.Uniform(0, 25))))},
           {"zip", Value::String(std::to_string(rng.Uniform(10000, 99999)) + "1111")},
           {"phone", Value::String(std::to_string(rng.Uniform(1000000000LL, 9999999999LL)))},
           {"credit", Value::String(rng.Uniform(1, 10) == 1 ? "BC" : "GC")},
           {"disc", Value::Double(rng.Uniform(0, 5000) / 10000.0)}});
    }
    // Initial orders + new-orders + order lines.
    for (int o = 1; st.ok() && o <= config_.initial_orders_per_district; ++o) {
      int ol_cnt = static_cast<int>(rng.Uniform(5, 15));
      st = exec(
          "INSERT INTO Orders (O_ID, O_D_ID, O_W_ID, O_C_ID, O_ENTRY_D, "
          "O_CARRIER_ID, O_OL_CNT) VALUES (@o, @d, @w, @c, @e, @cr, @n)",
          {{"o", Value::Int32(o)},
           {"d", Value::Int32(d)},
           {"w", Value::Int32(w)},
           {"c", Value::Int32(static_cast<int>(
                     rng.Uniform(1, config_.customers_per_district)))},
           {"e", Value::Int64(1000000 + o)},
           {"cr", o <= config_.initial_orders_per_district * 7 / 10
                      ? Value::Int32(static_cast<int>(rng.Uniform(1, 10)))
                      : Value::Null(types::TypeId::kInt32)},
           {"n", Value::Int32(ol_cnt)}});
      if (st.ok() && o > config_.initial_orders_per_district * 7 / 10) {
        st = exec(
            "INSERT INTO NewOrder (NO_O_ID, NO_D_ID, NO_W_ID) VALUES "
            "(@o, @d, @w)",
            {{"o", Value::Int32(o)}, {"d", Value::Int32(d)},
             {"w", Value::Int32(w)}});
      }
      for (int l = 1; st.ok() && l <= ol_cnt; ++l) {
        st = exec(
            "INSERT INTO OrderLine (OL_O_ID, OL_D_ID, OL_W_ID, OL_NUMBER, "
            "OL_I_ID, OL_DELIVERY_D, OL_QUANTITY, OL_AMOUNT) VALUES "
            "(@o, @d, @w, @l, @i, @dd, 5, @a)",
            {{"o", Value::Int32(o)},
             {"d", Value::Int32(d)},
             {"w", Value::Int32(w)},
             {"l", Value::Int32(l)},
             {"i", Value::Int32(static_cast<int>(rng.Uniform(1, config_.items)))},
             {"dd", Value::Int64(1000000 + o)},
             {"a", Value::Double(rng.Uniform(1, 999999) / 100.0)}});
      }
    }
  }
  if (!st.ok()) {
    (void)driver_->Rollback(txn);
    return st;
  }
  return driver_->Commit(txn);
}

Status TpccLoader::Load() {
  Xoshiro256 rng(config_.seed);
  uint64_t txn = driver_->Begin();
  Status st = Status::OK();
  for (int i = 1; st.ok() && i <= config_.items; ++i) {
    auto r = driver_->Query(
        "INSERT INTO Item (I_ID, I_NAME, I_PRICE, I_DATA) VALUES "
        "(@i, @n, @p, @dta)",
        {{"i", Value::Int32(i)},
         {"n", Value::String("Item" + std::to_string(i))},
         {"p", Value::Double(rng.Uniform(100, 10000) / 100.0)},
         {"dta", Value::String("data" + std::to_string(rng.Uniform(1, 9999)))}},
        txn);
    st = r.status();
  }
  for (int w = 1; st.ok() && w <= config_.warehouses; ++w) {
    for (int i = 1; st.ok() && i <= config_.items; ++i) {
      auto r = driver_->Query(
          "INSERT INTO Stock (S_I_ID, S_W_ID, S_QUANTITY, S_YTD, "
          "S_ORDER_CNT) VALUES (@i, @w, @q, 0.0, 0)",
          {{"i", Value::Int32(i)},
           {"w", Value::Int32(w)},
           {"q", Value::Int32(static_cast<int>(rng.Uniform(10, 100)))}},
          txn);
      st = r.status();
    }
  }
  if (!st.ok()) {
    (void)driver_->Rollback(txn);
    return st;
  }
  AEDB_RETURN_IF_ERROR(driver_->Commit(txn));
  for (int w = 1; w <= config_.warehouses; ++w) {
    AEDB_RETURN_IF_ERROR(LoadWarehouse(w));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Transactions

Result<int> TpccTerminal::CustomerByLastName(uint64_t txn, int w, int d,
                                             const std::string& last) {
  sql::ResultSet rs;
  AEDB_ASSIGN_OR_RETURN(
      rs, driver_->Query(
              "SELECT C_ID, C_FIRST FROM Customer WHERE C_W_ID = @w AND "
              "C_D_ID = @d AND C_LAST = @last",
              {{"w", Value::Int32(w)},
               {"d", Value::Int32(d)},
               {"last", Value::String(last)}},
              txn));
  if (rs.rows.empty()) return Status::NotFound("no customer with that name");
  // Client-side sort on C_FIRST; pick the median (replaces ORDER BY, §5.3).
  std::sort(rs.rows.begin(), rs.rows.end(),
            [](const auto& a, const auto& b) { return a[1].str() < b[1].str(); });
  return rs.rows[rs.rows.size() / 2][0].i32();
}

Status TpccTerminal::NewOrder() {
  int w = static_cast<int>(rng_.Uniform(1, config_.warehouses));
  int d = static_cast<int>(rng_.Uniform(1, config_.districts_per_warehouse));
  int c = RandomCustomerId();
  int ol_cnt = static_cast<int>(rng_.Uniform(5, 15));
  bool rollback = rng_.Uniform(1, 100) == 1;  // spec: 1% invalid item
  // Remote order: the lines' stock comes from another warehouse, so under
  // warehouse sharding this transaction writes two shards and commits by 2PC.
  int supply_w = PickRemote() ? RemoteWarehouse(w) : w;

  uint64_t txn = driver_->Begin();
  auto fail = [&](const Status& st) { return FailTxn(txn, st); };

  auto district = driver_->Query(
      "SELECT D_TAX, D_NEXT_O_ID FROM District WHERE D_W_ID = @w AND "
      "D_ID = @d",
      {{"w", Value::Int32(w)}, {"d", Value::Int32(d)}}, txn);
  if (!district.ok()) return fail(district.status());
  if (district->rows.empty()) return fail(Status::Internal("missing district"));
  int o_id = district->rows[0][1].i32();

  auto upd = driver_->Query(
      "UPDATE District SET D_NEXT_O_ID = D_NEXT_O_ID + 1 WHERE D_W_ID = @w "
      "AND D_ID = @d",
      {{"w", Value::Int32(w)}, {"d", Value::Int32(d)}}, txn);
  if (!upd.ok()) return fail(upd.status());

  auto cust = driver_->Query(
      "SELECT C_DISCOUNT FROM Customer WHERE C_W_ID = @w AND C_D_ID = @d "
      "AND C_ID = @c",
      {{"w", Value::Int32(w)}, {"d", Value::Int32(d)}, {"c", Value::Int32(c)}},
      txn);
  if (!cust.ok()) return fail(cust.status());

  auto orders = driver_->Query(
      "INSERT INTO Orders (O_ID, O_D_ID, O_W_ID, O_C_ID, O_ENTRY_D, "
      "O_CARRIER_ID, O_OL_CNT) VALUES (@o, @d, @w, @c, @e, NULL, @n)",
      {{"o", Value::Int32(o_id)},
       {"d", Value::Int32(d)},
       {"w", Value::Int32(w)},
       {"c", Value::Int32(c)},
       {"e", Value::Int64(static_cast<int64_t>(committed_ + aborted_))},
       {"n", Value::Int32(ol_cnt)}},
      txn);
  if (!orders.ok()) return fail(orders.status());
  auto no = driver_->Query(
      "INSERT INTO NewOrder (NO_O_ID, NO_D_ID, NO_W_ID) VALUES (@o, @d, @w)",
      {{"o", Value::Int32(o_id)}, {"d", Value::Int32(d)}, {"w", Value::Int32(w)}},
      txn);
  if (!no.ok()) return fail(no.status());

  for (int l = 1; l <= ol_cnt; ++l) {
    int item = static_cast<int>(
        rng_.NURand(8191, 1, config_.items, /*C=*/7911 % config_.items));
    if (rollback && l == ol_cnt) {
      // Unused item id: the transaction rolls back by spec.
      (void)driver_->Rollback(txn);
      ++aborted_;
      return Status::OK();
    }
    auto price = driver_->Query("SELECT I_PRICE FROM Item WHERE I_ID = @i",
                                {{"i", Value::Int32(item)}}, txn);
    if (!price.ok()) return fail(price.status());
    if (price->rows.empty()) return fail(Status::Internal("missing item"));
    auto stock = driver_->Query(
        "SELECT S_QUANTITY FROM Stock WHERE S_I_ID = @i AND S_W_ID = @w",
        {{"i", Value::Int32(item)}, {"w", Value::Int32(supply_w)}}, txn);
    if (!stock.ok()) return fail(stock.status());
    if (stock->rows.empty()) return fail(Status::Internal("missing stock"));
    int quantity = static_cast<int>(rng_.Uniform(1, 10));
    int s_q = stock->rows[0][0].i32();
    int new_q = s_q >= quantity + 10 ? s_q - quantity : s_q - quantity + 91;
    auto supd = driver_->Query(
        "UPDATE Stock SET S_QUANTITY = @q, S_ORDER_CNT = S_ORDER_CNT + 1 "
        "WHERE S_I_ID = @i AND S_W_ID = @w",
        {{"q", Value::Int32(new_q)},
         {"i", Value::Int32(item)},
         {"w", Value::Int32(supply_w)}},
        txn);
    if (!supd.ok()) return fail(supd.status());
    double amount = quantity * price->rows[0][0].dbl();
    auto ol = driver_->Query(
        "INSERT INTO OrderLine (OL_O_ID, OL_D_ID, OL_W_ID, OL_NUMBER, "
        "OL_I_ID, OL_DELIVERY_D, OL_QUANTITY, OL_AMOUNT) VALUES "
        "(@o, @d, @w, @l, @i, NULL, @q, @a)",
        {{"o", Value::Int32(o_id)},
         {"d", Value::Int32(d)},
         {"w", Value::Int32(w)},
         {"l", Value::Int32(l)},
         {"i", Value::Int32(item)},
         {"q", Value::Int32(quantity)},
         {"a", Value::Double(amount)}},
        txn);
    if (!ol.ok()) return fail(ol.status());
  }
  Status st = driver_->Commit(txn);
  if (!st.ok()) return fail(st);
  ++committed_;
  return Status::OK();
}

Status TpccTerminal::Payment() {
  int w = static_cast<int>(rng_.Uniform(1, config_.warehouses));
  int d = static_cast<int>(rng_.Uniform(1, config_.districts_per_warehouse));
  double amount = rng_.Uniform(100, 500000) / 100.0;
  // Remote payment: the customer banks at another warehouse — the customer
  // update lands on a different shard than the warehouse/district updates.
  int c_w = PickRemote() ? RemoteWarehouse(w) : w;

  uint64_t txn = driver_->Begin();
  auto fail = [&](const Status& st) { return FailTxn(txn, st); };

  auto wupd = driver_->Query(
      "UPDATE Warehouse SET W_YTD = W_YTD + @a WHERE W_ID = @w",
      {{"a", Value::Double(amount)}, {"w", Value::Int32(w)}}, txn);
  if (!wupd.ok()) return fail(wupd.status());
  auto dupd = driver_->Query(
      "UPDATE District SET D_YTD = D_YTD + @a WHERE D_W_ID = @w AND D_ID = @d",
      {{"a", Value::Double(amount)}, {"w", Value::Int32(w)}, {"d", Value::Int32(d)}},
      txn);
  if (!dupd.ok()) return fail(dupd.status());

  int c_id;
  if (ByLastName()) {
    // The encrypted predicate of the benchmark (DET host compare or enclave
    // evaluation depending on configuration).
    auto found = CustomerByLastName(txn, c_w, d, RandomLastName());
    if (!found.ok()) {
      if (found.status().IsNotFound()) {
        c_id = RandomCustomerId();
      } else {
        return fail(found.status());
      }
    } else {
      c_id = *found;
    }
  } else {
    c_id = RandomCustomerId();
  }

  auto cupd = driver_->Query(
      "UPDATE Customer SET C_BALANCE = C_BALANCE - @a, "
      "C_YTD_PAYMENT = C_YTD_PAYMENT + @a, C_PAYMENT_CNT = C_PAYMENT_CNT + 1 "
      "WHERE C_W_ID = @w AND C_D_ID = @d AND C_ID = @c",
      {{"a", Value::Double(amount)},
       {"w", Value::Int32(c_w)},
       {"d", Value::Int32(d)},
       {"c", Value::Int32(c_id)}},
      txn);
  if (!cupd.ok()) return fail(cupd.status());

  auto hist = driver_->Query(
      "INSERT INTO History (H_C_ID, H_C_D_ID, H_C_W_ID, H_D_ID, H_W_ID, "
      "H_DATE, H_AMOUNT, H_DATA) VALUES (@c, @cd, @cw, @d, @w, @t, @a, "
      "'pay')",
      {{"c", Value::Int32(c_id)},
       {"cd", Value::Int32(d)},
       {"cw", Value::Int32(c_w)},
       {"d", Value::Int32(d)},
       {"w", Value::Int32(w)},
       {"t", Value::Int64(static_cast<int64_t>(committed_))},
       {"a", Value::Double(amount)}},
      txn);
  if (!hist.ok()) return fail(hist.status());

  Status st = driver_->Commit(txn);
  if (!st.ok()) return fail(st);
  ++committed_;
  return Status::OK();
}

Status TpccTerminal::OrderStatus() {
  int w = static_cast<int>(rng_.Uniform(1, config_.warehouses));
  int d = static_cast<int>(rng_.Uniform(1, config_.districts_per_warehouse));
  uint64_t txn = driver_->Begin();
  auto fail = [&](const Status& st) { return FailTxn(txn, st); };

  int c_id;
  if (ByLastName()) {
    auto found = CustomerByLastName(txn, w, d, RandomLastName());
    c_id = found.ok() ? *found : RandomCustomerId();
  } else {
    c_id = RandomCustomerId();
  }
  auto bal = driver_->Query(
      "SELECT C_BALANCE FROM Customer WHERE C_W_ID = @w AND C_D_ID = @d AND "
      "C_ID = @c",
      {{"w", Value::Int32(w)}, {"d", Value::Int32(d)}, {"c", Value::Int32(c_id)}},
      txn);
  if (!bal.ok()) return fail(bal.status());

  auto order = driver_->Query(
      "SELECT O_ID, O_CARRIER_ID FROM Orders WHERE O_W_ID = @w AND "
      "O_D_ID = @d AND O_C_ID = @c ORDER BY O_ID DESC LIMIT 1",
      {{"w", Value::Int32(w)}, {"d", Value::Int32(d)}, {"c", Value::Int32(c_id)}},
      txn);
  if (!order.ok()) return fail(order.status());
  if (!order->rows.empty()) {
    auto lines = driver_->Query(
        "SELECT OL_I_ID, OL_QUANTITY, OL_AMOUNT FROM OrderLine WHERE "
        "OL_W_ID = @w AND OL_D_ID = @d AND OL_O_ID = @o",
        {{"w", Value::Int32(w)},
         {"d", Value::Int32(d)},
         {"o", order->rows[0][0]}},
        txn);
    if (!lines.ok()) return fail(lines.status());
  }
  Status st = driver_->Commit(txn);
  if (!st.ok()) return fail(st);
  ++committed_;
  return Status::OK();
}

Status TpccTerminal::Delivery() {
  int w = static_cast<int>(rng_.Uniform(1, config_.warehouses));
  int carrier = static_cast<int>(rng_.Uniform(1, 10));
  uint64_t txn = driver_->Begin();
  auto fail = [&](const Status& st) { return FailTxn(txn, st); };

  for (int d = 1; d <= config_.districts_per_warehouse; ++d) {
    auto oldest = driver_->Query(
        "SELECT MIN(NO_O_ID) FROM NewOrder WHERE NO_W_ID = @w AND NO_D_ID = @d",
        {{"w", Value::Int32(w)}, {"d", Value::Int32(d)}}, txn);
    if (!oldest.ok()) return fail(oldest.status());
    if (oldest->rows.empty() || oldest->rows[0][0].is_null()) continue;
    int o_id = static_cast<int>(oldest->rows[0][0].AsInt64());
    auto del = driver_->Query(
        "DELETE FROM NewOrder WHERE NO_W_ID = @w AND NO_D_ID = @d AND "
        "NO_O_ID = @o",
        {{"w", Value::Int32(w)}, {"d", Value::Int32(d)}, {"o", Value::Int32(o_id)}},
        txn);
    if (!del.ok()) return fail(del.status());
    auto oupd = driver_->Query(
        "UPDATE Orders SET O_CARRIER_ID = @cr WHERE O_W_ID = @w AND "
        "O_D_ID = @d AND O_ID = @o",
        {{"cr", Value::Int32(carrier)},
         {"w", Value::Int32(w)},
         {"d", Value::Int32(d)},
         {"o", Value::Int32(o_id)}},
        txn);
    if (!oupd.ok()) return fail(oupd.status());
    auto amount = driver_->Query(
        "SELECT SUM(OL_AMOUNT) FROM OrderLine WHERE OL_W_ID = @w AND "
        "OL_D_ID = @d AND OL_O_ID = @o",
        {{"w", Value::Int32(w)}, {"d", Value::Int32(d)}, {"o", Value::Int32(o_id)}},
        txn);
    if (!amount.ok()) return fail(amount.status());
  }
  Status st = driver_->Commit(txn);
  if (!st.ok()) return fail(st);
  ++committed_;
  return Status::OK();
}

Status TpccTerminal::StockLevel() {
  int w = static_cast<int>(rng_.Uniform(1, config_.warehouses));
  int d = static_cast<int>(rng_.Uniform(1, config_.districts_per_warehouse));
  int threshold = static_cast<int>(rng_.Uniform(10, 20));
  uint64_t txn = driver_->Begin();
  auto fail = [&](const Status& st) { return FailTxn(txn, st); };
  auto next = driver_->Query(
      "SELECT D_NEXT_O_ID FROM District WHERE D_W_ID = @w AND D_ID = @d",
      {{"w", Value::Int32(w)}, {"d", Value::Int32(d)}}, txn);
  if (!next.ok()) return fail(next.status());
  if (next->rows.empty()) return fail(Status::Internal("missing district"));
  int next_o = next->rows[0][0].i32();
  auto count = driver_->Query(
      "SELECT COUNT(*) FROM OrderLine JOIN Stock ON OL_I_ID = S_I_ID WHERE "
      "OL_W_ID = @w AND OL_D_ID = @d AND OL_O_ID >= @lo AND S_W_ID = @w2 "
      "AND S_QUANTITY < @t",
      {{"w", Value::Int32(w)},
       {"d", Value::Int32(d)},
       {"lo", Value::Int32(next_o - 20)},
       {"w2", Value::Int32(w)},
       {"t", Value::Int32(threshold)}},
      txn);
  if (!count.ok()) return fail(count.status());
  Status st = driver_->Commit(txn);
  if (!st.ok()) return fail(st);
  ++committed_;
  return Status::OK();
}

Status TpccTerminal::FailTxn(uint64_t txn, const Status& st) {
  (void)driver_->Rollback(txn);
  ++aborted_;
  // Lock timeouts are ordinary contention aborts: swallow and move on.
  // kTransactionAborted is a recovery-induced abort (enclave restart mid-txn,
  // commit not durable): surface it so RunOne restarts the transaction.
  return st.code() == StatusCode::kFailedPrecondition ? Status::OK() : st;
}

Status TpccTerminal::RunOne() {
  int64_t pick = rng_.Uniform(1, 100);
  auto run = [&]() -> Status {
    if (pick <= 45) return NewOrder();
    if (pick <= 88) return Payment();
    if (pick <= 92) return OrderStatus();
    if (pick <= 96) return Delivery();
    return StockLevel();
  };
  Status st = run();
  // TPC-C contract for recovery-induced aborts: restart the same transaction
  // type. Bounded so a permanently armed fault cannot spin forever; each
  // failed attempt was already counted into aborted_ by FailTxn.
  for (int i = 0; i < kMaxTxnRestarts && st.IsTransactionAborted(); ++i) {
    ++restarts_;
    st = run();
  }
  return st.IsTransactionAborted() ? Status::OK() : st;
}

BenchcraftResult RunBenchcraft(
    const std::function<std::unique_ptr<client::Driver>()>& driver_factory,
    const TpccConfig& config, int threads, double seconds) {
  std::atomic<bool> stop{false};
  std::atomic<bool> go{false};
  std::atomic<int> ready{0};
  std::atomic<uint64_t> committed{0}, aborted{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      auto driver = driver_factory();
      if (driver == nullptr) {
        // Factory failed (e.g. loopback connect refused): still signal ready
        // so the barrier below releases the healthy terminals.
        ready.fetch_add(1);
        return;
      }
      TpccTerminal terminal(driver.get(), config, config.seed * 104729 + t);
      // Warm up outside the timed window: attestation, key installs,
      // describe/plan caches, first-touch allocations.
      for (int i = 0; i < 2; ++i) (void)terminal.RunOne();
      uint64_t warm_committed = terminal.committed();
      uint64_t warm_aborted = terminal.aborted();
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      while (!stop.load(std::memory_order_relaxed)) {
        Status st = terminal.RunOne();
        if (!st.ok()) break;  // hard error: stop this terminal
      }
      committed.fetch_add(terminal.committed() - warm_committed);
      aborted.fetch_add(terminal.aborted() - warm_aborted);
    });
  }
  while (ready.load() < threads) std::this_thread::yield();
  auto start = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true);
  for (auto& w : workers) w.join();
  auto elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                               start)
                     .count();
  BenchcraftResult result;
  result.seconds = elapsed;
  result.committed = committed.load();
  result.aborted = aborted.load();
  result.txn_per_second = result.committed / elapsed;
  return result;
}

BenchcraftResult RunBenchcraftCount(
    const std::function<std::unique_ptr<client::Driver>()>& driver_factory,
    const TpccConfig& config, int threads, uint64_t target_committed,
    double deadline_seconds) {
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> committed{0}, aborted{0};
  std::mutex error_mu;
  std::string first_error;
  auto start = std::chrono::steady_clock::now();
  auto deadline =
      start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(deadline_seconds));
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      auto driver = driver_factory();
      if (driver == nullptr) return;
      TpccTerminal terminal(driver.get(), config, config.seed * 104729 + t);
      uint64_t seen_c = 0, seen_a = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        Status st = terminal.RunOne();
        committed.fetch_add(terminal.committed() - seen_c);
        aborted.fetch_add(terminal.aborted() - seen_a);
        seen_c = terminal.committed();
        seen_a = terminal.aborted();
        if (!st.ok()) {  // hard error: stop this terminal
          std::lock_guard<std::mutex> guard(error_mu);
          if (first_error.empty()) first_error = st.ToString();
          break;
        }
        if (committed.load(std::memory_order_relaxed) >= target_committed ||
            std::chrono::steady_clock::now() >= deadline) {
          stop.store(true, std::memory_order_relaxed);
          break;
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  auto elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                               start)
                     .count();
  BenchcraftResult result;
  result.seconds = elapsed;
  result.committed = committed.load();
  result.aborted = aborted.load();
  result.txn_per_second = elapsed > 0 ? result.committed / elapsed : 0;
  result.first_error = first_error;
  return result;
}

OpenLoopResult RunOpenLoop(
    const std::function<std::unique_ptr<client::Driver>()>& driver_factory,
    const TpccConfig& config, int threads, double offered_tps, double seconds) {
  using Clock = std::chrono::steady_clock;
  // Customers with deterministic sequential last names (loader: the first
  // min(customers_per_district, max_name+1, 1000) per district get
  // LastName(c-1)); validation needs determinism, so only those are probed.
  int64_t max_name = std::min<int64_t>(999, config.customers_per_district * 3);
  const int validatable = static_cast<int>(std::min<int64_t>(
      {config.customers_per_district, max_name + 1, 1000}));

  std::atomic<uint64_t> ticket{0};
  std::atomic<uint64_t> issued{0};
  std::atomic<bool> go{false};
  std::atomic<int> ready{0};
  std::atomic<uint64_t> completed{0}, shed_over{0}, shed_dead{0}, other{0},
      wrong{0};
  Clock::time_point start;  // written before go flips; read-only afterwards
  std::mutex lat_mu;
  std::vector<double> latencies_ms;  // completed queries only

  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      auto driver = driver_factory();
      if (driver == nullptr) {
        ready.fetch_add(1);
        return;
      }
      Xoshiro256 rng(config.seed * 7919 + t);
      // Warm the session (attest, CEK install, describe cache) off-schedule.
      (void)driver->Query(
          "SELECT C_ID, C_LAST FROM Customer WHERE C_W_ID = @w AND "
          "C_D_ID = @d AND C_ID = @c",
          {{"w", Value::Int32(1)}, {"d", Value::Int32(1)},
           {"c", Value::Int32(1)}});
      std::vector<double> local_lat;
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      const auto window_end =
          start + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(seconds));
      for (;;) {
        // The wall clock, not the arrival schedule, closes the window: under
        // heavy overload the schedule has a backlog of past-due arrivals that
        // would otherwise keep the issuers running long after `seconds`.
        if (Clock::now() >= window_end) break;
        uint64_t n = ticket.fetch_add(1, std::memory_order_relaxed);
        // Fixed-rate arrival schedule shared across issuers: ticket n is due
        // at start + n/offered_tps whether or not earlier queries finished.
        auto arrival =
            start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(
                            static_cast<double>(n) / offered_tps));
        if (arrival >= window_end) break;
        issued.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_until(arrival);
        int w = static_cast<int>(rng.Uniform(1, config.warehouses));
        int d = static_cast<int>(
            rng.Uniform(1, config.districts_per_warehouse));
        int c = static_cast<int>(rng.Uniform(1, validatable));
        auto result = driver->Query(
            "SELECT C_ID, C_LAST FROM Customer WHERE C_W_ID = @w AND "
            "C_D_ID = @d AND C_ID = @c",
            {{"w", Value::Int32(w)}, {"d", Value::Int32(d)},
             {"c", Value::Int32(c)}});
        if (result.ok()) {
          // Validate against what the loader wrote: the echoed key and the
          // decrypted last name must both match. A truncated/mixed-up row
          // under overload counts as wrong, never as throughput.
          bool valid = result->rows.size() == 1 &&
                       result->rows[0].size() == 2 &&
                       !result->rows[0][0].is_null() &&
                       result->rows[0][0].AsInt64() == c &&
                       result->rows[0][1].type() == types::TypeId::kString &&
                       !result->rows[0][1].is_null() &&
                       result->rows[0][1].str() == LastName(c - 1);
          if (valid) {
            completed.fetch_add(1, std::memory_order_relaxed);
            local_lat.push_back(
                std::chrono::duration<double, std::milli>(Clock::now() -
                                                          arrival)
                    .count());
          } else {
            wrong.fetch_add(1, std::memory_order_relaxed);
          }
        } else if (result.status().IsOverloaded()) {
          shed_over.fetch_add(1, std::memory_order_relaxed);
        } else if (result.status().IsDeadlineExceeded()) {
          shed_dead.fetch_add(1, std::memory_order_relaxed);
        } else {
          other.fetch_add(1, std::memory_order_relaxed);
        }
      }
      std::lock_guard<std::mutex> guard(lat_mu);
      latencies_ms.insert(latencies_ms.end(), local_lat.begin(),
                          local_lat.end());
    });
  }
  while (ready.load() < threads) std::this_thread::yield();
  start = Clock::now();
  go.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();

  OpenLoopResult result;
  result.seconds = elapsed;
  result.offered = issued.load();
  result.completed = completed.load();
  result.shed_overloaded = shed_over.load();
  result.shed_deadline = shed_dead.load();
  result.other_errors = other.load();
  result.wrong_results = wrong.load();
  result.goodput_tps = elapsed > 0 ? result.completed / elapsed : 0;
  if (!latencies_ms.empty()) {
    std::sort(latencies_ms.begin(), latencies_ms.end());
    auto pct = [&](double p) {
      size_t idx = static_cast<size_t>(p * (latencies_ms.size() - 1));
      return latencies_ms[idx];
    };
    result.p50_ms = pct(0.50);
    result.p99_ms = pct(0.99);
    result.max_ms = latencies_ms.back();
  }
  return result;
}

}  // namespace aedb::tpcc
