#ifndef AEDB_TPCC_TPCC_H_
#define AEDB_TPCC_TPCC_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>

#include "client/driver.h"
#include "common/random.h"

namespace aedb::tpcc {

/// Which encryption configuration the CUSTOMER PII columns use (paper §5.3:
/// C_FIRST, C_LAST, C_STREET_1, C_STREET_2, C_CITY, C_STATE).
enum class Encryption {
  kPlaintext,      // SQL-PT / SQL-PT-AEConn
  kDeterministic,  // SQL-AE-DET (enclave-disabled keys)
  kRandomized,     // SQL-AE-RND (enclave-enabled keys)
};

const char* EncryptionName(Encryption e);

/// Laptop-scale knobs; the spec's cardinalities divided down. Relative
/// behaviour (who wins, where the enclave sits in the hot path) is preserved.
struct TpccConfig {
  int warehouses = 1;
  int districts_per_warehouse = 10;
  int customers_per_district = 30;
  int items = 100;
  int initial_orders_per_district = 10;
  Encryption encryption = Encryption::kPlaintext;
  /// CEK/CMK names used when encryption != kPlaintext.
  std::string cek_name = "TpccCEK";
  uint64_t seed = 42;
  /// Percent of New-Order / Payment transactions that touch a REMOTE
  /// warehouse (New-Order: the order lines' supply warehouse; Payment: the
  /// paying customer's home warehouse). Only active when warehouses > 1.
  /// Under warehouse-partitioned sharding these are the cross-shard
  /// transactions that exercise two-phase commit.
  int remote_pct = 10;
};

/// TPC-C C_LAST syllables (spec clause 4.3.2.3).
std::string LastName(int num);

/// Schema creation + initial population through the AE driver (so encrypted
/// columns are encrypted client-side exactly as in production).
class TpccLoader {
 public:
  TpccLoader(client::Driver* driver, TpccConfig config)
      : driver_(driver), config_(std::move(config)) {}

  /// Creates the nine tables and their indexes. Keys (CMK/CEK) must already
  /// be provisioned when encryption is on.
  Status CreateSchema();
  Status Load();

 private:
  Status LoadWarehouse(int w);

  client::Driver* driver_;
  TpccConfig config_;
};

/// Per-transaction-type counters.
struct TxnStats {
  std::atomic<uint64_t> committed{0};
  std::atomic<uint64_t> aborted{0};
};

/// One terminal: runs the standard transaction mix (45% New-Order,
/// 43% Payment, 4% each Order-Status, Delivery, Stock-Level) against its own
/// driver connection. Per the paper (§5.3), Payment and Order-Status select
/// customers by last name 60% of the time and the ORDER BY C_FIRST is
/// replaced by a client-side sort to find the median customer.
class TpccTerminal {
 public:
  TpccTerminal(client::Driver* driver, const TpccConfig& config, uint64_t seed)
      : driver_(driver), config_(config), rng_(seed) {}

  /// Runs one transaction from the mix; returns OK whether it committed or
  /// was rolled back (1% of New-Orders roll back by spec); hard errors
  /// propagate.
  Status RunOne();

  Status NewOrder();
  Status Payment();
  Status OrderStatus();
  Status Delivery();
  Status StockLevel();

  uint64_t committed() const { return committed_; }
  uint64_t aborted() const { return aborted_; }
  /// Transactions restarted after a recovery-induced kTransactionAborted.
  uint64_t restarts() const { return restarts_; }

 private:
  /// Rolls `txn` back and counts the abort. Lock-timeout aborts
  /// (kFailedPrecondition) are swallowed (ordinary contention);
  /// kTransactionAborted propagates so RunOne restarts the transaction;
  /// anything else is a hard error.
  Status FailTxn(uint64_t txn, const Status& st);

  /// Cap on same-transaction restarts per RunOne call.
  static constexpr int kMaxTxnRestarts = 3;

  /// Picks a customer id (40%) or last name (60%) per spec mix.
  bool ByLastName() { return rng_.Uniform(1, 100) <= 60; }
  int RandomCustomerId() {
    return static_cast<int>(rng_.NURand(1023, 1, config_.customers_per_district,
                                        kCRunCid));
  }
  std::string RandomLastName() {
    int64_t max_name =
        std::min<int64_t>(999, config_.customers_per_district * 3);
    return LastName(static_cast<int>(rng_.NURand(255, 0, max_name, kCRunLast)));
  }
  /// Finds the median-by-C_FIRST customer with the given last name
  /// (client-side sort replacing ORDER BY C_FIRST, §5.3).
  Result<int> CustomerByLastName(uint64_t txn, int w, int d,
                                 const std::string& last);
  /// True for the configured remote fraction of transactions (needs > 1
  /// warehouse).
  bool PickRemote() {
    return config_.warehouses > 1 && config_.remote_pct > 0 &&
           rng_.Uniform(1, 100) <= static_cast<int64_t>(config_.remote_pct);
  }
  /// A warehouse other than `home`, uniform over the rest.
  int RemoteWarehouse(int home) {
    int other = static_cast<int>(rng_.Uniform(1, config_.warehouses - 1));
    return other >= home ? other + 1 : other;
  }

  static constexpr int64_t kCRunLast = 173;  // runtime NURand constant
  static constexpr int64_t kCRunCid = 1021;

  client::Driver* driver_;
  // By value (like TpccLoader): a terminal may outlive the caller's config
  // object, e.g. when constructed from a factory-made temporary.
  TpccConfig config_;
  Xoshiro256 rng_;
  uint64_t committed_ = 0;
  uint64_t aborted_ = 0;
  uint64_t restarts_ = 0;
};

/// Benchcraft-style closed-loop driver: N terminal threads hammering one
/// server for a fixed duration.
struct BenchcraftResult {
  double seconds = 0;
  uint64_t committed = 0;
  uint64_t aborted = 0;
  double txn_per_second = 0;
  /// First hard (non-retryable) error any terminal stopped on, if any.
  std::string first_error;
};

BenchcraftResult RunBenchcraft(
    const std::function<std::unique_ptr<client::Driver>()>& driver_factory,
    const TpccConfig& config, int threads, double seconds);

/// Deterministic variant: runs until `target_committed` transactions have
/// committed across all terminals (or `deadline_seconds` passes — a safety
/// net, not a measurement window). Unlike RunBenchcraft there is no timed
/// window, so tests asserting on committed counts don't depend on machine
/// speed.
BenchcraftResult RunBenchcraftCount(
    const std::function<std::unique_ptr<client::Driver>()>& driver_factory,
    const TpccConfig& config, int threads, uint64_t target_committed,
    double deadline_seconds);

/// What one open-loop overload run observed. Every issued query lands in
/// exactly one of {completed, shed_overloaded, shed_deadline, other_errors};
/// wrong_results counts completed queries whose self-validation failed (wrong
/// C_ID echoed, or a C_LAST that does not decrypt to the loader's value) —
/// the graceful-degradation contract is that it stays zero no matter how far
/// offered load exceeds capacity.
struct OpenLoopResult {
  double seconds = 0;
  uint64_t offered = 0;    ///< arrivals issued by the schedule
  uint64_t completed = 0;  ///< OK responses that validated
  uint64_t shed_overloaded = 0;
  uint64_t shed_deadline = 0;
  uint64_t other_errors = 0;  ///< untyped failures (must be 0 under overload)
  uint64_t wrong_results = 0;
  double goodput_tps = 0;  ///< completed / seconds
  /// Latency of completed queries, measured from the *scheduled* arrival
  /// (not the send), so queueing delay is charged — no coordinated omission.
  double p50_ms = 0;
  double p99_ms = 0;
  double max_ms = 0;
};

/// Open-loop overload driver: `threads` issuers pull tickets from a shared
/// arrival schedule at `offered_tps` regardless of completions, so offered
/// load can exceed capacity (a closed loop self-throttles and cannot). The
/// workload is the TPC-C point lookup — C_ID + encrypted C_LAST by primary
/// key — and every response is validated against the loader's deterministic
/// values, making wrong-results observable rather than assumed away.
/// Deadlines come from the driver factory's DriverOptions::deadline_ms.
OpenLoopResult RunOpenLoop(
    const std::function<std::unique_ptr<client::Driver>()>& driver_factory,
    const TpccConfig& config, int threads, double offered_tps, double seconds);

}  // namespace aedb::tpcc

#endif  // AEDB_TPCC_TPCC_H_
