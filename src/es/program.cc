#include "es/program.h"

#include <set>

namespace aedb::es {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return "=";
    case CompareOp::kNe: return "<>";
    case CompareOp::kLt: return "<";
    case CompareOp::kLe: return "<=";
    case CompareOp::kGt: return ">";
    case CompareOp::kGe: return ">=";
  }
  return "?";
}

bool CompareOpHolds(CompareOp op, int c) {
  switch (op) {
    case CompareOp::kEq: return c == 0;
    case CompareOp::kNe: return c != 0;
    case CompareOp::kLt: return c < 0;
    case CompareOp::kLe: return c <= 0;
    case CompareOp::kGt: return c > 0;
    case CompareOp::kGe: return c >= 0;
  }
  return false;
}

void EsProgram::GetData(uint32_t input_index, types::TypeId type,
                        types::EncryptionType enc) {
  Instruction ins;
  ins.op = OpCode::kGetData;
  ins.index = input_index;
  ins.data_type = type;
  ins.enc = enc;
  instructions_.push_back(std::move(ins));
}

void EsProgram::SetData(uint32_t output_index, types::TypeId type,
                        types::EncryptionType enc) {
  Instruction ins;
  ins.op = OpCode::kSetData;
  ins.index = output_index;
  ins.data_type = type;
  ins.enc = enc;
  instructions_.push_back(std::move(ins));
  if (output_index + 1 > num_outputs_) num_outputs_ = output_index + 1;
}

void EsProgram::Const(types::Value v) {
  Instruction ins;
  ins.op = OpCode::kConst;
  ins.constant = std::move(v);
  instructions_.push_back(std::move(ins));
}

void EsProgram::Comp(CompareOp op) {
  Instruction ins;
  ins.op = OpCode::kComp;
  ins.cmp = op;
  instructions_.push_back(std::move(ins));
}

void EsProgram::Like() {
  Instruction ins;
  ins.op = OpCode::kLike;
  instructions_.push_back(std::move(ins));
}

void EsProgram::Arith(OpCode op) {
  Instruction ins;
  ins.op = op;
  instructions_.push_back(std::move(ins));
}

void EsProgram::Logic(OpCode op) {
  Instruction ins;
  ins.op = op;
  instructions_.push_back(std::move(ins));
}

void EsProgram::IsNull() {
  Instruction ins;
  ins.op = OpCode::kIsNull;
  instructions_.push_back(std::move(ins));
}

void EsProgram::TMEval(const EsProgram& enclave_program, uint32_t n_inputs,
                       uint32_t n_outputs) {
  Instruction ins;
  ins.op = OpCode::kTMEval;
  ins.subprogram = enclave_program.Serialize();
  ins.n_inputs = n_inputs;
  ins.n_outputs = n_outputs;
  instructions_.push_back(std::move(ins));
}

bool EsProgram::ProducesCiphertext() const {
  for (const Instruction& ins : instructions_) {
    if (ins.op == OpCode::kSetData && ins.enc.is_encrypted()) return true;
    if (ins.op == OpCode::kTMEval) {
      auto sub = Deserialize(ins.subprogram);
      if (sub.ok() && sub->ProducesCiphertext()) return true;
    }
  }
  return false;
}

bool EsProgram::RequiresConversionAuthorization() const {
  if (ProducesCiphertext()) return true;
  bool reads_encrypted = false;
  bool writes_plain_nonbool = false;
  for (const Instruction& ins : instructions_) {
    if (ins.op == OpCode::kGetData && ins.enc.is_encrypted()) {
      reads_encrypted = true;
    }
    if (ins.op == OpCode::kSetData && !ins.enc.is_encrypted() &&
        ins.data_type != types::TypeId::kBool) {
      writes_plain_nonbool = true;
    }
  }
  return reads_encrypted && writes_plain_nonbool;
}

bool EsProgram::RequiresEnclave() const {
  for (const Instruction& ins : instructions_) {
    if (ins.op == OpCode::kTMEval) return true;
  }
  return false;
}

std::vector<uint32_t> EsProgram::ReferencedCekIds() const {
  std::set<uint32_t> ids;
  for (const Instruction& ins : instructions_) {
    if ((ins.op == OpCode::kGetData || ins.op == OpCode::kSetData) &&
        ins.enc.is_encrypted()) {
      ids.insert(ins.enc.cek_id);
    }
    if (ins.op == OpCode::kTMEval) {
      auto sub = Deserialize(ins.subprogram);
      if (sub.ok()) {
        for (uint32_t id : sub->ReferencedCekIds()) ids.insert(id);
      }
    }
  }
  return std::vector<uint32_t>(ids.begin(), ids.end());
}

Bytes EsProgram::Serialize() const {
  Bytes out;
  PutU32(&out, num_outputs_);
  PutU32(&out, static_cast<uint32_t>(instructions_.size()));
  for (const Instruction& ins : instructions_) {
    out.push_back(static_cast<uint8_t>(ins.op));
    switch (ins.op) {
      case OpCode::kGetData:
      case OpCode::kSetData:
        PutU32(&out, ins.index);
        out.push_back(static_cast<uint8_t>(ins.data_type));
        out.push_back(static_cast<uint8_t>(ins.enc.kind));
        PutU32(&out, ins.enc.cek_id);
        out.push_back(ins.enc.enclave_enabled ? 1 : 0);
        break;
      case OpCode::kConst:
        PutLengthPrefixed(&out, ins.constant.Encode());
        break;
      case OpCode::kComp:
        out.push_back(static_cast<uint8_t>(ins.cmp));
        break;
      case OpCode::kTMEval:
        PutLengthPrefixed(&out, ins.subprogram);
        PutU32(&out, ins.n_inputs);
        PutU32(&out, ins.n_outputs);
        break;
      default:
        break;  // no operands
    }
  }
  return out;
}

Result<EsProgram> EsProgram::Deserialize(Slice in) {
  EsProgram p;
  size_t off = 0;
  AEDB_ASSIGN_OR_RETURN(p.num_outputs_, GetU32(in, &off));
  uint32_t count;
  AEDB_ASSIGN_OR_RETURN(count, GetU32(in, &off));
  for (uint32_t i = 0; i < count; ++i) {
    if (off >= in.size()) return Status::Corruption("truncated ES program");
    Instruction ins;
    ins.op = static_cast<OpCode>(in[off++]);
    if (ins.op < OpCode::kGetData || ins.op > OpCode::kTMEval) {
      return Status::Corruption("unknown ES opcode");
    }
    switch (ins.op) {
      case OpCode::kGetData:
      case OpCode::kSetData: {
        AEDB_ASSIGN_OR_RETURN(ins.index, GetU32(in, &off));
        if (off + 2 > in.size()) return Status::Corruption("truncated ES program");
        ins.data_type = static_cast<types::TypeId>(in[off++]);
        ins.enc.kind = static_cast<types::EncKind>(in[off++]);
        if (ins.enc.kind > types::EncKind::kRandomized) {
          return Status::Corruption("bad encryption kind");
        }
        AEDB_ASSIGN_OR_RETURN(ins.enc.cek_id, GetU32(in, &off));
        if (off >= in.size()) return Status::Corruption("truncated ES program");
        ins.enc.enclave_enabled = in[off++] != 0;
        break;
      }
      case OpCode::kConst: {
        Bytes raw;
        AEDB_ASSIGN_OR_RETURN(raw, GetLengthPrefixed(in, &off));
        size_t voff = 0;
        AEDB_ASSIGN_OR_RETURN(ins.constant, types::Value::Decode(raw, &voff));
        break;
      }
      case OpCode::kComp: {
        if (off >= in.size()) return Status::Corruption("truncated ES program");
        ins.cmp = static_cast<CompareOp>(in[off++]);
        if (ins.cmp > CompareOp::kGe) return Status::Corruption("bad compare op");
        break;
      }
      case OpCode::kTMEval: {
        AEDB_ASSIGN_OR_RETURN(ins.subprogram, GetLengthPrefixed(in, &off));
        AEDB_ASSIGN_OR_RETURN(ins.n_inputs, GetU32(in, &off));
        AEDB_ASSIGN_OR_RETURN(ins.n_outputs, GetU32(in, &off));
        break;
      }
      default:
        break;
    }
    p.instructions_.push_back(std::move(ins));
  }
  return p;
}

std::string EsProgram::ToString() const {
  std::string out;
  for (const Instruction& ins : instructions_) {
    switch (ins.op) {
      case OpCode::kGetData:
        out += "GetData[" + std::to_string(ins.index) + ":" +
               types::TypeIdName(ins.data_type) + "," + ins.enc.ToString() + "]";
        break;
      case OpCode::kSetData:
        out += "SetData[" + std::to_string(ins.index) + ":" +
               types::TypeIdName(ins.data_type) + "," + ins.enc.ToString() + "]";
        break;
      case OpCode::kConst: out += "Const[" + ins.constant.ToString() + "]"; break;
      case OpCode::kComp: out += std::string("Comp[") + CompareOpName(ins.cmp) + "]"; break;
      case OpCode::kLike: out += "Like"; break;
      case OpCode::kAdd: out += "Add"; break;
      case OpCode::kSub: out += "Sub"; break;
      case OpCode::kMul: out += "Mul"; break;
      case OpCode::kDiv: out += "Div"; break;
      case OpCode::kNeg: out += "Neg"; break;
      case OpCode::kAnd: out += "And"; break;
      case OpCode::kOr: out += "Or"; break;
      case OpCode::kNot: out += "Not"; break;
      case OpCode::kIsNull: out += "IsNull"; break;
      case OpCode::kTMEval:
        out += "TMEval[" + std::to_string(ins.n_inputs) + "->" +
               std::to_string(ins.n_outputs) + "]";
        break;
    }
    out += " ";
  }
  return out;
}

}  // namespace aedb::es
