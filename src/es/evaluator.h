#ifndef AEDB_ES_EVALUATOR_H_
#define AEDB_ES_EVALUATOR_H_

#include <vector>

#include "es/program.h"

namespace aedb::es {

/// How GetData/SetData handle encrypted annotations. The enclave provides a
/// real implementation backed by its CEK table; the host runs without one and
/// any attempt to touch an encrypted annotation outside the enclave fails —
/// by construction the host never sees column plaintext (paper §3).
class CellCryptoProvider {
 public:
  virtual ~CellCryptoProvider() = default;

  /// `wire` is a kBinary value holding an encrypted cell; returns the
  /// decrypted inner value, which must have type `expected_type`.
  virtual Result<types::Value> DecryptDatum(const types::EncryptionType& enc,
                                            types::TypeId expected_type,
                                            const types::Value& wire) = 0;

  /// Encrypts `plain` into a kBinary cell value under `enc`.
  virtual Result<types::Value> EncryptDatum(const types::EncryptionType& enc,
                                            const types::Value& plain) = 0;
};

/// Host-side hook that ships a kTMEval subprogram into the enclave.
class EnclaveInvoker {
 public:
  virtual ~EnclaveInvoker() = default;

  virtual Result<std::vector<types::Value>> EvalInEnclave(
      Slice program_bytes, const std::vector<types::Value>& inputs,
      uint32_t n_outputs) = 0;

  /// Batched variant: evaluates the same subprogram over every row of
  /// `batch_inputs` (one inputs vector per row) and returns one outputs
  /// vector per row, in order. Implementations backed by a real enclave
  /// override this to cross the call gate once for the whole batch (paper
  /// §4.6 amortization); the default preserves row-at-a-time semantics by
  /// looping EvalInEnclave.
  virtual Result<std::vector<std::vector<types::Value>>> EvalInEnclaveBatch(
      Slice program_bytes,
      const std::vector<std::vector<types::Value>>& batch_inputs,
      uint32_t n_outputs);
};

/// Evaluation environment.
struct EvalContext {
  /// Non-null only inside the enclave.
  CellCryptoProvider* crypto = nullptr;
  /// Non-null only on the host (routes kTMEval).
  EnclaveInvoker* enclave = nullptr;
  /// Enclave only: whether this program is authorized to produce ciphertext
  /// (client-signed DDL authorization, paper §3.2). Programs with encrypted
  /// SetData annotations fail without it.
  bool encryption_authorized = false;
};

/// \brief The CEsExec analog: executes a stack program over input data.
///
/// Inside the enclave the evaluator additionally tracks, per stack slot, the
/// CEK the datum was decrypted with ("taint"). Comparisons require both
/// operands to carry the same taint — an attacker-crafted program comparing
/// decrypted data against chosen plaintext is rejected, the security check
/// the paper calls out in §4.4.1. Boolean predicate results are produced
/// untainted: they are the authorized operational leak (Figure 5).
class EsEvaluator {
 public:
  explicit EsEvaluator(EvalContext ctx) : ctx_(ctx) {}

  /// Runs `program` with `inputs` bound to GetData slots; returns
  /// program.num_outputs() values written by SetData.
  Result<std::vector<types::Value>> Eval(const EsProgram& program,
                                         const std::vector<types::Value>& inputs);

  /// Runs `program` over a batch of rows (one inputs vector per row),
  /// vectorized column-major: every stack slot holds one value per row, and
  /// each kTMEval stub crosses into the enclave ONCE for the whole batch via
  /// EnclaveInvoker::EvalInEnclaveBatch. Taint tracking is per slot — taint
  /// depends only on the program's annotations, never on row data, so one
  /// taint per column is exact.
  ///
  /// Row-level semantics match Eval row by row: a row that fails a data-
  /// dependent check (type mismatch, division by zero) is taken out of the
  /// batch, the remaining rows complete, and the error reported is the one
  /// the lowest-numbered failing row hit first — exactly the error a
  /// row-at-a-time loop would have surfaced. A batch of one row delegates to
  /// Eval, making batch size 1 the literal row-at-a-time degenerate case.
  Result<std::vector<std::vector<types::Value>>> EvalBatch(
      const EsProgram& program,
      const std::vector<std::vector<types::Value>>& rows);

 private:
  struct Slot {
    types::Value value;
    uint32_t taint_cek = 0;  // 0 = untainted (plaintext provenance)
  };

  EvalContext ctx_;
};

}  // namespace aedb::es

#endif  // AEDB_ES_EVALUATOR_H_
