#ifndef AEDB_ES_PROGRAM_H_
#define AEDB_ES_PROGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "types/encryption_type.h"
#include "types/value.h"

namespace aedb::es {

/// Instruction set of the expression-services stack machine (paper §4.4,
/// Figure 7). Expressions are compiled from trees into stack programs; the
/// host program may contain kTMEval stubs that carry a serialized
/// enclave-side program inline, exactly as CEsComp embeds the enclave object.
enum class OpCode : uint8_t {
  kGetData = 1,   // push inputs[index]; decrypts per annotation (enclave only)
  kSetData = 2,   // pop into outputs[index]; encrypts per annotation
  kConst = 3,     // push an inline constant
  kComp = 4,      // pop b, a; push three-valued boolean a <cmp> b
  kLike = 5,      // pop pattern, value; push three-valued boolean LIKE result
  kAdd = 6,
  kSub = 7,
  kMul = 8,
  kDiv = 9,
  kNeg = 10,
  kAnd = 11,      // Kleene three-valued AND
  kOr = 12,
  kNot = 13,
  kIsNull = 14,   // pop v; push (plain) boolean
  kTMEval = 15,   // host only: run the embedded program in the enclave
};

enum class CompareOp : uint8_t {
  kEq = 0,
  kNe = 1,
  kLt = 2,
  kLe = 3,
  kGt = 4,
  kGe = 5,
};

const char* CompareOpName(CompareOp op);
/// True when `cmp` holds for a three-way comparison result `c`.
bool CompareOpHolds(CompareOp op, int c);

struct Instruction {
  OpCode op;
  // kGetData / kSetData
  uint32_t index = 0;
  types::TypeId data_type = types::TypeId::kInt32;
  types::EncryptionType enc;
  // kComp
  CompareOp cmp = CompareOp::kEq;
  // kConst
  types::Value constant;
  // kTMEval: serialized enclave-side program plus its arity. The enclave
  // program is stored inline so that execution re-constructs it inside the
  // enclave (never dereferencing host memory, §4.4).
  Bytes subprogram;
  uint32_t n_inputs = 0;
  uint32_t n_outputs = 0;
};

/// A compiled expression (the CEsComp analog). Built by the query compiler,
/// serialized when shipped into the enclave, cached in the plan cache.
class EsProgram {
 public:
  EsProgram() = default;

  void set_num_outputs(uint32_t n) { num_outputs_ = n; }
  uint32_t num_outputs() const { return num_outputs_; }

  const std::vector<Instruction>& instructions() const { return instructions_; }
  bool empty() const { return instructions_.empty(); }

  // --- builder API ---
  void GetData(uint32_t input_index, types::TypeId type,
               types::EncryptionType enc = types::EncryptionType::Plaintext());
  void SetData(uint32_t output_index, types::TypeId type,
               types::EncryptionType enc = types::EncryptionType::Plaintext());
  void Const(types::Value v);
  void Comp(CompareOp op);
  void Like();
  void Arith(OpCode op);  // kAdd..kNeg
  void Logic(OpCode op);  // kAnd/kOr/kNot
  void IsNull();
  void TMEval(const EsProgram& enclave_program, uint32_t n_inputs,
              uint32_t n_outputs);

  /// True when any instruction produces ciphertext (SetData with an encrypted
  /// annotation). Such programs are "encryption programs" and the enclave
  /// demands client DDL authorization before running them (paper §3.2).
  bool ProducesCiphertext() const;

  /// True when the program (at any nesting level) references the enclave.
  bool RequiresEnclave() const;

  /// True when the program performs a type conversion the client must
  /// authorize (paper §3.2 footnote: the check generalizes from Encrypt to
  /// all enclave type conversions): it either produces ciphertext, or turns
  /// decrypted data into non-boolean plaintext output (decryption DDL).
  /// Predicate programs — encrypted inputs, boolean output — are exempt.
  bool RequiresConversionAuthorization() const;

  /// CEK ids referenced by encrypted annotations, recursively.
  std::vector<uint32_t> ReferencedCekIds() const;

  Bytes Serialize() const;
  static Result<EsProgram> Deserialize(Slice in);

  std::string ToString() const;

 private:
  std::vector<Instruction> instructions_;
  uint32_t num_outputs_ = 0;
};

}  // namespace aedb::es

#endif  // AEDB_ES_PROGRAM_H_
