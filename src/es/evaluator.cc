#include "es/evaluator.h"

namespace aedb::es {

using types::EncKind;
using types::TypeId;
using types::Value;

namespace {

bool TypeCompatible(TypeId declared, const Value& v) {
  if (v.is_null()) return true;
  if (v.type() == declared) return true;
  // Numeric widening between int widths is fine; everything else must match.
  bool declared_numeric = declared == TypeId::kInt32 ||
                          declared == TypeId::kInt64 ||
                          declared == TypeId::kDouble;
  return declared_numeric && v.IsNumeric();
}

}  // namespace

Result<std::vector<Value>> EsEvaluator::Eval(const EsProgram& program,
                                             const std::vector<Value>& inputs) {
  std::vector<Slot> stack;
  std::vector<Value> outputs(program.num_outputs());
  std::vector<bool> written(program.num_outputs(), false);

  auto pop = [&stack]() -> Result<Slot> {
    if (stack.empty()) return Status::Corruption("ES stack underflow");
    Slot s = std::move(stack.back());
    stack.pop_back();
    return s;
  };
  // Two operands may mix plaintext-provenance and a single CEK, but never two
  // different CEKs; the join keeps the stronger taint.
  auto join_taint = [](uint32_t a, uint32_t b, uint32_t* out) -> Status {
    if (a != 0 && b != 0 && a != b) {
      return Status::SecurityError(
          "operands decrypted with different CEKs cannot be combined");
    }
    *out = a != 0 ? a : b;
    return Status::OK();
  };

  for (const Instruction& ins : program.instructions()) {
    switch (ins.op) {
      case OpCode::kGetData: {
        if (ins.index >= inputs.size()) {
          return Status::InvalidArgument("GetData input index out of range");
        }
        const Value& wire = inputs[ins.index];
        if (ins.enc.is_encrypted()) {
          if (ctx_.crypto == nullptr) {
            return Status::SecurityError(
                "host evaluator cannot access encrypted data");
          }
          Value plain;
          AEDB_ASSIGN_OR_RETURN(
              plain, ctx_.crypto->DecryptDatum(ins.enc, ins.data_type, wire));
          if (!TypeCompatible(ins.data_type, plain)) {
            return Status::TypeCheckError("decrypted datum has wrong type");
          }
          stack.push_back(Slot{std::move(plain), ins.enc.cek_id});
        } else {
          if (!TypeCompatible(ins.data_type, wire)) {
            return Status::TypeCheckError("GetData type mismatch");
          }
          stack.push_back(Slot{wire, 0});
        }
        break;
      }
      case OpCode::kSetData: {
        Slot s;
        AEDB_ASSIGN_OR_RETURN(s, pop());
        if (ins.index >= outputs.size()) {
          return Status::InvalidArgument("SetData output index out of range");
        }
        if (ins.enc.is_encrypted()) {
          if (ctx_.crypto == nullptr) {
            return Status::SecurityError(
                "host evaluator cannot produce encrypted data");
          }
          if (!ctx_.encryption_authorized) {
            return Status::PermissionDenied(
                "enclave Encrypt requires client authorization");
          }
          AEDB_ASSIGN_OR_RETURN(outputs[ins.index],
                                ctx_.crypto->EncryptDatum(ins.enc, s.value));
        } else {
          if (ctx_.crypto != nullptr && s.taint_cek != 0 &&
              !ctx_.encryption_authorized) {
            // Only a client-authorized conversion (decryption DDL) may emit
            // decrypted data in the clear.
            return Status::SecurityError(
                "refusing to emit decrypted data as plaintext");
          }
          outputs[ins.index] = std::move(s.value);
        }
        written[ins.index] = true;
        break;
      }
      case OpCode::kConst:
        stack.push_back(Slot{ins.constant, 0});
        break;
      case OpCode::kComp: {
        Slot b, a;
        AEDB_ASSIGN_OR_RETURN(b, pop());
        AEDB_ASSIGN_OR_RETURN(a, pop());
        if (a.taint_cek != b.taint_cek) {
          return Status::SecurityError(
              "comparison operands have different encryption provenance");
        }
        if (a.value.is_null() || b.value.is_null()) {
          stack.push_back(Slot{Value::Null(TypeId::kBool), 0});
          break;
        }
        int c;
        AEDB_ASSIGN_OR_RETURN(c, a.value.Compare(b.value));
        // Predicate results are the authorized leak: untainted, in the clear.
        stack.push_back(Slot{Value::Bool(CompareOpHolds(ins.cmp, c)), 0});
        break;
      }
      case OpCode::kLike: {
        Slot pattern, value;
        AEDB_ASSIGN_OR_RETURN(pattern, pop());
        AEDB_ASSIGN_OR_RETURN(value, pop());
        if (value.taint_cek != pattern.taint_cek) {
          return Status::SecurityError(
              "LIKE operands have different encryption provenance");
        }
        if (value.value.is_null() || pattern.value.is_null()) {
          stack.push_back(Slot{Value::Null(TypeId::kBool), 0});
          break;
        }
        if (value.value.type() != TypeId::kString ||
            pattern.value.type() != TypeId::kString) {
          return Status::TypeCheckError("LIKE requires string operands");
        }
        stack.push_back(
            Slot{Value::Bool(types::SqlLike(value.value.str(),
                                            pattern.value.str())),
                 0});
        break;
      }
      case OpCode::kAdd:
      case OpCode::kSub:
      case OpCode::kMul:
      case OpCode::kDiv: {
        Slot b, a;
        AEDB_ASSIGN_OR_RETURN(b, pop());
        AEDB_ASSIGN_OR_RETURN(a, pop());
        uint32_t taint;
        AEDB_RETURN_IF_ERROR(join_taint(a.taint_cek, b.taint_cek, &taint));
        if (a.value.is_null() || b.value.is_null()) {
          stack.push_back(Slot{Value::Null(TypeId::kInt64), taint});
          break;
        }
        if (!a.value.IsNumeric() || !b.value.IsNumeric()) {
          return Status::TypeCheckError("arithmetic requires numeric operands");
        }
        bool as_double = a.value.type() == TypeId::kDouble ||
                         b.value.type() == TypeId::kDouble;
        Value result;
        if (as_double) {
          double x = a.value.AsDouble(), y = b.value.AsDouble();
          switch (ins.op) {
            case OpCode::kAdd: result = Value::Double(x + y); break;
            case OpCode::kSub: result = Value::Double(x - y); break;
            case OpCode::kMul: result = Value::Double(x * y); break;
            default:
              if (y == 0.0) return Status::InvalidArgument("division by zero");
              result = Value::Double(x / y);
          }
        } else {
          int64_t x = a.value.AsInt64(), y = b.value.AsInt64();
          switch (ins.op) {
            case OpCode::kAdd: result = Value::Int64(x + y); break;
            case OpCode::kSub: result = Value::Int64(x - y); break;
            case OpCode::kMul: result = Value::Int64(x * y); break;
            default:
              if (y == 0) return Status::InvalidArgument("division by zero");
              result = Value::Int64(x / y);
          }
        }
        stack.push_back(Slot{std::move(result), taint});
        break;
      }
      case OpCode::kNeg: {
        Slot a;
        AEDB_ASSIGN_OR_RETURN(a, pop());
        if (a.value.is_null()) {
          stack.push_back(Slot{Value::Null(TypeId::kInt64), a.taint_cek});
          break;
        }
        if (!a.value.IsNumeric()) {
          return Status::TypeCheckError("negation requires a numeric operand");
        }
        Value r = a.value.type() == TypeId::kDouble
                      ? Value::Double(-a.value.AsDouble())
                      : Value::Int64(-a.value.AsInt64());
        stack.push_back(Slot{std::move(r), a.taint_cek});
        break;
      }
      case OpCode::kAnd:
      case OpCode::kOr: {
        Slot b, a;
        AEDB_ASSIGN_OR_RETURN(b, pop());
        AEDB_ASSIGN_OR_RETURN(a, pop());
        uint32_t taint;
        AEDB_RETURN_IF_ERROR(join_taint(a.taint_cek, b.taint_cek, &taint));
        auto tri = [](const Value& v) -> Result<int> {  // 0/1/-1(unknown)
          if (v.is_null()) return -1;
          if (v.type() != TypeId::kBool) {
            return Status::TypeCheckError("logic op requires boolean operands");
          }
          return v.bool_v() ? 1 : 0;
        };
        int x, y;
        AEDB_ASSIGN_OR_RETURN(x, tri(a.value));
        AEDB_ASSIGN_OR_RETURN(y, tri(b.value));
        int r;
        if (ins.op == OpCode::kAnd) {
          r = (x == 0 || y == 0) ? 0 : (x == 1 && y == 1 ? 1 : -1);
        } else {
          r = (x == 1 || y == 1) ? 1 : (x == 0 && y == 0 ? 0 : -1);
        }
        stack.push_back(Slot{r == -1 ? Value::Null(TypeId::kBool)
                                     : Value::Bool(r == 1),
                             taint});
        break;
      }
      case OpCode::kNot: {
        Slot a;
        AEDB_ASSIGN_OR_RETURN(a, pop());
        if (a.value.is_null()) {
          stack.push_back(Slot{Value::Null(TypeId::kBool), a.taint_cek});
          break;
        }
        if (a.value.type() != TypeId::kBool) {
          return Status::TypeCheckError("NOT requires a boolean operand");
        }
        stack.push_back(Slot{Value::Bool(!a.value.bool_v()), a.taint_cek});
        break;
      }
      case OpCode::kIsNull: {
        Slot a;
        AEDB_ASSIGN_OR_RETURN(a, pop());
        // Nullness of an authorized predicate operand is part of the
        // operational leakage surface; result is a clear boolean.
        stack.push_back(Slot{Value::Bool(a.value.is_null()), 0});
        break;
      }
      case OpCode::kTMEval: {
        if (ctx_.crypto != nullptr) {
          return Status::SecurityError("TMEval not allowed inside the enclave");
        }
        if (ctx_.enclave == nullptr) {
          return Status::FailedPrecondition(
              "expression requires an enclave but none is available");
        }
        if (stack.size() < ins.n_inputs) {
          return Status::Corruption("ES stack underflow at TMEval");
        }
        std::vector<Value> sub_inputs(ins.n_inputs);
        for (uint32_t i = ins.n_inputs; i-- > 0;) {
          sub_inputs[i] = std::move(stack.back().value);
          stack.pop_back();
        }
        std::vector<Value> sub_outputs;
        AEDB_ASSIGN_OR_RETURN(
            sub_outputs,
            ctx_.enclave->EvalInEnclave(ins.subprogram, sub_inputs,
                                        ins.n_outputs));
        if (sub_outputs.size() != ins.n_outputs) {
          return Status::Internal("enclave returned wrong output arity");
        }
        for (Value& v : sub_outputs) stack.push_back(Slot{std::move(v), 0});
        break;
      }
    }
  }
  for (size_t i = 0; i < written.size(); ++i) {
    if (!written[i]) {
      return Status::Corruption("ES program left output " + std::to_string(i) +
                                " unwritten");
    }
  }
  return outputs;
}

}  // namespace aedb::es
