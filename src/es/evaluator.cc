#include "es/evaluator.h"

namespace aedb::es {

using types::EncKind;
using types::TypeId;
using types::Value;

namespace {

bool TypeCompatible(TypeId declared, const Value& v) {
  if (v.is_null()) return true;
  if (v.type() == declared) return true;
  // Numeric widening between int widths is fine; everything else must match.
  bool declared_numeric = declared == TypeId::kInt32 ||
                          declared == TypeId::kInt64 ||
                          declared == TypeId::kDouble;
  return declared_numeric && v.IsNumeric();
}

// ---------------------------------------------------------------------------
// Scalar kernels shared by the row interpreter and the batch interpreter.
// Each encodes the per-value semantics of exactly one opcode, so the two
// execution modes cannot diverge: the batch path runs the same kernel once
// per lane.

Result<Value> CompKernel(CompareOp cmp, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null(TypeId::kBool);
  int c;
  AEDB_ASSIGN_OR_RETURN(c, a.Compare(b));
  return Value::Bool(CompareOpHolds(cmp, c));
}

Result<Value> LikeKernel(const Value& value, const Value& pattern) {
  if (value.is_null() || pattern.is_null()) return Value::Null(TypeId::kBool);
  if (value.type() != TypeId::kString || pattern.type() != TypeId::kString) {
    return Status::TypeCheckError("LIKE requires string operands");
  }
  return Value::Bool(types::SqlLike(value.str(), pattern.str()));
}

Result<Value> ArithKernel(OpCode op, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null(TypeId::kInt64);
  if (!a.IsNumeric() || !b.IsNumeric()) {
    return Status::TypeCheckError("arithmetic requires numeric operands");
  }
  bool as_double =
      a.type() == TypeId::kDouble || b.type() == TypeId::kDouble;
  if (as_double) {
    double x = a.AsDouble(), y = b.AsDouble();
    switch (op) {
      case OpCode::kAdd: return Value::Double(x + y);
      case OpCode::kSub: return Value::Double(x - y);
      case OpCode::kMul: return Value::Double(x * y);
      default:
        if (y == 0.0) return Status::InvalidArgument("division by zero");
        return Value::Double(x / y);
    }
  }
  int64_t x = a.AsInt64(), y = b.AsInt64();
  switch (op) {
    case OpCode::kAdd: return Value::Int64(x + y);
    case OpCode::kSub: return Value::Int64(x - y);
    case OpCode::kMul: return Value::Int64(x * y);
    default:
      if (y == 0) return Status::InvalidArgument("division by zero");
      return Value::Int64(x / y);
  }
}

Result<Value> NegKernel(const Value& a) {
  if (a.is_null()) return Value::Null(TypeId::kInt64);
  if (!a.IsNumeric()) {
    return Status::TypeCheckError("negation requires a numeric operand");
  }
  return a.type() == TypeId::kDouble ? Value::Double(-a.AsDouble())
                                     : Value::Int64(-a.AsInt64());
}

// 0/1/-1(unknown) for Kleene three-valued logic.
Result<int> TriBool(const Value& v) {
  if (v.is_null()) return -1;
  if (v.type() != TypeId::kBool) {
    return Status::TypeCheckError("logic op requires boolean operands");
  }
  return v.bool_v() ? 1 : 0;
}

Result<Value> LogicKernel(OpCode op, const Value& a, const Value& b) {
  int x, y;
  AEDB_ASSIGN_OR_RETURN(x, TriBool(a));
  AEDB_ASSIGN_OR_RETURN(y, TriBool(b));
  int r;
  if (op == OpCode::kAnd) {
    r = (x == 0 || y == 0) ? 0 : (x == 1 && y == 1 ? 1 : -1);
  } else {
    r = (x == 1 || y == 1) ? 1 : (x == 0 && y == 0 ? 0 : -1);
  }
  return r == -1 ? Value::Null(TypeId::kBool) : Value::Bool(r == 1);
}

Result<Value> NotKernel(const Value& a) {
  if (a.is_null()) return Value::Null(TypeId::kBool);
  if (a.type() != TypeId::kBool) {
    return Status::TypeCheckError("NOT requires a boolean operand");
  }
  return Value::Bool(!a.bool_v());
}

// Two operands may mix plaintext-provenance and a single CEK, but never two
// different CEKs; the join keeps the stronger taint.
Status JoinTaint(uint32_t a, uint32_t b, uint32_t* out) {
  if (a != 0 && b != 0 && a != b) {
    return Status::SecurityError(
        "operands decrypted with different CEKs cannot be combined");
  }
  *out = a != 0 ? a : b;
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// Default batched invoker: row-at-a-time loop. Real enclave-backed invokers
// override this with a single call-gate crossing.

Result<std::vector<std::vector<Value>>> EnclaveInvoker::EvalInEnclaveBatch(
    Slice program_bytes, const std::vector<std::vector<Value>>& batch_inputs,
    uint32_t n_outputs) {
  std::vector<std::vector<Value>> out;
  out.reserve(batch_inputs.size());
  for (const std::vector<Value>& inputs : batch_inputs) {
    std::vector<Value> row;
    AEDB_ASSIGN_OR_RETURN(row,
                          EvalInEnclave(program_bytes, inputs, n_outputs));
    out.push_back(std::move(row));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Row-at-a-time interpreter.

Result<std::vector<Value>> EsEvaluator::Eval(const EsProgram& program,
                                             const std::vector<Value>& inputs) {
  std::vector<Slot> stack;
  std::vector<Value> outputs(program.num_outputs());
  std::vector<bool> written(program.num_outputs(), false);

  auto pop = [&stack]() -> Result<Slot> {
    if (stack.empty()) return Status::Corruption("ES stack underflow");
    Slot s = std::move(stack.back());
    stack.pop_back();
    return s;
  };

  for (const Instruction& ins : program.instructions()) {
    switch (ins.op) {
      case OpCode::kGetData: {
        if (ins.index >= inputs.size()) {
          return Status::InvalidArgument("GetData input index out of range");
        }
        const Value& wire = inputs[ins.index];
        if (ins.enc.is_encrypted()) {
          if (ctx_.crypto == nullptr) {
            return Status::SecurityError(
                "host evaluator cannot access encrypted data");
          }
          Value plain;
          AEDB_ASSIGN_OR_RETURN(
              plain, ctx_.crypto->DecryptDatum(ins.enc, ins.data_type, wire));
          if (!TypeCompatible(ins.data_type, plain)) {
            return Status::TypeCheckError("decrypted datum has wrong type");
          }
          stack.push_back(Slot{std::move(plain), ins.enc.cek_id});
        } else {
          if (!TypeCompatible(ins.data_type, wire)) {
            return Status::TypeCheckError("GetData type mismatch");
          }
          stack.push_back(Slot{wire, 0});
        }
        break;
      }
      case OpCode::kSetData: {
        Slot s;
        AEDB_ASSIGN_OR_RETURN(s, pop());
        if (ins.index >= outputs.size()) {
          return Status::InvalidArgument("SetData output index out of range");
        }
        if (ins.enc.is_encrypted()) {
          if (ctx_.crypto == nullptr) {
            return Status::SecurityError(
                "host evaluator cannot produce encrypted data");
          }
          if (!ctx_.encryption_authorized) {
            return Status::PermissionDenied(
                "enclave Encrypt requires client authorization");
          }
          AEDB_ASSIGN_OR_RETURN(outputs[ins.index],
                                ctx_.crypto->EncryptDatum(ins.enc, s.value));
        } else {
          if (ctx_.crypto != nullptr && s.taint_cek != 0 &&
              !ctx_.encryption_authorized) {
            // Only a client-authorized conversion (decryption DDL) may emit
            // decrypted data in the clear.
            return Status::SecurityError(
                "refusing to emit decrypted data as plaintext");
          }
          outputs[ins.index] = std::move(s.value);
        }
        written[ins.index] = true;
        break;
      }
      case OpCode::kConst:
        stack.push_back(Slot{ins.constant, 0});
        break;
      case OpCode::kComp: {
        Slot b, a;
        AEDB_ASSIGN_OR_RETURN(b, pop());
        AEDB_ASSIGN_OR_RETURN(a, pop());
        if (a.taint_cek != b.taint_cek) {
          return Status::SecurityError(
              "comparison operands have different encryption provenance");
        }
        Value r;
        AEDB_ASSIGN_OR_RETURN(r, CompKernel(ins.cmp, a.value, b.value));
        // Predicate results are the authorized leak: untainted, in the clear.
        stack.push_back(Slot{std::move(r), 0});
        break;
      }
      case OpCode::kLike: {
        Slot pattern, value;
        AEDB_ASSIGN_OR_RETURN(pattern, pop());
        AEDB_ASSIGN_OR_RETURN(value, pop());
        if (value.taint_cek != pattern.taint_cek) {
          return Status::SecurityError(
              "LIKE operands have different encryption provenance");
        }
        Value r;
        AEDB_ASSIGN_OR_RETURN(r, LikeKernel(value.value, pattern.value));
        stack.push_back(Slot{std::move(r), 0});
        break;
      }
      case OpCode::kAdd:
      case OpCode::kSub:
      case OpCode::kMul:
      case OpCode::kDiv: {
        Slot b, a;
        AEDB_ASSIGN_OR_RETURN(b, pop());
        AEDB_ASSIGN_OR_RETURN(a, pop());
        uint32_t taint;
        AEDB_RETURN_IF_ERROR(JoinTaint(a.taint_cek, b.taint_cek, &taint));
        Value r;
        AEDB_ASSIGN_OR_RETURN(r, ArithKernel(ins.op, a.value, b.value));
        stack.push_back(Slot{std::move(r), taint});
        break;
      }
      case OpCode::kNeg: {
        Slot a;
        AEDB_ASSIGN_OR_RETURN(a, pop());
        Value r;
        AEDB_ASSIGN_OR_RETURN(r, NegKernel(a.value));
        stack.push_back(Slot{std::move(r), a.taint_cek});
        break;
      }
      case OpCode::kAnd:
      case OpCode::kOr: {
        Slot b, a;
        AEDB_ASSIGN_OR_RETURN(b, pop());
        AEDB_ASSIGN_OR_RETURN(a, pop());
        uint32_t taint;
        AEDB_RETURN_IF_ERROR(JoinTaint(a.taint_cek, b.taint_cek, &taint));
        Value r;
        AEDB_ASSIGN_OR_RETURN(r, LogicKernel(ins.op, a.value, b.value));
        stack.push_back(Slot{std::move(r), taint});
        break;
      }
      case OpCode::kNot: {
        Slot a;
        AEDB_ASSIGN_OR_RETURN(a, pop());
        Value r;
        AEDB_ASSIGN_OR_RETURN(r, NotKernel(a.value));
        stack.push_back(Slot{std::move(r), a.taint_cek});
        break;
      }
      case OpCode::kIsNull: {
        Slot a;
        AEDB_ASSIGN_OR_RETURN(a, pop());
        // Nullness of an authorized predicate operand is part of the
        // operational leakage surface; result is a clear boolean.
        stack.push_back(Slot{Value::Bool(a.value.is_null()), 0});
        break;
      }
      case OpCode::kTMEval: {
        if (ctx_.crypto != nullptr) {
          return Status::SecurityError("TMEval not allowed inside the enclave");
        }
        if (ctx_.enclave == nullptr) {
          return Status::FailedPrecondition(
              "expression requires an enclave but none is available");
        }
        if (stack.size() < ins.n_inputs) {
          return Status::Corruption("ES stack underflow at TMEval");
        }
        std::vector<Value> sub_inputs(ins.n_inputs);
        for (uint32_t i = ins.n_inputs; i-- > 0;) {
          sub_inputs[i] = std::move(stack.back().value);
          stack.pop_back();
        }
        std::vector<Value> sub_outputs;
        AEDB_ASSIGN_OR_RETURN(
            sub_outputs,
            ctx_.enclave->EvalInEnclave(ins.subprogram, sub_inputs,
                                        ins.n_outputs));
        if (sub_outputs.size() != ins.n_outputs) {
          return Status::Internal("enclave returned wrong output arity");
        }
        for (Value& v : sub_outputs) stack.push_back(Slot{std::move(v), 0});
        break;
      }
    }
  }
  for (size_t i = 0; i < written.size(); ++i) {
    if (!written[i]) {
      return Status::Corruption("ES program left output " + std::to_string(i) +
                                " unwritten");
    }
  }
  return outputs;
}

// ---------------------------------------------------------------------------
// Batch interpreter: the stack holds columns (one value per row) instead of
// scalars. Structural failures (stack underflow, bad indices, taint
// violations, missing enclave) are data-independent and abort the whole
// batch — identical to what every row would have reported. Data-dependent
// failures are tracked per row; the batch completes for the surviving rows
// and the error surfaced is the first error of the lowest failing row, which
// is what the row loop would have returned.

Result<std::vector<std::vector<Value>>> EsEvaluator::EvalBatch(
    const EsProgram& program, const std::vector<std::vector<Value>>& rows) {
  const size_t n = rows.size();
  std::vector<std::vector<Value>> outputs;
  if (n == 0) return outputs;
  if (n == 1) {
    // Degenerate case: the row path, instruction for instruction.
    std::vector<Value> out;
    AEDB_ASSIGN_OR_RETURN(out, Eval(program, rows[0]));
    outputs.push_back(std::move(out));
    return outputs;
  }

  // One column per stack slot. Taint is per column: it derives from GetData
  // annotations and taint joins only, never from row data.
  struct Column {
    std::vector<Value> v;
    uint32_t taint_cek = 0;
  };
  std::vector<Column> stack;
  outputs.assign(n, std::vector<Value>(program.num_outputs()));
  std::vector<bool> written(program.num_outputs(), false);
  std::vector<Status> row_error(n, Status::OK());
  std::vector<char> failed(n, 0);

  auto fail_row = [&](size_t i, Status st) {
    if (!failed[i]) {
      failed[i] = 1;
      row_error[i] = std::move(st);
    }
  };
  auto pop = [&stack]() -> Result<Column> {
    if (stack.empty()) return Status::Corruption("ES stack underflow");
    Column c = std::move(stack.back());
    stack.pop_back();
    return c;
  };
  // Applies a binary kernel lane-wise over two popped columns.
  auto binary_lanes = [&](const Column& a, const Column& b, uint32_t taint,
                          auto&& kernel) {
    Column out;
    out.taint_cek = taint;
    out.v.resize(n);
    for (size_t i = 0; i < n; ++i) {
      if (failed[i]) continue;
      auto r = kernel(a.v[i], b.v[i]);
      if (!r.ok()) {
        fail_row(i, r.status());
        continue;
      }
      out.v[i] = std::move(*r);
    }
    stack.push_back(std::move(out));
  };

  for (const Instruction& ins : program.instructions()) {
    switch (ins.op) {
      case OpCode::kGetData: {
        Column col;
        col.v.resize(n);
        if (ins.enc.is_encrypted()) {
          if (ctx_.crypto == nullptr) {
            return Status::SecurityError(
                "host evaluator cannot access encrypted data");
          }
          col.taint_cek = ins.enc.cek_id;
        }
        for (size_t i = 0; i < n; ++i) {
          if (failed[i]) continue;
          if (ins.index >= rows[i].size()) {
            fail_row(i, Status::InvalidArgument(
                            "GetData input index out of range"));
            continue;
          }
          const Value& wire = rows[i][ins.index];
          if (ins.enc.is_encrypted()) {
            auto plain = ctx_.crypto->DecryptDatum(ins.enc, ins.data_type, wire);
            if (!plain.ok()) {
              fail_row(i, plain.status());
              continue;
            }
            if (!TypeCompatible(ins.data_type, *plain)) {
              fail_row(i,
                       Status::TypeCheckError("decrypted datum has wrong type"));
              continue;
            }
            col.v[i] = std::move(*plain);
          } else {
            if (!TypeCompatible(ins.data_type, wire)) {
              fail_row(i, Status::TypeCheckError("GetData type mismatch"));
              continue;
            }
            col.v[i] = wire;
          }
        }
        stack.push_back(std::move(col));
        break;
      }
      case OpCode::kSetData: {
        Column s;
        AEDB_ASSIGN_OR_RETURN(s, pop());
        if (ins.index >= program.num_outputs()) {
          return Status::InvalidArgument("SetData output index out of range");
        }
        if (ins.enc.is_encrypted()) {
          if (ctx_.crypto == nullptr) {
            return Status::SecurityError(
                "host evaluator cannot produce encrypted data");
          }
          if (!ctx_.encryption_authorized) {
            return Status::PermissionDenied(
                "enclave Encrypt requires client authorization");
          }
          for (size_t i = 0; i < n; ++i) {
            if (failed[i]) continue;
            auto enc = ctx_.crypto->EncryptDatum(ins.enc, s.v[i]);
            if (!enc.ok()) {
              fail_row(i, enc.status());
              continue;
            }
            outputs[i][ins.index] = std::move(*enc);
          }
        } else {
          if (ctx_.crypto != nullptr && s.taint_cek != 0 &&
              !ctx_.encryption_authorized) {
            return Status::SecurityError(
                "refusing to emit decrypted data as plaintext");
          }
          for (size_t i = 0; i < n; ++i) {
            if (failed[i]) continue;
            outputs[i][ins.index] = std::move(s.v[i]);
          }
        }
        written[ins.index] = true;
        break;
      }
      case OpCode::kConst: {
        Column col;
        col.v.assign(n, ins.constant);
        stack.push_back(std::move(col));
        break;
      }
      case OpCode::kComp: {
        Column b, a;
        AEDB_ASSIGN_OR_RETURN(b, pop());
        AEDB_ASSIGN_OR_RETURN(a, pop());
        if (a.taint_cek != b.taint_cek) {
          return Status::SecurityError(
              "comparison operands have different encryption provenance");
        }
        // Predicate results are the authorized leak: untainted, in the clear.
        binary_lanes(a, b, 0, [&](const Value& x, const Value& y) {
          return CompKernel(ins.cmp, x, y);
        });
        break;
      }
      case OpCode::kLike: {
        Column pattern, value;
        AEDB_ASSIGN_OR_RETURN(pattern, pop());
        AEDB_ASSIGN_OR_RETURN(value, pop());
        if (value.taint_cek != pattern.taint_cek) {
          return Status::SecurityError(
              "LIKE operands have different encryption provenance");
        }
        binary_lanes(value, pattern, 0, [](const Value& x, const Value& y) {
          return LikeKernel(x, y);
        });
        break;
      }
      case OpCode::kAdd:
      case OpCode::kSub:
      case OpCode::kMul:
      case OpCode::kDiv: {
        Column b, a;
        AEDB_ASSIGN_OR_RETURN(b, pop());
        AEDB_ASSIGN_OR_RETURN(a, pop());
        uint32_t taint;
        AEDB_RETURN_IF_ERROR(JoinTaint(a.taint_cek, b.taint_cek, &taint));
        binary_lanes(a, b, taint, [&](const Value& x, const Value& y) {
          return ArithKernel(ins.op, x, y);
        });
        break;
      }
      case OpCode::kNeg: {
        Column a;
        AEDB_ASSIGN_OR_RETURN(a, pop());
        Column out;
        out.taint_cek = a.taint_cek;
        out.v.resize(n);
        for (size_t i = 0; i < n; ++i) {
          if (failed[i]) continue;
          auto r = NegKernel(a.v[i]);
          if (!r.ok()) {
            fail_row(i, r.status());
            continue;
          }
          out.v[i] = std::move(*r);
        }
        stack.push_back(std::move(out));
        break;
      }
      case OpCode::kAnd:
      case OpCode::kOr: {
        Column b, a;
        AEDB_ASSIGN_OR_RETURN(b, pop());
        AEDB_ASSIGN_OR_RETURN(a, pop());
        uint32_t taint;
        AEDB_RETURN_IF_ERROR(JoinTaint(a.taint_cek, b.taint_cek, &taint));
        binary_lanes(a, b, taint, [&](const Value& x, const Value& y) {
          return LogicKernel(ins.op, x, y);
        });
        break;
      }
      case OpCode::kNot: {
        Column a;
        AEDB_ASSIGN_OR_RETURN(a, pop());
        Column out;
        out.taint_cek = a.taint_cek;
        out.v.resize(n);
        for (size_t i = 0; i < n; ++i) {
          if (failed[i]) continue;
          auto r = NotKernel(a.v[i]);
          if (!r.ok()) {
            fail_row(i, r.status());
            continue;
          }
          out.v[i] = std::move(*r);
        }
        stack.push_back(std::move(out));
        break;
      }
      case OpCode::kIsNull: {
        Column a;
        AEDB_ASSIGN_OR_RETURN(a, pop());
        Column out;
        out.v.resize(n);
        for (size_t i = 0; i < n; ++i) {
          if (failed[i]) continue;
          out.v[i] = Value::Bool(a.v[i].is_null());
        }
        stack.push_back(std::move(out));
        break;
      }
      case OpCode::kTMEval: {
        if (ctx_.crypto != nullptr) {
          return Status::SecurityError("TMEval not allowed inside the enclave");
        }
        if (ctx_.enclave == nullptr) {
          return Status::FailedPrecondition(
              "expression requires an enclave but none is available");
        }
        if (stack.size() < ins.n_inputs) {
          return Status::Corruption("ES stack underflow at TMEval");
        }
        std::vector<Column> args(ins.n_inputs);
        for (uint32_t i = ins.n_inputs; i-- > 0;) {
          args[i] = std::move(stack.back());
          stack.pop_back();
        }
        // Gather the surviving rows and cross the boundary ONCE for all of
        // them — the batch amortization this whole pipeline exists for.
        std::vector<size_t> active;
        active.reserve(n);
        for (size_t i = 0; i < n; ++i) {
          if (!failed[i]) active.push_back(i);
        }
        std::vector<std::vector<Value>> sub_batch(active.size());
        for (size_t a = 0; a < active.size(); ++a) {
          sub_batch[a].resize(ins.n_inputs);
          for (uint32_t j = 0; j < ins.n_inputs; ++j) {
            sub_batch[a][j] = std::move(args[j].v[active[a]]);
          }
        }
        std::vector<std::vector<Value>> sub_outputs;
        if (!active.empty()) {
          AEDB_ASSIGN_OR_RETURN(
              sub_outputs, ctx_.enclave->EvalInEnclaveBatch(
                               ins.subprogram, sub_batch, ins.n_outputs));
          if (sub_outputs.size() != active.size()) {
            return Status::Internal("enclave returned wrong batch arity");
          }
        }
        for (uint32_t k = 0; k < ins.n_outputs; ++k) {
          Column col;
          col.v.resize(n);
          for (size_t a = 0; a < active.size(); ++a) {
            if (sub_outputs[a].size() != ins.n_outputs) {
              return Status::Internal("enclave returned wrong output arity");
            }
            col.v[active[a]] = sub_outputs[a][k];
          }
          stack.push_back(std::move(col));
        }
        break;
      }
    }
  }
  for (size_t i = 0; i < written.size(); ++i) {
    if (!written[i]) {
      return Status::Corruption("ES program left output " + std::to_string(i) +
                                " unwritten");
    }
  }
  for (size_t i = 0; i < n; ++i) {
    if (failed[i]) return row_error[i];
  }
  return outputs;
}

}  // namespace aedb::es
