#include "client/retry.h"

namespace aedb::client {

const char* ErrorClassName(ErrorClass c) {
  switch (c) {
    case ErrorClass::kFatal: return "fatal";
    case ErrorClass::kReattest: return "reattest";
    case ErrorClass::kReconnect: return "reconnect";
    case ErrorClass::kBackoffRetry: return "backoff-retry";
    case ErrorClass::kDeadline: return "deadline";
  }
  return "unknown";
}

ErrorClass ClassifyError(const Status& status) {
  switch (status.code()) {
    // The enclave lost state we installed: the session table was cleared
    // (restart), our session was evicted, or CEKs are missing. Before the
    // kSessionNotFound code existed the server surfaced evictions as
    // NotFound("unknown enclave session ..."), so keep honoring that spelling
    // for mixed-version wire peers.
    case StatusCode::kSessionNotFound:
    case StatusCode::kKeyNotInEnclave:
      return ErrorClass::kReattest;
    case StatusCode::kNotFound:
      return status.message().find("enclave session") != std::string::npos
                 ? ErrorClass::kReattest
                 : ErrorClass::kFatal;
    // Transport/server gone. The request's fate is unknown.
    case StatusCode::kUnavailable:
      return ErrorClass::kReconnect;
    // Shed before execution: always safe to retry after backing off.
    case StatusCode::kOverloaded:
      return ErrorClass::kBackoffRetry;
    // Budget exhausted (or cancelled): never replay.
    case StatusCode::kDeadlineExceeded:
      return ErrorClass::kDeadline;
    default:
      return ErrorClass::kFatal;
  }
}

std::chrono::milliseconds ComputeBackoff(int attempt, const RetryPolicy& policy,
                                         Xoshiro256* prng) {
  // Exponential base, computed without overflow: stop doubling once past the
  // ceiling.
  int64_t ms = policy.base_backoff.count();
  for (int i = 0; i < attempt && ms < policy.max_backoff.count(); ++i) ms *= 2;
  if (ms > policy.max_backoff.count()) ms = policy.max_backoff.count();
  // Jitter into [50%, 100%] so a fleet of clients recovering from the same
  // restart does not re-attest in lockstep.
  double scale = 0.5 + 0.5 * prng->NextDouble();
  return std::chrono::milliseconds(
      static_cast<int64_t>(static_cast<double>(ms) * scale));
}

}  // namespace aedb::client
