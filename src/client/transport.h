#ifndef AEDB_CLIENT_TRANSPORT_H_
#define AEDB_CLIENT_TRANSPORT_H_

#include <string>
#include <utility>
#include <vector>

#include "server/database.h"

namespace aedb::client {

/// Named parameters carry plaintext values (application side) or wire values
/// (after the driver encrypted them).
using NamedParams = std::vector<std::pair<std::string, types::Value>>;

/// \brief The driver's view of the server: every round trip the AE driver
/// makes, as an abstract interface.
///
/// Two implementations exist:
///   - InProcessTransport: direct calls into a `server::Database` in the same
///     process (the original seed wiring; zero marshalling cost).
///   - net::SocketTransport: the same calls marshalled through the aedb wire
///     protocol over a TCP connection to `aedb_serverd`.
///
/// The AE security invariant lives ABOVE this interface: the driver encrypts
/// parameters and decrypts results before/after calling Execute*, and key
/// material only ever crosses a Transport sealed under the enclave session
/// secret (ForwardKeysToEnclave). A Transport implementation never sees
/// column plaintext for encrypted columns — which is exactly why the network
/// layer needs no TLS for the paper's threat model demos: the wire shows an
/// adversary nothing the untrusted server process couldn't already see.
class Transport {
 public:
  virtual ~Transport() = default;

  // ----- health / retry plumbing -----
  /// False once the underlying connection is unusable (poisoned socket). The
  /// driver then reconnects via its transport factory instead of retrying on
  /// a dead pipe. In-process transports are always healthy.
  virtual bool healthy() const { return true; }
  /// Stamps the retry attempt (0 = first try) onto subsequent Execute* round
  /// trips so the server can count recovery traffic. No-op off the wire.
  virtual void set_attempt(uint32_t attempt) { (void)attempt; }
  /// Stamps the query's remaining deadline budget (milliseconds; 0 = none)
  /// onto subsequent Execute* round trips. The server converts it into a
  /// QueryContext bounding execution, lock waits and enclave work. Default
  /// no-op so test transports need no changes.
  virtual void set_deadline(uint32_t remaining_ms) { (void)remaining_ms; }

  // ----- transactions -----
  virtual Result<uint64_t> BeginTransaction() = 0;
  virtual Status CommitTransaction(uint64_t txn) = 0;
  virtual Status RollbackTransaction(uint64_t txn) = 0;

  // ----- statements -----
  virtual Status ExecuteDdl(const std::string& sql, uint64_t session_id) = 0;
  virtual Result<sql::ResultSet> Execute(const std::string& sql,
                                         const std::vector<types::Value>& params,
                                         uint64_t txn, uint64_t session_id) = 0;
  virtual Result<sql::ResultSet> ExecuteNamed(const std::string& sql,
                                              const NamedParams& params,
                                              uint64_t txn,
                                              uint64_t session_id) = 0;

  // ----- describe / attestation -----
  virtual Result<server::DescribeResult> DescribeParameterEncryption(
      const std::string& sql, Slice client_dh_public) = 0;
  virtual Result<server::DescribeResult> Attest(Slice client_dh_public) = 0;

  // ----- sharding -----
  /// Engine shards behind this server. The driver attests each shard's
  /// enclave independently (per-node enclave state is the unit of
  /// attestation) and seals keys/authorizations to each shard's session.
  /// Single-shard defaults keep every pre-sharding transport working.
  virtual uint32_t shard_count() const { return 1; }
  virtual Result<server::DescribeResult> AttestShard(uint32_t shard,
                                                     Slice client_dh_public) {
    if (shard != 0) return Status::InvalidArgument("no such shard");
    return Attest(client_dh_public);
  }
  virtual Status ForwardKeysToShard(uint32_t shard, uint64_t session_id,
                                    uint64_t nonce, Slice sealed) {
    if (shard != 0) return Status::InvalidArgument("no such shard");
    return ForwardKeysToEnclave(session_id, nonce, sealed);
  }
  virtual Status ForwardAuthorizationToShard(uint32_t shard,
                                             uint64_t session_id,
                                             uint64_t nonce, Slice sealed) {
    if (shard != 0) return Status::InvalidArgument("no such shard");
    return ForwardEncryptionAuthorization(session_id, nonce, sealed);
  }
  /// Runs a DDL statement on one shard only (enclave DDL is authorized per
  /// shard session). Plain ExecuteDdl broadcasts.
  virtual Status ExecuteDdlOnShard(uint32_t shard, const std::string& sql,
                                   uint64_t session_id) {
    if (shard != 0) return Status::InvalidArgument("no such shard");
    return ExecuteDdl(sql, session_id);
  }

  // ----- key metadata -----
  virtual Result<server::KeyDescription> GetKeyDescription(uint32_t cek_id) = 0;
  virtual Result<types::EncryptionType> ColumnEncryption(
      const std::string& table, const std::string& column) = 0;
  virtual Result<keys::CmkInfo> GetCmk(const std::string& name) = 0;
  virtual Result<uint32_t> CekIdByName(const std::string& name) = 0;

  // ----- driver→enclave passthrough (sealed under the session secret) -----
  virtual Status ForwardKeysToEnclave(uint64_t session_id, uint64_t nonce,
                                      Slice sealed) = 0;
  virtual Status ForwardEncryptionAuthorization(uint64_t session_id,
                                                uint64_t nonce,
                                                Slice sealed) = 0;

  // ----- client tooling -----
  virtual Status AlterColumnMetadataForClientTool(
      const std::string& table, const std::string& column,
      const sql::EncryptionSpec& enc) = 0;
};

/// Direct in-process calls into a `server::Database` (the seed's original
/// wiring). No marshalling; pointers from the catalog are copied so the
/// Transport contract (value semantics) holds on both paths.
class InProcessTransport : public Transport {
 public:
  explicit InProcessTransport(server::SqlBackend* db) : db_(db) {}

  void set_deadline(uint32_t remaining_ms) override {
    deadline_ms_ = remaining_ms;
  }

  Result<uint64_t> BeginTransaction() override;
  Status CommitTransaction(uint64_t txn) override;
  Status RollbackTransaction(uint64_t txn) override;

  Status ExecuteDdl(const std::string& sql, uint64_t session_id) override;
  Result<sql::ResultSet> Execute(const std::string& sql,
                                 const std::vector<types::Value>& params,
                                 uint64_t txn, uint64_t session_id) override;
  Result<sql::ResultSet> ExecuteNamed(const std::string& sql,
                                      const NamedParams& params, uint64_t txn,
                                      uint64_t session_id) override;

  Result<server::DescribeResult> DescribeParameterEncryption(
      const std::string& sql, Slice client_dh_public) override;
  Result<server::DescribeResult> Attest(Slice client_dh_public) override;

  uint32_t shard_count() const override { return db_->shard_count(); }
  Result<server::DescribeResult> AttestShard(uint32_t shard,
                                             Slice client_dh_public) override;
  Status ForwardKeysToShard(uint32_t shard, uint64_t session_id,
                            uint64_t nonce, Slice sealed) override;
  Status ForwardAuthorizationToShard(uint32_t shard, uint64_t session_id,
                                     uint64_t nonce, Slice sealed) override;
  Status ExecuteDdlOnShard(uint32_t shard, const std::string& sql,
                           uint64_t session_id) override;

  Result<server::KeyDescription> GetKeyDescription(uint32_t cek_id) override;
  Result<types::EncryptionType> ColumnEncryption(
      const std::string& table, const std::string& column) override;
  Result<keys::CmkInfo> GetCmk(const std::string& name) override;
  Result<uint32_t> CekIdByName(const std::string& name) override;

  Status ForwardKeysToEnclave(uint64_t session_id, uint64_t nonce,
                              Slice sealed) override;
  Status ForwardEncryptionAuthorization(uint64_t session_id, uint64_t nonce,
                                        Slice sealed) override;

  Status AlterColumnMetadataForClientTool(
      const std::string& table, const std::string& column,
      const sql::EncryptionSpec& enc) override;

  server::SqlBackend* database() const { return db_; }

 private:
  server::SqlBackend* db_;
  uint32_t deadline_ms_ = 0;
};

}  // namespace aedb::client

#endif  // AEDB_CLIENT_TRANSPORT_H_
