#ifndef AEDB_CLIENT_RETRY_H_
#define AEDB_CLIENT_RETRY_H_

#include <chrono>
#include <cstdint>

#include "common/random.h"
#include "common/status.h"

namespace aedb::client {

/// How the driver reacts to a failed round trip. The classification is the
/// availability half of the AE story: an enclave restart or a dropped
/// connection must look to the application like a hiccup, never like data
/// loss — but a retry is only safe when the error proves the statement's
/// effects did not commit.
enum class ErrorClass : uint8_t {
  /// Deterministic failure (bad SQL, type error, security violation, key
  /// tampering, constraint violation). Retrying cannot help; fail closed.
  kFatal,
  /// The enclave session is gone (restart / eviction) or CEKs vanished from
  /// it. Recovery: re-attest, re-derive the channel secret, re-install CEKs,
  /// replay. The statement never executed under a dead session, so replay is
  /// safe for any statement.
  kReattest,
  /// The transport or server is unavailable (connection dropped, timeout,
  /// typed kUnavailable from a failing worker). The statement MAY have
  /// executed before the failure — only reads / idempotent statements may be
  /// replayed automatically.
  kReconnect,
  /// The server shed the request without durable effect (admission gate,
  /// connection cap, full enclave queue — typed kOverloaded). Replay is safe
  /// for ANY statement, even inside a transaction: a shed statement either
  /// never ran, or was a read, or — when a write hit pool overload
  /// mid-execution inside an explicit transaction — the server aborted the
  /// transaction and surfaced kTransactionAborted instead, so kOverloaded
  /// itself never carries partial writes. Delay = max(server retry-after
  /// hint, jittered exponential backoff) so a stampede spreads out.
  kBackoffRetry,
  /// The query's end-to-end deadline expired (typed kDeadlineExceeded). The
  /// statement may have partially run before the deadline check fired, and
  /// the budget is gone anyway: NEVER replay, surface the typed status
  /// immediately.
  kDeadline,
};

const char* ErrorClassName(ErrorClass c);

/// Maps a failed Status onto the recovery action. See DESIGN.md
/// §"Fault model & recovery" for the full table this implements.
ErrorClass ClassifyError(const Status& status);

/// Bounded exponential backoff with seeded jitter. Deterministic under a
/// fixed seed (tests assert the exact delay sequence) and doubly bounded:
/// max_attempts caps the count, max_cumulative caps total sleep.
struct RetryPolicy {
  bool enabled = true;
  /// Total tries including the first (4 => up to 3 retries).
  int max_attempts = 4;
  std::chrono::milliseconds base_backoff{2};
  std::chrono::milliseconds max_backoff{100};
  /// Hard ceiling on the sum of all backoff sleeps for one statement.
  std::chrono::milliseconds max_cumulative{500};
  /// Jitter PRNG seed: same seed => same backoff schedule.
  uint64_t jitter_seed = 0x5eed;
};

/// Delay before retry number `attempt` (attempt 0 = first retry):
/// min(max_backoff, base << attempt), scaled into [50%, 100%] by jitter drawn
/// from `prng`. Decorrelates clients re-attesting after one server restart.
std::chrono::milliseconds ComputeBackoff(int attempt, const RetryPolicy& policy,
                                         Xoshiro256* prng);

}  // namespace aedb::client

#endif  // AEDB_CLIENT_RETRY_H_
