#include "client/transport.h"

namespace aedb::client {

Result<uint64_t> InProcessTransport::BeginTransaction() {
  return db_->BeginTransaction();
}

Status InProcessTransport::CommitTransaction(uint64_t txn) {
  return db_->CommitTransaction(txn);
}

Status InProcessTransport::RollbackTransaction(uint64_t txn) {
  return db_->RollbackTransaction(txn);
}

Status InProcessTransport::ExecuteDdl(const std::string& sql,
                                      uint64_t session_id) {
  return db_->ExecuteDdl(sql, session_id);
}

Result<sql::ResultSet> InProcessTransport::Execute(
    const std::string& sql, const std::vector<types::Value>& params,
    uint64_t txn, uint64_t session_id) {
  return db_->Execute(sql, params, txn, session_id, deadline_ms_);
}

Result<sql::ResultSet> InProcessTransport::ExecuteNamed(
    const std::string& sql, const NamedParams& params, uint64_t txn,
    uint64_t session_id) {
  return db_->ExecuteNamed(sql, params, txn, session_id, deadline_ms_);
}

Result<server::DescribeResult> InProcessTransport::DescribeParameterEncryption(
    const std::string& sql, Slice client_dh_public) {
  return db_->DescribeParameterEncryption(sql, client_dh_public);
}

Result<server::DescribeResult> InProcessTransport::Attest(
    Slice client_dh_public) {
  return db_->Attest(client_dh_public);
}

Result<server::DescribeResult> InProcessTransport::AttestShard(
    uint32_t shard, Slice client_dh_public) {
  return db_->AttestShard(shard, client_dh_public);
}

Status InProcessTransport::ForwardKeysToShard(uint32_t shard,
                                              uint64_t session_id,
                                              uint64_t nonce, Slice sealed) {
  return db_->ForwardKeysToShard(shard, session_id, nonce, sealed);
}

Status InProcessTransport::ForwardAuthorizationToShard(uint32_t shard,
                                                       uint64_t session_id,
                                                       uint64_t nonce,
                                                       Slice sealed) {
  return db_->ForwardAuthorizationToShard(shard, session_id, nonce, sealed);
}

Status InProcessTransport::ExecuteDdlOnShard(uint32_t shard,
                                             const std::string& sql,
                                             uint64_t session_id) {
  return db_->ExecuteDdlOnShard(shard, sql, session_id);
}

Result<server::KeyDescription> InProcessTransport::GetKeyDescription(
    uint32_t cek_id) {
  return db_->GetKeyDescription(cek_id);
}

Result<types::EncryptionType> InProcessTransport::ColumnEncryption(
    const std::string& table, const std::string& column) {
  return db_->ColumnEncryption(table, column);
}

Result<keys::CmkInfo> InProcessTransport::GetCmk(const std::string& name) {
  const keys::CmkInfo* cmk;
  AEDB_ASSIGN_OR_RETURN(cmk, db_->catalog().GetCmk(name));
  return *cmk;
}

Result<uint32_t> InProcessTransport::CekIdByName(const std::string& name) {
  return db_->catalog().CekIdByName(name);
}

Status InProcessTransport::ForwardKeysToEnclave(uint64_t session_id,
                                                uint64_t nonce, Slice sealed) {
  return db_->ForwardKeysToEnclave(session_id, nonce, sealed);
}

Status InProcessTransport::ForwardEncryptionAuthorization(uint64_t session_id,
                                                          uint64_t nonce,
                                                          Slice sealed) {
  return db_->ForwardEncryptionAuthorization(session_id, nonce, sealed);
}

Status InProcessTransport::AlterColumnMetadataForClientTool(
    const std::string& table, const std::string& column,
    const sql::EncryptionSpec& enc) {
  return db_->AlterColumnMetadataForClientTool(table, column, enc);
}

}  // namespace aedb::client
