#include "client/driver.h"

#include <thread>

#include "common/query_context.h"
#include "crypto/dh.h"
#include "crypto/drbg.h"
#include "crypto/sha256.h"
#include "sql/parser.h"

namespace aedb::client {

using server::DescribeResult;
using types::EncryptionType;
using types::TypeId;
using types::Value;

namespace {

Result<Value> CoerceTo(TypeId target, const Value& v) {
  if (v.is_null()) return Value::Null(target);
  if (v.type() == target) return v;
  switch (target) {
    case TypeId::kInt32:
      if (v.IsNumeric()) return Value::Int32(static_cast<int32_t>(v.AsInt64()));
      break;
    case TypeId::kInt64:
      if (v.IsNumeric()) return Value::Int64(v.AsInt64());
      break;
    case TypeId::kDouble:
      if (v.IsNumeric()) return Value::Double(v.AsDouble());
      break;
    default:
      break;
  }
  return Status::TypeCheckError("parameter type mismatch");
}

std::string LowerStr(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

/// Extracts the " [shard=N]" annotation the router stamps onto shard-origin
/// errors; -1 when absent. Lets the recovery path re-attest exactly the
/// shard whose enclave restarted instead of dropping every session.
int ShardFromMessage(const std::string& msg) {
  size_t pos = msg.find("[shard=");
  if (pos == std::string::npos) return -1;
  pos += 7;
  int shard = 0;
  bool any = false;
  while (pos < msg.size() && msg[pos] >= '0' && msg[pos] <= '9') {
    shard = shard * 10 + (msg[pos] - '0');
    ++pos;
    any = true;
  }
  if (!any || pos >= msg.size() || msg[pos] != ']') return -1;
  return shard;
}

}  // namespace

Driver::Driver(server::SqlBackend* db, keys::KeyProviderRegistry* providers,
               crypto::RsaPublicKey hgs_public, DriverOptions options)
    : Driver(std::make_unique<InProcessTransport>(db), providers,
             std::move(hgs_public), std::move(options)) {}

Driver::Driver(std::unique_ptr<Transport> transport,
               keys::KeyProviderRegistry* providers,
               crypto::RsaPublicKey hgs_public, DriverOptions options)
    : transport_(std::move(transport)),
      providers_(providers),
      hgs_public_(std::move(hgs_public)),
      options_(std::move(options)),
      backoff_prng_(options_.retry.jitter_seed) {}

uint64_t Driver::Begin() {
  // Transactions start at id 1; 0 doubles as the autocommit sentinel, so a
  // failed network Begin surfaces as autocommit followed by a commit error.
  return transport_->BeginTransaction().value_or(0);
}
Status Driver::Commit(uint64_t txn) { return transport_->CommitTransaction(txn); }
Status Driver::Rollback(uint64_t txn) {
  return transport_->RollbackTransaction(txn);
}

Status Driver::ExecuteDdl(const std::string& sql) {
  // CREATE INDEX over an enclave-encrypted column builds the B+-tree with
  // enclave comparisons — install the CEK first.
  auto stmt = sql::Parse(sql);
  if (stmt.ok() && stmt->kind == sql::Statement::Kind::kCreateIndex) {
    auto enc = transport_->ColumnEncryption(stmt->create_index->table,
                                            stmt->create_index->column);
    if (enc.ok() && enc->is_encrypted() &&
        enc->kind == types::EncKind::kRandomized) {
      if (!enc->enclave_enabled) {
        return Status::NotSupported(
            "cannot index a randomized column without an enclave-enabled key");
      }
      AEDB_RETURN_IF_ERROR(EnsureSessionExists());
      AEDB_RETURN_IF_ERROR(EnsureEnclaveKeys({enc->cek_id}));
    }
  }
  return transport_->ExecuteDdl(sql, 0);
}

void Driver::InvalidateSession() {
  std::lock_guard<std::mutex> lock(mu_);
  for (ShardSession& s : sessions_) {
    s.has_session = false;
    s.channel.reset();
    s.installed_ceks.clear();
    s.next_nonce = 0;
  }
}

void Driver::InvalidateShardSession(uint32_t shard) {
  std::lock_guard<std::mutex> lock(mu_);
  if (shard >= sessions_.size()) return;
  ShardSession& s = sessions_[shard];
  s.has_session = false;
  s.channel.reset();
  s.installed_ceks.clear();
  s.next_nonce = 0;
}

Result<const DescribeResult*> Driver::Describe(const std::string& sql) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = describe_cache_.find(sql);
    if (it != describe_cache_.end() && options_.cache_describe_results) {
      const DescribeResult* cached = &it->second;
      bool all_live = !sessions_.empty();
      for (const ShardSession& s : sessions_) all_live &= s.has_session;
      if (!cached->requires_enclave || all_live) return cached;
    }
  }
  ++describe_calls_;
  DescribeResult result;
  AEDB_ASSIGN_OR_RETURN(result,
                        transport_->DescribeParameterEncryption(sql, Slice()));
  if (result.requires_enclave) {
    // Attest lazily, once per session, only when a statement actually needs
    // the enclave ("the attestation protocol is invoked ... only when
    // needed", §4.2).
    AEDB_RETURN_IF_ERROR(EnsureSessionExists());
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = describe_cache_.insert_or_assign(sql, std::move(result));
  (void)inserted;
  return &it->second;
}

Status Driver::VerifyAndCacheKeys(const DescribeResult& describe) {
  for (const server::KeyDescription& key : describe.keys) {
    std::lock_guard<std::mutex> lock(mu_);
    key_meta_.insert_or_assign(key.cek_id, key);
  }
  return Status::OK();
}

Result<Bytes> Driver::CekMaterial(uint32_t cek_id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cek_cache_.find(cek_id);
    if (it != cek_cache_.end()) return it->second;
  }
  server::KeyDescription meta;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = key_meta_.find(cek_id);
    if (it != key_meta_.end()) meta = it->second;
  }
  if (meta.cek.values.empty()) {
    AEDB_ASSIGN_OR_RETURN(meta, transport_->GetKeyDescription(cek_id));
  }
  // Trusted key paths: refuse CMKs provisioned outside the allowed list
  // (defeats a server substituting attacker-controlled key metadata, §4.1).
  if (!options_.trusted_key_paths.empty()) {
    bool trusted = false;
    for (const std::string& path : options_.trusted_key_paths) {
      if (path == meta.cmk.key_path) trusted = true;
    }
    if (!trusted) {
      return Status::SecurityError("CMK key path not in the trusted list: " +
                                   meta.cmk.key_path);
    }
  }
  keys::KeyProvider* provider;
  AEDB_ASSIGN_OR_RETURN(provider, providers_->Find(meta.cmk.provider_name));
  // Verify the CMK metadata signature (tampered ENCLAVE_COMPUTATIONS fails).
  AEDB_RETURN_IF_ERROR(keys::KeyTools::VerifyCmk(provider, meta.cmk));
  // Try each wrapped value (two exist during CMK rotation, §2.4.2).
  Status last = Status::NotFound("CEK has no values");
  for (const keys::CekValue& value : meta.cek.values) {
    Status sig = keys::KeyTools::VerifyCekValue(provider, meta.cmk,
                                                meta.cek.name, value);
    if (!sig.ok()) {
      last = sig;
      continue;
    }
    auto material = provider->UnwrapKey(meta.cmk.key_path, value.encrypted_value);
    if (material.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      cek_cache_[cek_id] = *material;
      key_meta_.insert_or_assign(cek_id, meta);
      return *material;
    }
    last = material.status();
  }
  return last;
}

Result<Bytes> Driver::SealForEnclave(uint32_t shard, Slice body,
                                     uint64_t* nonce_out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (shard >= sessions_.size() || !sessions_[shard].has_session) {
    return Status::FailedPrecondition("no enclave session for shard " +
                                      std::to_string(shard));
  }
  ShardSession& s = sessions_[shard];
  uint64_t nonce = s.next_nonce++;
  Bytes plain;
  PutU64(&plain, nonce);
  plain.insert(plain.end(), body.data(), body.data() + body.size());
  *nonce_out = nonce;
  return s.channel->Encrypt(plain, crypto::EncryptionScheme::kRandomized);
}

Status Driver::EnsureEnclaveKeys(const std::vector<uint32_t>& cek_ids) {
  size_t shard_count;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shard_count = sessions_.size();
  }
  // Every shard executes statements against its own enclave, so each shard's
  // enclave needs its own copy of the CEKs — sealed under that shard's
  // session channel.
  for (uint32_t shard = 0; shard < shard_count; ++shard) {
    std::vector<uint32_t> missing;
    uint64_t session;
    {
      std::lock_guard<std::mutex> lock(mu_);
      const ShardSession& s = sessions_[shard];
      session = s.session_id;
      for (uint32_t id : cek_ids) {
        if (s.installed_ceks.count(id) == 0) missing.push_back(id);
      }
    }
    if (missing.empty()) continue;
    // Check enclave authorization: only CEKs under enclave-enabled CMKs may
    // be sent to an enclave (the driver enforces this with the CMK
    // signature).
    Bytes body;
    PutU32(&body, static_cast<uint32_t>(missing.size()));
    for (uint32_t id : missing) {
      Bytes material;
      AEDB_ASSIGN_OR_RETURN(material, CekMaterial(id));
      server::KeyDescription meta;
      {
        std::lock_guard<std::mutex> lock(mu_);
        meta = key_meta_.at(id);
      }
      if (!meta.cmk.enclave_enabled) {
        return Status::SecurityError("CEK '" + meta.cek.name +
                                     "' is not authorized for enclave use");
      }
      PutU32(&body, id);
      PutLengthPrefixed(&body, material);
    }
    uint64_t nonce;
    Bytes sealed;
    AEDB_ASSIGN_OR_RETURN(sealed, SealForEnclave(shard, body, &nonce));
    AEDB_RETURN_IF_ERROR(
        transport_->ForwardKeysToShard(shard, session, nonce, sealed));
    std::lock_guard<std::mutex> lock(mu_);
    for (uint32_t id : missing) sessions_[shard].installed_ceks.insert(id);
  }
  return Status::OK();
}

Result<Value> Driver::EncryptParam(const Value& plain,
                                   const DescribeResult::ParamInfo& info) {
  Value typed;
  AEDB_ASSIGN_OR_RETURN(typed, CoerceTo(info.type, plain));
  if (!info.enc.is_encrypted()) return typed;
  Bytes material;
  AEDB_ASSIGN_OR_RETURN(material, CekMaterial(info.enc.cek_id));
  crypto::CellCodec codec(material);
  return Value::Binary(codec.Encrypt(typed.Encode(), info.enc.scheme()));
}

Status Driver::DecryptResults(sql::ResultSet* results) {
  for (size_t c = 0; c < results->column_enc.size(); ++c) {
    const EncryptionType& enc = results->column_enc[c];
    if (!enc.is_encrypted()) continue;
    Bytes material;
    AEDB_ASSIGN_OR_RETURN(material, CekMaterial(enc.cek_id));
    crypto::CellCodec codec(material);
    for (auto& row : results->rows) {
      Value& cell = row[c];
      if (cell.is_null()) continue;
      if (cell.type() != TypeId::kBinary) {
        return Status::Corruption("expected ciphertext in encrypted column");
      }
      Bytes plain;
      AEDB_ASSIGN_OR_RETURN(plain, codec.Decrypt(cell.bin()));
      size_t off = 0;
      AEDB_ASSIGN_OR_RETURN(cell, Value::Decode(plain, &off));
    }
    results->column_enc[c] = EncryptionType::Plaintext();
  }
  return Status::OK();
}

Result<sql::ResultSet> Driver::QueryAttempt(const std::string& sql,
                                            const NamedParams& params,
                                            uint64_t txn) {
  const DescribeResult* describe;
  AEDB_ASSIGN_OR_RETURN(describe, Describe(sql));

  // Forced-encryption assertions (defeats a lying describe, §4.1).
  for (const std::string& forced : options_.force_encrypted_params) {
    for (const auto& info : describe->params) {
      if (LowerStr(info.name) == LowerStr(forced) &&
          !info.enc.is_encrypted()) {
        return Status::SecurityError(
            "server claims @" + forced +
            " is plaintext but the application forced encryption");
      }
    }
  }
  AEDB_RETURN_IF_ERROR(VerifyAndCacheKeys(*describe));

  if (describe->requires_enclave) {
    AEDB_RETURN_IF_ERROR(EnsureEnclaveKeys(describe->enclave_cek_ids));
  }
  NamedParams wire;
  wire.reserve(params.size());
  for (const auto& [name, value] : params) {
    const DescribeResult::ParamInfo* info = nullptr;
    for (const auto& p : describe->params) {
      if (LowerStr(p.name) == LowerStr(name)) info = &p;
    }
    if (info == nullptr) {
      return Status::InvalidArgument("statement has no parameter @" + name);
    }
    types::Value encrypted;
    AEDB_ASSIGN_OR_RETURN(encrypted, EncryptParam(value, *info));
    wire.emplace_back(name, std::move(encrypted));
  }
  uint64_t session;
  {
    std::lock_guard<std::mutex> lock(mu_);
    session = session_id_;
  }
  return transport_->ExecuteNamed(sql, wire, txn, session);
}

Result<sql::ResultSet> Driver::Query(const std::string& sql,
                                     const NamedParams& params, uint64_t txn) {
  if (!options_.column_encryption_enabled) {
    // Non-AE connection string: no describe round trip, plaintext in/out.
    return transport_->ExecuteNamed(sql, params, txn, 0);
  }
  const RetryPolicy& policy = options_.retry;
  // End-to-end deadline: fixed at entry, shared by every attempt and every
  // backoff sleep. The remaining budget rides each wire frame so the server
  // stops working on this query the moment the client stops caring.
  using Clock = std::chrono::steady_clock;
  const bool has_deadline = options_.deadline_ms > 0;
  const Clock::time_point deadline =
      has_deadline
          ? Clock::now() + std::chrono::milliseconds(options_.deadline_ms)
          : Clock::time_point::max();
  auto remaining_ms = [&]() -> int64_t {
    return std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                 Clock::now())
        .count();
  };
  std::chrono::milliseconds slept{0};
  for (int attempt = 0;; ++attempt) {
    uint32_t budget = 0;
    if (has_deadline) {
      int64_t left = remaining_ms();
      if (left <= 0) {
        return Status::DeadlineExceeded(
            "query deadline expired before attempt " +
            std::to_string(attempt));
      }
      budget = static_cast<uint32_t>(left);
    }
    transport_->set_deadline(budget);
    transport_->set_attempt(static_cast<uint32_t>(attempt));
    Result<sql::ResultSet> result = QueryAttempt(sql, params, txn);
    if (result.ok()) {
      sql::ResultSet rs = std::move(result).value();
      AEDB_RETURN_IF_ERROR(DecryptResults(&rs));
      return rs;
    }

    const Status failure = result.status();
    const ErrorClass cls = ClassifyError(failure);
    if (cls == ErrorClass::kFatal || !policy.enabled) return failure;
    // A deadline-expired statement is NEVER replayed: the budget is spent,
    // and a write may have partially executed before a morsel-boundary check
    // fired (autocommit rolls the statement back; inside an explicit
    // transaction the application must roll back / restart the txn, as it
    // must for any mid-transaction error).
    if (cls == ErrorClass::kDeadline) return failure;
    if (attempt + 1 >= policy.max_attempts) return failure;

    // Inside an explicit transaction the server-side txn state is lost
    // (enclave restart) or of unknown fate (connection drop). Replaying one
    // statement cannot reconstruct it — surface a typed abort and let the
    // application restart the whole transaction (TPC-C does). Still drop the
    // dead session here, so the restarted transaction re-attests instead of
    // failing on the same stale session forever. Exception: a kOverloaded
    // that reaches the client happened BEFORE the statement touched any
    // state (admission gate, connection cap, or a read shed by the enclave
    // pool — the server converts a write shed mid-execution inside an
    // explicit transaction into kTransactionAborted), so the txn is intact
    // and the statement may be replayed even mid-transaction.
    // A " [shard=N]" annotation from the router means exactly one shard's
    // enclave died: drop only that shard's session so recovery re-attests
    // one enclave, not all of them.
    auto drop_dead_session = [&]() {
      int shard = ShardFromMessage(failure.message());
      if (shard >= 0) {
        InvalidateShardSession(static_cast<uint32_t>(shard));
      } else {
        InvalidateSession();
      }
    };
    if (txn != 0 && cls != ErrorClass::kBackoffRetry) {
      if (cls == ErrorClass::kReattest) drop_dead_session();
      return Status::TransactionAborted(
          "transaction state lost (" + std::string(ErrorClassName(cls)) +
          "): " + failure.message());
    }

    if (cls == ErrorClass::kReattest) {
      // The statement never ran under the dead session: safe to replay after
      // re-attesting. Dropping the cached session makes the next attempt
      // re-attest, re-derive the DH channel, and re-install CEKs.
      drop_dead_session();
    } else if (cls == ErrorClass::kReconnect) {
      // The request's fate is unknown — the statement may have committed
      // before the connection died. Only reads are safe to replay.
      auto stmt = sql::Parse(sql);
      const bool read_only =
          stmt.ok() && stmt->kind == sql::Statement::Kind::kSelect;
      if (!read_only) return failure;
      if (!transport_->healthy()) {
        if (!options_.transport_factory) return failure;
        auto fresh = options_.transport_factory();
        if (!fresh.ok()) return failure;
        transport_ = std::move(fresh).value();
        ++reconnects_;
      }
    }
    // kBackoffRetry needs no repair: the server shed the request before
    // executing it, so the session, transaction and connection are all fine —
    // the only cure for overload is waiting.

    std::chrono::milliseconds delay =
        ComputeBackoff(attempt, policy, &backoff_prng_);
    if (cls == ErrorClass::kBackoffRetry) {
      // Honor the server's retry-after hint when it asks for more patience
      // than our own jittered schedule would grant.
      std::chrono::milliseconds hint{
          RetryAfterMsFromMessage(failure.message())};
      if (hint > delay) delay = hint;
    }
    if (slept + delay > policy.max_cumulative) return failure;
    if (has_deadline && delay.count() >= remaining_ms()) {
      // Sleeping would outlive the budget; the caller stopped caring.
      return Status::DeadlineExceeded(
          "query deadline expired while backing off from: " +
          failure.message());
    }
    slept += delay;
    if (delay.count() > 0) std::this_thread::sleep_for(delay);
    ++retries_;
  }
}

Status Driver::ProvisionCmk(const std::string& name,
                            const std::string& provider_name,
                            const std::string& key_path, bool enclave_enabled) {
  keys::KeyProvider* provider;
  AEDB_ASSIGN_OR_RETURN(provider, providers_->Find(provider_name));
  keys::CmkInfo cmk;
  AEDB_ASSIGN_OR_RETURN(
      cmk, keys::KeyTools::CreateCmk(provider, name, key_path, enclave_enabled));
  std::string ddl = "CREATE COLUMN MASTER KEY " + name +
                    " WITH (KEY_STORE_PROVIDER_NAME = '" + provider_name +
                    "', KEY_PATH = '" + key_path + "', SIGNATURE = 0x" +
                    HexEncode(cmk.signature) +
                    (enclave_enabled ? ", ENCLAVE_COMPUTATIONS" : "") + ")";
  return transport_->ExecuteDdl(ddl, 0);
}

Status Driver::ProvisionCek(const std::string& name,
                            const std::string& cmk_name) {
  // Fetch the CMK metadata from the server catalog to wrap under it.
  keys::CmkInfo cmk;
  AEDB_ASSIGN_OR_RETURN(cmk, transport_->GetCmk(cmk_name));
  keys::KeyProvider* provider;
  AEDB_ASSIGN_OR_RETURN(provider, providers_->Find(cmk.provider_name));
  AEDB_RETURN_IF_ERROR(keys::KeyTools::VerifyCmk(provider, cmk));
  keys::CekInfo cek;
  AEDB_ASSIGN_OR_RETURN(cek, keys::KeyTools::CreateCek(provider, cmk, name));
  std::string ddl = "CREATE COLUMN ENCRYPTION KEY " + name +
                    " WITH VALUES (COLUMN_MASTER_KEY = " + cmk_name +
                    ", ALGORITHM = 'RSA_OAEP', ENCRYPTED_VALUE = 0x" +
                    HexEncode(cek.values[0].encrypted_value) +
                    ", SIGNATURE = 0x" + HexEncode(cek.values[0].signature) + ")";
  return transport_->ExecuteDdl(ddl, 0);
}

Status Driver::EnsureSessionExists() {
  // One enclave session per shard: the shard is the unit of attestation. A
  // shard whose enclave restarted loses only its own entry here.
  uint32_t shard_count = transport_->shard_count();
  if (shard_count == 0) shard_count = 1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (sessions_.size() < shard_count) sessions_.resize(shard_count);
  }
  for (uint32_t shard = 0; shard < shard_count; ++shard) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (sessions_[shard].has_session) continue;
    }
    crypto::HmacDrbg drbg(crypto::SecureRandom(48),
                          Slice(std::string_view("driver-ddl-dh")));
    crypto::DhKeyPair dh = crypto::GenerateDhKeyPair(&drbg);
    Bytes dh_public = crypto::DhPublicKeyBytes(dh);
    DescribeResult attest;
    AEDB_ASSIGN_OR_RETURN(attest, transport_->AttestShard(shard, dh_public));
    attestation::AttestationVerifier verifier(hgs_public_,
                                              options_.enclave_policy);
    Bytes secret;
    AEDB_ASSIGN_OR_RETURN(
        secret, verifier.VerifyAndDeriveSecret(attest.health_certificate,
                                               attest.attestation,
                                               dh.private_key, dh_public));
    std::lock_guard<std::mutex> lock(mu_);
    ShardSession& s = sessions_[shard];
    s.has_session = true;
    s.session_id = attest.attestation.session_id;
    s.channel = std::make_unique<crypto::CellCodec>(secret);
    s.next_nonce = 0;
    s.installed_ceks.clear();
    if (shard == 0) session_id_ = s.session_id;
    ++attestations_;
  }
  return Status::OK();
}

Status Driver::AuthorizeStatementOnShard(uint32_t shard,
                                         const std::string& sql) {
  Bytes hash = crypto::Sha256::Hash(Slice(std::string_view(sql)));
  uint64_t nonce;
  Bytes sealed;
  AEDB_ASSIGN_OR_RETURN(sealed, SealForEnclave(shard, hash, &nonce));
  uint64_t session;
  {
    std::lock_guard<std::mutex> lock(mu_);
    session = sessions_[shard].session_id;
  }
  return transport_->ForwardAuthorizationToShard(shard, session, nonce,
                                                 sealed);
}

Status Driver::AuthorizeStatement(const std::string& sql) {
  AEDB_RETURN_IF_ERROR(EnsureSessionExists());
  size_t shard_count;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shard_count = sessions_.size();
  }
  for (uint32_t shard = 0; shard < shard_count; ++shard) {
    AEDB_RETURN_IF_ERROR(AuthorizeStatementOnShard(shard, sql));
  }
  return Status::OK();
}

Status Driver::ExecuteEnclaveDdl(const std::string& sql) {
  sql::Statement stmt;
  AEDB_ASSIGN_OR_RETURN(stmt, sql::Parse(sql));
  if (stmt.kind != sql::Statement::Kind::kAlterColumn) {
    return Status::InvalidArgument(
        "ExecuteEnclaveDdl is for ALTER TABLE ALTER COLUMN");
  }
  const sql::AlterColumnStmt& alter = *stmt.alter_column;

  AEDB_RETURN_IF_ERROR(AuthorizeStatement(sql));

  // Install every CEK the conversion touches.
  std::vector<uint32_t> cek_ids;
  types::EncryptionType current;
  AEDB_ASSIGN_OR_RETURN(current,
                        transport_->ColumnEncryption(alter.table, alter.column));
  if (current.is_encrypted()) cek_ids.push_back(current.cek_id);
  if (alter.enc.encrypted) {
    uint32_t id;
    AEDB_ASSIGN_OR_RETURN(id, transport_->CekIdByName(alter.enc.cek_name));
    cek_ids.push_back(id);
  }
  AEDB_RETURN_IF_ERROR(EnsureEnclaveKeys(cek_ids));

  // The conversion runs inside each shard's enclave against that shard's
  // rows, under that shard's session authorization.
  size_t shard_count;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shard_count = sessions_.size();
  }
  for (uint32_t shard = 0; shard < shard_count; ++shard) {
    uint64_t session;
    {
      std::lock_guard<std::mutex> lock(mu_);
      session = sessions_[shard].session_id;
    }
    AEDB_RETURN_IF_ERROR(transport_->ExecuteDdlOnShard(shard, sql, session));
  }
  return Status::OK();
}

Status Driver::ClientSideEncryptColumn(const std::string& table,
                                       const std::string& column,
                                       const std::string& cek_name,
                                       types::EncKind kind,
                                       const std::string& key_column) {
  // 1. Pull the whole column to the client (the round trip, §1.1: "can
  //    result in latencies as long as a week" at terabyte scale).
  sql::ResultSet rows;
  AEDB_ASSIGN_OR_RETURN(
      rows, Query("SELECT " + key_column + ", " + column + " FROM " + table));

  // 2. Flip the column metadata server-side (data still plaintext).
  sql::EncryptionSpec spec;
  spec.encrypted = true;
  spec.cek_name = cek_name;
  spec.kind = kind;
  AEDB_RETURN_IF_ERROR(
      transport_->AlterColumnMetadataForClientTool(table, column, spec));

  // 3. Re-write every row with locally encrypted cells in one transaction.
  uint64_t txn = Begin();
  std::string update = "UPDATE " + table + " SET " + column + " = @v WHERE " +
                       key_column + " = @k";
  for (const auto& row : rows.rows) {
    auto result = Query(update, {{"k", row[0]}, {"v", row[1]}}, txn);
    if (!result.ok()) {
      (void)Rollback(txn);
      return result.status();
    }
  }
  return Commit(txn);
}

}  // namespace aedb::client
