#ifndef AEDB_CLIENT_DRIVER_H_
#define AEDB_CLIENT_DRIVER_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "attestation/attestation.h"
#include "client/retry.h"
#include "client/transport.h"
#include "keys/key_provider.h"
#include "server/database.h"

namespace aedb::client {

/// Connection-string options (paper §4.1).
struct DriverOptions {
  /// The AE connection-string property: off = the driver never calls
  /// sp_describe_parameter_encryption (the SQL-PT baseline).
  bool column_encryption_enabled = true;
  /// CMK key paths the application trusts; empty = trust all. Defeats a
  /// malicious server returning attacker-provisioned key metadata.
  std::vector<std::string> trusted_key_paths;
  /// Parameters the application asserts must be encrypted; if the server
  /// claims one is plaintext, fail closed (defeats a lying
  /// sp_describe_parameter_encryption).
  std::set<std::string> force_encrypted_params;
  /// Client policy for judging enclave attestation.
  attestation::EnclavePolicy enclave_policy;
  /// Cache describe results per statement (the paper suggests this to remove
  /// the extra round trip; off reproduces the SQL-PT-AEConn overhead).
  bool cache_describe_results = true;
  /// Retry/backoff behaviour for transient failures (enclave restart, dropped
  /// connection). See retry.h for the classification this drives.
  RetryPolicy retry;
  /// End-to-end budget for one Query() call, milliseconds (0 = none). The
  /// budget covers every attempt plus backoff sleeps: each attempt is stamped
  /// with the remaining budget (the server bounds execution, lock waits and
  /// enclave work by it), an attempt is never started with an exhausted
  /// budget, and a backoff that would outlive the budget returns a typed
  /// kDeadlineExceeded instead of sleeping.
  uint32_t deadline_ms = 0;
  /// Produces a fresh Transport when the current one reports !healthy()
  /// (dropped socket). Unset = the driver cannot reconnect and surfaces the
  /// transport error after classification.
  std::function<Result<std::unique_ptr<Transport>>()> transport_factory;
};

/// \brief The AE-aware client driver (ADO.NET/ODBC/JDBC analog, §4.1).
///
/// Applications issue parameterized queries with plaintext parameters and
/// receive plaintext results; the driver transparently:
///   - calls sp_describe_parameter_encryption to learn parameter types,
///   - verifies CMK metadata signatures and trusted key paths,
///   - unwraps CEKs through the client-side key provider (cached),
///   - attests the enclave and derives the session secret (cached),
///   - installs CEKs into the enclave over the secure channel (nonce'd),
///   - encrypts parameters and decrypts result cells.
class Driver {
 public:
  /// In-process wiring (the seed's original form): the driver talks straight
  /// to a `server::Database` (or the sharded router) through an owned
  /// InProcessTransport.
  Driver(server::SqlBackend* db, keys::KeyProviderRegistry* providers,
         crypto::RsaPublicKey hgs_public, DriverOptions options);

  /// Transport wiring: the driver issues every server round trip through
  /// `transport` — e.g. a net::SocketTransport connected to `aedb_serverd`.
  /// All AE logic (describe, key verification, attestation, cell
  /// encryption/decryption) is identical on both paths.
  Driver(std::unique_ptr<Transport> transport,
         keys::KeyProviderRegistry* providers, crypto::RsaPublicKey hgs_public,
         DriverOptions options);

  /// Named parameters carry plaintext values.
  using NamedParams = client::NamedParams;

  Result<sql::ResultSet> Query(const std::string& sql,
                               const NamedParams& params = {},
                               uint64_t txn = 0);

  uint64_t Begin();
  Status Commit(uint64_t txn);
  Status Rollback(uint64_t txn);

  /// Plain DDL passthrough (CREATE TABLE / INDEX / key metadata).
  Status ExecuteDdl(const std::string& sql);

  /// DDL that performs enclave type conversions (initial encryption, key
  /// rotation, decryption): the driver signs the statement text into the
  /// session so the enclave will run the conversion (§3.2), then executes.
  Status ExecuteEnclaveDdl(const std::string& sql);

  // ----- provisioning tools (paper §2.4.1: "we automate the above steps") --
  Status ProvisionCmk(const std::string& name, const std::string& provider_name,
                      const std::string& key_path, bool enclave_enabled);
  Status ProvisionCek(const std::string& name, const std::string& cmk_name);

  /// The client-side round-trip tool for enclave-disabled columns
  /// (paper §2.4.2): reads every row, encrypts locally, writes back keyed by
  /// `key_column` (which must be unique and not indexed-over by the target).
  Status ClientSideEncryptColumn(const std::string& table,
                                 const std::string& column,
                                 const std::string& cek_name,
                                 types::EncKind kind,
                                 const std::string& key_column);

  /// Drops every cached shard session (e.g. after a server restart) so the
  /// next query re-attests all shards.
  void InvalidateSession();
  /// Drops one shard's cached session only: a restarted shard enclave
  /// invalidates exactly that shard's attestation, not its peers'.
  void InvalidateShardSession(uint32_t shard);

  // ----- stats (benchmarks) -----
  int64_t describe_calls() const { return describe_calls_; }
  int64_t attestations() const { return attestations_; }
  /// Statement retries performed by the recovery loop (re-attest or
  /// reconnect), across the driver's lifetime.
  int64_t retries() const { return retries_; }
  /// Transport reconnects performed via the transport factory.
  int64_t reconnects() const { return reconnects_; }
  uint64_t session_id() const { return session_id_; }

 private:
  struct DescribeCacheEntry {
    server::DescribeResult result;
  };

  /// One shard's enclave session. Each shard runs its own enclave, so
  /// attestation, the DH channel, the nonce sequence, and the set of CEKs
  /// installed are all per shard: restarting one shard's enclave invalidates
  /// exactly one of these.
  struct ShardSession {
    bool has_session = false;
    uint64_t session_id = 0;
    std::unique_ptr<crypto::CellCodec> channel;
    uint64_t next_nonce = 0;
    std::set<uint32_t> installed_ceks;
  };

  /// One describe+encrypt+execute pass, no recovery. Query() wraps this in
  /// the classification-driven retry loop.
  Result<sql::ResultSet> QueryAttempt(const std::string& sql,
                                      const NamedParams& params, uint64_t txn);
  Result<const server::DescribeResult*> Describe(const std::string& sql);
  Status VerifyAndCacheKeys(const server::DescribeResult& describe);
  Result<Bytes> CekMaterial(uint32_t cek_id);
  Status EnsureSessionExists();
  Status EnsureEnclaveKeys(const std::vector<uint32_t>& cek_ids);
  Result<Bytes> SealForEnclave(uint32_t shard, Slice body,
                               uint64_t* nonce_out);
  Status AuthorizeStatementOnShard(uint32_t shard, const std::string& sql);
  Result<types::Value> EncryptParam(const types::Value& plain,
                                    const server::DescribeResult::ParamInfo& info);
  Status DecryptResults(sql::ResultSet* results);
  Status AuthorizeStatement(const std::string& sql);

  std::unique_ptr<Transport> transport_;
  keys::KeyProviderRegistry* providers_;
  crypto::RsaPublicKey hgs_public_;
  DriverOptions options_;

  std::mutex mu_;
  std::map<std::string, server::DescribeResult> describe_cache_;
  std::map<uint32_t, Bytes> cek_cache_;           // decrypted CEKs (§4.1)
  std::map<uint32_t, server::KeyDescription> key_meta_;
  // Session state (shared secret cached "across the entire client process"),
  // one entry per server shard. sessions_[0].session_id mirrors into
  // session_id_ for the stats accessor.
  std::vector<ShardSession> sessions_;
  uint64_t session_id_ = 0;

  int64_t describe_calls_ = 0;
  int64_t attestations_ = 0;
  int64_t retries_ = 0;
  int64_t reconnects_ = 0;
  Xoshiro256 backoff_prng_;  // seeded from options_.retry.jitter_seed
};

}  // namespace aedb::client

#endif  // AEDB_CLIENT_DRIVER_H_
