#ifndef AEDB_STORAGE_BTREE_H_
#define AEDB_STORAGE_BTREE_H_

#include <atomic>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace aedb::storage {

/// Key ordering for an index. The crucial AE design point (paper §3.1): a
/// DET equality index orders by raw ciphertext bytes (BinaryComparator); a
/// range index over RND ciphertext orders by *plaintext* via a comparator
/// that routes each comparison into the enclave. Comparisons can fail —
/// e.g. the enclave lacks the CEK — so Compare returns Result.
class Comparator {
 public:
  virtual ~Comparator() = default;
  virtual Result<int> Compare(Slice a, Slice b) const = 0;
  virtual const char* Name() const = 0;

  /// True when batched comparisons are cheaper than scalar ones — i.e. the
  /// comparator pays a per-call boundary cost worth amortizing (the enclave
  /// comparator). Plaintext/DET comparators keep the scalar binary-search
  /// paths, which do strictly fewer comparisons.
  virtual bool PrefersBatch() const { return false; }

  /// Compares `probe` against every key in `keys`; out[i] = cmp(probe,
  /// keys[i]). Batch-preferring comparators override this with a single
  /// boundary crossing (Enclave::CompareCellsBatch); the default loops
  /// Compare so semantics are identical either way.
  virtual Result<std::vector<int>> CompareBatch(
      Slice probe, const std::vector<Slice>& keys) const {
    std::vector<int> out;
    out.reserve(keys.size());
    for (Slice k : keys) {
      int c;
      AEDB_ASSIGN_OR_RETURN(c, Compare(probe, k));
      out.push_back(c);
    }
    return out;
  }
};

/// memcmp order over raw bytes (DET equality indexes: "index keys are
/// ordered in the B+-Tree using ciphertext").
class BinaryComparator : public Comparator {
 public:
  Result<int> Compare(Slice a, Slice b) const override { return a.compare(b); }
  const char* Name() const override { return "binary"; }
};

/// \brief B+-tree mapping byte keys to RIDs. Keys may repeat (non-unique
/// indexes); entries are totally ordered by (key, rid).
///
/// Structural maintenance — node splits, the leaf chain, slot bookkeeping —
/// never looks inside keys, mirroring the paper's observation that "the vast
/// majority of index processing ... remains unaffected by encryption". Only
/// the comparator touches key contents. Deletion is tombstone-free but lazy:
/// underfull nodes are not rebalanced (separator keys remain valid bounds).
///
/// Key bytes live in buffer-pool pages: each node backs its entries with one
/// slotted page (one pool object per tree), accessed through pin/unpin, so
/// ciphertext key payloads are evictable and every paged-out byte goes
/// through the page store's at-rest discipline. The node skeleton — child
/// pointers, rids, the slot order — stays in memory; it carries no cell
/// contents. A node splits when it exceeds kMaxKeys entries OR kSplitBytes
/// of live key bytes, so any key up to kMaxKeyBytes always fits its page.
///
/// Thread safety: an internal reader-writer latch makes Insert/Delete/Clear/
/// LoadSortedEntries atomic against the seek entry points, so unlatched
/// executor probes never observe a mid-split skeleton. Iterators returned by
/// Begin/SeekAtLeast hold no latch — they are for quiescent use only
/// (checkpoints, tests).
class BTree {
 public:
  /// Fan-out chosen so a 64-byte ciphertext key node is roughly page-sized.
  static constexpr size_t kMaxKeys = 64;
  /// Live key bytes past which a node splits (half a page: guarantees room
  /// for one more maximum-size key after compaction).
  static constexpr size_t kSplitBytes = Page::kPageSize / 2;
  /// Largest accepted key (a quarter page; ciphertext cells are far smaller).
  static constexpr size_t kMaxKeyBytes = Page::kPageSize / 4;

  /// Uses `pool` when given; otherwise the tree owns a private memory-backed
  /// pool (standalone/test construction).
  BTree(const Comparator* comparator, bool unique, BufferPool* pool = nullptr);
  ~BTree();  // out-of-line: Node is incomplete here

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;

  /// Inserts (key, rid). Returns false (without inserting) when the index is
  /// unique and the key already exists.
  Result<bool> Insert(const Bytes& key, Rid rid);

  /// Removes the exact (key, rid) entry; false if absent.
  Result<bool> Delete(const Bytes& key, Rid rid);

  /// All RIDs with key == `key`.
  Result<std::vector<Rid>> SeekEqual(Slice key) const;

  /// All RIDs with lower (<|<=) key (<|<=) upper, in key order. Null bounds
  /// are unbounded. For batch-preferring comparators every leaf's bound
  /// checks ride on one CompareBatch call instead of one enclave call per
  /// entry — the batched range-seek path of the tentpole.
  Result<std::vector<Rid>> SeekRange(const Bytes* lower, bool lower_inclusive,
                                     const Bytes* upper,
                                     bool upper_inclusive) const;

  /// Forward iterator over (key, rid) entries in key order.
  class Iterator {
   public:
    bool Valid() const { return node_ != nullptr; }
    /// Copies the key out from under a transient pin (the backing frame may
    /// be evicted between calls, so no stable view can be handed out).
    Result<Bytes> key() const;
    Rid rid() const;
    void Next();

   private:
    friend class BTree;
    const BTree* tree_ = nullptr;
    const void* node_ = nullptr;  // Node*
    size_t pos_ = 0;
  };

  /// Iterator at the smallest entry.
  Iterator Begin() const;
  /// Iterator at the first entry with entry.key >= key.
  Result<Iterator> SeekAtLeast(Slice key) const;

  uint64_t size() const {
    std::shared_lock lock(mu_);
    return size_;
  }
  /// Total comparator invocations (each is an enclave call for encrypted
  /// range indexes — the §3.1 ablation measures this).
  uint64_t comparisons() const {
    return comparisons_.load(std::memory_order_relaxed);
  }
  int height() const;

  /// Drops all entries.
  void Clear();

  /// Replaces the contents with `entries`, which MUST already be in (key,
  /// rid) entry order. Builds the tree bottom-up with ZERO comparator calls —
  /// the checkpoint-restore path for encrypted range indexes, whose
  /// comparator routes through an enclave that has no keys yet at startup.
  Status LoadSortedEntries(const std::vector<std::pair<Bytes, Rid>>& entries);

 private:
  struct Node;
  friend class Iterator;

  /// A pinned view over one node's key page. key(i) slices into the pinned
  /// frame; the view must outlive every slice taken from it.
  struct NodeView {
    PinnedPage pin;
    const Node* node = nullptr;
    Slice key(size_t i) const;
  };
  Result<NodeView> View(const Node* n) const;

  Result<int> Cmp(Slice a, Slice b) const;
  /// (key, rid) total order used for leaf placement; `view` is the node's
  /// pinned key page.
  Result<int> CmpEntry(Slice key, Rid rid, const NodeView& view,
                       size_t i) const;
  /// cmp(probe, node key i) for every i in [from, size) via one batched
  /// comparator call; charges one comparison per key compared.
  Result<std::vector<int>> CmpNodeFrom(Slice probe, const Node* node,
                                       size_t from) const;

  /// One-off copy of a node's key i from under a transient pin.
  Result<Bytes> KeyAt(const Node* n, size_t i) const;
  /// Allocates the node's backing page on first use.
  Status EnsurePage(Node* n);
  /// Inserts key bytes into the node's page (compacting dead slots if space
  /// ran out) and splices (slot, rid) in at `pos`.
  Status InsertKeyAt(Node* n, size_t pos, Slice key, Rid rid);
  /// Tombstones the entry's key bytes and removes (slot, rid) at `pos`.
  Status RemoveKeyAt(Node* n, size_t pos);
  /// Moves entries [from_pos, count) of `from` to the (fresh) node `to`.
  Status MoveTail(Node* from, size_t from_pos, Node* to);
  /// True when the node must split (entry count or live key bytes).
  static bool Overfull(const Node* n);

  struct SplitResult {
    Bytes separator;
    Rid separator_rid;
    std::unique_ptr<Node> right;
  };

  Result<bool> InsertRec(Node* node, const Bytes& key, Rid rid,
                         std::unique_ptr<SplitResult>* split);
  Status SplitNode(Node* node, std::unique_ptr<SplitResult>* split);
  Result<size_t> ChildIndex(const Node* node, Slice key) const;

  /// Latch-free bodies of the public entry points, composed by callers that
  /// already hold mu_ (Insert's unique check, SeekRange's positioning, ...).
  Result<std::vector<Rid>> SeekEqualLocked(Slice key) const;
  Result<Iterator> SeekAtLeastLocked(Slice key) const;
  Iterator BeginLocked() const;
  void ClearLocked();

  /// Readers shared, mutators exclusive (see class comment).
  mutable std::shared_mutex mu_;
  const Comparator* comparator_;
  bool unique_;
  BufferPool* pool_;
  std::unique_ptr<MemPageStore> owned_store_;  // standalone mode only
  std::unique_ptr<BufferPool> owned_pool_;
  uint32_t object_id_;
  uint32_t next_page_no_ = 0;
  std::unique_ptr<Node> root_;
  uint64_t size_ = 0;
  mutable std::atomic<uint64_t> comparisons_{0};
};

}  // namespace aedb::storage

#endif  // AEDB_STORAGE_BTREE_H_
