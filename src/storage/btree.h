#ifndef AEDB_STORAGE_BTREE_H_
#define AEDB_STORAGE_BTREE_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "storage/page.h"

namespace aedb::storage {

/// Key ordering for an index. The crucial AE design point (paper §3.1): a
/// DET equality index orders by raw ciphertext bytes (BinaryComparator); a
/// range index over RND ciphertext orders by *plaintext* via a comparator
/// that routes each comparison into the enclave. Comparisons can fail —
/// e.g. the enclave lacks the CEK — so Compare returns Result.
class Comparator {
 public:
  virtual ~Comparator() = default;
  virtual Result<int> Compare(Slice a, Slice b) const = 0;
  virtual const char* Name() const = 0;

  /// True when batched comparisons are cheaper than scalar ones — i.e. the
  /// comparator pays a per-call boundary cost worth amortizing (the enclave
  /// comparator). Plaintext/DET comparators keep the scalar binary-search
  /// paths, which do strictly fewer comparisons.
  virtual bool PrefersBatch() const { return false; }

  /// Compares `probe` against every key in `keys`; out[i] = cmp(probe,
  /// keys[i]). Batch-preferring comparators override this with a single
  /// boundary crossing (Enclave::CompareCellsBatch); the default loops
  /// Compare so semantics are identical either way.
  virtual Result<std::vector<int>> CompareBatch(
      Slice probe, const std::vector<Slice>& keys) const {
    std::vector<int> out;
    out.reserve(keys.size());
    for (Slice k : keys) {
      int c;
      AEDB_ASSIGN_OR_RETURN(c, Compare(probe, k));
      out.push_back(c);
    }
    return out;
  }
};

/// memcmp order over raw bytes (DET equality indexes: "index keys are
/// ordered in the B+-Tree using ciphertext").
class BinaryComparator : public Comparator {
 public:
  Result<int> Compare(Slice a, Slice b) const override { return a.compare(b); }
  const char* Name() const override { return "binary"; }
};

/// \brief B+-tree mapping byte keys to RIDs. Keys may repeat (non-unique
/// indexes); entries are totally ordered by (key, rid).
///
/// Structural maintenance — node splits, the leaf chain, slot bookkeeping —
/// never looks inside keys, mirroring the paper's observation that "the vast
/// majority of index processing ... remains unaffected by encryption". Only
/// the comparator touches key contents. Deletion is tombstone-free but lazy:
/// underfull nodes are not rebalanced (separator keys remain valid bounds).
class BTree {
 public:
  /// Fan-out chosen so a 64-byte ciphertext key node is roughly page-sized.
  static constexpr size_t kMaxKeys = 64;

  BTree(const Comparator* comparator, bool unique);
  ~BTree();  // out-of-line: Node is incomplete here

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;

  /// Inserts (key, rid). Returns false (without inserting) when the index is
  /// unique and the key already exists.
  Result<bool> Insert(const Bytes& key, Rid rid);

  /// Removes the exact (key, rid) entry; false if absent.
  Result<bool> Delete(const Bytes& key, Rid rid);

  /// All RIDs with key == `key`.
  Result<std::vector<Rid>> SeekEqual(Slice key) const;

  /// All RIDs with lower (<|<=) key (<|<=) upper, in key order. Null bounds
  /// are unbounded. For batch-preferring comparators every leaf's bound
  /// checks ride on one CompareBatch call instead of one enclave call per
  /// entry — the batched range-seek path of the tentpole.
  Result<std::vector<Rid>> SeekRange(const Bytes* lower, bool lower_inclusive,
                                     const Bytes* upper,
                                     bool upper_inclusive) const;

  /// Forward iterator over (key, rid) entries in key order.
  class Iterator {
   public:
    bool Valid() const { return node_ != nullptr; }
    Slice key() const;
    Rid rid() const;
    void Next();

   private:
    friend class BTree;
    const void* node_ = nullptr;  // Node*
    size_t pos_ = 0;
  };

  /// Iterator at the smallest entry.
  Iterator Begin() const;
  /// Iterator at the first entry with entry.key >= key.
  Result<Iterator> SeekAtLeast(Slice key) const;

  uint64_t size() const { return size_; }
  /// Total comparator invocations (each is an enclave call for encrypted
  /// range indexes — the §3.1 ablation measures this).
  uint64_t comparisons() const {
    return comparisons_.load(std::memory_order_relaxed);
  }
  int height() const;

  /// Drops all entries.
  void Clear();

  /// Replaces the contents with `entries`, which MUST already be in (key,
  /// rid) entry order. Builds the tree bottom-up with ZERO comparator calls —
  /// the checkpoint-restore path for encrypted range indexes, whose
  /// comparator routes through an enclave that has no keys yet at startup.
  void LoadSortedEntries(const std::vector<std::pair<Bytes, Rid>>& entries);

 private:
  struct Node;

  Result<int> Cmp(Slice a, Slice b) const;
  /// (key, rid) total order used for leaf placement.
  Result<int> CmpEntry(Slice key, Rid rid, const Node* leaf, size_t i) const;
  /// cmp(probe, node->keys[i]) for every i in [from, size) via one batched
  /// comparator call; charges one comparison per key compared.
  Result<std::vector<int>> CmpNodeFrom(Slice probe, const Node* node,
                                       size_t from) const;

  struct SplitResult {
    Bytes separator;
    Rid separator_rid;
    std::unique_ptr<Node> right;
  };

  Result<bool> InsertRec(Node* node, const Bytes& key, Rid rid,
                         std::unique_ptr<SplitResult>* split);
  Result<size_t> ChildIndex(const Node* node, Slice key) const;

  const Comparator* comparator_;
  bool unique_;
  std::unique_ptr<Node> root_;
  uint64_t size_ = 0;
  mutable std::atomic<uint64_t> comparisons_{0};
};

}  // namespace aedb::storage

#endif  // AEDB_STORAGE_BTREE_H_
