#ifndef AEDB_STORAGE_FSIO_H_
#define AEDB_STORAGE_FSIO_H_

#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "common/result.h"

namespace aedb::storage::fsio {

/// Durable-file protocol helpers shared by the WAL, the checkpoint writer and
/// the DDL journal. The invariant every caller relies on: after any of these
/// return OK, a kill -9 (or power cut, modulo the device) at ANY later point
/// leaves the named file either absent (never created) or exactly the bytes
/// written — never a half-renamed or unlinked-but-cached state. That takes
/// fsync of the file AND of its containing directory (the rename/create is
/// directory metadata).

/// Total fsync/fdatasync calls issued through this module plus Wal — the
/// durability cost gauge surfaced by Database::Stats (ROADMAP item 2's group
/// commit divides committed transactions by this).
uint64_t FsyncsPerformed();
/// Records an fsync done elsewhere (the WAL's commit-path fsync).
void CountFsync();

/// The directory part of `path` ("." when there is no slash).
std::string DirName(const std::string& path);

bool FileExists(const std::string& path);

/// mkdir -p, one level at a time; OK if it already exists.
Status EnsureDir(const std::string& dir);

/// fsyncs a directory so a create/rename/unlink inside it is durable.
Status SyncDir(const std::string& dir);

Result<Bytes> ReadFileBytes(const std::string& path);

/// Writes `contents` to `path` atomically: tmp file → fsync → rename →
/// fsync(dir). Readers never observe a partial file. Fault point
/// `fsio/pre_rename` fires between the tmp fsync and the rename — the window
/// where a crash leaves only the tmp file (harmless; reopened stores ignore
/// and delete stray "*.tmp").
Status WriteFileDurable(const std::string& path, Slice contents);

/// unlink + fsync(dir); OK when the file does not exist.
Status RemoveFileDurable(const std::string& path);

}  // namespace aedb::storage::fsio

#endif  // AEDB_STORAGE_FSIO_H_
