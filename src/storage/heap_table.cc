#include "storage/heap_table.h"

namespace aedb::storage {

Result<Rid> HeapTable::Insert(Slice record) {
  // Append-biased placement: try the last page, else open a new one. (Fine
  // for OLTP inserts; deleted space is reclaimed when pages are rebuilt.)
  if (pages_.empty() || !pages_.back()->HasSpaceFor(record.size())) {
    if (record.size() > Page::kMaxRecordSize) {
      return Status::InvalidArgument("record larger than page");
    }
    pages_.push_back(std::make_unique<Page>());
  }
  uint16_t slot;
  AEDB_ASSIGN_OR_RETURN(slot, pages_.back()->Insert(record));
  ++live_rows_;
  return Rid{static_cast<uint32_t>(pages_.size() - 1), slot};
}

Result<Bytes> HeapTable::Read(const Rid& rid) const {
  if (rid.page >= pages_.size()) return Status::NotFound("page out of range");
  Slice rec;
  AEDB_ASSIGN_OR_RETURN(rec, pages_[rid.page]->Read(rid.slot));
  return rec.ToBytes();
}

Status HeapTable::Delete(const Rid& rid) {
  if (rid.page >= pages_.size()) return Status::NotFound("page out of range");
  AEDB_RETURN_IF_ERROR(pages_[rid.page]->Delete(rid.slot));
  --live_rows_;
  return Status::OK();
}

Status HeapTable::Resurrect(const Rid& rid) {
  if (rid.page >= pages_.size()) return Status::NotFound("page out of range");
  AEDB_RETURN_IF_ERROR(pages_[rid.page]->Resurrect(rid.slot));
  ++live_rows_;
  return Status::OK();
}

Result<Rid> HeapTable::Update(const Rid& rid, Slice record) {
  if (rid.page >= pages_.size()) return Status::NotFound("page out of range");
  Status in_place = pages_[rid.page]->UpdateInPlace(rid.slot, record);
  if (in_place.ok()) return rid;
  if (in_place.code() != StatusCode::kOutOfRange) return in_place;
  AEDB_RETURN_IF_ERROR(pages_[rid.page]->Delete(rid.slot));
  --live_rows_;
  return Insert(record);
}

void HeapTable::Scan(const std::function<bool(const Rid&, Slice)>& fn) const {
  for (size_t p = 0; p < pages_.size(); ++p) {
    const Page& page = *pages_[p];
    for (uint16_t s = 0; s < page.slot_count(); ++s) {
      if (!page.IsLive(s)) continue;
      auto rec = page.Read(s);
      if (!fn(Rid{static_cast<uint32_t>(p), s}, *rec)) return;
    }
  }
}

void HeapTable::ScrubDead() {
  for (auto& page : pages_) page->ScrubDead();
}

void HeapTable::Clear() {
  pages_.clear();
  live_rows_ = 0;
}

void HeapTable::SerializeTo(Bytes* out) const {
  PutU32(out, static_cast<uint32_t>(pages_.size()));
  for (const auto& page : pages_) {
    Slice raw = page->raw();
    out->insert(out->end(), raw.data(), raw.data() + raw.size());
  }
}

Status HeapTable::RestoreFrom(Slice in, size_t* offset) {
  uint32_t count;
  AEDB_ASSIGN_OR_RETURN(count, GetU32(in, offset));
  if (*offset + static_cast<size_t>(count) * Page::kPageSize > in.size()) {
    return Status::Corruption("heap checkpoint image truncated");
  }
  pages_.clear();
  live_rows_ = 0;
  pages_.reserve(count);
  for (uint32_t p = 0; p < count; ++p) {
    pages_.push_back(
        std::make_unique<Page>(in.subslice(*offset, Page::kPageSize)));
    *offset += Page::kPageSize;
    const Page& page = *pages_.back();
    for (uint16_t s = 0; s < page.slot_count(); ++s) {
      if (page.IsLive(s)) ++live_rows_;
    }
  }
  return Status::OK();
}

}  // namespace aedb::storage
