#include "storage/heap_table.h"

#include <cstring>
#include <mutex>

namespace aedb::storage {

HeapTable::HeapTable(BufferPool* pool) : pool_(pool) {
  if (pool_ == nullptr) {
    owned_store_ = std::make_unique<MemPageStore>();
    owned_pool_ = std::make_unique<BufferPool>(owned_store_.get(), 0);
    pool_ = owned_pool_.get();
  }
  object_id_ = pool_->NewObject();
}

HeapTable::~HeapTable() { (void)pool_->DropObject(object_id_); }

Result<PinnedPage> HeapTable::PinPage(uint32_t page_no) const {
  return pool_->Pin(PageId{object_id_, page_no}, /*create=*/false);
}

Result<Rid> HeapTable::Insert(Slice record) {
  std::unique_lock lock(mu_);
  return InsertLocked(record);
}

Result<Rid> HeapTable::InsertLocked(Slice record) {
  // Append-biased placement: try the last page, else open a new one. (Fine
  // for OLTP inserts; deleted space is reclaimed when pages are rebuilt.)
  if (record.size() > Page::kMaxRecordSize) {
    return Status::InvalidArgument("record larger than page");
  }
  if (page_count_ > 0) {
    PinnedPage pin;
    AEDB_ASSIGN_OR_RETURN(
        pin, PinPage(static_cast<uint32_t>(page_count_ - 1)));
    Page page = Page::Wrap(pin.data());
    if (page.HasSpaceFor(record.size())) {
      uint16_t slot;
      AEDB_ASSIGN_OR_RETURN(slot, page.Insert(record));
      pin.MarkDirty();
      ++live_rows_;
      return Rid{static_cast<uint32_t>(page_count_ - 1), slot};
    }
  }
  PinnedPage pin;
  AEDB_ASSIGN_OR_RETURN(
      pin, pool_->Pin(PageId{object_id_, static_cast<uint32_t>(page_count_)},
                      /*create=*/true));
  Page page = Page::WrapInit(pin.data());
  uint16_t slot;
  AEDB_ASSIGN_OR_RETURN(slot, page.Insert(record));
  pin.MarkDirty();
  ++page_count_;
  ++live_rows_;
  return Rid{static_cast<uint32_t>(page_count_ - 1), slot};
}

Result<Bytes> HeapTable::Read(const Rid& rid) const {
  std::shared_lock lock(mu_);
  if (rid.page >= page_count_) return Status::NotFound("page out of range");
  PinnedPage pin;
  AEDB_ASSIGN_OR_RETURN(pin, PinPage(rid.page));
  Slice rec;
  AEDB_ASSIGN_OR_RETURN(rec, Page::Wrap(pin.data()).Read(rid.slot));
  return rec.ToBytes();
}

Status HeapTable::Delete(const Rid& rid) {
  std::unique_lock lock(mu_);
  if (rid.page >= page_count_) return Status::NotFound("page out of range");
  PinnedPage pin;
  AEDB_ASSIGN_OR_RETURN(pin, PinPage(rid.page));
  AEDB_RETURN_IF_ERROR(Page::Wrap(pin.data()).Delete(rid.slot));
  pin.MarkDirty();
  --live_rows_;
  return Status::OK();
}

Status HeapTable::Resurrect(const Rid& rid) {
  std::unique_lock lock(mu_);
  if (rid.page >= page_count_) return Status::NotFound("page out of range");
  PinnedPage pin;
  AEDB_ASSIGN_OR_RETURN(pin, PinPage(rid.page));
  AEDB_RETURN_IF_ERROR(Page::Wrap(pin.data()).Resurrect(rid.slot));
  pin.MarkDirty();
  ++live_rows_;
  return Status::OK();
}

Result<Rid> HeapTable::Update(const Rid& rid, Slice record) {
  std::unique_lock lock(mu_);
  if (rid.page >= page_count_) return Status::NotFound("page out of range");
  {
    PinnedPage pin;
    AEDB_ASSIGN_OR_RETURN(pin, PinPage(rid.page));
    Page page = Page::Wrap(pin.data());
    Status in_place = page.UpdateInPlace(rid.slot, record);
    if (in_place.ok()) {
      pin.MarkDirty();
      return rid;
    }
    if (in_place.code() != StatusCode::kOutOfRange) return in_place;
    AEDB_RETURN_IF_ERROR(page.Delete(rid.slot));
    pin.MarkDirty();
    --live_rows_;
  }
  return InsertLocked(record);
}

Status HeapTable::Scan(
    const std::function<bool(const Rid&, Slice)>& fn) const {
  std::shared_lock lock(mu_);
  for (size_t p = 0; p < page_count_; ++p) {
    PinnedPage pin;
    AEDB_ASSIGN_OR_RETURN(pin, PinPage(static_cast<uint32_t>(p)));
    Page page = Page::Wrap(pin.data());
    for (uint16_t s = 0; s < page.slot_count(); ++s) {
      if (!page.IsLive(s)) continue;
      auto rec = page.Read(s);
      if (!fn(Rid{static_cast<uint32_t>(p), s}, *rec)) return Status::OK();
    }
  }
  return Status::OK();
}

Status HeapTable::WithPageRaw(size_t i,
                              const std::function<void(Slice)>& fn) const {
  std::shared_lock lock(mu_);
  if (i >= page_count_) return Status::NotFound("page out of range");
  PinnedPage pin;
  AEDB_ASSIGN_OR_RETURN(pin, PinPage(static_cast<uint32_t>(i)));
  fn(Slice(pin.data(), Page::kPageSize));
  return Status::OK();
}

Status HeapTable::ScrubDead() {
  std::unique_lock lock(mu_);
  for (size_t p = 0; p < page_count_; ++p) {
    PinnedPage pin;
    AEDB_ASSIGN_OR_RETURN(pin, PinPage(static_cast<uint32_t>(p)));
    Page::Wrap(pin.data()).ScrubDead();
    pin.MarkDirty();
  }
  return Status::OK();
}

void HeapTable::Clear() {
  std::unique_lock lock(mu_);
  ClearLocked();
}

void HeapTable::ClearLocked() {
  // A fresh object id retires every old page (cached frames and store file
  // both); failures only leak unreachable store pages.
  (void)pool_->DropObject(object_id_);
  object_id_ = pool_->NewObject();
  page_count_ = 0;
  live_rows_ = 0;
}

Status HeapTable::SerializeTo(Bytes* out) const {
  std::shared_lock lock(mu_);
  PutU32(out, static_cast<uint32_t>(page_count_));
  for (size_t p = 0; p < page_count_; ++p) {
    PinnedPage pin;
    AEDB_ASSIGN_OR_RETURN(pin, PinPage(static_cast<uint32_t>(p)));
    out->insert(out->end(), pin.data(), pin.data() + Page::kPageSize);
  }
  return Status::OK();
}

Status HeapTable::RestoreFrom(Slice in, size_t* offset) {
  uint32_t count;
  AEDB_ASSIGN_OR_RETURN(count, GetU32(in, offset));
  if (*offset + static_cast<size_t>(count) * Page::kPageSize > in.size()) {
    return Status::Corruption("heap checkpoint image truncated");
  }
  std::unique_lock lock(mu_);
  ClearLocked();
  for (uint32_t p = 0; p < count; ++p) {
    PinnedPage pin;
    AEDB_ASSIGN_OR_RETURN(
        pin, pool_->Pin(PageId{object_id_, p}, /*create=*/true));
    std::memcpy(pin.data(), in.data() + *offset, Page::kPageSize);
    pin.MarkDirty();
    *offset += Page::kPageSize;
    Page page = Page::Wrap(pin.data());
    for (uint16_t s = 0; s < page.slot_count(); ++s) {
      if (page.IsLive(s)) ++live_rows_;
    }
    ++page_count_;
  }
  return Status::OK();
}

}  // namespace aedb::storage
