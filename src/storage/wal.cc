#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "fault/fault.h"
#include "storage/fsio.h"

namespace aedb::storage {

namespace {

/// FNV-1a 32-bit.
uint32_t Fnv1a(Slice data) {
  uint32_t h = 2166136261u;
  for (size_t i = 0; i < data.size(); ++i) {
    h ^= static_cast<uint8_t>(data[i]);
    h *= 16777619u;
  }
  return h;
}

void AppendFramed(Bytes* out, const LogRecord& rec) {
  Bytes body;
  rec.SerializeTo(&body);
  AppendFramedBlob(out, body);
}

constexpr size_t kFrameOverhead = 8;  // u32 length + u32 checksum

}  // namespace

uint32_t FrameChecksum(Slice body) { return Fnv1a(body); }

void AppendFramedBlob(Bytes* out, Slice body) {
  PutU32(out, static_cast<uint32_t>(body.size()));
  PutU32(out, Fnv1a(body));
  out->insert(out->end(), body.data(), body.data() + body.size());
}

FramedBlobs ParseFramedBlobs(Slice image) {
  FramedBlobs out;
  size_t off = 0;
  while (off + kFrameOverhead <= image.size()) {
    size_t cursor = off;
    auto len_res = GetU32(image, &cursor);
    auto sum_res = GetU32(image, &cursor);
    if (!len_res.ok() || !sum_res.ok()) break;
    if (cursor + *len_res > image.size()) break;  // truncated body: torn tail
    Slice body(image.data() + cursor, *len_res);
    if (Fnv1a(body) != *sum_res) break;
    out.blobs.push_back(body.ToBytes());
    off = cursor + *len_res;
    out.bytes_consumed = off;
  }
  out.torn_tail = out.bytes_consumed != image.size();
  return out;
}

void LogRecord::SerializeTo(Bytes* out) const {
  PutU64(out, lsn);
  PutU64(out, txn_id);
  out->push_back(static_cast<uint8_t>(type));
  PutU32(out, object_id);
  PutU64(out, rid.Encode());
  PutLengthPrefixed(out, payload1);
}

Result<LogRecord> LogRecord::Deserialize(Slice in, size_t* offset) {
  LogRecord rec;
  AEDB_ASSIGN_OR_RETURN(rec.lsn, GetU64(in, offset));
  AEDB_ASSIGN_OR_RETURN(rec.txn_id, GetU64(in, offset));
  if (*offset >= in.size()) return Status::Corruption("truncated log record");
  rec.type = static_cast<LogRecordType>(in[(*offset)++]);
  if (rec.type < LogRecordType::kBegin ||
      rec.type > LogRecordType::kPrepare) {
    return Status::Corruption("unknown log record type");
  }
  AEDB_ASSIGN_OR_RETURN(rec.object_id, GetU32(in, offset));
  uint64_t rid_enc;
  AEDB_ASSIGN_OR_RETURN(rid_enc, GetU64(in, offset));
  rec.rid = Rid::Decode(rid_enc);
  AEDB_ASSIGN_OR_RETURN(rec.payload1, GetLengthPrefixed(in, offset));
  return rec;
}

Wal::~Wal() {
  if (fd_ >= 0) ::close(fd_);
}

bool Wal::file_backed() const {
  std::lock_guard<std::mutex> lock(mu_);
  // A poisoned log is still file-backed — it just cannot write right now.
  return fd_ >= 0 || poisoned_;
}

Status Wal::WriteToFileLocked(const uint8_t* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    ssize_t w = ::write(fd_, data + off, n - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      // Whatever prefix reached the file is a torn frame; reopen-time parsing
      // drops it. The in-memory mirror stays at the last intact frame.
      return Status::Internal(std::string("wal write: ") + std::strerror(errno));
    }
    off += static_cast<size_t>(w);
  }
  return Status::OK();
}

Result<WalLoadResult> Wal::AttachFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) return Status::FailedPrecondition("wal already file-backed");
  const bool existed = fsio::FileExists(path);
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    return Status::Internal("open " + path + ": " + std::strerror(errno));
  }
  if (!existed) {
    // The file's existence is directory metadata: without this fsync a crash
    // can forget the (empty) log file even though later appends hit its fd.
    Status st = fsio::SyncDir(fsio::DirName(path));
    if (!st.ok()) {
      ::close(fd);
      return st;
    }
  }
  Bytes contents;
  {
    auto read = fsio::ReadFileBytes(path);
    if (!read.ok()) {
      ::close(fd);
      return read.status();
    }
    contents = std::move(read).value();
  }
  WalLoadResult parsed = ParseImage(contents);
  if (parsed.bytes_consumed < contents.size()) {
    // Physically drop the torn tail — the real-log analog of zeroing past
    // end-of-log — so a later crash cannot resurrect half a frame.
    torn_dropped_ += contents.size() - parsed.bytes_consumed;
    if (::ftruncate(fd, static_cast<off_t>(parsed.bytes_consumed)) != 0) {
      Status st = Status::Internal(std::string("ftruncate ") + path + ": " +
                                   std::strerror(errno));
      ::close(fd);
      return st;
    }
    if (::fsync(fd) != 0) {
      Status st = Status::Internal(std::string("fsync ") + path + ": " +
                                   std::strerror(errno));
      ::close(fd);
      return st;
    }
    ++fsyncs_;
    fsio::CountFsync();
  }
  records_ = parsed.records;
  next_lsn_ = std::max(
      next_lsn_, records_.empty() ? uint64_t{1} : records_.back().lsn + 1);
  image_.assign(contents.data(), contents.data() + parsed.bytes_consumed);
  fd_ = fd;
  path_ = path;
  return parsed;
}

Result<uint64_t> Wal::Append(LogRecord record) {
  AEDB_RETURN_IF_ERROR(AEDB_FAULT_POINT("wal/append"));
  std::lock_guard<std::mutex> lock(mu_);
  if (poisoned_) {
    return Status::Internal("wal poisoned (lost append fd or failed fsync) at " + path_);
  }
  record.lsn = next_lsn_++;
  uint64_t lsn = record.lsn;

  Bytes frame;
  AppendFramed(&frame, record);

  fault::FaultSpec torn;
  if (AEDB_FAULT_FIRED("wal/torn_append", &torn)) {
    // Crash mid-write: only a prefix of the frame reaches the image, the
    // record never becomes part of the log proper.
    size_t keep = torn.arg != 0 && torn.arg < frame.size() ? torn.arg
                                                           : frame.size() / 2;
    image_.insert(image_.end(), frame.begin(), frame.begin() + keep);
    // The append already "fails" (that is the fault); a file-write error on
    // top only changes how much of the torn tail reaches disk, but record it
    // so disk/mirror divergence stays observable.
    if (fd_ >= 0 && !WriteToFileLocked(frame.data(), keep).ok()) ++file_errors_;
    return torn.status.ok() ? Status::Internal("torn log write") : torn.status;
  }

  if (fd_ >= 0) {
    AEDB_RETURN_IF_ERROR(WriteToFileLocked(frame.data(), frame.size()));
  }
  image_.insert(image_.end(), frame.begin(), frame.end());
  records_.push_back(std::move(record));
  return lsn;
}

Status Wal::Sync() {
  AEDB_RETURN_IF_ERROR(AEDB_FAULT_POINT("wal/sync"));
  std::lock_guard<std::mutex> lock(mu_);
  if (poisoned_) {
    return Status::Internal("wal poisoned (lost append fd or failed fsync) at " + path_);
  }
  if (fd_ < 0) return Status::OK();
  if (::fsync(fd_) != 0) {
    // The kernel reports a writeback error once, then clears it: a retried
    // fsync on this (or a fresh) fd can "succeed" without the lost writes
    // being durable. Poison the log so every later barrier fails until an
    // atomic rewrite (e.g. checkpoint truncation) re-lands the whole image.
    poisoned_ = true;
    ++file_errors_;
    return Status::Internal(std::string("wal fsync: ") + std::strerror(errno));
  }
  ++fsyncs_;
  fsio::CountFsync();
  return Status::OK();
}

Status Wal::SyncUpTo(uint64_t lsn) {
  // Per-caller fault check, before joining any cohort: a committer whose
  // sync "fails" here must not be made durable by a neighboring leader's
  // fsync — that would ack a commit the fault said did not reach disk.
  AEDB_RETURN_IF_ERROR(AEDB_FAULT_POINT("wal/sync"));
  std::unique_lock<std::mutex> lock(mu_);
  ++sync_requests_;
  for (;;) {
    if (poisoned_) {
      return Status::Internal("wal poisoned (lost append fd or failed fsync) at " + path_);
    }
    if (fd_ < 0) return Status::OK();  // in-memory: trivially durable
    if (synced_lsn_ >= lsn) return Status::OK();  // a leader covered us
    if (sync_in_progress_) {
      // Follow: the running (or next) leader's barrier will cover our lsn,
      // because our record was appended before this call.
      sync_cv_.wait(lock);
      continue;
    }
    sync_in_progress_ = true;
    if (group_commit_window_us_ > 0) {
      // Linger with mu_ released so more committers can append + enqueue.
      uint64_t window = group_commit_window_us_;
      lock.unlock();
      std::this_thread::sleep_for(std::chrono::microseconds(window));
      lock.lock();
    }
    // Everything appended so far rides this barrier.
    uint64_t covered = next_lsn_ - 1;
    // fsync outside mu_ — this is what lets followers append their commit
    // records while the leader syncs, forming the next cohort. The dup
    // guards against the append fd being replaced concurrently (rewrites
    // only run quiesced, but an fd number must never be reused under us).
    int fd = ::dup(fd_);
    lock.unlock();
    int rc = fd >= 0 ? ::fsync(fd) : -1;
    int err = errno;
    if (fd >= 0) ::close(fd);
    lock.lock();
    sync_in_progress_ = false;
    if (rc != 0) {
      // Do NOT let a follower elect itself leader and retry: the kernel
      // clears the writeback error after reporting it once, so the retried
      // fsync could return success without the failed writes being durable —
      // acking commits that never reached disk. Poison the log instead:
      // every queued and future barrier fails until an atomic rewrite (e.g.
      // checkpoint truncation) re-lands the whole image on a fresh inode.
      poisoned_ = true;
      ++file_errors_;
      sync_cv_.notify_all();
      return Status::Internal(std::string("wal fsync: ") + std::strerror(err));
    }
    sync_cv_.notify_all();
    synced_lsn_ = std::max(synced_lsn_, covered);
    ++fsyncs_;
    ++group_commit_batches_;
    fsio::CountFsync();
    // Loop re-checks: our lsn is ≤ covered (appended before the call).
  }
}

void Wal::set_group_commit_window_us(uint64_t us) {
  std::lock_guard<std::mutex> lock(mu_);
  group_commit_window_us_ = us;
}

uint64_t Wal::group_commit_batches() const {
  std::lock_guard<std::mutex> lock(mu_);
  return group_commit_batches_;
}

uint64_t Wal::sync_requests() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sync_requests_;
}

std::vector<LogRecord> Wal::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

uint64_t Wal::next_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_lsn_;
}

void Wal::EnsureNextLsn(uint64_t lsn) {
  std::lock_guard<std::mutex> lock(mu_);
  next_lsn_ = std::max(next_lsn_, lsn);
}

Bytes Wal::RawBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return image_;
}

WalLoadResult Wal::ParseImage(Slice image) {
  WalLoadResult out;
  size_t off = 0;
  while (off + kFrameOverhead <= image.size()) {
    size_t cursor = off;
    uint32_t len = 0, checksum = 0;
    auto len_res = GetU32(image, &cursor);
    auto sum_res = GetU32(image, &cursor);
    if (!len_res.ok() || !sum_res.ok()) break;
    len = *len_res;
    checksum = *sum_res;
    if (cursor + len > image.size()) break;  // truncated body: torn tail
    Slice body(image.data() + cursor, len);
    if (Fnv1a(body) != checksum) break;  // bits of the frame missing/mangled
    size_t body_off = 0;
    auto rec = LogRecord::Deserialize(body, &body_off);
    if (!rec.ok() || body_off != len) break;
    out.records.push_back(std::move(*rec));
    off = cursor + len;
    out.bytes_consumed = off;
    out.frame_ends.push_back(off);
  }
  out.torn_tail = out.bytes_consumed != image.size();
  return out;
}

WalLoadResult Wal::LoadImage(Slice image) {
  WalLoadResult parsed = ParseImage(image);
  std::lock_guard<std::mutex> lock(mu_);
  records_ = parsed.records;
  next_lsn_ = records_.empty() ? 1 : records_.back().lsn + 1;
  // next_lsn_ may have moved backwards; a stale fsync watermark would let
  // SyncUpTo treat brand-new records at reused LSNs as already durable.
  synced_lsn_ = 0;
  // The durable image keeps only the intact prefix: recovery discards a torn
  // tail for good, exactly like a real log manager zeroing past end-of-log.
  if (parsed.bytes_consumed < image.size()) {
    torn_dropped_ += image.size() - parsed.bytes_consumed;
  }
  image_.assign(image.data(), image.data() + parsed.bytes_consumed);
  // A failed rewrite is recorded in file_errors_ (and may poison the log);
  // this API has no status channel, so the gauge is the observable.
  if (fd_ >= 0 || poisoned_) (void)RewriteFileLocked();
  return parsed;
}

Status Wal::TruncateBefore(uint64_t lsn) {
  std::lock_guard<std::mutex> lock(mu_);
  records_.erase(records_.begin(),
                 std::find_if(records_.begin(), records_.end(),
                              [lsn](const LogRecord& r) { return r.lsn >= lsn; }));
  RebuildImageLocked();
  if (fd_ >= 0 || poisoned_) return RewriteFileLocked();
  return Status::OK();
}

void Wal::Replace(std::vector<LogRecord> records) {
  std::lock_guard<std::mutex> lock(mu_);
  records_ = std::move(records);
  next_lsn_ = records_.empty() ? 1 : records_.back().lsn + 1;
  // See LoadImage: a rewound LSN space invalidates the fsync watermark.
  synced_lsn_ = 0;
  RebuildImageLocked();
  // Failure is recorded in file_errors_ / poisoned_ (no status channel here).
  if (fd_ >= 0 || poisoned_) (void)RewriteFileLocked();
}

void Wal::RebuildImageLocked() {
  image_.clear();
  for (const LogRecord& rec : records_) AppendFramed(&image_, rec);
}

Status Wal::RewriteFileLocked() {
  Status written = fsio::WriteFileDurable(path_, image_);
  if (!written.ok()) {
    // The rename never happened: the old inode (a superset of image_) is
    // still the live log and the append fd still points at it, so durability
    // is intact — just diverged from the trimmed mirror. Count and report.
    ++file_errors_;
    return written;
  }
  // The rename published a new inode; the old append fd still points at the
  // replaced file. Reopen so future appends land in the live log.
  if (fd_ >= 0) ::close(fd_);
  fd_ = ::open(path_.c_str(), O_RDWR | O_APPEND);
  if (fd_ < 0) {
    // No writable fd at all now. fd_ == -1 normally means in-memory mode, so
    // without the poisoned flag every later Append/Sync would silently
    // "succeed" with zero durability. Poison instead: writes fail loudly
    // until a later rewrite (e.g. the next checkpoint truncation) heals it.
    poisoned_ = true;
    ++file_errors_;
    return Status::Internal("reopen " + path_ + ": " + std::strerror(errno));
  }
  poisoned_ = false;
  return Status::OK();
}

size_t Wal::record_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

uint64_t Wal::fsyncs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fsyncs_;
}

uint64_t Wal::torn_bytes_dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return torn_dropped_;
}

uint64_t Wal::wal_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return image_.size();
}

uint64_t Wal::file_errors() const {
  std::lock_guard<std::mutex> lock(mu_);
  return file_errors_;
}

bool Wal::poisoned() const {
  std::lock_guard<std::mutex> lock(mu_);
  return poisoned_;
}

}  // namespace aedb::storage
