#include "storage/wal.h"

#include <algorithm>

#include "fault/fault.h"

namespace aedb::storage {

namespace {

/// FNV-1a 32-bit. Not cryptographic — it only needs to tell "frame ends at a
/// clean boundary" from "frame was torn mid-write".
uint32_t Fnv1a(Slice data) {
  uint32_t h = 2166136261u;
  for (size_t i = 0; i < data.size(); ++i) {
    h ^= static_cast<uint8_t>(data[i]);
    h *= 16777619u;
  }
  return h;
}

void AppendFramed(Bytes* out, const LogRecord& rec) {
  Bytes body;
  rec.SerializeTo(&body);
  PutU32(out, static_cast<uint32_t>(body.size()));
  PutU32(out, Fnv1a(body));
  out->insert(out->end(), body.begin(), body.end());
}

constexpr size_t kFrameOverhead = 8;  // u32 length + u32 checksum

}  // namespace

void LogRecord::SerializeTo(Bytes* out) const {
  PutU64(out, lsn);
  PutU64(out, txn_id);
  out->push_back(static_cast<uint8_t>(type));
  PutU32(out, object_id);
  PutU64(out, rid.Encode());
  PutLengthPrefixed(out, payload1);
}

Result<LogRecord> LogRecord::Deserialize(Slice in, size_t* offset) {
  LogRecord rec;
  AEDB_ASSIGN_OR_RETURN(rec.lsn, GetU64(in, offset));
  AEDB_ASSIGN_OR_RETURN(rec.txn_id, GetU64(in, offset));
  if (*offset >= in.size()) return Status::Corruption("truncated log record");
  rec.type = static_cast<LogRecordType>(in[(*offset)++]);
  if (rec.type < LogRecordType::kBegin || rec.type > LogRecordType::kIndexDelete) {
    return Status::Corruption("unknown log record type");
  }
  AEDB_ASSIGN_OR_RETURN(rec.object_id, GetU32(in, offset));
  uint64_t rid_enc;
  AEDB_ASSIGN_OR_RETURN(rid_enc, GetU64(in, offset));
  rec.rid = Rid::Decode(rid_enc);
  AEDB_ASSIGN_OR_RETURN(rec.payload1, GetLengthPrefixed(in, offset));
  return rec;
}

Result<uint64_t> Wal::Append(LogRecord record) {
  AEDB_RETURN_IF_ERROR(AEDB_FAULT_POINT("wal/append"));
  std::lock_guard<std::mutex> lock(mu_);
  record.lsn = next_lsn_++;
  uint64_t lsn = record.lsn;

  Bytes frame;
  AppendFramed(&frame, record);

  fault::FaultSpec torn;
  if (AEDB_FAULT_FIRED("wal/torn_append", &torn)) {
    // Crash mid-write: only a prefix of the frame reaches the image, the
    // record never becomes part of the log proper.
    size_t keep = torn.arg != 0 && torn.arg < frame.size() ? torn.arg
                                                           : frame.size() / 2;
    image_.insert(image_.end(), frame.begin(), frame.begin() + keep);
    return torn.status.ok() ? Status::Internal("torn log write") : torn.status;
  }

  image_.insert(image_.end(), frame.begin(), frame.end());
  records_.push_back(std::move(record));
  return lsn;
}

Status Wal::Sync() {
  return AEDB_FAULT_POINT("wal/sync");
}

std::vector<LogRecord> Wal::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

uint64_t Wal::next_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_lsn_;
}

Bytes Wal::RawBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return image_;
}

WalLoadResult Wal::ParseImage(Slice image) {
  WalLoadResult out;
  size_t off = 0;
  while (off + kFrameOverhead <= image.size()) {
    size_t cursor = off;
    uint32_t len = 0, checksum = 0;
    auto len_res = GetU32(image, &cursor);
    auto sum_res = GetU32(image, &cursor);
    if (!len_res.ok() || !sum_res.ok()) break;
    len = *len_res;
    checksum = *sum_res;
    if (cursor + len > image.size()) break;  // truncated body: torn tail
    Slice body(image.data() + cursor, len);
    if (Fnv1a(body) != checksum) break;  // bits of the frame missing/mangled
    size_t body_off = 0;
    auto rec = LogRecord::Deserialize(body, &body_off);
    if (!rec.ok() || body_off != len) break;
    out.records.push_back(std::move(*rec));
    off = cursor + len;
    out.bytes_consumed = off;
    out.frame_ends.push_back(off);
  }
  out.torn_tail = out.bytes_consumed != image.size();
  return out;
}

WalLoadResult Wal::LoadImage(Slice image) {
  WalLoadResult parsed = ParseImage(image);
  std::lock_guard<std::mutex> lock(mu_);
  records_ = parsed.records;
  next_lsn_ = records_.empty() ? 1 : records_.back().lsn + 1;
  // The durable image keeps only the intact prefix: recovery discards a torn
  // tail for good, exactly like a real log manager zeroing past end-of-log.
  image_.assign(image.data(), image.data() + parsed.bytes_consumed);
  return parsed;
}

void Wal::TruncateBefore(uint64_t lsn) {
  std::lock_guard<std::mutex> lock(mu_);
  records_.erase(records_.begin(),
                 std::find_if(records_.begin(), records_.end(),
                              [lsn](const LogRecord& r) { return r.lsn >= lsn; }));
  RebuildImageLocked();
}

void Wal::Replace(std::vector<LogRecord> records) {
  std::lock_guard<std::mutex> lock(mu_);
  records_ = std::move(records);
  next_lsn_ = records_.empty() ? 1 : records_.back().lsn + 1;
  RebuildImageLocked();
}

void Wal::RebuildImageLocked() {
  image_.clear();
  for (const LogRecord& rec : records_) AppendFramed(&image_, rec);
}

size_t Wal::record_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

}  // namespace aedb::storage
