#include "storage/wal.h"

#include <algorithm>

namespace aedb::storage {

void LogRecord::SerializeTo(Bytes* out) const {
  PutU64(out, lsn);
  PutU64(out, txn_id);
  out->push_back(static_cast<uint8_t>(type));
  PutU32(out, object_id);
  PutU64(out, rid.Encode());
  PutLengthPrefixed(out, payload1);
}

Result<LogRecord> LogRecord::Deserialize(Slice in, size_t* offset) {
  LogRecord rec;
  AEDB_ASSIGN_OR_RETURN(rec.lsn, GetU64(in, offset));
  AEDB_ASSIGN_OR_RETURN(rec.txn_id, GetU64(in, offset));
  if (*offset >= in.size()) return Status::Corruption("truncated log record");
  rec.type = static_cast<LogRecordType>(in[(*offset)++]);
  if (rec.type < LogRecordType::kBegin || rec.type > LogRecordType::kIndexDelete) {
    return Status::Corruption("unknown log record type");
  }
  AEDB_ASSIGN_OR_RETURN(rec.object_id, GetU32(in, offset));
  uint64_t rid_enc;
  AEDB_ASSIGN_OR_RETURN(rid_enc, GetU64(in, offset));
  rec.rid = Rid::Decode(rid_enc);
  AEDB_ASSIGN_OR_RETURN(rec.payload1, GetLengthPrefixed(in, offset));
  return rec;
}

uint64_t Wal::Append(LogRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  record.lsn = next_lsn_++;
  uint64_t lsn = record.lsn;
  records_.push_back(std::move(record));
  return lsn;
}

std::vector<LogRecord> Wal::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

uint64_t Wal::next_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_lsn_;
}

Bytes Wal::RawBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  Bytes out;
  for (const LogRecord& rec : records_) rec.SerializeTo(&out);
  return out;
}

void Wal::TruncateBefore(uint64_t lsn) {
  std::lock_guard<std::mutex> lock(mu_);
  records_.erase(records_.begin(),
                 std::find_if(records_.begin(), records_.end(),
                              [lsn](const LogRecord& r) { return r.lsn >= lsn; }));
}

void Wal::Replace(std::vector<LogRecord> records) {
  std::lock_guard<std::mutex> lock(mu_);
  records_ = std::move(records);
  next_lsn_ = records_.empty() ? 1 : records_.back().lsn + 1;
}

size_t Wal::record_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

}  // namespace aedb::storage
