#ifndef AEDB_STORAGE_WAL_H_
#define AEDB_STORAGE_WAL_H_

#include <condition_variable>
#include <mutex>
#include <string>
#include <vector>

#include "storage/page.h"

namespace aedb::storage {

enum class LogRecordType : uint8_t {
  kBegin = 1,
  kCommit = 2,
  kAbort = 3,
  kHeapInsert = 4,  // object_id=table, rid, payload1=row image
  kHeapDelete = 5,  // object_id=table, rid, payload1=old row image
  kIndexInsert = 6, // object_id=index, rid, payload1=key
  kIndexDelete = 7, // object_id=index, rid, payload1=key
  /// Compensation record: undo of a kHeapDelete brought the slot back to
  /// life. Every runtime undo logs its compensating action (the other three
  /// undo shapes reuse kHeapDelete / kIndexInsert / kIndexDelete), so redo
  /// replays aborts at the position they actually happened — without this, a
  /// delete + rollback + re-delete of the same row replays as two deletes of
  /// one slot and recovery fails.
  kHeapResurrect = 8,  // object_id=table, rid
  /// Two-phase commit vote record (payload1 = u64 global txn id). A prepared
  /// transaction's effects are durable and its locks stay held; recovery
  /// neither commits nor undoes it — the txn is re-registered in-doubt and
  /// waits for the coordinator's decision (CommitPrepared / Abort).
  kPrepare = 9,
};

/// One WAL record. Row images and index keys are stored exactly as they live
/// on pages — encrypted cells stay encrypted in the log, which is why backups
/// and log shipping leak nothing (paper §1.1 "in transit during backups").
struct LogRecord {
  uint64_t lsn = 0;
  uint64_t txn_id = 0;
  LogRecordType type = LogRecordType::kBegin;
  uint32_t object_id = 0;
  Rid rid;
  Bytes payload1;

  void SerializeTo(Bytes* out) const;
  static Result<LogRecord> Deserialize(Slice in, size_t* offset);
};

/// What Wal::ParseImage recovered from a durable byte image. A crash can
/// leave a torn frame at the tail; parsing stops there and reports it, never
/// failing — a half-written record is the expected shape of a crash, not
/// corruption of the prefix before it.
struct WalLoadResult {
  std::vector<LogRecord> records;
  /// Byte offset just past the last intact frame (== start of any torn tail).
  size_t bytes_consumed = 0;
  /// End offset of each intact frame, in order. frame_ends[i] is a valid
  /// crash point: cutting the image there loses records i+1.. and nothing
  /// else. Used by the crash-point torture harness.
  std::vector<size_t> frame_ends;
  /// True when trailing bytes after the last intact frame were dropped
  /// (truncated frame, checksum mismatch, or undecodable body).
  bool torn_tail = false;
};

/// The WAL's frame checksum (FNV-1a 32-bit). Not cryptographic — it only
/// needs to tell "frame ends at a clean boundary" from "torn mid-write".
uint32_t FrameChecksum(Slice body);

/// Frames an opaque body with the WAL's [u32 len][u32 checksum] header. The
/// DDL journal and checkpoint file reuse this so every durable artifact in
/// the data directory shares one torn-tail discipline.
void AppendFramedBlob(Bytes* out, Slice body);

/// Parse result for a framed-blob stream (the DDL journal's on-disk form).
struct FramedBlobs {
  std::vector<Bytes> blobs;
  size_t bytes_consumed = 0;
  bool torn_tail = false;
};
FramedBlobs ParseFramedBlobs(Slice image);

/// Append-only write-ahead log. Retains structured records for recovery
/// replay plus the durable byte image — the adversary-observable "disk" form,
/// scanned by leakage tests and cut at arbitrary prefixes by the crash-point
/// torture harness.
///
/// Two backing modes share identical framing and semantics:
///   - In-memory (default): the byte image lives only in `image_`; Sync is a
///     no-op beyond its fault point. This remains the mode every pre-existing
///     test and the in-process torture matrix run in.
///   - File-backed (after AttachFile): every frame is additionally written to
///     an O_APPEND fd under the data directory, Sync performs a real fsync
///     (the commit durability point), and truncation rewrites the file
///     atomically (tmp → fsync → rename → fsync dir). `image_` stays an
///     exact mirror of the file so RawBytes/leakage checks see disk bytes.
///
/// On-image framing, per record:
///
///     u32  body length
///     u32  FNV-1a checksum of the body
///     ...  body (LogRecord::SerializeTo)
///
/// The checksum is what lets recovery distinguish "log ends here" from "log
/// was torn mid-write here": a torn tail fails the length or checksum test
/// and is dropped, everything before it replays.
///
/// Fault points (see fault/fault.h):
///   wal/append       Append fails before writing anything.
///   wal/torn_append  Append writes only the first `arg` bytes of the frame
///                    (default: half) to the image/file and fails — simulates
///                    a crash mid-write.
///   wal/sync         Sync fails (fsync error at the commit durability
///                    point); the real fsync is skipped.
class Wal {
 public:
  Wal() = default;
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Switches to file-backed mode. Opens (creating + directory-fsyncing if
  /// needed) `path` for O_APPEND writes, parses its contents, physically
  /// truncates any torn tail, and adopts the intact prefix as the log. The
  /// returned WalLoadResult is the reopened log (recovery replays it).
  Result<WalLoadResult> AttachFile(const std::string& path);
  bool file_backed() const;

  /// Assigns the next LSN, frames and appends the record. In file-backed
  /// mode the frame is written (not yet fsynced) to the log file.
  Result<uint64_t> Append(LogRecord record);

  /// Durability barrier: everything appended so far survives a crash. In
  /// file-backed mode this is a real fsync of the log fd; in-memory it is
  /// trivially "synced". Either way the `wal/sync` fault point fires first
  /// (a fired fault skips the fsync — the commit must not become durable).
  Status Sync();

  /// Group-commit durability barrier: returns once every record up to and
  /// including `lsn` is durable. Concurrent callers form a cohort — one
  /// leader performs the fsync (after an optional `group_commit_window_us`
  /// linger that lets more committers publish their records) and its single
  /// fsync covers every follower whose lsn was appended before it ran, so
  /// commits-per-fsync ≫ 1 under concurrency. With one caller the behavior
  /// is exactly Sync(). The `wal/sync` fault point fires per *caller* at
  /// entry — before joining any cohort — so a faulted committer never has
  /// its commit made durable by a neighbor's fsync. A leader's failed fsync
  /// poisons the log (see poisoned()): followers are NOT allowed to retry
  /// the fsync and trust its result, so no commit is ever acked off a
  /// barrier that reported an error.
  Status SyncUpTo(uint64_t lsn);

  /// Leader linger before the cohort fsync (0 = fsync immediately; natural
  /// batching from followers arriving during a running fsync still applies).
  void set_group_commit_window_us(uint64_t us);

  /// Cohort fsyncs performed by SyncUpTo.
  uint64_t group_commit_batches() const;
  /// SyncUpTo calls that reached the durability barrier (== acked commits
  /// when the engine routes commits through SyncUpTo).
  uint64_t sync_requests() const;

  std::vector<LogRecord> Snapshot() const;
  uint64_t next_lsn() const;
  /// Raises next_lsn to at least `lsn` — used after loading a checkpoint
  /// whose LSN horizon is past the (possibly truncated-to-empty) log tail.
  void EnsureNextLsn(uint64_t lsn);

  /// The durable byte image (adversary view; framed).
  Bytes RawBytes() const;

  /// Parses a durable image, dropping any torn tail. Never fails.
  static WalLoadResult ParseImage(Slice image);

  /// Replaces this log's contents with what `image` holds — the "reopen after
  /// crash" path. Returns the parse result so callers can see how much of the
  /// tail was lost. File-backed: the file is atomically rewritten to match.
  WalLoadResult LoadImage(Slice image);

  /// Drops records up to `lsn` exclusive (log truncation after checkpoint).
  /// File-backed: rewrites the log file atomically; a crash between the
  /// checkpoint publish and this rewrite only leaves already-checkpointed
  /// records in the file, which recovery filters out by LSN.
  Status TruncateBefore(uint64_t lsn);

  /// Replaces the contents wholesale. Used to transplant a crashed engine's
  /// log into a fresh engine in crash-recovery tests.
  void Replace(std::vector<LogRecord> records);
  size_t record_count() const;

  // ----- durability gauges (file-backed mode; zero otherwise) -----
  /// fsyncs issued by this log (commit-path Sync + attach/rewrite syncs).
  uint64_t fsyncs() const;
  /// Bytes of torn tail dropped across AttachFile/LoadImage calls.
  uint64_t torn_bytes_dropped() const;
  /// Current size of the durable image in bytes.
  uint64_t wal_bytes() const;
  /// File-write failures that left the on-disk log diverged from the
  /// in-memory mirror (failed truncation rewrites, failed torn-append
  /// writes, failed reopens). Nonzero means disk state lags `image_`.
  uint64_t file_errors() const;
  /// True after the log became unwritable: a rewrite lost the append fd, or
  /// an fsync failed (the kernel clears a writeback error after reporting it
  /// once, so a retried fsync cannot be trusted — it may "succeed" with the
  /// failed writes still lost). Append/Sync/SyncUpTo refuse with an error
  /// (never silently degrade to in-memory mode) until a later atomic
  /// rewrite — e.g. the next checkpoint truncation — succeeds.
  bool poisoned() const;

 private:
  /// Rebuilds image_ from records_. Caller holds mu_.
  void RebuildImageLocked();
  /// File-backed: atomically rewrites the log file from image_ and reopens
  /// the append fd (the rename replaced the inode). Caller holds mu_.
  Status RewriteFileLocked();
  /// Appends raw bytes to the log fd. Caller holds mu_.
  Status WriteToFileLocked(const uint8_t* data, size_t n);

  mutable std::mutex mu_;
  std::vector<LogRecord> records_;
  Bytes image_;  // framed durable form of records_ (plus any torn tail)
  uint64_t next_lsn_ = 1;

  // ----- group commit (guarded by mu_; sync_cv_ signals leader handoff) ---
  std::condition_variable sync_cv_;
  /// Highest LSN covered by a completed fsync barrier.
  uint64_t synced_lsn_ = 0;
  /// True while a leader is fsyncing (followers wait instead of piling on).
  bool sync_in_progress_ = false;
  uint64_t group_commit_window_us_ = 0;
  uint64_t sync_requests_ = 0;
  uint64_t group_commit_batches_ = 0;

  int fd_ = -1;  // -1: in-memory mode (unless poisoned_)
  /// File-backed but unwritable: the append fd was lost (reopen after an
  /// atomic rewrite failed) or an fsync failed (retrying fsync after a
  /// failure is unsound — the kernel clears the writeback error). Sticky
  /// until a successful atomic rewrite; distinguished from fd_ == -1
  /// in-memory mode so neither failure silently turns a durable log into a
  /// volatile one.
  bool poisoned_ = false;
  std::string path_;
  uint64_t fsyncs_ = 0;
  uint64_t torn_dropped_ = 0;
  uint64_t file_errors_ = 0;
};

}  // namespace aedb::storage

#endif  // AEDB_STORAGE_WAL_H_
