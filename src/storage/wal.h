#ifndef AEDB_STORAGE_WAL_H_
#define AEDB_STORAGE_WAL_H_

#include <mutex>
#include <vector>

#include "storage/page.h"

namespace aedb::storage {

enum class LogRecordType : uint8_t {
  kBegin = 1,
  kCommit = 2,
  kAbort = 3,
  kHeapInsert = 4,  // object_id=table, rid, payload1=row image
  kHeapDelete = 5,  // object_id=table, rid, payload1=old row image
  kIndexInsert = 6, // object_id=index, rid, payload1=key
  kIndexDelete = 7, // object_id=index, rid, payload1=key
};

/// One WAL record. Row images and index keys are stored exactly as they live
/// on pages — encrypted cells stay encrypted in the log, which is why backups
/// and log shipping leak nothing (paper §1.1 "in transit during backups").
struct LogRecord {
  uint64_t lsn = 0;
  uint64_t txn_id = 0;
  LogRecordType type = LogRecordType::kBegin;
  uint32_t object_id = 0;
  Rid rid;
  Bytes payload1;

  void SerializeTo(Bytes* out) const;
  static Result<LogRecord> Deserialize(Slice in, size_t* offset);
};

/// What Wal::ParseImage recovered from a durable byte image. A crash can
/// leave a torn frame at the tail; parsing stops there and reports it, never
/// failing — a half-written record is the expected shape of a crash, not
/// corruption of the prefix before it.
struct WalLoadResult {
  std::vector<LogRecord> records;
  /// Byte offset just past the last intact frame (== start of any torn tail).
  size_t bytes_consumed = 0;
  /// End offset of each intact frame, in order. frame_ends[i] is a valid
  /// crash point: cutting the image there loses records i+1.. and nothing
  /// else. Used by the crash-point torture harness.
  std::vector<size_t> frame_ends;
  /// True when trailing bytes after the last intact frame were dropped
  /// (truncated frame, checksum mismatch, or undecodable body).
  bool torn_tail = false;
};

/// Append-only write-ahead log. Retains structured records for recovery
/// replay plus the durable byte image — the adversary-observable "disk" form,
/// scanned by leakage tests and cut at arbitrary prefixes by the crash-point
/// torture harness.
///
/// On-image framing, per record:
///
///     u32  body length
///     u32  FNV-1a checksum of the body
///     ...  body (LogRecord::SerializeTo)
///
/// The checksum is what lets recovery distinguish "log ends here" from "log
/// was torn mid-write here": a torn tail fails the length or checksum test
/// and is dropped, everything before it replays.
///
/// Fault points (see fault/fault.h):
///   wal/append       Append fails before writing anything.
///   wal/torn_append  Append writes only the first `arg` bytes of the frame
///                    (default: half) to the image and fails — simulates a
///                    crash mid-write.
///   wal/sync         Sync fails (fsync error at the commit durability point).
class Wal {
 public:
  /// Assigns the next LSN, frames and appends the record. Fails only via the
  /// fault points above (the in-memory backing store itself cannot fail).
  Result<uint64_t> Append(LogRecord record);

  /// Durability barrier: everything appended so far survives a crash. The
  /// in-memory image is trivially "synced"; this exists as the fsync fault
  /// point exercised by the commit path.
  Status Sync();

  std::vector<LogRecord> Snapshot() const;
  uint64_t next_lsn() const;

  /// The durable byte image (adversary view; framed).
  Bytes RawBytes() const;

  /// Parses a durable image, dropping any torn tail. Never fails.
  static WalLoadResult ParseImage(Slice image);

  /// Replaces this log's contents with what `image` holds — the "reopen after
  /// crash" path. Returns the parse result so callers can see how much of the
  /// tail was lost.
  WalLoadResult LoadImage(Slice image);

  /// Drops records up to `lsn` exclusive (log truncation after checkpoint).
  void TruncateBefore(uint64_t lsn);

  /// Replaces the contents wholesale. Used to transplant a crashed engine's
  /// log into a fresh engine in crash-recovery tests.
  void Replace(std::vector<LogRecord> records);
  size_t record_count() const;

 private:
  /// Rebuilds image_ from records_. Caller holds mu_.
  void RebuildImageLocked();

  mutable std::mutex mu_;
  std::vector<LogRecord> records_;
  Bytes image_;  // framed durable form of records_ (plus any torn tail)
  uint64_t next_lsn_ = 1;
};

}  // namespace aedb::storage

#endif  // AEDB_STORAGE_WAL_H_
