#ifndef AEDB_STORAGE_WAL_H_
#define AEDB_STORAGE_WAL_H_

#include <mutex>
#include <vector>

#include "storage/page.h"

namespace aedb::storage {

enum class LogRecordType : uint8_t {
  kBegin = 1,
  kCommit = 2,
  kAbort = 3,
  kHeapInsert = 4,  // object_id=table, rid, payload1=row image
  kHeapDelete = 5,  // object_id=table, rid, payload1=old row image
  kIndexInsert = 6, // object_id=index, rid, payload1=key
  kIndexDelete = 7, // object_id=index, rid, payload1=key
};

/// One WAL record. Row images and index keys are stored exactly as they live
/// on pages — encrypted cells stay encrypted in the log, which is why backups
/// and log shipping leak nothing (paper §1.1 "in transit during backups").
struct LogRecord {
  uint64_t lsn = 0;
  uint64_t txn_id = 0;
  LogRecordType type = LogRecordType::kBegin;
  uint32_t object_id = 0;
  Rid rid;
  Bytes payload1;

  void SerializeTo(Bytes* out) const;
  static Result<LogRecord> Deserialize(Slice in, size_t* offset);
};

/// Append-only write-ahead log. Retains structured records for recovery
/// replay plus the serialized byte image (the adversary-observable "disk"
/// form, scanned by leakage tests).
class Wal {
 public:
  uint64_t Append(LogRecord record);

  std::vector<LogRecord> Snapshot() const;
  uint64_t next_lsn() const;

  /// Serialized log bytes (adversary view).
  Bytes RawBytes() const;

  /// Drops records up to `lsn` exclusive (log truncation after checkpoint).
  void TruncateBefore(uint64_t lsn);

  /// Replaces the contents wholesale. Used to transplant a crashed engine's
  /// log into a fresh engine in crash-recovery tests.
  void Replace(std::vector<LogRecord> records);
  size_t record_count() const;

 private:
  mutable std::mutex mu_;
  std::vector<LogRecord> records_;
  uint64_t next_lsn_ = 1;
};

}  // namespace aedb::storage

#endif  // AEDB_STORAGE_WAL_H_
