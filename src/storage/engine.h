#ifndef AEDB_STORAGE_ENGINE_H_
#define AEDB_STORAGE_ENGINE_H_

#include <chrono>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <vector>

#include "storage/btree.h"
#include "storage/checkpoint.h"
#include "storage/heap_table.h"
#include "storage/lock_manager.h"
#include "storage/wal.h"

namespace aedb::storage {

struct EngineOptions {
  /// Models SQL Server's constant-time recovery (paper §4.5 / [1]): with CTR
  /// on, deferred transactions do NOT hold row locks after a crash — the
  /// database stays fully available while the "version cleaner" (our
  /// ResolveDeferred) retries index cleanup until enclave keys arrive.
  bool constant_time_recovery = false;
  std::chrono::milliseconds lock_timeout{2000};
  /// Buffer pool capacity in 8 KiB pages (0 = BufferPool::kDefaultPages).
  /// All heap and index pages of this engine share the one pool, so a pool
  /// smaller than the working set exercises real eviction + page-store I/O.
  uint64_t pool_pages = 0;
  /// Background dirty-page flusher period (0 = no flusher thread; dirty
  /// pages write back on eviction and at checkpoints only).
  uint64_t flush_interval_ms = 0;
  /// Backing store for evicted pages. Null = engine-owned MemPageStore
  /// (tests, in-process torture). The server layer passes a FilePageStore
  /// under the data directory; evicted ciphertext then genuinely hits disk.
  /// Not owned; must outlive the engine.
  PageStore* page_store = nullptr;
  /// Group-commit leader linger in microseconds (see Wal::SyncUpTo). 0 keeps
  /// pure natural batching: single-threaded commit behavior is unchanged.
  uint64_t group_commit_window_us = 0;
};

/// A transaction that crashed between Prepare and the coordinator's decision.
/// Recovery re-registers it as active+prepared with its row locks held; the
/// coordinator (or its decision log) must settle it via CommitPrepared/Abort.
struct InDoubtTxn {
  uint64_t txn_id = 0;
  uint64_t gtid = 0;  // coordinator's global transaction id (kPrepare payload)
};

struct RecoveryResult {
  size_t redone = 0;
  size_t undone = 0;
  std::vector<uint64_t> deferred_txns;
  /// Prepared-but-undecided transactions found in the log (2PC in-doubt).
  std::vector<InDoubtTxn> in_doubt;
  std::vector<uint32_t> rebuild_pending_indexes;
  /// LSN horizon of the checkpoint recovery started from (0 = no checkpoint:
  /// the whole log replayed).
  uint64_t from_checkpoint_lsn = 0;
  /// Records past the checkpoint horizon — what redo actually walked. The
  /// reopened log can be longer when a crash landed between checkpoint
  /// publish and log truncation; those pre-horizon records are filtered, not
  /// replayed, and do not count here.
  size_t log_tail_records = 0;
  /// Heap records whose table no longer exists (e.g. left behind by DDL that
  /// never reached its journal commit marker). Skipped, not replayed — an
  /// object that was never acknowledged cannot be required for recovery.
  size_t orphaned_records_skipped = 0;
};

/// \brief Transactional storage: WAL-logged heap tables and B+-tree indexes,
/// exclusive locking, and crash recovery with the paper's §4.5 semantics.
///
/// Recovery is replay-based: heap state is reconstructed physically
/// (deterministic redo of page operations, slot-exact), index undo is
/// logical. An encrypted range index whose CEK is absent from the enclave at
/// recovery time cannot be rebuilt — it is marked *rebuild-pending*, loser
/// transactions touching it become *deferred* (holding their row locks unless
/// CTR is on), and everything resolves when the client connects and keys
/// arrive (ResolveDeferred) or the index is invalidated (InvalidateIndex).
class StorageEngine {
 public:
  explicit StorageEngine(EngineOptions options = EngineOptions{});

  StorageEngine(const StorageEngine&) = delete;
  StorageEngine& operator=(const StorageEngine&) = delete;

  // ----- catalog registration (done once at startup, before use) -----
  Status CreateTable(uint32_t table_id);
  Status CreateIndex(uint32_t index_id, uint32_t table_id,
                     std::unique_ptr<Comparator> comparator, bool unique);
  Status DropIndex(uint32_t index_id);

  HeapTable* table(uint32_t table_id);
  BTree* index_tree(uint32_t index_id);
  /// Registered catalog ids (for consistency checkers that must visit every
  /// table/index, e.g. the crash-point torture verifier).
  std::vector<uint32_t> TableIds() const;
  std::vector<uint32_t> IndexIds() const;
  /// The comparator an index orders by (for executor-side bound checks).
  const Comparator* index_comparator(uint32_t index_id) const;

  /// OK when the index may serve reads/writes; FailedPrecondition when it is
  /// invalid or has pending recovery work.
  Status CheckIndexUsable(uint32_t index_id) const;
  bool IndexInvalid(uint32_t index_id) const;

  // ----- transactions -----
  uint64_t Begin();
  Status Commit(uint64_t txn_id);
  /// 2PC phase one: forces a kPrepare record (payload = `gtid`) durable and
  /// marks the txn prepared. The txn stays active with all locks held; after
  /// OK the engine guarantees CommitPrepared can succeed across a crash.
  /// On a durability failure the txn is aborted (vote NO) and
  /// TransactionAborted is returned.
  Status Prepare(uint64_t txn_id, uint64_t gtid);
  /// 2PC phase two: commits a prepared txn. Unlike Commit, a durability
  /// failure does NOT abort — the coordinator already decided commit — the
  /// txn is re-parked as prepared/in-doubt and the error returned so a later
  /// retry or recovery finishes the job.
  Status CommitPrepared(uint64_t txn_id);
  /// Active transactions in the prepared state (after Recover: the in-doubt
  /// set awaiting a coordinator decision).
  std::vector<InDoubtTxn> InDoubtTxns() const;
  /// Rolls back. If index undo hits a missing enclave key the transaction is
  /// parked as deferred (OK is still returned; see DeferredTxns()).
  Status Abort(uint64_t txn_id);
  /// Logged mutations recorded so far by an active transaction (0 for an
  /// unknown/finished txn). Lets the server tell whether a failed statement
  /// applied anything before it died — the partial-write test behind the
  /// mid-statement-overload → transaction-abort conversion.
  size_t TxnOpCount(uint64_t txn_id) const;

  // ----- logged mutations (caller must hold row locks as appropriate) -----
  Result<Rid> HeapInsert(uint64_t txn_id, uint32_t table_id, Slice record);
  Status HeapDelete(uint64_t txn_id, uint32_t table_id, const Rid& rid);
  Status IndexInsert(uint64_t txn_id, uint32_t index_id, const Bytes& key,
                     const Rid& rid);
  Status IndexDelete(uint64_t txn_id, uint32_t index_id, const Bytes& key,
                     const Rid& rid);

  // ----- locking -----
  Status LockRow(uint64_t txn_id, uint32_t table_id, const Rid& rid);
  Status LockTable(uint64_t txn_id, uint32_t table_id);
  bool RowLockedByOther(uint64_t txn_id, uint32_t table_id, const Rid& rid) const;

  /// Statement-scope reader/writer latch over `table_id` and its indexes.
  /// The executor's multi-step mutations (index delete, heap delete, heap
  /// insert, index insert for one row) hold it exclusive; lock-free readers
  /// hold it shared across an index probe + row fetch so they never observe
  /// the half-applied middle. Callers must never block on the lock manager
  /// while holding it. Null for unknown tables.
  std::shared_mutex* StatementLatch(uint32_t table_id);

  // ----- checkpointing -----
  /// Captures a quiescent point-in-time image: blocks new Begin() calls,
  /// waits up to `wait` for in-flight transactions to finish, then snapshots
  /// every heap and index under meta_mu_. Refuses (FailedPrecondition) if the
  /// engine does not quiesce in time, or if deferred transactions / pending
  /// index rebuilds pin the log (their undo needs the full WAL).
  Result<std::shared_ptr<const CheckpointImage>> CaptureCheckpoint(
      std::chrono::milliseconds wait);

  /// Installs `base` as the recovery base: Recover() will restore it and
  /// replay only WAL records with lsn >= base->checkpoint_lsn. Pass nullptr
  /// to clear. The caller (server layer) persists the image; the engine only
  /// consumes it.
  void SetCheckpointBase(std::shared_ptr<const CheckpointImage> base);
  std::shared_ptr<const CheckpointImage> checkpoint_base() const;

  // ----- recovery (§4.5) -----
  /// Rebuilds all state from the checkpoint base (if any) plus the WAL tail.
  /// Call after registering tables/indexes. Idempotent: safe to re-run after
  /// a crash mid-recovery.
  Result<RecoveryResult> Recover();

  /// Retries deferred work; call when CEKs are (re)installed in the enclave.
  /// "When the client connects and sends keys to the enclave, the deferred
  /// transactions are resolved."
  Status ResolveDeferred();

  /// Forced resolution: drop the index's recovery obligations and mark it
  /// invalid. Used by timeout/log-space policies, and automatically when no
  /// enclave is configured.
  Status InvalidateIndex(uint32_t index_id);

  std::vector<uint64_t> DeferredTxns() const;
  bool HasDeferredTxns() const;

  /// OK when the log could be truncated; FailedPrecondition while deferred
  /// transactions pin it (the §4.5 log-truncation hazard).
  Status CanTruncateLog() const;

  Wal& wal() { return wal_; }
  const Wal& wal() const { return wal_; }
  LockManager& locks() { return locks_; }
  const LockManager& locks() const { return locks_; }
  const EngineOptions& options() const { return options_; }
  BufferPool& pool() { return *pool_; }
  const BufferPool& pool() const { return *pool_; }

  /// Best-effort scrub of dead row bytes in one table; refused while any
  /// transaction is active or deferred (their undo may still resurrect).
  Status ScrubDeadRows(uint32_t table_id);

  /// Adversary view: every raw page image of every table.
  void ForEachPageRaw(const std::function<void(uint32_t, Slice)>& fn) const;

 private:
  struct IndexState {
    uint32_t table_id = 0;
    bool unique = false;
    std::unique_ptr<Comparator> comparator;
    std::unique_ptr<BTree> tree;
    bool invalid = false;
    bool rebuild_pending = false;
    mutable std::mutex latch;
  };

  struct TableState {
    std::unique_ptr<HeapTable> heap;
    mutable std::mutex latch;
    /// See StatementLatch().
    mutable std::shared_mutex stmt_latch;
  };

  struct ActiveTxn {
    std::vector<LogRecord> ops;  // this txn's mutations, for runtime undo
    bool prepared = false;       // 2PC: voted yes, awaiting decision
    uint64_t gtid = 0;           // 2PC: coordinator's global txn id
  };

  struct DeferredTxn {
    uint64_t txn_id = 0;
    std::vector<LogRecord> pending;  // undo work, already reversed
    std::set<uint32_t> pending_indexes;
  };

  /// RAII companion to the finalizing_ counter: decrements it and wakes
  /// checkpoint capture on every exit path of Commit/Abort.
  struct Finalizer {
    StorageEngine* engine;
    ~Finalizer();
  };

  Result<TableState*> FindTable(uint32_t table_id);
  Result<IndexState*> FindIndex(uint32_t index_id);
  const IndexState* FindIndexConst(uint32_t index_id) const;

  /// Undoes one log record (logical for indexes). KeyNotInEnclave bubbles up
  /// so the caller can defer.
  Status UndoRecord(const LogRecord& rec);
  /// Finishes a deferred txn: logs Abort and releases its locks.
  void FinishDeferred(const DeferredTxn& txn);
  Status RebuildIndexFromLog(IndexState* index, uint32_t index_id);

  EngineOptions options_;
  // Pool before the table/index maps: heaps and trees drop their pool
  // objects on destruction, so the pool must be destroyed after them.
  std::unique_ptr<MemPageStore> owned_store_;  // when options_.page_store null
  std::unique_ptr<BufferPool> pool_;
  Wal wal_;
  LockManager locks_;

  mutable std::mutex meta_mu_;  // guards the maps + txn table + deferred list
  std::condition_variable meta_cv_;  // signals txn-table transitions
  std::map<uint32_t, std::unique_ptr<TableState>> tables_;
  std::map<uint32_t, std::unique_ptr<IndexState>> indexes_;
  std::map<uint64_t, ActiveTxn> active_;
  std::vector<DeferredTxn> deferred_;
  uint64_t next_txn_id_ = 1;
  /// Transactions past their active_ erase but before their commit/abort
  /// record is durable. A checkpoint taken in that window would bake loser
  /// effects with no undo info, so capture waits for this to reach zero too.
  uint64_t finalizing_ = 0;
  /// True while CaptureCheckpoint holds the engine quiescent; Begin() blocks.
  bool checkpoint_pending_ = false;
  std::shared_ptr<const CheckpointImage> checkpoint_base_;
};

}  // namespace aedb::storage

#endif  // AEDB_STORAGE_ENGINE_H_
