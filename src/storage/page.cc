#include "storage/page.h"

#include <cstring>

namespace aedb::storage {

Page::Page() : owned_(new uint8_t[kPageSize]) {
  data_ = owned_.get();
  std::memset(data_, 0, kPageSize);
  SetU16At(0, 0);                                // slot_count
  SetU16At(2, static_cast<uint16_t>(kPageSize)); // free_end
}

Page::Page(Slice raw) : owned_(new uint8_t[kPageSize]) {
  data_ = owned_.get();
  std::memset(data_, 0, kPageSize);
  std::memcpy(data_, raw.data(),
              raw.size() < kPageSize ? raw.size() : kPageSize);
}

Page Page::Wrap(uint8_t* frame) { return Page(frame); }

Page Page::WrapInit(uint8_t* frame) {
  Page p(frame);
  std::memset(frame, 0, kPageSize);
  p.SetU16At(0, 0);
  p.SetU16At(2, static_cast<uint16_t>(kPageSize));
  return p;
}

uint16_t Page::GetU16At(size_t off) const {
  return static_cast<uint16_t>(data_[off] | (data_[off + 1] << 8));
}

void Page::SetU16At(size_t off, uint16_t v) {
  data_[off] = static_cast<uint8_t>(v);
  data_[off + 1] = static_cast<uint8_t>(v >> 8);
}

uint16_t Page::slot_count() const { return GetU16At(0); }

uint16_t Page::SlotOffset(uint16_t slot) const {
  return GetU16At(kHeaderSize + slot * kSlotSize);
}

uint16_t Page::SlotLen(uint16_t slot) const {
  return GetU16At(kHeaderSize + slot * kSlotSize + 2);
}

size_t Page::free_space() const {
  size_t slots_end = kHeaderSize + slot_count() * kSlotSize;
  return GetU16At(2) - slots_end;
}

bool Page::HasSpaceFor(size_t record_size) const {
  return record_size + kSlotSize <= free_space();
}

Result<uint16_t> Page::Insert(Slice record) {
  if (record.size() > kMaxRecordSize) {
    return Status::InvalidArgument("record larger than page");
  }
  if (!HasSpaceFor(record.size())) {
    return Status::OutOfRange("page full");
  }
  uint16_t count = slot_count();
  uint16_t free_end = GetU16At(2);
  uint16_t new_off = static_cast<uint16_t>(free_end - record.size());
  std::memcpy(data_ + new_off, record.data(), record.size());
  SetU16At(kHeaderSize + count * kSlotSize, new_off);
  SetU16At(kHeaderSize + count * kSlotSize + 2,
           static_cast<uint16_t>(record.size()));
  SetU16At(0, count + 1);
  SetU16At(2, new_off);
  return count;
}

bool Page::IsLive(uint16_t slot) const {
  return slot < slot_count() && (SlotLen(slot) & kDeadBit) == 0;
}

Result<Slice> Page::Read(uint16_t slot) const {
  if (slot >= slot_count()) return Status::NotFound("slot out of range");
  if (!IsLive(slot)) return Status::NotFound("slot deleted");
  return Slice(data_ + SlotOffset(slot), SlotLen(slot));
}

Status Page::Delete(uint16_t slot) {
  if (slot >= slot_count()) return Status::NotFound("slot out of range");
  if (!IsLive(slot)) return Status::NotFound("slot deleted");
  SetU16At(kHeaderSize + slot * kSlotSize + 2,
           static_cast<uint16_t>(SlotLen(slot) | kDeadBit));
  return Status::OK();
}

void Page::ScrubDead() {
  for (uint16_t s = 0; s < slot_count(); ++s) {
    uint16_t len = SlotLen(s);
    if ((len & kDeadBit) == 0) continue;
    std::memset(data_ + SlotOffset(s), 0,
                static_cast<uint16_t>(len & ~kDeadBit));
  }
}

Status Page::Resurrect(uint16_t slot) {
  if (slot >= slot_count()) return Status::NotFound("slot out of range");
  uint16_t len = SlotLen(slot);
  if ((len & kDeadBit) == 0) {
    return Status::FailedPrecondition("slot is not deleted");
  }
  SetU16At(kHeaderSize + slot * kSlotSize + 2,
           static_cast<uint16_t>(len & ~kDeadBit));
  return Status::OK();
}

Status Page::UpdateInPlace(uint16_t slot, Slice record) {
  if (slot >= slot_count()) return Status::NotFound("slot out of range");
  if (!IsLive(slot)) return Status::NotFound("slot deleted");
  if (record.size() > SlotLen(slot)) {
    return Status::OutOfRange("record grew; relocate");
  }
  std::memcpy(data_ + SlotOffset(slot), record.data(), record.size());
  SetU16At(kHeaderSize + slot * kSlotSize + 2,
           static_cast<uint16_t>(record.size()));
  return Status::OK();
}

}  // namespace aedb::storage
