#include "storage/checkpoint.h"

#include "storage/wal.h"

namespace aedb::storage {

namespace {
constexpr uint32_t kMagic = 0x41434b50;  // "ACKP"
constexpr uint32_t kVersion = 1;
}  // namespace

Bytes CheckpointImage::Serialize() const {
  Bytes body;
  PutU64(&body, checkpoint_lsn);
  PutU64(&body, next_txn_id);
  PutU32(&body, static_cast<uint32_t>(tables.size()));
  for (const TableImage& t : tables) {
    PutU32(&body, t.table_id);
    PutLengthPrefixed(&body, t.heap);
  }
  PutU32(&body, static_cast<uint32_t>(indexes.size()));
  for (const IndexImage& idx : indexes) {
    PutU32(&body, idx.index_id);
    body.push_back(idx.invalid ? 1 : 0);
    PutU64(&body, idx.entries.size());
    for (const auto& [key, rid] : idx.entries) {
      PutLengthPrefixed(&body, key);
      PutU64(&body, rid.Encode());
    }
  }
  Bytes out;
  PutU32(&out, kMagic);
  PutU32(&out, kVersion);
  PutU32(&out, static_cast<uint32_t>(body.size()));
  PutU32(&out, FrameChecksum(body));
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

Result<CheckpointImage> CheckpointImage::Deserialize(Slice in) {
  size_t off = 0;
  uint32_t magic, version, body_len, checksum;
  AEDB_ASSIGN_OR_RETURN(magic, GetU32(in, &off));
  AEDB_ASSIGN_OR_RETURN(version, GetU32(in, &off));
  AEDB_ASSIGN_OR_RETURN(body_len, GetU32(in, &off));
  AEDB_ASSIGN_OR_RETURN(checksum, GetU32(in, &off));
  if (magic != kMagic) return Status::Corruption("not a checkpoint file");
  if (version != kVersion) {
    return Status::Corruption("unsupported checkpoint version");
  }
  if (off + body_len != in.size()) {
    return Status::Corruption("checkpoint length mismatch");
  }
  Slice body = in.subslice(off, body_len);
  if (FrameChecksum(body) != checksum) {
    return Status::Corruption("checkpoint checksum mismatch");
  }

  CheckpointImage img;
  size_t b = 0;
  AEDB_ASSIGN_OR_RETURN(img.checkpoint_lsn, GetU64(body, &b));
  AEDB_ASSIGN_OR_RETURN(img.next_txn_id, GetU64(body, &b));
  uint32_t n_tables;
  AEDB_ASSIGN_OR_RETURN(n_tables, GetU32(body, &b));
  img.tables.reserve(n_tables);
  for (uint32_t i = 0; i < n_tables; ++i) {
    TableImage t;
    AEDB_ASSIGN_OR_RETURN(t.table_id, GetU32(body, &b));
    AEDB_ASSIGN_OR_RETURN(t.heap, GetLengthPrefixed(body, &b));
    img.tables.push_back(std::move(t));
  }
  uint32_t n_indexes;
  AEDB_ASSIGN_OR_RETURN(n_indexes, GetU32(body, &b));
  img.indexes.reserve(n_indexes);
  for (uint32_t i = 0; i < n_indexes; ++i) {
    IndexImage idx;
    AEDB_ASSIGN_OR_RETURN(idx.index_id, GetU32(body, &b));
    if (b >= body.size()) return Status::Corruption("checkpoint truncated");
    idx.invalid = body[b++] != 0;
    uint64_t n_entries;
    AEDB_ASSIGN_OR_RETURN(n_entries, GetU64(body, &b));
    idx.entries.reserve(n_entries);
    for (uint64_t e = 0; e < n_entries; ++e) {
      Bytes key;
      AEDB_ASSIGN_OR_RETURN(key, GetLengthPrefixed(body, &b));
      uint64_t rid_enc;
      AEDB_ASSIGN_OR_RETURN(rid_enc, GetU64(body, &b));
      idx.entries.emplace_back(std::move(key), Rid::Decode(rid_enc));
    }
    img.indexes.push_back(std::move(idx));
  }
  if (b != body.size()) {
    return Status::Corruption("checkpoint has trailing bytes");
  }
  return img;
}

}  // namespace aedb::storage
