#ifndef AEDB_STORAGE_HEAP_TABLE_H_
#define AEDB_STORAGE_HEAP_TABLE_H_

#include <functional>
#include <memory>
#include <vector>

#include "storage/page.h"

namespace aedb::storage {

/// \brief A heap file of slotted pages. Rows are opaque byte blobs (the SQL
/// layer serializes values; encrypted columns land here as AEAD cells).
class HeapTable {
 public:
  HeapTable() = default;

  HeapTable(const HeapTable&) = delete;
  HeapTable& operator=(const HeapTable&) = delete;

  Result<Rid> Insert(Slice record);
  Result<Bytes> Read(const Rid& rid) const;
  Status Delete(const Rid& rid);

  /// Physical undo of Delete: restores the record at the same RID.
  Status Resurrect(const Rid& rid);

  /// Updates a row. Returns the (possibly new) RID: the row moves when it no
  /// longer fits in place; the caller fixes any indexes.
  Result<Rid> Update(const Rid& rid, Slice record);

  /// Calls `fn(rid, record)` for every live row; stops early if fn returns
  /// false.
  void Scan(const std::function<bool(const Rid&, Slice)>& fn) const;

  size_t page_count() const { return pages_.size(); }
  uint64_t live_rows() const { return live_rows_; }

  /// Adversary view: the raw page images.
  Slice PageRaw(size_t i) const { return pages_[i]->raw(); }

  /// Zeroes dead record bytes on all pages.
  void ScrubDead();

  /// Drops all rows (used when recovery rebuilds state from the log).
  void Clear();

  /// Appends this heap's checkpoint form to `out`: a page count followed by
  /// the raw 8 KiB page images. Because Insert placement is deterministic in
  /// the page state (append-biased, slot-exact), restoring these images and
  /// replaying the post-checkpoint WAL reproduces RIDs exactly — the same
  /// property the recovery redo's RID check relies on.
  void SerializeTo(Bytes* out) const;

  /// Replaces this heap's contents with a SerializeTo image; live_rows is
  /// recomputed by scanning slot liveness.
  Status RestoreFrom(Slice in, size_t* offset);

 private:
  std::vector<std::unique_ptr<Page>> pages_;
  uint64_t live_rows_ = 0;
};

}  // namespace aedb::storage

#endif  // AEDB_STORAGE_HEAP_TABLE_H_
