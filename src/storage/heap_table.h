#ifndef AEDB_STORAGE_HEAP_TABLE_H_
#define AEDB_STORAGE_HEAP_TABLE_H_

#include <functional>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace aedb::storage {

/// \brief A heap file of slotted pages. Rows are opaque byte blobs (the SQL
/// layer serializes values; encrypted columns land here as AEAD cells).
///
/// Pages live in a BufferPool object: every access pins the frame, operates
/// on the slotted page in place, and unpins — the table owns page *numbers*
/// (Rid.page), never page memory, so a pool smaller than the table works and
/// cold pages fault in from the page store.
///
/// Thread safety: an internal reader-writer latch makes every operation
/// atomic at row granularity — readers see a row entirely before or entirely
/// after any in-place update, never torn bytes. (The engine's table latch
/// serializes logged mutators against each other; unlatched executor reads
/// are what this guards.) Transaction-level visibility is still the lock
/// manager's job.
class HeapTable {
 public:
  /// Uses `pool` when given; otherwise the table owns a private
  /// memory-backed pool (standalone/test construction).
  explicit HeapTable(BufferPool* pool = nullptr);
  ~HeapTable();

  HeapTable(const HeapTable&) = delete;
  HeapTable& operator=(const HeapTable&) = delete;

  Result<Rid> Insert(Slice record);
  Result<Bytes> Read(const Rid& rid) const;
  Status Delete(const Rid& rid);

  /// Physical undo of Delete: restores the record at the same RID.
  Status Resurrect(const Rid& rid);

  /// Updates a row. Returns the (possibly new) RID: the row moves when it no
  /// longer fits in place; the caller fixes any indexes.
  Result<Rid> Update(const Rid& rid, Slice record);

  /// Calls `fn(rid, record)` for every live row; stops early if fn returns
  /// false. Pins one page at a time.
  Status Scan(const std::function<bool(const Rid&, Slice)>& fn) const;

  size_t page_count() const {
    std::shared_lock lock(mu_);
    return page_count_;
  }
  uint64_t live_rows() const {
    std::shared_lock lock(mu_);
    return live_rows_;
  }

  /// Adversary view: pins page `i` and hands its raw image to `fn`.
  Status WithPageRaw(size_t i, const std::function<void(Slice)>& fn) const;

  /// Zeroes dead record bytes on all pages.
  Status ScrubDead();

  /// Drops all rows (used when recovery rebuilds state from the log).
  void Clear();

  /// Appends this heap's checkpoint form to `out`: a page count followed by
  /// the raw 8 KiB page images. Because Insert placement is deterministic in
  /// the page state (append-biased, slot-exact), restoring these images and
  /// replaying the post-checkpoint WAL reproduces RIDs exactly — the same
  /// property the recovery redo's RID check relies on.
  Status SerializeTo(Bytes* out) const;

  /// Replaces this heap's contents with a SerializeTo image; live_rows is
  /// recomputed by scanning slot liveness.
  Status RestoreFrom(Slice in, size_t* offset);

 private:
  /// Pins page `page_no` (which must exist).
  Result<PinnedPage> PinPage(uint32_t page_no) const;
  /// Insert/Clear bodies without the latch (Update and RestoreFrom compose
  /// them under their own exclusive hold).
  Result<Rid> InsertLocked(Slice record);
  void ClearLocked();

  /// Readers shared, mutators exclusive (see class comment).
  mutable std::shared_mutex mu_;
  BufferPool* pool_;
  std::unique_ptr<MemPageStore> owned_store_;  // standalone mode only
  std::unique_ptr<BufferPool> owned_pool_;
  uint32_t object_id_;
  size_t page_count_ = 0;
  uint64_t live_rows_ = 0;
};

}  // namespace aedb::storage

#endif  // AEDB_STORAGE_HEAP_TABLE_H_
