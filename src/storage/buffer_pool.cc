#include "storage/buffer_pool.h"

#include <dirent.h>
#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "fault/fault.h"
#include "storage/fsio.h"

namespace aedb::storage {

// ---------------------------------------------------------------------------
// MemPageStore

Status MemPageStore::Write(PageId id, Slice page) {
  std::lock_guard<std::mutex> lock(mu_);
  pages_[id.Encode()] = page.ToBytes();
  return Status::OK();
}

Status MemPageStore::Read(PageId id, uint8_t* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pages_.find(id.Encode());
  if (it == pages_.end()) return Status::NotFound("page not in store");
  std::memcpy(out, it->second.data(), Page::kPageSize);
  return Status::OK();
}

Status MemPageStore::DropObject(uint32_t object_id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = pages_.begin(); it != pages_.end();) {
    if (static_cast<uint32_t>(it->first >> 32) == object_id) {
      it = pages_.erase(it);
    } else {
      ++it;
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// FilePageStore

namespace {
std::string ObjectPath(const std::string& dir, uint32_t object_id) {
  return dir + "/obj-" + std::to_string(object_id) + ".pages";
}
}  // namespace

FilePageStore::FilePageStore(std::string dir) : dir_(std::move(dir)) {}

FilePageStore::~FilePageStore() {
  for (auto& [id, fd] : fds_) ::close(fd);
}

Status FilePageStore::Wipe() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, fd] : fds_) ::close(fd);
  fds_.clear();
  DIR* d = ::opendir(dir_.c_str());
  if (d == nullptr) {
    if (errno == ENOENT) return Status::OK();  // nothing to wipe
    return Status::Internal("opendir " + dir_ + ": " + std::strerror(errno));
  }
  while (dirent* ent = ::readdir(d)) {
    std::string name = ent->d_name;
    if (name == "." || name == "..") continue;
    if (::unlink((dir_ + "/" + name).c_str()) != 0 && errno != ENOENT) {
      ::closedir(d);
      return Status::Internal("unlink " + name + ": " + std::strerror(errno));
    }
  }
  ::closedir(d);
  return fsio::SyncDir(dir_);
}

Result<int> FilePageStore::FdForLocked(uint32_t object_id, bool create) {
  auto it = fds_.find(object_id);
  if (it != fds_.end()) return it->second;
  if (!create) return Status::NotFound("page store has no such object");
  if (!dir_ready_) {
    AEDB_RETURN_IF_ERROR(fsio::EnsureDir(dir_));
    dir_ready_ = true;
  }
  std::string path = ObjectPath(dir_, object_id);
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::Internal("open " + path + ": " + std::strerror(errno));
  }
  fds_.emplace(object_id, fd);
  return fd;
}

Status FilePageStore::Write(PageId id, Slice page) {
  std::lock_guard<std::mutex> lock(mu_);
  int fd;
  AEDB_ASSIGN_OR_RETURN(fd, FdForLocked(id.object_id, /*create=*/true));
  size_t off = 0;
  const off_t base = static_cast<off_t>(id.page_no) *
                     static_cast<off_t>(Page::kPageSize);
  while (off < page.size()) {
    ssize_t w = ::pwrite(fd, page.data() + off, page.size() - off,
                         base + static_cast<off_t>(off));
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("page store pwrite: ") +
                              std::strerror(errno));
    }
    off += static_cast<size_t>(w);
  }
  return Status::OK();
}

Status FilePageStore::Read(PageId id, uint8_t* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto found = FdForLocked(id.object_id, /*create=*/false);
  if (!found.ok()) return found.status();
  size_t off = 0;
  const off_t base = static_cast<off_t>(id.page_no) *
                     static_cast<off_t>(Page::kPageSize);
  while (off < Page::kPageSize) {
    ssize_t r = ::pread(*found, out + off, Page::kPageSize - off,
                        base + static_cast<off_t>(off));
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("page store pread: ") +
                              std::strerror(errno));
    }
    if (r == 0) return Status::NotFound("page not in store");
    off += static_cast<size_t>(r);
  }
  return Status::OK();
}

Status FilePageStore::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, fd] : fds_) {
    if (::fsync(fd) != 0) {
      return Status::Internal(std::string("page store fsync: ") +
                              std::strerror(errno));
    }
    fsio::CountFsync();
  }
  return Status::OK();
}

Status FilePageStore::DropObject(uint32_t object_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = fds_.find(object_id);
  if (it != fds_.end()) {
    ::close(it->second);
    fds_.erase(it);
  }
  std::string path = ObjectPath(dir_, object_id);
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return Status::Internal("unlink " + path + ": " + std::strerror(errno));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// PinnedPage

PinnedPage::PinnedPage(PinnedPage&& o) noexcept
    : pool_(o.pool_), frame_(o.frame_), data_(o.data_) {
  o.pool_ = nullptr;
  o.data_ = nullptr;
}

PinnedPage& PinnedPage::operator=(PinnedPage&& o) noexcept {
  if (this != &o) {
    Release();
    pool_ = o.pool_;
    frame_ = o.frame_;
    data_ = o.data_;
    o.pool_ = nullptr;
    o.data_ = nullptr;
  }
  return *this;
}

PinnedPage::~PinnedPage() { Release(); }

void PinnedPage::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_);
    pool_ = nullptr;
    data_ = nullptr;
  }
}

void PinnedPage::MarkDirty() {
  if (pool_ != nullptr) {
    pool_->frames_[frame_]->dirty.store(true, std::memory_order_relaxed);
  }
}

// ---------------------------------------------------------------------------
// BufferPool

BufferPool::BufferPool(PageStore* store, size_t capacity_pages)
    : store_(store),
      capacity_(capacity_pages == 0
                    ? kDefaultPages
                    : (capacity_pages < kMinPages ? kMinPages
                                                  : capacity_pages)) {
  frames_.reserve(capacity_);
  for (size_t i = 0; i < capacity_; ++i) {
    frames_.push_back(std::make_unique<Frame>());
  }
}

BufferPool::~BufferPool() { StopFlusher(); }

void BufferPool::Unpin(size_t frame) {
  std::lock_guard<std::mutex> lock(mu_);
  Frame& f = *frames_[frame];
  if (f.pins > 0) --f.pins;
  --pinned_now_;
  if (f.pins == 0) {
    if (f.doomed) {
      // Last pin of a dropped object's frame: reclaim it now. The dirty bit
      // may have been re-set by the stale holder; the object is dead, so the
      // bytes must never reach the store.
      f.doomed = false;
      f.valid = false;
      f.dirty.store(false, std::memory_order_relaxed);
    }
    unpin_cv_.notify_all();
  }
}

Result<size_t> BufferPool::SweepLocked() {
  bool saw_unpinned = false;
  // Two passes: the first clears ref bits (second chance), the second takes
  // the first frame both unreferenced and unpinned.
  for (size_t step = 0; step < 2 * capacity_; ++step) {
    size_t h = clock_hand_;
    clock_hand_ = (clock_hand_ + 1) % capacity_;
    Frame& f = *frames_[h];
    if (!f.valid) return h;  // free frame
    if (f.pins > 0) continue;
    saw_unpinned = true;
    if (f.ref) {
      f.ref = false;
      continue;
    }
    AEDB_RETURN_IF_ERROR(AEDB_FAULT_POINT("pool/evict"));
    if (f.dirty.load(std::memory_order_relaxed)) {
      AEDB_RETURN_IF_ERROR(AEDB_FAULT_POINT("pool/writeback"));
      AEDB_RETURN_IF_ERROR(
          store_->Write(f.id, Slice(f.data.get(), Page::kPageSize)));
      f.dirty.store(false, std::memory_order_relaxed);
      ++stats_.writebacks;
    }
    page_table_.erase(f.id.Encode());
    f.valid = false;
    ++stats_.evictions;
    return h;
  }
  (void)saw_unpinned;
  return kNoFrame;  // every frame is pinned
}

Result<PinnedPage> BufferPool::Pin(PageId id, bool create) {
  std::unique_lock<std::mutex> lock(mu_);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  for (;;) {
    auto it = page_table_.find(id.Encode());
    if (it != page_table_.end()) {
      Frame& f = *frames_[it->second];
      ++f.pins;
      f.ref = true;
      ++stats_.hits;
      if (++pinned_now_ > stats_.pinned_highwater) {
        stats_.pinned_highwater = pinned_now_;
      }
      return PinnedPage(this, it->second, f.data.get());
    }
    size_t h;
    AEDB_ASSIGN_OR_RETURN(h, SweepLocked());
    if (h != kNoFrame) {
      ++stats_.misses;
      Frame& f = *frames_[h];
      if (f.data == nullptr) f.data.reset(new uint8_t[Page::kPageSize]);
      Status read = store_->Read(id, f.data.get());
      if (read.IsNotFound() && create) {
        std::memset(f.data.get(), 0, Page::kPageSize);
      } else if (!read.ok()) {
        return read;  // the claimed frame simply stays free
      }
      f.id = id;
      f.valid = true;
      f.pins = 1;
      f.ref = true;
      f.dirty.store(false, std::memory_order_relaxed);
      page_table_[id.Encode()] = h;
      if (++pinned_now_ > stats_.pinned_highwater) {
        stats_.pinned_highwater = pinned_now_;
      }
      return PinnedPage(this, h, f.data.get());
    }
    // Every frame pinned: wait for an unpin, then retry the whole lookup
    // (another thread may have faulted our page in meanwhile).
    if (unpin_cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      return Status::Overloaded(
          "buffer pool exhausted: all " + std::to_string(capacity_) +
          " pages pinned");
    }
  }
}

Status BufferPool::WriteBackDirtyLocked(bool skip_pinned) {
  for (auto& fp : frames_) {
    Frame& f = *fp;
    if (!f.valid || f.doomed || !f.dirty.load(std::memory_order_relaxed)) {
      continue;
    }
    // A pinned frame's holder may be mid-mutation under only its table latch:
    // writing it back could snapshot torn bytes, and a MarkDirty landing
    // between the store write and the dirty-bit clear would be lost (frame
    // clean, changes unsaved). Skipped frames land at eviction or checkpoint
    // (FlushAll runs quiescent, where pinned frames are stable).
    if (skip_pinned && f.pins > 0) continue;
    AEDB_RETURN_IF_ERROR(AEDB_FAULT_POINT("pool/writeback"));
    AEDB_RETURN_IF_ERROR(
        store_->Write(f.id, Slice(f.data.get(), Page::kPageSize)));
    f.dirty.store(false, std::memory_order_relaxed);
    ++stats_.writebacks;
  }
  return Status::OK();
}

Status BufferPool::FlushAll() {
  std::lock_guard<std::mutex> lock(mu_);
  AEDB_RETURN_IF_ERROR(WriteBackDirtyLocked(/*skip_pinned=*/false));
  return store_->Sync();
}

Status BufferPool::DropObject(uint32_t object_id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& fp : frames_) {
    Frame& f = *fp;
    if (!f.valid || f.id.object_id != object_id) continue;
    page_table_.erase(f.id.Encode());
    f.dirty.store(false, std::memory_order_relaxed);
    if (f.pins > 0) {
      // A stale holder still has the bytes pinned (it may even re-dirty
      // them). Doom the frame: no writeback path touches it, and the final
      // Unpin reclaims it — object ids are never reused, so nothing can pin
      // it back into the page table meanwhile.
      f.doomed = true;
    } else {
      f.valid = false;
    }
  }
  return store_->DropObject(object_id);
}

void BufferPool::FlusherLoop(uint64_t interval_ms) {
  std::unique_lock<std::mutex> lock(flusher_mu_);
  while (!flusher_stop_) {
    flusher_cv_.wait_for(lock, std::chrono::milliseconds(interval_ms));
    if (flusher_stop_) break;
    lock.unlock();
    {
      // Best effort: a failed writeback stays dirty and is retried by the
      // next cycle, eviction, or checkpoint flush. Pinned frames are skipped
      // — their holders may be mutating the bytes right now.
      std::lock_guard<std::mutex> pool_lock(mu_);
      (void)WriteBackDirtyLocked(/*skip_pinned=*/true);
    }
    lock.lock();
  }
}

void BufferPool::StartFlusher(uint64_t interval_ms) {
  StopFlusher();
  if (interval_ms == 0) return;
  {
    std::lock_guard<std::mutex> lock(flusher_mu_);
    flusher_stop_ = false;
  }
  flusher_ = std::thread([this, interval_ms] { FlusherLoop(interval_ms); });
}

void BufferPool::StopFlusher() {
  {
    std::lock_guard<std::mutex> lock(flusher_mu_);
    flusher_stop_ = true;
  }
  flusher_cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();
}

BufferPoolStats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

uint64_t BufferPool::pinned() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pinned_now_;
}

}  // namespace aedb::storage
