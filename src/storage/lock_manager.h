#ifndef AEDB_STORAGE_LOCK_MANAGER_H_
#define AEDB_STORAGE_LOCK_MANAGER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/query_context.h"
#include "common/status.h"

namespace aedb::storage {

/// Exclusive row/table locks with timeout-based deadlock resolution.
/// Deferred transactions (paper §4.5) hold their locks across recovery until
/// resolved or the index is invalidated, which is what makes "large parts of
/// the database unavailable" observable in tests.
class LockManager {
 public:
  /// Blocks until granted or `timeout` elapses (FailedPrecondition on
  /// timeout — callers abort the transaction, resolving any deadlock).
  /// Re-entrant for the owning transaction.
  ///
  /// When `qctx` carries a deadline earlier than the lock timeout, the wait
  /// is bounded by the query's remaining budget instead: the waiter returns
  /// kDeadlineExceeded as soon as the query deadline passes (counted in
  /// `waits_expired()`), never sleeping out the longer global `lock_timeout`.
  Status Acquire(uint64_t txn_id, uint64_t resource,
                 std::chrono::milliseconds timeout,
                 const QueryContext* qctx = nullptr);

  /// Non-blocking probe used by readers to honor deferred-transaction locks.
  bool IsLockedByOther(uint64_t txn_id, uint64_t resource) const;

  void ReleaseAll(uint64_t txn_id);

  /// Drops every lock (crash recovery starts from a clean lock table).
  void Clear();

  size_t HeldCount(uint64_t txn_id) const;
  size_t total_locked() const;

  /// Lock waits cut short because the waiting query's deadline expired.
  uint64_t waits_expired() const {
    return waits_expired_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> waits_expired_{0};
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<uint64_t, uint64_t> owner_;  // resource -> txn
  std::unordered_map<uint64_t, std::unordered_set<uint64_t>> held_;
};

/// Canonical resource ids.
inline uint64_t RowResource(uint32_t table_id, uint64_t rid_encoded) {
  // Table id in the top bits; rid (page<<16|slot) below.
  return (static_cast<uint64_t>(table_id) << 48) ^ rid_encoded ^ (1ULL << 63);
}
inline uint64_t TableResource(uint32_t table_id) {
  return static_cast<uint64_t>(table_id) << 48;
}

}  // namespace aedb::storage

#endif  // AEDB_STORAGE_LOCK_MANAGER_H_
