#ifndef AEDB_STORAGE_TORTURE_H_
#define AEDB_STORAGE_TORTURE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "storage/engine.h"

namespace aedb::storage {

/// \brief WAL crash-point torture: runs a workload, then simulates a crash at
/// EVERY point in the log and verifies recovery lands on exactly the
/// committed prefix each time.
///
/// Crash model: the durable log image is cut
///   - at every record boundary (crash between two log writes), and
///   - in the middle of every frame (torn write: the fsync raced the crash).
/// For each cut a fresh engine (same catalog, from `factory`) loads the
/// truncated image, runs Recover(), and the verifier checks:
///   1. Heap contents equal the committed-prefix expectation — every row of
///      every committed transaction whose commit record made it into the cut,
///      nothing from losers, byte-for-byte and RID-exact.
///   2. Index contents equal committed inserts minus committed deletes.
///   3. live_rows()/size() bookkeeping matches.
/// A torn cut must recover identically to the boundary cut before it (the
/// torn tail is dropped, never half-applied).

struct TortureOptions {
  /// Also cut mid-frame (torn writes), not just at record boundaries.
  bool torn_midpoints = true;
  /// Cap on recorded failure messages (failures beyond it are still counted).
  size_t max_messages = 8;
};

struct TortureReport {
  size_t crash_points = 0;  // record-boundary cuts exercised
  size_t torn_points = 0;   // mid-frame cuts exercised
  size_t failures = 0;
  std::vector<std::string> messages;

  bool ok() const { return failures == 0; }
  std::string Summary() const;
};

/// Produces a fresh engine with the same tables/indexes registered as the one
/// the workload ran against (recovery replays the log into this catalog).
using EngineFactory = std::function<std::unique_ptr<StorageEngine>()>;

/// The workload to torture. Runs once against a live engine; every commit it
/// performs becomes a durability obligation checked at every later crash
/// point. May leave transactions uncommitted (they must NOT survive).
using TortureWorkload = std::function<Status(StorageEngine*)>;

Result<TortureReport> RunWalCrashTorture(const EngineFactory& factory,
                                         const TortureWorkload& workload,
                                         const TortureOptions& options = {});

}  // namespace aedb::storage

#endif  // AEDB_STORAGE_TORTURE_H_
