#ifndef AEDB_STORAGE_CHECKPOINT_H_
#define AEDB_STORAGE_CHECKPOINT_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "storage/page.h"

namespace aedb::storage {

/// \brief A point-in-time image of engine state, taken at a quiescent moment
/// (no active, committing or deferred transactions) so it needs no undo
/// information. Everything WAL-logged with lsn < checkpoint_lsn is reflected
/// in the image; recovery restores it and replays only the WAL tail.
///
/// Contents are exactly what lives on pages: heap page images and index
/// (key, rid) entries — encrypted cells stay AEAD ciphertext, so the
/// checkpoint file extends the at-rest guarantee to the snapshot. Index
/// entries are stored in tree order, which lets startup restore an encrypted
/// range index with zero comparator calls (the enclave has no keys yet).
struct CheckpointImage {
  /// WAL horizon: records with lsn < checkpoint_lsn are baked in.
  uint64_t checkpoint_lsn = 0;
  /// Transaction-id watermark at capture; restart must not reuse lower ids
  /// (the truncated log may still mention them).
  uint64_t next_txn_id = 1;

  struct TableImage {
    uint32_t table_id = 0;
    Bytes heap;  // HeapTable::SerializeTo form
  };
  struct IndexImage {
    uint32_t index_id = 0;
    bool invalid = false;  // InvalidateIndex outlives restarts
    std::vector<std::pair<Bytes, Rid>> entries;  // (key, rid), tree order
  };
  std::vector<TableImage> tables;
  std::vector<IndexImage> indexes;

  /// On-disk form: a versioned header plus a checksummed body. The checksum
  /// makes a half-written file detectable, though the atomic-rename publish
  /// protocol should never expose one.
  Bytes Serialize() const;
  static Result<CheckpointImage> Deserialize(Slice in);
};

}  // namespace aedb::storage

#endif  // AEDB_STORAGE_CHECKPOINT_H_
