#include "storage/fsio.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>

#include "fault/fault.h"

namespace aedb::storage::fsio {

namespace {

std::atomic<uint64_t> g_fsyncs{0};

Status Errno(const std::string& what, const std::string& path) {
  return Status::Internal(what + " " + path + ": " + std::strerror(errno));
}

Status FsyncFd(int fd, const std::string& path) {
  if (::fsync(fd) != 0) return Errno("fsync", path);
  g_fsyncs.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

}  // namespace

uint64_t FsyncsPerformed() { return g_fsyncs.load(std::memory_order_relaxed); }

void CountFsync() { g_fsyncs.fetch_add(1, std::memory_order_relaxed); }

std::string DirName(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Status EnsureDir(const std::string& dir) {
  if (dir.empty() || dir == "/" || dir == ".") return Status::OK();
  struct stat st;
  if (::stat(dir.c_str(), &st) == 0) {
    if (S_ISDIR(st.st_mode)) return Status::OK();
    return Status::InvalidArgument(dir + " exists and is not a directory");
  }
  AEDB_RETURN_IF_ERROR(EnsureDir(DirName(dir)));
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Errno("mkdir", dir);
  }
  return Status::OK();
}

Status SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Errno("open dir", dir);
  Status st = FsyncFd(fd, dir);
  ::close(fd);
  return st;
}

Result<Bytes> ReadFileBytes(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return Errno("open", path);
  }
  Bytes out;
  uint8_t buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Errno("read", path);
    }
    if (n == 0) break;
    out.insert(out.end(), buf, buf + n);
  }
  ::close(fd);
  return out;
}

Status WriteFileDurable(const std::string& path, Slice contents) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Errno("create", tmp);
  size_t off = 0;
  while (off < contents.size()) {
    ssize_t n = ::write(fd, contents.data() + off, contents.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status st = Errno("write", tmp);
      ::close(fd);
      ::unlink(tmp.c_str());
      return st;
    }
    off += static_cast<size_t>(n);
  }
  Status synced = FsyncFd(fd, tmp);
  ::close(fd);
  if (!synced.ok()) {
    ::unlink(tmp.c_str());
    return synced;
  }
  // Crash window: tmp durable, target untouched. A die-at here models a kill
  // between checkpoint write and publish.
  Status faulted = AEDB_FAULT_POINT("fsio/pre_rename");
  if (!faulted.ok()) {
    ::unlink(tmp.c_str());
    return faulted;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    Status st = Errno("rename", path);
    ::unlink(tmp.c_str());
    return st;
  }
  return SyncDir(DirName(path));
}

Status RemoveFileDurable(const std::string& path) {
  if (::unlink(path.c_str()) != 0) {
    if (errno == ENOENT) return Status::OK();
    return Errno("unlink", path);
  }
  return SyncDir(DirName(path));
}

}  // namespace aedb::storage::fsio
