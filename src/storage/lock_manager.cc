#include "storage/lock_manager.h"

#include <algorithm>

namespace aedb::storage {

Status LockManager::Acquire(uint64_t txn_id, uint64_t resource,
                            std::chrono::milliseconds timeout,
                            const QueryContext* qctx) {
  std::unique_lock<std::mutex> lock(mu_);
  auto deadline = std::chrono::steady_clock::now() + timeout;
  // A query deadline earlier than the lock timeout bounds the wait: the
  // waiter must give up within its remaining budget, not the global timeout.
  bool query_bound = false;
  if (qctx != nullptr && qctx->has_deadline() && qctx->deadline() < deadline) {
    deadline = qctx->deadline();
    query_bound = true;
  }
  // Cancel() only flips an atomic flag — it cannot notify this cv (the
  // context knows nothing about which cv its query sleeps on). Wait in short
  // slices so a cancelled waiter observes the flag within one slice instead
  // of sleeping out the full lock timeout.
  constexpr std::chrono::milliseconds kCancelPoll{10};
  for (;;) {
    auto it = owner_.find(resource);
    if (it == owner_.end()) {
      owner_[resource] = txn_id;
      held_[txn_id].insert(resource);
      return Status::OK();
    }
    if (it->second == txn_id) return Status::OK();  // re-entrant
    if (qctx != nullptr && qctx->cancelled()) {
      waits_expired_.fetch_add(1, std::memory_order_relaxed);
      return Status::DeadlineExceeded("lock wait abandoned: query cancelled");
    }
    auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      // The acquire attempt at the top of the loop already retried once
      // after the final wakeup, so the timeout is real.
      if (query_bound) {
        waits_expired_.fetch_add(1, std::memory_order_relaxed);
        return Status::DeadlineExceeded(
            "lock wait abandoned: query deadline exceeded");
      }
      return Status::FailedPrecondition("lock timeout (possible deadlock)");
    }
    cv_.wait_until(lock,
                   qctx != nullptr ? std::min(deadline, now + kCancelPoll)
                                   : deadline);
  }
}

bool LockManager::IsLockedByOther(uint64_t txn_id, uint64_t resource) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = owner_.find(resource);
  return it != owner_.end() && it->second != txn_id;
}

void LockManager::ReleaseAll(uint64_t txn_id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = held_.find(txn_id);
    if (it == held_.end()) return;
    for (uint64_t resource : it->second) owner_.erase(resource);
    held_.erase(it);
  }
  cv_.notify_all();
}

void LockManager::Clear() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    owner_.clear();
    held_.clear();
  }
  cv_.notify_all();
}

size_t LockManager::HeldCount(uint64_t txn_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = held_.find(txn_id);
  return it == held_.end() ? 0 : it->second.size();
}

size_t LockManager::total_locked() const {
  std::lock_guard<std::mutex> lock(mu_);
  return owner_.size();
}

}  // namespace aedb::storage
