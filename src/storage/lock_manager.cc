#include "storage/lock_manager.h"

namespace aedb::storage {

Status LockManager::Acquire(uint64_t txn_id, uint64_t resource,
                            std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    auto it = owner_.find(resource);
    if (it == owner_.end()) {
      owner_[resource] = txn_id;
      held_[txn_id].insert(resource);
      return Status::OK();
    }
    if (it->second == txn_id) return Status::OK();  // re-entrant
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      // One more try in case of a wakeup race at the deadline.
      auto it2 = owner_.find(resource);
      if (it2 == owner_.end()) {
        owner_[resource] = txn_id;
        held_[txn_id].insert(resource);
        return Status::OK();
      }
      if (it2->second == txn_id) return Status::OK();
      return Status::FailedPrecondition("lock timeout (possible deadlock)");
    }
  }
}

bool LockManager::IsLockedByOther(uint64_t txn_id, uint64_t resource) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = owner_.find(resource);
  return it != owner_.end() && it->second != txn_id;
}

void LockManager::ReleaseAll(uint64_t txn_id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = held_.find(txn_id);
    if (it == held_.end()) return;
    for (uint64_t resource : it->second) owner_.erase(resource);
    held_.erase(it);
  }
  cv_.notify_all();
}

void LockManager::Clear() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    owner_.clear();
    held_.clear();
  }
  cv_.notify_all();
}

size_t LockManager::HeldCount(uint64_t txn_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = held_.find(txn_id);
  return it == held_.end() ? 0 : it->second.size();
}

size_t LockManager::total_locked() const {
  std::lock_guard<std::mutex> lock(mu_);
  return owner_.size();
}

}  // namespace aedb::storage
