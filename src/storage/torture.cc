#include "storage/torture.h"

#include <map>
#include <set>
#include <sstream>
#include <utility>

namespace aedb::storage {

namespace {

/// The ground truth a crash at a given log prefix must recover to: state is
/// exactly the committed transactions' operations applied in LSN order.
struct ExpectedState {
  // (table_id, encoded rid) -> row image
  std::map<std::pair<uint32_t, uint64_t>, Bytes> rows;
  // index_id -> (key, encoded rid) -> entry count (non-unique trees may hold
  // duplicates of the same pair)
  std::map<uint32_t, std::map<std::pair<Bytes, uint64_t>, uint64_t>> indexes;
};

ExpectedState ComputeExpected(const std::vector<LogRecord>& log) {
  std::set<uint64_t> committed;
  for (const LogRecord& rec : log) {
    if (rec.type == LogRecordType::kCommit) committed.insert(rec.txn_id);
  }
  ExpectedState out;
  for (const LogRecord& rec : log) {
    if (!committed.count(rec.txn_id)) continue;
    switch (rec.type) {
      case LogRecordType::kHeapInsert:
        out.rows[{rec.object_id, rec.rid.Encode()}] = rec.payload1;
        break;
      case LogRecordType::kHeapDelete:
        out.rows.erase({rec.object_id, rec.rid.Encode()});
        break;
      case LogRecordType::kIndexInsert:
        ++out.indexes[rec.object_id][{rec.payload1, rec.rid.Encode()}];
        break;
      case LogRecordType::kIndexDelete: {
        auto& entries = out.indexes[rec.object_id];
        auto it = entries.find({rec.payload1, rec.rid.Encode()});
        if (it != entries.end() && --it->second == 0) entries.erase(it);
        break;
      }
      default:
        break;
    }
  }
  return out;
}

std::string CutName(size_t cut, bool torn) {
  std::ostringstream os;
  os << (torn ? "torn cut @" : "cut @") << cut;
  return os.str();
}

/// Builds a fresh engine, feeds it the first `cut` bytes of the durable log
/// image, recovers, and checks the committed-prefix expectation. OK on match.
Status VerifyCut(const EngineFactory& factory, Slice image, size_t cut,
                 bool torn) {
  const std::string where = CutName(cut, torn);
  std::unique_ptr<StorageEngine> engine = factory();
  if (engine == nullptr) return Status::Internal("engine factory returned null");

  WalLoadResult loaded = engine->wal().LoadImage(image.subslice(0, cut));
  if (torn && !loaded.torn_tail) {
    return Status::Internal(where + ": mid-frame cut was not detected as torn");
  }
  auto recovered = engine->Recover();
  if (!recovered.ok()) {
    return Status::Internal(where + ": recovery failed: " +
                            recovered.status().ToString());
  }

  ExpectedState expected = ComputeExpected(loaded.records);

  // --- heap: every committed row present byte-for-byte at its exact RID,
  // nothing else alive.
  uint64_t expected_live_total = expected.rows.size();
  uint64_t actual_live_total = 0;
  for (uint32_t table_id : engine->TableIds()) {
    HeapTable* heap = engine->table(table_id);
    Status mismatch = Status::OK();
    uint64_t seen = 0;
    AEDB_RETURN_IF_ERROR(heap->Scan([&](const Rid& rid, Slice row) {
      ++seen;
      auto it = expected.rows.find({table_id, rid.Encode()});
      if (it == expected.rows.end()) {
        mismatch = Status::Corruption(
            where + ": uncommitted/ghost row survived in table " +
            std::to_string(table_id));
        return false;
      }
      if (Slice(it->second) != row) {
        mismatch = Status::Corruption(where + ": row bytes diverge in table " +
                                      std::to_string(table_id));
        return false;
      }
      return true;
    }));
    AEDB_RETURN_IF_ERROR(mismatch);
    if (heap->live_rows() != seen) {
      return Status::Corruption(where + ": live_rows() bookkeeping diverges");
    }
    actual_live_total += seen;
  }
  if (actual_live_total != expected_live_total) {
    return Status::Corruption(
        where + ": committed rows lost: expected " +
        std::to_string(expected_live_total) + " live rows, recovered " +
        std::to_string(actual_live_total));
  }

  // --- indexes: entries equal committed inserts minus committed deletes.
  for (uint32_t index_id : engine->IndexIds()) {
    BTree* tree = engine->index_tree(index_id);
    std::map<std::pair<Bytes, uint64_t>, uint64_t> actual;
    for (BTree::Iterator it = tree->Begin(); it.Valid(); it.Next()) {
      Bytes key_copy;
      AEDB_ASSIGN_OR_RETURN(key_copy, it.key());
      ++actual[{std::move(key_copy), it.rid().Encode()}];
    }
    auto want = expected.indexes.find(index_id);
    const std::map<std::pair<Bytes, uint64_t>, uint64_t> empty;
    const auto& want_entries = want == expected.indexes.end() ? empty
                                                              : want->second;
    if (actual != want_entries) {
      return Status::Corruption(
          where + ": index " + std::to_string(index_id) + " diverges: " +
          std::to_string(actual.size()) + " distinct entries vs expected " +
          std::to_string(want_entries.size()));
    }
    uint64_t total = 0;
    for (const auto& [entry, count] : want_entries) total += count;
    if (tree->size() != total) {
      return Status::Corruption(where + ": index size() bookkeeping diverges");
    }
  }
  return Status::OK();
}

}  // namespace

std::string TortureReport::Summary() const {
  std::ostringstream os;
  os << crash_points << " crash points + " << torn_points
     << " torn points, " << failures << " failures";
  for (const std::string& m : messages) os << "\n  " << m;
  return os.str();
}

Result<TortureReport> RunWalCrashTorture(const EngineFactory& factory,
                                         const TortureWorkload& workload,
                                         const TortureOptions& options) {
  std::unique_ptr<StorageEngine> live = factory();
  if (live == nullptr) return Status::Internal("engine factory returned null");
  AEDB_RETURN_IF_ERROR(workload(live.get()));

  const Bytes image = live->wal().RawBytes();
  const WalLoadResult parsed = Wal::ParseImage(image);
  if (parsed.torn_tail) {
    return Status::InvalidArgument(
        "workload left a torn log tail; torture needs a clean image to cut");
  }

  TortureReport report;
  auto record_failure = [&](const Status& st) {
    ++report.failures;
    if (report.messages.size() < options.max_messages) {
      report.messages.push_back(st.ToString());
    }
  };

  // Record-boundary cuts: before the first record, after each record.
  size_t prev_end = 0;
  std::vector<size_t> boundaries;
  boundaries.push_back(0);
  boundaries.insert(boundaries.end(), parsed.frame_ends.begin(),
                    parsed.frame_ends.end());
  for (size_t cut : boundaries) {
    ++report.crash_points;
    Status st = VerifyCut(factory, image, cut, /*torn=*/false);
    if (!st.ok()) record_failure(st);
  }

  // Torn cuts: the crash lands mid-frame; the tail must vanish cleanly and
  // recovery must equal the previous boundary.
  if (options.torn_midpoints) {
    prev_end = 0;
    for (size_t end : parsed.frame_ends) {
      size_t mid = prev_end + (end - prev_end) / 2;
      if (mid > prev_end && mid < end) {
        ++report.torn_points;
        Status st = VerifyCut(factory, image, mid, /*torn=*/true);
        if (!st.ok()) record_failure(st);
      }
      prev_end = end;
    }
  }
  return report;
}

}  // namespace aedb::storage
