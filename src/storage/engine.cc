#include "storage/engine.h"

#include <algorithm>

#include "fault/fault.h"

namespace aedb::storage {

StorageEngine::StorageEngine(EngineOptions options) : options_(options) {
  PageStore* store = options_.page_store;
  if (store == nullptr) {
    owned_store_ = std::make_unique<MemPageStore>();
    store = owned_store_.get();
  }
  pool_ = std::make_unique<BufferPool>(store, options_.pool_pages);
  if (options_.flush_interval_ms > 0) {
    pool_->StartFlusher(options_.flush_interval_ms);
  }
  wal_.set_group_commit_window_us(options_.group_commit_window_us);
}

Status StorageEngine::CreateTable(uint32_t table_id) {
  std::lock_guard<std::mutex> lock(meta_mu_);
  auto state = std::make_unique<TableState>();
  state->heap = std::make_unique<HeapTable>(pool_.get());
  auto [it, inserted] = tables_.emplace(table_id, std::move(state));
  (void)it;
  if (!inserted) return Status::AlreadyExists("table id exists");
  return Status::OK();
}

Status StorageEngine::CreateIndex(uint32_t index_id, uint32_t table_id,
                                  std::unique_ptr<Comparator> comparator,
                                  bool unique) {
  std::lock_guard<std::mutex> lock(meta_mu_);
  if (tables_.count(table_id) == 0) return Status::NotFound("no such table");
  if (indexes_.count(index_id) > 0) return Status::AlreadyExists("index id exists");
  auto state = std::make_unique<IndexState>();
  state->table_id = table_id;
  state->unique = unique;
  state->comparator = std::move(comparator);
  state->tree =
      std::make_unique<BTree>(state->comparator.get(), unique, pool_.get());
  indexes_.emplace(index_id, std::move(state));
  return Status::OK();
}

Status StorageEngine::DropIndex(uint32_t index_id) {
  std::lock_guard<std::mutex> lock(meta_mu_);
  if (indexes_.erase(index_id) == 0) return Status::NotFound("no such index");
  return Status::OK();
}

HeapTable* StorageEngine::table(uint32_t table_id) {
  std::lock_guard<std::mutex> lock(meta_mu_);
  auto it = tables_.find(table_id);
  return it == tables_.end() ? nullptr : it->second->heap.get();
}

BTree* StorageEngine::index_tree(uint32_t index_id) {
  std::lock_guard<std::mutex> lock(meta_mu_);
  auto it = indexes_.find(index_id);
  return it == indexes_.end() ? nullptr : it->second->tree.get();
}

std::vector<uint32_t> StorageEngine::TableIds() const {
  std::lock_guard<std::mutex> lock(meta_mu_);
  std::vector<uint32_t> out;
  for (const auto& [id, t] : tables_) out.push_back(id);
  return out;
}

std::vector<uint32_t> StorageEngine::IndexIds() const {
  std::lock_guard<std::mutex> lock(meta_mu_);
  std::vector<uint32_t> out;
  for (const auto& [id, idx] : indexes_) out.push_back(id);
  return out;
}

const Comparator* StorageEngine::index_comparator(uint32_t index_id) const {
  const IndexState* index = FindIndexConst(index_id);
  return index == nullptr ? nullptr : index->comparator.get();
}

const StorageEngine::IndexState* StorageEngine::FindIndexConst(
    uint32_t index_id) const {
  std::lock_guard<std::mutex> lock(meta_mu_);
  auto it = indexes_.find(index_id);
  return it == indexes_.end() ? nullptr : it->second.get();
}

Status StorageEngine::CheckIndexUsable(uint32_t index_id) const {
  const IndexState* index = FindIndexConst(index_id);
  if (index == nullptr) return Status::NotFound("no such index");
  if (index->invalid) {
    return Status::FailedPrecondition("index is invalid (was invalidated "
                                      "during recovery); rebuild it");
  }
  if (index->rebuild_pending) {
    return Status::FailedPrecondition(
        "index awaits recovery: enclave keys missing");
  }
  return Status::OK();
}

bool StorageEngine::IndexInvalid(uint32_t index_id) const {
  const IndexState* index = FindIndexConst(index_id);
  return index != nullptr && index->invalid;
}

Result<StorageEngine::TableState*> StorageEngine::FindTable(uint32_t table_id) {
  std::lock_guard<std::mutex> lock(meta_mu_);
  auto it = tables_.find(table_id);
  if (it == tables_.end()) return Status::NotFound("no such table");
  return it->second.get();
}

Result<StorageEngine::IndexState*> StorageEngine::FindIndex(uint32_t index_id) {
  std::lock_guard<std::mutex> lock(meta_mu_);
  auto it = indexes_.find(index_id);
  if (it == indexes_.end()) return Status::NotFound("no such index");
  return it->second.get();
}

// ---------------------------------------------------------------------------
// Transactions

StorageEngine::Finalizer::~Finalizer() {
  std::lock_guard<std::mutex> lock(engine->meta_mu_);
  --engine->finalizing_;
  engine->meta_cv_.notify_all();
}

uint64_t StorageEngine::Begin() {
  uint64_t id;
  {
    std::unique_lock<std::mutex> lock(meta_mu_);
    // A checkpoint capture holds the engine quiescent; new transactions wait
    // out the (bounded) capture instead of failing.
    meta_cv_.wait(lock, [this] { return !checkpoint_pending_; });
    id = next_txn_id_++;
    active_.emplace(id, ActiveTxn{});
  }
  LogRecord rec;
  rec.txn_id = id;
  rec.type = LogRecordType::kBegin;
  // A failed begin-record append is harmless: recovery derives transaction
  // existence from the op records, and this txn's first op will surface the
  // same injected fault to the caller.
  (void)wal_.Append(rec);
  return id;
}

Status StorageEngine::Commit(uint64_t txn_id) {
  std::vector<LogRecord> ops;
  {
    std::lock_guard<std::mutex> lock(meta_mu_);
    auto it = active_.find(txn_id);
    if (it == active_.end()) return Status::NotFound("unknown txn");
    if (it->second.prepared) {
      // A prepared txn belongs to a 2PC coordinator; a plain Commit would
      // bypass the decision protocol.
      return Status::FailedPrecondition("txn is prepared; use CommitPrepared");
    }
    ops = std::move(it->second.ops);
    active_.erase(it);
    // Between this erase and the commit record becoming durable the txn is
    // invisible to active_ but its outcome is still open; finalizing_ keeps
    // checkpoints from capturing that window.
    ++finalizing_;
  }
  Finalizer finalizer{this};
  // WAL rule: append the commit record, THEN fsync — the one Sync makes the
  // data records and the commit record durable together, so an acked commit
  // survives power loss, not just process death (a record sitting in the OS
  // page cache outlives kill -9 but not the machine). A failure at either
  // step means the commit never happened — undo the in-memory effects so
  // runtime state matches what recovery would rebuild. If the append landed
  // but the fsync failed, the log holds kCommit followed by the abort's
  // compensation records and kAbort: redo replays the txn to net zero, so
  // recovery agrees with the TransactionAborted ack either way.
  LogRecord rec;
  rec.txn_id = txn_id;
  rec.type = LogRecordType::kCommit;
  // SyncUpTo is the group-commit barrier: one leader's fsync covers every
  // concurrent committer whose record is already appended, but each ack
  // still waits for a covering sync — the durability contract is unchanged.
  auto appended = wal_.Append(rec);
  Status durable = appended.status();
  if (durable.ok()) durable = wal_.SyncUpTo(*appended);
  if (!durable.ok()) {
    {
      std::lock_guard<std::mutex> lock(meta_mu_);
      active_.emplace(txn_id, ActiveTxn{std::move(ops)});
    }
    (void)Abort(txn_id);
    return Status::TransactionAborted("commit not durable: " +
                                      durable.message());
  }
  locks_.ReleaseAll(txn_id);
  return Status::OK();
}

Status StorageEngine::Prepare(uint64_t txn_id, uint64_t gtid) {
  {
    std::lock_guard<std::mutex> lock(meta_mu_);
    auto it = active_.find(txn_id);
    if (it == active_.end()) return Status::NotFound("unknown txn");
    if (it->second.prepared) {
      return Status::FailedPrecondition("txn already prepared");
    }
  }
  // Same WAL rule as Commit: append then fsync, so the data records and the
  // vote become durable together. After OK every effect of this txn survives
  // a crash and CommitPrepared is guaranteed to be able to finish it.
  LogRecord rec;
  rec.txn_id = txn_id;
  rec.type = LogRecordType::kPrepare;
  PutU64(&rec.payload1, gtid);
  auto appended = wal_.Append(rec);
  Status durable = appended.status();
  if (durable.ok()) durable = wal_.SyncUpTo(*appended);
  if (!durable.ok()) {
    // The vote never became durable: this participant votes NO. Roll the txn
    // back so runtime state matches what recovery would rebuild (a kPrepare
    // that landed without its fsync is followed by the abort's CLRs+kAbort,
    // which recovery treats as a settled loser).
    (void)Abort(txn_id);
    return Status::TransactionAborted("prepare not durable: " +
                                      durable.message());
  }
  std::lock_guard<std::mutex> lock(meta_mu_);
  auto it = active_.find(txn_id);
  if (it == active_.end()) {
    return Status::NotFound("txn vanished during prepare");
  }
  it->second.prepared = true;
  it->second.gtid = gtid;
  return Status::OK();
}

Status StorageEngine::CommitPrepared(uint64_t txn_id) {
  std::vector<LogRecord> ops;
  uint64_t gtid = 0;
  {
    std::lock_guard<std::mutex> lock(meta_mu_);
    auto it = active_.find(txn_id);
    if (it == active_.end()) return Status::NotFound("unknown txn");
    if (!it->second.prepared) {
      return Status::FailedPrecondition("txn not prepared");
    }
    ops = std::move(it->second.ops);
    gtid = it->second.gtid;
    active_.erase(it);
    ++finalizing_;
  }
  Finalizer finalizer{this};
  LogRecord rec;
  rec.txn_id = txn_id;
  rec.type = LogRecordType::kCommit;
  auto appended = wal_.Append(rec);
  Status durable = appended.status();
  if (durable.ok()) durable = wal_.SyncUpTo(*appended);
  if (!durable.ok()) {
    // The coordinator's COMMIT decision is already durable — aborting here
    // would break atomicity with the other participants. Re-park the txn as
    // prepared (locks are still held) so a retry or the next recovery can
    // finish the commit, and surface the durability error as-is.
    std::lock_guard<std::mutex> lock(meta_mu_);
    ActiveTxn txn;
    txn.ops = std::move(ops);
    txn.prepared = true;
    txn.gtid = gtid;
    active_.emplace(txn_id, std::move(txn));
    return durable;
  }
  locks_.ReleaseAll(txn_id);
  return Status::OK();
}

std::vector<InDoubtTxn> StorageEngine::InDoubtTxns() const {
  std::lock_guard<std::mutex> lock(meta_mu_);
  std::vector<InDoubtTxn> out;
  for (const auto& [id, txn] : active_) {
    if (txn.prepared) out.push_back(InDoubtTxn{id, txn.gtid});
  }
  return out;
}

Status StorageEngine::UndoRecord(const LogRecord& rec) {
  // Every applied undo is logged as a compensation record (CLR) of the
  // opposite type under the same txn id, so the WAL replays history in the
  // exact order it happened. A txn whose kAbort made it to the log is fully
  // compensated in-log and needs no recovery-time undo; a crash mid-abort
  // leaves a loser whose [ops..., CLRs...] suffix self-cancels under reverse
  // replay.
  auto clr = [&](LogRecordType type) -> Status {
    LogRecord comp;
    comp.txn_id = rec.txn_id;
    comp.type = type;
    comp.object_id = rec.object_id;
    comp.rid = rec.rid;
    comp.payload1 = rec.payload1;
    return wal_.Append(comp).status();
  };
  switch (rec.type) {
    case LogRecordType::kHeapInsert: {
      TableState* t;
      AEDB_ASSIGN_OR_RETURN(t, FindTable(rec.object_id));
      std::lock_guard<std::mutex> latch(t->latch);
      AEDB_RETURN_IF_ERROR(t->heap->Delete(rec.rid));
      return clr(LogRecordType::kHeapDelete);
    }
    case LogRecordType::kHeapDelete: {
      TableState* t;
      AEDB_ASSIGN_OR_RETURN(t, FindTable(rec.object_id));
      std::lock_guard<std::mutex> latch(t->latch);
      AEDB_RETURN_IF_ERROR(t->heap->Resurrect(rec.rid));
      return clr(LogRecordType::kHeapResurrect);
    }
    case LogRecordType::kHeapResurrect: {
      // Undoing a replayed CLR (reverse replay of a crash-mid-abort loser).
      TableState* t;
      AEDB_ASSIGN_OR_RETURN(t, FindTable(rec.object_id));
      std::lock_guard<std::mutex> latch(t->latch);
      AEDB_RETURN_IF_ERROR(t->heap->Delete(rec.rid));
      return clr(LogRecordType::kHeapDelete);
    }
    case LogRecordType::kIndexInsert: {
      // Logical undo: navigate the tree and delete the entry (§4.5).
      IndexState* idx;
      AEDB_ASSIGN_OR_RETURN(idx, FindIndex(rec.object_id));
      std::lock_guard<std::mutex> latch(idx->latch);
      AEDB_RETURN_IF_ERROR(idx->tree->Delete(rec.payload1, rec.rid).status());
      return clr(LogRecordType::kIndexDelete);
    }
    case LogRecordType::kIndexDelete: {
      IndexState* idx;
      AEDB_ASSIGN_OR_RETURN(idx, FindIndex(rec.object_id));
      std::lock_guard<std::mutex> latch(idx->latch);
      AEDB_RETURN_IF_ERROR(idx->tree->Insert(rec.payload1, rec.rid).status());
      return clr(LogRecordType::kIndexInsert);
    }
    default:
      return Status::OK();
  }
}

size_t StorageEngine::TxnOpCount(uint64_t txn_id) const {
  std::lock_guard<std::mutex> lock(meta_mu_);
  auto it = active_.find(txn_id);
  return it == active_.end() ? 0 : it->second.ops.size();
}

Status StorageEngine::Abort(uint64_t txn_id) {
  std::vector<LogRecord> ops;
  {
    std::lock_guard<std::mutex> lock(meta_mu_);
    auto it = active_.find(txn_id);
    if (it == active_.end()) return Status::NotFound("unknown txn");
    ops = std::move(it->second.ops);
    active_.erase(it);
    ++finalizing_;  // undo in flight: block checkpoint capture until done
  }
  Finalizer finalizer{this};
  // The undo of one executor-level row update spans several records (index
  // delete, heap delete/insert, index insert). Readers collect candidates
  // under the tables' statement latches, so undo holds those same latches —
  // every touched table's, in id order — for the whole reverse pass;
  // otherwise a probe could land mid-undo and miss a row that logically
  // never stopped existing.
  std::vector<std::shared_mutex*> stmt_latches;
  {
    std::lock_guard<std::mutex> lock(meta_mu_);
    std::set<uint32_t> touched;
    for (const LogRecord& rec : ops) {
      switch (rec.type) {
        case LogRecordType::kHeapInsert:
        case LogRecordType::kHeapDelete:
        case LogRecordType::kHeapResurrect:
          touched.insert(rec.object_id);
          break;
        case LogRecordType::kIndexInsert:
        case LogRecordType::kIndexDelete: {
          auto it = indexes_.find(rec.object_id);
          if (it != indexes_.end()) touched.insert(it->second->table_id);
          break;
        }
        default:
          break;
      }
    }
    for (uint32_t tid : touched) {
      auto it = tables_.find(tid);
      if (it != tables_.end()) stmt_latches.push_back(&it->second->stmt_latch);
    }
  }
  std::vector<std::unique_lock<std::shared_mutex>> stmt_held;
  stmt_held.reserve(stmt_latches.size());
  for (std::shared_mutex* m : stmt_latches) stmt_held.emplace_back(*m);
  DeferredTxn deferred;
  deferred.txn_id = txn_id;
  for (auto it = ops.rbegin(); it != ops.rend(); ++it) {
    Status st = UndoRecord(*it);
    if (st.IsKeyNotInEnclave()) {
      deferred.pending.push_back(*it);
      deferred.pending_indexes.insert(it->object_id);
      continue;
    }
    // NotFound from index undo of a never-applied op is benign.
    if (!st.ok() && !st.IsNotFound()) return st;
  }
  if (!deferred.pending.empty()) {
    std::lock_guard<std::mutex> lock(meta_mu_);
    for (uint32_t idx_id : deferred.pending_indexes) {
      auto it = indexes_.find(idx_id);
      if (it != indexes_.end()) it->second->rebuild_pending = true;
    }
    deferred_.push_back(std::move(deferred));
    if (options_.constant_time_recovery) locks_.ReleaseAll(txn_id);
    // Without CTR the deferred transaction keeps its locks (§4.5).
    return Status::OK();
  }
  LogRecord rec;
  rec.txn_id = txn_id;
  rec.type = LogRecordType::kAbort;
  // Best effort: a missing abort record is fine, recovery treats the txn as a
  // loser either way.
  (void)wal_.Append(rec);
  locks_.ReleaseAll(txn_id);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Logged mutations

Result<Rid> StorageEngine::HeapInsert(uint64_t txn_id, uint32_t table_id,
                                      Slice record) {
  TableState* t;
  AEDB_ASSIGN_OR_RETURN(t, FindTable(table_id));
  LogRecord rec;
  rec.txn_id = txn_id;
  rec.type = LogRecordType::kHeapInsert;
  rec.object_id = table_id;
  rec.payload1 = record.ToBytes();
  Rid rid;
  {
    // The latch spans apply + log so replay order matches apply order and
    // redo reproduces RIDs exactly (checked during recovery).
    std::lock_guard<std::mutex> latch(t->latch);
    AEDB_ASSIGN_OR_RETURN(rid, t->heap->Insert(record));
    rec.rid = rid;
    Status logged = wal_.Append(rec).status();
    if (!logged.ok()) {
      // Not logged => never happened: undo the apply before reporting.
      (void)t->heap->Delete(rid);
      return logged;
    }
  }
  std::lock_guard<std::mutex> lock(meta_mu_);
  auto it = active_.find(txn_id);
  if (it == active_.end()) return Status::NotFound("unknown txn");
  it->second.ops.push_back(std::move(rec));
  return rid;
}

Status StorageEngine::HeapDelete(uint64_t txn_id, uint32_t table_id,
                                 const Rid& rid) {
  TableState* t;
  AEDB_ASSIGN_OR_RETURN(t, FindTable(table_id));
  LogRecord rec;
  rec.txn_id = txn_id;
  rec.type = LogRecordType::kHeapDelete;
  rec.object_id = table_id;
  rec.rid = rid;
  {
    std::lock_guard<std::mutex> latch(t->latch);
    Bytes old;
    AEDB_ASSIGN_OR_RETURN(old, t->heap->Read(rid));
    rec.payload1 = std::move(old);
    AEDB_RETURN_IF_ERROR(t->heap->Delete(rid));
    Status logged = wal_.Append(rec).status();
    if (!logged.ok()) {
      (void)t->heap->Resurrect(rid);
      return logged;
    }
  }
  std::lock_guard<std::mutex> lock(meta_mu_);
  auto it = active_.find(txn_id);
  if (it == active_.end()) return Status::NotFound("unknown txn");
  it->second.ops.push_back(std::move(rec));
  return Status::OK();
}

Status StorageEngine::IndexInsert(uint64_t txn_id, uint32_t index_id,
                                  const Bytes& key, const Rid& rid) {
  AEDB_RETURN_IF_ERROR(CheckIndexUsable(index_id));
  IndexState* idx;
  AEDB_ASSIGN_OR_RETURN(idx, FindIndex(index_id));
  LogRecord rec;
  rec.txn_id = txn_id;
  rec.type = LogRecordType::kIndexInsert;
  rec.object_id = index_id;
  rec.rid = rid;
  rec.payload1 = key;
  {
    std::lock_guard<std::mutex> latch(idx->latch);
    bool inserted;
    AEDB_ASSIGN_OR_RETURN(inserted, idx->tree->Insert(key, rid));
    if (!inserted) {
      return Status::AlreadyExists("unique index key violation");
    }
    Status logged = wal_.Append(rec).status();
    if (!logged.ok()) {
      (void)idx->tree->Delete(key, rid);
      return logged;
    }
  }
  std::lock_guard<std::mutex> lock(meta_mu_);
  auto it = active_.find(txn_id);
  if (it == active_.end()) return Status::NotFound("unknown txn");
  it->second.ops.push_back(std::move(rec));
  return Status::OK();
}

Status StorageEngine::IndexDelete(uint64_t txn_id, uint32_t index_id,
                                  const Bytes& key, const Rid& rid) {
  AEDB_RETURN_IF_ERROR(CheckIndexUsable(index_id));
  IndexState* idx;
  AEDB_ASSIGN_OR_RETURN(idx, FindIndex(index_id));
  LogRecord rec;
  rec.txn_id = txn_id;
  rec.type = LogRecordType::kIndexDelete;
  rec.object_id = index_id;
  rec.rid = rid;
  rec.payload1 = key;
  {
    std::lock_guard<std::mutex> latch(idx->latch);
    bool removed;
    AEDB_ASSIGN_OR_RETURN(removed, idx->tree->Delete(key, rid));
    if (!removed) return Status::NotFound("index entry not found");
    Status logged = wal_.Append(rec).status();
    if (!logged.ok()) {
      (void)idx->tree->Insert(key, rid);
      return logged;
    }
  }
  std::lock_guard<std::mutex> lock(meta_mu_);
  auto it = active_.find(txn_id);
  if (it == active_.end()) return Status::NotFound("unknown txn");
  it->second.ops.push_back(std::move(rec));
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Locking

Status StorageEngine::LockRow(uint64_t txn_id, uint32_t table_id,
                              const Rid& rid) {
  return locks_.Acquire(txn_id, RowResource(table_id, rid.Encode()),
                        options_.lock_timeout, QueryContext::Current());
}

Status StorageEngine::LockTable(uint64_t txn_id, uint32_t table_id) {
  return locks_.Acquire(txn_id, TableResource(table_id), options_.lock_timeout,
                        QueryContext::Current());
}

bool StorageEngine::RowLockedByOther(uint64_t txn_id, uint32_t table_id,
                                     const Rid& rid) const {
  return locks_.IsLockedByOther(txn_id, RowResource(table_id, rid.Encode()));
}

std::shared_mutex* StorageEngine::StatementLatch(uint32_t table_id) {
  auto found = FindTable(table_id);
  if (!found.ok()) return nullptr;
  return &(*found)->stmt_latch;
}

// ---------------------------------------------------------------------------
// Checkpointing

Result<std::shared_ptr<const CheckpointImage>> StorageEngine::CaptureCheckpoint(
    std::chrono::milliseconds wait) {
  std::unique_lock<std::mutex> lock(meta_mu_);
  if (checkpoint_pending_) {
    return Status::FailedPrecondition("checkpoint already in progress");
  }
  checkpoint_pending_ = true;  // park new Begin() calls while we quiesce
  bool quiet = meta_cv_.wait_for(
      lock, wait, [this] { return active_.empty() && finalizing_ == 0; });
  Status refused;
  if (!quiet) {
    refused =
        Status::FailedPrecondition("checkpoint: transactions still in flight");
  } else if (!deferred_.empty()) {
    // Deferred undo debt references pre-checkpoint records; a checkpoint here
    // would bake loser effects whose undo info the truncation then discards.
    refused = Status::FailedPrecondition(
        "checkpoint blocked: deferred transactions pin the log (§4.5)");
  } else {
    for (const auto& [id, idx] : indexes_) {
      if (idx->rebuild_pending) {
        refused = Status::FailedPrecondition(
            "checkpoint blocked: index rebuild pending (enclave keys missing)");
        break;
      }
    }
  }
  if (!refused.ok()) {
    checkpoint_pending_ = false;
    meta_cv_.notify_all();
    return refused;
  }

  // Fold the dirty-page flush into the quiescent window: no transaction can
  // re-dirty a page while we hold the engine parked, so after FlushAll the
  // page store is byte-identical to the captured image. A flush failure
  // refuses the checkpoint rather than publishing one that claims a clean
  // store.
  auto fail = [&](Status st) -> Status {
    checkpoint_pending_ = false;
    meta_cv_.notify_all();
    return st;
  };
  {
    Status flushed = pool_->FlushAll();
    if (!flushed.ok()) {
      return fail(Status::FailedPrecondition("checkpoint: dirty page flush: " +
                                             flushed.message()));
    }
  }

  auto img = std::make_shared<CheckpointImage>();
  img->checkpoint_lsn = wal_.next_lsn();
  img->next_txn_id = next_txn_id_;
  for (const auto& [id, t] : tables_) {
    CheckpointImage::TableImage ti;
    ti.table_id = id;
    Status serialized = t->heap->SerializeTo(&ti.heap);
    if (!serialized.ok()) return fail(serialized);
    img->tables.push_back(std::move(ti));
  }
  for (const auto& [id, idx] : indexes_) {
    CheckpointImage::IndexImage ii;
    ii.index_id = id;
    ii.invalid = idx->invalid;
    // Walking the tree needs no comparator calls, so this works for encrypted
    // range indexes regardless of what keys the enclave currently holds.
    for (BTree::Iterator it = idx->tree->Begin(); it.Valid(); it.Next()) {
      auto key = it.key();
      if (!key.ok()) return fail(key.status());
      ii.entries.emplace_back(std::move(*key), it.rid());
    }
    img->indexes.push_back(std::move(ii));
  }
  checkpoint_pending_ = false;
  meta_cv_.notify_all();
  return std::shared_ptr<const CheckpointImage>(std::move(img));
}

void StorageEngine::SetCheckpointBase(
    std::shared_ptr<const CheckpointImage> base) {
  std::lock_guard<std::mutex> lock(meta_mu_);
  checkpoint_base_ = std::move(base);
}

std::shared_ptr<const CheckpointImage> StorageEngine::checkpoint_base() const {
  std::lock_guard<std::mutex> lock(meta_mu_);
  return checkpoint_base_;
}

// ---------------------------------------------------------------------------
// Recovery

Result<RecoveryResult> StorageEngine::Recover() {
  std::shared_ptr<const CheckpointImage> base = checkpoint_base();
  const uint64_t horizon = base == nullptr ? 0 : base->checkpoint_lsn;

  std::vector<LogRecord> log = wal_.Snapshot();
  // Records below the horizon are baked into the checkpoint image. They are
  // present exactly when the crash landed between the checkpoint publish and
  // the log truncation; replaying them would double-apply.
  log.erase(std::remove_if(log.begin(), log.end(),
                           [&](const LogRecord& r) { return r.lsn < horizon; }),
            log.end());
  RecoveryResult result;
  result.from_checkpoint_lsn = horizon;
  result.log_tail_records = log.size();

  std::set<uint64_t> committed;
  std::set<uint64_t> aborted;
  std::set<uint64_t> seen;
  // Txns whose durable kPrepare has no decision record yet: 2PC in-doubt.
  // (A later kCommit/kAbort settles them like any other txn.)
  std::map<uint64_t, uint64_t> prepared_gtid;  // txn_id -> gtid
  for (const LogRecord& rec : log) {
    seen.insert(rec.txn_id);
    if (rec.type == LogRecordType::kCommit) committed.insert(rec.txn_id);
    // kAbort is only logged once an abort's undo fully applied — and every
    // undone op logged its compensation record — so redo alone restores the
    // txn to net zero; it needs no recovery-time undo.
    if (rec.type == LogRecordType::kAbort) aborted.insert(rec.txn_id);
    if (rec.type == LogRecordType::kPrepare) {
      size_t off = 0;
      uint64_t gtid = 0;
      auto parsed = GetU64(rec.payload1, &off);
      if (parsed.ok()) gtid = *parsed;
      prepared_gtid[rec.txn_id] = gtid;
    }
  }

  locks_.Clear();
  {
    std::lock_guard<std::mutex> lock(meta_mu_);
    active_.clear();
    deferred_.clear();
    for (auto& [id, t] : tables_) t->heap->Clear();
    for (auto& [id, idx] : indexes_) {
      idx->tree->Clear();
      idx->rebuild_pending = false;
    }
    if (base != nullptr) {
      for (const auto& ti : base->tables) {
        auto it = tables_.find(ti.table_id);
        if (it == tables_.end()) {
          return Status::Corruption("checkpoint references unknown table");
        }
        size_t off = 0;
        AEDB_RETURN_IF_ERROR(it->second->heap->RestoreFrom(ti.heap, &off));
        if (off != ti.heap.size()) {
          return Status::Corruption("heap checkpoint image has trailing bytes");
        }
      }
      for (const auto& ii : base->indexes) {
        auto it = indexes_.find(ii.index_id);
        if (it == indexes_.end()) continue;  // index dropped after capture
        it->second->invalid = it->second->invalid || ii.invalid;
        if (!it->second->invalid) {
          AEDB_RETURN_IF_ERROR(it->second->tree->LoadSortedEntries(ii.entries));
        }
      }
      next_txn_id_ = std::max(next_txn_id_, base->next_txn_id);
    }
    if (!seen.empty()) {
      next_txn_id_ = std::max(next_txn_id_, *seen.rbegin() + 1);
    }
  }
  // After a truncate-to-empty restart the reopened log restarts LSNs at 1;
  // records written below the horizon would then be filtered out on the NEXT
  // recovery. Keep LSNs monotonic across the checkpoint.
  wal_.EnsureNextLsn(horizon);

  // --- Redo phase: replay everything in LSN order (winners and losers,
  // mirroring physical redo of page images). An encrypted index whose
  // comparator cannot run (CEK not in enclave) flips to rebuild-pending.
  for (const LogRecord& rec : log) {
    AEDB_RETURN_IF_ERROR(AEDB_FAULT_POINT("recovery/replay"));
    switch (rec.type) {
      case LogRecordType::kHeapInsert: {
        // An unknown table is an orphan (DDL that never reached its journal
        // commit marker), not corruption: skip its records like index redo
        // skips dropped indexes, instead of failing Open() forever.
        auto found = FindTable(rec.object_id);
        if (!found.ok()) {
          ++result.orphaned_records_skipped;
          break;
        }
        TableState* t = *found;
        Rid rid;
        AEDB_ASSIGN_OR_RETURN(rid, t->heap->Insert(rec.payload1));
        if (!(rid == rec.rid)) {
          return Status::Corruption("redo produced a different RID");
        }
        ++result.redone;
        break;
      }
      case LogRecordType::kHeapDelete: {
        auto found = FindTable(rec.object_id);
        if (!found.ok()) {
          ++result.orphaned_records_skipped;
          break;
        }
        AEDB_RETURN_IF_ERROR((*found)->heap->Delete(rec.rid));
        ++result.redone;
        break;
      }
      case LogRecordType::kHeapResurrect: {
        // A logged compensation: some abort brought this slot back to life
        // at exactly this point of history.
        auto found = FindTable(rec.object_id);
        if (!found.ok()) {
          ++result.orphaned_records_skipped;
          break;
        }
        AEDB_RETURN_IF_ERROR((*found)->heap->Resurrect(rec.rid));
        ++result.redone;
        break;
      }
      case LogRecordType::kIndexInsert:
      case LogRecordType::kIndexDelete: {
        auto found = FindIndex(rec.object_id);
        if (!found.ok()) break;  // index dropped since
        IndexState* idx = *found;
        if (idx->invalid || idx->rebuild_pending) break;
        Status st;
        if (rec.type == LogRecordType::kIndexInsert) {
          st = idx->tree->Insert(rec.payload1, rec.rid).status();
        } else {
          st = idx->tree->Delete(rec.payload1, rec.rid).status();
        }
        if (st.IsKeyNotInEnclave()) {
          idx->rebuild_pending = true;
          idx->tree->Clear();
          break;
        }
        AEDB_RETURN_IF_ERROR(st);
        ++result.redone;
        break;
      }
      default:
        break;
    }
  }

  // --- Undo phase: losers (no commit record) are rolled back in reverse.
  // Heap undo is always possible. Index undo on a rebuild-pending index is
  // covered by the eventual rebuild, but the transaction becomes deferred —
  // holding its row locks unless constant-time recovery is on (§4.5).
  // In-doubt txns (durable kPrepare, no decision) are NOT losers: their vote
  // promised the coordinator they can still commit. They are excluded from
  // undo and re-registered below as active+prepared with row locks re-held.
  std::map<uint64_t, std::vector<const LogRecord*>> in_doubt_ops;
  std::map<uint64_t, std::vector<const LogRecord*>> loser_ops;
  for (const LogRecord& rec : log) {
    if (committed.count(rec.txn_id) || aborted.count(rec.txn_id)) continue;
    if (rec.type == LogRecordType::kBegin || rec.type == LogRecordType::kAbort ||
        rec.type == LogRecordType::kCommit ||
        rec.type == LogRecordType::kPrepare) {
      continue;
    }
    if (prepared_gtid.count(rec.txn_id)) {
      in_doubt_ops[rec.txn_id].push_back(&rec);
      continue;
    }
    // A crash mid-abort leaves [ops..., CLRs...] with no kAbort: reverse
    // replay first re-applies the original ops (undoing each CLR), then
    // undoes the ops themselves — self-canceling to net zero.
    loser_ops[rec.txn_id].push_back(&rec);
  }
  for (auto& [txn_id, ops] : loser_ops) {
    DeferredTxn deferred;
    deferred.txn_id = txn_id;
    std::set<uint64_t> touched_rows;
    for (auto it = ops.rbegin(); it != ops.rend(); ++it) {
      const LogRecord& rec = **it;
      if (rec.type == LogRecordType::kHeapInsert ||
          rec.type == LogRecordType::kHeapDelete ||
          rec.type == LogRecordType::kHeapResurrect) {
        touched_rows.insert(RowResource(rec.object_id, rec.rid.Encode()));
      }
      if (rec.type == LogRecordType::kIndexInsert ||
          rec.type == LogRecordType::kIndexDelete) {
        auto found = FindIndex(rec.object_id);
        if (!found.ok()) continue;
        if ((*found)->invalid) continue;
        if ((*found)->rebuild_pending) {
          deferred.pending.push_back(rec);
          deferred.pending_indexes.insert(rec.object_id);
          continue;
        }
      }
      Status st = UndoRecord(rec);
      if (st.IsKeyNotInEnclave()) {
        deferred.pending.push_back(rec);
        deferred.pending_indexes.insert(rec.object_id);
        continue;
      }
      if (!st.ok() && !st.IsNotFound()) return st;
      ++result.undone;
    }
    if (!deferred.pending.empty()) {
      result.deferred_txns.push_back(txn_id);
      if (!options_.constant_time_recovery) {
        for (uint64_t resource : touched_rows) {
          AEDB_RETURN_IF_ERROR(
              locks_.Acquire(txn_id, resource, std::chrono::milliseconds(0)));
        }
      }
      std::lock_guard<std::mutex> lock(meta_mu_);
      deferred_.push_back(std::move(deferred));
    } else {
      LogRecord abort;
      abort.txn_id = txn_id;
      abort.type = LogRecordType::kAbort;
      (void)wal_.Append(abort);
    }
  }

  // --- In-doubt phase: re-register each prepared-undecided txn as active and
  // prepared, with its op list rebuilt from the log tail (a prepared txn pins
  // checkpoints, so every one of its records is post-horizon) and its row
  // locks re-acquired — exactly the state the coordinator's decision needs to
  // finish via CommitPrepared or Abort.
  for (const auto& [txn_id, gtid] : prepared_gtid) {
    if (committed.count(txn_id) || aborted.count(txn_id)) continue;
    ActiveTxn txn;
    txn.prepared = true;
    txn.gtid = gtid;
    std::set<uint64_t> touched_rows;
    auto ops_it = in_doubt_ops.find(txn_id);
    if (ops_it != in_doubt_ops.end()) {
      for (const LogRecord* rec : ops_it->second) {
        if (rec->type == LogRecordType::kHeapInsert ||
            rec->type == LogRecordType::kHeapDelete ||
            rec->type == LogRecordType::kHeapResurrect) {
          touched_rows.insert(RowResource(rec->object_id, rec->rid.Encode()));
        }
        txn.ops.push_back(*rec);
      }
    }
    for (uint64_t resource : touched_rows) {
      AEDB_RETURN_IF_ERROR(
          locks_.Acquire(txn_id, resource, std::chrono::milliseconds(0)));
    }
    result.in_doubt.push_back(InDoubtTxn{txn_id, gtid});
    std::lock_guard<std::mutex> lock(meta_mu_);
    active_.emplace(txn_id, std::move(txn));
  }

  std::lock_guard<std::mutex> lock(meta_mu_);
  for (auto& [id, idx] : indexes_) {
    if (idx->rebuild_pending) result.rebuild_pending_indexes.push_back(id);
  }
  return result;
}

Status StorageEngine::RebuildIndexFromLog(IndexState* index, uint32_t index_id) {
  std::shared_ptr<const CheckpointImage> base = checkpoint_base();
  const uint64_t horizon = base == nullptr ? 0 : base->checkpoint_lsn;
  std::vector<LogRecord> log = wal_.Snapshot();
  std::set<uint64_t> committed;
  for (const LogRecord& rec : log) {
    if (rec.type == LogRecordType::kCommit) committed.insert(rec.txn_id);
  }
  index->tree->Clear();
  // Pre-horizon ops were truncated away; the checkpoint image carries the
  // index state they produced. Start from it and replay only the tail.
  if (base != nullptr) {
    for (const auto& ii : base->indexes) {
      if (ii.index_id != index_id) continue;
      AEDB_RETURN_IF_ERROR(index->tree->LoadSortedEntries(ii.entries));
      break;
    }
  }
  for (const LogRecord& rec : log) {
    if (rec.lsn < horizon) continue;  // baked into the checkpoint base
    if (rec.object_id != index_id) continue;
    if (!committed.count(rec.txn_id)) continue;  // losers excluded: net undo
    Status st;
    if (rec.type == LogRecordType::kIndexInsert) {
      st = index->tree->Insert(rec.payload1, rec.rid).status();
    } else if (rec.type == LogRecordType::kIndexDelete) {
      st = index->tree->Delete(rec.payload1, rec.rid).status();
    } else {
      continue;
    }
    if (!st.ok()) {
      index->tree->Clear();
      return st;
    }
  }
  return Status::OK();
}

void StorageEngine::FinishDeferred(const DeferredTxn& txn) {
  LogRecord abort;
  abort.txn_id = txn.txn_id;
  abort.type = LogRecordType::kAbort;
  (void)wal_.Append(abort);
  locks_.ReleaseAll(txn.txn_id);
}

Status StorageEngine::ResolveDeferred() {
  // Rebuild pending indexes first ("the version cleaner completes
  // successfully" once keys are present).
  std::vector<std::pair<uint32_t, IndexState*>> to_rebuild;
  {
    std::lock_guard<std::mutex> lock(meta_mu_);
    for (auto& [id, idx] : indexes_) {
      if (idx->rebuild_pending && !idx->invalid) {
        to_rebuild.emplace_back(id, idx.get());
      }
    }
  }
  for (auto& [id, idx] : to_rebuild) {
    Status st = RebuildIndexFromLog(idx, id);
    if (st.IsKeyNotInEnclave()) continue;  // keys still missing; stay pending
    AEDB_RETURN_IF_ERROR(st);
    idx->rebuild_pending = false;
  }

  // Retry each deferred transaction's remaining undo work.
  std::vector<DeferredTxn> still_deferred;
  std::vector<DeferredTxn> work;
  {
    std::lock_guard<std::mutex> lock(meta_mu_);
    work = std::move(deferred_);
    deferred_.clear();
  }
  for (DeferredTxn& txn : work) {
    std::vector<LogRecord> remaining;
    for (const LogRecord& rec : txn.pending) {
      auto found = FindIndex(rec.object_id);
      if (!found.ok() || (*found)->invalid) continue;  // debt dropped
      if ((*found)->rebuild_pending) {
        remaining.push_back(rec);  // still waiting on keys
        continue;
      }
      // Index healthy again. If it was rebuilt from committed ops the debt is
      // already settled; a direct undo would double-apply. Only runtime
      // deferrals (index never rebuilt) need the logical undo, and those are
      // exactly the ones whose entries are still present.
      Status st = UndoRecord(rec);
      if (st.IsKeyNotInEnclave()) {
        remaining.push_back(rec);
        continue;
      }
      if (!st.ok() && !st.IsNotFound()) return st;
    }
    if (remaining.empty()) {
      FinishDeferred(txn);
    } else {
      txn.pending = std::move(remaining);
      still_deferred.push_back(std::move(txn));
    }
  }
  std::lock_guard<std::mutex> lock(meta_mu_);
  for (DeferredTxn& txn : still_deferred) deferred_.push_back(std::move(txn));
  return Status::OK();
}

Status StorageEngine::InvalidateIndex(uint32_t index_id) {
  {
    std::lock_guard<std::mutex> lock(meta_mu_);
    auto it = indexes_.find(index_id);
    if (it == indexes_.end()) return Status::NotFound("no such index");
    it->second->invalid = true;
    it->second->rebuild_pending = false;
    it->second->tree->Clear();
  }
  // Dropping the index's recovery obligations may fully resolve some
  // deferred transactions (the §4.5 forced-resolution policy).
  return ResolveDeferred();
}

std::vector<uint64_t> StorageEngine::DeferredTxns() const {
  std::lock_guard<std::mutex> lock(meta_mu_);
  std::vector<uint64_t> out;
  for (const DeferredTxn& txn : deferred_) out.push_back(txn.txn_id);
  return out;
}

bool StorageEngine::HasDeferredTxns() const {
  std::lock_guard<std::mutex> lock(meta_mu_);
  return !deferred_.empty();
}

Status StorageEngine::CanTruncateLog() const {
  std::lock_guard<std::mutex> lock(meta_mu_);
  if (!deferred_.empty()) {
    return Status::FailedPrecondition(
        "log truncation blocked: deferred transactions pin the log (§4.5); "
        "supply enclave keys or invalidate the index");
  }
  if (!active_.empty()) {
    return Status::FailedPrecondition("active transactions pin the log");
  }
  return Status::OK();
}

Status StorageEngine::ScrubDeadRows(uint32_t table_id) {
  {
    std::lock_guard<std::mutex> lock(meta_mu_);
    if (!active_.empty() || !deferred_.empty()) {
      return Status::FailedPrecondition(
          "cannot scrub while transactions are active or deferred");
    }
  }
  TableState* t;
  AEDB_ASSIGN_OR_RETURN(t, FindTable(table_id));
  std::lock_guard<std::mutex> latch(t->latch);
  return t->heap->ScrubDead();
}

void StorageEngine::ForEachPageRaw(
    const std::function<void(uint32_t, Slice)>& fn) const {
  std::lock_guard<std::mutex> lock(meta_mu_);
  for (const auto& [id, t] : tables_) {
    for (size_t p = 0; p < t->heap->page_count(); ++p) {
      // A pin failure (pool exhausted) just skips the page; this is an
      // adversary-view helper, not a correctness path.
      (void)t->heap->WithPageRaw(p, [&](Slice page) { fn(id, page); });
    }
  }
}

}  // namespace aedb::storage
