#ifndef AEDB_STORAGE_BUFFER_POOL_H_
#define AEDB_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "storage/page.h"

namespace aedb::storage {

/// Identifies one 8 KiB page in the page store: (object, page number).
/// Objects are ephemeral per-process handles (BufferPool::NewObject) — the
/// page store is a paging target rebuilt on every Open, NOT a recovery
/// source; durability comes from the checkpoint image plus the WAL.
struct PageId {
  uint32_t object_id = 0;
  uint32_t page_no = 0;

  uint64_t Encode() const {
    return (static_cast<uint64_t>(object_id) << 32) | page_no;
  }
  bool operator==(const PageId& o) const {
    return object_id == o.object_id && page_no == o.page_no;
  }
};

/// Backing store the buffer pool evicts dirty pages to. Every byte handed to
/// Write is the raw slotted-page image — encrypted cells stay AEAD ciphertext
/// on this path, which is what extends the AE at-rest invariant to paged-out
/// data (the whole-file plaintext scan in durability_test pins this).
class PageStore {
 public:
  virtual ~PageStore() = default;

  /// Stores a full page image (`page.size() == Page::kPageSize`).
  virtual Status Write(PageId id, Slice page) = 0;
  /// Reads a full page into `out` (kPageSize bytes); NotFound if never
  /// written.
  virtual Status Read(PageId id, uint8_t* out) = 0;
  /// Durability barrier for everything written so far.
  virtual Status Sync() = 0;
  /// Forgets every page of an object (table/index dropped or cleared).
  virtual Status DropObject(uint32_t object_id) = 0;
};

/// Heap-backed store: the default when no data directory is configured, so
/// every in-memory engine/test keeps its exact pre-pool semantics (evicted
/// pages round-trip through a map instead of a file).
class MemPageStore : public PageStore {
 public:
  Status Write(PageId id, Slice page) override;
  Status Read(PageId id, uint8_t* out) override;
  Status Sync() override { return Status::OK(); }
  Status DropObject(uint32_t object_id) override;

 private:
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, Bytes> pages_;
};

/// File-backed store: one file per object (`<dir>/obj-<id>.pages`), pages
/// written with pwrite at `page_no * kPageSize`. This is the adversary-
/// observable on-disk form of paged-out data.
class FilePageStore : public PageStore {
 public:
  explicit FilePageStore(std::string dir);
  ~FilePageStore() override;

  /// Deletes every object file under the directory. Called at Open: page
  /// store contents are a cache of a previous process's object-id space and
  /// must not leak into the new one.
  Status Wipe();

  Status Write(PageId id, Slice page) override;
  Status Read(PageId id, uint8_t* out) override;
  Status Sync() override;
  Status DropObject(uint32_t object_id) override;

 private:
  /// Opens (creating if `create`) the object's file; caller holds mu_.
  Result<int> FdForLocked(uint32_t object_id, bool create);

  mutable std::mutex mu_;
  std::string dir_;
  bool dir_ready_ = false;
  std::map<uint32_t, int> fds_;
};

struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t writebacks = 0;
  uint64_t pinned_highwater = 0;
};

class BufferPool;

/// RAII pin over one frame. While alive, data() is a stable 8 KiB buffer the
/// caller may read or (after MarkDirty) mutate; the frame cannot be evicted.
/// Concurrency over the same page is the caller's problem (the engine's
/// table/index latches serialize mutators), eviction-vs-access is the pool's.
class PinnedPage {
 public:
  PinnedPage() = default;
  PinnedPage(PinnedPage&& o) noexcept;
  PinnedPage& operator=(PinnedPage&& o) noexcept;
  PinnedPage(const PinnedPage&) = delete;
  PinnedPage& operator=(const PinnedPage&) = delete;
  ~PinnedPage();

  uint8_t* data() const { return data_; }
  /// Marks the frame dirty so eviction/flush writes it back. Call after (or
  /// around) mutating data() — unpinning does not imply writeback.
  void MarkDirty();
  bool holds() const { return pool_ != nullptr; }
  /// Early unpin (the destructor's job, for callers that want tight scopes).
  void Release();

 private:
  friend class BufferPool;
  PinnedPage(BufferPool* pool, size_t frame, uint8_t* data)
      : pool_(pool), frame_(frame), data_(data) {}

  BufferPool* pool_ = nullptr;
  size_t frame_ = 0;
  uint8_t* data_ = nullptr;
};

/// \brief Fixed-capacity page cache between HeapTable/BTree and a PageStore:
/// page table, pin counts, CLOCK second-chance eviction, dirty writeback, and
/// an optional background flusher.
///
/// Frame lifecycle: a Pin miss claims a frame (evicting an unpinned victim,
/// writing it back first when dirty), loads or zero-fills it, and returns it
/// pinned. CLOCK gives each frame one second chance (`ref` cleared on the
/// first pass, evicted on the second); pinned frames are skipped. When every
/// frame is pinned, Pin waits (bounded) for an unpin and fails with
/// Overloaded if none comes — callers pin O(1) pages at a time, so that only
/// happens when the pool is configured absurdly small for the concurrency.
///
/// Fault points (see fault/fault.h):
///   pool/evict      fires before a victim frame is evicted; Pin fails, the
///                   victim stays cached.
///   pool/writeback  fires before a dirty page is written to the store
///                   (eviction, FlushAll, or the background flusher).
class BufferPool {
 public:
  /// Floor on capacity: splits pin two node pages plus a parent's, and the
  /// heap/index halves of one statement each hold a page briefly.
  static constexpr size_t kMinPages = 8;
  /// Capacity used when the caller passes 0 ("unbounded"): large enough that
  /// pre-pool workloads never evict, small enough to bound memory (128 MiB).
  static constexpr size_t kDefaultPages = 16384;

  /// `store` must outlive the pool. `capacity_pages` 0 selects kDefaultPages.
  BufferPool(PageStore* store, size_t capacity_pages);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// A fresh object id for a table/index's pages (never reused).
  uint32_t NewObject() { return next_object_.fetch_add(1); }

  /// Pins the page, faulting it in from the store on a miss. With `create`,
  /// a page the store has never seen comes back zero-filled (the caller
  /// formats it); without, that is NotFound.
  Result<PinnedPage> Pin(PageId id, bool create);

  /// Writes back every dirty frame (pinned ones included — the checkpoint
  /// caller holds the engine quiescent) and syncs the store.
  Status FlushAll();

  /// Drops the object everywhere: store pages are deleted now, unpinned
  /// cached frames are freed now, and a still-pinned frame is doomed — its
  /// dirty bit is cleared, no writeback path touches it again (dead pages
  /// must never resurrect a store file), and the final Unpin reclaims it.
  Status DropObject(uint32_t object_id);

  /// Starts/stops the background flusher (writes dirty pages every
  /// `interval_ms`; no sync — it bounds eviction-path writebacks, the
  /// checkpoint provides the durability barrier).
  void StartFlusher(uint64_t interval_ms);
  void StopFlusher();

  BufferPoolStats stats() const;
  size_t capacity() const { return capacity_; }
  /// Currently pinned frame count (tests).
  uint64_t pinned() const;

 private:
  friend class PinnedPage;

  struct Frame {
    PageId id;
    std::unique_ptr<uint8_t[]> data;
    uint32_t pins = 0;
    bool valid = false;
    bool ref = false;
    /// Object dropped while this frame was pinned: excluded from every
    /// writeback, reclaimed by the final Unpin (see DropObject).
    bool doomed = false;
    /// Written by MarkDirty without mu_ (the pin guarantees residency);
    /// read/cleared by writeback paths under mu_.
    std::atomic<bool> dirty{false};
  };

  void Unpin(size_t frame);
  /// One CLOCK sweep for a free or evictable frame; returns the frame index,
  /// kNoFrame when everything is pinned, or an eviction/writeback error.
  /// Caller holds mu_.
  Result<size_t> SweepLocked();
  /// Writes dirty frames back to the store; doomed frames are always
  /// excluded. `skip_pinned` (the background flusher) also excludes frames
  /// with live pins — their holders mutate page bytes under only the table
  /// latch, so a concurrent writeback could persist a torn image and lose a
  /// racing MarkDirty. FlushAll passes false: the checkpoint caller is
  /// quiescent, so pinned frames are stable there. Caller holds mu_.
  Status WriteBackDirtyLocked(bool skip_pinned);
  void FlusherLoop(uint64_t interval_ms);

  static constexpr size_t kNoFrame = static_cast<size_t>(-1);

  PageStore* store_;
  size_t capacity_;

  mutable std::mutex mu_;
  std::condition_variable unpin_cv_;
  std::vector<std::unique_ptr<Frame>> frames_;
  std::unordered_map<uint64_t, size_t> page_table_;
  size_t clock_hand_ = 0;
  uint64_t pinned_now_ = 0;
  BufferPoolStats stats_;

  std::atomic<uint32_t> next_object_{1};

  std::thread flusher_;
  std::mutex flusher_mu_;
  std::condition_variable flusher_cv_;
  bool flusher_stop_ = false;
};

}  // namespace aedb::storage

#endif  // AEDB_STORAGE_BUFFER_POOL_H_
