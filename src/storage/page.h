#ifndef AEDB_STORAGE_PAGE_H_
#define AEDB_STORAGE_PAGE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"

namespace aedb::storage {

/// Record identifier: (page id, slot id), as in Figure 4's p1-p4/s1-s3.
struct Rid {
  uint32_t page = 0;
  uint16_t slot = 0;

  uint64_t Encode() const {
    return (static_cast<uint64_t>(page) << 16) | slot;
  }
  static Rid Decode(uint64_t v) {
    return Rid{static_cast<uint32_t>(v >> 16), static_cast<uint16_t>(v & 0xffff)};
  }
  bool operator==(const Rid& o) const { return page == o.page && slot == o.slot; }
  bool operator<(const Rid& o) const { return Encode() < o.Encode(); }
};

/// \brief An 8 KiB slotted page. Records grow from the tail, the slot
/// directory grows from the head. This is the unit the strong adversary can
/// inspect: encrypted columns appear on pages only as AEAD cells.
///
/// Layout:
///   [slot_count u16][free_end u16][slot 0: off u16, len u16][slot 1] ...
///   ... free space ...                 [record 1][record 0]
/// A dead slot keeps its offset/length (minus the dead bit) and bytes.
class Page {
 public:
  static constexpr size_t kPageSize = 8192;
  /// High bit of a slot's length marks it dead; offset and bytes remain so
  /// physical undo can resurrect the record at the same RID.
  static constexpr uint16_t kDeadBit = 0x8000;
  static constexpr size_t kHeaderSize = 4;
  static constexpr size_t kSlotSize = 4;
  /// Largest record a fresh page accepts.
  static constexpr size_t kMaxRecordSize = kPageSize - kHeaderSize - kSlotSize;

  Page();
  /// Adopts a raw 8 KiB image (checkpoint restore). The image must have been
  /// produced by raw() — no validation beyond the size is performed.
  explicit Page(Slice raw);

  /// A non-owning view over an externally managed 8 KiB frame (a pinned
  /// buffer-pool frame). The caller keeps the frame alive and stable for the
  /// view's lifetime — i.e. holds the pin.
  static Page Wrap(uint8_t* frame);
  /// Wrap + format: writes an empty-page header into a (zeroed) frame.
  static Page WrapInit(uint8_t* frame);

  uint16_t slot_count() const;
  size_t free_space() const;
  bool HasSpaceFor(size_t record_size) const;

  /// Appends a record; returns its slot id.
  Result<uint16_t> Insert(Slice record);

  /// Reads a live record (error on tombstones / bad slots).
  Result<Slice> Read(uint16_t slot) const;

  /// Tombstones a record. Space is not compacted (lazy reclamation) and the
  /// record bytes stay in place so Resurrect can undo the delete.
  Status Delete(uint16_t slot);

  /// Undoes a Delete: brings a tombstoned record back to life at the same
  /// slot (physical undo of heap deletes during recovery/abort).
  Status Resurrect(uint16_t slot);

  /// In-place update when the new record is no larger than the old one;
  /// fails with OutOfRange otherwise (caller relocates the row).
  Status UpdateInPlace(uint16_t slot, Slice record);

  bool IsLive(uint16_t slot) const;

  /// Zeroes the record bytes of every dead slot (post-commit scrub after
  /// initial encryption removes plaintext remnants; Resurrect becomes
  /// impossible for scrubbed slots).
  void ScrubDead();

  /// The raw 8 KiB image — the adversary's view of data at rest.
  Slice raw() const { return Slice(data_, kPageSize); }

 private:
  explicit Page(uint8_t* external) : data_(external) {}

  uint16_t GetU16At(size_t off) const;
  void SetU16At(size_t off, uint16_t v);
  uint16_t SlotOffset(uint16_t slot) const;
  uint16_t SlotLen(uint16_t slot) const;

  /// Either a view into owned_ or into an external (pinned) frame.
  uint8_t* data_ = nullptr;
  std::unique_ptr<uint8_t[]> owned_;
};

}  // namespace aedb::storage

#endif  // AEDB_STORAGE_PAGE_H_
