#include "storage/btree.h"

#include <algorithm>
#include <cassert>

namespace aedb::storage {

/// Both node kinds hold parallel (keys, rids) arrays; the rid participates in
/// ordering so duplicate keys have a total order and separators are unique —
/// internal separators are (key, rid) pairs. Leaves additionally chain via
/// `next` for range scans.
struct BTree::Node {
  bool leaf = true;
  std::vector<Bytes> keys;
  std::vector<Rid> rids;
  std::vector<std::unique_ptr<Node>> children;  // size keys.size()+1 (internal)
  Node* next = nullptr;                         // leaf chain
};

BTree::BTree(const Comparator* comparator, bool unique)
    : comparator_(comparator), unique_(unique), root_(std::make_unique<Node>()) {}

BTree::~BTree() = default;

// Out-of-line so ~unique_ptr<Node> sees the complete type.
void BTree::Clear() {
  root_ = std::make_unique<Node>();
  size_ = 0;
}

void BTree::LoadSortedEntries(
    const std::vector<std::pair<Bytes, Rid>>& entries) {
  Clear();
  if (entries.empty()) return;
  size_ = entries.size();

  // One level at a time, bottom-up. Each built node carries its minimum
  // (key, rid) entry so the parent level can form separators without ever
  // touching the comparator: separator i is the min entry of child i+1,
  // matching the (key, rid)-ordered descent in ChildIndex/InsertRec.
  struct Built {
    std::unique_ptr<Node> node;
    Bytes min_key;
    Rid min_rid;
  };
  std::vector<Built> level;

  // Leaves: chunks of up to kMaxKeys entries, chained left to right.
  Node* prev_leaf = nullptr;
  for (size_t at = 0; at < entries.size(); at += kMaxKeys) {
    size_t n = std::min(kMaxKeys, entries.size() - at);
    auto leaf = std::make_unique<Node>();
    leaf->leaf = true;
    leaf->keys.reserve(n);
    leaf->rids.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      leaf->keys.push_back(entries[at + i].first);
      leaf->rids.push_back(entries[at + i].second);
    }
    if (prev_leaf != nullptr) prev_leaf->next = leaf.get();
    prev_leaf = leaf.get();
    Built b;
    b.min_key = leaf->keys.front();
    b.min_rid = leaf->rids.front();
    b.node = std::move(leaf);
    level.push_back(std::move(b));
  }

  // Internal levels: up to kMaxKeys+1 children per node.
  while (level.size() > 1) {
    std::vector<Built> parents;
    for (size_t at = 0; at < level.size(); at += kMaxKeys + 1) {
      size_t n = std::min(kMaxKeys + 1, level.size() - at);
      auto parent = std::make_unique<Node>();
      parent->leaf = false;
      Built b;
      b.min_key = level[at].min_key;
      b.min_rid = level[at].min_rid;
      for (size_t i = 0; i < n; ++i) {
        if (i > 0) {
          parent->keys.push_back(level[at + i].min_key);
          parent->rids.push_back(level[at + i].min_rid);
        }
        parent->children.push_back(std::move(level[at + i].node));
      }
      b.node = std::move(parent);
      parents.push_back(std::move(b));
    }
    level = std::move(parents);
  }
  root_ = std::move(level.front().node);
}

Result<int> BTree::Cmp(Slice a, Slice b) const {
  comparisons_.fetch_add(1, std::memory_order_relaxed);
  return comparator_->Compare(a, b);
}

Result<int> BTree::CmpEntry(Slice key, Rid rid, const Node* node,
                            size_t i) const {
  int c;
  AEDB_ASSIGN_OR_RETURN(c, Cmp(key, node->keys[i]));
  if (c != 0) return c;
  uint64_t a = rid.Encode(), b = node->rids[i].Encode();
  return a < b ? -1 : (a > b ? 1 : 0);
}

Result<std::vector<int>> BTree::CmpNodeFrom(Slice probe, const Node* node,
                                            size_t from) const {
  std::vector<Slice> keys;
  keys.reserve(node->keys.size() - from);
  for (size_t i = from; i < node->keys.size(); ++i) {
    keys.emplace_back(node->keys[i]);
  }
  comparisons_.fetch_add(keys.size(), std::memory_order_relaxed);
  return comparator_->CompareBatch(probe, keys);
}

namespace {
constexpr Rid kMinRid{0, 0};

/// (key, kMinRid) entry order derived from a raw key comparison: on a key
/// tie, kMinRid sorts before any real rid (only a zero-encoded rid ties).
int EntryCmpMinRid(int key_cmp, Rid entry_rid) {
  if (key_cmp != 0) return key_cmp;
  return entry_rid.Encode() == 0 ? 0 : -1;
}
}  // namespace

Result<size_t> BTree::ChildIndex(const Node* node, Slice key) const {
  // This overload is used by (key, kMinRid) searches only; see InsertRec for
  // the rid-aware descent.
  if (comparator_->PrefersBatch() && node->keys.size() > 1) {
    // One boundary crossing for the whole node beats log2(n) crossings even
    // though it compares every key (the comparator told us so).
    std::vector<int> cmps;
    AEDB_ASSIGN_OR_RETURN(cmps, CmpNodeFrom(key, node, 0));
    size_t lo = 0;
    while (lo < cmps.size() && EntryCmpMinRid(cmps[lo], node->rids[lo]) >= 0) {
      ++lo;
    }
    return lo;
  }
  size_t lo = 0, hi = node->keys.size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    int c;
    AEDB_ASSIGN_OR_RETURN(c, CmpEntry(key, kMinRid, node, mid));
    if (c < 0) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

Result<bool> BTree::InsertRec(Node* node, const Bytes& key, Rid rid,
                              std::unique_ptr<SplitResult>* split) {
  if (node->leaf) {
    // Binary search for the (key, rid) position.
    size_t lo = 0, hi = node->keys.size();
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      int c;
      AEDB_ASSIGN_OR_RETURN(c, CmpEntry(key, rid, node, mid));
      if (c < 0) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    node->keys.insert(node->keys.begin() + lo, key);
    node->rids.insert(node->rids.begin() + lo, rid);
    if (node->keys.size() > kMaxKeys) {
      size_t mid = node->keys.size() / 2;
      auto right = std::make_unique<Node>();
      right->leaf = true;
      right->keys.assign(node->keys.begin() + mid, node->keys.end());
      right->rids.assign(node->rids.begin() + mid, node->rids.end());
      node->keys.resize(mid);
      node->rids.resize(mid);
      right->next = node->next;
      node->next = right.get();
      auto result = std::make_unique<SplitResult>();
      result->separator = right->keys.front();
      result->separator_rid = right->rids.front();
      result->right = std::move(right);
      *split = std::move(result);
    }
    return true;
  }

  // Internal: rid-aware descent.
  size_t lo = 0, hi = node->keys.size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    int c;
    AEDB_ASSIGN_OR_RETURN(c, CmpEntry(key, rid, node, mid));
    if (c < 0) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  std::unique_ptr<SplitResult> child_split;
  bool inserted;
  AEDB_ASSIGN_OR_RETURN(inserted,
                        InsertRec(node->children[lo].get(), key, rid,
                                  &child_split));
  if (child_split != nullptr) {
    node->keys.insert(node->keys.begin() + lo, child_split->separator);
    node->rids.insert(node->rids.begin() + lo, child_split->separator_rid);
    node->children.insert(node->children.begin() + lo + 1,
                          std::move(child_split->right));
    if (node->keys.size() > kMaxKeys) {
      size_t mid = node->keys.size() / 2;
      auto right = std::make_unique<Node>();
      right->leaf = false;
      right->keys.assign(node->keys.begin() + mid + 1, node->keys.end());
      right->rids.assign(node->rids.begin() + mid + 1, node->rids.end());
      for (size_t i = mid + 1; i < node->children.size(); ++i) {
        right->children.push_back(std::move(node->children[i]));
      }
      auto result = std::make_unique<SplitResult>();
      result->separator = std::move(node->keys[mid]);
      result->separator_rid = node->rids[mid];
      node->keys.resize(mid);
      node->rids.resize(mid);
      node->children.resize(mid + 1);
      result->right = std::move(right);
      *split = std::move(result);
    }
  }
  return inserted;
}

Result<bool> BTree::Insert(const Bytes& key, Rid rid) {
  if (unique_) {
    std::vector<Rid> existing;
    AEDB_ASSIGN_OR_RETURN(existing, SeekEqual(key));
    if (!existing.empty()) return false;
  }
  std::unique_ptr<SplitResult> split;
  AEDB_RETURN_IF_ERROR(InsertRec(root_.get(), key, rid, &split).status());
  if (split != nullptr) {
    auto new_root = std::make_unique<Node>();
    new_root->leaf = false;
    new_root->keys.push_back(std::move(split->separator));
    new_root->rids.push_back(split->separator_rid);
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(split->right));
    root_ = std::move(new_root);
  }
  ++size_;
  return true;
}

Result<bool> BTree::Delete(const Bytes& key, Rid rid) {
  // Descend rid-aware to the leaf that would hold (key, rid).
  Node* node = root_.get();
  while (!node->leaf) {
    size_t lo = 0, hi = node->keys.size();
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      int c;
      AEDB_ASSIGN_OR_RETURN(c, CmpEntry(key, rid, node, mid));
      if (c < 0) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    node = node->children[lo].get();
  }
  size_t lo = 0, hi = node->keys.size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    int c;
    AEDB_ASSIGN_OR_RETURN(c, CmpEntry(key, rid, node, mid));
    if (c < 0) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  // The match, if present, is the entry just before the insert position.
  if (lo == 0) return false;
  size_t pos = lo - 1;
  int c;
  AEDB_ASSIGN_OR_RETURN(c, CmpEntry(key, rid, node, pos));
  if (c != 0) return false;
  node->keys.erase(node->keys.begin() + pos);
  node->rids.erase(node->rids.begin() + pos);
  --size_;
  // Lazy deletion: no rebalance; empty leaves are skipped by iterators.
  return true;
}

Result<std::vector<Rid>> BTree::SeekEqual(Slice key) const {
  std::vector<Rid> out;
  Iterator it;
  AEDB_ASSIGN_OR_RETURN(it, SeekAtLeast(key));
  if (comparator_->PrefersBatch()) {
    // Leaf-at-a-time: one batched call checks every candidate in the node.
    const Node* node = static_cast<const Node*>(it.node_);
    size_t pos = it.pos_;
    while (node != nullptr) {
      if (pos >= node->keys.size()) {
        node = node->next;
        pos = 0;
        continue;
      }
      std::vector<int> cmps;
      AEDB_ASSIGN_OR_RETURN(cmps, CmpNodeFrom(key, node, pos));
      for (size_t i = 0; i < cmps.size(); ++i) {
        if (cmps[i] != 0) return out;
        out.push_back(node->rids[pos + i]);
      }
      node = node->next;
      pos = 0;
    }
    return out;
  }
  while (it.Valid()) {
    int c;
    AEDB_ASSIGN_OR_RETURN(c, Cmp(it.key(), key));
    if (c != 0) break;
    out.push_back(it.rid());
    it.Next();
  }
  return out;
}

Result<std::vector<Rid>> BTree::SeekRange(const Bytes* lower,
                                          bool lower_inclusive,
                                          const Bytes* upper,
                                          bool upper_inclusive) const {
  std::vector<Rid> out;
  Iterator start;
  if (lower != nullptr) {
    AEDB_ASSIGN_OR_RETURN(start, SeekAtLeast(*lower));
  } else {
    start = Begin();
  }
  const Node* node = static_cast<const Node*>(start.node_);
  size_t pos = start.pos_;
  // SeekAtLeast lands on the first key >= lower; an exclusive lower bound
  // additionally skips the run of keys equal to it.
  bool skipping_equal = lower != nullptr && !lower_inclusive;

  if (comparator_->PrefersBatch()) {
    while (node != nullptr) {
      if (pos >= node->keys.size()) {
        node = node->next;
        pos = 0;
        continue;
      }
      if (skipping_equal) {
        std::vector<int> cmps;
        AEDB_ASSIGN_OR_RETURN(cmps, CmpNodeFrom(*lower, node, pos));
        size_t i = 0;
        while (i < cmps.size() && cmps[i] == 0) ++i;
        pos += i;
        if (i < cmps.size()) skipping_equal = false;
        if (pos >= node->keys.size()) {
          node = node->next;
          pos = 0;
          continue;
        }
      }
      if (upper == nullptr) {
        for (size_t i = pos; i < node->rids.size(); ++i) {
          out.push_back(node->rids[i]);
        }
      } else {
        std::vector<int> cmps;
        AEDB_ASSIGN_OR_RETURN(cmps, CmpNodeFrom(*upper, node, pos));
        for (size_t i = 0; i < cmps.size(); ++i) {
          bool in = upper_inclusive ? cmps[i] >= 0 : cmps[i] > 0;
          if (!in) return out;
          out.push_back(node->rids[pos + i]);
        }
      }
      node = node->next;
      pos = 0;
    }
    return out;
  }

  // Scalar path: entry-at-a-time with early exit past the upper bound.
  while (node != nullptr) {
    if (pos >= node->keys.size()) {
      node = node->next;
      pos = 0;
      continue;
    }
    if (skipping_equal) {
      int c;
      AEDB_ASSIGN_OR_RETURN(c, Cmp(*lower, node->keys[pos]));
      if (c == 0) {
        ++pos;
        continue;
      }
      skipping_equal = false;
    }
    if (upper != nullptr) {
      int c;
      AEDB_ASSIGN_OR_RETURN(c, Cmp(*upper, node->keys[pos]));
      bool in = upper_inclusive ? c >= 0 : c > 0;
      if (!in) return out;
    }
    out.push_back(node->rids[pos]);
    ++pos;
  }
  return out;
}

Slice BTree::Iterator::key() const {
  const Node* n = static_cast<const Node*>(node_);
  return n->keys[pos_];
}

Rid BTree::Iterator::rid() const {
  const Node* n = static_cast<const Node*>(node_);
  return n->rids[pos_];
}

void BTree::Iterator::Next() {
  const Node* n = static_cast<const Node*>(node_);
  ++pos_;
  while (n != nullptr && pos_ >= n->keys.size()) {
    n = n->next;
    pos_ = 0;
  }
  node_ = n;
}

BTree::Iterator BTree::Begin() const {
  const Node* n = root_.get();
  while (!n->leaf) n = n->children.front().get();
  while (n != nullptr && n->keys.empty()) n = n->next;
  Iterator it;
  it.node_ = n;
  it.pos_ = 0;
  return it;
}

Result<BTree::Iterator> BTree::SeekAtLeast(Slice key) const {
  const Node* node = root_.get();
  while (!node->leaf) {
    size_t idx;
    AEDB_ASSIGN_OR_RETURN(idx, ChildIndex(node, key));
    node = node->children[idx].get();
  }
  size_t lo;
  if (comparator_->PrefersBatch() && node->keys.size() > 1) {
    std::vector<int> cmps;
    AEDB_ASSIGN_OR_RETURN(cmps, CmpNodeFrom(key, node, 0));
    lo = 0;
    while (lo < cmps.size() && EntryCmpMinRid(cmps[lo], node->rids[lo]) > 0) {
      ++lo;
    }
  } else {
    lo = 0;
    size_t hi = node->keys.size();
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      int c;
      AEDB_ASSIGN_OR_RETURN(c, CmpEntry(key, kMinRid, node, mid));
      if (c <= 0) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
  }
  Iterator it;
  const Node* n = node;
  size_t pos = lo;
  while (n != nullptr && pos >= n->keys.size()) {
    n = n->next;
    pos = 0;
  }
  it.node_ = n;
  it.pos_ = pos;
  return it;
}

int BTree::height() const {
  int h = 1;
  const Node* n = root_.get();
  while (!n->leaf) {
    ++h;
    n = n->children.front().get();
  }
  return h;
}

}  // namespace aedb::storage
