#include "storage/btree.h"

#include <algorithm>
#include <cassert>
#include <mutex>

namespace aedb::storage {

/// Both node kinds hold a parallel (slot, rid) order; the rid participates in
/// ordering so duplicate keys have a total order and separators are unique —
/// internal separators are (key, rid) pairs. Leaves additionally chain via
/// `next` for range scans.
///
/// Key BYTES live on the node's buffer-pool page (slot `slots[i]` holds the
/// bytes of entry i); everything else here is in-memory skeleton. The page is
/// allocated lazily on the first key insert (kNoPage until then).
struct BTree::Node {
  static constexpr uint32_t kNoPage = 0xffffffffu;

  bool leaf = true;
  uint32_t page_no = kNoPage;
  std::vector<uint16_t> slots;  // pos -> page slot, in (key, rid) order
  std::vector<Rid> rids;
  std::vector<std::unique_ptr<Node>> children;  // size count()+1 (internal)
  Node* next = nullptr;                         // leaf chain
  size_t key_bytes = 0;                         // live key bytes on the page

  size_t count() const { return slots.size(); }
};

BTree::BTree(const Comparator* comparator, bool unique, BufferPool* pool)
    : comparator_(comparator), unique_(unique), pool_(pool) {
  if (pool_ == nullptr) {
    owned_store_ = std::make_unique<MemPageStore>();
    owned_pool_ = std::make_unique<BufferPool>(owned_store_.get(), 0);
    pool_ = owned_pool_.get();
  }
  object_id_ = pool_->NewObject();
  root_ = std::make_unique<Node>();
}

BTree::~BTree() { (void)pool_->DropObject(object_id_); }

// Out-of-line so ~unique_ptr<Node> sees the complete type.
void BTree::Clear() {
  std::unique_lock lock(mu_);
  ClearLocked();
}

void BTree::ClearLocked() {
  // A fresh object retires every old node page at once (cached frames and
  // store pages both).
  (void)pool_->DropObject(object_id_);
  object_id_ = pool_->NewObject();
  next_page_no_ = 0;
  root_ = std::make_unique<Node>();
  size_ = 0;
}

// ---------------------------------------------------------------------------
// Paged key access

Slice BTree::NodeView::key(size_t i) const {
  auto r = Page::Wrap(pin.data()).Read(node->slots[i]);
  // Slots in the in-memory order vector are live by construction; a dead or
  // out-of-range slot here would mean skeleton/page divergence.
  assert(r.ok());
  return r.ok() ? *r : Slice();
}

Result<BTree::NodeView> BTree::View(const Node* n) const {
  NodeView v;
  v.node = n;
  if (n->page_no != Node::kNoPage) {
    AEDB_ASSIGN_OR_RETURN(
        v.pin, pool_->Pin(PageId{object_id_, n->page_no}, /*create=*/false));
  }
  return v;
}

Result<Bytes> BTree::KeyAt(const Node* n, size_t i) const {
  NodeView view;
  AEDB_ASSIGN_OR_RETURN(view, View(n));
  return view.key(i).ToBytes();
}

Status BTree::EnsurePage(Node* n) {
  if (n->page_no != Node::kNoPage) return Status::OK();
  uint32_t page_no = next_page_no_++;
  PinnedPage pin;
  AEDB_ASSIGN_OR_RETURN(
      pin, pool_->Pin(PageId{object_id_, page_no}, /*create=*/true));
  Page::WrapInit(pin.data());
  pin.MarkDirty();
  n->page_no = page_no;
  return Status::OK();
}

Status BTree::InsertKeyAt(Node* n, size_t pos, Slice key, Rid rid) {
  AEDB_RETURN_IF_ERROR(EnsurePage(n));
  PinnedPage pin;
  AEDB_ASSIGN_OR_RETURN(
      pin, pool_->Pin(PageId{object_id_, n->page_no}, /*create=*/false));
  Page page = Page::Wrap(pin.data());
  if (!page.HasSpaceFor(key.size())) {
    // Dead slots (removed or split-moved entries) still hold bytes: compact
    // the live entries in place. The split-bytes invariant guarantees the
    // insert fits afterwards.
    std::vector<Bytes> live;
    live.reserve(n->count());
    for (size_t i = 0; i < n->count(); ++i) {
      Slice s;
      AEDB_ASSIGN_OR_RETURN(s, page.Read(n->slots[i]));
      live.push_back(s.ToBytes());
    }
    page = Page::WrapInit(pin.data());
    for (size_t i = 0; i < live.size(); ++i) {
      uint16_t slot;
      AEDB_ASSIGN_OR_RETURN(slot, page.Insert(live[i]));
      n->slots[i] = slot;
    }
  }
  if (!page.HasSpaceFor(key.size())) {
    return Status::Internal("btree node page overflow");
  }
  uint16_t slot;
  AEDB_ASSIGN_OR_RETURN(slot, page.Insert(key));
  pin.MarkDirty();
  n->slots.insert(n->slots.begin() + pos, slot);
  n->rids.insert(n->rids.begin() + pos, rid);
  n->key_bytes += key.size();
  return Status::OK();
}

Status BTree::RemoveKeyAt(Node* n, size_t pos) {
  PinnedPage pin;
  AEDB_ASSIGN_OR_RETURN(
      pin, pool_->Pin(PageId{object_id_, n->page_no}, /*create=*/false));
  Page page = Page::Wrap(pin.data());
  Slice s;
  AEDB_ASSIGN_OR_RETURN(s, page.Read(n->slots[pos]));
  size_t len = s.size();
  AEDB_RETURN_IF_ERROR(page.Delete(n->slots[pos]));
  pin.MarkDirty();
  n->key_bytes -= len;
  n->slots.erase(n->slots.begin() + pos);
  n->rids.erase(n->rids.begin() + pos);
  return Status::OK();
}

Status BTree::MoveTail(Node* from, size_t from_pos, Node* to) {
  AEDB_RETURN_IF_ERROR(EnsurePage(to));
  PinnedPage from_pin, to_pin;
  AEDB_ASSIGN_OR_RETURN(from_pin, pool_->Pin(PageId{object_id_, from->page_no},
                                             /*create=*/false));
  AEDB_ASSIGN_OR_RETURN(
      to_pin, pool_->Pin(PageId{object_id_, to->page_no}, /*create=*/false));
  Page from_page = Page::Wrap(from_pin.data());
  Page to_page = Page::Wrap(to_pin.data());
  for (size_t i = from_pos; i < from->count(); ++i) {
    Slice k;
    AEDB_ASSIGN_OR_RETURN(k, from_page.Read(from->slots[i]));
    if (!to_page.HasSpaceFor(k.size())) {
      return Status::Internal("btree split target page overflow");
    }
    uint16_t slot;
    AEDB_ASSIGN_OR_RETURN(slot, to_page.Insert(k));
    to->slots.push_back(slot);
    to->rids.push_back(from->rids[i]);
    to->key_bytes += k.size();
    AEDB_RETURN_IF_ERROR(from_page.Delete(from->slots[i]));
    from->key_bytes -= k.size();
  }
  from_pin.MarkDirty();
  to_pin.MarkDirty();
  from->slots.resize(from_pos);
  from->rids.resize(from_pos);
  return Status::OK();
}

bool BTree::Overfull(const Node* n) {
  return n->count() > kMaxKeys || n->key_bytes > kSplitBytes;
}

// ---------------------------------------------------------------------------
// Bulk load

Status BTree::LoadSortedEntries(
    const std::vector<std::pair<Bytes, Rid>>& entries) {
  std::unique_lock lock(mu_);
  ClearLocked();
  if (entries.empty()) return Status::OK();
  size_ = entries.size();

  // One level at a time, bottom-up. Each built node carries its minimum
  // (key, rid) entry so the parent level can form separators without ever
  // touching the comparator: separator i is the min entry of child i+1,
  // matching the (key, rid)-ordered descent in ChildIndex/InsertRec.
  struct Built {
    std::unique_ptr<Node> node;
    Bytes min_key;
    Rid min_rid;
  };
  std::vector<Built> level;

  // Leaves: chunks capped by entry count AND key bytes, chained left to
  // right (the same dual limit a split enforces).
  Node* prev_leaf = nullptr;
  size_t at = 0;
  while (at < entries.size()) {
    size_t n = 0, bytes = 0;
    while (at + n < entries.size() && n < kMaxKeys &&
           (n == 0 || bytes + entries[at + n].first.size() <= kSplitBytes)) {
      bytes += entries[at + n].first.size();
      ++n;
    }
    auto leaf = std::make_unique<Node>();
    leaf->leaf = true;
    for (size_t i = 0; i < n; ++i) {
      AEDB_RETURN_IF_ERROR(InsertKeyAt(leaf.get(), leaf->count(),
                                       entries[at + i].first,
                                       entries[at + i].second));
    }
    if (prev_leaf != nullptr) prev_leaf->next = leaf.get();
    prev_leaf = leaf.get();
    Built b;
    b.min_key = entries[at].first;
    b.min_rid = entries[at].second;
    b.node = std::move(leaf);
    level.push_back(std::move(b));
    at += n;
  }

  // Internal levels: up to kMaxKeys+1 children per node, separator bytes
  // capped like a split.
  while (level.size() > 1) {
    std::vector<Built> parents;
    size_t from = 0;
    while (from < level.size()) {
      size_t n = 0, bytes = 0;
      while (from + n < level.size() && n < kMaxKeys + 1) {
        if (n > 0) {
          size_t sep = level[from + n].min_key.size();
          if (bytes + sep > kSplitBytes) break;
          bytes += sep;
        }
        ++n;
      }
      auto parent = std::make_unique<Node>();
      parent->leaf = false;
      Built b;
      b.min_key = level[from].min_key;
      b.min_rid = level[from].min_rid;
      for (size_t i = 0; i < n; ++i) {
        if (i > 0) {
          AEDB_RETURN_IF_ERROR(InsertKeyAt(parent.get(), parent->count(),
                                           level[from + i].min_key,
                                           level[from + i].min_rid));
        }
        parent->children.push_back(std::move(level[from + i].node));
      }
      b.node = std::move(parent);
      parents.push_back(std::move(b));
      from += n;
    }
    level = std::move(parents);
  }
  root_ = std::move(level.front().node);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Comparisons

Result<int> BTree::Cmp(Slice a, Slice b) const {
  comparisons_.fetch_add(1, std::memory_order_relaxed);
  return comparator_->Compare(a, b);
}

Result<int> BTree::CmpEntry(Slice key, Rid rid, const NodeView& view,
                            size_t i) const {
  int c;
  AEDB_ASSIGN_OR_RETURN(c, Cmp(key, view.key(i)));
  if (c != 0) return c;
  uint64_t a = rid.Encode(), b = view.node->rids[i].Encode();
  return a < b ? -1 : (a > b ? 1 : 0);
}

Result<std::vector<int>> BTree::CmpNodeFrom(Slice probe, const Node* node,
                                            size_t from) const {
  NodeView view;
  AEDB_ASSIGN_OR_RETURN(view, View(node));
  std::vector<Slice> keys;
  keys.reserve(node->count() - from);
  for (size_t i = from; i < node->count(); ++i) {
    keys.push_back(view.key(i));
  }
  comparisons_.fetch_add(keys.size(), std::memory_order_relaxed);
  return comparator_->CompareBatch(probe, keys);
}

namespace {
constexpr Rid kMinRid{0, 0};

/// (key, kMinRid) entry order derived from a raw key comparison: on a key
/// tie, kMinRid sorts before any real rid (only a zero-encoded rid ties).
int EntryCmpMinRid(int key_cmp, Rid entry_rid) {
  if (key_cmp != 0) return key_cmp;
  return entry_rid.Encode() == 0 ? 0 : -1;
}
}  // namespace

Result<size_t> BTree::ChildIndex(const Node* node, Slice key) const {
  // This overload is used by (key, kMinRid) searches only; see InsertRec for
  // the rid-aware descent.
  if (comparator_->PrefersBatch() && node->count() > 1) {
    // One boundary crossing for the whole node beats log2(n) crossings even
    // though it compares every key (the comparator told us so).
    std::vector<int> cmps;
    AEDB_ASSIGN_OR_RETURN(cmps, CmpNodeFrom(key, node, 0));
    size_t lo = 0;
    while (lo < cmps.size() && EntryCmpMinRid(cmps[lo], node->rids[lo]) >= 0) {
      ++lo;
    }
    return lo;
  }
  size_t lo = 0, hi = node->count();
  NodeView view;
  if (hi > 0) AEDB_ASSIGN_OR_RETURN(view, View(node));
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    int c;
    AEDB_ASSIGN_OR_RETURN(c, CmpEntry(key, kMinRid, view, mid));
    if (c < 0) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

// ---------------------------------------------------------------------------
// Mutation

Result<bool> BTree::InsertRec(Node* node, const Bytes& key, Rid rid,
                              std::unique_ptr<SplitResult>* split) {
  if (node->leaf) {
    // Binary search for the (key, rid) position, pin scoped to the search so
    // InsertKeyAt/SplitNode re-pin without stacking.
    size_t lo = 0, hi = node->count();
    {
      NodeView view;
      if (hi > 0) AEDB_ASSIGN_OR_RETURN(view, View(node));
      while (lo < hi) {
        size_t mid = (lo + hi) / 2;
        int c;
        AEDB_ASSIGN_OR_RETURN(c, CmpEntry(key, rid, view, mid));
        if (c < 0) {
          hi = mid;
        } else {
          lo = mid + 1;
        }
      }
    }
    AEDB_RETURN_IF_ERROR(InsertKeyAt(node, lo, key, rid));
    if (Overfull(node)) AEDB_RETURN_IF_ERROR(SplitNode(node, split));
    return true;
  }

  // Internal: rid-aware descent.
  size_t lo = 0, hi = node->count();
  {
    NodeView view;
    if (hi > 0) AEDB_ASSIGN_OR_RETURN(view, View(node));
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      int c;
      AEDB_ASSIGN_OR_RETURN(c, CmpEntry(key, rid, view, mid));
      if (c < 0) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
  }
  std::unique_ptr<SplitResult> child_split;
  bool inserted;
  AEDB_ASSIGN_OR_RETURN(inserted,
                        InsertRec(node->children[lo].get(), key, rid,
                                  &child_split));
  if (child_split != nullptr) {
    AEDB_RETURN_IF_ERROR(InsertKeyAt(node, lo, child_split->separator,
                                     child_split->separator_rid));
    node->children.insert(node->children.begin() + lo + 1,
                          std::move(child_split->right));
    if (Overfull(node)) AEDB_RETURN_IF_ERROR(SplitNode(node, split));
  }
  return inserted;
}

Status BTree::SplitNode(Node* node, std::unique_ptr<SplitResult>* split) {
  size_t mid = node->count() / 2;
  auto result = std::make_unique<SplitResult>();
  auto right = std::make_unique<Node>();
  right->leaf = node->leaf;
  if (node->leaf) {
    AEDB_RETURN_IF_ERROR(MoveTail(node, mid, right.get()));
    AEDB_ASSIGN_OR_RETURN(result->separator, KeyAt(right.get(), 0));
    result->separator_rid = right->rids.front();
    right->next = node->next;
    node->next = right.get();
  } else {
    // Entry `mid` is promoted: copy it out as the separator, move the tail
    // past it to the right node, then drop it from this one.
    AEDB_ASSIGN_OR_RETURN(result->separator, KeyAt(node, mid));
    result->separator_rid = node->rids[mid];
    AEDB_RETURN_IF_ERROR(MoveTail(node, mid + 1, right.get()));
    for (size_t i = mid + 1; i < node->children.size(); ++i) {
      right->children.push_back(std::move(node->children[i]));
    }
    node->children.resize(mid + 1);
    AEDB_RETURN_IF_ERROR(RemoveKeyAt(node, mid));
  }
  result->right = std::move(right);
  *split = std::move(result);
  return Status::OK();
}

Result<bool> BTree::Insert(const Bytes& key, Rid rid) {
  if (key.size() > kMaxKeyBytes) {
    return Status::InvalidArgument("index key exceeds kMaxKeyBytes");
  }
  std::unique_lock lock(mu_);
  if (unique_) {
    std::vector<Rid> existing;
    AEDB_ASSIGN_OR_RETURN(existing, SeekEqualLocked(key));
    if (!existing.empty()) return false;
  }
  std::unique_ptr<SplitResult> split;
  AEDB_RETURN_IF_ERROR(InsertRec(root_.get(), key, rid, &split).status());
  if (split != nullptr) {
    auto new_root = std::make_unique<Node>();
    new_root->leaf = false;
    AEDB_RETURN_IF_ERROR(InsertKeyAt(new_root.get(), 0, split->separator,
                                     split->separator_rid));
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(split->right));
    root_ = std::move(new_root);
  }
  ++size_;
  return true;
}

Result<bool> BTree::Delete(const Bytes& key, Rid rid) {
  std::unique_lock lock(mu_);
  // Descend rid-aware to the leaf that would hold (key, rid).
  Node* node = root_.get();
  while (!node->leaf) {
    size_t lo = 0, hi = node->count();
    NodeView view;
    if (hi > 0) AEDB_ASSIGN_OR_RETURN(view, View(node));
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      int c;
      AEDB_ASSIGN_OR_RETURN(c, CmpEntry(key, rid, view, mid));
      if (c < 0) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    node = node->children[lo].get();
  }
  size_t pos;
  {
    size_t lo = 0, hi = node->count();
    NodeView view;
    if (hi > 0) AEDB_ASSIGN_OR_RETURN(view, View(node));
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      int c;
      AEDB_ASSIGN_OR_RETURN(c, CmpEntry(key, rid, view, mid));
      if (c < 0) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    // The match, if present, is the entry just before the insert position.
    if (lo == 0) return false;
    pos = lo - 1;
    int c;
    AEDB_ASSIGN_OR_RETURN(c, CmpEntry(key, rid, view, pos));
    if (c != 0) return false;
  }
  AEDB_RETURN_IF_ERROR(RemoveKeyAt(node, pos));
  --size_;
  // Lazy deletion: no rebalance; empty leaves are skipped by iterators.
  return true;
}

// ---------------------------------------------------------------------------
// Lookup

Result<std::vector<Rid>> BTree::SeekEqual(Slice key) const {
  std::shared_lock lock(mu_);
  return SeekEqualLocked(key);
}

Result<std::vector<Rid>> BTree::SeekEqualLocked(Slice key) const {
  std::vector<Rid> out;
  Iterator it;
  AEDB_ASSIGN_OR_RETURN(it, SeekAtLeastLocked(key));
  const Node* node = static_cast<const Node*>(it.node_);
  size_t pos = it.pos_;
  if (comparator_->PrefersBatch()) {
    // Leaf-at-a-time: one batched call checks every candidate in the node.
    while (node != nullptr) {
      if (pos >= node->count()) {
        node = node->next;
        pos = 0;
        continue;
      }
      std::vector<int> cmps;
      AEDB_ASSIGN_OR_RETURN(cmps, CmpNodeFrom(key, node, pos));
      for (size_t i = 0; i < cmps.size(); ++i) {
        if (cmps[i] != 0) return out;
        out.push_back(node->rids[pos + i]);
      }
      node = node->next;
      pos = 0;
    }
    return out;
  }
  while (node != nullptr) {
    if (pos >= node->count()) {
      node = node->next;
      pos = 0;
      continue;
    }
    NodeView view;
    AEDB_ASSIGN_OR_RETURN(view, View(node));
    for (; pos < node->count(); ++pos) {
      int c;
      AEDB_ASSIGN_OR_RETURN(c, Cmp(view.key(pos), key));
      if (c != 0) return out;
      out.push_back(node->rids[pos]);
    }
    node = node->next;
    pos = 0;
  }
  return out;
}

Result<std::vector<Rid>> BTree::SeekRange(const Bytes* lower,
                                          bool lower_inclusive,
                                          const Bytes* upper,
                                          bool upper_inclusive) const {
  std::shared_lock lock(mu_);
  std::vector<Rid> out;
  Iterator start;
  if (lower != nullptr) {
    AEDB_ASSIGN_OR_RETURN(start, SeekAtLeastLocked(*lower));
  } else {
    start = BeginLocked();
  }
  const Node* node = static_cast<const Node*>(start.node_);
  size_t pos = start.pos_;
  // SeekAtLeast lands on the first key >= lower; an exclusive lower bound
  // additionally skips the run of keys equal to it.
  bool skipping_equal = lower != nullptr && !lower_inclusive;

  if (comparator_->PrefersBatch()) {
    while (node != nullptr) {
      if (pos >= node->count()) {
        node = node->next;
        pos = 0;
        continue;
      }
      if (skipping_equal) {
        std::vector<int> cmps;
        AEDB_ASSIGN_OR_RETURN(cmps, CmpNodeFrom(*lower, node, pos));
        size_t i = 0;
        while (i < cmps.size() && cmps[i] == 0) ++i;
        pos += i;
        if (i < cmps.size()) skipping_equal = false;
        if (pos >= node->count()) {
          node = node->next;
          pos = 0;
          continue;
        }
      }
      if (upper == nullptr) {
        for (size_t i = pos; i < node->rids.size(); ++i) {
          out.push_back(node->rids[i]);
        }
      } else {
        std::vector<int> cmps;
        AEDB_ASSIGN_OR_RETURN(cmps, CmpNodeFrom(*upper, node, pos));
        for (size_t i = 0; i < cmps.size(); ++i) {
          bool in = upper_inclusive ? cmps[i] >= 0 : cmps[i] > 0;
          if (!in) return out;
          out.push_back(node->rids[pos + i]);
        }
      }
      node = node->next;
      pos = 0;
    }
    return out;
  }

  // Scalar path: entry-at-a-time with early exit past the upper bound, one
  // pin per visited leaf.
  while (node != nullptr) {
    if (pos >= node->count()) {
      node = node->next;
      pos = 0;
      continue;
    }
    NodeView view;
    AEDB_ASSIGN_OR_RETURN(view, View(node));
    for (; pos < node->count(); ++pos) {
      if (skipping_equal) {
        int c;
        AEDB_ASSIGN_OR_RETURN(c, Cmp(*lower, view.key(pos)));
        if (c == 0) continue;
        skipping_equal = false;
      }
      if (upper != nullptr) {
        int c;
        AEDB_ASSIGN_OR_RETURN(c, Cmp(*upper, view.key(pos)));
        bool in = upper_inclusive ? c >= 0 : c > 0;
        if (!in) return out;
      }
      out.push_back(node->rids[pos]);
    }
    node = node->next;
    pos = 0;
  }
  return out;
}

Result<Bytes> BTree::Iterator::key() const {
  return tree_->KeyAt(static_cast<const Node*>(node_), pos_);
}

Rid BTree::Iterator::rid() const {
  const Node* n = static_cast<const Node*>(node_);
  return n->rids[pos_];
}

void BTree::Iterator::Next() {
  const Node* n = static_cast<const Node*>(node_);
  ++pos_;
  while (n != nullptr && pos_ >= n->count()) {
    n = n->next;
    pos_ = 0;
  }
  node_ = n;
}

BTree::Iterator BTree::Begin() const {
  std::shared_lock lock(mu_);
  return BeginLocked();
}

BTree::Iterator BTree::BeginLocked() const {
  const Node* n = root_.get();
  while (!n->leaf) n = n->children.front().get();
  while (n != nullptr && n->count() == 0) n = n->next;
  Iterator it;
  it.tree_ = this;
  it.node_ = n;
  it.pos_ = 0;
  return it;
}

Result<BTree::Iterator> BTree::SeekAtLeast(Slice key) const {
  std::shared_lock lock(mu_);
  return SeekAtLeastLocked(key);
}

Result<BTree::Iterator> BTree::SeekAtLeastLocked(Slice key) const {
  const Node* node = root_.get();
  while (!node->leaf) {
    size_t idx;
    AEDB_ASSIGN_OR_RETURN(idx, ChildIndex(node, key));
    node = node->children[idx].get();
  }
  size_t lo;
  if (comparator_->PrefersBatch() && node->count() > 1) {
    std::vector<int> cmps;
    AEDB_ASSIGN_OR_RETURN(cmps, CmpNodeFrom(key, node, 0));
    lo = 0;
    while (lo < cmps.size() && EntryCmpMinRid(cmps[lo], node->rids[lo]) > 0) {
      ++lo;
    }
  } else {
    lo = 0;
    size_t hi = node->count();
    NodeView view;
    if (hi > 0) AEDB_ASSIGN_OR_RETURN(view, View(node));
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      int c;
      AEDB_ASSIGN_OR_RETURN(c, CmpEntry(key, kMinRid, view, mid));
      if (c <= 0) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
  }
  Iterator it;
  const Node* n = node;
  size_t pos = lo;
  while (n != nullptr && pos >= n->count()) {
    n = n->next;
    pos = 0;
  }
  it.tree_ = this;
  it.node_ = n;
  it.pos_ = pos;
  return it;
}

int BTree::height() const {
  std::shared_lock lock(mu_);
  int h = 1;
  const Node* n = root_.get();
  while (!n->leaf) {
    ++h;
    n = n->children.front().get();
  }
  return h;
}

}  // namespace aedb::storage
