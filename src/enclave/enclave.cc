#include "enclave/enclave.h"

#include <chrono>

#include "crypto/drbg.h"
#include "crypto/sha256.h"
#include "fault/fault.h"

namespace aedb::enclave {

using types::Value;

// ---------------------------------------------------------------------------
// EnclaveImage

Bytes EnclaveImage::BinaryHash() const {
  Bytes payload;
  PutLengthPrefixed(&payload, Slice(std::string_view(name)));
  PutU32(&payload, version);
  PutLengthPrefixed(&payload, Slice(std::string_view("aedb-es-enclave-code")));
  return crypto::Sha256::Hash(payload);
}

Bytes EnclaveImage::AuthorId() const {
  return crypto::Sha256::Hash(author_public.Serialize());
}

EnclaveImage EnclaveImage::MakeEsImage(uint32_t version,
                                       const crypto::RsaPrivateKey& author_key) {
  EnclaveImage image;
  image.name = "aedb_es_enclave";
  image.version = version;
  image.author_public = author_key.pub;
  image.author_signature = crypto::Pkcs1Sign(author_key, image.BinaryHash());
  return image;
}

// ---------------------------------------------------------------------------
// EnclaveReport

Bytes EnclaveReport::Serialize() const {
  Bytes out;
  PutLengthPrefixed(&out, binary_hash);
  PutLengthPrefixed(&out, author_id);
  PutU32(&out, enclave_version);
  PutU32(&out, platform_version);
  PutLengthPrefixed(&out, enclave_public_key_hash);
  return out;
}

Result<EnclaveReport> EnclaveReport::Deserialize(Slice in) {
  EnclaveReport r;
  size_t off = 0;
  AEDB_ASSIGN_OR_RETURN(r.binary_hash, GetLengthPrefixed(in, &off));
  AEDB_ASSIGN_OR_RETURN(r.author_id, GetLengthPrefixed(in, &off));
  AEDB_ASSIGN_OR_RETURN(r.enclave_version, GetU32(in, &off));
  AEDB_ASSIGN_OR_RETURN(r.platform_version, GetU32(in, &off));
  AEDB_ASSIGN_OR_RETURN(r.enclave_public_key_hash, GetLengthPrefixed(in, &off));
  return r;
}

// ---------------------------------------------------------------------------
// Enclave-side crypto provider for the ES evaluator.

/// Bridges the shared ES evaluator to the enclave's CEK table. Constructed
/// on the enclave side of the boundary only.
class EnclaveCellCrypto : public es::CellCryptoProvider {
 public:
  explicit EnclaveCellCrypto(Enclave* enclave) : enclave_(enclave) {}

  Result<Value> DecryptDatum(const types::EncryptionType& enc,
                             types::TypeId expected_type,
                             const Value& wire) override {
    (void)expected_type;
    if (wire.is_null() || wire.type() != types::TypeId::kBinary) {
      return Status::Corruption("encrypted datum must arrive as a binary cell");
    }
    auto it = enclave_->cek_table_.find(enc.cek_id);
    if (it == enclave_->cek_table_.end()) {
      return Status::KeyNotInEnclave("CEK " + std::to_string(enc.cek_id) +
                                     " not installed in enclave");
    }
    Bytes plain;
    AEDB_ASSIGN_OR_RETURN(plain, it->second->Decrypt(wire.bin()));
    size_t off = 0;
    Value v;
    AEDB_ASSIGN_OR_RETURN(v, Value::Decode(plain, &off));
    return v;
  }

  Result<Value> EncryptDatum(const types::EncryptionType& enc,
                             const Value& plain) override {
    auto it = enclave_->cek_table_.find(enc.cek_id);
    if (it == enclave_->cek_table_.end()) {
      return Status::KeyNotInEnclave("CEK " + std::to_string(enc.cek_id) +
                                     " not installed in enclave");
    }
    return Value::Binary(it->second->Encrypt(plain.Encode(), enc.scheme()));
  }

 private:
  Enclave* enclave_;
};

// ---------------------------------------------------------------------------
// Enclave

Enclave::Enclave(const EnclaveImage& image, const EnclaveConfig& config,
                 VbsPlatform* platform)
    : config_(config), platform_(platform) {
  crypto::HmacDrbg drbg(crypto::SecureRandom(48),
                        Slice(std::string_view("enclave-load-key")));
  enclave_key_ = crypto::GenerateRsaKey(config.rsa_key_bits, &drbg);
  report_.binary_hash = image.BinaryHash();
  report_.author_id = image.AuthorId();
  report_.enclave_version = image.version;
  report_.platform_version = platform->hypervisor_version();
  report_.enclave_public_key_hash =
      crypto::Sha256::Hash(enclave_key_.pub.Serialize());
}

void Enclave::ChargeTransition() {
  stats_.transitions.fetch_add(1, std::memory_order_relaxed);
  if (config_.transition_cost_ns == 0) return;
  auto until = std::chrono::steady_clock::now() +
               std::chrono::nanoseconds(config_.transition_cost_ns);
  while (std::chrono::steady_clock::now() < until) {
    // Busy-wait models the VBS call-gate world switch.
  }
}

Result<AttestationResponse> Enclave::CreateSession(Slice client_dh_public) {
  ChargeTransition();
  stats_.calls.fetch_add(1, std::memory_order_relaxed);

  crypto::HmacDrbg drbg(crypto::SecureRandom(48),
                        Slice(std::string_view("enclave-session-dh")));
  crypto::DhKeyPair dh = crypto::GenerateDhKeyPair(&drbg);
  Bytes secret;
  AEDB_ASSIGN_OR_RETURN(
      secret, crypto::DhComputeSharedSecret(dh.private_key, client_dh_public));

  AttestationResponse resp;
  resp.report_bytes = report_.Serialize();
  resp.report_signature = platform_->SignReport(resp.report_bytes);
  resp.enclave_public_key = enclave_key_.pub.Serialize();
  resp.enclave_dh_public = crypto::DhPublicKeyBytes(dh);
  Bytes to_sign = resp.enclave_dh_public;
  to_sign.insert(to_sign.end(), client_dh_public.data(),
                 client_dh_public.data() + client_dh_public.size());
  resp.dh_signature = crypto::Pkcs1Sign(enclave_key_, to_sign);

  std::unique_lock lock(state_mu_);
  resp.session_id = next_session_id_++;
  Session& session = sessions_[resp.session_id];
  session.channel = std::make_unique<crypto::CellCodec>(secret);
  session.shared_secret = std::move(secret);
  return resp;
}

Result<Enclave::Session*> Enclave::FindSession(uint64_t session_id) {
  fault::FaultSpec spec;
  if (AEDB_FAULT_FIRED("enclave/evict_session", &spec)) {
    // Logical eviction: the lookup acts as if the session is gone, so the
    // client must re-attest. The entry itself is left in place because some
    // callers reach here holding state_mu_ in shared mode.
    return Status::SessionNotFound("enclave session " +
                                   std::to_string(session_id) +
                                   " evicted (injected)");
  }
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) {
    return Status::SessionNotFound("unknown enclave session " +
                                   std::to_string(session_id));
  }
  return &it->second;
}

Result<Bytes> Enclave::OpenSealed(Session* session, uint64_t nonce,
                                  Slice sealed) {
  Bytes plain;
  AEDB_ASSIGN_OR_RETURN(plain, session->channel->Decrypt(sealed));
  size_t off = 0;
  uint64_t inner_nonce;
  AEDB_ASSIGN_OR_RETURN(inner_nonce, GetU64(plain, &off));
  if (inner_nonce != nonce) {
    return Status::SecurityError("sealed payload nonce mismatch");
  }
  AEDB_RETURN_IF_ERROR(session->nonces.CheckAndRecord(nonce));
  return Bytes(plain.begin() + off, plain.end());
}

Status Enclave::InstallCeks(uint64_t session_id, uint64_t nonce, Slice sealed) {
  ChargeTransition();
  stats_.calls.fetch_add(1, std::memory_order_relaxed);
  std::unique_lock lock(state_mu_);
  Session* session;
  AEDB_ASSIGN_OR_RETURN(session, FindSession(session_id));
  {
    fault::FaultSpec spec;
    if (AEDB_FAULT_FIRED("enclave/nonce_tracker_reset", &spec)) {
      // Models an enclave losing its replay-protection state: previously
      // consumed nonces become acceptable again. The driver's monotonic nonce
      // counter is what keeps the channel safe across this.
      session->nonces.Reset();
    }
  }
  Bytes body;
  AEDB_ASSIGN_OR_RETURN(body, OpenSealed(session, nonce, sealed));
  size_t off = 0;
  uint32_t count;
  AEDB_ASSIGN_OR_RETURN(count, GetU32(body, &off));
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t cek_id;
    AEDB_ASSIGN_OR_RETURN(cek_id, GetU32(body, &off));
    Bytes material;
    AEDB_ASSIGN_OR_RETURN(material, GetLengthPrefixed(body, &off));
    if (material.size() != 32) {
      return Status::InvalidArgument("CEK material must be 32 bytes");
    }
    cek_table_[cek_id] = std::make_unique<crypto::CellCodec>(material);
  }
  return Status::OK();
}

Status Enclave::AuthorizeEncryption(uint64_t session_id, uint64_t nonce,
                                    Slice sealed) {
  ChargeTransition();
  stats_.calls.fetch_add(1, std::memory_order_relaxed);
  std::unique_lock lock(state_mu_);
  Session* session;
  AEDB_ASSIGN_OR_RETURN(session, FindSession(session_id));
  Bytes body;
  AEDB_ASSIGN_OR_RETURN(body, OpenSealed(session, nonce, sealed));
  if (body.size() != crypto::Sha256::kDigestSize) {
    return Status::InvalidArgument("authorization payload must be a SHA-256");
  }
  session->authorized_query_hashes.insert(body);
  return Status::OK();
}

Result<uint64_t> Enclave::RegisterExpression(Slice program_bytes) {
  ChargeTransition();
  stats_.calls.fetch_add(1, std::memory_order_relaxed);
  es::EsProgram program;
  AEDB_ASSIGN_OR_RETURN(program, es::EsProgram::Deserialize(program_bytes));
  if (program.RequiresEnclave()) {
    return Status::SecurityError("nested TMEval rejected by enclave");
  }
  std::unique_lock lock(state_mu_);
  uint64_t handle = next_handle_++;
  registered_.emplace(handle, std::move(program));
  return handle;
}

Result<std::vector<Value>> Enclave::EvalProgram(
    const es::EsProgram& program, const std::vector<Value>& inputs,
    uint64_t session_id, std::string_view authorizing_query) {
  bool authorized = false;
  if (program.RequiresConversionAuthorization()) {
    // The Encrypt oracle (and every other enclave type conversion) is gated:
    // the server must present the query text the client signed into this
    // session (paper §3.2).
    Session* session;
    AEDB_ASSIGN_OR_RETURN(session, FindSession(session_id));
    Bytes hash = crypto::Sha256::Hash(Slice(authorizing_query));
    if (session->authorized_query_hashes.count(hash) == 0) {
      return Status::PermissionDenied(
          "client did not authorize this encryption statement");
    }
    authorized = true;
  }
  EnclaveCellCrypto cell_crypto(this);
  es::EvalContext ctx;
  ctx.crypto = &cell_crypto;
  ctx.enclave = nullptr;
  ctx.encryption_authorized = authorized;
  es::EsEvaluator evaluator(ctx);
  stats_.evals.fetch_add(1, std::memory_order_relaxed);
  return evaluator.Eval(program, inputs);
}

Result<std::vector<Value>> Enclave::EvalRegistered(
    uint64_t handle, const std::vector<Value>& inputs, uint64_t session_id,
    std::string_view authorizing_query) {
  ChargeTransition();
  return EvalRegisteredResident(handle, inputs, session_id, authorizing_query);
}

Result<std::vector<Value>> Enclave::EvalRegisteredResident(
    uint64_t handle, const std::vector<Value>& inputs, uint64_t session_id,
    std::string_view authorizing_query) {
  stats_.calls.fetch_add(1, std::memory_order_relaxed);
  std::shared_lock lock(state_mu_);
  auto it = registered_.find(handle);
  if (it == registered_.end()) {
    return Status::NotFound("unknown expression handle");
  }
  return EvalProgram(it->second, inputs, session_id, authorizing_query);
}

Result<std::vector<std::vector<Value>>> Enclave::EvalRegisteredBatch(
    uint64_t handle, const std::vector<std::vector<Value>>& batch,
    uint64_t session_id, std::string_view authorizing_query) {
  // One transition covers the entire batch — that is the whole point.
  ChargeTransition();
  return EvalRegisteredBatchResident(handle, batch, session_id,
                                     authorizing_query);
}

Result<std::vector<std::vector<Value>>> Enclave::EvalRegisteredBatchResident(
    uint64_t handle, const std::vector<std::vector<Value>>& batch,
    uint64_t session_id, std::string_view authorizing_query) {
  stats_.calls.fetch_add(1, std::memory_order_relaxed);
  stats_.batch_evals.fetch_add(1, std::memory_order_relaxed);
  std::shared_lock lock(state_mu_);
  auto it = registered_.find(handle);
  if (it == registered_.end()) {
    return Status::NotFound("unknown expression handle");
  }
  std::vector<std::vector<Value>> out;
  out.reserve(batch.size());
  for (const std::vector<Value>& inputs : batch) {
    // A fault fired mid-batch must surface as a clean statement error with
    // no partially applied morsel — tests/fault_test exercises this.
    AEDB_RETURN_IF_ERROR(AEDB_FAULT_POINT("enclave/batch_partial_failure"));
    // EvalProgram re-runs the authorization check per row: batching
    // amortizes the boundary crossing, never the security checks.
    std::vector<Value> row;
    AEDB_ASSIGN_OR_RETURN(
        row, EvalProgram(it->second, inputs, session_id, authorizing_query));
    out.push_back(std::move(row));
    stats_.batched_values.fetch_add(1, std::memory_order_relaxed);
  }
  return out;
}

Result<std::vector<Value>> Enclave::Eval(Slice program_bytes,
                                         const std::vector<Value>& inputs,
                                         uint64_t session_id,
                                         std::string_view authorizing_query) {
  ChargeTransition();
  stats_.calls.fetch_add(1, std::memory_order_relaxed);
  // Reconstruct the program inside the enclave (deep copy via serialization,
  // §4.4): the enclave never evaluates an object residing in host memory.
  es::EsProgram program;
  AEDB_ASSIGN_OR_RETURN(program, es::EsProgram::Deserialize(program_bytes));
  if (program.RequiresEnclave()) {
    return Status::SecurityError("nested TMEval rejected by enclave");
  }
  std::shared_lock lock(state_mu_);
  return EvalProgram(program, inputs, session_id, authorizing_query);
}

Result<int> Enclave::CompareCells(uint32_t cek_id, Slice cell_a, Slice cell_b) {
  ChargeTransition();
  stats_.calls.fetch_add(1, std::memory_order_relaxed);
  std::shared_lock lock(state_mu_);
  auto it = cek_table_.find(cek_id);
  if (it == cek_table_.end()) {
    return Status::KeyNotInEnclave("CEK " + std::to_string(cek_id) +
                                   " not installed in enclave");
  }
  Bytes plain_a, plain_b;
  AEDB_ASSIGN_OR_RETURN(plain_a, it->second->Decrypt(cell_a));
  AEDB_ASSIGN_OR_RETURN(plain_b, it->second->Decrypt(cell_b));
  size_t off = 0;
  Value va, vb;
  AEDB_ASSIGN_OR_RETURN(va, Value::Decode(plain_a, &off));
  off = 0;
  AEDB_ASSIGN_OR_RETURN(vb, Value::Decode(plain_b, &off));
  stats_.comparisons.fetch_add(1, std::memory_order_relaxed);
  // Index ordering needs a total order: NULLs sort first.
  if (va.is_null() && vb.is_null()) return 0;
  if (va.is_null()) return -1;
  if (vb.is_null()) return 1;
  return va.Compare(vb);
}

Result<std::vector<int>> Enclave::CompareCellsBatch(
    uint32_t cek_id, Slice probe, const std::vector<Slice>& cells) {
  ChargeTransition();
  stats_.calls.fetch_add(1, std::memory_order_relaxed);
  stats_.batch_evals.fetch_add(1, std::memory_order_relaxed);
  std::shared_lock lock(state_mu_);
  auto it = cek_table_.find(cek_id);
  if (it == cek_table_.end()) {
    return Status::KeyNotInEnclave("CEK " + std::to_string(cek_id) +
                                   " not installed in enclave");
  }
  Bytes plain_probe;
  AEDB_ASSIGN_OR_RETURN(plain_probe, it->second->Decrypt(probe));
  size_t off = 0;
  Value vp;
  AEDB_ASSIGN_OR_RETURN(vp, Value::Decode(plain_probe, &off));
  std::vector<int> out;
  out.reserve(cells.size());
  for (Slice cell : cells) {
    AEDB_RETURN_IF_ERROR(AEDB_FAULT_POINT("enclave/batch_partial_failure"));
    Bytes plain;
    AEDB_ASSIGN_OR_RETURN(plain, it->second->Decrypt(cell));
    off = 0;
    Value vc;
    AEDB_ASSIGN_OR_RETURN(vc, Value::Decode(plain, &off));
    // Every individual ordering disclosed is charged to the leak counter —
    // identical leak accounting to N scalar CompareCells calls.
    stats_.comparisons.fetch_add(1, std::memory_order_relaxed);
    stats_.batched_values.fetch_add(1, std::memory_order_relaxed);
    if (vp.is_null() && vc.is_null()) {
      out.push_back(0);
    } else if (vp.is_null()) {
      out.push_back(-1);
    } else if (vc.is_null()) {
      out.push_back(1);
    } else {
      int c;
      AEDB_ASSIGN_OR_RETURN(c, vp.Compare(vc));
      out.push_back(c);
    }
  }
  return out;
}

bool Enclave::HasCek(uint32_t cek_id) const {
  std::shared_lock lock(state_mu_);
  return cek_table_.count(cek_id) > 0;
}

void Enclave::ClearKeys() {
  std::unique_lock lock(state_mu_);
  cek_table_.clear();
  sessions_.clear();
}

// ---------------------------------------------------------------------------
// VbsPlatform

VbsPlatform::VbsPlatform(std::string boot_configuration,
                         uint32_t hypervisor_version)
    : hypervisor_version_(hypervisor_version) {
  // The TCG log is the TPM's measurement of the boot chain up to the
  // hypervisor; deterministic in the boot configuration so that a modified
  // boot chain yields a different log (and fails the HGS whitelist).
  Bytes payload;
  PutLengthPrefixed(&payload, Slice(std::string_view(boot_configuration)));
  PutU32(&payload, hypervisor_version);
  tcg_log_ = crypto::Sha256::Hash(payload);
  crypto::HmacDrbg drbg(crypto::SecureRandom(48),
                        Slice(std::string_view("vbs-host-signing-key")));
  host_key_ = crypto::GenerateRsaKey(1024, &drbg);
}

Result<std::unique_ptr<Enclave>> VbsPlatform::LoadEnclave(
    const EnclaveImage& image, const EnclaveConfig& config) {
  // Refuse to load a tampered or unsigned image.
  Status sig = crypto::Pkcs1Verify(image.author_public, image.BinaryHash(),
                                   image.author_signature);
  if (!sig.ok()) {
    return Status::SecurityError("enclave image signature invalid: " +
                                 sig.message());
  }
  return std::make_unique<Enclave>(image, config, this);
}

Bytes VbsPlatform::SignReport(Slice report_bytes) const {
  return crypto::Pkcs1Sign(host_key_, report_bytes);
}

}  // namespace aedb::enclave
