#ifndef AEDB_ENCLAVE_ENCLAVE_H_
#define AEDB_ENCLAVE_ENCLAVE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "crypto/cell_codec.h"
#include "crypto/dh.h"
#include "crypto/rsa.h"
#include "enclave/nonce_tracker.h"
#include "es/evaluator.h"
#include "es/program.h"

namespace aedb::enclave {

class VbsPlatform;

/// \brief A signed, loadable enclave binary (the "specially compiled dll",
/// paper §2.1). The binary hash stands in for the code measurement; the
/// author signature is the "specially provisioned signing key" of §4.2.
struct EnclaveImage {
  std::string name;
  uint32_t version = 1;
  crypto::RsaPublicKey author_public;
  Bytes author_signature;  // over BinaryHash()

  /// Measurement of the code identity: SHA-256 over name and version.
  Bytes BinaryHash() const;
  /// Author identity: SHA-256 of the author's public key.
  Bytes AuthorId() const;

  /// Builds and signs the standard AE expression-services enclave image.
  static EnclaveImage MakeEsImage(uint32_t version,
                                  const crypto::RsaPrivateKey& author_key);
};

/// The enclave report (paper §4.2): attributes of the loaded enclave measured
/// by the platform, including the hash of the enclave's run-time public key.
struct EnclaveReport {
  Bytes binary_hash;
  Bytes author_id;
  uint32_t enclave_version = 0;
  uint32_t platform_version = 0;
  Bytes enclave_public_key_hash;

  Bytes Serialize() const;
  static Result<EnclaveReport> Deserialize(Slice in);
};

/// Everything the server relays to the client after invoking attestation:
/// the platform-signed report, the enclave public key (whose hash is in the
/// report), and the enclave's DH public key signed by the enclave key —
/// the DH exchange is folded into attestation to save round trips (§4.2).
struct AttestationResponse {
  Bytes report_bytes;        // EnclaveReport::Serialize()
  Bytes report_signature;    // host (hypervisor) signing key over report_bytes
  Bytes enclave_public_key;  // RsaPublicKey::Serialize()
  Bytes enclave_dh_public;   // 256-byte group element
  Bytes dh_signature;        // enclave key over (enclave_dh || client_dh)
  uint64_t session_id = 0;
};

/// Tuning knobs for the simulated TEE.
struct EnclaveConfig {
  /// Cost charged (busy-wait) on every crossing of the host/enclave boundary,
  /// modeling the VBS call-gate overhead the paper's §4.6 optimizations
  /// amortize. 0 disables the charge (unit tests).
  uint64_t transition_cost_ns = 0;
  /// Size of the RSA key generated at enclave load. 1024 keeps simulation
  /// startup fast; production would use 2048+.
  size_t rsa_key_bits = 1024;
};

/// Counters exposed for benchmarks and leakage tests.
struct EnclaveStats {
  std::atomic<uint64_t> calls{0};
  std::atomic<uint64_t> evals{0};
  std::atomic<uint64_t> comparisons{0};
  std::atomic<uint64_t> transitions{0};
  /// Batched call-gate entries (EvalRegisteredBatch / CompareCellsBatch)...
  std::atomic<uint64_t> batch_evals{0};
  /// ...and the total rows/cells they carried across the boundary.
  std::atomic<uint64_t> batched_values{0};

  /// Derived amortization gauge: encrypted values processed (evals +
  /// comparisons) per boundary crossing. Row-at-a-time execution pins this
  /// near 1; batching is what pushes it up (paper §4.6).
  double ValuesPerTransition() const {
    uint64_t t = transitions.load(std::memory_order_relaxed);
    if (t == 0) return 0.0;
    return static_cast<double>(evals.load(std::memory_order_relaxed) +
                               comparisons.load(std::memory_order_relaxed)) /
           static_cast<double>(t);
  }
};

/// \brief The AE enclave: trusted code and state living inside the simulated
/// TEE. Host code interacts with it only through the public entry points
/// below (the call gate); enclave memory — CEK material, session secrets —
/// is private state with no accessors, so the "host" cannot read it by
/// construction.
///
/// Concurrency follows the paper §4.6: state changes (key installs, session
/// creation, expression registration) are serialized through a single mutex
/// ("handled by a single enclave thread"); Eval paths take shared ownership.
class Enclave {
 public:
  /// Use VbsPlatform::LoadEnclave; constructor is public for the platform.
  Enclave(const EnclaveImage& image, const EnclaveConfig& config,
          VbsPlatform* platform);

  Enclave(const Enclave&) = delete;
  Enclave& operator=(const Enclave&) = delete;

  // ----- attestation & secure channel -----

  /// Creates a session keyed by a fresh DH exchange with the client and
  /// returns the attestation material. Fails on degenerate client keys.
  Result<AttestationResponse> CreateSession(Slice client_dh_public);

  /// Installs CEKs sent over the session's secure channel. `sealed` is a
  /// session-key AEAD cell whose plaintext is:
  ///   nonce(u64) || count(u32) || { cek_id(u32) || key(len-prefixed) }*
  /// The nonce inside the sealed payload must match `nonce` and pass the
  /// session's replay tracker.
  Status InstallCeks(uint64_t session_id, uint64_t nonce, Slice sealed);

  /// Records a client authorization for an encryption-producing statement:
  /// `sealed` decrypts to nonce(u64) || SHA256(query_text). Later Eval calls
  /// that produce ciphertext must present matching query text (§3.2).
  Status AuthorizeEncryption(uint64_t session_id, uint64_t nonce, Slice sealed);

  // ----- expression services -----

  /// Registers a serialized ES program; returns the handle used by later
  /// EvalRegistered calls ("an expression is registered once in the enclave
  /// and invoked subsequently using the handle", §3).
  Result<uint64_t> RegisterExpression(Slice program_bytes);

  /// Evaluates a registered expression. For programs that produce ciphertext
  /// the server must pass the authorizing session and the raw query text; the
  /// enclave hashes the text and checks the client authorized it.
  Result<std::vector<types::Value>> EvalRegistered(
      uint64_t handle, const std::vector<types::Value>& inputs,
      uint64_t session_id = 0, std::string_view authorizing_query = {});

  /// Same as EvalRegistered but without charging a call-gate transition:
  /// used by resident enclave worker threads (EnclaveWorkerPool), which are
  /// already inside the enclave while processing the queue.
  Result<std::vector<types::Value>> EvalRegisteredResident(
      uint64_t handle, const std::vector<types::Value>& inputs,
      uint64_t session_id = 0, std::string_view authorizing_query = {});

  /// Batched entry point: evaluates a registered expression over every row
  /// of `batch` (one inputs vector per row) while charging a SINGLE call-gate
  /// transition for the whole batch — the §4.6 amortization. Rows are
  /// evaluated in order with the exact per-row semantics of EvalRegistered,
  /// including the per-row authorization check for ciphertext-producing
  /// programs; the first row that fails aborts the batch with that row's
  /// error, matching what a row-at-a-time loop would have surfaced.
  Result<std::vector<std::vector<types::Value>>> EvalRegisteredBatch(
      uint64_t handle, const std::vector<std::vector<types::Value>>& batch,
      uint64_t session_id = 0, std::string_view authorizing_query = {});

  /// Transition-free variant of EvalRegisteredBatch for resident enclave
  /// worker threads (EnclaveWorkerPool::SubmitEvalBatch).
  Result<std::vector<std::vector<types::Value>>> EvalRegisteredBatchResident(
      uint64_t handle, const std::vector<std::vector<types::Value>>& batch,
      uint64_t session_id = 0, std::string_view authorizing_query = {});

  /// One-shot evaluation of a serialized program (used by TMEval stubs).
  Result<std::vector<types::Value>> Eval(
      Slice program_bytes, const std::vector<types::Value>& inputs,
      uint64_t session_id = 0, std::string_view authorizing_query = {});

  /// Fast path for B+-tree maintenance: three-way comparison of two
  /// encrypted cells under one CEK (paper §3.1.2 / Figure 4). Returns the
  /// plaintext ordering in the clear — the authorized range-index leak.
  Result<int> CompareCells(uint32_t cek_id, Slice cell_a, Slice cell_b);

  /// Batched comparison for index seeks: decrypts `probe` once and compares
  /// it against every cell in `cells`, charging ONE transition for the whole
  /// node. Returns cmp(probe, cells[i]) for each i; each comparison is
  /// individually accounted in the leak counter, so the operational leak is
  /// byte-for-byte what N CompareCells calls would have disclosed.
  Result<std::vector<int>> CompareCellsBatch(uint32_t cek_id, Slice probe,
                                             const std::vector<Slice>& cells);

  /// True if the CEK is present (used by recovery to decide whether an
  /// encrypted-index undo can proceed, §4.5).
  bool HasCek(uint32_t cek_id) const;

  /// Drops all installed CEKs (simulates enclave restart / crash recovery
  /// where keys are gone until a client reconnects).
  void ClearKeys();

  const EnclaveReport& report() const { return report_; }
  const EnclaveStats& stats() const { return stats_; }
  const EnclaveConfig& config() const { return config_; }

  /// Charges one host→enclave transition (exposed so the worker-thread pool
  /// can charge wake-ups; individual queue items processed by a spinning
  /// worker cross no boundary).
  void ChargeTransition();

 private:
  friend class EnclaveCellCrypto;

  struct Session {
    Bytes shared_secret;
    std::unique_ptr<crypto::CellCodec> channel;
    NonceTracker nonces;
    std::set<Bytes> authorized_query_hashes;
  };

  Result<Session*> FindSession(uint64_t session_id);
  Result<Bytes> OpenSealed(Session* session, uint64_t nonce, Slice sealed);
  Result<std::vector<types::Value>> EvalProgram(
      const es::EsProgram& program, const std::vector<types::Value>& inputs,
      uint64_t session_id, std::string_view authorizing_query);

  // --- trusted state (never exposed) ---
  EnclaveConfig config_;
  VbsPlatform* platform_;
  EnclaveReport report_;
  crypto::RsaPrivateKey enclave_key_;

  // Writers (session creation, key install, registration) are serialized
  // exclusively; Eval paths hold shared locks and scale across enclave
  // threads (paper §4.6: "the other threads only read the current state").
  mutable std::shared_mutex state_mu_;
  std::map<uint64_t, Session> sessions_;
  uint64_t next_session_id_ = 1;
  std::map<uint32_t, std::unique_ptr<crypto::CellCodec>> cek_table_;
  std::map<uint64_t, es::EsProgram> registered_;
  uint64_t next_handle_ = 1;

  EnclaveStats stats_;
};

/// \brief Simulated Windows VBS platform (Hyper-V): owns the host signing
/// key and the TPM boot measurement (TCG log), verifies enclave images at
/// load, and signs enclave reports. Trusted component for VBS enclaves
/// (paper §2.1).
class VbsPlatform {
 public:
  /// `boot_configuration` determines the TCG log; HGS whitelists known-good
  /// configurations. `hypervisor_version` lands in enclave reports.
  explicit VbsPlatform(std::string boot_configuration,
                       uint32_t hypervisor_version = 1);

  /// Verifies the image's author signature and instantiates the enclave.
  Result<std::unique_ptr<Enclave>> LoadEnclave(const EnclaveImage& image,
                                               const EnclaveConfig& config);

  /// TPM measurement of the boot sequence up to the hypervisor (§4.2).
  const Bytes& tcg_log() const { return tcg_log_; }
  const crypto::RsaPublicKey& host_signing_public() const {
    return host_key_.pub;
  }
  uint32_t hypervisor_version() const { return hypervisor_version_; }

  /// Signs an enclave report with the host signing key.
  Bytes SignReport(Slice report_bytes) const;

 private:
  Bytes tcg_log_;
  uint32_t hypervisor_version_;
  crypto::RsaPrivateKey host_key_;
};

}  // namespace aedb::enclave

#endif  // AEDB_ENCLAVE_ENCLAVE_H_
