#ifndef AEDB_ENCLAVE_NONCE_TRACKER_H_
#define AEDB_ENCLAVE_NONCE_TRACKER_H_

#include <cstdint>
#include <map>

#include "common/status.h"

namespace aedb::enclave {

/// \brief Replay protection for driver→enclave messages (paper §4.2).
///
/// The driver generates nonces from a counter, but messages can arrive out of
/// order (both the client application and the server are multi-threaded), so
/// the simple "greater than the last nonce" strawman is wrong. Instead the
/// enclave tracks *all* historical nonces, encoded as compact inclusive
/// ranges: since the stream is near-sequential with local reorderings, the
/// encoding stays tiny (typically one range).
class NonceTracker {
 public:
  /// Rejects with ReplayDetected if `nonce` was seen before; otherwise
  /// records it, merging adjacent ranges.
  Status CheckAndRecord(uint64_t nonce);

  bool Seen(uint64_t nonce) const;

  /// Forgets every recorded nonce (fault injection: an enclave restart that
  /// loses replay state). After Reset(), previously seen nonces pass again.
  void Reset() {
    ranges_.clear();
    recorded_ = 0;
  }

  /// Number of stored ranges — the compactness measure.
  size_t range_count() const { return ranges_.size(); }
  uint64_t recorded_count() const { return recorded_; }

 private:
  // start -> end, inclusive, non-overlapping, non-adjacent.
  std::map<uint64_t, uint64_t> ranges_;
  uint64_t recorded_ = 0;
};

}  // namespace aedb::enclave

#endif  // AEDB_ENCLAVE_NONCE_TRACKER_H_
