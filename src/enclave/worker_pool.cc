#include "enclave/worker_pool.h"

#include <chrono>

namespace aedb::enclave {

EnclaveWorkerPool::EnclaveWorkerPool(Enclave* enclave, Options options)
    : enclave_(enclave), options_(options) {
  threads_.reserve(options_.num_threads);
  for (int i = 0; i < options_.num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

EnclaveWorkerPool::~EnclaveWorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

Result<std::vector<types::Value>> EnclaveWorkerPool::SubmitEval(
    uint64_t handle, std::vector<types::Value> inputs, uint64_t session_id,
    std::string authorizing_query) {
  auto item = std::make_unique<WorkItem>();
  item->handle = handle;
  item->inputs = std::move(inputs);
  item->session_id = session_id;
  item->authorizing_query = std::move(authorizing_query);
  std::future<Result<std::vector<types::Value>>> future =
      item->promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return Status::FailedPrecondition("worker pool shut down");
    queue_.push_back(std::move(item));
  }
  cv_.notify_one();
  return future.get();
}

Result<std::vector<std::vector<types::Value>>>
EnclaveWorkerPool::SubmitEvalBatch(uint64_t handle,
                                   std::vector<std::vector<types::Value>> batch,
                                   uint64_t session_id,
                                   std::string authorizing_query) {
  auto item = std::make_unique<WorkItem>();
  item->handle = handle;
  item->batch = std::move(batch);
  item->is_batch = true;
  item->session_id = session_id;
  item->authorizing_query = std::move(authorizing_query);
  std::future<Result<std::vector<std::vector<types::Value>>>> future =
      item->batch_promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return Status::FailedPrecondition("worker pool shut down");
    queue_.push_back(std::move(item));
  }
  cv_.notify_one();
  return future.get();
}

bool EnclaveWorkerPool::PopItem(std::unique_ptr<WorkItem>* item) {
  std::lock_guard<std::mutex> lock(mu_);
  if (queue_.empty()) return false;
  *item = std::move(queue_.front());
  queue_.pop_front();
  return true;
}

void EnclaveWorkerPool::WorkerLoop() {
  // The first entry into the enclave is a transition.
  enclave_->ChargeTransition();
  wakeups_.fetch_add(1, std::memory_order_relaxed);
  for (;;) {
    std::unique_ptr<WorkItem> item;
    if (!PopItem(&item)) {
      // Queue drained: spin-poll before exiting the enclave (§4.6).
      auto deadline = std::chrono::steady_clock::now() +
                      std::chrono::microseconds(options_.spin_duration_us);
      bool got = false;
      while (std::chrono::steady_clock::now() < deadline) {
        if (PopItem(&item)) {
          got = true;
          break;
        }
        std::this_thread::yield();
      }
      if (!got) {
        // Exit the enclave and sleep; waking up pays a fresh transition.
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
        if (queue_.empty()) {
          if (shutdown_) return;
          continue;
        }
        item = std::move(queue_.front());
        queue_.pop_front();
        lock.unlock();
        wakeups_.fetch_add(1, std::memory_order_relaxed);
        enclave_->ChargeTransition();
      }
    }
    if (item->is_batch) {
      item->batch_promise.set_value(enclave_->EvalRegisteredBatchResident(
          item->handle, item->batch, item->session_id,
          item->authorizing_query));
    } else {
      item->promise.set_value(enclave_->EvalRegisteredResident(
          item->handle, item->inputs, item->session_id,
          item->authorizing_query));
    }
  }
}

}  // namespace aedb::enclave
