#include "enclave/worker_pool.h"

#include <chrono>

#include "fault/fault.h"

namespace aedb::enclave {

namespace {
bool ItemExpired(const EnclaveWorkerPool::Clock::time_point deadline,
                 EnclaveWorkerPool::Clock::time_point now) {
  return deadline != EnclaveWorkerPool::Clock::time_point::max() &&
         now >= deadline;
}
}  // namespace

EnclaveWorkerPool::EnclaveWorkerPool(Enclave* enclave, Options options)
    : enclave_(enclave), options_(options) {
  threads_.reserve(options_.num_threads);
  for (int i = 0; i < options_.num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

EnclaveWorkerPool::~EnclaveWorkerPool() {
  std::deque<std::unique_ptr<WorkItem>> orphaned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    orphaned.swap(queue_);
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
  for (auto& item : orphaned) {
    FailItem(item.get(), Status::FailedPrecondition("worker pool shut down"));
  }
}

void EnclaveWorkerPool::FailItem(WorkItem* item, Status st) {
  if (item->is_batch) {
    item->batch_promise.set_value(st);
  } else {
    item->promise.set_value(st);
  }
}

size_t EnclaveWorkerPool::ShedExpiredLocked(Clock::time_point now) {
  size_t shed = 0;
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (ItemExpired((*it)->deadline, now)) {
      FailItem(it->get(), Status::DeadlineExceeded(
                              "morsel shed: query deadline exceeded while "
                              "queued for the enclave"));
      it = queue_.erase(it);
      ++shed;
    } else {
      ++it;
    }
  }
  expired_dropped_.fetch_add(shed, std::memory_order_relaxed);
  return shed;
}

Status EnclaveWorkerPool::Enqueue(std::unique_ptr<WorkItem> item) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return Status::FailedPrecondition("worker pool shut down");
    bool full = options_.max_queue_depth > 0 &&
                queue_.size() >= options_.max_queue_depth;
    if (full) {
      // Shed-oldest-expired: queued morsels whose query already gave up are
      // dead weight — complete them as kDeadlineExceeded to make room.
      if (ShedExpiredLocked(Clock::now()) > 0) {
        full = queue_.size() >= options_.max_queue_depth;
      }
    }
    fault::FaultSpec spec;
    if (full || AEDB_FAULT_FIRED("pool/queue_full", &spec)) {
      overload_rejected_.fetch_add(1, std::memory_order_relaxed);
      return Status::Overloaded("enclave worker queue full");
    }
    queue_.push_back(std::move(item));
    if (queue_.size() > queue_highwater_.load(std::memory_order_relaxed)) {
      queue_highwater_.store(queue_.size(), std::memory_order_relaxed);
    }
  }
  cv_.notify_one();
  return Status::OK();
}

Result<std::vector<types::Value>> EnclaveWorkerPool::SubmitEval(
    uint64_t handle, std::vector<types::Value> inputs, uint64_t session_id,
    std::string authorizing_query, Clock::time_point deadline) {
  auto item = std::make_unique<WorkItem>();
  item->handle = handle;
  item->inputs = std::move(inputs);
  item->session_id = session_id;
  item->authorizing_query = std::move(authorizing_query);
  item->deadline = deadline;
  std::future<Result<std::vector<types::Value>>> future =
      item->promise.get_future();
  AEDB_RETURN_IF_ERROR(Enqueue(std::move(item)));
  return future.get();
}

Result<std::vector<std::vector<types::Value>>>
EnclaveWorkerPool::SubmitEvalBatch(uint64_t handle,
                                   std::vector<std::vector<types::Value>> batch,
                                   uint64_t session_id,
                                   std::string authorizing_query,
                                   Clock::time_point deadline) {
  auto item = std::make_unique<WorkItem>();
  item->handle = handle;
  item->batch = std::move(batch);
  item->is_batch = true;
  item->session_id = session_id;
  item->authorizing_query = std::move(authorizing_query);
  item->deadline = deadline;
  std::future<Result<std::vector<std::vector<types::Value>>>> future =
      item->batch_promise.get_future();
  AEDB_RETURN_IF_ERROR(Enqueue(std::move(item)));
  return future.get();
}

bool EnclaveWorkerPool::PopItem(std::unique_ptr<WorkItem>* item) {
  std::lock_guard<std::mutex> lock(mu_);
  if (queue_.empty()) return false;
  *item = std::move(queue_.front());
  queue_.pop_front();
  return true;
}

void EnclaveWorkerPool::WorkerLoop() {
  // The first entry into the enclave is a transition.
  enclave_->ChargeTransition();
  wakeups_.fetch_add(1, std::memory_order_relaxed);
  for (;;) {
    std::unique_ptr<WorkItem> item;
    if (!PopItem(&item)) {
      // Queue drained: spin-poll before exiting the enclave (§4.6).
      auto deadline = std::chrono::steady_clock::now() +
                      std::chrono::microseconds(options_.spin_duration_us);
      bool got = false;
      while (std::chrono::steady_clock::now() < deadline) {
        if (PopItem(&item)) {
          got = true;
          break;
        }
        std::this_thread::yield();
      }
      if (!got) {
        // Exit the enclave and sleep; waking up pays a fresh transition.
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
        // The worker is *outside* the enclave here: drop already-expired
        // morsels before paying the re-entry transition. If only expired
        // work queued up, go back to sleep without ever transitioning.
        auto now = Clock::now();
        while (!queue_.empty() && ItemExpired(queue_.front()->deadline, now)) {
          auto dead = std::move(queue_.front());
          queue_.pop_front();
          lock.unlock();
          expired_dropped_.fetch_add(1, std::memory_order_relaxed);
          FailItem(dead.get(),
                   Status::DeadlineExceeded(
                       "morsel dropped: query deadline exceeded before "
                       "enclave re-entry"));
          lock.lock();
        }
        if (queue_.empty()) {
          if (shutdown_) return;
          continue;
        }
        item = std::move(queue_.front());
        queue_.pop_front();
        lock.unlock();
        wakeups_.fetch_add(1, std::memory_order_relaxed);
        enclave_->ChargeTransition();
      }
    }
    // Test hook: hold this worker inside the enclave so submissions back up
    // deterministically (spec.arg = stall in milliseconds).
    fault::FaultSpec stall;
    if (AEDB_FAULT_FIRED("pool/worker_stall", &stall)) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(stall.arg != 0 ? stall.arg : 100));
    }
    // A resident worker still skips the eval for expired work: the
    // transition is already amortized, but the enclave-side compute isn't.
    if (ItemExpired(item->deadline, Clock::now())) {
      expired_dropped_.fetch_add(1, std::memory_order_relaxed);
      FailItem(item.get(), Status::DeadlineExceeded(
                               "morsel dropped: query deadline exceeded "
                               "before enclave eval"));
      continue;
    }
    if (item->is_batch) {
      item->batch_promise.set_value(enclave_->EvalRegisteredBatchResident(
          item->handle, item->batch, item->session_id,
          item->authorizing_query));
    } else {
      item->promise.set_value(enclave_->EvalRegisteredResident(
          item->handle, item->inputs, item->session_id,
          item->authorizing_query));
    }
  }
}

}  // namespace aedb::enclave
