#include "enclave/nonce_tracker.h"

namespace aedb::enclave {

bool NonceTracker::Seen(uint64_t nonce) const {
  auto it = ranges_.upper_bound(nonce);
  if (it == ranges_.begin()) return false;
  --it;
  return nonce >= it->first && nonce <= it->second;
}

Status NonceTracker::CheckAndRecord(uint64_t nonce) {
  if (Seen(nonce)) {
    return Status::ReplayDetected("nonce " + std::to_string(nonce) +
                                  " already used on this session");
  }
  // Find neighbors to merge with.
  auto next = ranges_.upper_bound(nonce);
  bool merge_prev = false, merge_next = false;
  auto prev = next;
  if (prev != ranges_.begin()) {
    --prev;
    if (nonce != 0 && prev->second == nonce - 1) merge_prev = true;
  }
  if (next != ranges_.end() && next->first == nonce + 1) merge_next = true;

  if (merge_prev && merge_next) {
    prev->second = next->second;
    ranges_.erase(next);
  } else if (merge_prev) {
    prev->second = nonce;
  } else if (merge_next) {
    uint64_t end = next->second;
    ranges_.erase(next);
    ranges_[nonce] = end;
  } else {
    ranges_[nonce] = nonce;
  }
  ++recorded_;
  return Status::OK();
}

}  // namespace aedb::enclave
