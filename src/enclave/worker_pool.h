#ifndef AEDB_ENCLAVE_WORKER_POOL_H_
#define AEDB_ENCLAVE_WORKER_POOL_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "enclave/enclave.h"

namespace aedb::enclave {

/// \brief Enclave worker threads with queue-based submission (paper §4.6).
///
/// Instead of calling the enclave synchronously — paying the call-gate cost
/// in the inner loop of query processing — host workers enqueue work items.
/// Enclave worker threads consume them; after draining the queue a worker
/// spins for `spin_duration_us` polling for more work before "exiting the
/// enclave" and sleeping. A heavily used enclave therefore stays resident
/// (no transition cost per item); an idle one releases its core.
///
/// Overload control: the queue is optionally bounded (`max_queue_depth`).
/// When full, already-expired queued morsels are shed first (their waiters
/// get kDeadlineExceeded); if the queue is still full the submission is
/// rejected with kOverloaded. Work items carry the submitting query's
/// deadline: a sleeping worker drops expired morsels *before* re-entering
/// the enclave, so expired work never pays a transition.
class EnclaveWorkerPool {
 public:
  using Clock = std::chrono::steady_clock;

  struct Options {
    int num_threads = 4;          // paper: 1 or 4 enclave threads
    uint64_t spin_duration_us = 50;
    /// Max queued (not yet picked up) work items; 0 = unbounded. Excess
    /// submissions are rejected with kOverloaded after shedding any expired
    /// queued items (shed-oldest-expired).
    size_t max_queue_depth = 0;
  };

  EnclaveWorkerPool(Enclave* enclave, Options options);
  ~EnclaveWorkerPool();

  EnclaveWorkerPool(const EnclaveWorkerPool&) = delete;
  EnclaveWorkerPool& operator=(const EnclaveWorkerPool&) = delete;

  /// Enqueues an EvalRegistered call; blocks until the result is ready.
  /// (Host workers in SQL block on the expression result anyway; the win is
  /// that the *enclave transition* is amortized, not the wait.)
  Result<std::vector<types::Value>> SubmitEval(
      uint64_t handle, std::vector<types::Value> inputs,
      uint64_t session_id = 0, std::string authorizing_query = {},
      Clock::time_point deadline = Clock::time_point::max());

  /// Enqueues one EvalRegisteredBatch call covering a whole morsel; the
  /// consuming worker stays resident, so an entire batch rides on (at most)
  /// one wake-up transition.
  Result<std::vector<std::vector<types::Value>>> SubmitEvalBatch(
      uint64_t handle, std::vector<std::vector<types::Value>> batch,
      uint64_t session_id = 0, std::string authorizing_query = {},
      Clock::time_point deadline = Clock::time_point::max());

  /// Number of times a worker had to re-enter the enclave after sleeping —
  /// the transitions actually paid.
  uint64_t wakeups() const { return wakeups_.load(std::memory_order_relaxed); }

  /// Deepest the submission queue ever got.
  uint64_t queue_highwater() const {
    return queue_highwater_.load(std::memory_order_relaxed);
  }
  /// Morsels dropped (typed kDeadlineExceeded) because their query deadline
  /// passed while queued — shed without an enclave transition or eval.
  uint64_t expired_dropped() const {
    return expired_dropped_.load(std::memory_order_relaxed);
  }
  /// Submissions rejected with kOverloaded because the queue was full.
  uint64_t overload_rejected() const {
    return overload_rejected_.load(std::memory_order_relaxed);
  }

 private:
  struct WorkItem {
    uint64_t handle;
    // Exactly one of `inputs` (scalar item) or `batch` is active.
    std::vector<types::Value> inputs;
    std::vector<std::vector<types::Value>> batch;
    bool is_batch = false;
    uint64_t session_id;
    std::string authorizing_query;
    Clock::time_point deadline = Clock::time_point::max();
    std::promise<Result<std::vector<types::Value>>> promise;
    std::promise<Result<std::vector<std::vector<types::Value>>>> batch_promise;
  };

  void WorkerLoop();
  bool PopItem(std::unique_ptr<WorkItem>* item);
  /// Fails the item's waiter with `st` (whichever promise is active).
  static void FailItem(WorkItem* item, Status st);
  /// Completes expired queued items with kDeadlineExceeded, oldest first.
  /// Returns how many were shed. Caller holds mu_.
  size_t ShedExpiredLocked(Clock::time_point now);
  /// Enqueues or rejects with kOverloaded; shared by both Submit paths.
  Status Enqueue(std::unique_ptr<WorkItem> item);

  Enclave* enclave_;
  Options options_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::unique_ptr<WorkItem>> queue_;
  bool shutdown_ = false;

  std::atomic<uint64_t> wakeups_{0};
  std::atomic<uint64_t> queue_highwater_{0};
  std::atomic<uint64_t> expired_dropped_{0};
  std::atomic<uint64_t> overload_rejected_{0};
  std::vector<std::thread> threads_;
};

}  // namespace aedb::enclave

#endif  // AEDB_ENCLAVE_WORKER_POOL_H_
