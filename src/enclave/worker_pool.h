#ifndef AEDB_ENCLAVE_WORKER_POOL_H_
#define AEDB_ENCLAVE_WORKER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "enclave/enclave.h"

namespace aedb::enclave {

/// \brief Enclave worker threads with queue-based submission (paper §4.6).
///
/// Instead of calling the enclave synchronously — paying the call-gate cost
/// in the inner loop of query processing — host workers enqueue work items.
/// Enclave worker threads consume them; after draining the queue a worker
/// spins for `spin_duration_us` polling for more work before "exiting the
/// enclave" and sleeping. A heavily used enclave therefore stays resident
/// (no transition cost per item); an idle one releases its core.
class EnclaveWorkerPool {
 public:
  struct Options {
    int num_threads = 4;          // paper: 1 or 4 enclave threads
    uint64_t spin_duration_us = 50;
  };

  EnclaveWorkerPool(Enclave* enclave, Options options);
  ~EnclaveWorkerPool();

  EnclaveWorkerPool(const EnclaveWorkerPool&) = delete;
  EnclaveWorkerPool& operator=(const EnclaveWorkerPool&) = delete;

  /// Enqueues an EvalRegistered call; blocks until the result is ready.
  /// (Host workers in SQL block on the expression result anyway; the win is
  /// that the *enclave transition* is amortized, not the wait.)
  Result<std::vector<types::Value>> SubmitEval(
      uint64_t handle, std::vector<types::Value> inputs,
      uint64_t session_id = 0, std::string authorizing_query = {});

  /// Enqueues one EvalRegisteredBatch call covering a whole morsel; the
  /// consuming worker stays resident, so an entire batch rides on (at most)
  /// one wake-up transition.
  Result<std::vector<std::vector<types::Value>>> SubmitEvalBatch(
      uint64_t handle, std::vector<std::vector<types::Value>> batch,
      uint64_t session_id = 0, std::string authorizing_query = {});

  /// Number of times a worker had to re-enter the enclave after sleeping —
  /// the transitions actually paid.
  uint64_t wakeups() const { return wakeups_.load(std::memory_order_relaxed); }

 private:
  struct WorkItem {
    uint64_t handle;
    // Exactly one of `inputs` (scalar item) or `batch` is active.
    std::vector<types::Value> inputs;
    std::vector<std::vector<types::Value>> batch;
    bool is_batch = false;
    uint64_t session_id;
    std::string authorizing_query;
    std::promise<Result<std::vector<types::Value>>> promise;
    std::promise<Result<std::vector<std::vector<types::Value>>>> batch_promise;
  };

  void WorkerLoop();
  bool PopItem(std::unique_ptr<WorkItem>* item);

  Enclave* enclave_;
  Options options_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::unique_ptr<WorkItem>> queue_;
  bool shutdown_ = false;

  std::atomic<uint64_t> wakeups_{0};
  std::vector<std::thread> threads_;
};

}  // namespace aedb::enclave

#endif  // AEDB_ENCLAVE_WORKER_POOL_H_
