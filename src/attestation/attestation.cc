#include "attestation/attestation.h"

#include "crypto/dh.h"
#include "crypto/drbg.h"
#include "crypto/sha256.h"

namespace aedb::attestation {

Bytes HealthCertificate::SignedPayload() const {
  Bytes payload;
  PutLengthPrefixed(&payload, Slice(std::string_view("aedb-hgs-health-cert-v1")));
  PutLengthPrefixed(&payload, host_signing_public);
  return payload;
}

Bytes HealthCertificate::Serialize() const {
  Bytes out;
  PutLengthPrefixed(&out, host_signing_public);
  PutLengthPrefixed(&out, hgs_signature);
  return out;
}

Result<HealthCertificate> HealthCertificate::Deserialize(Slice in) {
  HealthCertificate cert;
  size_t off = 0;
  AEDB_ASSIGN_OR_RETURN(cert.host_signing_public, GetLengthPrefixed(in, &off));
  AEDB_ASSIGN_OR_RETURN(cert.hgs_signature, GetLengthPrefixed(in, &off));
  return cert;
}

HostGuardianService::HostGuardianService() {
  crypto::HmacDrbg drbg(crypto::SecureRandom(48),
                        Slice(std::string_view("hgs-signing-key")));
  key_ = crypto::GenerateRsaKey(1024, &drbg);
}

HostGuardianService::HostGuardianService(Slice seed) {
  crypto::HmacDrbg drbg(seed, Slice(std::string_view("hgs-signing-key")));
  key_ = crypto::GenerateRsaKey(1024, &drbg);
}

void HostGuardianService::RegisterTcgLog(Slice tcg_log) {
  std::lock_guard<std::mutex> lock(mu_);
  whitelist_.insert(tcg_log.ToBytes());
}

Result<HealthCertificate> HostGuardianService::Attest(
    Slice tcg_log, const crypto::RsaPublicKey& host_signing_key) {
  std::lock_guard<std::mutex> lock(mu_);
  ++attest_calls_;
  if (whitelist_.count(tcg_log.ToBytes()) == 0) {
    return Status::SecurityError(
        "host TCG log not in HGS whitelist: boot chain not trusted");
  }
  HealthCertificate cert;
  cert.host_signing_public = host_signing_key.Serialize();
  cert.hgs_signature = crypto::Pkcs1Sign(key_, cert.SignedPayload());
  return cert;
}

Result<Bytes> AttestationVerifier::VerifyAndDeriveSecret(
    const HealthCertificate& cert,
    const enclave::AttestationResponse& response,
    const crypto::BigNum& client_dh_private, Slice client_dh_public) const {
  // Step 1: the health certificate chains to HGS.
  Status st =
      crypto::Pkcs1Verify(hgs_public_, cert.SignedPayload(), cert.hgs_signature);
  if (!st.ok()) {
    return Status::SecurityError("health certificate not signed by HGS: " +
                                 st.message());
  }
  crypto::RsaPublicKey host_key;
  AEDB_ASSIGN_OR_RETURN(host_key,
                        crypto::RsaPublicKey::Deserialize(cert.host_signing_public));

  // Step 2: the report chains to the (now trusted) host signing key.
  st = crypto::Pkcs1Verify(host_key, response.report_bytes,
                           response.report_signature);
  if (!st.ok()) {
    return Status::SecurityError("enclave report not signed by host: " +
                                 st.message());
  }
  enclave::EnclaveReport report;
  AEDB_ASSIGN_OR_RETURN(report,
                        enclave::EnclaveReport::Deserialize(response.report_bytes));

  // Step 3: enclave health — trusted author and acceptable versions. (Author
  // identity rather than binary hash: a hash pin "would break even with minor
  // modifications to the enclave code", §4.2.)
  if (!ConstantTimeEquals(report.author_id, policy_.trusted_author_id)) {
    return Status::SecurityError("enclave built by untrusted author");
  }
  if (report.enclave_version < policy_.min_enclave_version) {
    return Status::SecurityError("enclave version too old (security update?)");
  }
  if (report.platform_version < policy_.min_platform_version) {
    return Status::SecurityError("host hypervisor version too old");
  }

  // Step 4: key binding — the enclave public key matches the report hash and
  // signs both DH public keys (binding this exchange to this enclave).
  Bytes key_hash = crypto::Sha256::Hash(response.enclave_public_key);
  if (!ConstantTimeEquals(key_hash, report.enclave_public_key_hash)) {
    return Status::SecurityError("enclave public key does not match report");
  }
  crypto::RsaPublicKey enclave_key;
  AEDB_ASSIGN_OR_RETURN(
      enclave_key, crypto::RsaPublicKey::Deserialize(response.enclave_public_key));
  Bytes signed_blob = response.enclave_dh_public;
  signed_blob.insert(signed_blob.end(), client_dh_public.data(),
                     client_dh_public.data() + client_dh_public.size());
  st = crypto::Pkcs1Verify(enclave_key, signed_blob, response.dh_signature);
  if (!st.ok()) {
    return Status::SecurityError("enclave DH key signature invalid: " +
                                 st.message());
  }

  return crypto::DhComputeSharedSecret(client_dh_private,
                                       response.enclave_dh_public);
}

}  // namespace aedb::attestation
