#ifndef AEDB_ATTESTATION_ATTESTATION_H_
#define AEDB_ATTESTATION_ATTESTATION_H_

#include <mutex>
#include <set>
#include <string>

#include "common/bytes.h"
#include "common/result.h"
#include "crypto/bignum.h"
#include "crypto/rsa.h"
#include "enclave/enclave.h"

namespace aedb::attestation {

/// A health certificate issued by HGS for a host whose TCG log matched the
/// whitelist. It binds the host (hypervisor) signing key, and is itself
/// signed by the HGS signing key (paper §4.2).
struct HealthCertificate {
  Bytes host_signing_public;  // serialized RsaPublicKey
  Bytes hgs_signature;        // over SignedPayload()

  Bytes SignedPayload() const;
  Bytes Serialize() const;
  static Result<HealthCertificate> Deserialize(Slice in);
};

/// \brief Simulated Host Guardian Service: the trusted attestation service.
///
/// In an offline step, the TCG log of each machine allowed to host SQL is
/// registered in the whitelist. At attestation time the host submits its
/// current TCG log and host signing key; on a whitelist match HGS returns a
/// signed health certificate.
class HostGuardianService {
 public:
  HostGuardianService();
  /// Seeded variant: derives the signing key deterministically from `seed`.
  /// Lets a restarted server process present the same HGS identity, so a
  /// client that pinned the HGS public key across a crash can re-verify the
  /// attestation chain without re-provisioning (the crash-torture setup).
  explicit HostGuardianService(Slice seed);

  /// Offline registration of a known-good boot measurement.
  void RegisterTcgLog(Slice tcg_log);

  /// Issues a health certificate, or SecurityError if the log is unknown.
  Result<HealthCertificate> Attest(Slice tcg_log,
                                   const crypto::RsaPublicKey& host_signing_key);

  /// The HGS signing key ("all HGS APIs are exposed using http(s)"): clients
  /// query this to anchor the verification chain.
  const crypto::RsaPublicKey& signing_public() const { return key_.pub; }

  int64_t attest_calls() const { return attest_calls_; }

 private:
  crypto::RsaPrivateKey key_;
  std::mutex mu_;
  std::set<Bytes> whitelist_;
  int64_t attest_calls_ = 0;
};

/// Client-side policy for judging enclave health (paper §4.2 step 3: check
/// the signing key used to build the enclave, and version numbers so a
/// security update can deprecate old enclaves).
struct EnclavePolicy {
  Bytes trusted_author_id;            // SHA-256 of the author public key
  uint32_t min_enclave_version = 1;
  uint32_t min_platform_version = 1;
};

/// \brief The driver-side verification chain (paper §4.2):
///   1. health certificate is signed by the HGS signing key;
///   2. the enclave report is signed by the host signing key from the cert;
///   3. the enclave is healthy (trusted author, acceptable versions);
///   4. the enclave public key matches the hash in the report, and the DH
///      public keys are signed by the enclave key.
/// On success the client derives the shared secret and can release CEKs.
class AttestationVerifier {
 public:
  AttestationVerifier(crypto::RsaPublicKey hgs_public, EnclavePolicy policy)
      : hgs_public_(std::move(hgs_public)), policy_(std::move(policy)) {}

  /// Runs the full chain and returns the 32-byte shared session secret.
  Result<Bytes> VerifyAndDeriveSecret(
      const HealthCertificate& cert,
      const enclave::AttestationResponse& response,
      const crypto::BigNum& client_dh_private, Slice client_dh_public) const;

 private:
  crypto::RsaPublicKey hgs_public_;
  EnclavePolicy policy_;
};

}  // namespace aedb::attestation

#endif  // AEDB_ATTESTATION_ATTESTATION_H_
