#ifndef AEDB_NET_SOCKET_TRANSPORT_H_
#define AEDB_NET_SOCKET_TRANSPORT_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>

#include "client/transport.h"
#include "net/protocol.h"

namespace aedb::net {

/// \brief client::Transport over one TCP connection speaking the aedb wire
/// protocol.
///
/// Connect() performs the handshake; afterwards every Transport call is one
/// synchronous frame round trip. Calls are serialized on an internal mutex
/// (one outstanding request per connection, like a TDS session); drivers
/// wanting parallelism open one transport per connection, which is exactly
/// how the TPC-C loopback harness provisions its terminals.
class SocketTransport : public client::Transport {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    uint16_t port = 0;
    uint32_t timeout_ms = 30'000;
    uint32_t max_payload = kDefaultMaxPayload;
    std::string client_name = "aedb-driver";
  };

  /// Connects and handshakes; fails with a clean Status on refused
  /// connections, version mismatch, or handshake timeouts.
  static Result<std::unique_ptr<SocketTransport>> Connect(
      const Options& options);

  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  /// Server-allocated connection id from the handshake.
  uint64_t connection_id() const { return connection_id_; }

  /// Round-trip a Ping frame (health check / latency probe).
  Status Ping();

  // ----- client::Transport -----
  /// False once the stream is poisoned (any send/recv/decode failure); the
  /// driver's reconnect path swaps in a fresh transport.
  bool healthy() const override;
  /// Stamps the driver's retry attempt onto subsequent Query/QueryNamed
  /// frames so the server's retries_seen counter sees recovery traffic.
  void set_attempt(uint32_t attempt) override { attempt_ = attempt; }
  /// Stamps the query's remaining deadline budget onto subsequent
  /// Query/QueryNamed frames; the server turns it into a QueryContext.
  void set_deadline(uint32_t remaining_ms) override {
    deadline_ms_ = remaining_ms;
  }
  Result<uint64_t> BeginTransaction() override;
  Status CommitTransaction(uint64_t txn) override;
  Status RollbackTransaction(uint64_t txn) override;

  Status ExecuteDdl(const std::string& sql, uint64_t session_id) override;
  Result<sql::ResultSet> Execute(const std::string& sql,
                                 const std::vector<types::Value>& params,
                                 uint64_t txn, uint64_t session_id) override;
  Result<sql::ResultSet> ExecuteNamed(const std::string& sql,
                                      const client::NamedParams& params,
                                      uint64_t txn,
                                      uint64_t session_id) override;

  Result<server::DescribeResult> DescribeParameterEncryption(
      const std::string& sql, Slice client_dh_public) override;
  Result<server::DescribeResult> Attest(Slice client_dh_public) override;

  /// Shard count learned from the handshake (1 from a pre-sharding server).
  uint32_t shard_count() const override { return shard_count_; }
  Result<server::DescribeResult> AttestShard(uint32_t shard,
                                             Slice client_dh_public) override;
  Status ForwardKeysToShard(uint32_t shard, uint64_t session_id,
                            uint64_t nonce, Slice sealed) override;
  Status ForwardAuthorizationToShard(uint32_t shard, uint64_t session_id,
                                     uint64_t nonce, Slice sealed) override;
  Status ExecuteDdlOnShard(uint32_t shard, const std::string& sql,
                           uint64_t session_id) override;

  Result<server::KeyDescription> GetKeyDescription(uint32_t cek_id) override;
  Result<types::EncryptionType> ColumnEncryption(
      const std::string& table, const std::string& column) override;
  Result<keys::CmkInfo> GetCmk(const std::string& name) override;
  Result<uint32_t> CekIdByName(const std::string& name) override;

  Status ForwardKeysToEnclave(uint64_t session_id, uint64_t nonce,
                              Slice sealed) override;
  Status ForwardEncryptionAuthorization(uint64_t session_id, uint64_t nonce,
                                        Slice sealed) override;

  Status AlterColumnMetadataForClientTool(
      const std::string& table, const std::string& column,
      const sql::EncryptionSpec& enc) override;

 private:
  explicit SocketTransport(int fd, Options options);

  struct Response {
    MsgType type;
    Bytes payload;
  };

  /// Sends one frame and reads the response frame. kError responses decode
  /// into their Status; anything but `expected` is a protocol error.
  Result<Bytes> RoundTrip(MsgType request, Slice payload, MsgType expected);
  Result<Response> RoundTripRaw(MsgType request, Slice payload);
  Status SendStatusRequest(MsgType request, Slice payload);

  mutable std::mutex mu_;
  int fd_;
  Options options_;
  uint64_t connection_id_ = 0;
  uint32_t shard_count_ = 1;
  std::atomic<uint32_t> attempt_{0};
  std::atomic<uint32_t> deadline_ms_{0};
  /// A transport whose stream broke stays broken (no silent resync).
  Status poisoned_ = Status::OK();
};

}  // namespace aedb::net

#endif  // AEDB_NET_SOCKET_TRANSPORT_H_
