#ifndef AEDB_NET_SERVER_H_
#define AEDB_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/protocol.h"
#include "net/reactor/connection.h"
#include "net/reactor/exec_pool.h"
#include "server/database.h"

namespace aedb::net {

struct ServerConfig {
  std::string bind_address = "127.0.0.1";
  /// 0 = pick an ephemeral port; the bound port is available from port()
  /// after Start() (tests and the loopback bench rely on this).
  uint16_t port = 0;
  int backlog = 64;
  /// Mid-frame stall bound: a client that goes silent inside a frame is
  /// disconnected after this long. Costs a timer-sweep check, never a
  /// thread (mid-frame disconnect robustness).
  uint32_t read_timeout_ms = 30'000;
  /// Zero-progress flush bound: a peer that accepts no response bytes for
  /// this long is presumed dead.
  uint32_t write_timeout_ms = 30'000;
  /// Frames claiming a larger payload are rejected before allocation.
  uint32_t max_payload = kDefaultMaxPayload;
  /// Cap on concurrently served connections (0 = unlimited). Excess accepts
  /// get a typed kOverloaded error frame and an immediate close instead of
  /// a silent accept-and-starve; see connections_rejected.
  uint32_t max_connections = 0;
  /// Retry-after hint (milliseconds) carried by connection rejections.
  uint32_t overload_retry_after_ms = 20;

  // ----- event-driven I/O subsystem -----

  /// epoll event-loop threads. One is right for most hosts (the loops only
  /// shuffle bytes; execution happens on the worker pool); connections are
  /// assigned round-robin when more than one.
  uint32_t io_threads = 1;
  /// Base execution workers consuming the run queue (Database::Execute,
  /// attestation, DDL — everything that may block lives here).
  uint32_t exec_threads = 4;
  /// Elastic ceiling for the worker pool. Workers parked in lock waits must
  /// not starve the request that would release them (often the lock
  /// holder's own next statement), so the pool grows up to this bound
  /// before the run queue starts shedding.
  uint32_t max_exec_threads = 32;
  /// Bound on decoded-but-not-yet-executing requests. A full queue answers
  /// with a typed kOverloaded frame straight from the event loop.
  uint32_t run_queue_depth = 512;
  /// Per-connection cap on buffered unsent response bytes; a reader slower
  /// than this is disconnected (slow_reader_disconnects). 0 = auto
  /// (max_payload + 1 MiB, i.e. "one full response plus change").
  size_t write_buffer_cap = 0;
  /// Reap connections idle (between frames) longer than this. 0 = never:
  /// idle pools are legitimate, the default serves them for free.
  uint32_t idle_timeout_ms = 0;
  /// A connection must complete its handshake within this bound or it is
  /// reaped (pre-handshake sockets are the cheapest thing to hoard).
  uint32_t handshake_timeout_ms = 30'000;
};

/// Per-server counters (monotonic; read with relaxed ordering — use
/// SnapshotStats() for a single coherent read).
struct ServerStats {
  std::atomic<uint64_t> connections_accepted{0};
  std::atomic<uint64_t> connections_active{0};
  std::atomic<uint64_t> frames_in{0};
  std::atomic<uint64_t> frames_out{0};
  std::atomic<uint64_t> bytes_in{0};
  std::atomic<uint64_t> bytes_out{0};
  /// Framing-level failures (bad magic/version/length, truncation,
  /// mid-frame EOF or stall).
  std::atomic<uint64_t> protocol_errors{0};
  /// Requests that executed but returned a non-OK Status.
  std::atomic<uint64_t> request_errors{0};
  /// Query frames stamped with a non-zero retry attempt — driver recovery
  /// traffic as seen from the server side.
  std::atomic<uint64_t> retries_seen{0};
  /// Successful kAttest round trips (enclave sessions minted). Grows past
  /// the connection count when clients re-attest after an enclave restart.
  std::atomic<uint64_t> sessions_attested{0};
  /// Connections turned away at accept time with a typed kOverloaded frame
  /// (max_connections cap or the net/accept_reject fault point).
  std::atomic<uint64_t> connections_rejected{0};

  // ----- event-loop gauges -----

  /// epoll_wait returns summed over all I/O threads.
  std::atomic<uint64_t> epoll_wakeups{0};
  /// Deepest the run queue (decoded requests awaiting a worker) has been.
  std::atomic<uint64_t> run_queue_highwater{0};
  /// Requests shed with a typed kOverloaded because the run queue was full.
  std::atomic<uint64_t> run_queue_sheds{0};
  /// Most execution workers ever live at once (elastic growth watermark).
  std::atomic<uint64_t> exec_threads_peak{0};
  /// Idle connections reaped by the idle_timeout_ms sweep.
  std::atomic<uint64_t> idle_reaps{0};
  /// Connections cut for not consuming their responses (write_buffer_cap).
  std::atomic<uint64_t> slow_reader_disconnects{0};
  /// Connections reaped for never completing a handshake.
  std::atomic<uint64_t> handshake_timeouts{0};

  /// Mirrors of the database's enclave amortization counters, refreshed on
  /// every stats() read so operators see batching effectiveness per server.
  std::atomic<uint64_t> enclave_batch_evals{0};
  std::atomic<uint64_t> enclave_batched_values{0};
  std::atomic<uint64_t> enclave_transitions{0};
  /// Mirrors of the database's overload-control gauges (same refresh).
  std::atomic<uint64_t> queries_admitted{0};
  std::atomic<uint64_t> queries_rejected{0};
  std::atomic<uint64_t> queries_expired{0};
  std::atomic<uint64_t> queue_depth_highwater{0};
  std::atomic<uint64_t> lock_waits_expired{0};
  /// Mirrors of the database's buffer-pool gauges (same refresh) — an
  /// operator watching hit rate fall or eviction churn rise sees memory
  /// pressure from the wire side without shelling into the server.
  std::atomic<uint64_t> pool_hits{0};
  std::atomic<uint64_t> pool_misses{0};
  std::atomic<uint64_t> pool_evictions{0};
  std::atomic<uint64_t> pool_writebacks{0};
  std::atomic<uint64_t> pool_pinned_highwater{0};
  /// Mirrors of the WAL group-commit gauges: cohort fsyncs and the commits
  /// they covered. commits/fsync ≫ 1 means batching is working.
  std::atomic<uint64_t> group_commit_batches{0};
  std::atomic<uint64_t> commit_sync_requests{0};
};

/// One coherent, race-free copy of every server counter (satisfies "read
/// the stats once, reason about them together" — e.g. asserting
/// frames_out >= frames_in - protocol_errors without the counters moving
/// between loads).
struct ServerStatsSnapshot {
  uint64_t connections_accepted = 0;
  uint64_t connections_active = 0;
  uint64_t frames_in = 0;
  uint64_t frames_out = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  uint64_t protocol_errors = 0;
  uint64_t request_errors = 0;
  uint64_t retries_seen = 0;
  uint64_t sessions_attested = 0;
  uint64_t connections_rejected = 0;
  uint64_t epoll_wakeups = 0;
  uint64_t run_queue_highwater = 0;
  uint64_t run_queue_sheds = 0;
  uint64_t exec_threads_peak = 0;
  uint64_t idle_reaps = 0;
  uint64_t slow_reader_disconnects = 0;
  uint64_t handshake_timeouts = 0;
  uint64_t enclave_batch_evals = 0;
  uint64_t enclave_batched_values = 0;
  uint64_t enclave_transitions = 0;
  uint64_t queries_admitted = 0;
  uint64_t queries_rejected = 0;
  uint64_t queries_expired = 0;
  uint64_t queue_depth_highwater = 0;
  uint64_t lock_waits_expired = 0;
  uint64_t pool_hits = 0;
  uint64_t pool_misses = 0;
  uint64_t pool_evictions = 0;
  uint64_t pool_writebacks = 0;
  uint64_t pool_pinned_highwater = 0;
  uint64_t group_commit_batches = 0;
  uint64_t commit_sync_requests = 0;
};

/// \brief Event-driven TCP front end for a `server::Database`.
///
/// A small set of epoll I/O threads drives every connection as a
/// non-blocking state machine (reactor::Connection): reads are decoded
/// incrementally into frames, one request per connection executes at a time
/// (EPOLLIN is parked while it does — the kernel socket buffer is the
/// backpressure), responses are buffered and flushed on EPOLLOUT. Decoded
/// requests cross a bounded run queue into an elastic execution worker pool
/// where everything that may block — Database::Execute with its WAL fsyncs
/// and lock waits, attestation RSA — lives; I/O threads never block. A full
/// run queue answers with a typed kOverloaded + retry-after straight from
/// the event loop. Idle connections cost one epoll registration, so tens of
/// thousands of live sessions fit in a handful of threads (the paper's
/// SQL Server deployment shape: huge session counts, few schedulers).
///
/// Framing errors (bad magic, oversized length, truncated frame) poison the
/// byte stream, so the server answers with a best-effort kError frame and
/// closes that connection. Request-level failures (unknown message type,
/// malformed payload, non-OK Database status) answer kError and keep the
/// connection alive.
class Server {
 public:
  Server(server::SqlBackend* db, ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, spawns the I/O loops and the worker pool. Idempotent
  /// failure: on error nothing is running and Start may be retried.
  Status Start();

  /// Graceful shutdown: stops accepting, finishes in-flight requests,
  /// closes every connection, joins all threads. Safe to call twice.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The bound TCP port (valid after Start()).
  uint16_t port() const { return port_; }
  const ServerStats& stats() const {
    RefreshMirrors();
    return stats_;
  }
  ServerStatsSnapshot SnapshotStats() const;

 private:
  struct IoShard;
  struct AcceptHandler;
  friend struct IoShard;
  friend struct AcceptHandler;

  /// What an execution worker hands back to the event loop.
  struct RequestOutcome {
    Bytes response;
    bool keep_open = true;
    bool handshaken = false;  ///< this request completed the handshake
  };

  // ----- acceptor (runs on shard 0's loop thread) -----
  void DoAccept();
  void AdoptConnection(IoShard* shard, int fd, uint64_t conn_id);
  void RejectConnection(IoShard* shard, int fd, uint64_t conn_id);

  // ----- connection delegate paths (run on the owning loop thread) -----
  bool OnFrame(IoShard* shard, reactor::Connection* conn,
               const FrameHeader& header, Bytes payload);
  void OnProtocolError(IoShard* shard, reactor::Connection* conn,
                       const Status& error);
  void OnConnClosed(IoShard* shard, reactor::Connection* conn,
                    reactor::CloseReason reason);
  /// Periodic timeout sweep for one shard (ticker).
  void SweepShard(IoShard* shard);

  /// Runs on an execution worker: decodes the request payload, runs it
  /// against the database and encodes the response frame (kError frames for
  /// failures). Blocking is allowed here and only here.
  RequestOutcome ExecuteRequest(MsgType type, const Bytes& payload,
                                uint64_t conn_id);

  reactor::Connection::Options ConnOptions() const;
  /// Copies the database's enclave + overload counters and the reactor's
  /// live gauges into the stats mirror.
  void RefreshMirrors() const;

  server::SqlBackend* db_;
  ServerConfig config_;
  mutable ServerStats stats_;

  std::atomic<bool> running_{false};
  int listen_fd_ = -1;
  uint16_t port_ = 0;

  std::vector<std::unique_ptr<IoShard>> shards_;
  std::unique_ptr<reactor::ExecPool> pool_;
  std::unique_ptr<AcceptHandler> accept_handler_;
  uint64_t next_connection_id_ = 1;  // acceptor only (shard 0 loop thread)
  size_t next_shard_ = 0;            // round-robin cursor, acceptor only
};

}  // namespace aedb::net

#endif  // AEDB_NET_SERVER_H_
