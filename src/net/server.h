#ifndef AEDB_NET_SERVER_H_
#define AEDB_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/protocol.h"
#include "server/database.h"

namespace aedb::net {

struct ServerConfig {
  std::string bind_address = "127.0.0.1";
  /// 0 = pick an ephemeral port; the bound port is available from port()
  /// after Start() (tests and the loopback bench rely on this).
  uint16_t port = 0;
  int backlog = 64;
  /// Per-connection socket timeouts. A client that stalls mid-frame holds a
  /// worker thread for at most this long (mid-frame disconnect robustness).
  uint32_t read_timeout_ms = 30'000;
  uint32_t write_timeout_ms = 30'000;
  /// Frames claiming a larger payload are rejected before allocation.
  uint32_t max_payload = kDefaultMaxPayload;
  /// Cap on concurrently served connections (0 = unlimited). Excess accepts
  /// get a typed kOverloaded error frame and an immediate close instead of
  /// a silent accept-and-starve; see connections_rejected.
  uint32_t max_connections = 0;
  /// Retry-after hint (milliseconds) carried by connection rejections.
  uint32_t overload_retry_after_ms = 20;
};

/// Per-server counters (monotonic; read with relaxed ordering).
struct ServerStats {
  std::atomic<uint64_t> connections_accepted{0};
  std::atomic<uint64_t> connections_active{0};
  std::atomic<uint64_t> frames_in{0};
  std::atomic<uint64_t> frames_out{0};
  std::atomic<uint64_t> bytes_in{0};
  std::atomic<uint64_t> bytes_out{0};
  /// Framing-level failures (bad magic/version/length, truncation).
  std::atomic<uint64_t> protocol_errors{0};
  /// Requests that executed but returned a non-OK Status.
  std::atomic<uint64_t> request_errors{0};
  /// Query frames stamped with a non-zero retry attempt — driver recovery
  /// traffic as seen from the server side.
  std::atomic<uint64_t> retries_seen{0};
  /// Successful kAttest round trips (enclave sessions minted). Grows past
  /// the connection count when clients re-attest after an enclave restart.
  std::atomic<uint64_t> sessions_attested{0};
  /// Connections turned away at accept time with a typed kOverloaded frame
  /// (max_connections cap or the net/accept_reject fault point).
  std::atomic<uint64_t> connections_rejected{0};
  /// Mirrors of the database's enclave amortization counters, refreshed on
  /// every stats() read so operators see batching effectiveness per server.
  std::atomic<uint64_t> enclave_batch_evals{0};
  std::atomic<uint64_t> enclave_batched_values{0};
  std::atomic<uint64_t> enclave_transitions{0};
  /// Mirrors of the database's overload-control gauges (same refresh).
  std::atomic<uint64_t> queries_admitted{0};
  std::atomic<uint64_t> queries_rejected{0};
  std::atomic<uint64_t> queries_expired{0};
  std::atomic<uint64_t> queue_depth_highwater{0};
  std::atomic<uint64_t> lock_waits_expired{0};
};

/// \brief Multi-threaded TCP front end for a `server::Database`.
///
/// One acceptor thread plus one worker thread per connection (the paper's
/// SQL Server model: a session per connection, scheduler-bound workers).
/// Each connection must open with a Handshake frame; the server allocates a
/// monotonically increasing connection id and then answers request frames
/// until EOF, a framing error, or Stop().
///
/// Framing errors (bad magic, oversized length, truncated frame) poison the
/// byte stream, so the server answers with a best-effort kError frame and
/// closes that connection. Request-level failures (unknown message type,
/// malformed payload, non-OK Database status) answer kError and keep the
/// connection alive.
class Server {
 public:
  Server(server::Database* db, ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and spawns the acceptor. Idempotent failure: on error
  /// nothing is running and Start may be retried.
  Status Start();

  /// Graceful shutdown: stops accepting, wakes every worker by shutting down
  /// its socket, and joins all threads. Safe to call twice.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The bound TCP port (valid after Start()).
  uint16_t port() const { return port_; }
  const ServerStats& stats() const {
    RefreshEnclaveStats();
    return stats_;
  }

 private:
  void AcceptLoop();
  /// Copies the database's enclave + overload counters into the stats mirror.
  void RefreshEnclaveStats() const;
  /// Answers a surplus connection with a typed kOverloaded error frame
  /// (+ retry-after hint) and closes it.
  void RejectConnection(int fd);
  /// Joins worker threads whose connections have finished. Called from the
  /// acceptor between accepts so a connection-churn workload cannot grow
  /// the thread map without bound; Stop() joins whatever remains.
  void ReapFinishedWorkers();
  void ServeConnection(int fd, uint64_t conn_id);
  /// Decodes one request payload, runs it against the database and encodes
  /// the response frame (kError frames for failures). Returns false when the
  /// connection must close (framing no longer trustworthy).
  bool HandleFrame(const FrameHeader& header, Slice payload, uint64_t conn_id,
                   bool* handshaken, Bytes* response);

  server::Database* db_;
  ServerConfig config_;
  mutable ServerStats stats_;

  std::atomic<bool> running_{false};
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread acceptor_;

  std::mutex conn_mu_;
  uint64_t next_connection_id_ = 1;
  std::map<uint64_t, int> live_fds_;          // conn id -> fd (for Stop)
  std::map<uint64_t, std::thread> workers_;   // reaped by acceptor / Stop
  std::vector<uint64_t> finished_;            // conn ids ready to reap
};

}  // namespace aedb::net

#endif  // AEDB_NET_SERVER_H_
