#include "net/socket_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace aedb::net {

namespace {

/// Transport-level failures are kUnavailable: the server (or the path to it)
/// is gone, which the driver's retry classifier treats as "reconnect and, if
/// the statement is a read, replay".
Status Errno(const std::string& what) {
  return Status::Unavailable(what + ": " + std::strerror(errno));
}

void SetTimeout(int fd, int opt, uint32_t ms) {
  timeval tv;
  tv.tv_sec = ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, opt, &tv, sizeof(tv));
}

Status ReadFull(int fd, uint8_t* buf, size_t n) {
  size_t got = 0;
  while (got < n) {
    ssize_t r = ::recv(fd, buf + got, n - got, 0);
    if (r == 0) return Status::Unavailable("server closed the connection");
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::Unavailable("read timeout waiting for server");
      }
      return Errno("recv");
    }
    got += static_cast<size_t>(r);
  }
  return Status::OK();
}

Status WriteFull(int fd, Slice data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t w = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    sent += static_cast<size_t>(w);
  }
  return Status::OK();
}

}  // namespace

SocketTransport::SocketTransport(int fd, Options options)
    : fd_(fd), options_(std::move(options)) {}

SocketTransport::~SocketTransport() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<SocketTransport>> SocketTransport::Connect(
    const Options& options) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  if (::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad server address: " + options.host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status st = Errno("connect " + options.host + ":" +
                      std::to_string(options.port));
    ::close(fd);
    return st;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  SetTimeout(fd, SO_RCVTIMEO, options.timeout_ms);
  SetTimeout(fd, SO_SNDTIMEO, options.timeout_ms);

  std::unique_ptr<SocketTransport> t(new SocketTransport(fd, options));
  HandshakeReq req;
  req.client_version = kProtocolVersion;
  req.client_name = options.client_name;
  Bytes ack;
  AEDB_ASSIGN_OR_RETURN(
      ack, t->RoundTrip(MsgType::kHandshake, req.Encode(),
                        MsgType::kHandshakeAck));
  HandshakeResp resp;
  AEDB_ASSIGN_OR_RETURN(resp, HandshakeResp::Decode(ack));
  if (resp.server_version != kProtocolVersion) {
    return Status::NotSupported("server speaks protocol version " +
                                std::to_string(resp.server_version));
  }
  t->connection_id_ = resp.connection_id;
  t->shard_count_ = resp.shard_count;
  // Honor a smaller server-side frame limit.
  if (resp.max_payload < t->options_.max_payload) {
    t->options_.max_payload = resp.max_payload;
  }
  return t;
}

Result<SocketTransport::Response> SocketTransport::RoundTripRaw(
    MsgType request, Slice payload) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!poisoned_.ok()) return poisoned_;
  if (payload.size() > options_.max_payload) {
    return Status::OutOfRange("request payload exceeds the frame limit");
  }
  Bytes frame = EncodeFrame(request, payload);
  Status st = WriteFull(fd_, frame);
  if (!st.ok()) {
    poisoned_ = st;
    return st;
  }
  Bytes header_buf(kFrameHeaderSize);
  st = ReadFull(fd_, header_buf.data(), header_buf.size());
  if (!st.ok()) {
    poisoned_ = st;
    return st;
  }
  auto header = DecodeFrameHeader(header_buf, options_.max_payload);
  if (!header.ok()) {
    poisoned_ = header.status();
    return header.status();
  }
  Response resp;
  resp.type = header->type;
  resp.payload.resize(header->payload_size);
  if (header->payload_size > 0) {
    st = ReadFull(fd_, resp.payload.data(), resp.payload.size());
    if (!st.ok()) {
      poisoned_ = st;
      return st;
    }
  }
  return resp;
}

Result<Bytes> SocketTransport::RoundTrip(MsgType request, Slice payload,
                                         MsgType expected) {
  Response resp;
  AEDB_ASSIGN_OR_RETURN(resp, RoundTripRaw(request, payload));
  if (resp.type == MsgType::kError) {
    Status wire_status;
    AEDB_RETURN_IF_ERROR(DecodeStatusPayload(resp.payload, &wire_status));
    if (wire_status.ok()) {
      return Status::Corruption("server sent an Error frame with OK status");
    }
    return wire_status;
  }
  if (resp.type != expected) {
    return Status::Corruption(std::string("unexpected response type ") +
                              MsgTypeName(resp.type) + " (wanted " +
                              MsgTypeName(expected) + ")");
  }
  return std::move(resp.payload);
}

Status SocketTransport::SendStatusRequest(MsgType request, Slice payload) {
  return RoundTrip(request, payload, MsgType::kOk).status();
}

bool SocketTransport::healthy() const {
  std::lock_guard<std::mutex> lock(mu_);
  return poisoned_.ok();
}

Status SocketTransport::Ping() {
  Bytes echo;
  AEDB_ASSIGN_OR_RETURN(echo, RoundTrip(MsgType::kPing, Slice(), MsgType::kPong));
  return Status::OK();
}

Result<uint64_t> SocketTransport::BeginTransaction() {
  Bytes body;
  AEDB_ASSIGN_OR_RETURN(body,
                        RoundTrip(MsgType::kBeginTxn, Slice(), MsgType::kTxnResp));
  size_t off = 0;
  return GetU64(body, &off);
}

Status SocketTransport::CommitTransaction(uint64_t txn) {
  Bytes payload;
  PutU64(&payload, txn);
  return SendStatusRequest(MsgType::kCommitTxn, payload);
}

Status SocketTransport::RollbackTransaction(uint64_t txn) {
  Bytes payload;
  PutU64(&payload, txn);
  return SendStatusRequest(MsgType::kRollbackTxn, payload);
}

Status SocketTransport::ExecuteDdl(const std::string& sql,
                                   uint64_t session_id) {
  DdlReq req;
  req.sql = sql;
  req.session_id = session_id;
  return SendStatusRequest(MsgType::kDdl, req.Encode());
}

Result<sql::ResultSet> SocketTransport::Execute(
    const std::string& sql, const std::vector<types::Value>& params,
    uint64_t txn, uint64_t session_id) {
  QueryReq req;
  req.sql = sql;
  req.params = params;
  req.txn = txn;
  req.session_id = session_id;
  uint32_t attempt = attempt_.load(std::memory_order_relaxed);
  req.retry = static_cast<uint8_t>(attempt > 255 ? 255 : attempt);
  req.deadline_ms = deadline_ms_.load(std::memory_order_relaxed);
  Bytes body;
  AEDB_ASSIGN_OR_RETURN(
      body, RoundTrip(MsgType::kQuery, req.Encode(), MsgType::kResultSet));
  return DecodeResultSet(body);
}

Result<sql::ResultSet> SocketTransport::ExecuteNamed(
    const std::string& sql, const client::NamedParams& params, uint64_t txn,
    uint64_t session_id) {
  QueryNamedReq req;
  req.sql = sql;
  req.params = params;
  req.txn = txn;
  req.session_id = session_id;
  uint32_t attempt = attempt_.load(std::memory_order_relaxed);
  req.retry = static_cast<uint8_t>(attempt > 255 ? 255 : attempt);
  req.deadline_ms = deadline_ms_.load(std::memory_order_relaxed);
  Bytes body;
  AEDB_ASSIGN_OR_RETURN(
      body, RoundTrip(MsgType::kQueryNamed, req.Encode(), MsgType::kResultSet));
  return DecodeResultSet(body);
}

Result<server::DescribeResult> SocketTransport::DescribeParameterEncryption(
    const std::string& sql, Slice client_dh_public) {
  DescribeReq req;
  req.sql = sql;
  req.client_dh_public = client_dh_public.ToBytes();
  Bytes body;
  AEDB_ASSIGN_OR_RETURN(
      body, RoundTrip(MsgType::kDescribe, req.Encode(), MsgType::kDescribeResp));
  return DecodeDescribeResult(body);
}

Result<server::DescribeResult> SocketTransport::Attest(Slice client_dh_public) {
  DescribeReq req;
  req.client_dh_public = client_dh_public.ToBytes();
  Bytes body;
  AEDB_ASSIGN_OR_RETURN(
      body, RoundTrip(MsgType::kAttest, req.Encode(), MsgType::kDescribeResp));
  return DecodeDescribeResult(body);
}

Result<server::DescribeResult> SocketTransport::AttestShard(
    uint32_t shard, Slice client_dh_public) {
  DescribeReq req;
  req.client_dh_public = client_dh_public.ToBytes();
  req.shard = shard;
  Bytes body;
  AEDB_ASSIGN_OR_RETURN(
      body, RoundTrip(MsgType::kAttest, req.Encode(), MsgType::kDescribeResp));
  return DecodeDescribeResult(body);
}

Status SocketTransport::ForwardKeysToShard(uint32_t shard, uint64_t session_id,
                                           uint64_t nonce, Slice sealed) {
  ForwardReq req;
  req.session_id = session_id;
  req.nonce = nonce;
  req.sealed = sealed.ToBytes();
  req.shard = shard;
  return SendStatusRequest(MsgType::kForwardKeys, req.Encode());
}

Status SocketTransport::ForwardAuthorizationToShard(uint32_t shard,
                                                    uint64_t session_id,
                                                    uint64_t nonce,
                                                    Slice sealed) {
  ForwardReq req;
  req.session_id = session_id;
  req.nonce = nonce;
  req.sealed = sealed.ToBytes();
  req.shard = shard;
  return SendStatusRequest(MsgType::kForwardAuthorization, req.Encode());
}

Status SocketTransport::ExecuteDdlOnShard(uint32_t shard,
                                          const std::string& sql,
                                          uint64_t session_id) {
  DdlReq req;
  req.sql = sql;
  req.session_id = session_id;
  req.shard = shard;
  return SendStatusRequest(MsgType::kDdl, req.Encode());
}

Result<server::KeyDescription> SocketTransport::GetKeyDescription(
    uint32_t cek_id) {
  Bytes payload;
  PutU32(&payload, cek_id);
  Bytes body;
  AEDB_ASSIGN_OR_RETURN(body, RoundTrip(MsgType::kGetKeyDescription, payload,
                                        MsgType::kKeyDescriptionResp));
  size_t off = 0;
  server::KeyDescription key;
  AEDB_ASSIGN_OR_RETURN(key, DecodeKeyDescription(body, &off));
  return key;
}

Result<types::EncryptionType> SocketTransport::ColumnEncryption(
    const std::string& table, const std::string& column) {
  ColumnReq req;
  req.table = table;
  req.column = column;
  Bytes body;
  AEDB_ASSIGN_OR_RETURN(body, RoundTrip(MsgType::kColumnEncryption, req.Encode(),
                                        MsgType::kEncryptionTypeResp));
  size_t off = 0;
  return DecodeEncryptionType(body, &off);
}

Result<keys::CmkInfo> SocketTransport::GetCmk(const std::string& name) {
  Bytes payload;
  EncodeString(&payload, name);
  Bytes body;
  AEDB_ASSIGN_OR_RETURN(
      body, RoundTrip(MsgType::kGetCmk, payload, MsgType::kCmkResp));
  size_t off = 0;
  Bytes raw;
  AEDB_ASSIGN_OR_RETURN(raw, GetLengthPrefixed(body, &off));
  return keys::CmkInfo::Deserialize(raw);
}

Result<uint32_t> SocketTransport::CekIdByName(const std::string& name) {
  Bytes payload;
  EncodeString(&payload, name);
  Bytes body;
  AEDB_ASSIGN_OR_RETURN(
      body, RoundTrip(MsgType::kCekIdByName, payload, MsgType::kCekIdResp));
  size_t off = 0;
  return GetU32(body, &off);
}

Status SocketTransport::ForwardKeysToEnclave(uint64_t session_id,
                                             uint64_t nonce, Slice sealed) {
  ForwardReq req;
  req.session_id = session_id;
  req.nonce = nonce;
  req.sealed = sealed.ToBytes();
  return SendStatusRequest(MsgType::kForwardKeys, req.Encode());
}

Status SocketTransport::ForwardEncryptionAuthorization(uint64_t session_id,
                                                       uint64_t nonce,
                                                       Slice sealed) {
  ForwardReq req;
  req.session_id = session_id;
  req.nonce = nonce;
  req.sealed = sealed.ToBytes();
  return SendStatusRequest(MsgType::kForwardAuthorization, req.Encode());
}

Status SocketTransport::AlterColumnMetadataForClientTool(
    const std::string& table, const std::string& column,
    const sql::EncryptionSpec& enc) {
  ColumnReq req;
  req.table = table;
  req.column = column;
  req.has_spec = true;
  req.spec = enc;
  return SendStatusRequest(MsgType::kAlterColumnMetadata, req.Encode());
}

}  // namespace aedb::net
