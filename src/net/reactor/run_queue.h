#ifndef AEDB_NET_REACTOR_RUN_QUEUE_H_
#define AEDB_NET_REACTOR_RUN_QUEUE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>

namespace aedb::net::reactor {

/// \brief Bounded MPMC queue of decoded requests awaiting execution.
///
/// Producers are I/O threads, so TryPush never blocks: a full queue is a
/// shed decision the caller answers with a typed kOverloaded frame straight
/// from the event loop (passive flow control — the client backs off, the
/// loop never stalls). Consumers are the execution workers.
class RunQueue {
 public:
  using Task = std::function<void()>;

  /// depth == 0 means unbounded (tests only; the server always bounds it).
  explicit RunQueue(size_t depth) : depth_(depth) {}

  /// Non-blocking. False = queue full; the caller sheds the request.
  bool TryPush(Task task) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return false;
      if (depth_ != 0 && queue_.size() >= depth_) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      queue_.push_back(std::move(task));
      uint64_t d = queue_.size();
      uint64_t hw = highwater_.load(std::memory_order_relaxed);
      while (d > hw &&
             !highwater_.compare_exchange_weak(hw, d, std::memory_order_relaxed)) {
      }
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until a task is available or the queue is closed (false).
  bool Pop(Task* task) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) return false;
    *task = std::move(queue_.front());
    queue_.pop_front();
    return true;
  }

  /// Bounded wait flavour used by elastic workers deciding whether to retire.
  bool PopFor(Task* task, std::chrono::milliseconds timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    if (!cv_.wait_for(lock, timeout,
                      [&] { return closed_ || !queue_.empty(); })) {
      return false;
    }
    if (queue_.empty()) return false;
    *task = std::move(queue_.front());
    queue_.pop_front();
    return true;
  }

  /// Wakes every consumer; queued-but-unstarted tasks are dropped (their
  /// connections are being closed by Stop anyway).
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
      queue_.clear();
    }
    cv_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
  }
  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }
  uint64_t highwater() const {
    return highwater_.load(std::memory_order_relaxed);
  }
  uint64_t rejected() const { return rejected_.load(std::memory_order_relaxed); }

 private:
  const size_t depth_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Task> queue_;
  bool closed_ = false;
  std::atomic<uint64_t> highwater_{0};
  std::atomic<uint64_t> rejected_{0};
};

}  // namespace aedb::net::reactor

#endif  // AEDB_NET_REACTOR_RUN_QUEUE_H_
