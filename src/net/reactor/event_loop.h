#ifndef AEDB_NET_REACTOR_EVENT_LOOP_H_
#define AEDB_NET_REACTOR_EVENT_LOOP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"

namespace aedb::net::reactor {

/// Implemented by anything that parks a file descriptor in an EventLoop
/// (connections, the acceptor). OnEvents runs on the loop thread.
class EventHandler {
 public:
  virtual ~EventHandler() = default;
  /// `events` is the raw epoll mask (EPOLLIN / EPOLLOUT / EPOLLERR /
  /// EPOLLHUP...). The handler may close its fd and ask for deferred
  /// deletion, but must not delete itself synchronously.
  virtual void OnEvents(uint32_t events) = 0;
};

/// \brief One epoll-driven I/O thread (RethinkDB's linux event queue shape).
///
/// Everything that touches a registered fd — interest changes, buffer
/// state, handler lifetime — happens on the loop thread. Other threads get
/// in via Post(), which enqueues a closure and wakes the loop through an
/// eventfd; that is how execution workers deliver query completions back to
/// the connection they belong to.
///
/// Handler deletion is deferred: DeferDelete() queues the object and the
/// loop frees it after the current dispatch round, so a handler closed by a
/// posted task (or by the ticker) cannot be freed while an already-polled
/// event for it is still in flight.
class EventLoop {
 public:
  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Spawns the loop thread. `tick_ms`/`ticker` install a periodic callback
  /// (timer wheel tick: connection timeout sweeps, drain deadlines).
  Status Start(uint32_t tick_ms = 0, std::function<void()> ticker = nullptr);

  /// Runs all posted tasks, exits the loop and joins the thread. Tasks
  /// posted after Stop() returns are dropped.
  void Stop();

  bool OnLoopThread() const {
    return std::this_thread::get_id() == thread_.get_id();
  }

  // ----- fd interest (loop thread only, except the very first Add which may
  // race-freely happen before Start) -----
  Status Add(int fd, uint32_t events, EventHandler* handler);
  Status Mod(int fd, uint32_t events, EventHandler* handler);
  Status Del(int fd);

  /// Thread-safe: enqueue a closure for the loop thread and wake it.
  /// Returns false (dropping the task) once the loop has stopped.
  bool Post(std::function<void()> task);

  /// Queue `handler` for deletion after the current dispatch round
  /// (loop thread only).
  void DeferDelete(EventHandler* handler);

  /// epoll_wait returns (each one is one kernel wakeup of this thread).
  uint64_t wakeups() const { return wakeups_.load(std::memory_order_relaxed); }

 private:
  void Run();
  void DrainWake();

  int epfd_ = -1;
  int wake_fd_ = -1;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> wakeups_{0};

  std::mutex post_mu_;
  std::vector<std::function<void()>> posted_;
  bool accepting_posts_ = true;  // guarded by post_mu_

  uint32_t tick_ms_ = 0;
  std::function<void()> ticker_;

  std::vector<EventHandler*> deferred_deletes_;  // loop thread only
};

}  // namespace aedb::net::reactor

#endif  // AEDB_NET_REACTOR_EVENT_LOOP_H_
