#ifndef AEDB_NET_REACTOR_CONNECTION_H_
#define AEDB_NET_REACTOR_CONNECTION_H_

#include <chrono>
#include <cstdint>

#include "net/reactor/event_loop.h"
#include "net/reactor/frame_decoder.h"

namespace aedb::net::reactor {

/// Why a connection left the loop (drives the owner's stats taxonomy).
enum class CloseReason {
  kEof,               ///< peer closed cleanly at a frame boundary
  kEofMidFrame,       ///< peer vanished inside a frame (protocol error)
  kDecodeError,       ///< framing broken (bad magic/version/length)
  kReadTimeout,       ///< stalled mid-frame past read_timeout_ms
  kWriteTimeout,      ///< flush made no progress past write_timeout_ms
  kIdleTimeout,       ///< idle past idle_timeout_ms (reaped)
  kHandshakeTimeout,  ///< never completed the handshake in time
  kSlowReader,        ///< write buffer exceeded its cap
  kWriteError,        ///< send() failed hard
  kDrained,           ///< graceful close-after-flush completed
  kServerStop,        ///< Stop() closed it
  kRequestClose,      ///< a request handler asked for the close
};

const char* CloseReasonName(CloseReason r);

class Connection;

/// The owner of a set of connections (the net::Server). All callbacks run on
/// the connection's loop thread.
class ConnectionDelegate {
 public:
  virtual ~ConnectionDelegate() = default;

  /// One complete frame. Return true to keep delivering buffered frames;
  /// return false to park the connection (reading stops — backpressure)
  /// until Resume() is called, i.e. while the request executes.
  virtual bool OnFrame(Connection* conn, const FrameHeader& header,
                       Bytes payload) = 0;

  /// The byte stream broke (decode error). The delegate typically Sends a
  /// kError frame and calls CloseAfterFlush.
  virtual void OnProtocolError(Connection* conn, const Status& error) = 0;

  /// The fd is closed and deregistered. The delegate drops its pointer; the
  /// Connection is freed by the loop after the current dispatch round.
  virtual void OnClosed(Connection* conn, CloseReason reason) = 0;

  /// Raw ingress accounting (called per successful recv()).
  virtual void OnBytesIn(size_t n) = 0;
};

/// \brief One client connection as a non-blocking state machine.
///
/// Owned by exactly one EventLoop; every method (other than construction)
/// must be called on that loop's thread. The machine has three axes:
///
///   read side:   running (EPOLLIN armed, frames delivered)  |  parked
///                (request in flight; kernel socket buffer is the
///                backpressure)  |  draining (half-closed, discarding)
///   write side:  responses append to an outbuf flushed opportunistically
///                and on EPOLLOUT; a buffer past write_buffer_cap means a
///                reader slower than we are willing to buffer for — the
///                connection is cut (kSlowReader), never buffered unboundedly
///   lifecycle:   timeouts (mid-frame stall, idle, handshake, write stall,
///                drain deadline) are enforced by the owner's periodic sweep
///                calling ExpiredDeadline()
class Connection : public EventHandler {
 public:
  using Clock = std::chrono::steady_clock;

  struct Options {
    uint32_t max_payload = kDefaultMaxPayload;
    size_t write_buffer_cap = 4u << 20;
    size_t read_chunk = 64 * 1024;
    uint32_t read_timeout_ms = 30'000;      ///< mid-frame stall bound
    uint32_t write_timeout_ms = 30'000;     ///< zero-progress flush bound
    uint32_t idle_timeout_ms = 0;           ///< 0 = never reap idle conns
    uint32_t handshake_timeout_ms = 30'000; ///< accept → handshake bound
    uint32_t drain_ms = 200;                ///< close-after-flush drain budget
    size_t drain_byte_cap = 64 * 1024;
  };

  Connection(EventLoop* loop, int fd, uint64_t id, Options options,
             ConnectionDelegate* delegate);
  ~Connection() override;

  /// Arms EPOLLIN. Call once, on the loop thread.
  Status Register();

  uint64_t id() const { return id_; }
  bool closed() const { return fd_ < 0; }
  size_t pending_write_bytes() const { return outbuf_.size() - outpos_; }

  /// The handshake completed (stops the handshake-timeout clock).
  void MarkHandshaken() { handshaken_ = true; }
  bool handshaken() const { return handshaken_; }

  /// Appends one encoded frame to the write buffer and flushes what the
  /// socket will take. Returns false when the connection closed in the
  /// process (write error / slow-reader cut) — the pointer is then dead to
  /// the caller.
  bool Send(Bytes frame);

  /// Like Send, but only the first `prefix` bytes are written and the
  /// connection is cut immediately after (the net/drop_mid_frame fault).
  void SendPrefixAndClose(Bytes frame, size_t prefix);

  /// Flush the outbuf, then half-close (SHUT_WR) and discard inbound bytes
  /// until EOF, a byte cap, or a drain deadline — so the peer reliably
  /// receives the final (usually kError) frame instead of an RST killing it
  /// in the send queue. The drain rides this loop; no thread is parked.
  void CloseAfterFlush(CloseReason reason);

  /// Immediate close; unflushed output is discarded.
  void Close(CloseReason reason);

  /// Un-parks the read side after OnFrame returned false: buffered frames
  /// are delivered first, then EPOLLIN is re-armed.
  void Resume();

  /// Timeout sweep hook: the reason this connection should now be closed,
  /// or kEof... (wrapped in false) when healthy. The owner closes outside
  /// its iteration.
  bool ExpiredDeadline(Clock::time_point now, CloseReason* reason) const;

  // EventHandler:
  void OnEvents(uint32_t events) override;

 private:
  void OnReadable();
  void OnWritable();
  /// Pops decoded frames and hands them to the delegate until it parks the
  /// connection, the decoder needs more bytes, or the stream breaks.
  void DeliverFrames();
  /// Returns false when the connection died inside the flush.
  bool TryFlush();
  void UpdateInterest();
  void DrainDiscard();
  void FinishClose(CloseReason reason);

  EventLoop* loop_;
  int fd_;
  const uint64_t id_;
  Options options_;
  ConnectionDelegate* delegate_;

  FrameDecoder decoder_;
  Bytes outbuf_;
  size_t outpos_ = 0;

  bool handshaken_ = false;
  bool parked_ = false;       // request in flight; reading suspended
  bool draining_ = false;     // half-closed, discarding until EOF/limits
  bool close_after_flush_ = false;
  CloseReason pending_close_reason_ = CloseReason::kDrained;
  size_t drained_bytes_ = 0;

  uint32_t armed_events_ = 0;  // current epoll interest
  Clock::time_point created_at_;
  Clock::time_point last_read_;
  Clock::time_point last_write_progress_;
  Clock::time_point drain_deadline_{};
};

}  // namespace aedb::net::reactor

#endif  // AEDB_NET_REACTOR_CONNECTION_H_
