#ifndef AEDB_NET_REACTOR_EXEC_POOL_H_
#define AEDB_NET_REACTOR_EXEC_POOL_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "net/reactor/run_queue.h"

namespace aedb::net::reactor {

/// \brief The execution worker / blocker pool behind the event loop.
///
/// Everything that may block — Database::Execute with its WAL fsyncs and
/// lock waits, attestation RSA, DDL — runs here, never on an I/O thread
/// (RethinkDB's blocker_pool contract). The pool is elastic between
/// `base_threads` and `max_threads`: a submission that finds every worker
/// occupied grows the pool, because a worker parked in a lock wait must not
/// be able to starve the request (often the lock HOLDER's commit) that
/// would unblock it. Growth is bounded; past max_threads the bounded run
/// queue and its typed kOverloaded shed take over. Surplus workers retire
/// after sitting idle.
class ExecPool {
 public:
  struct Options {
    uint32_t base_threads = 4;
    /// Elastic ceiling (>= base_threads). The worst case needs one runnable
    /// worker per blocked lock-wait chain, so this bounds how much blocking
    /// concurrency the server will buy before shedding instead.
    uint32_t max_threads = 32;
    /// Bound on queued (accepted but not yet executing) requests.
    size_t queue_depth = 512;
    /// How long a surplus (above-base) worker sits idle before retiring.
    uint32_t idle_retire_ms = 1000;
  };

  explicit ExecPool(Options options);
  ~ExecPool();

  ExecPool(const ExecPool&) = delete;
  ExecPool& operator=(const ExecPool&) = delete;

  /// Non-blocking submission from an I/O thread. False = queue full (after
  /// growth was already maxed out): shed with a typed kOverloaded.
  bool TrySubmit(RunQueue::Task task);

  /// Drains nothing: wakes all workers, drops queued tasks, joins. In-flight
  /// tasks finish first (their completions still get posted).
  void Stop();

  uint64_t queue_highwater() const { return queue_.highwater(); }
  uint64_t queue_rejected() const { return queue_.rejected(); }
  size_t queue_depth() const { return queue_.size(); }
  uint32_t threads() const { return threads_.load(std::memory_order_relaxed); }
  uint32_t peak_threads() const {
    return peak_threads_.load(std::memory_order_relaxed);
  }

 private:
  void Worker(uint64_t id, bool elastic);
  void MaybeGrow();
  void ReapFinishedLocked();

  Options options_;
  RunQueue queue_;
  std::atomic<bool> stopping_{false};
  std::atomic<uint32_t> threads_{0};       // live workers
  std::atomic<uint32_t> busy_{0};          // workers currently inside a task
  std::atomic<uint32_t> peak_threads_{0};

  std::mutex threads_mu_;
  uint64_t next_worker_id_ = 1;            // guarded by threads_mu_
  std::map<uint64_t, std::thread> workers_;
  std::vector<uint64_t> finished_;         // retired ids awaiting join
};

}  // namespace aedb::net::reactor

#endif  // AEDB_NET_REACTOR_EXEC_POOL_H_
