#include "net/reactor/connection.h"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace aedb::net::reactor {

const char* CloseReasonName(CloseReason r) {
  switch (r) {
    case CloseReason::kEof: return "eof";
    case CloseReason::kEofMidFrame: return "eof_mid_frame";
    case CloseReason::kDecodeError: return "decode_error";
    case CloseReason::kReadTimeout: return "read_timeout";
    case CloseReason::kWriteTimeout: return "write_timeout";
    case CloseReason::kIdleTimeout: return "idle_timeout";
    case CloseReason::kHandshakeTimeout: return "handshake_timeout";
    case CloseReason::kSlowReader: return "slow_reader";
    case CloseReason::kWriteError: return "write_error";
    case CloseReason::kDrained: return "drained";
    case CloseReason::kServerStop: return "server_stop";
    case CloseReason::kRequestClose: return "request_close";
  }
  return "unknown";
}

Connection::Connection(EventLoop* loop, int fd, uint64_t id, Options options,
                       ConnectionDelegate* delegate)
    : loop_(loop),
      fd_(fd),
      id_(id),
      options_(options),
      delegate_(delegate),
      decoder_(options.max_payload) {
  created_at_ = Clock::now();
  last_read_ = created_at_;
  last_write_progress_ = created_at_;
}

Connection::~Connection() {
  if (fd_ >= 0) {
    (void)loop_->Del(fd_);
    ::close(fd_);
    fd_ = -1;
  }
}

Status Connection::Register() {
  armed_events_ = EPOLLIN | EPOLLRDHUP;
  return loop_->Add(fd_, armed_events_, this);
}

void Connection::OnEvents(uint32_t events) {
  if (fd_ < 0) return;  // closed earlier in this dispatch round
  if (events & (EPOLLERR | EPOLLHUP)) {
    // Peer reset or error. If we were draining, the goal (peer saw our last
    // frame, or never will) is as met as it gets.
    FinishClose(draining_ ? pending_close_reason_
                          : (decoder_.has_partial_frame()
                                 ? CloseReason::kEofMidFrame
                                 : CloseReason::kEof));
    return;
  }
  if (events & EPOLLOUT) {
    OnWritable();
    if (fd_ < 0) return;
  }
  if (events & (EPOLLIN | EPOLLRDHUP)) {
    if (draining_) {
      DrainDiscard();
    } else {
      OnReadable();
    }
  }
}

void Connection::OnReadable() {
  // Level-triggered: read one chunk per wakeup. A peer with more buffered
  // will retrigger immediately; this keeps any single connection from
  // monopolising the loop.
  uint8_t chunk[64 * 1024];
  size_t want = options_.read_chunk < sizeof(chunk) ? options_.read_chunk
                                                    : sizeof(chunk);
  ssize_t n = ::recv(fd_, chunk, want, 0);
  if (n > 0) {
    last_read_ = Clock::now();
    delegate_->OnBytesIn(static_cast<size_t>(n));
    decoder_.Feed(chunk, static_cast<size_t>(n));
    if (!parked_) DeliverFrames();
    return;
  }
  if (n == 0) {
    // EOF. Bytes of an unfinished frame left behind are a protocol error
    // (the blocking server counted these too).
    FinishClose(decoder_.has_partial_frame() ? CloseReason::kEofMidFrame
                                             : CloseReason::kEof);
    return;
  }
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
  FinishClose(CloseReason::kEof);
}

void Connection::DeliverFrames() {
  FrameHeader header;
  Bytes payload;
  while (fd_ >= 0 && !parked_ && !draining_) {
    FrameDecoder::Poll poll = decoder_.Next(&header, &payload);
    if (poll == FrameDecoder::Poll::kNeedMore) return;
    if (poll == FrameDecoder::Poll::kError) {
      // Delegate decides how to answer (kError frame + graceful close).
      delegate_->OnProtocolError(this, decoder_.error());
      return;
    }
    if (!delegate_->OnFrame(this, header, std::move(payload))) {
      parked_ = true;  // request in flight; Resume() restarts delivery
      UpdateInterest();
      return;
    }
  }
}

void Connection::Resume() {
  if (fd_ < 0 || draining_) return;
  parked_ = false;
  // Count time parked (executing) as activity so a fast requester is never
  // idle-reaped between its own round trips.
  last_read_ = Clock::now();
  DeliverFrames();
  if (fd_ >= 0 && !parked_ && !draining_) UpdateInterest();
}

bool Connection::Send(Bytes frame) {
  if (fd_ < 0 || draining_) return fd_ >= 0;
  if (outbuf_.empty()) {
    outpos_ = 0;
    outbuf_ = std::move(frame);
  } else {
    outbuf_.insert(outbuf_.end(), frame.begin(), frame.end());
  }
  if (!TryFlush()) return false;
  if (pending_write_bytes() > options_.write_buffer_cap) {
    // The socket took what it could and this much is still left: the peer
    // isn't consuming responses. Buffering more trades our memory for their
    // negligence; cut them instead.
    FinishClose(CloseReason::kSlowReader);
    return false;
  }
  UpdateInterest();
  return fd_ >= 0;
}

void Connection::SendPrefixAndClose(Bytes frame, size_t prefix) {
  if (fd_ < 0) return;
  if (prefix > frame.size()) prefix = frame.size();
  frame.resize(prefix);
  outbuf_ = std::move(frame);
  outpos_ = 0;
  (void)TryFlush();
  // Deliberately abrupt: the fault models a server dying mid-response.
  if (fd_ >= 0) FinishClose(CloseReason::kRequestClose);
}

bool Connection::TryFlush() {
  while (outpos_ < outbuf_.size()) {
    ssize_t n = ::send(fd_, outbuf_.data() + outpos_, outbuf_.size() - outpos_,
                       MSG_NOSIGNAL);
    if (n > 0) {
      outpos_ += static_cast<size_t>(n);
      last_write_progress_ = Clock::now();
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    if (n < 0 && errno == EINTR) continue;
    FinishClose(CloseReason::kWriteError);
    return false;
  }
  outbuf_.clear();
  outpos_ = 0;
  if (close_after_flush_) {
    // Everything the application queued is in the kernel. Half-close so the
    // peer gets a FIN after the data, then linger briefly discarding their
    // in-flight bytes so our final frame isn't torn down by an RST.
    close_after_flush_ = false;
    draining_ = true;
    drained_bytes_ = 0;
    drain_deadline_ = Clock::now() + std::chrono::milliseconds(options_.drain_ms);
    ::shutdown(fd_, SHUT_WR);
    UpdateInterest();
    DrainDiscard();
  }
  return fd_ >= 0;
}

void Connection::OnWritable() {
  if (!TryFlush()) return;
  UpdateInterest();
}

void Connection::CloseAfterFlush(CloseReason reason) {
  if (fd_ < 0 || draining_) return;
  pending_close_reason_ = reason;
  close_after_flush_ = true;
  parked_ = true;  // no more frame delivery; remaining input is drained
  if (!TryFlush()) return;
  UpdateInterest();
}

void Connection::DrainDiscard() {
  uint8_t sink[16 * 1024];
  while (fd_ >= 0) {
    ssize_t n = ::recv(fd_, sink, sizeof(sink), 0);
    if (n > 0) {
      drained_bytes_ += static_cast<size_t>(n);
      if (drained_bytes_ >= options_.drain_byte_cap) {
        FinishClose(pending_close_reason_);
        return;
      }
      continue;
    }
    if (n == 0) {
      FinishClose(pending_close_reason_);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;  // sweep enforces the deadline
    if (errno == EINTR) continue;
    FinishClose(pending_close_reason_);
    return;
  }
}

void Connection::UpdateInterest() {
  if (fd_ < 0) return;
  uint32_t want = EPOLLRDHUP;
  // While parked (request executing) we stop reading — the kernel's socket
  // buffer, then the client's one-outstanding-request discipline, is the
  // backpressure. Draining keeps EPOLLIN to see the discard bytes / EOF.
  if (!parked_ || draining_) want |= EPOLLIN;
  if (outpos_ < outbuf_.size()) want |= EPOLLOUT;
  if (want == armed_events_) return;
  if (loop_->Mod(fd_, want, this).ok()) armed_events_ = want;
}

bool Connection::ExpiredDeadline(Clock::time_point now,
                                 CloseReason* reason) const {
  if (fd_ < 0) return false;
  auto since = [&](Clock::time_point t) {
    return std::chrono::duration_cast<std::chrono::milliseconds>(now - t)
        .count();
  };
  if (draining_) {
    if (now >= drain_deadline_) {
      *reason = pending_close_reason_;
      return true;
    }
    return false;
  }
  // A write that can make no progress for write_timeout_ms: dead peer.
  if (pending_write_bytes() > 0 && options_.write_timeout_ms != 0 &&
      since(last_write_progress_) >=
          static_cast<int64_t>(options_.write_timeout_ms)) {
    *reason = CloseReason::kWriteTimeout;
    return true;
  }
  if (parked_) return false;  // executing: server-side latency, not a stall
  if (!handshaken_) {
    if (options_.handshake_timeout_ms != 0 &&
        since(created_at_) >=
            static_cast<int64_t>(options_.handshake_timeout_ms)) {
      *reason = CloseReason::kHandshakeTimeout;
      return true;
    }
  }
  if (decoder_.has_partial_frame()) {
    // Mid-frame and silent: a stalled or malicious writer holding state open.
    if (options_.read_timeout_ms != 0 &&
        since(last_read_) >= static_cast<int64_t>(options_.read_timeout_ms)) {
      *reason = CloseReason::kReadTimeout;
      return true;
    }
  } else if (handshaken_ && options_.idle_timeout_ms != 0 &&
             since(last_read_) >=
                 static_cast<int64_t>(options_.idle_timeout_ms)) {
    *reason = CloseReason::kIdleTimeout;
    return true;
  }
  return false;
}

void Connection::Close(CloseReason reason) { FinishClose(reason); }

void Connection::FinishClose(CloseReason reason) {
  if (fd_ < 0) return;
  (void)loop_->Del(fd_);
  int fd = fd_;
  fd_ = -1;
  // Notify the owner before close(): the owner updates stats maps/counters,
  // and close() sends the FIN that lets the peer observe the disconnect — the
  // accounting must be visible by the time the peer can see EOF.
  delegate_->OnClosed(this, reason);
  ::close(fd);
  // Freed after the current dispatch round: a pending epoll event or posted
  // completion for this connection in the same batch must not touch freed
  // memory. OnEvents re-entry is guarded by fd_ < 0.
  loop_->DeferDelete(this);
}

}  // namespace aedb::net::reactor
