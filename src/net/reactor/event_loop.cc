#include "net/reactor/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace aedb::net::reactor {

namespace {
Status Errno(const char* what) {
  return Status::Internal(std::string(what) + ": " + std::strerror(errno));
}
}  // namespace

EventLoop::EventLoop() {
  epfd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
}

EventLoop::~EventLoop() {
  Stop();
  if (epfd_ >= 0) ::close(epfd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
}

Status EventLoop::Start(uint32_t tick_ms, std::function<void()> ticker) {
  if (epfd_ < 0 || wake_fd_ < 0) return Errno("epoll_create1/eventfd");
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("event loop already running");
  }
  tick_ms_ = tick_ms;
  ticker_ = std::move(ticker);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.ptr = nullptr;  // nullptr marks the wake eventfd
  if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, wake_fd_, &ev) < 0) {
    return Errno("epoll_ctl(wake)");
  }
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    accepting_posts_ = true;
  }
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Run(); });
  return Status::OK();
}

void EventLoop::Stop() {
  if (!running_.exchange(false)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  // Wake the loop so it observes running_ == false. Already-posted tasks run
  // before the loop exits; new posts are refused from here on.
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    accepting_posts_ = false;
  }
  uint64_t one = 1;
  (void)!::write(wake_fd_, &one, sizeof(one));
  if (thread_.joinable()) thread_.join();
}

Status EventLoop::Add(int fd, uint32_t events, EventHandler* handler) {
  epoll_event ev{};
  ev.events = events;
  ev.data.ptr = handler;
  if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
    return Errno("epoll_ctl(add)");
  }
  return Status::OK();
}

Status EventLoop::Mod(int fd, uint32_t events, EventHandler* handler) {
  epoll_event ev{};
  ev.events = events;
  ev.data.ptr = handler;
  if (::epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev) < 0) {
    return Errno("epoll_ctl(mod)");
  }
  return Status::OK();
}

Status EventLoop::Del(int fd) {
  if (::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr) < 0) {
    return Errno("epoll_ctl(del)");
  }
  return Status::OK();
}

bool EventLoop::Post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    if (!accepting_posts_) return false;
    posted_.push_back(std::move(task));
  }
  // Skipping the write when already on the loop thread would save a syscall,
  // but posted tasks are drained after every dispatch round anyway.
  if (!OnLoopThread()) {
    uint64_t one = 1;
    (void)!::write(wake_fd_, &one, sizeof(one));
  }
  return true;
}

void EventLoop::DeferDelete(EventHandler* handler) {
  deferred_deletes_.push_back(handler);
}

void EventLoop::DrainWake() {
  uint64_t count;
  while (::read(wake_fd_, &count, sizeof(count)) > 0) {
  }
}

void EventLoop::Run() {
  constexpr int kMaxEvents = 256;
  epoll_event events[kMaxEvents];
  auto next_tick = std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(tick_ms_ ? tick_ms_ : 1000);
  while (running_.load(std::memory_order_acquire)) {
    int timeout_ms = 1000;
    if (tick_ms_ != 0) {
      auto now = std::chrono::steady_clock::now();
      auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                      next_tick - now)
                      .count();
      timeout_ms = left <= 0 ? 0 : static_cast<int>(left);
    }
    int n = ::epoll_wait(epfd_, events, kMaxEvents, timeout_ms);
    if (n < 0 && errno != EINTR) break;
    wakeups_.fetch_add(1, std::memory_order_relaxed);

    for (int i = 0; i < n; ++i) {
      auto* handler = static_cast<EventHandler*>(events[i].data.ptr);
      if (handler == nullptr) {
        DrainWake();
      } else {
        handler->OnEvents(events[i].events);
      }
    }

    // Posted tasks (query completions, cross-thread registrations) run after
    // fd dispatch so a completion never interleaves with the same
    // connection's read path mid-frame.
    std::vector<std::function<void()>> tasks;
    {
      std::lock_guard<std::mutex> lock(post_mu_);
      tasks.swap(posted_);
    }
    for (auto& task : tasks) task();

    if (tick_ms_ != 0 && std::chrono::steady_clock::now() >= next_tick) {
      if (ticker_) ticker_();
      next_tick = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(tick_ms_);
    }

    for (EventHandler* h : deferred_deletes_) delete h;
    deferred_deletes_.clear();
  }
  // The loop is exiting: run whatever was posted before Stop() flipped the
  // gate (e.g. Stop's own close-all-connections task), then free stragglers.
  std::vector<std::function<void()>> tasks;
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    accepting_posts_ = false;
    tasks.swap(posted_);
  }
  for (auto& task : tasks) task();
  for (EventHandler* h : deferred_deletes_) delete h;
  deferred_deletes_.clear();
}

}  // namespace aedb::net::reactor
