#ifndef AEDB_NET_REACTOR_FRAME_DECODER_H_
#define AEDB_NET_REACTOR_FRAME_DECODER_H_

#include <cstdint>

#include "net/protocol.h"

namespace aedb::net::reactor {

/// \brief Incremental decoder for the aedb length-prefixed wire protocol.
///
/// The event loop hands it whatever recv() produced — one byte, half a
/// header, three frames and a tail — and pops complete frames out as they
/// materialize. The state machine is the streaming equivalent of the
/// blocking ReadFull(header) / ReadFull(payload) pair the thread-per-
/// connection server used:
///
///     [header: <12 bytes buffered]  --12 bytes-->  [payload: header decoded,
///      waiting for payload_size bytes]  --complete-->  emit frame, back to
///      [header]
///
/// Validation order is identical to the blocking path and is what the
/// robustness tests pin: the 12-byte header (magic, version, reserved bits,
/// length bound) is rejected *before* any payload allocation, so a hostile
/// 4 GiB length prefix costs 12 buffered bytes, nothing more. A decode error
/// is sticky — the stream is out of sync and can never be trusted again.
class FrameDecoder {
 public:
  explicit FrameDecoder(uint32_t max_payload = kDefaultMaxPayload)
      : max_payload_(max_payload) {}

  /// Appends raw stream bytes. Cheap for the common whole-frame case: when
  /// the internal buffer is empty and `data` starts a frame, no copy is
  /// retained past the matching Next() calls.
  void Feed(const uint8_t* data, size_t n);
  void Feed(Slice data) { Feed(data.data(), data.size()); }

  enum class Poll {
    kFrame,     ///< *header/*payload hold one complete frame
    kNeedMore,  ///< no complete frame buffered; Feed() more bytes
    kError,     ///< framing broken (see error()); sticky
  };

  /// Pops the next complete frame if one is buffered.
  Poll Next(FrameHeader* header, Bytes* payload);

  /// Total bytes buffered and not yet consumed by Next().
  size_t buffered() const { return buf_.size() - pos_; }

  /// True when the buffer holds a strict prefix of a frame (and no complete
  /// frame ready ahead of it): the peer stopped mid-frame. This is the
  /// "stalled mid-frame" predicate the read-timeout reaper keys on — a
  /// complete-but-unconsumed frame (backpressure parking) is NOT a stall.
  bool has_partial_frame() const;

  /// True once a framing error has been observed (terminal).
  bool broken() const { return broken_; }
  const Status& error() const { return error_; }

 private:
  uint32_t max_payload_;
  Bytes buf_;
  size_t pos_ = 0;  // consumed prefix of buf_
  bool broken_ = false;
  Status error_ = Status::OK();
};

}  // namespace aedb::net::reactor

#endif  // AEDB_NET_REACTOR_FRAME_DECODER_H_
