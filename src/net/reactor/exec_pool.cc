#include "net/reactor/exec_pool.h"

#include <chrono>

namespace aedb::net::reactor {

ExecPool::ExecPool(Options options)
    : options_(options), queue_(options.queue_depth) {
  if (options_.base_threads == 0) options_.base_threads = 1;
  if (options_.max_threads < options_.base_threads) {
    options_.max_threads = options_.base_threads;
  }
  std::lock_guard<std::mutex> lock(threads_mu_);
  for (uint32_t i = 0; i < options_.base_threads; ++i) {
    uint64_t id = next_worker_id_++;
    threads_.fetch_add(1, std::memory_order_relaxed);
    workers_.emplace(id, std::thread([this, id] { Worker(id, false); }));
  }
  peak_threads_.store(options_.base_threads, std::memory_order_relaxed);
}

ExecPool::~ExecPool() { Stop(); }

bool ExecPool::TrySubmit(RunQueue::Task task) {
  if (stopping_.load(std::memory_order_acquire)) return false;
  if (!queue_.TryPush(std::move(task))) return false;
  MaybeGrow();
  return true;
}

void ExecPool::MaybeGrow() {
  // Grow when every worker is occupied: the queued task would otherwise sit
  // behind tasks that may be *blocked* (lock waits) rather than running —
  // and the queued task is often the very request (the lock holder's next
  // statement) that would unblock them. The check is racy by design: a stale
  // read grows at most one spare worker, which simply retires later.
  uint32_t live = threads_.load(std::memory_order_relaxed);
  if (busy_.load(std::memory_order_relaxed) < live ||
      live >= options_.max_threads) {
    return;
  }
  std::lock_guard<std::mutex> lock(threads_mu_);
  if (stopping_.load(std::memory_order_relaxed)) return;
  ReapFinishedLocked();
  live = threads_.load(std::memory_order_relaxed);
  if (live >= options_.max_threads) return;
  uint64_t id = next_worker_id_++;
  threads_.fetch_add(1, std::memory_order_relaxed);
  uint32_t peak = peak_threads_.load(std::memory_order_relaxed);
  while (live + 1 > peak && !peak_threads_.compare_exchange_weak(
                                peak, live + 1, std::memory_order_relaxed)) {
  }
  workers_.emplace(id, std::thread([this, id] { Worker(id, true); }));
}

void ExecPool::ReapFinishedLocked() {
  for (uint64_t id : finished_) {
    auto it = workers_.find(id);
    if (it != workers_.end()) {
      if (it->second.joinable()) it->second.join();
      workers_.erase(it);
    }
  }
  finished_.clear();
}

void ExecPool::Worker(uint64_t id, bool elastic) {
  RunQueue::Task task;
  for (;;) {
    bool got = elastic
                   ? queue_.PopFor(&task, std::chrono::milliseconds(
                                              options_.idle_retire_ms))
                   : queue_.Pop(&task);
    if (!got) {
      // Closed queue (shutdown) or — for elastic workers only — an idle
      // timeout: retire. Base workers use the untimed Pop and only exit on
      // close.
      break;
    }
    busy_.fetch_add(1, std::memory_order_relaxed);
    task();
    task = nullptr;  // release captured state promptly
    busy_.fetch_sub(1, std::memory_order_relaxed);
  }
  threads_.fetch_sub(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(threads_mu_);
  finished_.push_back(id);  // reaped by MaybeGrow or Stop
}

void ExecPool::Stop() {
  stopping_.store(true, std::memory_order_release);
  queue_.Close();
  std::map<uint64_t, std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(threads_mu_);
    workers.swap(workers_);
    finished_.clear();
  }
  for (auto& [id, w] : workers) {
    if (w.joinable()) w.join();
  }
}

}  // namespace aedb::net::reactor
