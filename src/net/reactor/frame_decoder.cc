#include "net/reactor/frame_decoder.h"

#include <cstring>

namespace aedb::net::reactor {

void FrameDecoder::Feed(const uint8_t* data, size_t n) {
  if (broken_ || n == 0) return;
  // Compact lazily: once the consumed prefix outgrows the live tail (and is
  // big enough to matter) slide the tail down so the buffer cannot creep up
  // under a long-lived connection.
  if (pos_ > 4096 && pos_ >= buf_.size() - pos_) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data, data + n);
}

FrameDecoder::Poll FrameDecoder::Next(FrameHeader* header, Bytes* payload) {
  if (broken_) return Poll::kError;
  if (buffered() < kFrameHeaderSize) return Poll::kNeedMore;
  auto h = DecodeFrameHeader(Slice(buf_.data() + pos_, kFrameHeaderSize),
                             max_payload_);
  if (!h.ok()) {
    broken_ = true;
    error_ = h.status();
    return Poll::kError;
  }
  if (buffered() < kFrameHeaderSize + h->payload_size) return Poll::kNeedMore;
  *header = *h;
  const uint8_t* body = buf_.data() + pos_ + kFrameHeaderSize;
  payload->assign(body, body + h->payload_size);
  pos_ += kFrameHeaderSize + h->payload_size;
  if (pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  }
  return Poll::kFrame;
}

bool FrameDecoder::has_partial_frame() const {
  if (broken_) return false;
  size_t avail = buffered();
  if (avail == 0) return false;
  if (avail < kFrameHeaderSize) return true;
  auto h = DecodeFrameHeader(Slice(buf_.data() + pos_, kFrameHeaderSize),
                             max_payload_);
  // A bad header is a protocol error, not a stall; Next() will surface it.
  if (!h.ok()) return false;
  return avail < kFrameHeaderSize + h->payload_size;
}

}  // namespace aedb::net::reactor
