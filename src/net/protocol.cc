#include "net/protocol.h"

namespace aedb::net {

const char* MsgTypeName(MsgType t) {
  switch (t) {
    case MsgType::kHandshake: return "Handshake";
    case MsgType::kQuery: return "Query";
    case MsgType::kQueryNamed: return "QueryNamed";
    case MsgType::kDdl: return "Ddl";
    case MsgType::kDescribe: return "Describe";
    case MsgType::kAttest: return "Attest";
    case MsgType::kBeginTxn: return "BeginTxn";
    case MsgType::kCommitTxn: return "CommitTxn";
    case MsgType::kRollbackTxn: return "RollbackTxn";
    case MsgType::kGetKeyDescription: return "GetKeyDescription";
    case MsgType::kForwardKeys: return "ForwardKeys";
    case MsgType::kForwardAuthorization: return "ForwardAuthorization";
    case MsgType::kColumnEncryption: return "ColumnEncryption";
    case MsgType::kGetCmk: return "GetCmk";
    case MsgType::kCekIdByName: return "CekIdByName";
    case MsgType::kAlterColumnMetadata: return "AlterColumnMetadata";
    case MsgType::kPing: return "Ping";
    case MsgType::kHandshakeAck: return "HandshakeAck";
    case MsgType::kResultSet: return "ResultSet";
    case MsgType::kOk: return "Ok";
    case MsgType::kDescribeResp: return "DescribeResp";
    case MsgType::kTxnResp: return "TxnResp";
    case MsgType::kKeyDescriptionResp: return "KeyDescriptionResp";
    case MsgType::kEncryptionTypeResp: return "EncryptionTypeResp";
    case MsgType::kCmkResp: return "CmkResp";
    case MsgType::kCekIdResp: return "CekIdResp";
    case MsgType::kPong: return "Pong";
    case MsgType::kError: return "Error";
  }
  return "Unknown";
}

void AppendFrame(Bytes* out, MsgType type, Slice payload) {
  PutU32(out, kProtocolMagic);
  out->push_back(kProtocolVersion);
  out->push_back(static_cast<uint8_t>(type));
  PutU16(out, 0);  // reserved
  PutU32(out, static_cast<uint32_t>(payload.size()));
  out->insert(out->end(), payload.data(), payload.data() + payload.size());
}

Bytes EncodeFrame(MsgType type, Slice payload) {
  Bytes out;
  out.reserve(kFrameHeaderSize + payload.size());
  AppendFrame(&out, type, payload);
  return out;
}

Result<FrameHeader> DecodeFrameHeader(Slice in, uint32_t max_payload) {
  if (in.size() < kFrameHeaderSize) {
    return Status::Corruption("frame header truncated");
  }
  size_t off = 0;
  uint32_t magic;
  AEDB_ASSIGN_OR_RETURN(magic, GetU32(in, &off));
  if (magic != kProtocolMagic) {
    return Status::Corruption("bad frame magic");
  }
  FrameHeader h;
  h.version = in[off++];
  if (h.version != kProtocolVersion) {
    return Status::NotSupported("unsupported protocol version " +
                                std::to_string(h.version));
  }
  h.type = static_cast<MsgType>(in[off++]);
  uint16_t reserved;
  AEDB_ASSIGN_OR_RETURN(reserved, GetU16(in, &off));
  if (reserved != 0) {
    return Status::Corruption("non-zero reserved bits in frame header");
  }
  AEDB_ASSIGN_OR_RETURN(h.payload_size, GetU32(in, &off));
  // Bound-check the length BEFORE anyone allocates for the payload: a hostile
  // 4 GiB length prefix must be rejected here, not in operator new.
  if (h.payload_size > max_payload) {
    return Status::OutOfRange("frame payload " + std::to_string(h.payload_size) +
                              " exceeds limit " + std::to_string(max_payload));
  }
  return h;
}

// ---------------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------------

void EncodeString(Bytes* out, std::string_view s) {
  PutLengthPrefixed(out, Slice(s));
}

Result<std::string> DecodeString(Slice in, size_t* offset) {
  Bytes raw;
  AEDB_ASSIGN_OR_RETURN(raw, GetLengthPrefixed(in, offset));
  return std::string(raw.begin(), raw.end());
}

Status MakeStatus(uint8_t code, std::string message) {
  switch (static_cast<StatusCode>(code)) {
    case StatusCode::kOk: return Status::OK();
    case StatusCode::kInvalidArgument: return Status::InvalidArgument(std::move(message));
    case StatusCode::kNotFound: return Status::NotFound(std::move(message));
    case StatusCode::kAlreadyExists: return Status::AlreadyExists(std::move(message));
    case StatusCode::kCorruption: return Status::Corruption(std::move(message));
    case StatusCode::kNotSupported: return Status::NotSupported(std::move(message));
    case StatusCode::kFailedPrecondition: return Status::FailedPrecondition(std::move(message));
    case StatusCode::kOutOfRange: return Status::OutOfRange(std::move(message));
    case StatusCode::kInternal: return Status::Internal(std::move(message));
    case StatusCode::kSecurityError: return Status::SecurityError(std::move(message));
    case StatusCode::kPermissionDenied: return Status::PermissionDenied(std::move(message));
    case StatusCode::kKeyNotInEnclave: return Status::KeyNotInEnclave(std::move(message));
    case StatusCode::kReplayDetected: return Status::ReplayDetected(std::move(message));
    case StatusCode::kTypeCheckError: return Status::TypeCheckError(std::move(message));
    case StatusCode::kUnavailable: return Status::Unavailable(std::move(message));
    case StatusCode::kSessionNotFound: return Status::SessionNotFound(std::move(message));
    case StatusCode::kTransactionAborted: return Status::TransactionAborted(std::move(message));
    case StatusCode::kDeadlineExceeded: return Status::DeadlineExceeded(std::move(message));
    case StatusCode::kOverloaded: return Status::Overloaded(std::move(message));
  }
  return Status::Internal("unknown wire status code " + std::to_string(code) +
                          ": " + message);
}

void EncodeStatusPayload(Bytes* out, const Status& status) {
  out->push_back(static_cast<uint8_t>(status.code()));
  EncodeString(out, status.message());
}

Status DecodeStatusPayload(Slice in, Status* decoded) {
  if (in.empty()) return Status::Corruption("status payload truncated");
  size_t off = 0;
  uint8_t code = in[off++];
  std::string msg;
  AEDB_ASSIGN_OR_RETURN(msg, DecodeString(in, &off));
  *decoded = MakeStatus(code, std::move(msg));
  return Status::OK();
}

void EncodeValue(Bytes* out, const types::Value& v) { v.EncodeTo(out); }

void EncodeValues(Bytes* out, const std::vector<types::Value>& vs) {
  PutU32(out, static_cast<uint32_t>(vs.size()));
  for (const types::Value& v : vs) EncodeValue(out, v);
}

Result<std::vector<types::Value>> DecodeValues(Slice in, size_t* offset) {
  uint32_t count;
  AEDB_ASSIGN_OR_RETURN(count, GetU32(in, offset));
  // No reserve(count): the count is attacker-controlled; truncation fails the
  // loop before memory does.
  std::vector<types::Value> vs;
  for (uint32_t i = 0; i < count; ++i) {
    types::Value v;
    AEDB_ASSIGN_OR_RETURN(v, types::Value::Decode(in, offset));
    vs.push_back(std::move(v));
  }
  return vs;
}

void EncodeNamedParams(Bytes* out, const client::NamedParams& params) {
  PutU32(out, static_cast<uint32_t>(params.size()));
  for (const auto& [name, value] : params) {
    EncodeString(out, name);
    EncodeValue(out, value);
  }
}

Result<client::NamedParams> DecodeNamedParams(Slice in, size_t* offset) {
  uint32_t count;
  AEDB_ASSIGN_OR_RETURN(count, GetU32(in, offset));
  client::NamedParams params;
  for (uint32_t i = 0; i < count; ++i) {
    std::string name;
    AEDB_ASSIGN_OR_RETURN(name, DecodeString(in, offset));
    types::Value v;
    AEDB_ASSIGN_OR_RETURN(v, types::Value::Decode(in, offset));
    params.emplace_back(std::move(name), std::move(v));
  }
  return params;
}

void EncodeEncryptionType(Bytes* out, const types::EncryptionType& enc) {
  out->push_back(static_cast<uint8_t>(enc.kind));
  PutU32(out, enc.cek_id);
  out->push_back(enc.enclave_enabled ? 1 : 0);
}

Result<types::EncryptionType> DecodeEncryptionType(Slice in, size_t* offset) {
  if (*offset >= in.size()) return Status::Corruption("enc type past end");
  uint8_t kind = in[(*offset)++];
  if (kind > static_cast<uint8_t>(types::EncKind::kRandomized)) {
    return Status::Corruption("unknown encryption kind on wire");
  }
  types::EncryptionType enc;
  enc.kind = static_cast<types::EncKind>(kind);
  AEDB_ASSIGN_OR_RETURN(enc.cek_id, GetU32(in, offset));
  if (*offset >= in.size()) return Status::Corruption("enc type past end");
  enc.enclave_enabled = in[(*offset)++] != 0;
  return enc;
}

void EncodeResultSet(Bytes* out, const sql::ResultSet& rs) {
  PutU32(out, static_cast<uint32_t>(rs.columns.size()));
  for (const std::string& c : rs.columns) EncodeString(out, c);
  PutU32(out, static_cast<uint32_t>(rs.column_enc.size()));
  for (const types::EncryptionType& e : rs.column_enc) {
    EncodeEncryptionType(out, e);
  }
  PutU32(out, static_cast<uint32_t>(rs.rows.size()));
  for (const auto& row : rs.rows) EncodeValues(out, row);
}

Result<sql::ResultSet> DecodeResultSet(Slice in) {
  size_t off = 0;
  sql::ResultSet rs;
  uint32_t ncols;
  AEDB_ASSIGN_OR_RETURN(ncols, GetU32(in, &off));
  for (uint32_t i = 0; i < ncols; ++i) {
    std::string name;
    AEDB_ASSIGN_OR_RETURN(name, DecodeString(in, &off));
    rs.columns.push_back(std::move(name));
  }
  uint32_t nenc;
  AEDB_ASSIGN_OR_RETURN(nenc, GetU32(in, &off));
  for (uint32_t i = 0; i < nenc; ++i) {
    types::EncryptionType e;
    AEDB_ASSIGN_OR_RETURN(e, DecodeEncryptionType(in, &off));
    rs.column_enc.push_back(e);
  }
  uint32_t nrows;
  AEDB_ASSIGN_OR_RETURN(nrows, GetU32(in, &off));
  for (uint32_t i = 0; i < nrows; ++i) {
    std::vector<types::Value> row;
    AEDB_ASSIGN_OR_RETURN(row, DecodeValues(in, &off));
    if (row.size() != rs.columns.size()) {
      return Status::Corruption("result row width mismatch");
    }
    rs.rows.push_back(std::move(row));
  }
  if (off != in.size()) {
    return Status::Corruption("trailing bytes after result set");
  }
  return rs;
}

void EncodeKeyDescription(Bytes* out, const server::KeyDescription& key) {
  PutU32(out, key.cek_id);
  PutLengthPrefixed(out, key.cek.Serialize());
  PutLengthPrefixed(out, key.cmk.Serialize());
}

Result<server::KeyDescription> DecodeKeyDescription(Slice in, size_t* offset) {
  server::KeyDescription key;
  AEDB_ASSIGN_OR_RETURN(key.cek_id, GetU32(in, offset));
  Bytes cek_raw;
  AEDB_ASSIGN_OR_RETURN(cek_raw, GetLengthPrefixed(in, offset));
  AEDB_ASSIGN_OR_RETURN(key.cek, keys::CekInfo::Deserialize(cek_raw));
  Bytes cmk_raw;
  AEDB_ASSIGN_OR_RETURN(cmk_raw, GetLengthPrefixed(in, offset));
  AEDB_ASSIGN_OR_RETURN(key.cmk, keys::CmkInfo::Deserialize(cmk_raw));
  return key;
}

void EncodeDescribeResult(Bytes* out, const server::DescribeResult& d) {
  PutU32(out, static_cast<uint32_t>(d.params.size()));
  for (const auto& p : d.params) {
    EncodeString(out, p.name);
    out->push_back(static_cast<uint8_t>(p.type));
    EncodeEncryptionType(out, p.enc);
  }
  PutU32(out, static_cast<uint32_t>(d.keys.size()));
  for (const auto& k : d.keys) EncodeKeyDescription(out, k);
  out->push_back(d.requires_enclave ? 1 : 0);
  PutU32(out, static_cast<uint32_t>(d.enclave_cek_ids.size()));
  for (uint32_t id : d.enclave_cek_ids) PutU32(out, id);
  out->push_back(d.attestation_included ? 1 : 0);
  if (d.attestation_included) {
    PutLengthPrefixed(out, d.health_certificate.Serialize());
    PutLengthPrefixed(out, d.attestation.report_bytes);
    PutLengthPrefixed(out, d.attestation.report_signature);
    PutLengthPrefixed(out, d.attestation.enclave_public_key);
    PutLengthPrefixed(out, d.attestation.enclave_dh_public);
    PutLengthPrefixed(out, d.attestation.dh_signature);
    PutU64(out, d.attestation.session_id);
  }
}

Result<server::DescribeResult> DecodeDescribeResult(Slice in) {
  size_t off = 0;
  server::DescribeResult d;
  uint32_t nparams;
  AEDB_ASSIGN_OR_RETURN(nparams, GetU32(in, &off));
  for (uint32_t i = 0; i < nparams; ++i) {
    server::DescribeResult::ParamInfo p;
    AEDB_ASSIGN_OR_RETURN(p.name, DecodeString(in, &off));
    if (off >= in.size()) return Status::Corruption("param type past end");
    uint8_t type = in[off++];
    if (type < static_cast<uint8_t>(types::TypeId::kBool) ||
        type > static_cast<uint8_t>(types::TypeId::kBinary)) {
      return Status::Corruption("unknown param type tag on wire");
    }
    p.type = static_cast<types::TypeId>(type);
    AEDB_ASSIGN_OR_RETURN(p.enc, DecodeEncryptionType(in, &off));
    d.params.push_back(std::move(p));
  }
  uint32_t nkeys;
  AEDB_ASSIGN_OR_RETURN(nkeys, GetU32(in, &off));
  for (uint32_t i = 0; i < nkeys; ++i) {
    server::KeyDescription k;
    AEDB_ASSIGN_OR_RETURN(k, DecodeKeyDescription(in, &off));
    d.keys.push_back(std::move(k));
  }
  if (off >= in.size()) return Status::Corruption("describe flags past end");
  d.requires_enclave = in[off++] != 0;
  uint32_t nids;
  AEDB_ASSIGN_OR_RETURN(nids, GetU32(in, &off));
  for (uint32_t i = 0; i < nids; ++i) {
    uint32_t id;
    AEDB_ASSIGN_OR_RETURN(id, GetU32(in, &off));
    d.enclave_cek_ids.push_back(id);
  }
  if (off >= in.size()) return Status::Corruption("describe flags past end");
  d.attestation_included = in[off++] != 0;
  if (d.attestation_included) {
    Bytes cert_raw;
    AEDB_ASSIGN_OR_RETURN(cert_raw, GetLengthPrefixed(in, &off));
    AEDB_ASSIGN_OR_RETURN(d.health_certificate,
                          attestation::HealthCertificate::Deserialize(cert_raw));
    AEDB_ASSIGN_OR_RETURN(d.attestation.report_bytes,
                          GetLengthPrefixed(in, &off));
    AEDB_ASSIGN_OR_RETURN(d.attestation.report_signature,
                          GetLengthPrefixed(in, &off));
    AEDB_ASSIGN_OR_RETURN(d.attestation.enclave_public_key,
                          GetLengthPrefixed(in, &off));
    AEDB_ASSIGN_OR_RETURN(d.attestation.enclave_dh_public,
                          GetLengthPrefixed(in, &off));
    AEDB_ASSIGN_OR_RETURN(d.attestation.dh_signature,
                          GetLengthPrefixed(in, &off));
    AEDB_ASSIGN_OR_RETURN(d.attestation.session_id, GetU64(in, &off));
  }
  if (off != in.size()) {
    return Status::Corruption("trailing bytes after describe result");
  }
  return d;
}

// ---------------------------------------------------------------------------
// Request payloads
// ---------------------------------------------------------------------------

Bytes HandshakeReq::Encode() const {
  Bytes out;
  PutU32(&out, client_version);
  EncodeString(&out, client_name);
  return out;
}

Result<HandshakeReq> HandshakeReq::Decode(Slice in) {
  size_t off = 0;
  HandshakeReq req;
  AEDB_ASSIGN_OR_RETURN(req.client_version, GetU32(in, &off));
  AEDB_ASSIGN_OR_RETURN(req.client_name, DecodeString(in, &off));
  return req;
}

Bytes HandshakeResp::Encode() const {
  Bytes out;
  PutU32(&out, server_version);
  PutU64(&out, connection_id);
  PutU32(&out, max_payload);
  PutU32(&out, shard_count);
  return out;
}

Result<HandshakeResp> HandshakeResp::Decode(Slice in) {
  size_t off = 0;
  HandshakeResp resp;
  AEDB_ASSIGN_OR_RETURN(resp.server_version, GetU32(in, &off));
  AEDB_ASSIGN_OR_RETURN(resp.connection_id, GetU64(in, &off));
  AEDB_ASSIGN_OR_RETURN(resp.max_payload, GetU32(in, &off));
  // Trailing shard count is optional: a pre-sharding server has one shard.
  if (off < in.size()) AEDB_ASSIGN_OR_RETURN(resp.shard_count, GetU32(in, &off));
  if (resp.shard_count == 0) resp.shard_count = 1;
  return resp;
}

Bytes QueryReq::Encode() const {
  Bytes out;
  EncodeString(&out, sql);
  EncodeValues(&out, params);
  PutU64(&out, txn);
  PutU64(&out, session_id);
  out.push_back(retry);
  PutU32(&out, deadline_ms);
  return out;
}

Result<QueryReq> QueryReq::Decode(Slice in) {
  size_t off = 0;
  QueryReq req;
  AEDB_ASSIGN_OR_RETURN(req.sql, DecodeString(in, &off));
  AEDB_ASSIGN_OR_RETURN(req.params, DecodeValues(in, &off));
  AEDB_ASSIGN_OR_RETURN(req.txn, GetU64(in, &off));
  AEDB_ASSIGN_OR_RETURN(req.session_id, GetU64(in, &off));
  // Trailing retry counter is optional: absent (older client) means attempt 0.
  if (off < in.size()) req.retry = in[off++];
  // Trailing deadline is likewise optional: absent means no deadline.
  if (off < in.size()) AEDB_ASSIGN_OR_RETURN(req.deadline_ms, GetU32(in, &off));
  return req;
}

Bytes QueryNamedReq::Encode() const {
  Bytes out;
  EncodeString(&out, sql);
  EncodeNamedParams(&out, params);
  PutU64(&out, txn);
  PutU64(&out, session_id);
  out.push_back(retry);
  PutU32(&out, deadline_ms);
  return out;
}

Result<QueryNamedReq> QueryNamedReq::Decode(Slice in) {
  size_t off = 0;
  QueryNamedReq req;
  AEDB_ASSIGN_OR_RETURN(req.sql, DecodeString(in, &off));
  AEDB_ASSIGN_OR_RETURN(req.params, DecodeNamedParams(in, &off));
  AEDB_ASSIGN_OR_RETURN(req.txn, GetU64(in, &off));
  AEDB_ASSIGN_OR_RETURN(req.session_id, GetU64(in, &off));
  if (off < in.size()) req.retry = in[off++];
  if (off < in.size()) AEDB_ASSIGN_OR_RETURN(req.deadline_ms, GetU32(in, &off));
  return req;
}

Bytes DdlReq::Encode() const {
  Bytes out;
  EncodeString(&out, sql);
  PutU64(&out, session_id);
  PutU32(&out, shard);
  return out;
}

Result<DdlReq> DdlReq::Decode(Slice in) {
  size_t off = 0;
  DdlReq req;
  AEDB_ASSIGN_OR_RETURN(req.sql, DecodeString(in, &off));
  AEDB_ASSIGN_OR_RETURN(req.session_id, GetU64(in, &off));
  // Trailing shard is optional: absent means broadcast (pre-sharding frame).
  if (off < in.size()) AEDB_ASSIGN_OR_RETURN(req.shard, GetU32(in, &off));
  return req;
}

Bytes DescribeReq::Encode() const {
  Bytes out;
  EncodeString(&out, sql);
  PutLengthPrefixed(&out, client_dh_public);
  PutU32(&out, shard);
  return out;
}

Result<DescribeReq> DescribeReq::Decode(Slice in) {
  size_t off = 0;
  DescribeReq req;
  AEDB_ASSIGN_OR_RETURN(req.sql, DecodeString(in, &off));
  AEDB_ASSIGN_OR_RETURN(req.client_dh_public, GetLengthPrefixed(in, &off));
  if (off < in.size()) AEDB_ASSIGN_OR_RETURN(req.shard, GetU32(in, &off));
  return req;
}

Bytes ForwardReq::Encode() const {
  Bytes out;
  PutU64(&out, session_id);
  PutU64(&out, nonce);
  PutLengthPrefixed(&out, sealed);
  PutU32(&out, shard);
  return out;
}

Result<ForwardReq> ForwardReq::Decode(Slice in) {
  size_t off = 0;
  ForwardReq req;
  AEDB_ASSIGN_OR_RETURN(req.session_id, GetU64(in, &off));
  AEDB_ASSIGN_OR_RETURN(req.nonce, GetU64(in, &off));
  AEDB_ASSIGN_OR_RETURN(req.sealed, GetLengthPrefixed(in, &off));
  if (off < in.size()) AEDB_ASSIGN_OR_RETURN(req.shard, GetU32(in, &off));
  return req;
}

Bytes ColumnReq::Encode() const {
  Bytes out;
  EncodeString(&out, table);
  EncodeString(&out, column);
  out.push_back(has_spec ? 1 : 0);
  if (has_spec) {
    out.push_back(spec.encrypted ? 1 : 0);
    EncodeString(&out, spec.cek_name);
    out.push_back(static_cast<uint8_t>(spec.kind));
    EncodeString(&out, spec.algorithm);
  }
  return out;
}

Result<ColumnReq> ColumnReq::Decode(Slice in) {
  size_t off = 0;
  ColumnReq req;
  AEDB_ASSIGN_OR_RETURN(req.table, DecodeString(in, &off));
  AEDB_ASSIGN_OR_RETURN(req.column, DecodeString(in, &off));
  if (off >= in.size()) return Status::Corruption("column req flags past end");
  req.has_spec = in[off++] != 0;
  if (req.has_spec) {
    if (off >= in.size()) return Status::Corruption("column spec past end");
    req.spec.encrypted = in[off++] != 0;
    AEDB_ASSIGN_OR_RETURN(req.spec.cek_name, DecodeString(in, &off));
    if (off >= in.size()) return Status::Corruption("column spec past end");
    uint8_t kind = in[off++];
    if (kind > static_cast<uint8_t>(types::EncKind::kRandomized)) {
      return Status::Corruption("unknown encryption kind on wire");
    }
    req.spec.kind = static_cast<types::EncKind>(kind);
    AEDB_ASSIGN_OR_RETURN(req.spec.algorithm, DecodeString(in, &off));
  }
  return req;
}

}  // namespace aedb::net
