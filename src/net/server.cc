#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "fault/fault.h"

namespace aedb::net {

namespace {

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

void SetTimeout(int fd, int opt, uint32_t ms) {
  timeval tv;
  tv.tv_sec = ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, opt, &tv, sizeof(tv));
}

/// Reads exactly `n` bytes. Returns OK with *eof=true when the peer closed
/// cleanly before the first byte (frame boundary); truncation inside the
/// range is an error (mid-frame disconnect).
Status ReadFull(int fd, uint8_t* buf, size_t n, bool* eof) {
  *eof = false;
  size_t got = 0;
  while (got < n) {
    ssize_t r = ::recv(fd, buf + got, n - got, 0);
    if (r == 0) {
      if (got == 0) {
        *eof = true;
        return Status::OK();
      }
      return Status::Corruption("peer disconnected mid-frame");
    }
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::Corruption("read timeout mid-frame");
      }
      return Errno("recv");
    }
    got += static_cast<size_t>(r);
  }
  return Status::OK();
}

Status WriteFull(int fd, Slice data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t w = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    sent += static_cast<size_t>(w);
  }
  return Status::OK();
}

void AppendErrorFrame(Bytes* out, const Status& status) {
  Bytes payload;
  EncodeStatusPayload(&payload, status);
  AppendFrame(out, MsgType::kError, payload);
}

}  // namespace

Server::Server(server::Database* db, ServerConfig config)
    : db_(db), config_(std::move(config)) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (running_.load()) return Status::FailedPrecondition("server already running");
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad bind address: " + config_.bind_address);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status st = Errno("bind " + config_.bind_address + ":" +
                      std::to_string(config_.port));
    ::close(fd);
    return st;
  }
  if (::listen(fd, config_.backlog) < 0) {
    Status st = Errno("listen");
    ::close(fd);
    return st;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    Status st = Errno("getsockname");
    ::close(fd);
    return st;
  }
  port_ = ntohs(bound.sin_port);
  listen_fd_ = fd;
  running_.store(true, std::memory_order_release);
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void Server::Stop() {
  if (!running_.exchange(false)) {
    // Never started or already stopped; still reap any leftover workers.
  }
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (acceptor_.joinable()) acceptor_.join();
  // Wake every worker blocked in recv, then join them all.
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (auto& [id, fd] : live_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  std::map<uint64_t, std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    workers.swap(workers_);
  }
  for (auto& [id, t] : workers) {
    if (t.joinable()) t.join();
  }
}

void Server::RefreshEnclaveStats() const {
  if (db_ == nullptr) return;
  server::DatabaseStats s = db_->Stats();
  stats_.enclave_batch_evals.store(s.enclave_batch_evals,
                                   std::memory_order_relaxed);
  stats_.enclave_batched_values.store(s.enclave_batched_values,
                                      std::memory_order_relaxed);
  stats_.enclave_transitions.store(s.enclave_transitions,
                                   std::memory_order_relaxed);
  stats_.queries_admitted.store(s.queries_admitted, std::memory_order_relaxed);
  stats_.queries_rejected.store(s.queries_rejected, std::memory_order_relaxed);
  stats_.queries_expired.store(s.queries_expired, std::memory_order_relaxed);
  stats_.queue_depth_highwater.store(s.pool_queue_highwater,
                                     std::memory_order_relaxed);
  stats_.lock_waits_expired.store(s.lock_waits_expired,
                                  std::memory_order_relaxed);
}

void Server::RejectConnection(int fd) {
  stats_.connections_rejected.fetch_add(1, std::memory_order_relaxed);
  Bytes err;
  AppendErrorFrame(&err, Status::Overloaded(AppendRetryAfterHint(
                             "server connection limit reached",
                             config_.overload_retry_after_ms)));
  stats_.frames_out.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_out.fetch_add(err.size(), std::memory_order_relaxed);
  (void)WriteFull(fd, err);
  // Half-close and drain briefly: if we close() with the client's handshake
  // bytes unread, the kernel may RST and destroy the queued error frame
  // before the client sees its typed rejection. The drain is doubly bounded
  // — total elapsed time and total bytes — so a client that keeps streaming
  // cannot hold this thread beyond the budget.
  ::shutdown(fd, SHUT_WR);
  SetTimeout(fd, SO_RCVTIMEO, 50);
  const auto drain_deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(200);
  size_t drained = 0;
  uint8_t sink[256];
  while (drained < 64 * 1024 &&
         std::chrono::steady_clock::now() < drain_deadline) {
    ssize_t n = ::recv(fd, sink, sizeof(sink), 0);
    if (n <= 0) break;  // EOF, error, or 50 ms of idle: the frame is safe
    drained += static_cast<size_t>(n);
  }
  ::close(fd);
}

void Server::ReapFinishedWorkers() {
  std::vector<std::thread> done;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (uint64_t id : finished_) {
      auto it = workers_.find(id);
      if (it != workers_.end()) {
        done.push_back(std::move(it->second));
        workers_.erase(it);
      }
    }
    finished_.clear();
  }
  for (auto& t : done) {
    if (t.joinable()) t.join();
  }
}

void Server::AcceptLoop() {
  while (running_.load(std::memory_order_acquire)) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed by Stop(), or fatal
    }
    if (!running_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    // Finished connections leave their thread objects behind; join them here
    // so connection churn cannot grow the worker map without bound.
    ReapFinishedWorkers();
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    SetTimeout(fd, SO_RCVTIMEO, config_.read_timeout_ms);
    SetTimeout(fd, SO_SNDTIMEO, config_.write_timeout_ms);

    // Admission at the connection level: turn surplus connections away with
    // a typed kOverloaded frame instead of accept-and-starve.
    bool reject =
        config_.max_connections > 0 &&
        stats_.connections_active.load(std::memory_order_relaxed) >=
            config_.max_connections;
    fault::FaultSpec spec;
    if (AEDB_FAULT_FIRED("net/accept_reject", &spec)) reject = true;
    if (reject) {
      // Reject off the acceptor thread: the polite write-then-drain in
      // RejectConnection can take up to ~200 ms against a hostile client,
      // and the acceptor must keep admitting legitimate connections at full
      // speed precisely when the server is at its cap. The thread rides the
      // normal workers_/finished_ machinery so Stop() joins it.
      std::lock_guard<std::mutex> lock(conn_mu_);
      uint64_t reject_id = next_connection_id_++;
      workers_[reject_id] = std::thread([this, fd, reject_id] {
        RejectConnection(fd);
        std::lock_guard<std::mutex> inner(conn_mu_);
        finished_.push_back(reject_id);
      });
      continue;
    }

    stats_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    stats_.connections_active.fetch_add(1, std::memory_order_relaxed);
    uint64_t conn_id;
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      conn_id = next_connection_id_++;
      live_fds_[conn_id] = fd;
      workers_[conn_id] =
          std::thread([this, fd, conn_id] { ServeConnection(fd, conn_id); });
    }
  }
}

void Server::ServeConnection(int fd, uint64_t conn_id) {
  bool handshaken = false;
  Bytes header_buf(kFrameHeaderSize);
  Bytes payload;
  while (running_.load(std::memory_order_acquire)) {
    bool eof = false;
    Status st = ReadFull(fd, header_buf.data(), header_buf.size(), &eof);
    if (eof) break;
    if (!st.ok()) {
      stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    auto header = DecodeFrameHeader(header_buf, config_.max_payload);
    if (!header.ok()) {
      // The stream is out of sync; tell the peer why and hang up.
      stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      Bytes err;
      AppendErrorFrame(&err, header.status());
      stats_.frames_out.fetch_add(1, std::memory_order_relaxed);
      stats_.bytes_out.fetch_add(err.size(), std::memory_order_relaxed);
      (void)WriteFull(fd, err);
      break;
    }
    payload.resize(header->payload_size);
    if (header->payload_size > 0) {
      st = ReadFull(fd, payload.data(), payload.size(), &eof);
      if (eof || !st.ok()) {
        stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        break;
      }
    }
    stats_.frames_in.fetch_add(1, std::memory_order_relaxed);
    stats_.bytes_in.fetch_add(kFrameHeaderSize + payload.size(),
                              std::memory_order_relaxed);

    Bytes response;
    bool keep_open = HandleFrame(*header, payload, conn_id, &handshaken,
                                 &response);

    // Fault points on the response path (no-ops unless armed; see fault.h).
    fault::FaultSpec spec;
    if (header->type == MsgType::kHandshake &&
        AEDB_FAULT_FIRED("net/handshake_stall", &spec)) {
      // Hold the handshake reply long enough for the client's read timeout
      // to expire (arg = stall in ms, default 100).
      std::this_thread::sleep_for(
          std::chrono::milliseconds(spec.arg != 0 ? spec.arg : 100));
    }
    if (AEDB_FAULT_FIRED("net/delay_response", &spec)) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(spec.arg != 0 ? spec.arg : 50));
    }
    if (!response.empty() && AEDB_FAULT_FIRED("net/drop_mid_frame", &spec)) {
      // Write a strict prefix of the response frame (arg = bytes, default
      // half) and hang up: the client observes a mid-frame disconnect.
      size_t keep = spec.arg != 0 && spec.arg < response.size()
                        ? static_cast<size_t>(spec.arg)
                        : response.size() / 2;
      stats_.bytes_out.fetch_add(keep, std::memory_order_relaxed);
      (void)WriteFull(fd, Slice(response.data(), keep));
      break;
    }

    if (!response.empty()) {
      stats_.frames_out.fetch_add(1, std::memory_order_relaxed);
      stats_.bytes_out.fetch_add(response.size(), std::memory_order_relaxed);
      if (!WriteFull(fd, response).ok()) break;
    }
    if (!keep_open) break;
  }
  ::close(fd);
  stats_.connections_active.fetch_sub(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(conn_mu_);
  live_fds_.erase(conn_id);
  // Mark the thread reapable; the acceptor (or Stop) joins it.
  finished_.push_back(conn_id);
}

bool Server::HandleFrame(const FrameHeader& header, Slice payload,
                         uint64_t conn_id, bool* handshaken, Bytes* response) {
  auto reply_error = [&](const Status& st) {
    stats_.request_errors.fetch_add(1, std::memory_order_relaxed);
    AppendErrorFrame(response, st);
  };
  auto reply = [&](MsgType type, const Bytes& body) {
    AppendFrame(response, type, body);
  };
  auto reply_status = [&](const Status& st) {
    if (st.ok()) {
      reply(MsgType::kOk, {});
    } else {
      reply_error(st);
    }
  };

  if (!*handshaken && header.type != MsgType::kHandshake) {
    reply_error(Status::FailedPrecondition(
        "first frame on a connection must be Handshake"));
    return false;
  }

  switch (header.type) {
    case MsgType::kHandshake: {
      auto req = HandshakeReq::Decode(payload);
      if (!req.ok()) {
        reply_error(req.status());
        return false;
      }
      if (req->client_version != kProtocolVersion) {
        reply_error(Status::NotSupported(
            "client protocol version " + std::to_string(req->client_version) +
            " not supported"));
        return false;
      }
      *handshaken = true;
      HandshakeResp resp;
      resp.server_version = kProtocolVersion;
      resp.connection_id = conn_id;
      resp.max_payload = config_.max_payload;
      reply(MsgType::kHandshakeAck, resp.Encode());
      return true;
    }

    case MsgType::kPing: {
      reply(MsgType::kPong, payload.ToBytes());
      return true;
    }

    case MsgType::kQuery: {
      auto req = QueryReq::Decode(payload);
      if (!req.ok()) {
        reply_error(req.status());
        return true;
      }
      if (req->retry != 0) {
        stats_.retries_seen.fetch_add(1, std::memory_order_relaxed);
      }
      {
        // Worker-side internal failure: answer with a typed error frame
        // (never a silent close) so the driver can classify retryability.
        fault::FaultSpec spec;
        if (AEDB_FAULT_FIRED("net/worker_error", &spec)) {
          reply_error(spec.status.code() == StatusCode::kInternal
                          ? Status::Unavailable("injected worker failure")
                          : spec.status);
          return true;
        }
      }
      auto rs = db_->Execute(req->sql, req->params, req->txn, req->session_id,
                             req->deadline_ms);
      if (!rs.ok()) {
        reply_error(rs.status());
        return true;
      }
      Bytes body;
      EncodeResultSet(&body, *rs);
      reply(MsgType::kResultSet, body);
      return true;
    }

    case MsgType::kQueryNamed: {
      auto req = QueryNamedReq::Decode(payload);
      if (!req.ok()) {
        reply_error(req.status());
        return true;
      }
      if (req->retry != 0) {
        stats_.retries_seen.fetch_add(1, std::memory_order_relaxed);
      }
      {
        fault::FaultSpec spec;
        if (AEDB_FAULT_FIRED("net/worker_error", &spec)) {
          reply_error(spec.status.code() == StatusCode::kInternal
                          ? Status::Unavailable("injected worker failure")
                          : spec.status);
          return true;
        }
      }
      auto rs = db_->ExecuteNamed(req->sql, req->params, req->txn,
                                  req->session_id, req->deadline_ms);
      if (!rs.ok()) {
        reply_error(rs.status());
        return true;
      }
      Bytes body;
      EncodeResultSet(&body, *rs);
      reply(MsgType::kResultSet, body);
      return true;
    }

    case MsgType::kDdl: {
      auto req = DdlReq::Decode(payload);
      if (!req.ok()) {
        reply_error(req.status());
        return true;
      }
      reply_status(db_->ExecuteDdl(req->sql, req->session_id));
      return true;
    }

    case MsgType::kDescribe: {
      auto req = DescribeReq::Decode(payload);
      if (!req.ok()) {
        reply_error(req.status());
        return true;
      }
      auto d = db_->DescribeParameterEncryption(req->sql,
                                                req->client_dh_public);
      if (!d.ok()) {
        reply_error(d.status());
        return true;
      }
      Bytes body;
      EncodeDescribeResult(&body, *d);
      reply(MsgType::kDescribeResp, body);
      return true;
    }

    case MsgType::kAttest: {
      auto req = DescribeReq::Decode(payload);
      if (!req.ok()) {
        reply_error(req.status());
        return true;
      }
      auto d = db_->Attest(req->client_dh_public);
      if (!d.ok()) {
        reply_error(d.status());
        return true;
      }
      stats_.sessions_attested.fetch_add(1, std::memory_order_relaxed);
      Bytes body;
      EncodeDescribeResult(&body, *d);
      reply(MsgType::kDescribeResp, body);
      return true;
    }

    case MsgType::kBeginTxn: {
      Bytes body;
      PutU64(&body, db_->BeginTransaction());
      reply(MsgType::kTxnResp, body);
      return true;
    }

    case MsgType::kCommitTxn:
    case MsgType::kRollbackTxn: {
      size_t off = 0;
      auto txn = GetU64(payload, &off);
      if (!txn.ok()) {
        reply_error(txn.status());
        return true;
      }
      reply_status(header.type == MsgType::kCommitTxn
                       ? db_->CommitTransaction(*txn)
                       : db_->RollbackTransaction(*txn));
      return true;
    }

    case MsgType::kGetKeyDescription: {
      size_t off = 0;
      auto cek_id = GetU32(payload, &off);
      if (!cek_id.ok()) {
        reply_error(cek_id.status());
        return true;
      }
      auto key = db_->GetKeyDescription(*cek_id);
      if (!key.ok()) {
        reply_error(key.status());
        return true;
      }
      Bytes body;
      EncodeKeyDescription(&body, *key);
      reply(MsgType::kKeyDescriptionResp, body);
      return true;
    }

    case MsgType::kForwardKeys:
    case MsgType::kForwardAuthorization: {
      auto req = ForwardReq::Decode(payload);
      if (!req.ok()) {
        reply_error(req.status());
        return true;
      }
      reply_status(header.type == MsgType::kForwardKeys
                       ? db_->ForwardKeysToEnclave(req->session_id, req->nonce,
                                                   req->sealed)
                       : db_->ForwardEncryptionAuthorization(
                             req->session_id, req->nonce, req->sealed));
      return true;
    }

    case MsgType::kColumnEncryption: {
      auto req = ColumnReq::Decode(payload);
      if (!req.ok()) {
        reply_error(req.status());
        return true;
      }
      auto enc = db_->ColumnEncryption(req->table, req->column);
      if (!enc.ok()) {
        reply_error(enc.status());
        return true;
      }
      Bytes body;
      EncodeEncryptionType(&body, *enc);
      reply(MsgType::kEncryptionTypeResp, body);
      return true;
    }

    case MsgType::kGetCmk: {
      size_t off = 0;
      auto name = DecodeString(payload, &off);
      if (!name.ok()) {
        reply_error(name.status());
        return true;
      }
      auto cmk = db_->catalog().GetCmk(*name);
      if (!cmk.ok()) {
        reply_error(cmk.status());
        return true;
      }
      Bytes body;
      PutLengthPrefixed(&body, (*cmk)->Serialize());
      reply(MsgType::kCmkResp, body);
      return true;
    }

    case MsgType::kCekIdByName: {
      size_t off = 0;
      auto name = DecodeString(payload, &off);
      if (!name.ok()) {
        reply_error(name.status());
        return true;
      }
      auto id = db_->catalog().CekIdByName(*name);
      if (!id.ok()) {
        reply_error(id.status());
        return true;
      }
      Bytes body;
      PutU32(&body, *id);
      reply(MsgType::kCekIdResp, body);
      return true;
    }

    case MsgType::kAlterColumnMetadata: {
      auto req = ColumnReq::Decode(payload);
      if (!req.ok()) {
        reply_error(req.status());
        return true;
      }
      if (!req->has_spec) {
        reply_error(Status::InvalidArgument(
            "AlterColumnMetadata requires an encryption spec"));
        return true;
      }
      reply_status(db_->AlterColumnMetadataForClientTool(
          req->table, req->column, req->spec));
      return true;
    }

    default:
      // Unknown request type: answer cleanly and keep the connection; the
      // framing itself was valid so the stream is still in sync.
      reply_error(Status::NotSupported(
          "unknown message type " +
          std::to_string(static_cast<int>(header.type))));
      return true;
  }
}

}  // namespace aedb::net
