#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <future>
#include <thread>
#include <unordered_map>
#include <utility>

#include "fault/fault.h"

namespace aedb::net {

namespace {

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

void AppendErrorFrame(Bytes* out, const Status& status) {
  Bytes payload;
  EncodeStatusPayload(&payload, status);
  AppendFrame(out, MsgType::kError, payload);
}

}  // namespace

/// One epoll loop plus the connections it owns. The maps are touched only
/// on the loop's own thread (delegate callbacks, posted completions, the
/// ticker all run there), so they need no lock.
struct Server::IoShard : public reactor::ConnectionDelegate {
  Server* server = nullptr;
  reactor::EventLoop loop;
  std::unordered_map<uint64_t, reactor::Connection*> conns;
  /// Connections that were turned away at accept: they exist only to flush
  /// a typed kOverloaded frame and drain briefly. Never counted active.
  std::unordered_map<uint64_t, reactor::Connection*> rejects;

  bool OnFrame(reactor::Connection* conn, const FrameHeader& header,
               Bytes payload) override {
    return server->OnFrame(this, conn, header, std::move(payload));
  }
  void OnProtocolError(reactor::Connection* conn,
                       const Status& error) override {
    server->OnProtocolError(this, conn, error);
  }
  void OnClosed(reactor::Connection* conn,
                reactor::CloseReason reason) override {
    server->OnConnClosed(this, conn, reason);
  }
  void OnBytesIn(size_t n) override {
    server->stats_.bytes_in.fetch_add(n, std::memory_order_relaxed);
  }
};

/// The listening socket's event handler; lives on shard 0's loop.
struct Server::AcceptHandler : public reactor::EventHandler {
  explicit AcceptHandler(Server* s) : server(s) {}
  void OnEvents(uint32_t) override { server->DoAccept(); }
  Server* server;
};

Server::Server(server::SqlBackend* db, ServerConfig config)
    : db_(db), config_(std::move(config)) {}

Server::~Server() { Stop(); }

reactor::Connection::Options Server::ConnOptions() const {
  reactor::Connection::Options opts;
  opts.max_payload = config_.max_payload;
  opts.write_buffer_cap = config_.write_buffer_cap != 0
                              ? config_.write_buffer_cap
                              : config_.max_payload + (1u << 20);
  opts.read_timeout_ms = config_.read_timeout_ms;
  opts.write_timeout_ms = config_.write_timeout_ms;
  opts.idle_timeout_ms = config_.idle_timeout_ms;
  opts.handshake_timeout_ms = config_.handshake_timeout_ms;
  return opts;
}

Status Server::Start() {
  if (running_.load()) {
    return Status::FailedPrecondition("server already running");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad bind address: " + config_.bind_address);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status st = Errno("bind " + config_.bind_address + ":" +
                      std::to_string(config_.port));
    ::close(fd);
    return st;
  }
  if (::listen(fd, config_.backlog) < 0) {
    Status st = Errno("listen");
    ::close(fd);
    return st;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    Status st = Errno("getsockname");
    ::close(fd);
    return st;
  }
  port_ = ntohs(bound.sin_port);
  listen_fd_ = fd;

  reactor::ExecPool::Options pool_opts;
  pool_opts.base_threads = config_.exec_threads != 0 ? config_.exec_threads : 1;
  pool_opts.max_threads = config_.max_exec_threads;
  pool_opts.queue_depth = config_.run_queue_depth;
  pool_ = std::make_unique<reactor::ExecPool>(pool_opts);

  // Sweep granularity: a quarter of the tightest timeout, within [10, 100]
  // ms. Connection deadlines are therefore enforced within ~1.25x their
  // nominal value in the worst case, at negligible idle cost.
  uint64_t tightest = config_.read_timeout_ms != 0 ? config_.read_timeout_ms
                                                   : 30'000;
  auto tighten = [&](uint32_t v) {
    if (v != 0 && v < tightest) tightest = v;
  };
  tighten(config_.write_timeout_ms);
  tighten(config_.handshake_timeout_ms);
  tighten(config_.idle_timeout_ms);
  uint32_t tick_ms =
      static_cast<uint32_t>(std::min<uint64_t>(100, std::max<uint64_t>(10, tightest / 4)));

  uint32_t io_threads = config_.io_threads != 0 ? config_.io_threads : 1;
  for (uint32_t i = 0; i < io_threads; ++i) {
    auto shard = std::make_unique<IoShard>();
    shard->server = this;
    IoShard* raw = shard.get();
    Status st = shard->loop.Start(tick_ms, [this, raw] { SweepShard(raw); });
    if (!st.ok()) {
      shards_.clear();
      pool_.reset();
      ::close(listen_fd_);
      listen_fd_ = -1;
      return st;
    }
    shards_.push_back(std::move(shard));
  }

  accept_handler_ = std::make_unique<AcceptHandler>(this);
  Status st = shards_[0]->loop.Add(listen_fd_, EPOLLIN, accept_handler_.get());
  if (!st.ok()) {
    for (auto& shard : shards_) shard->loop.Stop();
    shards_.clear();
    pool_.reset();
    accept_handler_.reset();
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  running_.store(true, std::memory_order_release);
  return Status::OK();
}

void Server::Stop() {
  running_.store(false, std::memory_order_release);
  if (shards_.empty() && pool_ == nullptr) {
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return;
  }

  // 1. Retire the listener on its own loop thread (closing it from here
  //    could race an in-flight DoAccept against kernel fd reuse).
  if (listen_fd_ >= 0 && !shards_.empty()) {
    std::promise<void> done;
    auto fut = done.get_future();
    bool posted = shards_[0]->loop.Post([this, &done] {
      (void)shards_[0]->loop.Del(listen_fd_);
      ::close(listen_fd_);
      listen_fd_ = -1;
      done.set_value();
    });
    if (posted) {
      fut.wait();
    } else {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
  }

  // 2. Drain the execution pool: in-flight requests finish and post their
  //    completions (the loops are still running to take them); queued-but-
  //    unstarted work is dropped — its connections die in step 3 anyway.
  if (pool_) {
    stats_.run_queue_highwater.store(pool_->queue_highwater(),
                                     std::memory_order_relaxed);
    stats_.run_queue_sheds.store(pool_->queue_rejected(),
                                 std::memory_order_relaxed);
    stats_.exec_threads_peak.store(pool_->peak_threads(),
                                   std::memory_order_relaxed);
    pool_->Stop();
  }

  // 3. Close every connection on its own loop, then stop the loops. The
  //    close-all task is posted before Stop so the loop runs it on its way
  //    out.
  for (auto& shard : shards_) {
    IoShard* raw = shard.get();
    (void)raw->loop.Post([this, raw] {
      std::vector<reactor::Connection*> all;
      all.reserve(raw->conns.size() + raw->rejects.size());
      for (auto& [id, c] : raw->conns) all.push_back(c);
      for (auto& [id, c] : raw->rejects) all.push_back(c);
      for (auto* c : all) c->Close(reactor::CloseReason::kServerStop);
    });
  }
  for (auto& shard : shards_) {
    stats_.epoll_wakeups.fetch_add(shard->loop.wakeups(),
                                   std::memory_order_relaxed);
    shard->loop.Stop();
    // The loop thread is joined; anything the close-all task missed (it can
    // be dropped if the loop was already exiting) is freed here.
    for (auto& [id, c] : shard->conns) delete c;
    for (auto& [id, c] : shard->rejects) delete c;
    shard->conns.clear();
    shard->rejects.clear();
  }
  shards_.clear();
  pool_.reset();
  accept_handler_.reset();
}

// ---------------------------------------------------------------------------
// Accept path (shard 0 loop thread)
// ---------------------------------------------------------------------------

void Server::DoAccept() {
  for (;;) {
    if (listen_fd_ < 0) return;
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN (drained the backlog) or listener closed
    }
    if (!running_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    uint64_t conn_id = next_connection_id_++;

    // Admission at the connection level: turn surplus connections away with
    // a typed kOverloaded frame instead of accept-and-starve. The polite
    // reject (write frame, half-close, bounded drain) rides this same event
    // loop as a short-lived state machine — no thread is ever parked on a
    // rejected client, so the acceptor keeps admitting legitimate
    // connections at full speed precisely when the server is at its cap.
    bool reject =
        config_.max_connections > 0 &&
        stats_.connections_active.load(std::memory_order_relaxed) >=
            config_.max_connections;
    fault::FaultSpec spec;
    if (AEDB_FAULT_FIRED("net/accept_reject", &spec)) reject = true;
    if (reject) {
      stats_.connections_rejected.fetch_add(1, std::memory_order_relaxed);
      RejectConnection(shards_[0].get(), fd, conn_id);
      continue;
    }

    stats_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    stats_.connections_active.fetch_add(1, std::memory_order_relaxed);
    IoShard* shard = shards_[next_shard_++ % shards_.size()].get();
    if (shard == shards_[0].get()) {
      AdoptConnection(shard, fd, conn_id);
    } else if (!shard->loop.Post([this, shard, fd, conn_id] {
                 AdoptConnection(shard, fd, conn_id);
               })) {
      ::close(fd);
      stats_.connections_active.fetch_sub(1, std::memory_order_relaxed);
    }
  }
}

void Server::AdoptConnection(IoShard* shard, int fd, uint64_t conn_id) {
  auto* conn =
      new reactor::Connection(&shard->loop, fd, conn_id, ConnOptions(), shard);
  if (!conn->Register().ok()) {
    delete conn;  // closes fd
    stats_.connections_active.fetch_sub(1, std::memory_order_relaxed);
    return;
  }
  shard->conns[conn_id] = conn;
}

void Server::RejectConnection(IoShard* shard, int fd, uint64_t conn_id) {
  auto* conn =
      new reactor::Connection(&shard->loop, fd, conn_id, ConnOptions(), shard);
  if (!conn->Register().ok()) {
    delete conn;
    return;
  }
  shard->rejects[conn_id] = conn;
  Bytes err;
  AppendErrorFrame(&err, Status::Overloaded(AppendRetryAfterHint(
                             "server connection limit reached",
                             config_.overload_retry_after_ms)));
  stats_.frames_out.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_out.fetch_add(err.size(), std::memory_order_relaxed);
  // Half-close and drain briefly after the flush: if we closed with the
  // client's handshake bytes unread, the kernel could RST and destroy the
  // queued error frame before the client sees its typed rejection. The
  // drain is doubly bounded (bytes and a deadline enforced by the sweep),
  // so a client that keeps streaming junk cannot hold the state machine
  // beyond the budget.
  if (conn->Send(std::move(err))) {
    conn->CloseAfterFlush(reactor::CloseReason::kRequestClose);
  }
}

// ---------------------------------------------------------------------------
// Connection delegate paths (owning loop thread)
// ---------------------------------------------------------------------------

bool Server::OnFrame(IoShard* shard, reactor::Connection* conn,
                     const FrameHeader& header, Bytes payload) {
  stats_.frames_in.fetch_add(1, std::memory_order_relaxed);

  if (!conn->handshaken() && header.type != MsgType::kHandshake) {
    stats_.request_errors.fetch_add(1, std::memory_order_relaxed);
    Bytes err;
    AppendErrorFrame(&err, Status::FailedPrecondition(
                               "first frame on a connection must be Handshake"));
    stats_.frames_out.fetch_add(1, std::memory_order_relaxed);
    stats_.bytes_out.fetch_add(err.size(), std::memory_order_relaxed);
    if (conn->Send(std::move(err))) {
      conn->CloseAfterFlush(reactor::CloseReason::kRequestClose);
    }
    return false;
  }

  uint64_t conn_id = conn->id();
  MsgType type = header.type;
  bool submitted = pool_->TrySubmit([this, shard, conn_id, type,
                                     payload = std::move(payload)] {
    RequestOutcome outcome = ExecuteRequest(type, payload, conn_id);

    // Fault points on the response path (no-ops unless armed; see fault.h).
    // They sleep, which is exactly why requests execute here and not on an
    // I/O thread.
    fault::FaultSpec spec;
    if (type == MsgType::kHandshake &&
        AEDB_FAULT_FIRED("net/handshake_stall", &spec)) {
      // Hold the handshake reply long enough for the client's read timeout
      // to expire (arg = stall in ms, default 100).
      std::this_thread::sleep_for(
          std::chrono::milliseconds(spec.arg != 0 ? spec.arg : 100));
    }
    if (AEDB_FAULT_FIRED("net/delay_response", &spec)) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(spec.arg != 0 ? spec.arg : 50));
    }
    size_t drop_prefix = 0;
    bool drop = false;
    if (!outcome.response.empty() &&
        AEDB_FAULT_FIRED("net/drop_mid_frame", &spec)) {
      // Write a strict prefix of the response frame (arg = bytes, default
      // half) and hang up: the client observes a mid-frame disconnect.
      drop = true;
      drop_prefix = spec.arg != 0 && spec.arg < outcome.response.size()
                        ? static_cast<size_t>(spec.arg)
                        : outcome.response.size() / 2;
    }

    // Deliver the completion on the connection's loop. The connection may
    // have died while we executed (timeout sweep, client reset, Stop); the
    // lookup by id makes that a clean drop rather than a dangling pointer.
    (void)shard->loop.Post([this, shard, conn_id, drop, drop_prefix,
                            outcome = std::move(outcome)]() mutable {
      auto it = shard->conns.find(conn_id);
      if (it == shard->conns.end()) return;
      reactor::Connection* conn = it->second;
      if (outcome.handshaken) conn->MarkHandshaken();
      if (drop) {
        stats_.bytes_out.fetch_add(drop_prefix, std::memory_order_relaxed);
        conn->SendPrefixAndClose(std::move(outcome.response), drop_prefix);
        return;
      }
      stats_.frames_out.fetch_add(1, std::memory_order_relaxed);
      stats_.bytes_out.fetch_add(outcome.response.size(),
                                 std::memory_order_relaxed);
      if (!conn->Send(std::move(outcome.response))) return;
      if (!outcome.keep_open) {
        conn->CloseAfterFlush(reactor::CloseReason::kRequestClose);
        return;
      }
      conn->Resume();
    });
  });

  if (!submitted) {
    // Run queue full (and the elastic pool already at its ceiling): shed
    // with a typed kOverloaded + retry-after, straight from the event loop.
    // The connection stays open and keeps reading — the client backs off.
    stats_.request_errors.fetch_add(1, std::memory_order_relaxed);
    Bytes err;
    AppendErrorFrame(&err, Status::Overloaded(AppendRetryAfterHint(
                               "server run queue full",
                               config_.overload_retry_after_ms)));
    stats_.frames_out.fetch_add(1, std::memory_order_relaxed);
    stats_.bytes_out.fetch_add(err.size(), std::memory_order_relaxed);
    return conn->Send(std::move(err));
  }
  return false;  // park: one request in flight per connection
}

void Server::OnProtocolError(IoShard* shard, reactor::Connection* conn,
                             const Status& error) {
  (void)shard;
  // The stream is out of sync; tell the peer why and hang up.
  stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
  Bytes err;
  AppendErrorFrame(&err, error);
  stats_.frames_out.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_out.fetch_add(err.size(), std::memory_order_relaxed);
  if (conn->Send(std::move(err))) {
    conn->CloseAfterFlush(reactor::CloseReason::kDecodeError);
  }
}

void Server::OnConnClosed(IoShard* shard, reactor::Connection* conn,
                          reactor::CloseReason reason) {
  if (shard->rejects.erase(conn->id()) != 0) return;
  if (shard->conns.erase(conn->id()) == 0) return;
  stats_.connections_active.fetch_sub(1, std::memory_order_relaxed);
  switch (reason) {
    case reactor::CloseReason::kEofMidFrame:
    case reactor::CloseReason::kReadTimeout:
      // The decode-error flavour was already counted in OnProtocolError.
      stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      break;
    case reactor::CloseReason::kIdleTimeout:
      stats_.idle_reaps.fetch_add(1, std::memory_order_relaxed);
      break;
    case reactor::CloseReason::kHandshakeTimeout:
      stats_.handshake_timeouts.fetch_add(1, std::memory_order_relaxed);
      break;
    case reactor::CloseReason::kSlowReader:
      stats_.slow_reader_disconnects.fetch_add(1, std::memory_order_relaxed);
      break;
    default:
      break;
  }
}

void Server::SweepShard(IoShard* shard) {
  auto now = reactor::Connection::Clock::now();
  // Collect first, close after: Close() erases from the maps via OnClosed.
  std::vector<std::pair<reactor::Connection*, reactor::CloseReason>> doomed;
  auto scan = [&](auto& map) {
    for (auto& [id, conn] : map) {
      reactor::CloseReason reason;
      if (conn->ExpiredDeadline(now, &reason)) doomed.emplace_back(conn, reason);
    }
  };
  scan(shard->conns);
  scan(shard->rejects);
  for (auto& [conn, reason] : doomed) conn->Close(reason);
}

// ---------------------------------------------------------------------------
// Request execution (worker pool)
// ---------------------------------------------------------------------------

Server::RequestOutcome Server::ExecuteRequest(MsgType type,
                                              const Bytes& payload_bytes,
                                              uint64_t conn_id) {
  RequestOutcome out;
  Slice payload(payload_bytes);
  Bytes* response = &out.response;

  auto reply_error = [&](const Status& st) {
    stats_.request_errors.fetch_add(1, std::memory_order_relaxed);
    AppendErrorFrame(response, st);
  };
  auto reply = [&](MsgType t, const Bytes& body) {
    AppendFrame(response, t, body);
  };
  auto reply_status = [&](const Status& st) {
    if (st.ok()) {
      reply(MsgType::kOk, {});
    } else {
      reply_error(st);
    }
  };

  switch (type) {
    case MsgType::kHandshake: {
      auto req = HandshakeReq::Decode(payload);
      if (!req.ok()) {
        reply_error(req.status());
        out.keep_open = false;
        return out;
      }
      if (req->client_version != kProtocolVersion) {
        reply_error(Status::NotSupported(
            "client protocol version " + std::to_string(req->client_version) +
            " not supported"));
        out.keep_open = false;
        return out;
      }
      out.handshaken = true;
      HandshakeResp resp;
      resp.server_version = kProtocolVersion;
      resp.connection_id = conn_id;
      resp.max_payload = config_.max_payload;
      resp.shard_count = db_ != nullptr ? db_->shard_count() : 1;
      reply(MsgType::kHandshakeAck, resp.Encode());
      return out;
    }

    case MsgType::kPing: {
      reply(MsgType::kPong, payload.ToBytes());
      return out;
    }

    case MsgType::kQuery: {
      auto req = QueryReq::Decode(payload);
      if (!req.ok()) {
        reply_error(req.status());
        return out;
      }
      if (req->retry != 0) {
        stats_.retries_seen.fetch_add(1, std::memory_order_relaxed);
      }
      {
        // Worker-side internal failure: answer with a typed error frame
        // (never a silent close) so the driver can classify retryability.
        fault::FaultSpec spec;
        if (AEDB_FAULT_FIRED("net/worker_error", &spec)) {
          reply_error(spec.status.code() == StatusCode::kInternal
                          ? Status::Unavailable("injected worker failure")
                          : spec.status);
          return out;
        }
      }
      auto rs = db_->Execute(req->sql, req->params, req->txn, req->session_id,
                             req->deadline_ms);
      if (!rs.ok()) {
        reply_error(rs.status());
        return out;
      }
      Bytes body;
      EncodeResultSet(&body, *rs);
      reply(MsgType::kResultSet, body);
      return out;
    }

    case MsgType::kQueryNamed: {
      auto req = QueryNamedReq::Decode(payload);
      if (!req.ok()) {
        reply_error(req.status());
        return out;
      }
      if (req->retry != 0) {
        stats_.retries_seen.fetch_add(1, std::memory_order_relaxed);
      }
      {
        fault::FaultSpec spec;
        if (AEDB_FAULT_FIRED("net/worker_error", &spec)) {
          reply_error(spec.status.code() == StatusCode::kInternal
                          ? Status::Unavailable("injected worker failure")
                          : spec.status);
          return out;
        }
      }
      auto rs = db_->ExecuteNamed(req->sql, req->params, req->txn,
                                  req->session_id, req->deadline_ms);
      if (!rs.ok()) {
        reply_error(rs.status());
        return out;
      }
      Bytes body;
      EncodeResultSet(&body, *rs);
      reply(MsgType::kResultSet, body);
      return out;
    }

    case MsgType::kDdl: {
      auto req = DdlReq::Decode(payload);
      if (!req.ok()) {
        reply_error(req.status());
        return out;
      }
      reply_status(req->shard == kDdlAllShards
                       ? db_->ExecuteDdl(req->sql, req->session_id)
                       : db_->ExecuteDdlOnShard(req->shard, req->sql,
                                                req->session_id));
      return out;
    }

    case MsgType::kDescribe: {
      auto req = DescribeReq::Decode(payload);
      if (!req.ok()) {
        reply_error(req.status());
        return out;
      }
      auto d = db_->DescribeParameterEncryption(req->sql,
                                                req->client_dh_public);
      if (!d.ok()) {
        reply_error(d.status());
        return out;
      }
      Bytes body;
      EncodeDescribeResult(&body, *d);
      reply(MsgType::kDescribeResp, body);
      return out;
    }

    case MsgType::kAttest: {
      auto req = DescribeReq::Decode(payload);
      if (!req.ok()) {
        reply_error(req.status());
        return out;
      }
      auto d = db_->AttestShard(req->shard, req->client_dh_public);
      if (!d.ok()) {
        reply_error(d.status());
        return out;
      }
      stats_.sessions_attested.fetch_add(1, std::memory_order_relaxed);
      Bytes body;
      EncodeDescribeResult(&body, *d);
      reply(MsgType::kDescribeResp, body);
      return out;
    }

    case MsgType::kBeginTxn: {
      Bytes body;
      PutU64(&body, db_->BeginTransaction());
      reply(MsgType::kTxnResp, body);
      return out;
    }

    case MsgType::kCommitTxn:
    case MsgType::kRollbackTxn: {
      size_t off = 0;
      auto txn = GetU64(payload, &off);
      if (!txn.ok()) {
        reply_error(txn.status());
        return out;
      }
      reply_status(type == MsgType::kCommitTxn ? db_->CommitTransaction(*txn)
                                               : db_->RollbackTransaction(*txn));
      return out;
    }

    case MsgType::kGetKeyDescription: {
      size_t off = 0;
      auto cek_id = GetU32(payload, &off);
      if (!cek_id.ok()) {
        reply_error(cek_id.status());
        return out;
      }
      auto key = db_->GetKeyDescription(*cek_id);
      if (!key.ok()) {
        reply_error(key.status());
        return out;
      }
      Bytes body;
      EncodeKeyDescription(&body, *key);
      reply(MsgType::kKeyDescriptionResp, body);
      return out;
    }

    case MsgType::kForwardKeys:
    case MsgType::kForwardAuthorization: {
      auto req = ForwardReq::Decode(payload);
      if (!req.ok()) {
        reply_error(req.status());
        return out;
      }
      reply_status(type == MsgType::kForwardKeys
                       ? db_->ForwardKeysToShard(req->shard, req->session_id,
                                                 req->nonce, req->sealed)
                       : db_->ForwardAuthorizationToShard(
                             req->shard, req->session_id, req->nonce,
                             req->sealed));
      return out;
    }

    case MsgType::kColumnEncryption: {
      auto req = ColumnReq::Decode(payload);
      if (!req.ok()) {
        reply_error(req.status());
        return out;
      }
      auto enc = db_->ColumnEncryption(req->table, req->column);
      if (!enc.ok()) {
        reply_error(enc.status());
        return out;
      }
      Bytes body;
      EncodeEncryptionType(&body, *enc);
      reply(MsgType::kEncryptionTypeResp, body);
      return out;
    }

    case MsgType::kGetCmk: {
      size_t off = 0;
      auto name = DecodeString(payload, &off);
      if (!name.ok()) {
        reply_error(name.status());
        return out;
      }
      auto cmk = db_->catalog().GetCmk(*name);
      if (!cmk.ok()) {
        reply_error(cmk.status());
        return out;
      }
      Bytes body;
      PutLengthPrefixed(&body, (*cmk)->Serialize());
      reply(MsgType::kCmkResp, body);
      return out;
    }

    case MsgType::kCekIdByName: {
      size_t off = 0;
      auto name = DecodeString(payload, &off);
      if (!name.ok()) {
        reply_error(name.status());
        return out;
      }
      auto id = db_->catalog().CekIdByName(*name);
      if (!id.ok()) {
        reply_error(id.status());
        return out;
      }
      Bytes body;
      PutU32(&body, *id);
      reply(MsgType::kCekIdResp, body);
      return out;
    }

    case MsgType::kAlterColumnMetadata: {
      auto req = ColumnReq::Decode(payload);
      if (!req.ok()) {
        reply_error(req.status());
        return out;
      }
      if (!req->has_spec) {
        reply_error(Status::InvalidArgument(
            "AlterColumnMetadata requires an encryption spec"));
        return out;
      }
      reply_status(db_->AlterColumnMetadataForClientTool(
          req->table, req->column, req->spec));
      return out;
    }

    default:
      // Unknown request type: answer cleanly and keep the connection; the
      // framing itself was valid so the stream is still in sync.
      reply_error(Status::NotSupported("unknown message type " +
                                       std::to_string(static_cast<int>(type))));
      return out;
  }
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

void Server::RefreshMirrors() const {
  if (db_ != nullptr) {
    server::DatabaseStats s = db_->Stats();
    stats_.enclave_batch_evals.store(s.enclave_batch_evals,
                                     std::memory_order_relaxed);
    stats_.enclave_batched_values.store(s.enclave_batched_values,
                                        std::memory_order_relaxed);
    stats_.enclave_transitions.store(s.enclave_transitions,
                                     std::memory_order_relaxed);
    stats_.queries_admitted.store(s.queries_admitted, std::memory_order_relaxed);
    stats_.queries_rejected.store(s.queries_rejected, std::memory_order_relaxed);
    stats_.queries_expired.store(s.queries_expired, std::memory_order_relaxed);
    stats_.queue_depth_highwater.store(s.pool_queue_highwater,
                                       std::memory_order_relaxed);
    stats_.lock_waits_expired.store(s.lock_waits_expired,
                                    std::memory_order_relaxed);
    stats_.pool_hits.store(s.pool_hits, std::memory_order_relaxed);
    stats_.pool_misses.store(s.pool_misses, std::memory_order_relaxed);
    stats_.pool_evictions.store(s.pool_evictions, std::memory_order_relaxed);
    stats_.pool_writebacks.store(s.pool_writebacks, std::memory_order_relaxed);
    stats_.pool_pinned_highwater.store(s.pool_pinned_highwater,
                                       std::memory_order_relaxed);
    stats_.group_commit_batches.store(s.group_commit_batches,
                                      std::memory_order_relaxed);
    stats_.commit_sync_requests.store(s.commit_sync_requests,
                                      std::memory_order_relaxed);
  }
  // Reactor gauges (the Stop path latches them into stats_ before the pool
  // and loops are torn down, so post-shutdown reads stay truthful).
  if (pool_) {
    stats_.run_queue_highwater.store(pool_->queue_highwater(),
                                     std::memory_order_relaxed);
    stats_.run_queue_sheds.store(pool_->queue_rejected(),
                                 std::memory_order_relaxed);
    stats_.exec_threads_peak.store(pool_->peak_threads(),
                                   std::memory_order_relaxed);
  }
  if (!shards_.empty()) {
    uint64_t wakeups = 0;
    for (const auto& shard : shards_) wakeups += shard->loop.wakeups();
    stats_.epoll_wakeups.store(wakeups, std::memory_order_relaxed);
  }
}

ServerStatsSnapshot Server::SnapshotStats() const {
  RefreshMirrors();
  ServerStatsSnapshot s;
  s.connections_accepted =
      stats_.connections_accepted.load(std::memory_order_relaxed);
  s.connections_active =
      stats_.connections_active.load(std::memory_order_relaxed);
  s.frames_in = stats_.frames_in.load(std::memory_order_relaxed);
  s.frames_out = stats_.frames_out.load(std::memory_order_relaxed);
  s.bytes_in = stats_.bytes_in.load(std::memory_order_relaxed);
  s.bytes_out = stats_.bytes_out.load(std::memory_order_relaxed);
  s.protocol_errors = stats_.protocol_errors.load(std::memory_order_relaxed);
  s.request_errors = stats_.request_errors.load(std::memory_order_relaxed);
  s.retries_seen = stats_.retries_seen.load(std::memory_order_relaxed);
  s.sessions_attested = stats_.sessions_attested.load(std::memory_order_relaxed);
  s.connections_rejected =
      stats_.connections_rejected.load(std::memory_order_relaxed);
  s.epoll_wakeups = stats_.epoll_wakeups.load(std::memory_order_relaxed);
  s.run_queue_highwater =
      stats_.run_queue_highwater.load(std::memory_order_relaxed);
  s.run_queue_sheds = stats_.run_queue_sheds.load(std::memory_order_relaxed);
  s.exec_threads_peak = stats_.exec_threads_peak.load(std::memory_order_relaxed);
  s.idle_reaps = stats_.idle_reaps.load(std::memory_order_relaxed);
  s.slow_reader_disconnects =
      stats_.slow_reader_disconnects.load(std::memory_order_relaxed);
  s.handshake_timeouts =
      stats_.handshake_timeouts.load(std::memory_order_relaxed);
  s.enclave_batch_evals =
      stats_.enclave_batch_evals.load(std::memory_order_relaxed);
  s.enclave_batched_values =
      stats_.enclave_batched_values.load(std::memory_order_relaxed);
  s.enclave_transitions =
      stats_.enclave_transitions.load(std::memory_order_relaxed);
  s.queries_admitted = stats_.queries_admitted.load(std::memory_order_relaxed);
  s.queries_rejected = stats_.queries_rejected.load(std::memory_order_relaxed);
  s.queries_expired = stats_.queries_expired.load(std::memory_order_relaxed);
  s.queue_depth_highwater =
      stats_.queue_depth_highwater.load(std::memory_order_relaxed);
  s.lock_waits_expired =
      stats_.lock_waits_expired.load(std::memory_order_relaxed);
  s.pool_hits = stats_.pool_hits.load(std::memory_order_relaxed);
  s.pool_misses = stats_.pool_misses.load(std::memory_order_relaxed);
  s.pool_evictions = stats_.pool_evictions.load(std::memory_order_relaxed);
  s.pool_writebacks = stats_.pool_writebacks.load(std::memory_order_relaxed);
  s.pool_pinned_highwater =
      stats_.pool_pinned_highwater.load(std::memory_order_relaxed);
  s.group_commit_batches =
      stats_.group_commit_batches.load(std::memory_order_relaxed);
  s.commit_sync_requests =
      stats_.commit_sync_requests.load(std::memory_order_relaxed);
  return s;
}

}  // namespace aedb::net
