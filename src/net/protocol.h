#ifndef AEDB_NET_PROTOCOL_H_
#define AEDB_NET_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "client/transport.h"
#include "server/database.h"

namespace aedb::net {

/// \brief The aedb wire protocol (a simplified TDS analog).
///
/// Every message is one frame:
///
///     offset 0   u32  magic      "AEDB" (0x42444541, little-endian)
///     offset 4   u8   version    kProtocolVersion
///     offset 5   u8   type       MsgType
///     offset 6   u16  reserved   must be zero
///     offset 8   u32  length     payload byte count
///     offset 12  ...  payload    `length` bytes, layout per MsgType
///
/// All integers are little-endian (matching common/bytes.h). Strings and
/// byte blobs inside payloads are u32-length-prefixed. A decoder MUST reject
/// a bad magic, an unknown version, a non-zero reserved field, or a length
/// above the negotiated payload limit *before* trusting the length field —
/// that ordering is what the robustness tests lock in.
///
/// Threat-model note: only data the untrusted server process already sees
/// crosses the wire — AEAD ciphertext cells, key metadata (wrapped CEKs,
/// signed CMK metadata), and enclave-sealed blobs. Column plaintext and key
/// material never appear in any frame.
inline constexpr uint32_t kProtocolMagic = 0x42444541;  // "AEDB"
inline constexpr uint8_t kProtocolVersion = 1;
inline constexpr size_t kFrameHeaderSize = 12;
/// Default ceiling on a single frame payload (64 MiB). Frames claiming more
/// are rejected without allocation (a 4 GiB length prefix must not OOM us).
inline constexpr uint32_t kDefaultMaxPayload = 64u << 20;

enum class MsgType : uint8_t {
  // ----- requests (client → server) -----
  kHandshake = 1,
  kQuery = 2,       // positional parameters
  kQueryNamed = 3,  // named parameters
  kDdl = 4,
  kDescribe = 5,
  kAttest = 6,
  kBeginTxn = 7,
  kCommitTxn = 8,
  kRollbackTxn = 9,
  kGetKeyDescription = 10,
  kForwardKeys = 11,
  kForwardAuthorization = 12,
  kColumnEncryption = 13,
  kGetCmk = 14,
  kCekIdByName = 15,
  kAlterColumnMetadata = 16,
  kPing = 17,

  // ----- responses (server → client) -----
  kHandshakeAck = 64,
  kResultSet = 65,
  kOk = 66,  // bare success for Status-returning calls
  kDescribeResp = 67,
  kTxnResp = 68,  // u64 transaction id
  kKeyDescriptionResp = 69,
  kEncryptionTypeResp = 70,
  kCmkResp = 71,
  kCekIdResp = 72,  // u32 CEK id
  kPong = 73,

  /// Any request may be answered with kError carrying a serialized Status.
  kError = 127,
};

const char* MsgTypeName(MsgType t);

struct FrameHeader {
  uint8_t version = kProtocolVersion;
  MsgType type = MsgType::kError;
  uint32_t payload_size = 0;
};

/// Appends a complete frame (header + payload) to `out`.
void AppendFrame(Bytes* out, MsgType type, Slice payload);
Bytes EncodeFrame(MsgType type, Slice payload);

/// Decodes and validates the fixed 12-byte header. `in` must hold at least
/// kFrameHeaderSize bytes. Rejects bad magic / version / reserved bits and a
/// payload size above `max_payload` — all as clean errors, never a crash.
Result<FrameHeader> DecodeFrameHeader(Slice in, uint32_t max_payload);

// ---------------------------------------------------------------------------
// Payload codecs. Each message's payload has a fixed field order; decode
// functions consume from a cursor and fail with Corruption on truncation.
// ---------------------------------------------------------------------------

// ----- primitives shared by several messages -----
void EncodeString(Bytes* out, std::string_view s);
Result<std::string> DecodeString(Slice in, size_t* offset);
void EncodeStatusPayload(Bytes* out, const Status& status);
/// Returns decode success/failure; on success `*decoded` holds the wire
/// status (which is itself usually non-OK — it rode in a kError frame).
Status DecodeStatusPayload(Slice in, Status* decoded);
/// Rebuilds a Status from a wire (code, message) pair; unknown codes map to
/// Internal so a newer server cannot crash an older client.
Status MakeStatus(uint8_t code, std::string message);

void EncodeValue(Bytes* out, const types::Value& v);
void EncodeValues(Bytes* out, const std::vector<types::Value>& vs);
Result<std::vector<types::Value>> DecodeValues(Slice in, size_t* offset);

void EncodeNamedParams(Bytes* out, const client::NamedParams& params);
Result<client::NamedParams> DecodeNamedParams(Slice in, size_t* offset);

void EncodeEncryptionType(Bytes* out, const types::EncryptionType& enc);
Result<types::EncryptionType> DecodeEncryptionType(Slice in, size_t* offset);

void EncodeResultSet(Bytes* out, const sql::ResultSet& rs);
Result<sql::ResultSet> DecodeResultSet(Slice in);

void EncodeKeyDescription(Bytes* out, const server::KeyDescription& key);
Result<server::KeyDescription> DecodeKeyDescription(Slice in, size_t* offset);

void EncodeDescribeResult(Bytes* out, const server::DescribeResult& describe);
Result<server::DescribeResult> DecodeDescribeResult(Slice in);

// ----- request payload structs -----

struct HandshakeReq {
  uint32_t client_version = kProtocolVersion;
  std::string client_name;

  Bytes Encode() const;
  static Result<HandshakeReq> Decode(Slice in);
};

struct HandshakeResp {
  uint32_t server_version = kProtocolVersion;
  /// Server-allocated connection id (distinct from the enclave session id,
  /// which only attestation mints).
  uint64_t connection_id = 0;
  uint32_t max_payload = kDefaultMaxPayload;
  /// Engine shard count behind this server (trailing + optional on the
  /// wire: a pre-sharding server omits it and the driver assumes 1). The
  /// driver attests each shard's enclave independently.
  uint32_t shard_count = 1;

  Bytes Encode() const;
  static Result<HandshakeResp> Decode(Slice in);
};

struct QueryReq {
  std::string sql;
  std::vector<types::Value> params;
  uint64_t txn = 0;
  uint64_t session_id = 0;
  /// Driver retry attempt (0 = first try). Lets the server count recovery
  /// traffic; decoded as optional so a frame without it still parses.
  uint8_t retry = 0;
  /// Remaining client budget for this query in milliseconds (0 = none).
  /// Trailing and optional like `retry`: older frames still parse.
  uint32_t deadline_ms = 0;

  Bytes Encode() const;
  static Result<QueryReq> Decode(Slice in);
};

struct QueryNamedReq {
  std::string sql;
  client::NamedParams params;
  uint64_t txn = 0;
  uint64_t session_id = 0;
  uint8_t retry = 0;
  uint32_t deadline_ms = 0;

  Bytes Encode() const;
  static Result<QueryNamedReq> Decode(Slice in);
};

/// DdlReq.shard value meaning "execute on every shard" (the default — a
/// frame without the trailing shard field decodes to it).
inline constexpr uint32_t kDdlAllShards = 0xFFFF'FFFFu;

struct DdlReq {
  std::string sql;
  uint64_t session_id = 0;
  /// Target shard, or kDdlAllShards for a broadcast. Enclave DDL must name
  /// one shard: the authorization is sealed to that shard's session.
  uint32_t shard = kDdlAllShards;

  Bytes Encode() const;
  static Result<DdlReq> Decode(Slice in);
};

/// Serves both kDescribe (sql set) and kAttest (sql empty).
struct DescribeReq {
  std::string sql;
  Bytes client_dh_public;
  /// Shard whose enclave to attest/describe against (trailing + optional;
  /// absent means shard 0 — the only shard of a pre-sharding server).
  uint32_t shard = 0;

  Bytes Encode() const;
  static Result<DescribeReq> Decode(Slice in);
};

/// Serves kForwardKeys and kForwardAuthorization.
struct ForwardReq {
  uint64_t session_id = 0;
  uint64_t nonce = 0;
  Bytes sealed;
  /// Shard whose enclave the sealed blob is addressed to (trailing +
  /// optional; absent means shard 0).
  uint32_t shard = 0;

  Bytes Encode() const;
  static Result<ForwardReq> Decode(Slice in);
};

/// Serves kColumnEncryption and (with `spec` fields) kAlterColumnMetadata.
struct ColumnReq {
  std::string table;
  std::string column;
  bool has_spec = false;
  sql::EncryptionSpec spec;

  Bytes Encode() const;
  static Result<ColumnReq> Decode(Slice in);
};

}  // namespace aedb::net

#endif  // AEDB_NET_PROTOCOL_H_
