#ifndef AEDB_SERVER_ROUTER_H_
#define AEDB_SERVER_ROUTER_H_

#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "server/database.h"

namespace aedb::server {

struct ShardedOptions {
  /// Number of engine shards. Each shard is a full Database: its own
  /// StorageEngine, WAL, lock manager, buffer pool and enclave instance.
  uint32_t shards = 2;
  /// Per-shard option template. `base.data_dir` names the ROOT directory:
  /// shard i lives in <root>/shard-<i> and the coordinator's 2PC decision
  /// log in <root>/2pc.log. Empty keeps every shard in memory.
  ServerOptions base;
};

/// \brief Shared-nothing shard router + two-phase-commit coordinator.
///
/// Partitioning is by TPC-C warehouse id: a statement whose WHERE clause (or
/// INSERT column list) pins a `*W_ID` column to a value routes to shard
/// `(w - 1) mod N`. Tables without a warehouse column (Item) are reference
/// tables: replicated on every shard — reads go to one shard, writes
/// broadcast. A global transaction lazily enlists shards; commit runs
/// two-phase commit when more than one enlisted shard wrote:
///
///     phase 0   read-only participants commit immediately (no vote needed)
///     phase 1   each writer forces a kPrepare record (fault 2pc/pre_prepare
///               fires before, 2pc/prepared_no_decision after — a failure
///               here is PRESUMED ABORT: no decision record exists, recovery
///               rolls every participant back)
///     decision  the COMMIT decision {gtid, shards} is fsynced to 2pc.log
///               (fault 2pc/pre_commit_decision before the write, fault
///               2pc/coordinator_crash after it — from this point the txn
///               MUST commit on every shard, across any crash)
///     phase 2   each writer CommitPrepared()s; a failure leaves the shard
///               in-doubt and RecoverInDoubt()/Open() finishes the job
///
/// The AE invariant: each shard owns its own enclave, attested independently
/// by the driver (per-node enclave state is the unit of attestation). Errors
/// surfaced from shard i carry an " [shard=i]" suffix so the driver
/// invalidates and re-attests exactly that shard's session.
class ShardedDatabase : public SqlBackend {
 public:
  ShardedDatabase(ShardedOptions options,
                  attestation::HostGuardianService* hgs,
                  const enclave::EnclaveImage* image);
  ~ShardedDatabase() override;

  // ----- SqlBackend -----
  Status ExecuteDdl(const std::string& sql, uint64_t session_id = 0) override;
  Result<DescribeResult> DescribeParameterEncryption(
      const std::string& sql, Slice client_dh_public) override;
  uint64_t BeginTransaction() override;
  Status CommitTransaction(uint64_t txn) override;
  Status RollbackTransaction(uint64_t txn) override;
  Result<sql::ResultSet> Execute(const std::string& sql,
                                 const std::vector<types::Value>& params,
                                 uint64_t txn = 0, uint64_t session_id = 0,
                                 uint32_t deadline_ms = 0) override;
  Result<sql::ResultSet> ExecuteNamed(
      const std::string& sql,
      const std::vector<std::pair<std::string, types::Value>>& params,
      uint64_t txn = 0, uint64_t session_id = 0,
      uint32_t deadline_ms = 0) override;
  Result<KeyDescription> GetKeyDescription(uint32_t cek_id) override;
  Result<DescribeResult> Attest(Slice client_dh_public) override;
  Result<types::EncryptionType> ColumnEncryption(
      const std::string& table, const std::string& column) override;
  Status AlterColumnMetadataForClientTool(
      const std::string& table, const std::string& column,
      const sql::EncryptionSpec& enc) override;
  Status ForwardKeysToEnclave(uint64_t session_id, uint64_t nonce,
                              Slice sealed) override;
  Status ForwardEncryptionAuthorization(uint64_t session_id, uint64_t nonce,
                                        Slice sealed) override;
  sql::Catalog& catalog() override;
  DatabaseStats Stats() const override;
  Status Open() override;
  Status Shutdown() override;
  const RecoveryInfo& recovery_info() const override { return recovery_info_; }
  Status SyncWals() override;

  uint32_t shard_count() const override { return options_.shards; }
  Result<DescribeResult> AttestShard(uint32_t shard,
                                     Slice client_dh_public) override;
  Status ForwardKeysToShard(uint32_t shard, uint64_t session_id,
                            uint64_t nonce, Slice sealed) override;
  Status ForwardAuthorizationToShard(uint32_t shard, uint64_t session_id,
                                     uint64_t nonce, Slice sealed) override;
  Status ExecuteDdlOnShard(uint32_t shard, const std::string& sql,
                           uint64_t session_id) override;

  // ----- sharding introspection / crash simulation -----
  Database* shard(uint32_t i) { return shards_[i].get(); }
  uint32_t ShardOfWarehouse(int64_t w) const;
  /// Simulated crash+restart of one shard only: its enclave loses all keys
  /// and sessions, its storage recovers from its own WAL. Other shards are
  /// untouched. Prepared-undecided txns come back in-doubt; call
  /// RecoverInDoubt() to settle them from the decision log.
  Result<storage::RecoveryResult> RestartShard(uint32_t i);
  /// Settles every in-doubt transaction on every shard against the 2PC
  /// decision log: logged-commit gtids finish via CommitPrepared, everything
  /// else is presumed abort. Truncates the decision log once all are settled.
  Status RecoverInDoubt();
  /// Cross-shard transactions that went through full 2PC (gauge for tests
  /// and BENCH_shard.json).
  uint64_t two_phase_commits() const { return two_phase_commits_; }

 private:
  /// How one statement routes. Cached per SQL text (TPC-C reuses a fixed
  /// statement set, so the parse cost is paid once).
  struct RoutePlan {
    bool is_write = false;       // INSERT/UPDATE/DELETE
    bool is_select = false;
    /// True when the statement pins a warehouse: route to one shard.
    bool pinned = false;
    bool dist_is_param = false;
    std::string dist_param;      // lower-cased @name carrying the warehouse
    int64_t dist_literal = 0;
    /// Table has no *W_ID column: replicated reference table (Item).
    bool reference_table = false;
    // Broadcast-SELECT merge shape.
    std::vector<sql::AggFunc> aggs;  // per select item
    bool has_agg = false;
    bool has_group_by = false;
    std::string order_by;
    bool order_desc = false;
    int64_t limit = -1;
  };

  struct GlobalTxn {
    std::map<uint32_t, uint64_t> locals;  // shard -> local txn id
  };

  Result<const RoutePlan*> PlanFor(const std::string& sql);
  /// Resolves the pinned warehouse value for `plan` from named or positional
  /// params (positional order = first-appearance order, matching the
  /// binder's deduction).
  Result<int64_t> ResolveWarehouse(
      const RoutePlan& plan,
      const std::vector<types::Value>* positional,
      const std::vector<std::pair<std::string, types::Value>>* named,
      const std::string& sql);
  /// Local txn on `shard` for global txn `gtid`, begun on first use.
  Result<uint64_t> LocalTxnFor(uint64_t gtid, uint32_t shard);
  /// First shard already enlisted in `gtid` (for reference-table reads), or
  /// `fallback` when none.
  uint32_t PreferredReadShard(uint64_t gtid, uint32_t fallback);
  /// The shared execution path behind Execute/ExecuteNamed.
  Result<sql::ResultSet> Route(
      const std::string& sql,
      const std::vector<types::Value>* positional,
      const std::vector<std::pair<std::string, types::Value>>* named,
      uint64_t txn, uint64_t session_id, uint32_t deadline_ms);
  Result<sql::ResultSet> RunOnShard(
      uint32_t s, const std::string& sql,
      const std::vector<types::Value>* positional,
      const std::vector<std::pair<std::string, types::Value>>* named,
      uint64_t local_txn, uint64_t session_id, uint32_t deadline_ms);
  /// Merges per-shard result sets of a broadcast SELECT: aggregates combine
  /// (COUNT/SUM add, MIN/MAX fold), plain rows concatenate, then ORDER BY /
  /// LIMIT re-apply.
  Result<sql::ResultSet> MergeResults(const RoutePlan& plan,
                                      std::vector<sql::ResultSet> parts);
  /// Commits a global transaction: direct commit for <=1 writer, 2PC else.
  Status CommitGlobal(uint64_t gtid, GlobalTxn txn);
  /// Durably records the COMMIT decision for `gtid` (presumed abort: only
  /// commits are logged).
  Status LogCommitDecision(uint64_t gtid, const std::vector<uint32_t>& shards);
  /// The gtids with a durable COMMIT decision.
  Result<std::set<uint64_t>> LoadCommitDecisions();
  Status TruncateDecisionLog();
  std::string DecisionLogPath() const;

  ShardedOptions options_;
  std::vector<std::unique_ptr<Database>> shards_;
  RecoveryInfo recovery_info_;

  std::mutex plan_mu_;
  std::map<std::string, RoutePlan> plans_;

  std::mutex txn_mu_;
  std::map<uint64_t, GlobalTxn> gtxns_;
  uint64_t next_gtid_ = 1;

  std::mutex decision_mu_;
  int decision_fd_ = -1;               // O_APPEND fd (durable mode)
  std::set<uint64_t> mem_decisions_;   // in-memory mode decision "log"
  std::atomic<uint64_t> two_phase_commits_{0};
};

}  // namespace aedb::server

#endif  // AEDB_SERVER_ROUTER_H_
