#include "server/router.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>

#include "fault/fault.h"
#include "sql/parser.h"
#include "storage/fsio.h"

namespace aedb::server {

namespace {

std::string Upper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(c));
  return out;
}

std::string Lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(c));
  return out;
}

/// Strips a leading "table." qualifier and uppercases.
std::string BareColumn(const std::string& col) {
  size_t dot = col.find('.');
  return Upper(dot == std::string::npos ? col : col.substr(dot + 1));
}

bool IsWarehouseColumn(const std::string& bare_upper) {
  return bare_upper.size() >= 4 &&
         bare_upper.compare(bare_upper.size() - 4, 4, "W_ID") == 0;
}

/// Tags a non-OK status with the shard it came from, so the driver's retry
/// classifier can invalidate and re-attest exactly that shard's session.
Status Annotate(Status st, uint32_t shard) {
  if (st.ok()) return st;
  if (st.message().find("[shard=") != std::string::npos) return st;
  return Status::FromCode(st.code(), st.message() + " [shard=" +
                                         std::to_string(shard) + "]");
}

template <typename T>
Result<T> AnnotateResult(Result<T> res, uint32_t shard) {
  if (res.ok()) return res;
  return Annotate(res.status(), shard);
}

/// One 2PC decision-log entry: [u64 gtid][u32 n][u32 shard]*, framed with
/// the WAL's [len][checksum] header so torn tails are dropped on parse.
Bytes EncodeDecision(uint64_t gtid, const std::vector<uint32_t>& shards) {
  Bytes body;
  PutU64(&body, gtid);
  PutU32(&body, static_cast<uint32_t>(shards.size()));
  for (uint32_t s : shards) PutU32(&body, s);
  Bytes framed;
  storage::AppendFramedBlob(&framed, body);
  return framed;
}

/// The candidate warehouse pin found while walking a predicate.
struct DistPin {
  std::string column;  // bare upper name
  bool is_param = false;
  std::string param;
  int64_t literal = 0;
};

/// Walks AND-connected equality conjuncts collecting `*W_ID = @p|literal`
/// pins. OR/NOT subtrees are skipped: a pin under OR does not constrain the
/// row's warehouse.
void CollectPins(const sql::Expr* e, std::vector<DistPin>* out) {
  if (e == nullptr) return;
  if (e->kind == sql::Expr::Kind::kAnd) {
    CollectPins(e->a.get(), out);
    CollectPins(e->b.get(), out);
    return;
  }
  if (e->kind != sql::Expr::Kind::kCompare || e->cmp != es::CompareOp::kEq) {
    return;
  }
  const sql::Expr* col = nullptr;
  const sql::Expr* val = nullptr;
  for (int flip = 0; flip < 2; ++flip) {
    const sql::Expr* a = flip ? e->b.get() : e->a.get();
    const sql::Expr* b = flip ? e->a.get() : e->b.get();
    if (a != nullptr && a->kind == sql::Expr::Kind::kColumn && b != nullptr &&
        (b->kind == sql::Expr::Kind::kParam ||
         b->kind == sql::Expr::Kind::kLiteral)) {
      col = a;
      val = b;
      break;
    }
  }
  if (col == nullptr) return;
  std::string bare = BareColumn(col->column);
  if (!IsWarehouseColumn(bare)) return;
  DistPin pin;
  pin.column = bare;
  if (val->kind == sql::Expr::Kind::kParam) {
    pin.is_param = true;
    pin.param = Lower(val->param);
  } else {
    if (!val->literal.IsNumeric()) return;
    pin.literal = val->literal.AsInt64();
  }
  out->push_back(std::move(pin));
}

/// Picks the home-warehouse pin: the SHORTEST *W_ID column name wins, so a
/// History insert carrying both H_W_ID (home) and H_C_W_ID (remote customer)
/// routes by H_W_ID and a cross-warehouse Payment stays a single-home row
/// write per shard.
const DistPin* PickPin(const std::vector<DistPin>& pins) {
  const DistPin* best = nullptr;
  for (const DistPin& p : pins) {
    if (best == nullptr || p.column.size() < best->column.size()) best = &p;
  }
  return best;
}

/// First-appearance parameter-name order over a statement — mirrors the
/// binder's positional deduction so literal positional params can resolve a
/// param pin.
void CollectParamOrder(const sql::Expr* e, std::vector<std::string>* order) {
  if (e == nullptr) return;
  if (e->kind == sql::Expr::Kind::kParam) {
    std::string name = Lower(e->param);
    if (std::find(order->begin(), order->end(), name) == order->end()) {
      order->push_back(name);
    }
  }
  CollectParamOrder(e->a.get(), order);
  CollectParamOrder(e->b.get(), order);
  CollectParamOrder(e->c.get(), order);
}

}  // namespace

ShardedDatabase::ShardedDatabase(ShardedOptions options,
                                 attestation::HostGuardianService* hgs,
                                 const enclave::EnclaveImage* image)
    : options_(std::move(options)) {
  if (options_.shards == 0) options_.shards = 1;
  for (uint32_t i = 0; i < options_.shards; ++i) {
    ServerOptions per_shard = options_.base;
    if (!options_.base.data_dir.empty()) {
      per_shard.data_dir =
          options_.base.data_dir + "/shard-" + std::to_string(i);
    }
    shards_.push_back(std::make_unique<Database>(per_shard, hgs, image));
  }
}

ShardedDatabase::~ShardedDatabase() {
  if (decision_fd_ >= 0) ::close(decision_fd_);
}

uint32_t ShardedDatabase::ShardOfWarehouse(int64_t w) const {
  int64_t n = static_cast<int64_t>(options_.shards);
  int64_t s = (w - 1) % n;
  if (s < 0) s += n;
  return static_cast<uint32_t>(s);
}

std::string ShardedDatabase::DecisionLogPath() const {
  return options_.base.data_dir + "/2pc.log";
}

// ---------------------------------------------------------------------------
// Routing plans

Result<const ShardedDatabase::RoutePlan*> ShardedDatabase::PlanFor(
    const std::string& sql) {
  {
    std::lock_guard<std::mutex> lock(plan_mu_);
    auto it = plans_.find(sql);
    if (it != plans_.end()) return &it->second;
  }
  sql::Statement stmt;
  AEDB_ASSIGN_OR_RETURN(stmt, sql::Parse(sql));
  RoutePlan plan;
  std::vector<DistPin> pins;
  std::string table;
  switch (stmt.kind) {
    case sql::Statement::Kind::kSelect: {
      plan.is_select = true;
      table = stmt.select->table;
      CollectPins(stmt.select->where.get(), &pins);
      for (const sql::SelectItem& item : stmt.select->items) {
        plan.aggs.push_back(item.agg);
        if (item.agg != sql::AggFunc::kNone) plan.has_agg = true;
      }
      plan.has_group_by = !stmt.select->group_by.empty();
      plan.order_by = stmt.select->order_by;
      plan.order_desc = stmt.select->order_desc;
      plan.limit = stmt.select->limit;
      break;
    }
    case sql::Statement::Kind::kInsert: {
      plan.is_write = true;
      table = stmt.insert->table;
      // Route by the warehouse column's position in the column list; multi-
      // row inserts must agree on the warehouse (TPC-C's always do — the
      // loader inserts one row per statement).
      int best = -1;
      size_t best_len = 0;
      for (size_t c = 0; c < stmt.insert->columns.size(); ++c) {
        std::string bare = BareColumn(stmt.insert->columns[c]);
        if (!IsWarehouseColumn(bare)) continue;
        if (best < 0 || bare.size() < best_len) {
          best = static_cast<int>(c);
          best_len = bare.size();
        }
      }
      if (best >= 0 && !stmt.insert->rows.empty()) {
        const sql::Expr* val = stmt.insert->rows[0][best].get();
        DistPin pin;
        pin.column = BareColumn(stmt.insert->columns[best]);
        if (val->kind == sql::Expr::Kind::kParam) {
          pin.is_param = true;
          pin.param = Lower(val->param);
          pins.push_back(std::move(pin));
        } else if (val->kind == sql::Expr::Kind::kLiteral &&
                   val->literal.IsNumeric()) {
          pin.literal = val->literal.AsInt64();
          pins.push_back(std::move(pin));
        }
      }
      break;
    }
    case sql::Statement::Kind::kUpdate: {
      plan.is_write = true;
      table = stmt.update->table;
      CollectPins(stmt.update->where.get(), &pins);
      break;
    }
    case sql::Statement::Kind::kDelete: {
      plan.is_write = true;
      table = stmt.del->table;
      CollectPins(stmt.del->where.get(), &pins);
      break;
    }
    default:
      return Status::InvalidArgument("DDL must go through ExecuteDdl");
  }
  const DistPin* pin = PickPin(pins);
  if (pin != nullptr) {
    plan.pinned = true;
    plan.dist_is_param = pin->is_param;
    plan.dist_param = pin->param;
    plan.dist_literal = pin->literal;
  } else {
    // No pin in the statement. A table with no *W_ID column at all is a
    // replicated reference table (Item): reads hit one shard, writes
    // broadcast. A partitioned table without a pin broadcasts too (each
    // shard applies the statement to the rows it owns).
    const sql::TableDef* def = nullptr;
    auto found = shards_[0]->catalog().GetTable(table);
    if (found.ok()) def = *found;
    bool partitioned = false;
    if (def != nullptr) {
      for (const auto& col : def->columns) {
        if (IsWarehouseColumn(Upper(col.name))) {
          partitioned = true;
          break;
        }
      }
    }
    plan.reference_table = def != nullptr && !partitioned;
  }
  std::lock_guard<std::mutex> lock(plan_mu_);
  auto [it, inserted] = plans_.emplace(sql, std::move(plan));
  (void)inserted;
  return &it->second;
}

Result<int64_t> ShardedDatabase::ResolveWarehouse(
    const RoutePlan& plan, const std::vector<types::Value>* positional,
    const std::vector<std::pair<std::string, types::Value>>* named,
    const std::string& sql) {
  if (!plan.dist_is_param) return plan.dist_literal;
  if (named != nullptr) {
    for (const auto& [name, value] : *named) {
      if (Lower(name) == plan.dist_param) {
        if (!value.IsNumeric()) {
          return Status::InvalidArgument("warehouse param is not numeric");
        }
        return value.AsInt64();
      }
    }
    return Status::InvalidArgument("warehouse param @" + plan.dist_param +
                                   " missing");
  }
  // Positional: recover the binder's parameter order from the raw AST.
  sql::Statement stmt;
  AEDB_ASSIGN_OR_RETURN(stmt, sql::Parse(sql));
  std::vector<std::string> order;
  switch (stmt.kind) {
    case sql::Statement::Kind::kSelect:
      CollectParamOrder(stmt.select->where.get(), &order);
      break;
    case sql::Statement::Kind::kInsert:
      for (const auto& row : stmt.insert->rows) {
        for (const auto& e : row) CollectParamOrder(e.get(), &order);
      }
      break;
    case sql::Statement::Kind::kUpdate:
      for (const auto& [col, e] : stmt.update->sets) {
        CollectParamOrder(e.get(), &order);
      }
      CollectParamOrder(stmt.update->where.get(), &order);
      break;
    case sql::Statement::Kind::kDelete:
      CollectParamOrder(stmt.del->where.get(), &order);
      break;
    default:
      break;
  }
  for (size_t i = 0; i < order.size(); ++i) {
    if (order[i] != plan.dist_param) continue;
    if (positional == nullptr || i >= positional->size()) break;
    const types::Value& v = (*positional)[i];
    if (!v.IsNumeric()) {
      return Status::InvalidArgument("warehouse param is not numeric");
    }
    return v.AsInt64();
  }
  return Status::InvalidArgument("cannot resolve warehouse param @" +
                                 plan.dist_param);
}

// ---------------------------------------------------------------------------
// Transactions

uint64_t ShardedDatabase::BeginTransaction() {
  std::lock_guard<std::mutex> lock(txn_mu_);
  uint64_t gtid = next_gtid_++;
  gtxns_.emplace(gtid, GlobalTxn{});
  return gtid;
}

Result<uint64_t> ShardedDatabase::LocalTxnFor(uint64_t gtid, uint32_t shard) {
  std::lock_guard<std::mutex> lock(txn_mu_);
  auto it = gtxns_.find(gtid);
  if (it == gtxns_.end()) return Status::NotFound("unknown transaction");
  auto local = it->second.locals.find(shard);
  if (local != it->second.locals.end()) return local->second;
  uint64_t id = shards_[shard]->BeginTransaction();
  it->second.locals.emplace(shard, id);
  return id;
}

uint32_t ShardedDatabase::PreferredReadShard(uint64_t gtid, uint32_t fallback) {
  std::lock_guard<std::mutex> lock(txn_mu_);
  auto it = gtxns_.find(gtid);
  if (it == gtxns_.end() || it->second.locals.empty()) return fallback;
  return it->second.locals.begin()->first;
}

Status ShardedDatabase::CommitTransaction(uint64_t txn) {
  GlobalTxn gtxn;
  {
    std::lock_guard<std::mutex> lock(txn_mu_);
    auto it = gtxns_.find(txn);
    if (it == gtxns_.end()) return Status::NotFound("unknown transaction");
    gtxn = std::move(it->second);
    gtxns_.erase(it);
  }
  return CommitGlobal(txn, std::move(gtxn));
}

Status ShardedDatabase::RollbackTransaction(uint64_t txn) {
  GlobalTxn gtxn;
  {
    std::lock_guard<std::mutex> lock(txn_mu_);
    auto it = gtxns_.find(txn);
    if (it == gtxns_.end()) return Status::NotFound("unknown transaction");
    gtxn = std::move(it->second);
    gtxns_.erase(it);
  }
  Status first;
  for (const auto& [shard, local] : gtxn.locals) {
    Status st = shards_[shard]->RollbackTransaction(local);
    if (!st.ok() && first.ok()) first = Annotate(st, shard);
  }
  return first;
}

Status ShardedDatabase::CommitGlobal(uint64_t gtid, GlobalTxn gtxn) {
  if (gtxn.locals.empty()) return Status::OK();

  // Split participants: read-only shards have nothing at stake — commit them
  // immediately, no vote needed (the classic read-only 2PC optimization).
  std::vector<std::pair<uint32_t, uint64_t>> writers;
  for (const auto& [shard, local] : gtxn.locals) {
    if (shards_[shard]->engine().TxnOpCount(local) > 0) {
      writers.emplace_back(shard, local);
    } else {
      (void)shards_[shard]->CommitTransaction(local);
    }
  }
  if (writers.empty()) return Status::OK();
  if (writers.size() == 1) {
    // Single-home: the shard's own WAL commit is the whole protocol.
    return Annotate(shards_[writers[0].first]->CommitTransaction(
                        writers[0].second),
                    writers[0].first);
  }

  auto abort_all = [&]() {
    for (const auto& [shard, local] : writers) {
      (void)shards_[shard]->RollbackTransaction(local);
    }
  };

  // --- Phase 1: prepare every writer. Any failure before the decision is
  // durable is PRESUMED ABORT: no decision record will ever exist for this
  // gtid, so recovery (ours or any shard's) rolls the txn back everywhere.
  {
    Status st = AEDB_FAULT_POINT("2pc/pre_prepare");
    if (!st.ok()) {
      abort_all();
      return Status::TransactionAborted("2pc aborted before prepare: " +
                                        st.message());
    }
  }
  for (size_t i = 0; i < writers.size(); ++i) {
    Status st = shards_[writers[i].first]->engine().Prepare(writers[i].second,
                                                            gtid);
    if (!st.ok()) {
      // This writer voted NO (Prepare aborted it on failure); roll back the
      // others, prepared or not.
      for (size_t j = 0; j < writers.size(); ++j) {
        if (j == i) continue;
        (void)shards_[writers[j].first]->RollbackTransaction(
            writers[j].second);
      }
      return Status::TransactionAborted(
          "2pc prepare failed: " +
          Annotate(st, writers[i].first).message());
    }
  }
  {
    Status st = AEDB_FAULT_POINT("2pc/prepared_no_decision");
    if (!st.ok()) {
      abort_all();
      return Status::TransactionAborted(
          "2pc: all prepared but no decision: " + st.message());
    }
  }
  {
    Status st = AEDB_FAULT_POINT("2pc/pre_commit_decision");
    if (!st.ok()) {
      abort_all();
      return Status::TransactionAborted(
          "2pc aborted before commit decision: " + st.message());
    }
  }

  // --- Decision: once this record is durable the transaction MUST commit on
  // every participant, across any combination of crashes.
  std::vector<uint32_t> shard_ids;
  for (const auto& [shard, local] : writers) shard_ids.push_back(shard);
  {
    Status st = LogCommitDecision(gtid, shard_ids);
    if (!st.ok()) {
      abort_all();
      return Status::TransactionAborted("2pc decision not durable: " +
                                        st.message());
    }
  }
  {
    Status st = AEDB_FAULT_POINT("2pc/coordinator_crash");
    if (!st.ok()) {
      // The decision is durable but phase 2 never ran: every writer stays
      // prepared (in-doubt). RecoverInDoubt()/Open() will finish the commit.
      return Status::FromCode(
          StatusCode::kUnavailable,
          "2pc coordinator crashed after commit decision: " + st.message());
    }
  }

  // --- Phase 2: finish every writer. A failure here leaves that shard
  // in-doubt with the decision on disk; recovery completes it.
  Status first;
  for (const auto& [shard, local] : writers) {
    Status st = shards_[shard]->engine().CommitPrepared(local);
    if (!st.ok() && first.ok()) first = Annotate(st, shard);
  }
  two_phase_commits_.fetch_add(1, std::memory_order_relaxed);
  return first;
}

// ---------------------------------------------------------------------------
// Decision log

Status ShardedDatabase::LogCommitDecision(uint64_t gtid,
                                          const std::vector<uint32_t>& shards) {
  std::lock_guard<std::mutex> lock(decision_mu_);
  if (options_.base.data_dir.empty()) {
    mem_decisions_.insert(gtid);
    return Status::OK();
  }
  if (decision_fd_ < 0) {
    decision_fd_ = ::open(DecisionLogPath().c_str(),
                          O_CREAT | O_WRONLY | O_APPEND | O_CLOEXEC, 0644);
    if (decision_fd_ < 0) {
      return Status::Internal(std::string("2pc.log open: ") +
                              std::strerror(errno));
    }
    AEDB_RETURN_IF_ERROR(
        storage::fsio::SyncDir(storage::fsio::DirName(DecisionLogPath())));
  }
  Bytes framed = EncodeDecision(gtid, shards);
  size_t off = 0;
  while (off < framed.size()) {
    ssize_t w = ::write(decision_fd_, framed.data() + off, framed.size() - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("2pc.log write: ") +
                              std::strerror(errno));
    }
    off += static_cast<size_t>(w);
  }
  if (::fsync(decision_fd_) != 0) {
    return Status::Internal(std::string("2pc.log fsync: ") +
                            std::strerror(errno));
  }
  storage::fsio::CountFsync();
  return Status::OK();
}

Result<std::set<uint64_t>> ShardedDatabase::LoadCommitDecisions() {
  std::lock_guard<std::mutex> lock(decision_mu_);
  if (options_.base.data_dir.empty()) return mem_decisions_;
  std::set<uint64_t> out;
  if (!storage::fsio::FileExists(DecisionLogPath())) return out;
  Bytes image;
  AEDB_ASSIGN_OR_RETURN(image, storage::fsio::ReadFileBytes(DecisionLogPath()));
  storage::FramedBlobs blobs = storage::ParseFramedBlobs(image);
  // A torn tail is the expected shape of a coordinator crash mid-append: the
  // torn decision never became durable, so its gtid is presumed aborted.
  for (const Bytes& body : blobs.blobs) {
    size_t off = 0;
    auto gtid = GetU64(body, &off);
    if (!gtid.ok()) continue;
    out.insert(*gtid);
  }
  return out;
}

Status ShardedDatabase::TruncateDecisionLog() {
  std::lock_guard<std::mutex> lock(decision_mu_);
  if (options_.base.data_dir.empty()) {
    mem_decisions_.clear();
    return Status::OK();
  }
  // The rewrite replaces the inode; drop the append fd first.
  if (decision_fd_ >= 0) {
    ::close(decision_fd_);
    decision_fd_ = -1;
  }
  if (!storage::fsio::FileExists(DecisionLogPath())) return Status::OK();
  return storage::fsio::WriteFileDurable(DecisionLogPath(), Slice());
}

// ---------------------------------------------------------------------------
// Execution

Result<sql::ResultSet> ShardedDatabase::RunOnShard(
    uint32_t s, const std::string& sql,
    const std::vector<types::Value>* positional,
    const std::vector<std::pair<std::string, types::Value>>* named,
    uint64_t local_txn, uint64_t session_id, uint32_t deadline_ms) {
  if (named != nullptr) {
    return AnnotateResult(
        shards_[s]->ExecuteNamed(sql, *named, local_txn, session_id,
                                 deadline_ms),
        s);
  }
  return AnnotateResult(
      shards_[s]->Execute(sql, *positional, local_txn, session_id,
                          deadline_ms),
      s);
}

Result<sql::ResultSet> ShardedDatabase::Execute(
    const std::string& sql, const std::vector<types::Value>& params,
    uint64_t txn, uint64_t session_id, uint32_t deadline_ms) {
  return Route(sql, &params, nullptr, txn, session_id, deadline_ms);
}

Result<sql::ResultSet> ShardedDatabase::ExecuteNamed(
    const std::string& sql,
    const std::vector<std::pair<std::string, types::Value>>& params,
    uint64_t txn, uint64_t session_id, uint32_t deadline_ms) {
  return Route(sql, nullptr, &params, txn, session_id, deadline_ms);
}

Result<sql::ResultSet> ShardedDatabase::Route(
    const std::string& sql, const std::vector<types::Value>* positional,
    const std::vector<std::pair<std::string, types::Value>>* named,
    uint64_t txn, uint64_t session_id, uint32_t deadline_ms) {
  const RoutePlan* plan;
  AEDB_ASSIGN_OR_RETURN(plan, PlanFor(sql));

  // Pinned: the statement names its home warehouse.
  if (plan->pinned) {
    int64_t w;
    AEDB_ASSIGN_OR_RETURN(w, ResolveWarehouse(*plan, positional, named, sql));
    uint32_t s = ShardOfWarehouse(w);
    uint64_t local = 0;
    if (txn != 0) AEDB_ASSIGN_OR_RETURN(local, LocalTxnFor(txn, s));
    return RunOnShard(s, sql, positional, named, local, session_id,
                      deadline_ms);
  }

  // Reference-table read: every shard holds a full copy; one answer suffices.
  if (plan->reference_table && !plan->is_write) {
    uint32_t s = txn != 0 ? PreferredReadShard(txn, 0) : 0;
    uint64_t local = 0;
    if (txn != 0) AEDB_ASSIGN_OR_RETURN(local, LocalTxnFor(txn, s));
    return RunOnShard(s, sql, positional, named, local, session_id,
                      deadline_ms);
  }

  // Broadcast. Writes enlist every shard (reference-table maintenance, or a
  // partitioned statement with no pin — each shard touches only its rows).
  if (plan->is_write) {
    uint64_t gtid = txn;
    bool internal_txn = false;
    if (gtid == 0) {
      gtid = BeginTransaction();
      internal_txn = true;
    }
    sql::ResultSet last;
    for (uint32_t s = 0; s < options_.shards; ++s) {
      uint64_t local;
      {
        auto res = LocalTxnFor(gtid, s);
        if (!res.ok()) {
          if (internal_txn) (void)RollbackTransaction(gtid);
          return res.status();
        }
        local = *res;
      }
      auto res = RunOnShard(s, sql, positional, named, local, session_id,
                            deadline_ms);
      if (!res.ok()) {
        if (internal_txn) (void)RollbackTransaction(gtid);
        return res.status();
      }
      last = std::move(*res);
    }
    if (internal_txn) {
      Status st = CommitTransaction(gtid);
      if (!st.ok()) return st;
    }
    return last;
  }

  // Broadcast read over a partitioned table: fan out and merge.
  std::vector<sql::ResultSet> parts;
  for (uint32_t s = 0; s < options_.shards; ++s) {
    uint64_t local = 0;
    if (txn != 0) AEDB_ASSIGN_OR_RETURN(local, LocalTxnFor(txn, s));
    sql::ResultSet part;
    AEDB_ASSIGN_OR_RETURN(part, RunOnShard(s, sql, positional, named, local,
                                           session_id, deadline_ms));
    parts.push_back(std::move(part));
  }
  return MergeResults(*plan, std::move(parts));
}

Result<sql::ResultSet> ShardedDatabase::MergeResults(
    const RoutePlan& plan, std::vector<sql::ResultSet> parts) {
  if (parts.empty()) return sql::ResultSet{};
  if (plan.has_group_by) {
    return Status::NotSupported("cross-shard GROUP BY is not supported");
  }
  sql::ResultSet out = std::move(parts[0]);

  if (plan.has_agg) {
    // One aggregate row per shard; fold them column-wise.
    for (size_t p = 1; p < parts.size(); ++p) {
      if (parts[p].rows.empty()) continue;
      if (out.rows.empty()) {
        out.rows = std::move(parts[p].rows);
        continue;
      }
      std::vector<types::Value>& acc = out.rows[0];
      const std::vector<types::Value>& add = parts[p].rows[0];
      for (size_t c = 0; c < acc.size() && c < add.size(); ++c) {
        sql::AggFunc agg =
            c < plan.aggs.size() ? plan.aggs[c] : sql::AggFunc::kNone;
        if (add[c].is_null()) continue;
        if (acc[c].is_null()) {
          acc[c] = add[c];
          continue;
        }
        switch (agg) {
          case sql::AggFunc::kCount:
          case sql::AggFunc::kSum: {
            if (acc[c].type() == types::TypeId::kDouble ||
                add[c].type() == types::TypeId::kDouble) {
              acc[c] = types::Value::Double(acc[c].AsDouble() +
                                            add[c].AsDouble());
            } else {
              acc[c] = types::Value::Int64(acc[c].AsInt64() + add[c].AsInt64());
            }
            break;
          }
          case sql::AggFunc::kMin:
          case sql::AggFunc::kMax: {
            int cmp;
            AEDB_ASSIGN_OR_RETURN(cmp, acc[c].Compare(add[c]));
            bool take = agg == sql::AggFunc::kMin ? cmp > 0 : cmp < 0;
            if (take) acc[c] = add[c];
            break;
          }
          case sql::AggFunc::kAvg:
            return Status::NotSupported("cross-shard AVG is not supported");
          case sql::AggFunc::kNone:
            break;  // bare column next to an aggregate: keep shard 0's value
        }
      }
    }
    return out;
  }

  for (size_t p = 1; p < parts.size(); ++p) {
    for (auto& row : parts[p].rows) out.rows.push_back(std::move(row));
  }
  if (!plan.order_by.empty()) {
    int idx = -1;
    std::string want = BareColumn(plan.order_by);
    for (size_t c = 0; c < out.columns.size(); ++c) {
      if (BareColumn(out.columns[c]) == want) {
        idx = static_cast<int>(c);
        break;
      }
    }
    if (idx < 0) {
      return Status::NotSupported("cross-shard ORDER BY column not in output");
    }
    bool comparable = true;
    std::stable_sort(out.rows.begin(), out.rows.end(),
                     [&](const std::vector<types::Value>& a,
                         const std::vector<types::Value>& b) {
                       if (a[idx].is_null() || b[idx].is_null()) {
                         return a[idx].is_null() && !b[idx].is_null();
                       }
                       auto cmp = a[idx].Compare(b[idx]);
                       if (!cmp.ok()) {
                         comparable = false;
                         return false;
                       }
                       return plan.order_desc ? *cmp > 0 : *cmp < 0;
                     });
    if (!comparable) {
      return Status::NotSupported(
          "cross-shard ORDER BY over incomparable (encrypted) values");
    }
  }
  if (plan.limit >= 0 &&
      out.rows.size() > static_cast<size_t>(plan.limit)) {
    out.rows.resize(static_cast<size_t>(plan.limit));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Pass-throughs

Status ShardedDatabase::ExecuteDdl(const std::string& sql,
                                   uint64_t session_id) {
  // DDL replicates: every shard executes the same statement in the same
  // order, so catalogs (table/index/key ids) stay identical across shards.
  for (uint32_t s = 0; s < options_.shards; ++s) {
    AEDB_RETURN_IF_ERROR(Annotate(shards_[s]->ExecuteDdl(sql, session_id), s));
  }
  return Status::OK();
}

Status ShardedDatabase::ExecuteDdlOnShard(uint32_t shard,
                                          const std::string& sql,
                                          uint64_t session_id) {
  if (shard >= options_.shards) return Status::InvalidArgument("no such shard");
  return Annotate(shards_[shard]->ExecuteDdl(sql, session_id), shard);
}

Result<DescribeResult> ShardedDatabase::DescribeParameterEncryption(
    const std::string& sql, Slice client_dh_public) {
  return AnnotateResult(
      shards_[0]->DescribeParameterEncryption(sql, client_dh_public),
      0);
}

Result<KeyDescription> ShardedDatabase::GetKeyDescription(uint32_t cek_id) {
  return shards_[0]->GetKeyDescription(cek_id);
}

Result<DescribeResult> ShardedDatabase::Attest(Slice client_dh_public) {
  return AttestShard(0, client_dh_public);
}

Result<DescribeResult> ShardedDatabase::AttestShard(uint32_t shard,
                                                    Slice client_dh_public) {
  if (shard >= options_.shards) return Status::InvalidArgument("no such shard");
  return AnnotateResult(shards_[shard]->Attest(client_dh_public), shard);
}

Result<types::EncryptionType> ShardedDatabase::ColumnEncryption(
    const std::string& table, const std::string& column) {
  return shards_[0]->ColumnEncryption(table, column);
}

Status ShardedDatabase::AlterColumnMetadataForClientTool(
    const std::string& table, const std::string& column,
    const sql::EncryptionSpec& enc) {
  for (uint32_t s = 0; s < options_.shards; ++s) {
    AEDB_RETURN_IF_ERROR(
        Annotate(shards_[s]->AlterColumnMetadataForClientTool(table, column,
                                                              enc),
                 s));
  }
  return Status::OK();
}

Status ShardedDatabase::ForwardKeysToEnclave(uint64_t session_id,
                                             uint64_t nonce, Slice sealed) {
  return ForwardKeysToShard(0, session_id, nonce, sealed);
}

Status ShardedDatabase::ForwardKeysToShard(uint32_t shard, uint64_t session_id,
                                           uint64_t nonce, Slice sealed) {
  if (shard >= options_.shards) return Status::InvalidArgument("no such shard");
  return Annotate(
      shards_[shard]->ForwardKeysToEnclave(session_id, nonce, sealed), shard);
}

Status ShardedDatabase::ForwardEncryptionAuthorization(uint64_t session_id,
                                                       uint64_t nonce,
                                                       Slice sealed) {
  return ForwardAuthorizationToShard(0, session_id, nonce, sealed);
}

Status ShardedDatabase::ForwardAuthorizationToShard(uint32_t shard,
                                                    uint64_t session_id,
                                                    uint64_t nonce,
                                                    Slice sealed) {
  if (shard >= options_.shards) return Status::InvalidArgument("no such shard");
  return Annotate(
      shards_[shard]->ForwardEncryptionAuthorization(session_id, nonce,
                                                     sealed),
      shard);
}

sql::Catalog& ShardedDatabase::catalog() { return shards_[0]->catalog(); }

DatabaseStats ShardedDatabase::Stats() const {
  DatabaseStats out;
  for (const auto& shard : shards_) {
    DatabaseStats s = shard->Stats();
    out.enclave_calls += s.enclave_calls;
    out.enclave_evals += s.enclave_evals;
    out.enclave_comparisons += s.enclave_comparisons;
    out.enclave_transitions += s.enclave_transitions;
    out.enclave_batch_evals += s.enclave_batch_evals;
    out.enclave_batched_values += s.enclave_batched_values;
    out.queries_admitted += s.queries_admitted;
    out.queries_rejected += s.queries_rejected;
    out.queries_expired += s.queries_expired;
    out.lock_waits_expired += s.lock_waits_expired;
    out.pool_queue_highwater =
        std::max(out.pool_queue_highwater, s.pool_queue_highwater);
    out.pool_expired_dropped += s.pool_expired_dropped;
    out.pool_overload_rejected += s.pool_overload_rejected;
    out.recovery_ms += s.recovery_ms;
    out.wal_records_replayed += s.wal_records_replayed;
    out.torn_bytes_dropped += s.torn_bytes_dropped;
    out.checkpoints_taken += s.checkpoints_taken;
    out.wal_bytes += s.wal_bytes;
    out.fsyncs = std::max(out.fsyncs, s.fsyncs);  // process-wide gauge
    out.wal_file_errors += s.wal_file_errors;
    out.pool_hits += s.pool_hits;
    out.pool_misses += s.pool_misses;
    out.pool_evictions += s.pool_evictions;
    out.pool_writebacks += s.pool_writebacks;
    out.pool_pinned_highwater =
        std::max(out.pool_pinned_highwater, s.pool_pinned_highwater);
    out.group_commit_batches += s.group_commit_batches;
    out.commit_sync_requests += s.commit_sync_requests;
  }
  if (out.enclave_transitions > 0) {
    out.values_per_transition =
        static_cast<double>(out.enclave_evals + out.enclave_comparisons) /
        static_cast<double>(out.enclave_transitions);
  }
  if (out.group_commit_batches > 0) {
    out.commits_per_fsync =
        static_cast<double>(out.commit_sync_requests) /
        static_cast<double>(out.group_commit_batches);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Lifecycle & recovery

Status ShardedDatabase::Open() {
  if (!options_.base.data_dir.empty()) {
    AEDB_RETURN_IF_ERROR(storage::fsio::EnsureDir(options_.base.data_dir));
  }
  recovery_info_ = RecoveryInfo{};
  for (uint32_t s = 0; s < options_.shards; ++s) {
    AEDB_RETURN_IF_ERROR(Annotate(shards_[s]->Open(), s));
    const RecoveryInfo& ri = shards_[s]->recovery_info();
    recovery_info_.ran = recovery_info_.ran || ri.ran;
    recovery_info_.clean_shutdown =
        (s == 0 ? ri.clean_shutdown
                : recovery_info_.clean_shutdown && ri.clean_shutdown);
    recovery_info_.recovery_ms += ri.recovery_ms;
    recovery_info_.wal_records_replayed += ri.wal_records_replayed;
    recovery_info_.from_checkpoint_lsn =
        std::max(recovery_info_.from_checkpoint_lsn, ri.from_checkpoint_lsn);
    recovery_info_.ddl_statements_replayed += ri.ddl_statements_replayed;
    recovery_info_.engine.redone += ri.engine.redone;
    recovery_info_.engine.undone += ri.engine.undone;
    recovery_info_.engine.log_tail_records += ri.engine.log_tail_records;
    recovery_info_.engine.orphaned_records_skipped +=
        ri.engine.orphaned_records_skipped;
    for (const auto& d : ri.engine.in_doubt) {
      recovery_info_.engine.in_doubt.push_back(d);
    }
  }
  return RecoverInDoubt();
}

Status ShardedDatabase::RecoverInDoubt() {
  std::set<uint64_t> committed;
  AEDB_ASSIGN_OR_RETURN(committed, LoadCommitDecisions());
  bool all_settled = true;
  for (uint32_t s = 0; s < options_.shards; ++s) {
    for (const storage::InDoubtTxn& t : shards_[s]->engine().InDoubtTxns()) {
      if (committed.count(t.gtid)) {
        Status st = shards_[s]->engine().CommitPrepared(t.txn_id);
        if (!st.ok()) {
          all_settled = false;
          AEDB_RETURN_IF_ERROR(Annotate(st, s));
        }
      } else {
        // Presumed abort: no durable decision means the coordinator never
        // decided commit, so no participant can have committed.
        Status st = shards_[s]->RollbackTransaction(t.txn_id);
        if (!st.ok() && !st.IsNotFound()) {
          all_settled = false;
          AEDB_RETURN_IF_ERROR(Annotate(st, s));
        }
      }
    }
  }
  if (!all_settled) return Status::OK();
  return TruncateDecisionLog();
}

Result<storage::RecoveryResult> ShardedDatabase::RestartShard(uint32_t i) {
  if (i >= options_.shards) return Status::InvalidArgument("no such shard");
  // Drop global txns enlisted on the crashing shard whose locals died with
  // it (their other participants roll back; prepared ones resolve via the
  // decision log).
  {
    std::lock_guard<std::mutex> lock(txn_mu_);
    for (auto it = gtxns_.begin(); it != gtxns_.end();) {
      if (it->second.locals.count(i)) {
        for (const auto& [shard, local] : it->second.locals) {
          if (shard != i) (void)shards_[shard]->RollbackTransaction(local);
        }
        it = gtxns_.erase(it);
      } else {
        ++it;
      }
    }
  }
  return shards_[i]->Restart();
}

Status ShardedDatabase::SyncWals() {
  Status first;
  for (uint32_t s = 0; s < options_.shards; ++s) {
    Status st = shards_[s]->engine().wal().Sync();
    if (!st.ok() && first.ok()) first = Annotate(st, s);
  }
  return first;
}

Status ShardedDatabase::Shutdown() {
  Status first;
  for (uint32_t s = 0; s < options_.shards; ++s) {
    Status st = shards_[s]->Shutdown();
    if (!st.ok() && first.ok()) first = Annotate(st, s);
  }
  std::lock_guard<std::mutex> lock(decision_mu_);
  if (decision_fd_ >= 0) {
    ::close(decision_fd_);
    decision_fd_ = -1;
  }
  return first;
}

}  // namespace aedb::server
