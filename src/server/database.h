#ifndef AEDB_SERVER_DATABASE_H_
#define AEDB_SERVER_DATABASE_H_

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "attestation/attestation.h"
#include "common/query_context.h"
#include "enclave/enclave.h"
#include "enclave/worker_pool.h"
#include "server/ddl_journal.h"
#include "sql/binder.h"
#include "sql/executor.h"
#include "sql/parser.h"
#include "storage/engine.h"

namespace aedb::server {

struct ServerOptions {
  bool enable_enclave = true;
  /// 0 = synchronous enclave calls (one gate crossing per expression);
  /// >0 = enclave worker threads with queued submission (paper §4.6).
  int enclave_worker_threads = 0;
  /// Worker spin-poll duration before sleeping. On a single-core host long
  /// spins steal cycles from the producers; the paper's 20-core testbed
  /// could afford pinned spinning workers.
  uint64_t enclave_worker_spin_us = 50;
  enclave::EnclaveConfig enclave_config;
  storage::EngineOptions engine;
  std::string boot_configuration = "known-good-boot";
  uint32_t hypervisor_version = 1;
  /// Capture serialized request/response bytes for leakage inspection.
  bool capture_tds = false;
  /// Simulated client↔server network latency charged per round trip
  /// (Execute and sp_describe each cost one). Models why SQL-PT-AEConn
  /// loses ~36% to the extra describe round trip (paper §5.4.1).
  uint32_t simulated_network_us = 0;
  /// Rows per execution morsel: the executor evaluates encrypted predicates
  /// over batches of this size with one enclave transition per morsel
  /// (paper §4.6 amortization). 1 = row-at-a-time.
  size_t eval_batch_size = 256;
  /// Bound on queued (not yet picked up) enclave work items; 0 = unbounded.
  /// A full queue sheds expired queued morsels first, then rejects the
  /// submission with kOverloaded.
  size_t enclave_queue_depth = 0;
  /// Admission gate: max concurrently executing queries; 0 = unbounded.
  /// Excess queries are rejected fast — before parsing or any enclave work —
  /// with kOverloaded carrying a retry-after hint.
  size_t max_inflight_queries = 0;
  /// The retry-after hint (milliseconds) attached to admission rejections.
  uint32_t overload_retry_after_ms = 20;
  /// Durable mode: when non-empty, the WAL, DDL journal, checkpoint file and
  /// clean-shutdown marker live in this directory and Open() recovers from
  /// them. Empty (the default) keeps everything in memory — the mode every
  /// pre-existing test runs in.
  std::string data_dir;
  /// Background checkpoint trigger: when the durable WAL grows past this many
  /// bytes, a checkpoint is taken and the log truncated. 0 disables the
  /// background checkpointer (manual Checkpoint() still works).
  uint64_t checkpoint_wal_bytes = 0;
  // Buffer-pool sizing (engine.pool_pages), the background flusher
  // (engine.flush_interval_ms) and the group-commit window
  // (engine.group_commit_window_us) are configured on `engine` directly; in
  // data-dir mode the Database additionally routes evicted pages to a
  // FilePageStore under <data_dir>/pages.
};

/// Snapshot of server-side counters (enclave boundary accounting included)
/// for benches and the net server's stats surface.
struct DatabaseStats {
  uint64_t enclave_calls = 0;
  uint64_t enclave_evals = 0;
  uint64_t enclave_comparisons = 0;
  uint64_t enclave_transitions = 0;
  uint64_t enclave_batch_evals = 0;
  uint64_t enclave_batched_values = 0;
  /// Amortization gauge: (evals + comparisons) / transitions.
  double values_per_transition = 0.0;
  // Overload-control gauges (PR 4).
  uint64_t queries_admitted = 0;   // passed the admission gate
  uint64_t queries_rejected = 0;   // kOverloaded at the admission gate
  uint64_t queries_expired = 0;    // finished with kDeadlineExceeded
  uint64_t lock_waits_expired = 0; // lock waits cut short by a query deadline
  uint64_t pool_queue_highwater = 0;
  uint64_t pool_expired_dropped = 0;   // morsels shed as kDeadlineExceeded
  uint64_t pool_overload_rejected = 0; // submissions shed as kOverloaded
  // Durability gauges (data-dir mode; zero in-memory).
  uint64_t recovery_ms = 0;            // wall time of the last Open() recovery
  uint64_t wal_records_replayed = 0;   // WAL tail records replayed at Open()
  uint64_t torn_bytes_dropped = 0;     // torn tail bytes dropped (WAL + DDL)
  uint64_t checkpoints_taken = 0;
  uint64_t wal_bytes = 0;              // current durable WAL size
  uint64_t fsyncs = 0;                 // process-wide fsync count
  uint64_t wal_file_errors = 0;        // WAL file writes that failed (disk
                                       // diverged from the in-memory mirror)
  // Buffer-pool gauges (PR 8).
  uint64_t pool_hits = 0;
  uint64_t pool_misses = 0;
  uint64_t pool_evictions = 0;
  uint64_t pool_writebacks = 0;        // dirty pages written to the store
  uint64_t pool_pinned_highwater = 0;
  // Group-commit gauges (PR 8).
  uint64_t group_commit_batches = 0;   // cohort fsyncs performed by SyncUpTo
  uint64_t commit_sync_requests = 0;   // commits that reached the barrier
  /// Amortization gauge: commit_sync_requests / group_commit_batches
  /// (0 when no cohort fsync has run, e.g. in-memory mode).
  double commits_per_fsync = 0.0;
};

/// Key metadata for one CEK as shipped to the driver: the encrypted CEK
/// value(s) plus the CMK metadata needed to unwrap and verify them.
struct KeyDescription {
  uint32_t cek_id = 0;
  keys::CekInfo cek;
  keys::CmkInfo cmk;
};

/// Output of sp_describe_parameter_encryption (paper §3, §4.1): per-parameter
/// encryption types, the CEKs the enclave needs, and — when the query needs
/// the enclave and the client supplied a DH key — attestation material.
struct DescribeResult {
  struct ParamInfo {
    std::string name;
    types::TypeId type = types::TypeId::kInt64;
    types::EncryptionType enc;
  };
  std::vector<ParamInfo> params;
  std::vector<KeyDescription> keys;          // all CEKs referenced
  bool requires_enclave = false;
  std::vector<uint32_t> enclave_cek_ids;

  bool attestation_included = false;
  attestation::HealthCertificate health_certificate;
  enclave::AttestationResponse attestation;
};

/// Per-statement adversary-observable wire capture (the simulated TDS
/// stream): what a man-in-the-middle with full server access sees.
struct TdsCapture {
  Bytes last_request;
  Bytes last_response;
};

/// What the last Open() found on disk and did about it (durable mode).
/// Shared by the single-node Database and the sharded router (which
/// aggregates its shards' numbers).
struct RecoveryInfo {
  bool ran = false;             // Open() performed durable recovery
  bool clean_shutdown = false;  // the clean-shutdown marker was present
  uint64_t recovery_ms = 0;
  uint64_t wal_records_replayed = 0;  // WAL tail records fed to redo
  uint64_t from_checkpoint_lsn = 0;   // 0 = no checkpoint file found
  size_t ddl_statements_replayed = 0;
  storage::RecoveryResult engine;
};

/// \brief The SQL surface a client transport talks to: implemented by the
/// single-node Database and by the sharded router (ShardedDatabase). The
/// shard-aware calls default to single-shard behavior so every existing
/// backend keeps working unchanged; a sharded backend overrides them and the
/// driver attests/keys each shard's enclave independently (per-node
/// attestation is the unit of trust — "Pushing the Limits" §per-database
/// enclave state).
class SqlBackend {
 public:
  virtual ~SqlBackend() = default;

  virtual Status ExecuteDdl(const std::string& sql, uint64_t session_id = 0) = 0;
  virtual Result<DescribeResult> DescribeParameterEncryption(
      const std::string& sql, Slice client_dh_public) = 0;
  virtual uint64_t BeginTransaction() = 0;
  virtual Status CommitTransaction(uint64_t txn) = 0;
  virtual Status RollbackTransaction(uint64_t txn) = 0;
  virtual Result<sql::ResultSet> Execute(const std::string& sql,
                                         const std::vector<types::Value>& params,
                                         uint64_t txn = 0,
                                         uint64_t session_id = 0,
                                         uint32_t deadline_ms = 0) = 0;
  virtual Result<sql::ResultSet> ExecuteNamed(
      const std::string& sql,
      const std::vector<std::pair<std::string, types::Value>>& params,
      uint64_t txn = 0, uint64_t session_id = 0, uint32_t deadline_ms = 0) = 0;
  virtual Result<KeyDescription> GetKeyDescription(uint32_t cek_id) = 0;
  virtual Result<DescribeResult> Attest(Slice client_dh_public) = 0;
  virtual Result<types::EncryptionType> ColumnEncryption(
      const std::string& table, const std::string& column) = 0;
  virtual Status AlterColumnMetadataForClientTool(
      const std::string& table, const std::string& column,
      const sql::EncryptionSpec& enc) = 0;
  virtual Status ForwardKeysToEnclave(uint64_t session_id, uint64_t nonce,
                                      Slice sealed) = 0;
  virtual Status ForwardEncryptionAuthorization(uint64_t session_id,
                                                uint64_t nonce,
                                                Slice sealed) = 0;
  virtual sql::Catalog& catalog() = 0;
  virtual DatabaseStats Stats() const = 0;
  virtual Status Open() = 0;
  virtual Status Shutdown() = 0;
  virtual const RecoveryInfo& recovery_info() const = 0;
  /// Forces every shard's WAL to disk (the serverd drain path).
  virtual Status SyncWals() = 0;

  // ----- sharding (single-shard defaults) -----
  virtual uint32_t shard_count() const { return 1; }
  /// Attestation against one shard's enclave. Each shard is its own unit of
  /// attestation: the driver verifies and installs CEKs per shard.
  virtual Result<DescribeResult> AttestShard(uint32_t shard,
                                             Slice client_dh_public) {
    if (shard != 0) return Status::InvalidArgument("no such shard");
    return Attest(client_dh_public);
  }
  virtual Status ForwardKeysToShard(uint32_t shard, uint64_t session_id,
                                    uint64_t nonce, Slice sealed) {
    if (shard != 0) return Status::InvalidArgument("no such shard");
    return ForwardKeysToEnclave(session_id, nonce, sealed);
  }
  virtual Status ForwardAuthorizationToShard(uint32_t shard,
                                             uint64_t session_id,
                                             uint64_t nonce, Slice sealed) {
    if (shard != 0) return Status::InvalidArgument("no such shard");
    return ForwardEncryptionAuthorization(session_id, nonce, sealed);
  }
  /// Enclave DDL bound to one shard's session (authorization is sealed to a
  /// specific enclave session, so the driver drives each shard separately).
  virtual Status ExecuteDdlOnShard(uint32_t shard, const std::string& sql,
                                   uint64_t session_id) {
    if (shard != 0) return Status::InvalidArgument("no such shard");
    return ExecuteDdl(sql, session_id);
  }
};

/// \brief The untrusted SQL Server process: query engine + host side of the
/// enclave. Everything here may be inspected by the strong adversary —
/// pages, WAL, plan cache, TDS bytes — and none of it ever holds column
/// plaintext for encrypted columns.
class Database : public SqlBackend {
 public:
  /// `hgs` is the external attestation service (may be null when no enclave);
  /// `image` is the signed enclave binary to load.
  Database(ServerOptions options, attestation::HostGuardianService* hgs,
           const enclave::EnclaveImage* image);
  ~Database();

  // ----- DDL -----
  /// Executes a DDL statement. ALTER TABLE ALTER COLUMN statements that
  /// change encryption run through the enclave and require the client to
  /// have authorized exactly this statement text on `session_id` (§3.2).
  Status ExecuteDdl(const std::string& sql, uint64_t session_id = 0) override;

  // ----- the describe API -----
  Result<DescribeResult> DescribeParameterEncryption(
      const std::string& sql, Slice client_dh_public) override;

  // ----- transactions -----
  uint64_t BeginTransaction() override;
  Status CommitTransaction(uint64_t txn) override;
  Status RollbackTransaction(uint64_t txn) override;

  // ----- parameterized execution -----
  /// `params` are wire values: plaintext-encoded for plaintext parameters,
  /// AEAD cells (kBinary) for encrypted ones (the driver encrypted them).
  /// txn = 0 runs autocommit. deadline_ms > 0 bounds execution: the query's
  /// remaining budget is checked cooperatively at morsel boundaries, bounds
  /// lock waits, and lets the enclave pool drop expired morsels; an expired
  /// query returns typed kDeadlineExceeded.
  Result<sql::ResultSet> Execute(const std::string& sql,
                                 const std::vector<types::Value>& params,
                                 uint64_t txn = 0, uint64_t session_id = 0,
                                 uint32_t deadline_ms = 0) override;

  /// Named-parameter convenience: values are matched to the statement's
  /// deduced parameter order by (case-insensitive) name.
  Result<sql::ResultSet> ExecuteNamed(
      const std::string& sql,
      const std::vector<std::pair<std::string, types::Value>>& params,
      uint64_t txn = 0, uint64_t session_id = 0,
      uint32_t deadline_ms = 0) override;

  /// Key metadata for one CEK (drivers fetch this to decrypt result columns).
  Result<KeyDescription> GetKeyDescription(uint32_t cek_id) override;

  /// Attestation without a statement (drivers establishing a session for
  /// DDL authorization). Fills only the attestation fields.
  Result<DescribeResult> Attest(Slice client_dh_public) override;

  /// A column's current encryption configuration (server metadata).
  Result<types::EncryptionType> ColumnEncryption(
      const std::string& table, const std::string& column) override;

  /// Client-tool support (§2.4.2 round trip for enclave-disabled keys):
  /// changes a column's encryption metadata without transforming data — the
  /// client tool rewrites the rows itself. Refused while the column is
  /// indexed.
  Status AlterColumnMetadataForClientTool(
      const std::string& table, const std::string& column,
      const sql::EncryptionSpec& enc) override;

  // ----- driver→enclave passthrough (server is the man in the middle) -----
  Status ForwardKeysToEnclave(uint64_t session_id, uint64_t nonce,
                              Slice sealed) override;
  Status ForwardEncryptionAuthorization(uint64_t session_id, uint64_t nonce,
                                        Slice sealed) override;

  // ----- crash & recovery (§4.5) -----
  /// Simulates a crash+restart: the enclave loses all keys and sessions, and
  /// storage state is rebuilt from the WAL.
  Result<storage::RecoveryResult> Restart();
  Status InvalidateIndexByName(const std::string& index_name);

  // ----- durability (data-dir mode) -----
  /// Hoisted to namespace scope (shared with ShardedDatabase); the alias
  /// keeps `server::Database::RecoveryInfo` spellings working.
  using RecoveryInfo = ::aedb::server::RecoveryInfo;

  /// Durable-mode startup: replays the DDL journal (metadata only), attaches
  /// the file-backed WAL, loads the latest checkpoint and runs engine
  /// recovery over the WAL tail. No-op when data_dir is empty. Idempotent
  /// against crashes: a kill -9 at any point during Open() leaves state the
  /// next Open() recovers from identically.
  Status Open() override;

  /// Quiesces the engine (bounded by `quiesce_wait`), writes a checkpoint
  /// file atomically and truncates the WAL. FailedPrecondition when the
  /// engine cannot quiesce or deferred transactions pin the log.
  Status Checkpoint(std::chrono::milliseconds quiesce_wait =
                        std::chrono::milliseconds(2000));

  /// Graceful durable shutdown: stops the background checkpointer, takes a
  /// final checkpoint (best effort), fsyncs the WAL, and writes the
  /// clean-shutdown marker only if the log drained completely. Safe to call
  /// twice; the destructor calls it implicitly for thread cleanup only.
  Status Shutdown() override;

  const RecoveryInfo& recovery_info() const override { return recovery_info_; }

  /// The serverd drain path: force everything appended so far to disk.
  Status SyncWals() override { return engine_.wal().Sync(); }

  // ----- introspection -----
  sql::Catalog& catalog() override { return catalog_; }
  storage::StorageEngine& engine() { return engine_; }
  enclave::Enclave* enclave() { return enclave_.get(); }
  const enclave::VbsPlatform* platform() const { return platform_.get(); }
  const TdsCapture& tds_capture() const { return capture_; }
  uint64_t describe_calls() const { return describe_calls_; }
  /// Counter snapshot including the enclave amortization gauges.
  DatabaseStats Stats() const override;

 private:
  class ServerInvoker;

  Result<const sql::BoundStatement*> GetOrBind(const std::string& sql);
  /// The admission gate. Runs before parsing/binding on every execution path
  /// (positional and named): on OK the in-flight count stays incremented and
  /// the caller must decrement it when the query leaves the system; on
  /// kOverloaded the count is already restored.
  Status AdmitQuery();
  /// Statement execution after admission (parse, bind, deadline stamping,
  /// run). Callers hold an admission slot.
  Result<sql::ResultSet> ExecuteAdmitted(const std::string& sql,
                                         const std::vector<types::Value>& params,
                                         uint64_t txn, uint64_t session_id,
                                         uint32_t deadline_ms);
  std::string WalPath() const { return options_.data_dir + "/wal.log"; }
  std::string DdlJournalPath() const { return options_.data_dir + "/ddl.log"; }
  std::string CheckpointPath() const {
    return options_.data_dir + "/checkpoint.db";
  }
  std::string CleanShutdownPath() const {
    return options_.data_dir + "/clean_shutdown";
  }
  void CheckpointerLoop();
  void StopCheckpointer();

  /// ExecuteDdl minus the journaling wrapper (the replay entry point).
  Status ExecuteDdlStatement(const std::string& sql, uint64_t session_id = 0);
  /// Replays a journal entry that has no commit marker: the statement was
  /// never acknowledged (crash inside the append→execute→marker window, or
  /// a runtime failure), so either outcome is legal — this picks the one
  /// consistent with whatever WAL records the attempt left behind.
  void ReplayUncommittedDdl(const DdlJournalEntry& entry);
  Status ExecuteCreateTable(const sql::CreateTableStmt& stmt);
  Status ExecuteCreateIndex(const sql::CreateIndexStmt& stmt);
  Status ExecuteAlterColumn(const sql::AlterColumnStmt& stmt,
                            const std::string& sql, uint64_t session_id);
  Result<types::EncryptionType> ResolveEncryptionSpec(
      const sql::EncryptionSpec& spec);
  Result<std::unique_ptr<storage::Comparator>> MakeComparator(
      const sql::ColumnDef& col);
  Status RegisterIndexStorage(const sql::IndexDef& index,
                              const sql::ColumnDef& col);
  void ChargeRoundTrip();
  void CaptureRequest(const std::string& sql,
                      const std::vector<types::Value>& params);
  void CaptureResponse(const sql::ResultSet& result);

  ServerOptions options_;
  attestation::HostGuardianService* hgs_;

  sql::Catalog catalog_;
  /// Evicted-page backing store, data-dir mode only (<data_dir>/pages).
  /// Declared before engine_: the engine's pool writes back into it up to
  /// the last table destructor.
  std::unique_ptr<storage::FilePageStore> page_store_;
  storage::StorageEngine engine_;
  std::unique_ptr<enclave::VbsPlatform> platform_;
  std::unique_ptr<enclave::Enclave> enclave_;
  std::unique_ptr<enclave::EnclaveWorkerPool> worker_pool_;
  std::unique_ptr<ServerInvoker> invoker_;
  std::unique_ptr<sql::Executor> executor_;

  std::mutex plan_cache_mu_;
  std::map<std::string, std::unique_ptr<sql::BoundStatement>> plan_cache_;

  TdsCapture capture_;
  std::atomic<uint64_t> describe_calls_{0};

  // Overload control (PR 4): admission gate + gauges.
  std::atomic<uint64_t> inflight_queries_{0};
  std::atomic<uint64_t> queries_admitted_{0};
  std::atomic<uint64_t> queries_rejected_{0};
  std::atomic<uint64_t> queries_expired_{0};

  // Durability (data-dir mode).
  bool opened_ = false;
  /// True while Open() replays the DDL journal: DDL executes metadata-only
  /// (no enclave work, no index-build transactions — the WAL replay carries
  /// the data) and nothing is re-journaled.
  bool recovering_ = false;
  std::unique_ptr<DdlJournal> ddl_journal_;
  /// Serializes DDL execution. Needed for the journal protocol: the commit
  /// marker binds to the immediately preceding statement entry, which only
  /// holds if statement/marker pairs never interleave.
  std::mutex ddl_mu_;
  RecoveryInfo recovery_info_;
  std::mutex checkpoint_mu_;  // serializes checkpoint publish + truncate
  std::atomic<uint64_t> checkpoints_taken_{0};
  std::thread checkpointer_;
  std::atomic<bool> stop_checkpointer_{false};
};

}  // namespace aedb::server

#endif  // AEDB_SERVER_DATABASE_H_
