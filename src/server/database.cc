#include "server/database.h"

#include <algorithm>
#include <chrono>
#include <set>
#include <thread>

#include "fault/fault.h"
#include "storage/fsio.h"

namespace aedb::server {

using sql::IndexKind;
using types::EncKind;
using types::EncryptionType;
using types::TypeId;
using types::Value;

namespace {

/// Orders an encrypted range index by routing every comparison into the
/// enclave (paper §3.1.2, Figure 4). Fails with KeyNotInEnclave when the CEK
/// has not been installed — which is exactly what drives the §4.5 deferred
/// recovery machinery.
class EnclaveComparator : public storage::Comparator {
 public:
  EnclaveComparator(enclave::Enclave* enclave, uint32_t cek_id)
      : enclave_(enclave), cek_id_(cek_id) {}

  Result<int> Compare(Slice a, Slice b) const override {
    if (enclave_ == nullptr) {
      return Status::KeyNotInEnclave("no enclave configured");
    }
    return enclave_->CompareCells(cek_id_, a, b);
  }
  const char* Name() const override { return "enclave"; }

  /// Each scalar Compare pays a call-gate transition, so batching a node's
  /// keys into one CompareCellsBatch crossing is a clear win here (and only
  /// here — plaintext comparators keep binary search).
  bool PrefersBatch() const override { return true; }
  Result<std::vector<int>> CompareBatch(
      Slice probe, const std::vector<Slice>& keys) const override {
    if (enclave_ == nullptr) {
      return Status::KeyNotInEnclave("no enclave configured");
    }
    return enclave_->CompareCellsBatch(cek_id_, probe, keys);
  }

 private:
  enclave::Enclave* enclave_;
  uint32_t cek_id_;
};

}  // namespace

/// Routes TMEval calls into the enclave, registering each distinct program
/// once and re-invoking by handle (paper §3: "an expression is registered
/// once in the enclave and invoked subsequently using the handle").
class Database::ServerInvoker : public es::EnclaveInvoker {
 public:
  ServerInvoker(enclave::Enclave* enclave, enclave::EnclaveWorkerPool* pool)
      : enclave_(enclave), pool_(pool) {}

  void set_pool(enclave::EnclaveWorkerPool* pool) { pool_ = pool; }

  Result<std::vector<Value>> EvalInEnclave(Slice program_bytes,
                                           const std::vector<Value>& inputs,
                                           uint32_t n_outputs) override {
    (void)n_outputs;
    if (enclave_ == nullptr) {
      return Status::FailedPrecondition(
          "query requires an enclave but none is configured");
    }
    // An expired query must cost zero further enclave transitions: check the
    // deadline *before* registering, submitting, or calling into the enclave.
    auto deadline = enclave::EnclaveWorkerPool::Clock::time_point::max();
    if (const QueryContext* q = QueryContext::Current(); q != nullptr) {
      AEDB_RETURN_IF_ERROR(q->Check());
      deadline = q->deadline();
    }
    uint64_t handle;
    AEDB_ASSIGN_OR_RETURN(handle, HandleFor(program_bytes));
    if (pool_ != nullptr) {
      return pool_->SubmitEval(handle, inputs, /*session_id=*/0,
                               /*authorizing_query=*/{}, deadline);
    }
    return enclave_->EvalRegistered(handle, inputs);
  }

  Result<std::vector<std::vector<Value>>> EvalInEnclaveBatch(
      Slice program_bytes, const std::vector<std::vector<Value>>& batch_inputs,
      uint32_t n_outputs) override {
    (void)n_outputs;
    if (enclave_ == nullptr) {
      return Status::FailedPrecondition(
          "query requires an enclave but none is configured");
    }
    if (batch_inputs.size() == 1) {
      // Degenerate batch: take the literal scalar path so batch size 1 is
      // indistinguishable from row-at-a-time execution.
      std::vector<std::vector<Value>> out(1);
      AEDB_ASSIGN_OR_RETURN(
          out[0], EvalInEnclave(program_bytes, batch_inputs[0], n_outputs));
      return out;
    }
    // Expired morsels are dropped before paying a transition (see above).
    auto deadline = enclave::EnclaveWorkerPool::Clock::time_point::max();
    if (const QueryContext* q = QueryContext::Current(); q != nullptr) {
      AEDB_RETURN_IF_ERROR(q->Check());
      deadline = q->deadline();
    }
    uint64_t handle;
    AEDB_ASSIGN_OR_RETURN(handle, HandleFor(program_bytes));
    if (pool_ != nullptr) {
      return pool_->SubmitEvalBatch(handle, batch_inputs, /*session_id=*/0,
                                    /*authorizing_query=*/{}, deadline);
    }
    return enclave_->EvalRegisteredBatch(handle, batch_inputs);
  }

 private:
  /// Registers each distinct program once; later calls reuse the handle.
  Result<uint64_t> HandleFor(Slice program_bytes) {
    std::lock_guard<std::mutex> lock(mu_);
    std::string key(reinterpret_cast<const char*>(program_bytes.data()),
                    program_bytes.size());
    auto it = handles_.find(key);
    if (it != handles_.end()) return it->second;
    uint64_t handle;
    AEDB_ASSIGN_OR_RETURN(handle, enclave_->RegisterExpression(program_bytes));
    handles_.emplace(std::move(key), handle);
    return handle;
  }

  enclave::Enclave* enclave_;
  enclave::EnclaveWorkerPool* pool_;
  std::mutex mu_;
  std::map<std::string, uint64_t> handles_;
};

namespace {
/// Injects the server-owned FilePageStore into the engine options (data-dir
/// mode); in-memory mode leaves whatever the caller configured.
storage::EngineOptions WithPageStore(storage::EngineOptions opts,
                                     storage::PageStore* store) {
  if (store != nullptr) opts.page_store = store;
  return opts;
}
}  // namespace

Database::Database(ServerOptions options, attestation::HostGuardianService* hgs,
                   const enclave::EnclaveImage* image)
    : options_(std::move(options)),
      hgs_(hgs),
      page_store_(options_.data_dir.empty()
                      ? nullptr
                      : std::make_unique<storage::FilePageStore>(
                            options_.data_dir + "/pages")),
      engine_(WithPageStore(options_.engine, page_store_.get())) {
  if (options_.enable_enclave && image != nullptr) {
    platform_ = std::make_unique<enclave::VbsPlatform>(
        options_.boot_configuration, options_.hypervisor_version);
    auto loaded = platform_->LoadEnclave(*image, options_.enclave_config);
    if (loaded.ok()) {
      enclave_ = std::move(loaded).value();
      if (options_.enclave_worker_threads > 0) {
        enclave::EnclaveWorkerPool::Options pool_opts;
        pool_opts.num_threads = options_.enclave_worker_threads;
        pool_opts.spin_duration_us = options_.enclave_worker_spin_us;
        pool_opts.max_queue_depth = options_.enclave_queue_depth;
        worker_pool_ = std::make_unique<enclave::EnclaveWorkerPool>(
            enclave_.get(), pool_opts);
      }
    }
  }
  invoker_ = std::make_unique<ServerInvoker>(enclave_.get(), worker_pool_.get());
  executor_ = std::make_unique<sql::Executor>(&catalog_, &engine_,
                                              invoker_.get());
  executor_->set_batch_size(options_.eval_batch_size);
}

DatabaseStats Database::Stats() const {
  DatabaseStats out;
  if (enclave_ != nullptr) {
    const enclave::EnclaveStats& s = enclave_->stats();
    out.enclave_calls = s.calls.load(std::memory_order_relaxed);
    out.enclave_evals = s.evals.load(std::memory_order_relaxed);
    out.enclave_comparisons = s.comparisons.load(std::memory_order_relaxed);
    out.enclave_transitions = s.transitions.load(std::memory_order_relaxed);
    out.enclave_batch_evals = s.batch_evals.load(std::memory_order_relaxed);
    out.enclave_batched_values =
        s.batched_values.load(std::memory_order_relaxed);
    out.values_per_transition = s.ValuesPerTransition();
  }
  out.queries_admitted = queries_admitted_.load(std::memory_order_relaxed);
  out.queries_rejected = queries_rejected_.load(std::memory_order_relaxed);
  out.queries_expired = queries_expired_.load(std::memory_order_relaxed);
  out.lock_waits_expired = engine_.locks().waits_expired();
  if (worker_pool_ != nullptr) {
    out.pool_queue_highwater = worker_pool_->queue_highwater();
    out.pool_expired_dropped = worker_pool_->expired_dropped();
    out.pool_overload_rejected = worker_pool_->overload_rejected();
  }
  out.recovery_ms = recovery_info_.recovery_ms;
  out.wal_records_replayed = recovery_info_.wal_records_replayed;
  out.torn_bytes_dropped = engine_.wal().torn_bytes_dropped() +
                           (ddl_journal_ != nullptr
                                ? ddl_journal_->torn_bytes_dropped()
                                : 0);
  out.checkpoints_taken = checkpoints_taken_.load(std::memory_order_relaxed);
  out.wal_bytes = engine_.wal().wal_bytes();
  out.fsyncs = storage::fsio::FsyncsPerformed();
  out.wal_file_errors = engine_.wal().file_errors();
  storage::BufferPoolStats pool = engine_.pool().stats();
  out.pool_hits = pool.hits;
  out.pool_misses = pool.misses;
  out.pool_evictions = pool.evictions;
  out.pool_writebacks = pool.writebacks;
  out.pool_pinned_highwater = pool.pinned_highwater;
  out.group_commit_batches = engine_.wal().group_commit_batches();
  out.commit_sync_requests = engine_.wal().sync_requests();
  out.commits_per_fsync =
      out.group_commit_batches > 0
          ? static_cast<double>(out.commit_sync_requests) /
                static_cast<double>(out.group_commit_batches)
          : 0.0;
  return out;
}

Database::~Database() { StopCheckpointer(); }

// ---------------------------------------------------------------------------
// Durability (data-dir mode)

Status Database::Open() {
  if (options_.data_dir.empty()) return Status::OK();
  if (opened_) return Status::FailedPrecondition("database already open");
  const auto t0 = std::chrono::steady_clock::now();
  AEDB_RETURN_IF_ERROR(storage::fsio::EnsureDir(options_.data_dir));

  // The page store is a cache spill area, never a recovery source — recovery
  // rebuilds every page from checkpoint + WAL, and object ids are assigned
  // afresh each process. Stale spill files from the previous incarnation
  // would alias the new ids, so wipe them before anything pins a page.
  if (page_store_ != nullptr) {
    AEDB_RETURN_IF_ERROR(page_store_->Wipe());
  }

  // The clean-shutdown marker is consumed, not just read: it must be durably
  // gone before any recovery work so a crash during THIS open cannot
  // masquerade as a clean shutdown next time.
  recovery_info_ = RecoveryInfo{};
  recovery_info_.clean_shutdown =
      storage::fsio::FileExists(CleanShutdownPath());
  if (recovery_info_.clean_shutdown) {
    AEDB_RETURN_IF_ERROR(storage::fsio::RemoveFileDurable(CleanShutdownPath()));
  }

  // 1. Catalog: replay the DDL journal in metadata-only mode. Each entry
  // carries the id counters as they stood before its statement ran; forcing
  // them before every replay reproduces the runtime id assignment exactly —
  // including ids consumed by statements that failed or never committed — so
  // the replayed catalog ids match the WAL's object_ids.
  ddl_journal_ = std::make_unique<DdlJournal>();
  std::vector<DdlJournalEntry> ddl;
  AEDB_ASSIGN_OR_RETURN(ddl, ddl_journal_->Open(DdlJournalPath()));
  recovering_ = true;
  for (const DdlJournalEntry& entry : ddl) {
    catalog_.ForceNextIds(entry.next_table_id, entry.next_index_id,
                          entry.next_cek_id);
    if (!entry.committed) {
      // No commit marker: the statement was never acknowledged. Replay it
      // leniently — losing it is legal, replaying it wrongly is not.
      ReplayUncommittedDdl(entry);
      continue;
    }
    Status st = ExecuteDdlStatement(entry.sql);
    if (!st.ok()) {
      recovering_ = false;
      return Status::Internal("DDL journal replay failed for \"" + entry.sql +
                              "\": " + st.message());
    }
    ++recovery_info_.ddl_statements_replayed;
  }
  recovering_ = false;

  // 2. Log: attach the file-backed WAL (drops any torn tail physically).
  storage::WalLoadResult wal_load;
  AEDB_ASSIGN_OR_RETURN(wal_load, engine_.wal().AttachFile(WalPath()));

  // 3. Checkpoint: install the latest image (if any) as the recovery base.
  if (storage::fsio::FileExists(CheckpointPath())) {
    Bytes raw;
    AEDB_ASSIGN_OR_RETURN(raw, storage::fsio::ReadFileBytes(CheckpointPath()));
    storage::CheckpointImage img;
    AEDB_ASSIGN_OR_RETURN(img, storage::CheckpointImage::Deserialize(raw));
    engine_.SetCheckpointBase(
        std::make_shared<const storage::CheckpointImage>(std::move(img)));
  }

  // 4. Recovery: restore the base, replay the tail, undo losers. Running it
  // even after a clean shutdown keeps one code path; the tail is empty then.
  storage::RecoveryResult rec;
  AEDB_ASSIGN_OR_RETURN(rec, engine_.Recover());
  recovery_info_.ran = true;
  recovery_info_.engine = rec;
  recovery_info_.from_checkpoint_lsn = rec.from_checkpoint_lsn;
  // Only the post-horizon tail is replay work; the reopened file may also
  // hold pre-checkpoint records (crash between checkpoint publish and log
  // truncation) that recovery filters out without replaying.
  recovery_info_.wal_records_replayed = rec.log_tail_records;
  recovery_info_.recovery_ms = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  opened_ = true;

  if (options_.checkpoint_wal_bytes > 0) {
    stop_checkpointer_.store(false, std::memory_order_relaxed);
    checkpointer_ = std::thread([this] { CheckpointerLoop(); });
  }
  return Status::OK();
}

Status Database::Checkpoint(std::chrono::milliseconds quiesce_wait) {
  if (options_.data_dir.empty()) {
    return Status::FailedPrecondition("checkpointing requires a data dir");
  }
  std::lock_guard<std::mutex> lock(checkpoint_mu_);
  std::shared_ptr<const storage::CheckpointImage> img;
  AEDB_ASSIGN_OR_RETURN(img, engine_.CaptureCheckpoint(quiesce_wait));
  // Crash-point: after capture, before anything touches disk.
  AEDB_RETURN_IF_ERROR(AEDB_FAULT_POINT("ckpt/pre_write"));
  AEDB_RETURN_IF_ERROR(
      storage::fsio::WriteFileDurable(CheckpointPath(), img->Serialize()));
  engine_.SetCheckpointBase(img);
  // Crash-point: checkpoint published, WAL not yet truncated. Recovery must
  // filter the pre-horizon records the file still holds.
  AEDB_RETURN_IF_ERROR(AEDB_FAULT_POINT("ckpt/pre_truncate"));
  AEDB_RETURN_IF_ERROR(engine_.wal().TruncateBefore(img->checkpoint_lsn));
  checkpoints_taken_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

void Database::CheckpointerLoop() {
  while (!stop_checkpointer_.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (stop_checkpointer_.load(std::memory_order_relaxed)) break;
    if (engine_.wal().wal_bytes() < options_.checkpoint_wal_bytes) continue;
    // Refusals (traffic never quiesced, deferred txns) are fine: the WAL just
    // stays long until the next pass succeeds.
    (void)Checkpoint(std::chrono::milliseconds(500));
  }
}

void Database::StopCheckpointer() {
  stop_checkpointer_.store(true, std::memory_order_relaxed);
  if (checkpointer_.joinable()) checkpointer_.join();
}

Status Database::Shutdown() {
  if (options_.data_dir.empty() || !opened_) return Status::OK();
  StopCheckpointer();
  // Final checkpoint drains the WAL so the next startup replays nothing. A
  // refusal (in-flight traffic, deferred txns) downgrades to a synced-but-
  // dirty shutdown: no marker, normal recovery next time.
  Status ckpt = Checkpoint(std::chrono::milliseconds(2000));
  Status synced = engine_.wal().Sync();
  AEDB_RETURN_IF_ERROR(synced);
  if (ckpt.ok() && engine_.wal().record_count() == 0) {
    AEDB_RETURN_IF_ERROR(storage::fsio::WriteFileDurable(
        CleanShutdownPath(), Slice(std::string_view("clean"))));
  }
  opened_ = false;
  return ckpt;
}

Result<EncryptionType> Database::ResolveEncryptionSpec(
    const sql::EncryptionSpec& spec) {
  if (!spec.encrypted) return EncryptionType::Plaintext();
  if (spec.algorithm != "AEAD_AES_256_CBC_HMAC_SHA_256") {
    return Status::NotSupported("unknown cell algorithm: " + spec.algorithm);
  }
  uint32_t cek_id;
  AEDB_ASSIGN_OR_RETURN(cek_id, catalog_.CekIdByName(spec.cek_name));
  bool enclave_enabled;
  AEDB_ASSIGN_OR_RETURN(enclave_enabled, catalog_.CekEnclaveEnabled(cek_id));
  return EncryptionType::Encrypted(spec.kind, cek_id, enclave_enabled);
}

Result<std::unique_ptr<storage::Comparator>> Database::MakeComparator(
    const sql::ColumnDef& col) {
  if (!col.enc.is_encrypted()) {
    return std::unique_ptr<storage::Comparator>(new sql::ValueComparator());
  }
  if (col.enc.kind == EncKind::kDeterministic) {
    // Equality index: ciphertext order (paper §3.1.1).
    return std::unique_ptr<storage::Comparator>(new storage::BinaryComparator());
  }
  if (!col.enc.enclave_enabled) {
    return Status::NotSupported(
        "cannot index a randomized column without an enclave-enabled key");
  }
  return std::unique_ptr<storage::Comparator>(
      new EnclaveComparator(enclave_.get(), col.enc.cek_id));
}

Status Database::ExecuteCreateTable(const sql::CreateTableStmt& stmt) {
  sql::TableDef def;
  def.name = stmt.name;
  for (const sql::ColumnSpec& spec : stmt.columns) {
    sql::ColumnDef col;
    col.name = spec.name;
    col.type = spec.type;
    col.nullable = !spec.not_null;
    AEDB_ASSIGN_OR_RETURN(col.enc, ResolveEncryptionSpec(spec.enc));
    def.columns.push_back(std::move(col));
  }
  const sql::TableDef* created;
  AEDB_ASSIGN_OR_RETURN(created, catalog_.CreateTable(std::move(def)));
  return engine_.CreateTable(created->id);
}

Status Database::RegisterIndexStorage(const sql::IndexDef& index,
                                      const sql::ColumnDef& col) {
  std::unique_ptr<storage::Comparator> comparator;
  AEDB_ASSIGN_OR_RETURN(comparator, MakeComparator(col));
  return engine_.CreateIndex(index.id, index.table_id, std::move(comparator),
                             index.unique);
}

Status Database::ExecuteCreateIndex(const sql::CreateIndexStmt& stmt) {
  const sql::TableDef* table;
  AEDB_ASSIGN_OR_RETURN(table, catalog_.GetTable(stmt.table));
  int column = table->FindColumn(stmt.column);
  if (column < 0) return Status::NotFound("no such column: " + stmt.column);
  const sql::ColumnDef& col = table->columns[column];

  sql::IndexDef def;
  def.name = stmt.name;
  def.table_id = table->id;
  def.column = column;
  def.unique = stmt.unique;
  if (!col.enc.is_encrypted()) {
    def.kind = IndexKind::kRange;
  } else if (col.enc.kind == EncKind::kDeterministic) {
    // "Range indexing is not supported on deterministically encrypted
    // columns" (paper §2.4.4).
    def.kind = IndexKind::kEquality;
  } else {
    if (!col.enc.enclave_enabled) {
      return Status::NotSupported(
          "no indexing on randomized columns without enclave-enabled keys");
    }
    def.kind = IndexKind::kRange;
  }

  const sql::IndexDef* created;
  AEDB_ASSIGN_OR_RETURN(created, catalog_.CreateIndex(std::move(def)));
  Status st = RegisterIndexStorage(*created, col);
  if (!st.ok()) {
    (void)catalog_.DropIndex(stmt.name);
    return st;
  }
  // DDL-journal replay registers metadata only: the entries arrive from the
  // checkpoint image and the replayed WAL, not from a fresh build (which
  // would need enclave keys the server does not have at startup).
  if (recovering_) return Status::OK();
  // Populate: the index build sorts the data, routing comparisons through
  // the enclave for encrypted range indexes (operational leak, Figure 5).
  uint64_t txn = engine_.Begin();
  st = executor_->BuildIndex(*table, *created, txn);
  if (!st.ok()) {
    (void)engine_.Abort(txn);
    (void)engine_.DropIndex(created->id);
    (void)catalog_.DropIndex(stmt.name);
    return st;
  }
  return engine_.Commit(txn);
}

Status Database::ExecuteAlterColumn(const sql::AlterColumnStmt& stmt,
                                    const std::string& sql_text,
                                    uint64_t session_id) {
  const sql::TableDef* table;
  AEDB_ASSIGN_OR_RETURN(table, catalog_.GetTable(stmt.table));
  int column = table->FindColumn(stmt.column);
  if (column < 0) return Status::NotFound("no such column: " + stmt.column);
  sql::ColumnDef old_col = table->columns[column];
  if (stmt.type != old_col.type) {
    return Status::NotSupported("ALTER COLUMN cannot change the SQL type");
  }
  EncryptionType new_enc;
  AEDB_ASSIGN_OR_RETURN(new_enc, ResolveEncryptionSpec(stmt.enc));
  if (new_enc == old_col.enc) return Status::OK();

  // The in-place path requires every encrypted side to be enclave-enabled;
  // otherwise the client-side tool must round-trip the data (paper §2.4.2).
  bool old_needs = old_col.enc.is_encrypted();
  bool new_needs = new_enc.is_encrypted();
  if ((old_needs && !old_col.enc.enclave_enabled) ||
      (new_needs && !new_enc.enclave_enabled)) {
    return Status::NotSupported(
        "ALTER COLUMN with enclave-disabled keys requires the client-side "
        "encryption tool (round trip)");
  }
  if (!recovering_ && enclave_ == nullptr) {
    return Status::FailedPrecondition("no enclave configured");
  }

  // The conversion program: decrypt (if encrypted) at GetData, re-encrypt
  // (if target encrypted) at SetData. The enclave demands client
  // authorization for this statement text (§3.2).
  es::EsProgram program;
  program.GetData(0, old_col.type, old_col.enc);
  program.SetData(0, old_col.type, new_enc);
  Bytes program_bytes = program.Serialize();

  // Indexes over this column must be rebuilt under the new ordering.
  std::vector<sql::IndexDef> affected;
  for (const sql::IndexDef* index : catalog_.TableIndexes(table->id)) {
    if (index->column == column) affected.push_back(*index);
  }
  for (const sql::IndexDef& index : affected) {
    AEDB_RETURN_IF_ERROR(engine_.DropIndex(index.id));
    AEDB_RETURN_IF_ERROR(catalog_.DropIndex(index.name));
  }

  sql::ColumnDef new_col = old_col;
  new_col.enc = new_enc;
  AEDB_RETURN_IF_ERROR(catalog_.AlterColumn(stmt.table, column, new_col));

  // Journal replay: metadata + index id churn only. The enclave row rewrite
  // this statement originally performed is redone by the WAL (the rewrites
  // were ordinary logged heap/index mutations); recreating the index defs in
  // the same order reproduces the ids those WAL records reference.
  if (recovering_) {
    for (const sql::IndexDef& index : affected) {
      sql::CreateIndexStmt recreate;
      recreate.name = index.name;
      recreate.table = stmt.table;
      recreate.column = stmt.column;
      recreate.unique = index.unique;
      AEDB_RETURN_IF_ERROR(ExecuteCreateIndex(recreate));
    }
    return Status::OK();
  }

  uint64_t txn = engine_.Begin();
  Status st = engine_.LockTable(txn, table->id);
  if (st.ok()) {
    // Rewrite every row, transforming the one cell through the enclave.
    std::vector<std::pair<storage::Rid, std::vector<Value>>> rows;
    Status inner = Status::OK();
    engine_.table(table->id)->Scan([&](const storage::Rid& rid, Slice record) {
      auto row = sql::DecodeRow(record, table->columns.size());
      if (!row.ok()) {
        inner = row.status();
        return false;
      }
      rows.emplace_back(rid, std::move(row).value());
      return true;
    });
    st = inner;
    for (auto& [rid, row] : rows) {
      if (!st.ok()) break;
      auto transformed =
          enclave_->Eval(program_bytes, {row[column]}, session_id, sql_text);
      if (!transformed.ok()) {
        st = transformed.status();
        break;
      }
      std::vector<Value> new_row = row;
      new_row[column] = (*transformed)[0];
      // Delete + reinsert, maintaining the surviving indexes.
      for (const sql::IndexDef* index : catalog_.TableIndexes(table->id)) {
        Bytes key = sql::Executor::IndexKeyFor(table->columns[index->column],
                                               row[index->column]);
        st = engine_.IndexDelete(txn, index->id, key, rid);
        if (!st.ok()) break;
      }
      if (!st.ok()) break;
      st = engine_.HeapDelete(txn, table->id, rid);
      if (!st.ok()) break;
      auto new_rid = engine_.HeapInsert(txn, table->id, sql::EncodeRow(new_row));
      if (!new_rid.ok()) {
        st = new_rid.status();
        break;
      }
      for (const sql::IndexDef* index : catalog_.TableIndexes(table->id)) {
        Bytes key = sql::Executor::IndexKeyFor(table->columns[index->column],
                                               new_row[index->column]);
        st = engine_.IndexInsert(txn, index->id, key, *new_rid);
        if (!st.ok()) break;
      }
    }
  }
  if (!st.ok()) {
    (void)engine_.Abort(txn);
    // Roll the catalog back too.
    (void)catalog_.AlterColumn(stmt.table, column, old_col);
    for (const sql::IndexDef& index : affected) {
      sql::IndexDef recreate = index;
      auto created = catalog_.CreateIndex(recreate);
      if (created.ok()) {
        (void)RegisterIndexStorage(**created, old_col);
        uint64_t rebuild_txn = engine_.Begin();
        (void)executor_->BuildIndex(*table, **created, rebuild_txn);
        (void)engine_.Commit(rebuild_txn);
      }
    }
    return st;
  }
  AEDB_RETURN_IF_ERROR(engine_.Commit(txn));

  // Old plaintext remnants sit in tombstoned slots: scrub them (the WAL
  // still holds pre-encryption images until log truncation, as in any
  // WAL-based system).
  (void)engine_.ScrubDeadRows(table->id);

  // Recreate the affected indexes under the new encryption configuration.
  for (const sql::IndexDef& index : affected) {
    sql::CreateIndexStmt recreate;
    recreate.name = index.name;
    recreate.table = stmt.table;
    recreate.column = stmt.column;
    recreate.unique = index.unique;
    AEDB_RETURN_IF_ERROR(ExecuteCreateIndex(recreate));
  }
  return Status::OK();
}

Status Database::ExecuteDdl(const std::string& sql_text, uint64_t session_id) {
  std::lock_guard<std::mutex> ddl_lock(ddl_mu_);
  const bool durable =
      !recovering_ && ddl_journal_ != nullptr && ddl_journal_->is_open();
  // Journal BEFORE executing: execution can have WAL-visible side effects (a
  // CREATE INDEX build commits index records; concurrent DML can commit
  // against a fresh CREATE TABLE), and those records reference catalog ids
  // recovery can only reproduce if it has journal evidence of this attempt.
  // The entry snapshots the id counters so replay consumes exactly the ids
  // this execution will, whether or not it succeeds.
  if (durable) {
    DdlJournalEntry entry;
    entry.sql = sql_text;
    entry.next_table_id = catalog_.next_table_id();
    entry.next_index_id = catalog_.next_index_id();
    entry.next_cek_id = catalog_.next_cek_id();
    AEDB_RETURN_IF_ERROR(ddl_journal_->AppendStatement(entry));
  }
  Status executed = ExecuteDdlStatement(sql_text, session_id);
  // The commit marker's fsync is the DDL durability point: only a marked
  // entry must replay on restart. An unmarked entry (crash or failure in
  // this window) was never acknowledged and replays leniently.
  if (executed.ok() && durable) {
    // Crash-point: statement executed (WAL side effects durable-eligible)
    // but not yet marked committed — the lenient-replay window.
    AEDB_RETURN_IF_ERROR(AEDB_FAULT_POINT("ddl/pre_commit_marker"));
    AEDB_RETURN_IF_ERROR(ddl_journal_->AppendCommit());
  }
  return executed;
}

void Database::ReplayUncommittedDdl(const DdlJournalEntry& entry) {
  auto parsed = sql::Parse(entry.sql);
  if (!parsed.ok()) return;  // never executed at runtime either
  switch (parsed->kind) {
    case sql::Statement::Kind::kCreateCmk:
    case sql::Statement::Kind::kCreateCek:
    case sql::Statement::Kind::kCreateTable:
      // Re-create the object. Any committed WAL records against it prove it
      // existed at runtime; if the crash instead hit before execution, a
      // phantom empty object is indistinguishable from the statement
      // committing right before the crash — legal for an unacked DDL.
      (void)ExecuteDdlStatement(entry.sql);
      return;
    case sql::Statement::Kind::kCreateIndex: {
      // The build may have failed or never run, and a metadata-only phantom
      // index would serve wrong (empty) results. Consume the catalog id,
      // then drop the index: recovery skips WAL records of unknown indexes,
      // and the id can never be reused for an unrelated index.
      Status st = ExecuteDdlStatement(entry.sql);
      if (!st.ok()) return;
      const sql::CreateIndexStmt& s = *parsed->create_index;
      auto def = catalog_.GetIndex(s.name);
      if (def.ok()) {
        (void)engine_.DropIndex((*def)->id);
        (void)catalog_.DropIndex(s.name);
      }
      return;
    }
    case sql::Statement::Kind::kAlterColumn: {
      // Too stateful to replay blind (index drop/recreate + row rewrite).
      // Skip it, but if the rewrite transaction committed, indexes on the
      // altered column hold pre-rewrite rids/keys — invalidate them, and
      // burn the index ids a completed runtime recreate would have used.
      const sql::AlterColumnStmt& s = *parsed->alter_column;
      auto table = catalog_.GetTable(s.table);
      if (!table.ok()) return;
      int column = (*table)->FindColumn(s.column);
      if (column < 0) return;
      size_t recreated = 0;
      for (const sql::IndexDef* index : catalog_.TableIndexes((*table)->id)) {
        if (index->column != column) continue;
        (void)engine_.InvalidateIndex(index->id);
        ++recreated;
      }
      catalog_.ForceNextIds(
          catalog_.next_table_id(),
          catalog_.next_index_id() + static_cast<uint32_t>(recreated),
          catalog_.next_cek_id());
      return;
    }
    default:
      return;  // DROP INDEX etc.: losing an unacked drop is legal
  }
}

Status Database::ExecuteDdlStatement(const std::string& sql_text,
                                     uint64_t session_id) {
  sql::Statement stmt;
  AEDB_ASSIGN_OR_RETURN(stmt, sql::Parse(sql_text));
  {
    std::lock_guard<std::mutex> lock(plan_cache_mu_);
    plan_cache_.clear();  // DDL invalidates cached plans
  }
  executor_->ClearProgramCache();
  switch (stmt.kind) {
    case sql::Statement::Kind::kCreateCmk: {
      const sql::CreateCmkStmt& s = *stmt.create_cmk;
      keys::CmkInfo cmk;
      cmk.name = s.name;
      cmk.provider_name = s.provider;
      cmk.key_path = s.key_path;
      cmk.enclave_enabled = s.enclave_computations;
      cmk.signature = s.signature;
      return catalog_.AddCmk(std::move(cmk));
    }
    case sql::Statement::Kind::kCreateCek: {
      const sql::CreateCekStmt& s = *stmt.create_cek;
      keys::CekInfo cek;
      cek.name = s.name;
      keys::CekValue value;
      value.cmk_name = s.cmk;
      value.algorithm = s.algorithm;
      value.encrypted_value = s.encrypted_value;
      value.signature = s.signature;
      cek.values.push_back(std::move(value));
      return catalog_.AddCek(std::move(cek)).status();
    }
    case sql::Statement::Kind::kCreateTable:
      return ExecuteCreateTable(*stmt.create_table);
    case sql::Statement::Kind::kCreateIndex:
      return ExecuteCreateIndex(*stmt.create_index);
    case sql::Statement::Kind::kAlterColumn:
      return ExecuteAlterColumn(*stmt.alter_column, sql_text, session_id);
    case sql::Statement::Kind::kDrop: {
      const sql::DropStmt& s = *stmt.drop;
      if (s.is_index) {
        const sql::IndexDef* index;
        AEDB_ASSIGN_OR_RETURN(index, catalog_.GetIndex(s.name));
        AEDB_RETURN_IF_ERROR(engine_.DropIndex(index->id));
        return catalog_.DropIndex(s.name);
      }
      return Status::NotSupported("DROP TABLE is not implemented");
    }
    default:
      return Status::InvalidArgument("not a DDL statement; use Execute");
  }
}

Result<const sql::BoundStatement*> Database::GetOrBind(const std::string& sql_text) {
  {
    std::lock_guard<std::mutex> lock(plan_cache_mu_);
    auto it = plan_cache_.find(sql_text);
    if (it != plan_cache_.end()) return it->second.get();
  }
  sql::Statement stmt;
  AEDB_ASSIGN_OR_RETURN(stmt, sql::Parse(sql_text));
  switch (stmt.kind) {
    case sql::Statement::Kind::kSelect:
    case sql::Statement::Kind::kInsert:
    case sql::Statement::Kind::kUpdate:
    case sql::Statement::Kind::kDelete:
      break;
    default:
      return Status::InvalidArgument("DDL must go through ExecuteDdl");
  }
  sql::Binder binder(&catalog_);
  sql::BoundStatement bound;
  AEDB_ASSIGN_OR_RETURN(bound, binder.Bind(std::move(stmt)));
  auto owned = std::make_unique<sql::BoundStatement>(std::move(bound));
  std::lock_guard<std::mutex> lock(plan_cache_mu_);
  auto [it, inserted] = plan_cache_.emplace(sql_text, std::move(owned));
  (void)inserted;
  return it->second.get();
}

Result<KeyDescription> Database::GetKeyDescription(uint32_t cek_id) {
  const keys::CekInfo* cek = catalog_.GetCekById(cek_id);
  if (cek == nullptr) return Status::NotFound("unknown CEK id");
  KeyDescription desc;
  desc.cek_id = cek_id;
  desc.cek = *cek;
  if (!cek->values.empty()) {
    const keys::CmkInfo* cmk;
    AEDB_ASSIGN_OR_RETURN(cmk, catalog_.GetCmk(cek->values[0].cmk_name));
    desc.cmk = *cmk;
  }
  return desc;
}

Result<DescribeResult> Database::DescribeParameterEncryption(
    const std::string& sql_text, Slice client_dh_public) {
  ChargeRoundTrip();
  describe_calls_.fetch_add(1, std::memory_order_relaxed);
  const sql::BoundStatement* bound;
  AEDB_ASSIGN_OR_RETURN(bound, GetOrBind(sql_text));

  DescribeResult out;
  std::set<uint32_t> cek_ids;
  for (const sql::BoundParam& p : bound->params) {
    DescribeResult::ParamInfo info;
    info.name = p.name;
    info.type = p.type;
    info.enc = p.enc;
    if (p.enc.is_encrypted()) cek_ids.insert(p.enc.cek_id);
    out.params.push_back(std::move(info));
  }
  out.requires_enclave = bound->requires_enclave;
  out.enclave_cek_ids = bound->enclave_ceks;
  for (uint32_t id : bound->enclave_ceks) cek_ids.insert(id);
  for (uint32_t id : cek_ids) {
    KeyDescription desc;
    AEDB_ASSIGN_OR_RETURN(desc, GetKeyDescription(id));
    out.keys.push_back(std::move(desc));
  }

  if (out.requires_enclave && !client_dh_public.empty() &&
      enclave_ != nullptr && hgs_ != nullptr) {
    // SQL calls the attestation service and relays everything to the client
    // (the untrusted man in the middle, §3).
    AEDB_ASSIGN_OR_RETURN(
        out.health_certificate,
        hgs_->Attest(platform_->tcg_log(), platform_->host_signing_public()));
    AEDB_ASSIGN_OR_RETURN(out.attestation,
                          enclave_->CreateSession(client_dh_public));
    out.attestation_included = true;
  }
  return out;
}

Result<DescribeResult> Database::Attest(Slice client_dh_public) {
  if (enclave_ == nullptr || hgs_ == nullptr) {
    return Status::FailedPrecondition("no enclave/attestation configured");
  }
  DescribeResult out;
  AEDB_ASSIGN_OR_RETURN(
      out.health_certificate,
      hgs_->Attest(platform_->tcg_log(), platform_->host_signing_public()));
  AEDB_ASSIGN_OR_RETURN(out.attestation,
                        enclave_->CreateSession(client_dh_public));
  out.attestation_included = true;
  return out;
}

Result<EncryptionType> Database::ColumnEncryption(const std::string& table,
                                                  const std::string& column) {
  const sql::TableDef* def;
  AEDB_ASSIGN_OR_RETURN(def, catalog_.GetTable(table));
  int idx = def->FindColumn(column);
  if (idx < 0) return Status::NotFound("no such column: " + column);
  return def->columns[idx].enc;
}

Status Database::AlterColumnMetadataForClientTool(
    const std::string& table, const std::string& column,
    const sql::EncryptionSpec& enc) {
  const sql::TableDef* def;
  AEDB_ASSIGN_OR_RETURN(def, catalog_.GetTable(table));
  int idx = def->FindColumn(column);
  if (idx < 0) return Status::NotFound("no such column: " + column);
  for (const sql::IndexDef* index : catalog_.TableIndexes(def->id)) {
    if (index->column == idx) {
      return Status::FailedPrecondition(
          "drop indexes on the column before the client-side tool runs");
    }
  }
  sql::ColumnDef col = def->columns[idx];
  AEDB_ASSIGN_OR_RETURN(col.enc, ResolveEncryptionSpec(enc));
  AEDB_RETURN_IF_ERROR(catalog_.AlterColumn(table, idx, col));
  {
    std::lock_guard<std::mutex> lock(plan_cache_mu_);
    plan_cache_.clear();
  }
  executor_->ClearProgramCache();
  return Status::OK();
}

uint64_t Database::BeginTransaction() { return engine_.Begin(); }

Status Database::CommitTransaction(uint64_t txn) { return engine_.Commit(txn); }

Status Database::RollbackTransaction(uint64_t txn) { return engine_.Abort(txn); }

void Database::CaptureRequest(const std::string& sql_text,
                              const std::vector<Value>& params) {
  if (!options_.capture_tds) return;
  Bytes request;
  PutLengthPrefixed(&request, Slice(std::string_view(sql_text)));
  PutU32(&request, static_cast<uint32_t>(params.size()));
  for (const Value& v : params) v.EncodeTo(&request);
  capture_.last_request = std::move(request);
}

void Database::CaptureResponse(const sql::ResultSet& result) {
  if (!options_.capture_tds) return;
  Bytes response;
  PutU32(&response, static_cast<uint32_t>(result.rows.size()));
  for (const auto& row : result.rows) {
    for (const Value& v : row) v.EncodeTo(&response);
  }
  capture_.last_response = std::move(response);
}

void Database::ChargeRoundTrip() {
  if (options_.simulated_network_us == 0) return;
  std::this_thread::sleep_for(
      std::chrono::microseconds(options_.simulated_network_us));
}

namespace {
/// Releases the admission slot AdmitQuery took, whatever exit path the
/// statement takes.
struct InflightGuard {
  std::atomic<uint64_t>* counter;
  ~InflightGuard() { counter->fetch_sub(1, std::memory_order_acq_rel); }
};
}  // namespace

Status Database::AdmitQuery() {
  // Admission gate: overload is decided *before* parsing, binding, or any
  // enclave work, so a rejected query is as close to free as it gets and the
  // retry-after hint reaches the client fast.
  uint64_t inflight =
      inflight_queries_.fetch_add(1, std::memory_order_acq_rel) + 1;
  bool reject = options_.max_inflight_queries > 0 &&
                inflight > options_.max_inflight_queries;
  fault::FaultSpec spec;
  if (AEDB_FAULT_FIRED("server/admission_reject", &spec)) reject = true;
  if (reject) {
    inflight_queries_.fetch_sub(1, std::memory_order_acq_rel);
    queries_rejected_.fetch_add(1, std::memory_order_relaxed);
    return Status::Overloaded(
        AppendRetryAfterHint("admission gate: too many in-flight queries",
                             options_.overload_retry_after_ms));
  }
  queries_admitted_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Result<sql::ResultSet> Database::Execute(const std::string& sql_text,
                                         const std::vector<Value>& params,
                                         uint64_t txn, uint64_t session_id,
                                         uint32_t deadline_ms) {
  AEDB_RETURN_IF_ERROR(AdmitQuery());
  InflightGuard inflight_guard{&inflight_queries_};
  return ExecuteAdmitted(sql_text, params, txn, session_id, deadline_ms);
}

Result<sql::ResultSet> Database::ExecuteAdmitted(const std::string& sql_text,
                                                 const std::vector<Value>& params,
                                                 uint64_t txn,
                                                 uint64_t session_id,
                                                 uint32_t deadline_ms) {
  (void)session_id;
  // Stamp the query context before charging the (simulated) network round
  // trip: wire latency consumes the client's budget like everything else.
  QueryContext qctx = deadline_ms > 0
                          ? QueryContext::WithDeadlineAfter(
                                std::chrono::milliseconds(deadline_ms))
                          : QueryContext();
  ScopedQueryContext scoped(qctx.has_deadline() ? &qctx
                                                : QueryContext::Current());

  ChargeRoundTrip();
  if (qctx.expired()) {
    queries_expired_.fetch_add(1, std::memory_order_relaxed);
    return Status::DeadlineExceeded("query deadline expired before execution");
  }
  {
    // Forced enclave restart before statement execution: every session and
    // every installed CEK is gone, exactly as after a host-level enclave
    // reload. The statement then fails session lookup / key lookup and the
    // driver's recovery loop must re-attest and re-install keys.
    fault::FaultSpec spec;
    if (enclave_ != nullptr &&
        AEDB_FAULT_FIRED("server/enclave_restart", &spec)) {
      enclave_->ClearKeys();
    }
  }
  const sql::BoundStatement* bound;
  AEDB_ASSIGN_OR_RETURN(bound, GetOrBind(sql_text));
  if (params.size() != bound->params.size()) {
    return Status::InvalidArgument(
        "expected " + std::to_string(bound->params.size()) + " parameters");
  }
  CaptureRequest(sql_text, params);

  bool autocommit = txn == 0;
  uint64_t exec_txn = autocommit ? engine_.Begin() : txn;
  // Snapshot the txn's logged-op count so a failed statement can be tested
  // for partial application (see the kOverloaded conversion below).
  const size_t ops_before = autocommit ? 0 : engine_.TxnOpCount(exec_txn);

  Result<sql::ResultSet> result = [&]() -> Result<sql::ResultSet> {
    switch (bound->stmt.kind) {
      case sql::Statement::Kind::kSelect:
        return executor_->Select(*bound, params, exec_txn);
      case sql::Statement::Kind::kInsert: {
        int64_t n;
        AEDB_ASSIGN_OR_RETURN(n, executor_->Insert(*bound, params, exec_txn));
        sql::ResultSet rs;
        rs.columns = {"rows_affected"};
        rs.rows = {{Value::Int64(n)}};
        return rs;
      }
      case sql::Statement::Kind::kUpdate: {
        int64_t n;
        AEDB_ASSIGN_OR_RETURN(n, executor_->Update(*bound, params, exec_txn));
        sql::ResultSet rs;
        rs.columns = {"rows_affected"};
        rs.rows = {{Value::Int64(n)}};
        return rs;
      }
      case sql::Statement::Kind::kDelete: {
        int64_t n;
        AEDB_ASSIGN_OR_RETURN(n, executor_->Delete(*bound, params, exec_txn));
        sql::ResultSet rs;
        rs.columns = {"rows_affected"};
        rs.rows = {{Value::Int64(n)}};
        return rs;
      }
      default:
        return Status::Internal("unexpected statement kind");
    }
  }();

  if (autocommit) {
    if (result.ok()) {
      Status st = engine_.Commit(exec_txn);
      if (!st.ok()) return st;
    } else {
      (void)engine_.Abort(exec_txn);
    }
  } else if (!result.ok() && result.status().IsOverloaded() &&
             engine_.TxnOpCount(exec_txn) != ops_before) {
    // Mid-statement overload inside an explicit transaction, AFTER the
    // statement already applied some rows (the txn's logged-op count grew):
    // without statement-level savepoints those rows cannot be peeled back
    // individually. kOverloaded must not reach the client here — the retry
    // layer replays kOverloaded on the premise that a shed statement had no
    // effect, and replaying a non-idempotent write (e.g. UPDATE t SET
    // x = x + 1) would double-apply it to the already-updated rows. Abort
    // the whole transaction and surface a typed kTransactionAborted so the
    // application restarts it. A shed with no ops applied (admission gate,
    // predicate morsel rejected by the pool before any write, reads) stays
    // kOverloaded: the txn is intact and the statement is safe to replay.
    (void)engine_.Abort(exec_txn);
    return Status::TransactionAborted(
        "statement shed mid-execution after partial application: " +
        result.status().message());
  }
  if (!result.ok() && result.status().IsDeadlineExceeded()) {
    queries_expired_.fetch_add(1, std::memory_order_relaxed);
  }
  if (result.ok()) CaptureResponse(*result);
  return result;
}

Result<sql::ResultSet> Database::ExecuteNamed(
    const std::string& sql_text,
    const std::vector<std::pair<std::string, Value>>& params, uint64_t txn,
    uint64_t session_id, uint32_t deadline_ms) {
  // Same admission-first contract as the positional path: a shed query must
  // be rejected before any parser/binder work is spent on it.
  AEDB_RETURN_IF_ERROR(AdmitQuery());
  InflightGuard inflight_guard{&inflight_queries_};
  const sql::BoundStatement* bound;
  AEDB_ASSIGN_OR_RETURN(bound, GetOrBind(sql_text));
  auto lower = [](std::string s) {
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return s;
  };
  std::vector<Value> ordered(bound->params.size());
  std::vector<bool> filled(bound->params.size(), false);
  for (const auto& [name, value] : params) {
    bool found = false;
    for (size_t i = 0; i < bound->params.size(); ++i) {
      if (lower(bound->params[i].name) == lower(name)) {
        ordered[i] = value;
        filled[i] = true;
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::InvalidArgument("statement has no parameter @" + name);
    }
  }
  for (size_t i = 0; i < filled.size(); ++i) {
    if (!filled[i]) {
      return Status::InvalidArgument("missing value for parameter @" +
                                     bound->params[i].name);
    }
  }
  return ExecuteAdmitted(sql_text, ordered, txn, session_id, deadline_ms);
}

Status Database::ForwardKeysToEnclave(uint64_t session_id, uint64_t nonce,
                                      Slice sealed) {
  if (enclave_ == nullptr) {
    return Status::FailedPrecondition("no enclave configured");
  }
  AEDB_RETURN_IF_ERROR(enclave_->InstallCeks(session_id, nonce, sealed));
  // "When the client connects and sends keys to the enclave, the deferred
  // transactions are resolved" (§4.5).
  return engine_.ResolveDeferred();
}

Status Database::ForwardEncryptionAuthorization(uint64_t session_id,
                                                uint64_t nonce, Slice sealed) {
  if (enclave_ == nullptr) {
    return Status::FailedPrecondition("no enclave configured");
  }
  return enclave_->AuthorizeEncryption(session_id, nonce, sealed);
}

Result<storage::RecoveryResult> Database::Restart() {
  if (enclave_ != nullptr) enclave_->ClearKeys();
  return engine_.Recover();
}

Status Database::InvalidateIndexByName(const std::string& index_name) {
  const sql::IndexDef* index;
  AEDB_ASSIGN_OR_RETURN(index, catalog_.GetIndex(index_name));
  return engine_.InvalidateIndex(index->id);
}

}  // namespace aedb::server
