#ifndef AEDB_SERVER_DDL_JOURNAL_H_
#define AEDB_SERVER_DDL_JOURNAL_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace aedb::server {

/// \brief Durable journal of executed DDL statements.
///
/// The WAL logs data mutations against catalog ids, but the catalog itself
/// (tables, indexes, CMK/CEK metadata) lives only in memory. This journal
/// makes it durable the simplest way that is replay-exact: append each DDL
/// statement's text after it succeeds, fsync, and re-execute the sequence in
/// metadata-only mode at startup. Catalog ids are assigned sequentially, so
/// replaying the same statement sequence reproduces the same ids — which is
/// what lets the replayed WAL's object_id references resolve.
///
/// On-disk form: the WAL's [len][checksum][body] framing, one statement per
/// frame, so a torn tail from a crash mid-append is detected and dropped with
/// the same discipline as the log itself.
class DdlJournal {
 public:
  DdlJournal() = default;
  ~DdlJournal();

  DdlJournal(const DdlJournal&) = delete;
  DdlJournal& operator=(const DdlJournal&) = delete;

  /// Opens (creating if needed) the journal at `path`, physically truncates
  /// any torn tail, and returns the statements to replay, in append order.
  Result<std::vector<std::string>> Open(const std::string& path);

  /// Appends one statement and fsyncs. The statement is durable when this
  /// returns OK — a crash after that replays it, a crash before does not.
  Status Append(const std::string& sql);

  bool is_open() const { return fd_ >= 0; }
  uint64_t torn_bytes_dropped() const { return torn_dropped_; }

 private:
  int fd_ = -1;
  std::string path_;
  uint64_t torn_dropped_ = 0;
};

}  // namespace aedb::server

#endif  // AEDB_SERVER_DDL_JOURNAL_H_
