#ifndef AEDB_SERVER_DDL_JOURNAL_H_
#define AEDB_SERVER_DDL_JOURNAL_H_

#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"

namespace aedb::server {

/// One replayable journal entry: the statement text, the catalog id counters
/// as they stood just before the statement ran, and whether a commit marker
/// followed (the statement was executed AND acknowledged).
struct DdlJournalEntry {
  std::string sql;
  uint32_t next_table_id = 0;
  uint32_t next_index_id = 0;
  uint32_t next_cek_id = 0;
  bool committed = false;
};

/// \brief Durable journal of DDL statements, write-ahead of execution.
///
/// The WAL logs data mutations against catalog ids, but the catalog itself
/// (tables, indexes, CMK/CEK metadata) lives only in memory. This journal
/// makes it durable with a two-record protocol per statement:
///
///   1. AppendStatement(entry)  — BEFORE execution: statement text plus a
///      snapshot of the catalog id counters. Fsynced. From this point the
///      attempt is visible to recovery, so any WAL records the execution
///      produces (an index build, concurrent DML against a new table) can
///      never reference an object recovery has no journal evidence of.
///   2. AppendCommit()          — after execution succeeds. Fsynced. This is
///      the DDL durability point; only now is the client acknowledged.
///
/// Replay forces the id counters from each entry's snapshot before executing
/// it, so the replayed catalog assigns exactly the runtime ids — even across
/// statements that failed at runtime or crashed mid-window after consuming
/// an id. Committed entries must replay cleanly; an entry with no commit
/// marker was never acknowledged and is replayed leniently (see
/// Database::ReplayUncommittedDdl).
///
/// On-disk form: the WAL's [len][checksum][body] framing, one entry or
/// marker per frame, so a torn tail from a crash mid-append is detected and
/// dropped with the same discipline as the log itself. Frame bodies start
/// with a kind byte (statement vs commit marker); statements are serialized
/// as [kind u8][3 x u32 counters][sql bytes].
class DdlJournal {
 public:
  DdlJournal() = default;
  ~DdlJournal();

  DdlJournal(const DdlJournal&) = delete;
  DdlJournal& operator=(const DdlJournal&) = delete;

  /// Opens (creating if needed) the journal at `path`, physically truncates
  /// any torn tail, and returns the entries to replay, in append order, with
  /// commit markers folded into their preceding statement's `committed`.
  Result<std::vector<DdlJournalEntry>> Open(const std::string& path);

  /// Appends a statement entry (counters snapshot + text) and fsyncs. Call
  /// before executing the statement; `entry.committed` is ignored.
  Status AppendStatement(const DdlJournalEntry& entry);

  /// Appends a commit marker for the immediately preceding statement entry
  /// and fsyncs. The caller serializes DDL, so the binding is unambiguous.
  Status AppendCommit();

  bool is_open() const { return fd_ >= 0; }
  uint64_t torn_bytes_dropped() const { return torn_dropped_; }

 private:
  /// Frames `body` and appends it durably (write + fsync).
  Status AppendFrame(Slice body);

  int fd_ = -1;
  std::string path_;
  uint64_t torn_dropped_ = 0;
};

}  // namespace aedb::server

#endif  // AEDB_SERVER_DDL_JOURNAL_H_
