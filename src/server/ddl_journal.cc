#include "server/ddl_journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "storage/fsio.h"
#include "storage/wal.h"

namespace aedb::server {

DdlJournal::~DdlJournal() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::vector<std::string>> DdlJournal::Open(const std::string& path) {
  if (fd_ >= 0) return Status::FailedPrecondition("DDL journal already open");
  bool existed = storage::fsio::FileExists(path);
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) {
    return Status::Internal("open " + path + ": " + std::strerror(errno));
  }
  path_ = path;
  if (!existed) {
    // The file's existence is directory metadata; make it durable now.
    AEDB_RETURN_IF_ERROR(storage::fsio::SyncDir(storage::fsio::DirName(path)));
  }
  Bytes image;
  AEDB_ASSIGN_OR_RETURN(image, storage::fsio::ReadFileBytes(path));
  storage::FramedBlobs parsed = storage::ParseFramedBlobs(image);
  if (parsed.torn_tail) {
    torn_dropped_ += image.size() - parsed.bytes_consumed;
    if (::ftruncate(fd_, static_cast<off_t>(parsed.bytes_consumed)) != 0) {
      return Status::Internal("ftruncate " + path + ": " +
                              std::strerror(errno));
    }
    if (::fsync(fd_) != 0) {
      return Status::Internal("fsync " + path + ": " + std::strerror(errno));
    }
    storage::fsio::CountFsync();
  }
  std::vector<std::string> statements;
  statements.reserve(parsed.blobs.size());
  for (const Bytes& blob : parsed.blobs) {
    statements.emplace_back(reinterpret_cast<const char*>(blob.data()),
                            blob.size());
  }
  return statements;
}

Status DdlJournal::Append(const std::string& sql) {
  if (fd_ < 0) return Status::FailedPrecondition("DDL journal not open");
  Bytes frame;
  storage::AppendFramedBlob(
      &frame, Slice(reinterpret_cast<const uint8_t*>(sql.data()), sql.size()));
  size_t off = 0;
  while (off < frame.size()) {
    ssize_t n = ::write(fd_, frame.data() + off, frame.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal("write " + path_ + ": " + std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  if (::fsync(fd_) != 0) {
    return Status::Internal("fsync " + path_ + ": " + std::strerror(errno));
  }
  storage::fsio::CountFsync();
  return Status::OK();
}

}  // namespace aedb::server
