#include "server/ddl_journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "storage/fsio.h"
#include "storage/wal.h"

namespace aedb::server {

namespace {

// Frame-body kind byte. SQL text never appears at offset 0, so a frame that
// does not start with one of these is corruption, not a legacy format.
constexpr uint8_t kKindStatement = 1;
constexpr uint8_t kKindCommit = 2;

}  // namespace

DdlJournal::~DdlJournal() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::vector<DdlJournalEntry>> DdlJournal::Open(const std::string& path) {
  if (fd_ >= 0) return Status::FailedPrecondition("DDL journal already open");
  bool existed = storage::fsio::FileExists(path);
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) {
    return Status::Internal("open " + path + ": " + std::strerror(errno));
  }
  path_ = path;
  if (!existed) {
    // The file's existence is directory metadata; make it durable now.
    AEDB_RETURN_IF_ERROR(storage::fsio::SyncDir(storage::fsio::DirName(path)));
  }
  Bytes image;
  AEDB_ASSIGN_OR_RETURN(image, storage::fsio::ReadFileBytes(path));
  storage::FramedBlobs parsed = storage::ParseFramedBlobs(image);
  if (parsed.torn_tail) {
    torn_dropped_ += image.size() - parsed.bytes_consumed;
    if (::ftruncate(fd_, static_cast<off_t>(parsed.bytes_consumed)) != 0) {
      return Status::Internal("ftruncate " + path + ": " +
                              std::strerror(errno));
    }
    if (::fsync(fd_) != 0) {
      return Status::Internal("fsync " + path + ": " + std::strerror(errno));
    }
    storage::fsio::CountFsync();
  }
  std::vector<DdlJournalEntry> entries;
  entries.reserve(parsed.blobs.size());
  for (const Bytes& blob : parsed.blobs) {
    if (blob.empty()) return Status::Corruption("empty DDL journal frame");
    switch (blob[0]) {
      case kKindStatement: {
        DdlJournalEntry entry;
        size_t off = 1;
        AEDB_ASSIGN_OR_RETURN(entry.next_table_id, GetU32(blob, &off));
        AEDB_ASSIGN_OR_RETURN(entry.next_index_id, GetU32(blob, &off));
        AEDB_ASSIGN_OR_RETURN(entry.next_cek_id, GetU32(blob, &off));
        entry.sql.assign(reinterpret_cast<const char*>(blob.data()) + off,
                         blob.size() - off);
        entries.push_back(std::move(entry));
        break;
      }
      case kKindCommit:
        // DDL is serialized, so a marker always binds to the statement
        // appended immediately before it.
        if (entries.empty() || entries.back().committed) {
          return Status::Corruption("DDL commit marker without statement");
        }
        entries.back().committed = true;
        break;
      default:
        return Status::Corruption("unknown DDL journal frame kind");
    }
  }
  return entries;
}

Status DdlJournal::AppendFrame(Slice body) {
  if (fd_ < 0) return Status::FailedPrecondition("DDL journal not open");
  Bytes frame;
  storage::AppendFramedBlob(&frame, body);
  size_t off = 0;
  while (off < frame.size()) {
    ssize_t n = ::write(fd_, frame.data() + off, frame.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal("write " + path_ + ": " + std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  if (::fsync(fd_) != 0) {
    return Status::Internal("fsync " + path_ + ": " + std::strerror(errno));
  }
  storage::fsio::CountFsync();
  return Status::OK();
}

Status DdlJournal::AppendStatement(const DdlJournalEntry& entry) {
  Bytes body;
  body.push_back(kKindStatement);
  PutU32(&body, entry.next_table_id);
  PutU32(&body, entry.next_index_id);
  PutU32(&body, entry.next_cek_id);
  body.insert(body.end(), entry.sql.begin(), entry.sql.end());
  return AppendFrame(body);
}

Status DdlJournal::AppendCommit() {
  Bytes body;
  body.push_back(kKindCommit);
  return AppendFrame(body);
}

}  // namespace aedb::server
