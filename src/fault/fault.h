#ifndef AEDB_FAULT_FAULT_H_
#define AEDB_FAULT_FAULT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "common/random.h"
#include "common/status.h"

namespace aedb::fault {

/// \brief Deterministic, process-wide fault injection.
///
/// Production code marks *fault points* — named places where a failure can be
/// injected — with AEDB_FAULT_POINT / AEDB_FAULT_FIRED below. Tests arm a
/// point with a FaultSpec (trigger policy + the Status the site should
/// surface) and the site misbehaves on exactly the scheduled hits, which is
/// how the recovery paths (WAL crash points, driver retry, enclave
/// re-attestation) are exercised deterministically instead of by luck.
///
/// Cost when nothing is armed anywhere: ONE relaxed atomic load per fault
/// point (see AnyArmed); no lock, no map lookup, no allocation. The
/// bench_net fault-point microbench guards this (<1% of a plain SELECT).
struct FaultSpec {
  enum class Trigger : uint8_t {
    kAlways,       // fire on every hit
    kOneShot,      // fire on the first eligible hit, then never again
    kEveryNth,     // fire on hits n, 2n, 3n, ... (1-based, after `skip`)
    kProbability,  // fire with probability `probability` (seeded PRNG)
  };

  Trigger trigger = Trigger::kOneShot;
  /// Hits to let pass before the trigger policy engages (all policies).
  uint64_t skip = 0;
  /// Period for kEveryNth (1 = every hit).
  uint64_t n = 1;
  /// Fire probability for kProbability, in [0, 1].
  double probability = 0.0;
  /// PRNG seed for kProbability: same seed => same fire schedule.
  uint64_t seed = 1;
  /// What the fault point returns when the fault fires. Sites with custom
  /// behaviour (torn write, delayed response) may ignore the code and only
  /// use the firing decision plus `arg`.
  Status status = Status::Internal("injected fault");
  /// Site-specific knob: torn-write byte count, response delay in ms, ...
  uint64_t arg = 0;
  /// Process-fatal mode: when the fault fires, the process dies on the spot
  /// with std::_Exit(137) — no destructors, no atexit, no flushing; the
  /// closest in-process stand-in for kill -9. The crash-torture harness arms
  /// this (via aedb_serverd --die-at) to kill the server at exact WAL /
  /// checkpoint / recovery points.
  bool die = false;

  static FaultSpec OneShot(Status st) {
    FaultSpec s;
    s.trigger = Trigger::kOneShot;
    s.status = std::move(st);
    return s;
  }
  static FaultSpec Always(Status st) {
    FaultSpec s;
    s.trigger = Trigger::kAlways;
    s.status = std::move(st);
    return s;
  }
  static FaultSpec EveryNth(uint64_t n, Status st) {
    FaultSpec s;
    s.trigger = Trigger::kEveryNth;
    s.n = n;
    s.status = std::move(st);
    return s;
  }
  static FaultSpec WithProbability(double p, uint64_t seed, Status st) {
    FaultSpec s;
    s.trigger = Trigger::kProbability;
    s.probability = p;
    s.seed = seed;
    s.status = std::move(st);
    return s;
  }
};

/// Observability for one fault point: how often the site was reached while
/// the registry was hot, and how often the fault actually fired. Counters
/// survive Disarm so tests can assert "fired exactly once" after the fact.
struct FaultCounters {
  uint64_t hits = 0;
  uint64_t fires = 0;
};

class FaultRegistry {
 public:
  /// The process-wide registry used by AEDB_FAULT_POINT.
  static FaultRegistry& Global();

  /// True iff at least one fault is armed in the global registry. A single
  /// relaxed atomic load — this is the whole per-fault-point cost in a
  /// fault-free process.
  static bool AnyArmed() {
    return armed_count_.load(std::memory_order_relaxed) != 0;
  }

  /// Arms (or re-arms, resetting trigger progress but not counters) a named
  /// fault point.
  void Arm(const std::string& name, FaultSpec spec);

  /// Disarms one point. Counters are retained.
  void Disarm(const std::string& name);

  /// Disarms everything (test teardown safety net). Counters are retained;
  /// Reset() also drops those.
  void DisarmAll();

  /// Drops all state: armed points AND counters.
  void Reset();

  /// Evaluates a fault point: records a hit and returns the spec's status
  /// when the trigger fires, OK otherwise. Unarmed names return OK without
  /// recording anything.
  Status Hit(std::string_view name);

  /// Firing decision + spec access for sites with custom behaviour (torn
  /// writes, delays). Returns true when the fault fires; `*spec` then holds
  /// a copy of the armed spec.
  bool FiredWithSpec(std::string_view name, FaultSpec* spec);

  /// Counters for one point (zeros if the name was never armed).
  FaultCounters Counters(const std::string& name) const;
  uint64_t hits(const std::string& name) const { return Counters(name).hits; }
  uint64_t fires(const std::string& name) const { return Counters(name).fires; }

 private:
  struct Point {
    FaultSpec spec;
    bool armed = false;
    uint64_t hits_since_arm = 0;
    uint64_t fired_since_arm = 0;
    FaultCounters counters;
    std::unique_ptr<Xoshiro256> prng;  // kProbability schedule
  };

  /// Decides whether an armed point fires on this hit. Caller holds mu_.
  bool Decide(Point* point);

  static std::atomic<uint64_t> armed_count_;

  mutable std::mutex mu_;
  // transparent comparator: Hit takes string_view without allocating
  std::map<std::string, Point, std::less<>> points_;
};

/// RAII arming: arms in the constructor, disarms in the destructor. The
/// standard way for a test to scope a fault to one block.
class ScopedFault {
 public:
  ScopedFault(std::string name, FaultSpec spec) : name_(std::move(name)) {
    FaultRegistry::Global().Arm(name_, std::move(spec));
  }
  ~ScopedFault() { FaultRegistry::Global().Disarm(name_); }

  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

 private:
  std::string name_;
};

}  // namespace aedb::fault

/// Evaluates a fault point, yielding the injected Status when it fires and
/// OK otherwise. Typical use: AEDB_RETURN_IF_ERROR(AEDB_FAULT_POINT("x/y"));
#define AEDB_FAULT_POINT(name)                            \
  (::aedb::fault::FaultRegistry::AnyArmed()               \
       ? ::aedb::fault::FaultRegistry::Global().Hit(name) \
       : ::aedb::Status::OK())

/// Firing decision for sites with custom behaviour; `spec_ptr` receives the
/// armed FaultSpec when this evaluates to true.
#define AEDB_FAULT_FIRED(name, spec_ptr)  \
  (::aedb::fault::FaultRegistry::AnyArmed() && \
   ::aedb::fault::FaultRegistry::Global().FiredWithSpec(name, spec_ptr))

#endif  // AEDB_FAULT_FAULT_H_
