#include "fault/fault.h"

#include <cstdlib>

namespace aedb::fault {

std::atomic<uint64_t> FaultRegistry::armed_count_{0};

FaultRegistry& FaultRegistry::Global() {
  static FaultRegistry* registry = new FaultRegistry();
  return *registry;
}

void FaultRegistry::Arm(const std::string& name, FaultSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  Point& point = points_[name];
  if (!point.armed) armed_count_.fetch_add(1, std::memory_order_relaxed);
  point.armed = true;
  point.hits_since_arm = 0;
  point.fired_since_arm = 0;
  point.prng = spec.trigger == FaultSpec::Trigger::kProbability
                   ? std::make_unique<Xoshiro256>(spec.seed)
                   : nullptr;
  point.spec = std::move(spec);
}

void FaultRegistry::Disarm(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(name);
  if (it == points_.end() || !it->second.armed) return;
  it->second.armed = false;
  it->second.prng.reset();
  armed_count_.fetch_sub(1, std::memory_order_relaxed);
}

void FaultRegistry::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, point] : points_) {
    if (point.armed) {
      point.armed = false;
      point.prng.reset();
      armed_count_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
}

void FaultRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, point] : points_) {
    if (point.armed) armed_count_.fetch_sub(1, std::memory_order_relaxed);
  }
  points_.clear();
}

bool FaultRegistry::Decide(Point* point) {
  const FaultSpec& spec = point->spec;
  ++point->counters.hits;
  uint64_t hit = ++point->hits_since_arm;  // 1-based since Arm
  if (hit <= spec.skip) return false;
  uint64_t eligible = hit - spec.skip;  // 1-based within the policy window
  bool fire = false;
  switch (spec.trigger) {
    case FaultSpec::Trigger::kAlways:
      fire = true;
      break;
    case FaultSpec::Trigger::kOneShot:
      fire = point->fired_since_arm == 0;
      break;
    case FaultSpec::Trigger::kEveryNth:
      fire = spec.n > 0 && eligible % spec.n == 0;
      break;
    case FaultSpec::Trigger::kProbability:
      fire = point->prng != nullptr &&
             point->prng->NextDouble() < spec.probability;
      break;
  }
  if (fire) {
    ++point->fired_since_arm;
    ++point->counters.fires;
    // Die-on-fire: simulate kill -9 at this exact point. _Exit skips all
    // cleanup, so nothing gets flushed or fsynced on the way down.
    if (spec.die) std::_Exit(137);
  }
  return fire;
}

Status FaultRegistry::Hit(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(name);
  if (it == points_.end() || !it->second.armed) return Status::OK();
  return Decide(&it->second) ? it->second.spec.status : Status::OK();
}

bool FaultRegistry::FiredWithSpec(std::string_view name, FaultSpec* spec) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(name);
  if (it == points_.end() || !it->second.armed) return false;
  if (!Decide(&it->second)) return false;
  *spec = it->second.spec;
  return true;
}

FaultCounters FaultRegistry::Counters(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(name);
  return it == points_.end() ? FaultCounters{} : it->second.counters;
}

}  // namespace aedb::fault
