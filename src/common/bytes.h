#ifndef AEDB_COMMON_BYTES_H_
#define AEDB_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace aedb {

/// Owning byte buffer used throughout the codebase for ciphertext, serialized
/// rows, wire messages, and key material.
using Bytes = std::vector<uint8_t>;

/// Non-owning view over a byte range (RocksDB-style Slice).
class Slice {
 public:
  Slice() : data_(nullptr), size_(0) {}
  Slice(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  Slice(const Bytes& b) : data_(b.data()), size_(b.size()) {}  // NOLINT
  explicit Slice(std::string_view s)
      : data_(reinterpret_cast<const uint8_t*>(s.data())), size_(s.size()) {}

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  uint8_t operator[](size_t i) const { return data_[i]; }

  /// Sub-range view; caller must ensure offset/len are in bounds.
  Slice subslice(size_t offset, size_t len) const {
    return Slice(data_ + offset, len);
  }

  Bytes ToBytes() const { return Bytes(data_, data_ + size_); }
  std::string ToString() const {
    return std::string(reinterpret_cast<const char*>(data_), size_);
  }

  /// Lexicographic byte-wise comparison (memcmp order). This is the order an
  /// equality index over DET ciphertext uses.
  int compare(const Slice& other) const {
    size_t n = size_ < other.size_ ? size_ : other.size_;
    int r = n == 0 ? 0 : std::memcmp(data_, other.data_, n);
    if (r != 0) return r;
    if (size_ < other.size_) return -1;
    if (size_ > other.size_) return 1;
    return 0;
  }

 private:
  const uint8_t* data_;
  size_t size_;
};

inline bool operator==(const Slice& a, const Slice& b) { return a.compare(b) == 0; }
inline bool operator!=(const Slice& a, const Slice& b) { return !(a == b); }

/// Lowercase hex encoding of a byte range.
std::string HexEncode(Slice data);

/// Decodes lowercase/uppercase hex, optionally prefixed with "0x".
Result<Bytes> HexDecode(std::string_view hex);

/// Timing-safe equality (always scans both inputs fully). Used for MAC and
/// signature comparisons so the untrusted host cannot mount timing attacks on
/// verification routines running inside trusted components.
bool ConstantTimeEquals(Slice a, Slice b);

/// Appends `v` to `out` in little-endian byte order.
void PutU16(Bytes* out, uint16_t v);
void PutU32(Bytes* out, uint32_t v);
void PutU64(Bytes* out, uint64_t v);
/// Appends a u32 length prefix followed by the payload bytes.
void PutLengthPrefixed(Bytes* out, Slice payload);

/// Cursor-based decoding over a byte buffer; each Get* advances `*offset` and
/// fails with Corruption when the buffer is exhausted.
Result<uint16_t> GetU16(Slice in, size_t* offset);
Result<uint32_t> GetU32(Slice in, size_t* offset);
Result<uint64_t> GetU64(Slice in, size_t* offset);
Result<Bytes> GetLengthPrefixed(Slice in, size_t* offset);

/// Converts a UTF-8 string to the byte sequence used for key-derivation
/// labels (UTF-16LE, matching the product's derivation strings).
Bytes Utf16LeBytes(std::string_view s);

}  // namespace aedb

#endif  // AEDB_COMMON_BYTES_H_
