#ifndef AEDB_COMMON_STATUS_H_
#define AEDB_COMMON_STATUS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

namespace aedb {

/// Error categories used across the engine. The granularity mirrors the
/// failure domains of the paper: security failures (attestation, signature,
/// authorization) are distinguished from ordinary engine errors so that
/// callers can fail closed on them.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kCorruption,
  kNotSupported,
  kFailedPrecondition,
  kOutOfRange,
  kInternal,
  // Security-domain errors.
  kSecurityError,       // signature / MAC / attestation verification failure
  kPermissionDenied,    // client did not authorize the operation
  kKeyNotInEnclave,     // enclave asked to use a CEK that was never installed
  kReplayDetected,      // nonce replay on the driver->enclave channel
  kTypeCheckError,      // encryption type inference found a violation
  // Availability-domain errors (the driver's retry classifier keys on these).
  kUnavailable,         // server/connection gone; safe to retry elsewhere
  kSessionNotFound,     // enclave session evicted (restart); re-attest
  kTransactionAborted,  // in-flight txn lost to a fault; restart the txn
  kDeadlineExceeded,    // query deadline expired (or cancelled); never replay
  kOverloaded,          // shed before execution; safe to retry after backoff
};

/// \brief RocksDB-style status object: cheap to return, carries a code and a
/// human-readable message. Ok status carries no allocation.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status SecurityError(std::string msg) {
    return Status(StatusCode::kSecurityError, std::move(msg));
  }
  static Status PermissionDenied(std::string msg) {
    return Status(StatusCode::kPermissionDenied, std::move(msg));
  }
  static Status KeyNotInEnclave(std::string msg) {
    return Status(StatusCode::kKeyNotInEnclave, std::move(msg));
  }
  static Status ReplayDetected(std::string msg) {
    return Status(StatusCode::kReplayDetected, std::move(msg));
  }
  static Status TypeCheckError(std::string msg) {
    return Status(StatusCode::kTypeCheckError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status SessionNotFound(std::string msg) {
    return Status(StatusCode::kSessionNotFound, std::move(msg));
  }
  static Status TransactionAborted(std::string msg) {
    return Status(StatusCode::kTransactionAborted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }
  /// Generic factory for callers that re-wrap an existing status under the
  /// same code with an augmented message (e.g. the shard router annotating
  /// which shard an error came from so the driver can re-attest just it).
  static Status FromCode(StatusCode code, std::string msg) {
    return Status(code, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsSecurityError() const { return code_ == StatusCode::kSecurityError; }
  bool IsKeyNotInEnclave() const { return code_ == StatusCode::kKeyNotInEnclave; }
  bool IsReplayDetected() const { return code_ == StatusCode::kReplayDetected; }
  bool IsTypeCheckError() const { return code_ == StatusCode::kTypeCheckError; }
  bool IsPermissionDenied() const { return code_ == StatusCode::kPermissionDenied; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsSessionNotFound() const { return code_ == StatusCode::kSessionNotFound; }
  bool IsTransactionAborted() const { return code_ == StatusCode::kTransactionAborted; }
  bool IsDeadlineExceeded() const { return code_ == StatusCode::kDeadlineExceeded; }
  bool IsOverloaded() const { return code_ == StatusCode::kOverloaded; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  StatusCode code_;
  std::string msg_;
};

/// Human-readable name of a status code, e.g. "SecurityError".
std::string_view StatusCodeName(StatusCode code);

}  // namespace aedb

/// Propagate a non-OK status to the caller. Usable in any function returning
/// Status (or Result<T>, which converts from Status).
#define AEDB_RETURN_IF_ERROR(expr)                \
  do {                                            \
    ::aedb::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                    \
  } while (0)

/// Evaluate a Result<T> expression; on error propagate, otherwise move the
/// value into `lhs` (which must already be declared).
#define AEDB_ASSIGN_OR_RETURN(lhs, expr)          \
  do {                                            \
    auto _res = (expr);                           \
    if (!_res.ok()) return _res.status();         \
    lhs = std::move(_res).value();                \
  } while (0)

#endif  // AEDB_COMMON_STATUS_H_
