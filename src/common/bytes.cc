#include "common/bytes.h"

namespace aedb {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int HexNibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string HexEncode(Slice data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (size_t i = 0; i < data.size(); ++i) {
    out.push_back(kHexDigits[data[i] >> 4]);
    out.push_back(kHexDigits[data[i] & 0xf]);
  }
  return out;
}

Result<Bytes> HexDecode(std::string_view hex) {
  if (hex.size() >= 2 && hex[0] == '0' && (hex[1] == 'x' || hex[1] == 'X')) {
    hex.remove_prefix(2);
  }
  if (hex.size() % 2 != 0) {
    return Status::InvalidArgument("hex string has odd length");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = HexNibble(hex[i]);
    int lo = HexNibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return Status::InvalidArgument("invalid hex digit");
    }
    out.push_back(static_cast<uint8_t>((hi << 4) | lo));
  }
  return out;
}

bool ConstantTimeEquals(Slice a, Slice b) {
  // Fold the length difference into the accumulator rather than branching.
  uint8_t acc = static_cast<uint8_t>(a.size() == b.size() ? 0 : 1);
  size_t n = a.size() < b.size() ? a.size() : b.size();
  for (size_t i = 0; i < n; ++i) acc |= static_cast<uint8_t>(a[i] ^ b[i]);
  return acc == 0;
}

void PutU16(Bytes* out, uint16_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
}

void PutU32(Bytes* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutU64(Bytes* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutLengthPrefixed(Bytes* out, Slice payload) {
  PutU32(out, static_cast<uint32_t>(payload.size()));
  out->insert(out->end(), payload.data(), payload.data() + payload.size());
}

Result<uint16_t> GetU16(Slice in, size_t* offset) {
  if (*offset + 2 > in.size()) return Status::Corruption("GetU16 past end");
  uint16_t v = static_cast<uint16_t>(in[*offset] | (in[*offset + 1] << 8));
  *offset += 2;
  return v;
}

Result<uint32_t> GetU32(Slice in, size_t* offset) {
  if (*offset + 4 > in.size()) return Status::Corruption("GetU32 past end");
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(in[*offset + i]) << (8 * i);
  *offset += 4;
  return v;
}

Result<uint64_t> GetU64(Slice in, size_t* offset) {
  if (*offset + 8 > in.size()) return Status::Corruption("GetU64 past end");
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(in[*offset + i]) << (8 * i);
  *offset += 8;
  return v;
}

Result<Bytes> GetLengthPrefixed(Slice in, size_t* offset) {
  uint32_t len;
  AEDB_ASSIGN_OR_RETURN(len, GetU32(in, offset));
  if (*offset + len > in.size()) {
    return Status::Corruption("length-prefixed payload past end");
  }
  Bytes out(in.data() + *offset, in.data() + *offset + len);
  *offset += len;
  return out;
}

Bytes Utf16LeBytes(std::string_view s) {
  // Key-derivation labels are ASCII; each char maps to a 2-byte LE code unit.
  Bytes out;
  out.reserve(s.size() * 2);
  for (char c : s) {
    out.push_back(static_cast<uint8_t>(c));
    out.push_back(0);
  }
  return out;
}

}  // namespace aedb
