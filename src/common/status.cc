#include "common/status.h"

namespace aedb {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kCorruption: return "Corruption";
    case StatusCode::kNotSupported: return "NotSupported";
    case StatusCode::kFailedPrecondition: return "FailedPrecondition";
    case StatusCode::kOutOfRange: return "OutOfRange";
    case StatusCode::kInternal: return "Internal";
    case StatusCode::kSecurityError: return "SecurityError";
    case StatusCode::kPermissionDenied: return "PermissionDenied";
    case StatusCode::kKeyNotInEnclave: return "KeyNotInEnclave";
    case StatusCode::kReplayDetected: return "ReplayDetected";
    case StatusCode::kTypeCheckError: return "TypeCheckError";
    case StatusCode::kUnavailable: return "Unavailable";
    case StatusCode::kSessionNotFound: return "SessionNotFound";
    case StatusCode::kTransactionAborted: return "TransactionAborted";
    case StatusCode::kDeadlineExceeded: return "DeadlineExceeded";
    case StatusCode::kOverloaded: return "Overloaded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += msg_;
  return out;
}

}  // namespace aedb
