#ifndef AEDB_COMMON_RESULT_H_
#define AEDB_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace aedb {

/// \brief Value-or-Status, in the style of arrow::Result / absl::StatusOr.
///
/// A Result<T> is either an OK status plus a T, or a non-OK status. It
/// converts implicitly from both T and Status so functions can `return value;`
/// or `return Status::NotFound(...)`.
template <typename T>
class Result {
 public:
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}  // NOLINT
  Result(Status status) : status_(std::move(status)) {                 // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when this holds an error.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace aedb

#endif  // AEDB_COMMON_RESULT_H_
