#ifndef AEDB_COMMON_RANDOM_H_
#define AEDB_COMMON_RANDOM_H_

#include <cstdint>

namespace aedb {

/// Fast, non-cryptographic PRNG (xoshiro256**). Used for workload generation
/// (TPC-C) and tests. NOT used for key material — see crypto/drbg.h.
class Xoshiro256 {
 public:
  explicit Xoshiro256(uint64_t seed);

  uint64_t Next();

  /// Uniform in [lo, hi], inclusive (TPC-C's random(x, y) convention).
  int64_t Uniform(int64_t lo, int64_t hi);

  /// TPC-C NURand(A, x, y) with run-time constant C.
  int64_t NURand(int64_t a, int64_t x, int64_t y, int64_t c);

  /// Uniform double in [0, 1).
  double NextDouble();

 private:
  uint64_t s_[4];
};

}  // namespace aedb

#endif  // AEDB_COMMON_RANDOM_H_
