#ifndef AEDB_COMMON_QUERY_CONTEXT_H_
#define AEDB_COMMON_QUERY_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace aedb {

/// \brief Per-query execution context: absolute deadline + cancellation flag.
///
/// A QueryContext is stamped by server::Database at admission time and made
/// visible to the whole request path (executor morsel boundaries, lock-manager
/// waits, enclave worker-pool submissions) through a thread-local pointer —
/// see ScopedQueryContext. The thread-local indirection means deep layers
/// (e.g. the EnclaveInvoker implementations, btree comparators) observe the
/// deadline without every interface growing a context parameter.
///
/// Deadlines are absolute `steady_clock` points so the remaining budget
/// shrinks monotonically no matter how many layers re-derive it. A
/// default-constructed context has no deadline (`time_point::max()`).
///
/// Checking is cooperative and cheap: `Check()` is one clock read plus one
/// relaxed atomic load. Layers that sleep (lock waits, pool queues) must
/// instead bound their waits by `deadline()` so an expired query never
/// sleeps out a longer layer-local timeout.
class QueryContext {
 public:
  using Clock = std::chrono::steady_clock;

  QueryContext() = default;

  /// Context whose deadline is `budget` from now. budget <= 0 means already
  /// expired (deadline = now), NOT "no deadline".
  static QueryContext WithDeadlineAfter(std::chrono::milliseconds budget) {
    QueryContext ctx;
    ctx.deadline_ = Clock::now() + budget;
    return ctx;
  }

  QueryContext(QueryContext&& other) noexcept
      : deadline_(other.deadline_),
        cancelled_(other.cancelled_.load(std::memory_order_relaxed)) {}
  QueryContext& operator=(QueryContext&& other) noexcept {
    deadline_ = other.deadline_;
    cancelled_.store(other.cancelled_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    return *this;
  }

  bool has_deadline() const { return deadline_ != Clock::time_point::max(); }
  Clock::time_point deadline() const { return deadline_; }

  bool expired() const { return has_deadline() && Clock::now() >= deadline_; }

  /// Remaining budget, clamped to >= 0. milliseconds::max() when no deadline.
  std::chrono::milliseconds remaining() const {
    if (!has_deadline()) return std::chrono::milliseconds::max();
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline_ - Clock::now());
    return left.count() < 0 ? std::chrono::milliseconds(0) : left;
  }

  /// Cooperative cancellation. A cancelled query surfaces kDeadlineExceeded
  /// (same taxonomy slot: the client has given up; the result must not be
  /// replayed) at its next cooperative check.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const { return cancelled_.load(std::memory_order_relaxed); }

  /// OK while the query may keep running; kDeadlineExceeded once the deadline
  /// passed or the query was cancelled.
  Status Check() const {
    if (cancelled()) return Status::DeadlineExceeded("query cancelled");
    if (expired()) return Status::DeadlineExceeded("query deadline exceeded");
    return Status::OK();
  }

  /// The context installed on this thread by ScopedQueryContext, or nullptr.
  static const QueryContext* Current();

 private:
  friend class ScopedQueryContext;

  Clock::time_point deadline_ = Clock::time_point::max();
  std::atomic<bool> cancelled_{false};
};

/// RAII installer for the thread-local current query context. Nests: the
/// previous context is restored on destruction.
class ScopedQueryContext {
 public:
  explicit ScopedQueryContext(const QueryContext* ctx);
  ~ScopedQueryContext();

  ScopedQueryContext(const ScopedQueryContext&) = delete;
  ScopedQueryContext& operator=(const ScopedQueryContext&) = delete;

 private:
  const QueryContext* prev_;
};

/// Appends the machine-readable retry-after hint used by overload rejections
/// ("...; retry-after-ms=N"). The driver parses it back out to pace retries.
std::string AppendRetryAfterHint(std::string msg, uint32_t retry_after_ms);

/// Extracts the retry-after hint from a status message; 0 if absent/garbled.
uint32_t RetryAfterMsFromMessage(std::string_view msg);

}  // namespace aedb

#endif  // AEDB_COMMON_QUERY_CONTEXT_H_
