#include "common/random.h"

namespace aedb {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

Xoshiro256::Xoshiro256(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Xoshiro256::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

int64_t Xoshiro256::Uniform(int64_t lo, int64_t hi) {
  uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(Next() % range);
}

int64_t Xoshiro256::NURand(int64_t a, int64_t x, int64_t y, int64_t c) {
  return (((Uniform(0, a) | Uniform(x, y)) + c) % (y - x + 1)) + x;
}

double Xoshiro256::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

}  // namespace aedb
