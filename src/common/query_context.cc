#include "common/query_context.h"

#include <cstdlib>

namespace aedb {

namespace {
thread_local const QueryContext* g_current_query_context = nullptr;
constexpr std::string_view kRetryAfterKey = "retry-after-ms=";
}  // namespace

const QueryContext* QueryContext::Current() { return g_current_query_context; }

ScopedQueryContext::ScopedQueryContext(const QueryContext* ctx)
    : prev_(g_current_query_context) {
  g_current_query_context = ctx;
}

ScopedQueryContext::~ScopedQueryContext() { g_current_query_context = prev_; }

std::string AppendRetryAfterHint(std::string msg, uint32_t retry_after_ms) {
  msg += "; ";
  msg += kRetryAfterKey;
  msg += std::to_string(retry_after_ms);
  return msg;
}

uint32_t RetryAfterMsFromMessage(std::string_view msg) {
  size_t pos = msg.rfind(kRetryAfterKey);
  if (pos == std::string_view::npos) return 0;
  pos += kRetryAfterKey.size();
  uint64_t value = 0;
  bool any = false;
  while (pos < msg.size() && msg[pos] >= '0' && msg[pos] <= '9') {
    value = value * 10 + static_cast<uint64_t>(msg[pos] - '0');
    if (value > 0xFFFFFFFFull) return 0;  // garbled; ignore the hint
    ++pos;
    any = true;
  }
  return any ? static_cast<uint32_t>(value) : 0;
}

}  // namespace aedb
