#ifndef AEDB_TYPES_ENCRYPTION_TYPE_H_
#define AEDB_TYPES_ENCRYPTION_TYPE_H_

#include <cstdint>
#include <string>

#include "crypto/cell_codec.h"

namespace aedb::types {

/// Generalized encryption type — the lattice of paper Figure 6. Operations
/// strictly decrease going Plaintext → Deterministic → Randomized, and the
/// lattice order `Plaintext ≤ Deterministic ≤ Randomized` is what the
/// union-find constraint solver in the binder works over.
enum class EncKind : uint8_t {
  kPlaintext = 0,
  kDeterministic = 1,
  kRandomized = 2,
};

const char* EncKindName(EncKind k);

/// Lattice order test: a ≤ b.
inline bool EncKindLeq(EncKind a, EncKind b) {
  return static_cast<uint8_t>(a) <= static_cast<uint8_t>(b);
}

/// Concrete encryption type of a column / parameter / expression operand:
/// the generalized kind plus the specific CEK and whether that CEK is
/// enclave-enabled (derived from its CMK, paper §2.2).
struct EncryptionType {
  EncKind kind = EncKind::kPlaintext;
  uint32_t cek_id = 0;  // catalog id; 0 when plaintext
  bool enclave_enabled = false;

  static EncryptionType Plaintext() { return EncryptionType{}; }
  static EncryptionType Encrypted(EncKind k, uint32_t cek, bool enclave) {
    return EncryptionType{k, cek, enclave};
  }

  bool is_encrypted() const { return kind != EncKind::kPlaintext; }

  /// The cell-codec scheme for this type (valid only when encrypted).
  crypto::EncryptionScheme scheme() const {
    return kind == EncKind::kDeterministic
               ? crypto::EncryptionScheme::kDeterministic
               : crypto::EncryptionScheme::kRandomized;
  }

  bool operator==(const EncryptionType& o) const {
    return kind == o.kind && cek_id == o.cek_id &&
           enclave_enabled == o.enclave_enabled;
  }

  std::string ToString() const;
};

}  // namespace aedb::types

#endif  // AEDB_TYPES_ENCRYPTION_TYPE_H_
