#include "types/encryption_type.h"

namespace aedb::types {

const char* EncKindName(EncKind k) {
  switch (k) {
    case EncKind::kPlaintext: return "Plaintext";
    case EncKind::kDeterministic: return "Deterministic";
    case EncKind::kRandomized: return "Randomized";
  }
  return "Unknown";
}

std::string EncryptionType::ToString() const {
  if (!is_encrypted()) return "Plaintext";
  std::string s = EncKindName(kind);
  s += "(cek=" + std::to_string(cek_id);
  if (enclave_enabled) s += ", enclave";
  s += ")";
  return s;
}

}  // namespace aedb::types
