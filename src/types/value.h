#ifndef AEDB_TYPES_VALUE_H_
#define AEDB_TYPES_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/bytes.h"
#include "common/result.h"

namespace aedb::types {

/// Plaintext SQL type of a value or column.
enum class TypeId : uint8_t {
  kBool = 1,
  kInt32 = 2,
  kInt64 = 3,
  kDouble = 4,
  kString = 5,
  kBinary = 6,
};

const char* TypeIdName(TypeId t);

/// \brief A single SQL datum: a typed value or a typed NULL.
///
/// This is the representation expression services computes on (inside or
/// outside the enclave) and the unit of cell encryption: an encrypted cell is
/// the AEAD encryption of Value::Encode().
class Value {
 public:
  /// Typed NULL.
  static Value Null(TypeId t);
  static Value Bool(bool v);
  static Value Int32(int32_t v);
  static Value Int64(int64_t v);
  static Value Double(double v);
  static Value String(std::string v);
  static Value Binary(Bytes v);

  Value() : type_(TypeId::kInt32), null_(true) {}

  TypeId type() const { return type_; }
  bool is_null() const { return null_; }

  bool bool_v() const { return std::get<bool>(data_); }
  int32_t i32() const { return std::get<int32_t>(data_); }
  int64_t i64() const { return std::get<int64_t>(data_); }
  double dbl() const { return std::get<double>(data_); }
  const std::string& str() const { return std::get<std::string>(data_); }
  const Bytes& bin() const { return std::get<Bytes>(data_); }

  bool IsNumeric() const {
    return type_ == TypeId::kInt32 || type_ == TypeId::kInt64 ||
           type_ == TypeId::kDouble;
  }
  /// Numeric value widened to int64 (kInt32/kInt64 only).
  int64_t AsInt64() const;
  /// Numeric value widened to double.
  double AsDouble() const;

  /// Three-way comparison. Numeric types compare cross-type; strings,
  /// binaries and bools compare within their own type. NULL ordering is the
  /// caller's concern (expression evaluation applies SQL ternary logic;
  /// index ordering sorts NULLs first). Comparing a NULL here is an error.
  Result<int> Compare(const Value& other) const;

  /// Equality as a convenience over Compare (same restrictions).
  Result<bool> Equals(const Value& other) const;

  /// Stable hash for hash joins / grouping; numeric types hash equal values
  /// equally across widths. NULLs hash to a fixed sentinel.
  uint64_t Hash() const;

  /// Self-delimiting serialization (used for storage rows, wire parameters
  /// and as the plaintext inside encrypted cells).
  Bytes Encode() const;
  void EncodeTo(Bytes* out) const;
  static Result<Value> Decode(Slice in, size_t* offset);

  std::string ToString() const;

  bool operator==(const Value& o) const;

 private:
  TypeId type_;
  bool null_ = false;
  std::variant<bool, int32_t, int64_t, double, std::string, Bytes> data_;
};

/// SQL LIKE pattern match: '%' matches any run, '_' any single character.
/// No escape character (matching the subset the paper's workloads use).
bool SqlLike(std::string_view value, std::string_view pattern);

/// True when `pattern` is a prefix pattern "abc%" (usable for a range-index
/// seek, which is how the paper's LIKE-via-index prefix matching works).
bool IsPrefixLikePattern(std::string_view pattern);

}  // namespace aedb::types

#endif  // AEDB_TYPES_VALUE_H_
