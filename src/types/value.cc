#include "types/value.h"

#include <cmath>
#include <cstring>

namespace aedb::types {

const char* TypeIdName(TypeId t) {
  switch (t) {
    case TypeId::kBool: return "BOOL";
    case TypeId::kInt32: return "INT";
    case TypeId::kInt64: return "BIGINT";
    case TypeId::kDouble: return "DOUBLE";
    case TypeId::kString: return "VARCHAR";
    case TypeId::kBinary: return "VARBINARY";
  }
  return "UNKNOWN";
}

Value Value::Null(TypeId t) {
  Value v;
  v.type_ = t;
  v.null_ = true;
  return v;
}

Value Value::Bool(bool b) {
  Value v;
  v.type_ = TypeId::kBool;
  v.null_ = false;
  v.data_ = b;
  return v;
}

Value Value::Int32(int32_t i) {
  Value v;
  v.type_ = TypeId::kInt32;
  v.null_ = false;
  v.data_ = i;
  return v;
}

Value Value::Int64(int64_t i) {
  Value v;
  v.type_ = TypeId::kInt64;
  v.null_ = false;
  v.data_ = i;
  return v;
}

Value Value::Double(double d) {
  Value v;
  v.type_ = TypeId::kDouble;
  v.null_ = false;
  v.data_ = d;
  return v;
}

Value Value::String(std::string s) {
  Value v;
  v.type_ = TypeId::kString;
  v.null_ = false;
  v.data_ = std::move(s);
  return v;
}

Value Value::Binary(Bytes b) {
  Value v;
  v.type_ = TypeId::kBinary;
  v.null_ = false;
  v.data_ = std::move(b);
  return v;
}

int64_t Value::AsInt64() const {
  switch (type_) {
    case TypeId::kInt32: return static_cast<int64_t>(i32());
    case TypeId::kDouble: return static_cast<int64_t>(dbl());
    default: return i64();
  }
}

double Value::AsDouble() const {
  switch (type_) {
    case TypeId::kInt32: return static_cast<double>(i32());
    case TypeId::kInt64: return static_cast<double>(i64());
    default: return dbl();
  }
}

Result<int> Value::Compare(const Value& other) const {
  if (null_ || other.null_) {
    return Status::InvalidArgument("Compare called on NULL value");
  }
  if (IsNumeric() && other.IsNumeric()) {
    if (type_ == TypeId::kDouble || other.type_ == TypeId::kDouble) {
      double a = AsDouble(), b = other.AsDouble();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    int64_t a = AsInt64(), b = other.AsInt64();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (type_ != other.type_) {
    return Status::TypeCheckError(std::string("cannot compare ") +
                                  TypeIdName(type_) + " with " +
                                  TypeIdName(other.type_));
  }
  switch (type_) {
    case TypeId::kBool: {
      int a = bool_v() ? 1 : 0, b = other.bool_v() ? 1 : 0;
      return a - b;
    }
    case TypeId::kString: {
      int c = str().compare(other.str());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    case TypeId::kBinary:
      return Slice(bin()).compare(other.bin());
    default:
      return Status::Internal("unreachable compare");
  }
}

Result<bool> Value::Equals(const Value& other) const {
  int c;
  AEDB_ASSIGN_OR_RETURN(c, Compare(other));
  return c == 0;
}

uint64_t Value::Hash() const {
  // FNV-1a over a canonical byte form.
  auto fnv = [](const uint8_t* p, size_t n, uint64_t h = 1469598103934665603ULL) {
    for (size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 1099511628211ULL;
    }
    return h;
  };
  if (null_) return 0x9e3779b97f4a7c15ULL;
  switch (type_) {
    case TypeId::kBool: {
      uint8_t b = bool_v() ? 1 : 0;
      return fnv(&b, 1);
    }
    case TypeId::kInt32:
    case TypeId::kInt64: {
      int64_t v = AsInt64();
      return fnv(reinterpret_cast<const uint8_t*>(&v), 8);
    }
    case TypeId::kDouble: {
      double d = dbl();
      if (d == 0.0) d = 0.0;  // normalize -0.0
      // Integral doubles hash like their integer value.
      if (std::nearbyint(d) == d && std::abs(d) < 1e15) {
        int64_t v = static_cast<int64_t>(d);
        return fnv(reinterpret_cast<const uint8_t*>(&v), 8);
      }
      return fnv(reinterpret_cast<const uint8_t*>(&d), 8);
    }
    case TypeId::kString:
      return fnv(reinterpret_cast<const uint8_t*>(str().data()), str().size());
    case TypeId::kBinary:
      return fnv(bin().data(), bin().size());
  }
  return 0;
}

void Value::EncodeTo(Bytes* out) const {
  out->push_back(static_cast<uint8_t>(type_));
  out->push_back(null_ ? 1 : 0);
  if (null_) return;
  switch (type_) {
    case TypeId::kBool:
      out->push_back(bool_v() ? 1 : 0);
      break;
    case TypeId::kInt32:
      PutU32(out, static_cast<uint32_t>(i32()));
      break;
    case TypeId::kInt64:
      PutU64(out, static_cast<uint64_t>(i64()));
      break;
    case TypeId::kDouble: {
      uint64_t bits;
      double d = dbl();
      std::memcpy(&bits, &d, 8);
      PutU64(out, bits);
      break;
    }
    case TypeId::kString:
      PutLengthPrefixed(out, Slice(std::string_view(str())));
      break;
    case TypeId::kBinary:
      PutLengthPrefixed(out, bin());
      break;
  }
}

Bytes Value::Encode() const {
  Bytes out;
  EncodeTo(&out);
  return out;
}

Result<Value> Value::Decode(Slice in, size_t* offset) {
  if (*offset + 2 > in.size()) return Status::Corruption("value header past end");
  TypeId t = static_cast<TypeId>(in[*offset]);
  if (t < TypeId::kBool || t > TypeId::kBinary) {
    return Status::Corruption("unknown value type tag");
  }
  bool null = in[*offset + 1] != 0;
  *offset += 2;
  if (null) return Null(t);
  switch (t) {
    case TypeId::kBool: {
      if (*offset >= in.size()) return Status::Corruption("bool past end");
      bool b = in[(*offset)++] != 0;
      return Bool(b);
    }
    case TypeId::kInt32: {
      uint32_t v;
      AEDB_ASSIGN_OR_RETURN(v, GetU32(in, offset));
      return Int32(static_cast<int32_t>(v));
    }
    case TypeId::kInt64: {
      uint64_t v;
      AEDB_ASSIGN_OR_RETURN(v, GetU64(in, offset));
      return Int64(static_cast<int64_t>(v));
    }
    case TypeId::kDouble: {
      uint64_t bits;
      AEDB_ASSIGN_OR_RETURN(bits, GetU64(in, offset));
      double d;
      std::memcpy(&d, &bits, 8);
      return Double(d);
    }
    case TypeId::kString: {
      Bytes raw;
      AEDB_ASSIGN_OR_RETURN(raw, GetLengthPrefixed(in, offset));
      return String(std::string(raw.begin(), raw.end()));
    }
    case TypeId::kBinary: {
      Bytes raw;
      AEDB_ASSIGN_OR_RETURN(raw, GetLengthPrefixed(in, offset));
      return Binary(std::move(raw));
    }
  }
  return Status::Corruption("unreachable decode");
}

std::string Value::ToString() const {
  if (null_) return "NULL";
  switch (type_) {
    case TypeId::kBool: return bool_v() ? "TRUE" : "FALSE";
    case TypeId::kInt32: return std::to_string(i32());
    case TypeId::kInt64: return std::to_string(i64());
    case TypeId::kDouble: return std::to_string(dbl());
    case TypeId::kString: return "'" + str() + "'";
    case TypeId::kBinary: return "0x" + HexEncode(bin());
  }
  return "?";
}

bool Value::operator==(const Value& o) const {
  if (type_ != o.type_ || null_ != o.null_) return false;
  if (null_) return true;
  return data_ == o.data_;
}

bool SqlLike(std::string_view value, std::string_view pattern) {
  // Iterative matcher with backtracking over the last '%'.
  size_t v = 0, p = 0;
  size_t star_p = std::string_view::npos, star_v = 0;
  while (v < value.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == value[v])) {
      ++v;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_v = v;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      v = ++star_v;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

bool IsPrefixLikePattern(std::string_view pattern) {
  if (pattern.size() < 2 || pattern.back() != '%') return false;
  std::string_view prefix = pattern.substr(0, pattern.size() - 1);
  return prefix.find('%') == std::string_view::npos &&
         prefix.find('_') == std::string_view::npos;
}

}  // namespace aedb::types
