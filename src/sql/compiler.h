#ifndef AEDB_SQL_COMPILER_H_
#define AEDB_SQL_COMPILER_H_

#include "es/program.h"
#include "sql/binder.h"

namespace aedb::sql {

/// Input-slot layout shared by compiled programs and the executor: the main
/// table's columns first, then the join table's (if any), then parameters.
struct InputLayout {
  size_t table_columns = 0;
  size_t join_columns = 0;

  size_t ColumnSlot(int table_slot, int column_index) const {
    return table_slot == 0 ? static_cast<size_t>(column_index)
                           : table_columns + static_cast<size_t>(column_index);
  }
  size_t ParamSlot(int param_index) const {
    return table_columns + join_columns + static_cast<size_t>(param_index);
  }
  size_t total(size_t num_params) const {
    return table_columns + join_columns + num_params;
  }
};

/// \brief Compiles a bound predicate tree into the host ES program
/// (paper §4.4, Figure 7).
///
/// Plaintext subtrees become ordinary stack code. DET equality becomes a
/// host VARBINARY comparison on ciphertext. Predicates over enclave-enabled
/// encrypted operands become kTMEval stubs embedding a serialized
/// enclave-side program whose GetData instructions carry the encryption
/// annotations that make the enclave decrypt at ingress.
Result<es::EsProgram> CompilePredicate(const Expr* where,
                                       const InputLayout& layout,
                                       const std::vector<BoundParam>& params);

/// Compiles a scalar value expression (SET / VALUES clauses): plaintext
/// arithmetic over columns and parameters, or an opaque ciphertext move for
/// encrypted targets. One output slot.
Result<es::EsProgram> CompileValueExpr(const Expr* expr,
                                       const InputLayout& layout,
                                       const std::vector<BoundParam>& params);

}  // namespace aedb::sql

#endif  // AEDB_SQL_COMPILER_H_
