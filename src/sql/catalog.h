#ifndef AEDB_SQL_CATALOG_H_
#define AEDB_SQL_CATALOG_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "keys/key_metadata.h"
#include "types/encryption_type.h"
#include "types/value.h"

namespace aedb::sql {

/// Column definition including its encryption configuration (paper §2.3:
/// "the encryption configuration of a column consists of an encryption
/// scheme ... and a CEK").
struct ColumnDef {
  std::string name;
  types::TypeId type = types::TypeId::kInt32;
  types::EncryptionType enc;
  bool nullable = true;
};

struct TableDef {
  uint32_t id = 0;
  std::string name;
  std::vector<ColumnDef> columns;

  /// Index of the named column, or -1.
  int FindColumn(std::string_view column_name) const;
};

/// Index kinds per paper §3.1: equality indexes order by DET ciphertext;
/// range indexes order by plaintext via enclave comparisons on RND columns
/// (or natively for plaintext columns).
enum class IndexKind : uint8_t { kEquality = 1, kRange = 2 };

struct IndexDef {
  uint32_t id = 0;
  std::string name;
  uint32_t table_id = 0;
  int column = -1;
  IndexKind kind = IndexKind::kEquality;
  bool unique = false;
};

/// Server-side metadata: tables, indexes, and the key system tables (the
/// database is "the single source of truth" for key metadata, §2.2 — only
/// the CMK material itself lives elsewhere).
class Catalog {
 public:
  Result<const TableDef*> CreateTable(TableDef def);
  Result<const TableDef*> GetTable(std::string_view name) const;
  const TableDef* GetTableById(uint32_t id) const;
  Status DropTable(std::string_view name);
  /// Replaces a column definition (ALTER TABLE ALTER COLUMN).
  Status AlterColumn(std::string_view table, int column, const ColumnDef& def);

  Result<const IndexDef*> CreateIndex(IndexDef def);
  Status DropIndex(std::string_view name);
  Result<const IndexDef*> GetIndex(std::string_view name) const;
  const IndexDef* GetIndexById(uint32_t id) const;
  /// All indexes over `table_id`.
  std::vector<const IndexDef*> TableIndexes(uint32_t table_id) const;
  /// First usable index of `kind` on (table, column), or nullptr.
  const IndexDef* FindIndexOn(uint32_t table_id, int column,
                              IndexKind kind) const;

  // --- key metadata (sys.column_master_keys / sys.column_encryption_keys) ---
  Status AddCmk(keys::CmkInfo cmk);
  Result<const keys::CmkInfo*> GetCmk(std::string_view name) const;
  Result<uint32_t> AddCek(keys::CekInfo cek);
  Result<const keys::CekInfo*> GetCek(std::string_view name) const;
  const keys::CekInfo* GetCekById(uint32_t id) const;
  Result<uint32_t> CekIdByName(std::string_view name) const;
  /// Whether the CEK's (first) CMK allows enclave computations.
  Result<bool> CekEnclaveEnabled(uint32_t cek_id) const;
  /// Replaces a CEK's metadata (CMK rotation adds/removes wrapped values).
  Status UpdateCek(const keys::CekInfo& cek);

  uint32_t next_table_id() const { return next_table_id_; }
  uint32_t next_index_id() const { return next_index_id_; }
  uint32_t next_cek_id() const { return next_cek_id_; }

  /// Forces the id counters to exact values. DDL-journal replay uses this:
  /// each journal entry snapshots the counters as they stood before its
  /// statement ran, so replay reproduces the runtime id assignment even when
  /// an intervening statement failed or was lost mid-crash after consuming
  /// an id (the WAL's object_ids reference the runtime ids).
  void ForceNextIds(uint32_t table_id, uint32_t index_id, uint32_t cek_id);

 private:
  mutable std::mutex mu_;
  std::map<std::string, TableDef> tables_;
  std::map<std::string, IndexDef> indexes_;
  std::map<std::string, keys::CmkInfo> cmks_;
  std::map<std::string, keys::CekInfo> ceks_;
  std::map<std::string, uint32_t> cek_ids_;
  std::map<uint32_t, std::string> cek_names_;
  uint32_t next_table_id_ = 1;
  uint32_t next_index_id_ = 1;
  uint32_t next_cek_id_ = 1;
};

/// Row serialization: a row is the concatenation of encoded Values; encrypted
/// columns are kBinary values whose payload is the AEAD cell.
Bytes EncodeRow(const std::vector<types::Value>& row);
Result<std::vector<types::Value>> DecodeRow(Slice record, size_t num_columns);

}  // namespace aedb::sql

#endif  // AEDB_SQL_CATALOG_H_
