#include "sql/parser.h"

namespace aedb::sql {

namespace {

using types::TypeId;
using types::Value;

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> ParseStatement();

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool IsKeyword(std::string_view kw, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.type == TokenType::kIdentifier && t.upper == kw;
  }
  bool MatchKeyword(std::string_view kw) {
    if (!IsKeyword(kw)) return false;
    Advance();
    return true;
  }
  bool IsSymbol(std::string_view s, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.type == TokenType::kSymbol && t.text == s;
  }
  bool MatchSymbol(std::string_view s) {
    if (!IsSymbol(s)) return false;
    Advance();
    return true;
  }
  Status ExpectKeyword(std::string_view kw) {
    if (!MatchKeyword(kw)) return Err(std::string("expected ") + std::string(kw));
    return Status::OK();
  }
  Status ExpectSymbol(std::string_view s) {
    if (!MatchSymbol(s)) return Err(std::string("expected '") + std::string(s) + "'");
    return Status::OK();
  }
  Result<std::string> ExpectIdentifier(std::string_view what) {
    if (Peek().type != TokenType::kIdentifier) {
      return Err("expected " + std::string(what));
    }
    return Advance().text;
  }
  Status Err(std::string msg) const {
    return Status::InvalidArgument("parse error near offset " +
                                   std::to_string(Peek().offset) + ": " + msg);
  }

  Result<std::unique_ptr<SelectStmt>> ParseSelect();
  Result<std::unique_ptr<InsertStmt>> ParseInsert();
  Result<std::unique_ptr<UpdateStmt>> ParseUpdate();
  Result<std::unique_ptr<DeleteStmt>> ParseDelete();
  Result<Statement> ParseCreate();
  Result<Statement> ParseAlter();
  Result<Statement> ParseDrop();
  Result<std::unique_ptr<CreateTableStmt>> ParseCreateTable();
  Result<std::unique_ptr<CreateIndexStmt>> ParseCreateIndex(bool unique);
  Result<std::unique_ptr<CreateCmkStmt>> ParseCreateCmk();
  Result<std::unique_ptr<CreateCekStmt>> ParseCreateCek();
  Result<TypeId> ParseType();
  Result<EncryptionSpec> ParseEncryptionSpec();

  Result<ExprPtr> ParsePredicate();   // OR level
  Result<ExprPtr> ParseAndChain();
  Result<ExprPtr> ParseNotLevel();
  Result<ExprPtr> ParseComparison();
  Result<ExprPtr> ParseAdditive();
  Result<ExprPtr> ParseTerm();
  Result<ExprPtr> ParseFactor();

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

Result<TypeId> Parser::ParseType() {
  std::string name;
  AEDB_ASSIGN_OR_RETURN(name, ExpectIdentifier("type name"));
  for (char& c : name) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  TypeId type;
  if (name == "INT" || name == "INTEGER" || name == "SMALLINT") {
    type = TypeId::kInt32;
  } else if (name == "BIGINT") {
    type = TypeId::kInt64;
  } else if (name == "DOUBLE" || name == "FLOAT" || name == "REAL" ||
             name == "DECIMAL" || name == "NUMERIC") {
    type = TypeId::kDouble;
  } else if (name == "VARCHAR" || name == "CHAR" || name == "TEXT" ||
             name == "NVARCHAR" || name == "NCHAR") {
    type = TypeId::kString;
  } else if (name == "VARBINARY" || name == "BINARY") {
    type = TypeId::kBinary;
  } else if (name == "BOOL" || name == "BOOLEAN" || name == "BIT") {
    type = TypeId::kBool;
  } else {
    return Err("unknown type " + name);
  }
  // Optional length: VARCHAR(16), DECIMAL(12,2).
  if (MatchSymbol("(")) {
    while (!IsSymbol(")")) {
      if (Peek().type == TokenType::kEnd) return Err("unterminated type length");
      Advance();
    }
    Advance();
  }
  return type;
}

Result<EncryptionSpec> Parser::ParseEncryptionSpec() {
  // Caller consumed ENCRYPTED; now: WITH (k = v, ...)
  EncryptionSpec spec;
  spec.encrypted = true;
  AEDB_RETURN_IF_ERROR(ExpectKeyword("WITH"));
  AEDB_RETURN_IF_ERROR(ExpectSymbol("("));
  while (!IsSymbol(")")) {
    std::string key;
    AEDB_ASSIGN_OR_RETURN(key, ExpectIdentifier("encryption attribute"));
    for (char& c : key) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    AEDB_RETURN_IF_ERROR(ExpectSymbol("="));
    if (key == "COLUMN_ENCRYPTION_KEY") {
      AEDB_ASSIGN_OR_RETURN(spec.cek_name, ExpectIdentifier("CEK name"));
    } else if (key == "ENCRYPTION_TYPE") {
      std::string kind;
      AEDB_ASSIGN_OR_RETURN(kind, ExpectIdentifier("encryption type"));
      for (char& c : kind) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
      if (kind == "RANDOMIZED") {
        spec.kind = types::EncKind::kRandomized;
      } else if (kind == "DETERMINISTIC") {
        spec.kind = types::EncKind::kDeterministic;
      } else {
        return Err("ENCRYPTION_TYPE must be RANDOMIZED or DETERMINISTIC");
      }
    } else if (key == "ALGORITHM") {
      if (Peek().type != TokenType::kString) return Err("ALGORITHM needs a string");
      spec.algorithm = Advance().text;
    } else {
      return Err("unknown encryption attribute " + key);
    }
    if (!MatchSymbol(",")) break;
  }
  AEDB_RETURN_IF_ERROR(ExpectSymbol(")"));
  if (spec.cek_name.empty()) return Err("COLUMN_ENCRYPTION_KEY is required");
  return spec;
}

Result<ExprPtr> Parser::ParseFactor() {
  const Token& t = Peek();
  auto e = std::make_unique<Expr>();
  switch (t.type) {
    case TokenType::kNumber: {
      e->kind = Expr::Kind::kLiteral;
      if (t.is_float) {
        e->literal = Value::Double(std::stod(t.text));
      } else {
        e->literal = Value::Int64(std::stoll(t.text));
      }
      Advance();
      return e;
    }
    case TokenType::kString:
      e->kind = Expr::Kind::kLiteral;
      e->literal = Value::String(t.text);
      Advance();
      return e;
    case TokenType::kHexLiteral:
      e->kind = Expr::Kind::kLiteral;
      e->literal = Value::Binary(t.hex);
      Advance();
      return e;
    case TokenType::kParam:
      e->kind = Expr::Kind::kParam;
      e->param = t.text;
      Advance();
      return e;
    case TokenType::kSymbol:
      if (t.text == "(") {
        Advance();
        ExprPtr inner;
        AEDB_ASSIGN_OR_RETURN(inner, ParseAdditive());
        AEDB_RETURN_IF_ERROR(ExpectSymbol(")"));
        return inner;
      }
      if (t.text == "-") {
        Advance();
        e->kind = Expr::Kind::kNeg;
        AEDB_ASSIGN_OR_RETURN(e->a, ParseFactor());
        return e;
      }
      return Err("unexpected symbol '" + t.text + "' in expression");
    case TokenType::kIdentifier: {
      if (t.upper == "NULL") {
        Advance();
        e->kind = Expr::Kind::kLiteral;
        e->literal = Value::Null(TypeId::kInt64);
        return e;
      }
      if (t.upper == "TRUE" || t.upper == "FALSE") {
        e->kind = Expr::Kind::kLiteral;
        e->literal = Value::Bool(t.upper == "TRUE");
        Advance();
        return e;
      }
      e->kind = Expr::Kind::kColumn;
      e->column = Advance().text;
      if (MatchSymbol(".")) {
        std::string col;
        AEDB_ASSIGN_OR_RETURN(col, ExpectIdentifier("column name"));
        e->column += "." + col;
      }
      return e;
    }
    default:
      return Err("unexpected end of expression");
  }
}

Result<ExprPtr> Parser::ParseTerm() {
  ExprPtr left;
  AEDB_ASSIGN_OR_RETURN(left, ParseFactor());
  while (IsSymbol("*") || IsSymbol("/")) {
    char op = Advance().text[0];
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::kArith;
    e->arith = op;
    e->a = std::move(left);
    AEDB_ASSIGN_OR_RETURN(e->b, ParseFactor());
    left = std::move(e);
  }
  return left;
}

Result<ExprPtr> Parser::ParseAdditive() {
  ExprPtr left;
  AEDB_ASSIGN_OR_RETURN(left, ParseTerm());
  while (IsSymbol("+") || IsSymbol("-")) {
    char op = Advance().text[0];
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::kArith;
    e->arith = op;
    e->a = std::move(left);
    AEDB_ASSIGN_OR_RETURN(e->b, ParseTerm());
    left = std::move(e);
  }
  return left;
}

Result<ExprPtr> Parser::ParseComparison() {
  ExprPtr left;
  AEDB_ASSIGN_OR_RETURN(left, ParseAdditive());

  if (MatchKeyword("IS")) {
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::kIsNull;
    e->is_not = MatchKeyword("NOT");
    AEDB_RETURN_IF_ERROR(ExpectKeyword("NULL"));
    e->a = std::move(left);
    return e;
  }
  bool negate = MatchKeyword("NOT");
  if (MatchKeyword("LIKE")) {
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::kLike;
    e->a = std::move(left);
    AEDB_ASSIGN_OR_RETURN(e->b, ParseAdditive());
    if (!negate) return e;
    auto n = std::make_unique<Expr>();
    n->kind = Expr::Kind::kNot;
    n->a = std::move(e);
    return n;
  }
  if (MatchKeyword("BETWEEN")) {
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::kBetween;
    e->a = std::move(left);
    AEDB_ASSIGN_OR_RETURN(e->b, ParseAdditive());
    AEDB_RETURN_IF_ERROR(ExpectKeyword("AND"));
    AEDB_ASSIGN_OR_RETURN(e->c, ParseAdditive());
    if (!negate) return e;
    auto n = std::make_unique<Expr>();
    n->kind = Expr::Kind::kNot;
    n->a = std::move(e);
    return n;
  }
  if (negate) return Err("expected LIKE or BETWEEN after NOT");

  if (Peek().type == TokenType::kSymbol) {
    const std::string& s = Peek().text;
    es::CompareOp op;
    bool is_cmp = true;
    if (s == "=") {
      op = es::CompareOp::kEq;
    } else if (s == "<>" || s == "!=") {
      op = es::CompareOp::kNe;
    } else if (s == "<") {
      op = es::CompareOp::kLt;
    } else if (s == "<=") {
      op = es::CompareOp::kLe;
    } else if (s == ">") {
      op = es::CompareOp::kGt;
    } else if (s == ">=") {
      op = es::CompareOp::kGe;
    } else {
      is_cmp = false;
      op = es::CompareOp::kEq;
    }
    if (is_cmp) {
      Advance();
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kCompare;
      e->cmp = op;
      e->a = std::move(left);
      AEDB_ASSIGN_OR_RETURN(e->b, ParseAdditive());
      return e;
    }
  }
  // Bare operand (e.g. a boolean column) is allowed as a predicate.
  return left;
}

Result<ExprPtr> Parser::ParseNotLevel() {
  if (MatchKeyword("NOT")) {
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::kNot;
    AEDB_ASSIGN_OR_RETURN(e->a, ParseNotLevel());
    return e;
  }
  if (IsSymbol("(")) {
    // Could be a parenthesized predicate or a parenthesized arithmetic
    // expression; try predicate first by scanning for boolean structure is
    // overkill — ParseComparison handles '(' via ParseAdditive, but nested
    // OR/AND need predicate parsing. Probe: parse as predicate.
    size_t save = pos_;
    Advance();
    auto pred = ParsePredicate();
    if (pred.ok() && MatchSymbol(")")) {
      // If a comparison operator follows, it was an arithmetic group.
      if (Peek().type == TokenType::kSymbol &&
          (Peek().text == "=" || Peek().text == "<" || Peek().text == ">" ||
           Peek().text == "<=" || Peek().text == ">=" || Peek().text == "<>" ||
           Peek().text == "+" || Peek().text == "-" || Peek().text == "*" ||
           Peek().text == "/")) {
        pos_ = save;
        return ParseComparison();
      }
      return pred;
    }
    pos_ = save;
  }
  return ParseComparison();
}

Result<ExprPtr> Parser::ParseAndChain() {
  ExprPtr left;
  AEDB_ASSIGN_OR_RETURN(left, ParseNotLevel());
  while (MatchKeyword("AND")) {
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::kAnd;
    e->a = std::move(left);
    AEDB_ASSIGN_OR_RETURN(e->b, ParseNotLevel());
    left = std::move(e);
  }
  return left;
}

Result<ExprPtr> Parser::ParsePredicate() {
  ExprPtr left;
  AEDB_ASSIGN_OR_RETURN(left, ParseAndChain());
  while (MatchKeyword("OR")) {
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::kOr;
    e->a = std::move(left);
    AEDB_ASSIGN_OR_RETURN(e->b, ParseAndChain());
    left = std::move(e);
  }
  return left;
}

Result<std::unique_ptr<SelectStmt>> Parser::ParseSelect() {
  auto stmt = std::make_unique<SelectStmt>();
  if (MatchSymbol("*")) {
    stmt->select_all = true;
  } else {
    do {
      SelectItem item;
      const Token& t = Peek();
      if (t.type != TokenType::kIdentifier) return Err("expected select item");
      std::string upper = t.upper;
      if (upper == "COUNT" || upper == "SUM" || upper == "MIN" ||
          upper == "MAX" || upper == "AVG") {
        if (IsSymbol("(", 1)) {
          Advance();
          Advance();
          item.agg = upper == "COUNT"  ? AggFunc::kCount
                     : upper == "SUM"  ? AggFunc::kSum
                     : upper == "MIN"  ? AggFunc::kMin
                     : upper == "MAX"  ? AggFunc::kMax
                                       : AggFunc::kAvg;
          if (MatchSymbol("*")) {
            item.star = true;
            if (item.agg != AggFunc::kCount) return Err("only COUNT(*) allowed");
          } else {
            AEDB_ASSIGN_OR_RETURN(item.column, ExpectIdentifier("column"));
            if (MatchSymbol(".")) {
              std::string col;
              AEDB_ASSIGN_OR_RETURN(col, ExpectIdentifier("column"));
              item.column += "." + col;
            }
          }
          AEDB_RETURN_IF_ERROR(ExpectSymbol(")"));
        } else {
          AEDB_ASSIGN_OR_RETURN(item.column, ExpectIdentifier("column"));
        }
      } else {
        AEDB_ASSIGN_OR_RETURN(item.column, ExpectIdentifier("column"));
        if (MatchSymbol(".")) {
          std::string col;
          AEDB_ASSIGN_OR_RETURN(col, ExpectIdentifier("column"));
          item.column += "." + col;
        }
      }
      if (MatchKeyword("AS")) {
        AEDB_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier("alias"));
      }
      stmt->items.push_back(std::move(item));
    } while (MatchSymbol(","));
  }
  AEDB_RETURN_IF_ERROR(ExpectKeyword("FROM"));
  AEDB_ASSIGN_OR_RETURN(stmt->table, ExpectIdentifier("table name"));
  if (MatchKeyword("INNER")) {
    AEDB_RETURN_IF_ERROR(ExpectKeyword("JOIN"));
    AEDB_ASSIGN_OR_RETURN(stmt->join_table, ExpectIdentifier("join table"));
    AEDB_RETURN_IF_ERROR(ExpectKeyword("ON"));
    AEDB_ASSIGN_OR_RETURN(stmt->join_left, ExpectIdentifier("join column"));
    if (MatchSymbol(".")) {
      std::string col;
      AEDB_ASSIGN_OR_RETURN(col, ExpectIdentifier("join column"));
      stmt->join_left += "." + col;
    }
    AEDB_RETURN_IF_ERROR(ExpectSymbol("="));
    AEDB_ASSIGN_OR_RETURN(stmt->join_right, ExpectIdentifier("join column"));
    if (MatchSymbol(".")) {
      std::string col;
      AEDB_ASSIGN_OR_RETURN(col, ExpectIdentifier("join column"));
      stmt->join_right += "." + col;
    }
  } else if (MatchKeyword("JOIN")) {
    AEDB_ASSIGN_OR_RETURN(stmt->join_table, ExpectIdentifier("join table"));
    AEDB_RETURN_IF_ERROR(ExpectKeyword("ON"));
    AEDB_ASSIGN_OR_RETURN(stmt->join_left, ExpectIdentifier("join column"));
    if (MatchSymbol(".")) {
      std::string col;
      AEDB_ASSIGN_OR_RETURN(col, ExpectIdentifier("join column"));
      stmt->join_left += "." + col;
    }
    AEDB_RETURN_IF_ERROR(ExpectSymbol("="));
    AEDB_ASSIGN_OR_RETURN(stmt->join_right, ExpectIdentifier("join column"));
    if (MatchSymbol(".")) {
      std::string col;
      AEDB_ASSIGN_OR_RETURN(col, ExpectIdentifier("join column"));
      stmt->join_right += "." + col;
    }
  }
  if (MatchKeyword("WHERE")) {
    AEDB_ASSIGN_OR_RETURN(stmt->where, ParsePredicate());
  }
  if (MatchKeyword("GROUP")) {
    AEDB_RETURN_IF_ERROR(ExpectKeyword("BY"));
    AEDB_ASSIGN_OR_RETURN(stmt->group_by, ExpectIdentifier("group column"));
  }
  if (MatchKeyword("ORDER")) {
    AEDB_RETURN_IF_ERROR(ExpectKeyword("BY"));
    AEDB_ASSIGN_OR_RETURN(stmt->order_by, ExpectIdentifier("order column"));
    if (MatchKeyword("DESC")) {
      stmt->order_desc = true;
    } else {
      MatchKeyword("ASC");
    }
  }
  if (MatchKeyword("LIMIT")) {
    if (Peek().type != TokenType::kNumber) return Err("LIMIT needs a number");
    stmt->limit = std::stoll(Advance().text);
  }
  return stmt;
}

Result<std::unique_ptr<InsertStmt>> Parser::ParseInsert() {
  auto stmt = std::make_unique<InsertStmt>();
  AEDB_RETURN_IF_ERROR(ExpectKeyword("INTO"));
  AEDB_ASSIGN_OR_RETURN(stmt->table, ExpectIdentifier("table name"));
  if (MatchSymbol("(")) {
    do {
      std::string col;
      AEDB_ASSIGN_OR_RETURN(col, ExpectIdentifier("column"));
      stmt->columns.push_back(std::move(col));
    } while (MatchSymbol(","));
    AEDB_RETURN_IF_ERROR(ExpectSymbol(")"));
  }
  AEDB_RETURN_IF_ERROR(ExpectKeyword("VALUES"));
  do {
    AEDB_RETURN_IF_ERROR(ExpectSymbol("("));
    std::vector<ExprPtr> row;
    do {
      ExprPtr e;
      AEDB_ASSIGN_OR_RETURN(e, ParseAdditive());
      row.push_back(std::move(e));
    } while (MatchSymbol(","));
    AEDB_RETURN_IF_ERROR(ExpectSymbol(")"));
    stmt->rows.push_back(std::move(row));
  } while (MatchSymbol(","));
  return stmt;
}

Result<std::unique_ptr<UpdateStmt>> Parser::ParseUpdate() {
  auto stmt = std::make_unique<UpdateStmt>();
  AEDB_ASSIGN_OR_RETURN(stmt->table, ExpectIdentifier("table name"));
  AEDB_RETURN_IF_ERROR(ExpectKeyword("SET"));
  do {
    std::string col;
    AEDB_ASSIGN_OR_RETURN(col, ExpectIdentifier("column"));
    AEDB_RETURN_IF_ERROR(ExpectSymbol("="));
    ExprPtr e;
    AEDB_ASSIGN_OR_RETURN(e, ParseAdditive());
    stmt->sets.emplace_back(std::move(col), std::move(e));
  } while (MatchSymbol(","));
  if (MatchKeyword("WHERE")) {
    AEDB_ASSIGN_OR_RETURN(stmt->where, ParsePredicate());
  }
  return stmt;
}

Result<std::unique_ptr<DeleteStmt>> Parser::ParseDelete() {
  auto stmt = std::make_unique<DeleteStmt>();
  AEDB_RETURN_IF_ERROR(ExpectKeyword("FROM"));
  AEDB_ASSIGN_OR_RETURN(stmt->table, ExpectIdentifier("table name"));
  if (MatchKeyword("WHERE")) {
    AEDB_ASSIGN_OR_RETURN(stmt->where, ParsePredicate());
  }
  return stmt;
}

Result<std::unique_ptr<CreateTableStmt>> Parser::ParseCreateTable() {
  auto stmt = std::make_unique<CreateTableStmt>();
  AEDB_ASSIGN_OR_RETURN(stmt->name, ExpectIdentifier("table name"));
  AEDB_RETURN_IF_ERROR(ExpectSymbol("("));
  do {
    ColumnSpec col;
    AEDB_ASSIGN_OR_RETURN(col.name, ExpectIdentifier("column name"));
    AEDB_ASSIGN_OR_RETURN(col.type, ParseType());
    for (;;) {
      if (MatchKeyword("NOT")) {
        AEDB_RETURN_IF_ERROR(ExpectKeyword("NULL"));
        col.not_null = true;
      } else if (MatchKeyword("ENCRYPTED")) {
        AEDB_ASSIGN_OR_RETURN(col.enc, ParseEncryptionSpec());
      } else if (MatchKeyword("PRIMARY")) {
        AEDB_RETURN_IF_ERROR(ExpectKeyword("KEY"));
        col.not_null = true;  // primary key implies NOT NULL; index via DDL
      } else {
        break;
      }
    }
    stmt->columns.push_back(std::move(col));
  } while (MatchSymbol(","));
  AEDB_RETURN_IF_ERROR(ExpectSymbol(")"));
  return stmt;
}

Result<std::unique_ptr<CreateIndexStmt>> Parser::ParseCreateIndex(bool unique) {
  auto stmt = std::make_unique<CreateIndexStmt>();
  stmt->unique = unique;
  AEDB_ASSIGN_OR_RETURN(stmt->name, ExpectIdentifier("index name"));
  AEDB_RETURN_IF_ERROR(ExpectKeyword("ON"));
  AEDB_ASSIGN_OR_RETURN(stmt->table, ExpectIdentifier("table name"));
  AEDB_RETURN_IF_ERROR(ExpectSymbol("("));
  AEDB_ASSIGN_OR_RETURN(stmt->column, ExpectIdentifier("column name"));
  AEDB_RETURN_IF_ERROR(ExpectSymbol(")"));
  return stmt;
}

Result<std::unique_ptr<CreateCmkStmt>> Parser::ParseCreateCmk() {
  auto stmt = std::make_unique<CreateCmkStmt>();
  AEDB_ASSIGN_OR_RETURN(stmt->name, ExpectIdentifier("CMK name"));
  AEDB_RETURN_IF_ERROR(ExpectKeyword("WITH"));
  AEDB_RETURN_IF_ERROR(ExpectSymbol("("));
  while (!IsSymbol(")")) {
    std::string key;
    AEDB_ASSIGN_OR_RETURN(key, ExpectIdentifier("CMK attribute"));
    for (char& c : key) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    if (key == "ENCLAVE_COMPUTATIONS") {
      stmt->enclave_computations = true;
      if (MatchSymbol("(")) {
        AEDB_RETURN_IF_ERROR(ExpectKeyword("SIGNATURE"));
        AEDB_RETURN_IF_ERROR(ExpectSymbol("="));
        if (Peek().type != TokenType::kHexLiteral) return Err("SIGNATURE needs hex");
        stmt->signature = Advance().hex;
        AEDB_RETURN_IF_ERROR(ExpectSymbol(")"));
      }
    } else {
      AEDB_RETURN_IF_ERROR(ExpectSymbol("="));
      if (key == "KEY_STORE_PROVIDER_NAME") {
        if (Peek().type != TokenType::kString) return Err("provider needs string");
        stmt->provider = Advance().text;
      } else if (key == "SIGNATURE") {
        if (Peek().type != TokenType::kHexLiteral) return Err("SIGNATURE needs hex");
        stmt->signature = Advance().hex;
      } else if (key == "KEY_PATH") {
        if (Peek().type != TokenType::kString) return Err("KEY_PATH needs string");
        stmt->key_path = Advance().text;
      } else {
        return Err("unknown CMK attribute " + key);
      }
    }
    if (!MatchSymbol(",")) break;
  }
  AEDB_RETURN_IF_ERROR(ExpectSymbol(")"));
  return stmt;
}

Result<std::unique_ptr<CreateCekStmt>> Parser::ParseCreateCek() {
  auto stmt = std::make_unique<CreateCekStmt>();
  AEDB_ASSIGN_OR_RETURN(stmt->name, ExpectIdentifier("CEK name"));
  AEDB_RETURN_IF_ERROR(ExpectKeyword("WITH"));
  AEDB_RETURN_IF_ERROR(ExpectKeyword("VALUES"));
  AEDB_RETURN_IF_ERROR(ExpectSymbol("("));
  while (!IsSymbol(")")) {
    std::string key;
    AEDB_ASSIGN_OR_RETURN(key, ExpectIdentifier("CEK attribute"));
    for (char& c : key) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    AEDB_RETURN_IF_ERROR(ExpectSymbol("="));
    if (key == "COLUMN_MASTER_KEY") {
      AEDB_ASSIGN_OR_RETURN(stmt->cmk, ExpectIdentifier("CMK name"));
    } else if (key == "ALGORITHM") {
      if (Peek().type != TokenType::kString) return Err("ALGORITHM needs string");
      stmt->algorithm = Advance().text;
    } else if (key == "ENCRYPTED_VALUE") {
      if (Peek().type != TokenType::kHexLiteral) return Err("ENCRYPTED_VALUE needs hex");
      stmt->encrypted_value = Advance().hex;
    } else if (key == "SIGNATURE") {
      if (Peek().type != TokenType::kHexLiteral) return Err("SIGNATURE needs hex");
      stmt->signature = Advance().hex;
    } else {
      return Err("unknown CEK attribute " + key);
    }
    if (!MatchSymbol(",")) break;
  }
  AEDB_RETURN_IF_ERROR(ExpectSymbol(")"));
  return stmt;
}

Result<Statement> Parser::ParseCreate() {
  Statement out;
  if (MatchKeyword("TABLE")) {
    out.kind = Statement::Kind::kCreateTable;
    AEDB_ASSIGN_OR_RETURN(out.create_table, ParseCreateTable());
    return out;
  }
  if (MatchKeyword("UNIQUE")) {
    AEDB_RETURN_IF_ERROR(ExpectKeyword("INDEX"));
    out.kind = Statement::Kind::kCreateIndex;
    AEDB_ASSIGN_OR_RETURN(out.create_index, ParseCreateIndex(true));
    return out;
  }
  if (MatchKeyword("INDEX") || (MatchKeyword("NONCLUSTERED") && MatchKeyword("INDEX"))) {
    out.kind = Statement::Kind::kCreateIndex;
    AEDB_ASSIGN_OR_RETURN(out.create_index, ParseCreateIndex(false));
    return out;
  }
  if (MatchKeyword("COLUMN")) {
    if (MatchKeyword("MASTER")) {
      AEDB_RETURN_IF_ERROR(ExpectKeyword("KEY"));
      out.kind = Statement::Kind::kCreateCmk;
      AEDB_ASSIGN_OR_RETURN(out.create_cmk, ParseCreateCmk());
      return out;
    }
    if (MatchKeyword("ENCRYPTION")) {
      AEDB_RETURN_IF_ERROR(ExpectKeyword("KEY"));
      out.kind = Statement::Kind::kCreateCek;
      AEDB_ASSIGN_OR_RETURN(out.create_cek, ParseCreateCek());
      return out;
    }
    return Err("expected MASTER or ENCRYPTION after CREATE COLUMN");
  }
  return Err("unsupported CREATE statement");
}

Result<Statement> Parser::ParseAlter() {
  Statement out;
  AEDB_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
  out.kind = Statement::Kind::kAlterColumn;
  auto stmt = std::make_unique<AlterColumnStmt>();
  AEDB_ASSIGN_OR_RETURN(stmt->table, ExpectIdentifier("table name"));
  AEDB_RETURN_IF_ERROR(ExpectKeyword("ALTER"));
  AEDB_RETURN_IF_ERROR(ExpectKeyword("COLUMN"));
  AEDB_ASSIGN_OR_RETURN(stmt->column, ExpectIdentifier("column name"));
  AEDB_ASSIGN_OR_RETURN(stmt->type, ParseType());
  if (MatchKeyword("ENCRYPTED")) {
    AEDB_ASSIGN_OR_RETURN(stmt->enc, ParseEncryptionSpec());
  }
  out.alter_column = std::move(stmt);
  return out;
}

Result<Statement> Parser::ParseDrop() {
  Statement out;
  out.kind = Statement::Kind::kDrop;
  auto stmt = std::make_unique<DropStmt>();
  if (MatchKeyword("TABLE")) {
    stmt->is_index = false;
  } else if (MatchKeyword("INDEX")) {
    stmt->is_index = true;
  } else {
    return Err("expected TABLE or INDEX after DROP");
  }
  AEDB_ASSIGN_OR_RETURN(stmt->name, ExpectIdentifier("name"));
  out.drop = std::move(stmt);
  return out;
}

Result<Statement> Parser::ParseStatement() {
  Statement out;
  if (MatchKeyword("SELECT")) {
    out.kind = Statement::Kind::kSelect;
    AEDB_ASSIGN_OR_RETURN(out.select, ParseSelect());
  } else if (MatchKeyword("INSERT")) {
    out.kind = Statement::Kind::kInsert;
    AEDB_ASSIGN_OR_RETURN(out.insert, ParseInsert());
  } else if (MatchKeyword("UPDATE")) {
    out.kind = Statement::Kind::kUpdate;
    AEDB_ASSIGN_OR_RETURN(out.update, ParseUpdate());
  } else if (MatchKeyword("DELETE")) {
    out.kind = Statement::Kind::kDelete;
    AEDB_ASSIGN_OR_RETURN(out.del, ParseDelete());
  } else if (MatchKeyword("CREATE")) {
    AEDB_ASSIGN_OR_RETURN(out, ParseCreate());
  } else if (MatchKeyword("ALTER")) {
    AEDB_ASSIGN_OR_RETURN(out, ParseAlter());
  } else if (MatchKeyword("DROP")) {
    AEDB_ASSIGN_OR_RETURN(out, ParseDrop());
  } else {
    return Err("unsupported statement");
  }
  MatchSymbol(";");
  if (Peek().type != TokenType::kEnd) {
    return Err("trailing input after statement");
  }
  return out;
}

}  // namespace

Result<Statement> Parse(std::string_view sql) {
  std::vector<Token> tokens;
  AEDB_ASSIGN_OR_RETURN(tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

}  // namespace aedb::sql
