#ifndef AEDB_SQL_BINDER_H_
#define AEDB_SQL_BINDER_H_

#include <deque>
#include <map>
#include <string>
#include <vector>

#include "sql/ast.h"
#include "sql/catalog.h"

namespace aedb::sql {

/// \brief Union-find solver for encryption-type inference (paper §4.3).
///
/// Each operand (column, parameter, literal) is a node. Columns enter with
/// their concrete encryption type, parameters and literals with unknown type
/// bounded by `τ ≤ Randomized`. Equality-typed operations merge equivalence
/// classes ("equality is only allowed if both operands have the same
/// encryption type"); kind restrictions tighten a class's upper bound.
/// Conflicts are detected eagerly at merge time — no separate solver pass.
/// Unresolved classes default to Plaintext ("our preference is to solve
/// using the Plaintext type").
class EncInference {
 public:
  int AddUnknown();
  int AddKnown(types::EncryptionType type);

  /// Merges the classes of a and b; fails with TypeCheckError if their
  /// concrete types conflict or a bound is violated.
  Status Equate(int a, int b, const std::string& context);

  /// Imposes τ ≤ max on the class.
  Status RestrictKind(int v, types::EncKind max, const std::string& context);

  /// The class's resolved type (Plaintext when still unknown).
  types::EncryptionType Resolve(int v);

 private:
  struct Node {
    int parent;
    bool known = false;
    types::EncryptionType concrete;
    types::EncKind max_kind = types::EncKind::kRandomized;
  };

  int Find(int v);

  std::vector<Node> nodes_;
};

/// A statement parameter with its deduced plaintext and encryption types —
/// one row of sp_describe_parameter_encryption's output (paper §3, §4.1).
struct BoundParam {
  std::string name;
  types::TypeId type = types::TypeId::kInt64;
  bool type_known = false;
  types::EncryptionType enc;
};

/// The binder's output: the annotated statement plus everything the driver
/// needs (parameter encryption types, enclave requirements).
struct BoundStatement {
  Statement stmt;
  const TableDef* table = nullptr;
  const TableDef* join_table = nullptr;
  std::vector<BoundParam> params;
  bool requires_enclave = false;
  /// CEK ids the enclave needs installed to evaluate this statement.
  std::vector<uint32_t> enclave_ceks;
};

/// Resolves names against the catalog, deduces parameter plaintext types,
/// runs encryption-type inference, and validates AE's functionality
/// restrictions (paper §2.4.3: equality on DET; equality/range/LIKE on
/// enclave-enabled columns; nothing on enclave-disabled RND).
class Binder {
 public:
  explicit Binder(const Catalog* catalog) : catalog_(catalog) {}

  Result<BoundStatement> Bind(Statement stmt);

 private:
  struct ComparisonCheck {
    Expr* a;
    Expr* b;
    int class_var;
    es::CompareOp op;
    bool is_like;
  };

  struct Context {
    BoundStatement* out;
    EncInference inference;
    std::map<std::string, int> param_vars;    // name -> inference var
    std::map<std::string, size_t> param_ids;  // name -> index in out->params
    std::vector<ComparisonCheck> checks;      // validated post-solve
    // Param pairs whose types must match but were both unknown when compared;
    // resolved by fixpoint after binding.
    std::vector<std::pair<int, int>> type_links;
    // Binder-synthesized expressions (e.g. join predicates) referenced by
    // `checks`; deque so pointers stay stable until post-solve validation.
    std::deque<Expr> synthesized;
  };

  /// Walks the expression, annotating nodes and adding constraints. Returns
  /// the node's inference variable.
  Result<int> BindExpr(Expr* e, Context* ctx);
  Status BindComparisonPair(Expr* a, Expr* b, int va, int vb,
                            es::CompareOp op, bool is_like, Context* ctx);
  Status ValidateComparison(const ComparisonCheck& check, Context* ctx);
  Result<int> BindColumn(Expr* e, Context* ctx);
  Status UnifyTypes(Expr* a, Expr* b, Context* ctx);
  Status NoteEncryptedOperation(const types::EncryptionType& enc,
                                bool needs_enclave, Context* ctx);
  void SetParamType(const Expr* e, types::TypeId type, Context* ctx);

  const Catalog* catalog_;
};

}  // namespace aedb::sql

#endif  // AEDB_SQL_BINDER_H_
