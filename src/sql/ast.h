#ifndef AEDB_SQL_AST_H_
#define AEDB_SQL_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "es/program.h"
#include "types/encryption_type.h"
#include "types/value.h"

namespace aedb::sql {

/// Expression tree produced by the parser and annotated by the binder.
struct Expr {
  enum class Kind : uint8_t {
    kLiteral,
    kColumn,
    kParam,
    kCompare,  // a cmp b
    kLike,     // a LIKE b
    kBetween,  // a BETWEEN b AND c
    kAnd,
    kOr,
    kNot,
    kIsNull,   // a IS [NOT] NULL
    kArith,    // a op b  (op in + - * /)
    kNeg,
  };

  Kind kind;
  types::Value literal;    // kLiteral
  std::string column;      // kColumn: [table.]name as written
  std::string param;       // kParam: name without '@'
  es::CompareOp cmp = es::CompareOp::kEq;
  char arith = '+';
  bool is_not = false;     // IS NOT NULL
  std::unique_ptr<Expr> a, b, c;

  // --- binder annotations ---
  int table_slot = 0;      // 0 = FROM table, 1 = JOIN table
  int column_index = -1;   // kColumn
  int param_index = -1;    // kParam: position in the statement's param list
  types::TypeId type = types::TypeId::kInt64;
  types::EncryptionType enc;
};

using ExprPtr = std::unique_ptr<Expr>;

enum class AggFunc : uint8_t { kNone, kCount, kSum, kMin, kMax, kAvg };

struct SelectItem {
  AggFunc agg = AggFunc::kNone;
  bool star = false;        // COUNT(*) or bare '*'
  std::string column;
  std::string alias;
  int table_slot = 0;       // binder
  int column_index = -1;    // binder
};

struct SelectStmt {
  std::vector<SelectItem> items;
  bool select_all = false;
  std::string table;
  // Optional single equi-join (paper: equi-joins on DET columns).
  std::string join_table;
  std::string join_left;   // column on `table`
  std::string join_right;  // column on `join_table`
  ExprPtr where;
  std::string group_by;
  int group_by_slot = 0;
  int group_by_index = -1;  // binder
  std::string order_by;
  bool order_desc = false;
  int order_by_index = -1;  // binder (only plaintext allowed)
  int64_t limit = -1;
};

struct InsertStmt {
  std::string table;
  std::vector<std::string> columns;  // empty = all, in table order
  std::vector<std::vector<ExprPtr>> rows;
};

struct UpdateStmt {
  std::string table;
  std::vector<std::pair<std::string, ExprPtr>> sets;
  ExprPtr where;
};

struct DeleteStmt {
  std::string table;
  ExprPtr where;
};

/// ENCRYPTED WITH (...) clause on a column.
struct EncryptionSpec {
  bool encrypted = false;
  std::string cek_name;
  types::EncKind kind = types::EncKind::kRandomized;
  std::string algorithm = "AEAD_AES_256_CBC_HMAC_SHA_256";
};

struct ColumnSpec {
  std::string name;
  types::TypeId type = types::TypeId::kInt32;
  bool not_null = false;
  EncryptionSpec enc;
};

struct CreateTableStmt {
  std::string name;
  std::vector<ColumnSpec> columns;
};

struct CreateIndexStmt {
  std::string name;
  std::string table;
  std::string column;
  bool unique = false;
};

struct CreateCmkStmt {
  std::string name;
  std::string provider;
  std::string key_path;
  bool enclave_computations = false;
  Bytes signature;
};

struct CreateCekStmt {
  std::string name;
  std::string cmk;
  std::string algorithm = "RSA_OAEP";
  Bytes encrypted_value;
  Bytes signature;
};

/// ALTER TABLE t ALTER COLUMN c <type> [ENCRYPTED WITH (...)]. Drives online
/// initial encryption, key rotation, and decryption through the enclave
/// (paper §2.4.2).
struct AlterColumnStmt {
  std::string table;
  std::string column;
  types::TypeId type = types::TypeId::kInt32;
  EncryptionSpec enc;  // target state; !encrypted = remove encryption
};

struct DropStmt {
  bool is_index = false;
  std::string name;
};

struct Statement {
  enum class Kind : uint8_t {
    kSelect,
    kInsert,
    kUpdate,
    kDelete,
    kCreateTable,
    kCreateIndex,
    kCreateCmk,
    kCreateCek,
    kAlterColumn,
    kDrop,
  };
  Kind kind = Kind::kSelect;
  std::unique_ptr<SelectStmt> select;
  std::unique_ptr<InsertStmt> insert;
  std::unique_ptr<UpdateStmt> update;
  std::unique_ptr<DeleteStmt> del;
  std::unique_ptr<CreateTableStmt> create_table;
  std::unique_ptr<CreateIndexStmt> create_index;
  std::unique_ptr<CreateCmkStmt> create_cmk;
  std::unique_ptr<CreateCekStmt> create_cek;
  std::unique_ptr<AlterColumnStmt> alter_column;
  std::unique_ptr<DropStmt> drop;
};

}  // namespace aedb::sql

#endif  // AEDB_SQL_AST_H_
