#include "sql/lexer.h"

#include <cctype>

namespace aedb::sql {

namespace {
bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // -- line comments
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    Token tok;
    tok.offset = i;
    // Hex literal 0x...
    if (c == '0' && i + 1 < n && (sql[i + 1] == 'x' || sql[i + 1] == 'X')) {
      size_t start = i + 2;
      size_t j = start;
      while (j < n && std::isxdigit(static_cast<unsigned char>(sql[j]))) ++j;
      tok.type = TokenType::kHexLiteral;
      auto decoded = HexDecode(sql.substr(start, j - start));
      if (!decoded.ok()) {
        return Status::InvalidArgument("bad hex literal at offset " +
                                       std::to_string(i));
      }
      tok.hex = *decoded;
      i = j;
      tokens.push_back(std::move(tok));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      bool is_float = false;
      while (j < n && (std::isdigit(static_cast<unsigned char>(sql[j])) ||
                       sql[j] == '.')) {
        if (sql[j] == '.') is_float = true;
        ++j;
      }
      tok.type = TokenType::kNumber;
      tok.text = std::string(sql.substr(i, j - i));
      tok.is_float = is_float;
      i = j;
      tokens.push_back(std::move(tok));
      continue;
    }
    // String literal, optionally N-prefixed.
    if (c == '\'' || ((c == 'N' || c == 'n') && i + 1 < n && sql[i + 1] == '\'')) {
      size_t j = c == '\'' ? i + 1 : i + 2;
      std::string value;
      bool closed = false;
      while (j < n) {
        if (sql[j] == '\'') {
          if (j + 1 < n && sql[j + 1] == '\'') {  // escaped quote
            value.push_back('\'');
            j += 2;
            continue;
          }
          closed = true;
          ++j;
          break;
        }
        value.push_back(sql[j]);
        ++j;
      }
      if (!closed) {
        return Status::InvalidArgument("unterminated string literal");
      }
      tok.type = TokenType::kString;
      tok.text = std::move(value);
      i = j;
      tokens.push_back(std::move(tok));
      continue;
    }
    if (c == '@') {
      size_t j = i + 1;
      while (j < n && IsIdentChar(sql[j])) ++j;
      if (j == i + 1) return Status::InvalidArgument("bare '@'");
      tok.type = TokenType::kParam;
      tok.text = std::string(sql.substr(i + 1, j - i - 1));
      i = j;
      tokens.push_back(std::move(tok));
      continue;
    }
    // Bracket-quoted identifier [name].
    if (c == '[') {
      size_t j = i + 1;
      while (j < n && sql[j] != ']') ++j;
      if (j == n) return Status::InvalidArgument("unterminated [identifier]");
      tok.type = TokenType::kIdentifier;
      tok.text = std::string(sql.substr(i + 1, j - i - 1));
      i = j + 1;
    } else if (IsIdentStart(c)) {
      size_t j = i;
      while (j < n && IsIdentChar(sql[j])) ++j;
      tok.type = TokenType::kIdentifier;
      tok.text = std::string(sql.substr(i, j - i));
      i = j;
    } else {
      // Multi-char symbols first.
      std::string_view rest = sql.substr(i);
      tok.type = TokenType::kSymbol;
      if (rest.substr(0, 2) == "<=" || rest.substr(0, 2) == ">=" ||
          rest.substr(0, 2) == "<>" || rest.substr(0, 2) == "!=") {
        tok.text = std::string(rest.substr(0, 2));
        i += 2;
      } else if (std::string_view("(),.=<>+-*/;").find(c) !=
                 std::string_view::npos) {
        tok.text = std::string(1, c);
        ++i;
      } else {
        return Status::InvalidArgument("unexpected character '" +
                                       std::string(1, c) + "' at offset " +
                                       std::to_string(i));
      }
      tokens.push_back(std::move(tok));
      continue;
    }
    tok.upper = tok.text;
    for (char& ch : tok.upper) ch = static_cast<char>(std::toupper(
        static_cast<unsigned char>(ch)));
    tokens.push_back(std::move(tok));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.offset = n;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace aedb::sql
