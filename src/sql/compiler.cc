#include "sql/compiler.h"

namespace aedb::sql {

using types::EncKind;
using types::TypeId;

namespace {

/// Does this predicate atom need the enclave? (Set by the binder: encrypted
/// operands that are not host-comparable DET equality.)
bool IsEnclaveAtom(const Expr* e) {
  const Expr* operand = e->a.get();
  if (operand == nullptr || !operand->enc.is_encrypted()) return false;
  switch (e->kind) {
    case Expr::Kind::kCompare:
      return !(operand->enc.kind == EncKind::kDeterministic &&
               (e->cmp == es::CompareOp::kEq || e->cmp == es::CompareOp::kNe));
    case Expr::Kind::kLike:
    case Expr::Kind::kBetween:
    case Expr::Kind::kIsNull:
      return true;
    default:
      return false;
  }
}

class PredicateCompiler {
 public:
  PredicateCompiler(const InputLayout& layout,
                    const std::vector<BoundParam>& params)
      : layout_(layout), params_(params) {}

  Status Emit(const Expr* e, es::EsProgram* p);
  Status EmitValue(const Expr* e, es::EsProgram* p);

 private:
  /// Emits a plaintext-context operand (column/param/literal/arithmetic).
  Status EmitOperand(const Expr* e, es::EsProgram* p, bool as_binary);
  /// Emits a predicate atom whose operands must be shipped to the enclave.
  Status EmitEnclaveAtom(const Expr* e, es::EsProgram* host);
  /// Collects the leaf operands of an encrypted atom in evaluation order.
  Status CollectLeaves(const Expr* e, std::vector<const Expr*>* leaves);

  Result<size_t> HostSlot(const Expr* leaf) const;
  TypeId LeafType(const Expr* leaf) const;

  const InputLayout& layout_;
  const std::vector<BoundParam>& params_;
};

Result<size_t> PredicateCompiler::HostSlot(const Expr* leaf) const {
  switch (leaf->kind) {
    case Expr::Kind::kColumn:
      return layout_.ColumnSlot(leaf->table_slot, leaf->column_index);
    case Expr::Kind::kParam:
      return layout_.ParamSlot(leaf->param_index);
    default:
      return Status::Internal("not a slotted operand");
  }
}

TypeId PredicateCompiler::LeafType(const Expr* leaf) const {
  if (leaf->kind == Expr::Kind::kParam) return params_[leaf->param_index].type;
  return leaf->type;
}

Status PredicateCompiler::EmitOperand(const Expr* e, es::EsProgram* p,
                                      bool as_binary) {
  switch (e->kind) {
    case Expr::Kind::kColumn:
    case Expr::Kind::kParam: {
      size_t slot;
      AEDB_ASSIGN_OR_RETURN(slot, HostSlot(e));
      // Ciphertext is opaque VARBINARY to the host; the annotation is always
      // plaintext here — the host never decrypts.
      p->GetData(static_cast<uint32_t>(slot),
                 as_binary ? TypeId::kBinary : LeafType(e));
      return Status::OK();
    }
    case Expr::Kind::kLiteral:
      p->Const(e->literal);
      return Status::OK();
    case Expr::Kind::kArith: {
      AEDB_RETURN_IF_ERROR(EmitOperand(e->a.get(), p, false));
      AEDB_RETURN_IF_ERROR(EmitOperand(e->b.get(), p, false));
      switch (e->arith) {
        case '+': p->Arith(es::OpCode::kAdd); break;
        case '-': p->Arith(es::OpCode::kSub); break;
        case '*': p->Arith(es::OpCode::kMul); break;
        default: p->Arith(es::OpCode::kDiv); break;
      }
      return Status::OK();
    }
    case Expr::Kind::kNeg:
      AEDB_RETURN_IF_ERROR(EmitOperand(e->a.get(), p, false));
      p->Arith(es::OpCode::kNeg);
      return Status::OK();
    default:
      return Status::Internal("unexpected operand kind in compiler");
  }
}

Status PredicateCompiler::CollectLeaves(const Expr* e,
                                        std::vector<const Expr*>* leaves) {
  switch (e->kind) {
    case Expr::Kind::kColumn:
    case Expr::Kind::kParam:
      leaves->push_back(e);
      return Status::OK();
    default:
      // Encrypted atoms only ever have column/param operands — arithmetic
      // over ciphertext is rejected by the binder.
      return Status::Internal("encrypted atom has a non-slot operand");
  }
}

Status PredicateCompiler::EmitEnclaveAtom(const Expr* e, es::EsProgram* host) {
  std::vector<const Expr*> leaves;
  AEDB_RETURN_IF_ERROR(CollectLeaves(e->a.get(), &leaves));
  if (e->kind != Expr::Kind::kIsNull) {
    AEDB_RETURN_IF_ERROR(CollectLeaves(e->b.get(), &leaves));
  }
  if (e->kind == Expr::Kind::kBetween) {
    AEDB_RETURN_IF_ERROR(CollectLeaves(e->c.get(), &leaves));
  }

  // Host side: push each leaf's raw (ciphertext) bytes.
  for (const Expr* leaf : leaves) {
    AEDB_RETURN_IF_ERROR(EmitOperand(leaf, host, /*as_binary=*/true));
  }

  // Enclave side: decrypt-at-GetData, evaluate, return one clear boolean.
  es::EsProgram inner;
  auto get = [&](uint32_t i) {
    const Expr* leaf = leaves[i];
    inner.GetData(i, LeafType(leaf), leaf->enc);
  };
  switch (e->kind) {
    case Expr::Kind::kCompare:
      get(0);
      get(1);
      inner.Comp(e->cmp);
      break;
    case Expr::Kind::kLike:
      get(0);
      get(1);
      inner.Like();
      break;
    case Expr::Kind::kBetween:
      get(0);
      get(1);
      inner.Comp(es::CompareOp::kGe);
      get(0);
      get(2);
      inner.Comp(es::CompareOp::kLe);
      inner.Logic(es::OpCode::kAnd);
      break;
    case Expr::Kind::kIsNull:
      get(0);
      inner.IsNull();
      if (e->is_not) inner.Logic(es::OpCode::kNot);
      break;
    default:
      return Status::Internal("not an enclave atom");
  }
  inner.SetData(0, TypeId::kBool);

  host->TMEval(inner, static_cast<uint32_t>(leaves.size()), 1);
  return Status::OK();
}

Status PredicateCompiler::Emit(const Expr* e, es::EsProgram* p) {
  switch (e->kind) {
    case Expr::Kind::kAnd:
      AEDB_RETURN_IF_ERROR(Emit(e->a.get(), p));
      AEDB_RETURN_IF_ERROR(Emit(e->b.get(), p));
      p->Logic(es::OpCode::kAnd);
      return Status::OK();
    case Expr::Kind::kOr:
      AEDB_RETURN_IF_ERROR(Emit(e->a.get(), p));
      AEDB_RETURN_IF_ERROR(Emit(e->b.get(), p));
      p->Logic(es::OpCode::kOr);
      return Status::OK();
    case Expr::Kind::kNot:
      AEDB_RETURN_IF_ERROR(Emit(e->a.get(), p));
      p->Logic(es::OpCode::kNot);
      return Status::OK();
    case Expr::Kind::kCompare: {
      if (IsEnclaveAtom(e)) return EmitEnclaveAtom(e, p);
      // DET equality compiles to a VARBINARY comparison (paper §4.4).
      bool det = e->a->enc.is_encrypted();
      AEDB_RETURN_IF_ERROR(EmitOperand(e->a.get(), p, det));
      AEDB_RETURN_IF_ERROR(EmitOperand(e->b.get(), p, det));
      p->Comp(e->cmp);
      return Status::OK();
    }
    case Expr::Kind::kLike: {
      if (IsEnclaveAtom(e)) return EmitEnclaveAtom(e, p);
      AEDB_RETURN_IF_ERROR(EmitOperand(e->a.get(), p, false));
      AEDB_RETURN_IF_ERROR(EmitOperand(e->b.get(), p, false));
      p->Like();
      return Status::OK();
    }
    case Expr::Kind::kBetween: {
      if (IsEnclaveAtom(e)) return EmitEnclaveAtom(e, p);
      AEDB_RETURN_IF_ERROR(EmitOperand(e->a.get(), p, false));
      AEDB_RETURN_IF_ERROR(EmitOperand(e->b.get(), p, false));
      p->Comp(es::CompareOp::kGe);
      AEDB_RETURN_IF_ERROR(EmitOperand(e->a.get(), p, false));
      AEDB_RETURN_IF_ERROR(EmitOperand(e->c.get(), p, false));
      p->Comp(es::CompareOp::kLe);
      p->Logic(es::OpCode::kAnd);
      return Status::OK();
    }
    case Expr::Kind::kIsNull: {
      if (IsEnclaveAtom(e)) return EmitEnclaveAtom(e, p);
      AEDB_RETURN_IF_ERROR(EmitOperand(e->a.get(), p, false));
      p->IsNull();
      if (e->is_not) p->Logic(es::OpCode::kNot);
      return Status::OK();
    }
    case Expr::Kind::kColumn:
    case Expr::Kind::kParam:
    case Expr::Kind::kLiteral:
      // Bare boolean operand used as a predicate.
      return EmitOperand(e, p, false);
    default:
      return Status::Internal("unexpected predicate node");
  }
}

Status PredicateCompiler::EmitValue(const Expr* e, es::EsProgram* p) {
  bool binary = e->enc.is_encrypted();
  AEDB_RETURN_IF_ERROR(EmitOperand(e, p, binary));
  p->SetData(0, binary ? TypeId::kBinary : e->type);
  return Status::OK();
}

}  // namespace

Result<es::EsProgram> CompilePredicate(const Expr* where,
                                       const InputLayout& layout,
                                       const std::vector<BoundParam>& params) {
  es::EsProgram program;
  if (where == nullptr) {
    program.Const(types::Value::Bool(true));
    program.SetData(0, TypeId::kBool);
    return program;
  }
  PredicateCompiler compiler(layout, params);
  AEDB_RETURN_IF_ERROR(compiler.Emit(where, &program));
  program.SetData(0, TypeId::kBool);
  return program;
}

Result<es::EsProgram> CompileValueExpr(const Expr* expr,
                                       const InputLayout& layout,
                                       const std::vector<BoundParam>& params) {
  es::EsProgram program;
  PredicateCompiler compiler(layout, params);
  AEDB_RETURN_IF_ERROR(compiler.EmitValue(expr, &program));
  return program;
}

}  // namespace aedb::sql
