#include "sql/catalog.h"

#include <algorithm>

namespace aedb::sql {

namespace {
std::string Lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}
}  // namespace

int TableDef::FindColumn(std::string_view column_name) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (Lower(columns[i].name) == Lower(column_name)) return static_cast<int>(i);
  }
  return -1;
}

Result<const TableDef*> Catalog::CreateTable(TableDef def) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string key = Lower(def.name);
  if (tables_.count(key) > 0) {
    return Status::AlreadyExists("table exists: " + def.name);
  }
  def.id = next_table_id_++;
  auto [it, ok] = tables_.emplace(key, std::move(def));
  (void)ok;
  return &it->second;
}

Result<const TableDef*> Catalog::GetTable(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(Lower(name));
  if (it == tables_.end()) return Status::NotFound("no such table: " + std::string(name));
  return &it->second;
}

const TableDef* Catalog::GetTableById(uint32_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, def] : tables_) {
    if (def.id == id) return &def;
  }
  return nullptr;
}

Status Catalog::DropTable(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (tables_.erase(Lower(name)) == 0) return Status::NotFound("no such table");
  return Status::OK();
}

Status Catalog::AlterColumn(std::string_view table, int column,
                            const ColumnDef& def) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(Lower(table));
  if (it == tables_.end()) return Status::NotFound("no such table");
  if (column < 0 || column >= static_cast<int>(it->second.columns.size())) {
    return Status::InvalidArgument("column index out of range");
  }
  it->second.columns[column] = def;
  return Status::OK();
}

Result<const IndexDef*> Catalog::CreateIndex(IndexDef def) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string key = Lower(def.name);
  if (indexes_.count(key) > 0) {
    return Status::AlreadyExists("index exists: " + def.name);
  }
  def.id = next_index_id_++;
  auto [it, ok] = indexes_.emplace(key, std::move(def));
  (void)ok;
  return &it->second;
}

Status Catalog::DropIndex(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (indexes_.erase(Lower(name)) == 0) return Status::NotFound("no such index");
  return Status::OK();
}

Result<const IndexDef*> Catalog::GetIndex(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = indexes_.find(Lower(name));
  if (it == indexes_.end()) return Status::NotFound("no such index");
  return &it->second;
}

const IndexDef* Catalog::GetIndexById(uint32_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, def] : indexes_) {
    if (def.id == id) return &def;
  }
  return nullptr;
}

std::vector<const IndexDef*> Catalog::TableIndexes(uint32_t table_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const IndexDef*> out;
  for (const auto& [name, def] : indexes_) {
    if (def.table_id == table_id) out.push_back(&def);
  }
  return out;
}

const IndexDef* Catalog::FindIndexOn(uint32_t table_id, int column,
                                     IndexKind kind) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, def] : indexes_) {
    if (def.table_id == table_id && def.column == column && def.kind == kind) {
      return &def;
    }
  }
  return nullptr;
}

void Catalog::ForceNextIds(uint32_t table_id, uint32_t index_id,
                           uint32_t cek_id) {
  std::lock_guard<std::mutex> lock(mu_);
  next_table_id_ = table_id;
  next_index_id_ = index_id;
  next_cek_id_ = cek_id;
}

Status Catalog::AddCmk(keys::CmkInfo cmk) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string key = Lower(cmk.name);
  if (cmks_.count(key) > 0) return Status::AlreadyExists("CMK exists");
  cmks_.emplace(key, std::move(cmk));
  return Status::OK();
}

Result<const keys::CmkInfo*> Catalog::GetCmk(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cmks_.find(Lower(name));
  if (it == cmks_.end()) return Status::NotFound("no such CMK: " + std::string(name));
  return &it->second;
}

Result<uint32_t> Catalog::AddCek(keys::CekInfo cek) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string key = Lower(cek.name);
  if (ceks_.count(key) > 0) return Status::AlreadyExists("CEK exists");
  for (const keys::CekValue& v : cek.values) {
    if (cmks_.count(Lower(v.cmk_name)) == 0) {
      return Status::NotFound("CEK references unknown CMK: " + v.cmk_name);
    }
  }
  uint32_t id = next_cek_id_++;
  cek_ids_[key] = id;
  cek_names_[id] = key;
  ceks_.emplace(key, std::move(cek));
  return id;
}

Result<const keys::CekInfo*> Catalog::GetCek(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ceks_.find(Lower(name));
  if (it == ceks_.end()) return Status::NotFound("no such CEK: " + std::string(name));
  return &it->second;
}

const keys::CekInfo* Catalog::GetCekById(uint32_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto name_it = cek_names_.find(id);
  if (name_it == cek_names_.end()) return nullptr;
  auto it = ceks_.find(name_it->second);
  return it == ceks_.end() ? nullptr : &it->second;
}

Result<uint32_t> Catalog::CekIdByName(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cek_ids_.find(Lower(name));
  if (it == cek_ids_.end()) return Status::NotFound("no such CEK");
  return it->second;
}

Result<bool> Catalog::CekEnclaveEnabled(uint32_t cek_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto name_it = cek_names_.find(cek_id);
  if (name_it == cek_names_.end()) return Status::NotFound("no such CEK id");
  const keys::CekInfo& cek = ceks_.at(name_it->second);
  if (cek.values.empty()) return false;
  auto cmk_it = cmks_.find(Lower(cek.values[0].cmk_name));
  if (cmk_it == cmks_.end()) return Status::NotFound("CEK's CMK missing");
  return cmk_it->second.enclave_enabled;
}

Status Catalog::UpdateCek(const keys::CekInfo& cek) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ceks_.find(Lower(cek.name));
  if (it == ceks_.end()) return Status::NotFound("no such CEK");
  it->second = cek;
  return Status::OK();
}

Bytes EncodeRow(const std::vector<types::Value>& row) {
  Bytes out;
  for (const types::Value& v : row) v.EncodeTo(&out);
  return out;
}

Result<std::vector<types::Value>> DecodeRow(Slice record, size_t num_columns) {
  std::vector<types::Value> row;
  row.reserve(num_columns);
  size_t off = 0;
  for (size_t i = 0; i < num_columns; ++i) {
    types::Value v;
    AEDB_ASSIGN_OR_RETURN(v, types::Value::Decode(record, &off));
    row.push_back(std::move(v));
  }
  if (off != record.size()) {
    return Status::Corruption("row has trailing bytes");
  }
  return row;
}

}  // namespace aedb::sql
