#ifndef AEDB_SQL_PARSER_H_
#define AEDB_SQL_PARSER_H_

#include <string>

#include "sql/ast.h"
#include "sql/lexer.h"

namespace aedb::sql {

/// \brief Recursive-descent parser for the AE SQL dialect.
///
/// Supported grammar (keywords case-insensitive):
///   SELECT {* | item[, ...]} FROM t [JOIN t2 ON a = b] [WHERE pred]
///     [GROUP BY col] [ORDER BY col [ASC|DESC]] [LIMIT n]
///   item     := col | COUNT(*) | COUNT(col) | SUM(col) | MIN(col) | MAX(col)
///             | AVG(col) [AS alias]
///   INSERT INTO t [(col, ...)] VALUES (expr, ...)[, (...)]
///   UPDATE t SET col = expr[, ...] [WHERE pred]
///   DELETE FROM t [WHERE pred]
///   CREATE TABLE t (col type [NOT NULL] [ENCRYPTED WITH (
///       COLUMN_ENCRYPTION_KEY = cek, ENCRYPTION_TYPE = {RANDOMIZED |
///       DETERMINISTIC}, ALGORITHM = '...')], ...)
///   CREATE [UNIQUE] INDEX i ON t (col)
///   CREATE COLUMN MASTER KEY m WITH (KEY_STORE_PROVIDER_NAME = '...',
///       KEY_PATH = '...'[, ENCLAVE_COMPUTATIONS (SIGNATURE = 0x...)])
///   CREATE COLUMN ENCRYPTION KEY k WITH VALUES (COLUMN_MASTER_KEY = m,
///       ALGORITHM = 'RSA_OAEP', ENCRYPTED_VALUE = 0x...[, SIGNATURE = 0x...])
///   ALTER TABLE t ALTER COLUMN c type [ENCRYPTED WITH (...)]
///   DROP {TABLE | INDEX} name
///   pred := or-chain of AND/NOT/comparison/LIKE/BETWEEN/IS [NOT] NULL
///   operand := literal | @param | col | arithmetic over these
Result<Statement> Parse(std::string_view sql);

}  // namespace aedb::sql

#endif  // AEDB_SQL_PARSER_H_
