#ifndef AEDB_SQL_EXECUTOR_H_
#define AEDB_SQL_EXECUTOR_H_

#include <map>
#include <shared_mutex>
#include <vector>

#include "es/evaluator.h"
#include "sql/binder.h"
#include "sql/compiler.h"
#include "storage/engine.h"

namespace aedb::sql {

/// Query results: column headers plus rows of values. Encrypted columns come
/// back as kBinary cells — the server never holds their plaintext; the
/// driver decrypts (paper §2.4).
struct ResultSet {
  std::vector<std::string> columns;
  /// Per-column encryption metadata ("key metadata needed to decrypt the
  /// results", §3): the driver uses this to know which cells to decrypt.
  std::vector<types::EncryptionType> column_enc;
  std::vector<std::vector<types::Value>> rows;
};

/// \brief Executes bound DML against the storage engine.
///
/// Planning is integrated: point lookups use equality indexes (DET
/// ciphertext probes) or range indexes (enclave-compared probes); range and
/// BETWEEN predicates use range indexes with residual filtering; everything
/// else is a scan + filter, with filter expressions evaluated by expression
/// services — TMEval stubs route encrypted atoms into the enclave via the
/// provided invoker.
class Executor {
 public:
  Executor(const Catalog* catalog, storage::StorageEngine* engine,
           es::EnclaveInvoker* invoker)
      : catalog_(catalog), engine_(engine), invoker_(invoker) {}

  Result<ResultSet> Select(const BoundStatement& bound,
                           const std::vector<types::Value>& params,
                           uint64_t txn);
  Result<int64_t> Insert(const BoundStatement& bound,
                         const std::vector<types::Value>& params, uint64_t txn);
  Result<int64_t> Update(const BoundStatement& bound,
                         const std::vector<types::Value>& params, uint64_t txn);
  Result<int64_t> Delete(const BoundStatement& bound,
                         const std::vector<types::Value>& params, uint64_t txn);

  /// Populates a freshly created index from its table ("an index build
  /// requires sorting of data that reveals the data ordering", §3.2).
  Status BuildIndex(const TableDef& table, const IndexDef& index, uint64_t txn);

  /// The bytes an index stores for a row's column value: the raw AEAD cell
  /// for encrypted columns, the value encoding for plaintext ones.
  static Bytes IndexKeyFor(const ColumnDef& col, const types::Value& v);

  /// Must be called whenever the plan cache is invalidated: compiled
  /// programs are keyed by bound-expression addresses owned by the plans.
  void ClearProgramCache();

 private:
  struct Candidates {
    bool use_index = false;
    std::vector<storage::Rid> rids;  // when use_index
  };

  /// Finds candidate rows for the WHERE clause of `bound` over `table`,
  /// using an index when one matches a conjunct.
  Result<Candidates> PlanAccess(const Expr* where, const TableDef& table,
                                const std::vector<types::Value>& params);

  Result<bool> EvalPredicate(const es::EsProgram& program,
                             const std::vector<types::Value>& inputs);

  /// Compiled-program cache keyed by the bound expression node (stable: the
  /// plan cache owns the bound statements) — the CEsComp-in-plan-cache of
  /// paper section 4.4.
  Result<const es::EsProgram*> CompiledFor(const Expr* expr,
                                           const InputLayout& layout,
                                           const std::vector<BoundParam>& params,
                                           bool value_expr);

  /// Reads and decodes a row.
  Result<std::vector<types::Value>> FetchRow(const TableDef& table,
                                             const storage::Rid& rid);

  /// Collects (rid, row) pairs matching the filter.
  Result<std::vector<std::pair<storage::Rid, std::vector<types::Value>>>>
  CollectMatches(const BoundStatement& bound, const Expr* where,
                 const TableDef& table,
                 const std::vector<types::Value>& params);

  Status MaintainIndexesOnInsert(const TableDef& table,
                                 const std::vector<types::Value>& row,
                                 const storage::Rid& rid, uint64_t txn);
  Status MaintainIndexesOnDelete(const TableDef& table,
                                 const std::vector<types::Value>& row,
                                 const storage::Rid& rid, uint64_t txn);

  const Catalog* catalog_;
  storage::StorageEngine* engine_;
  es::EnclaveInvoker* invoker_;

  std::shared_mutex program_cache_mu_;
  std::map<const void*, std::unique_ptr<es::EsProgram>> program_cache_;
};

/// Orders a plaintext index by decoded Value comparison (NULLs first).
class ValueComparator : public storage::Comparator {
 public:
  Result<int> Compare(Slice a, Slice b) const override;
  const char* Name() const override { return "value"; }
};

}  // namespace aedb::sql

#endif  // AEDB_SQL_EXECUTOR_H_
