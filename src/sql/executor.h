#ifndef AEDB_SQL_EXECUTOR_H_
#define AEDB_SQL_EXECUTOR_H_

#include <list>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "es/evaluator.h"
#include "sql/binder.h"
#include "sql/compiler.h"
#include "storage/engine.h"

namespace aedb::sql {

/// Query results: column headers plus rows of values. Encrypted columns come
/// back as kBinary cells — the server never holds their plaintext; the
/// driver decrypts (paper §2.4).
struct ResultSet {
  std::vector<std::string> columns;
  /// Per-column encryption metadata ("key metadata needed to decrypt the
  /// results", §3): the driver uses this to know which cells to decrypt.
  std::vector<types::EncryptionType> column_enc;
  std::vector<std::vector<types::Value>> rows;
};

/// \brief Executes bound DML against the storage engine.
///
/// Planning is integrated: point lookups use equality indexes (DET
/// ciphertext probes) or range indexes (enclave-compared probes); range and
/// BETWEEN predicates use range indexes with residual filtering; everything
/// else is a scan + filter, with filter expressions evaluated by expression
/// services — TMEval stubs route encrypted atoms into the enclave via the
/// provided invoker.
class Executor {
 public:
  Executor(const Catalog* catalog, storage::StorageEngine* engine,
           es::EnclaveInvoker* invoker)
      : catalog_(catalog), engine_(engine), invoker_(invoker) {}

  Result<ResultSet> Select(const BoundStatement& bound,
                           const std::vector<types::Value>& params,
                           uint64_t txn);
  Result<int64_t> Insert(const BoundStatement& bound,
                         const std::vector<types::Value>& params, uint64_t txn);
  Result<int64_t> Update(const BoundStatement& bound,
                         const std::vector<types::Value>& params, uint64_t txn);
  Result<int64_t> Delete(const BoundStatement& bound,
                         const std::vector<types::Value>& params, uint64_t txn);

  /// Populates a freshly created index from its table ("an index build
  /// requires sorting of data that reveals the data ordering", §3.2).
  Status BuildIndex(const TableDef& table, const IndexDef& index, uint64_t txn);

  /// The bytes an index stores for a row's column value: the raw AEAD cell
  /// for encrypted columns, the value encoding for plaintext ones.
  static Bytes IndexKeyFor(const ColumnDef& col, const types::Value& v);

  /// Drops all cached compiled programs (schema changes invalidate the
  /// encryption annotations baked into them).
  void ClearProgramCache();

  /// Rows per morsel for batched predicate evaluation: the executor buffers
  /// up to this many candidate rows and evaluates the filter over all of
  /// them with ONE enclave round trip (paper §4.6 amortization). 1 degrades
  /// to the row-at-a-time path; results are identical at any size.
  void set_batch_size(size_t n) { batch_size_ = n == 0 ? 1 : n; }
  size_t batch_size() const { return batch_size_; }

 private:
  struct Candidates {
    bool use_index = false;
    std::vector<storage::Rid> rids;  // when use_index
  };

  /// Finds candidate rows for the WHERE clause of `bound` over `table`,
  /// using an index when one matches a conjunct.
  Result<Candidates> PlanAccess(const Expr* where, const TableDef& table,
                                const std::vector<types::Value>& params);

  Result<bool> EvalPredicate(const es::EsProgram& program,
                             const std::vector<types::Value>& inputs);

  /// Batched EvalPredicate over a morsel: one EsEvaluator::EvalBatch run, so
  /// every encrypted atom in the filter crosses the enclave boundary once
  /// for the whole morsel. pass[i] applies SQL semantics (NULL fails).
  Result<std::vector<char>> EvalPredicateBatch(
      const es::EsProgram& program,
      const std::vector<std::vector<types::Value>>& batch);

  /// Compiled-program cache — the CEsComp-in-plan-cache of paper §4.4.
  /// Keyed by a fingerprint of (expression shape + binder annotations, input
  /// layout, parameter types, compile mode) rather than the Expr* address:
  /// re-parsed statements with identical shapes share an entry, and distinct
  /// expressions can never collide on a recycled pointer. Bounded by LRU
  /// eviction; shared_ptr returns keep an evicted program alive for callers
  /// mid-statement.
  Result<std::shared_ptr<const es::EsProgram>> CompiledFor(
      const Expr* expr, const InputLayout& layout,
      const std::vector<BoundParam>& params, bool value_expr);

  /// Reads and decodes a row.
  Result<std::vector<types::Value>> FetchRow(const TableDef& table,
                                             const storage::Rid& rid);

  /// Collects (rid, row) pairs matching the filter.
  Result<std::vector<std::pair<storage::Rid, std::vector<types::Value>>>>
  CollectMatches(const BoundStatement& bound, const Expr* where,
                 const TableDef& table,
                 const std::vector<types::Value>& params);

  Status MaintainIndexesOnInsert(const TableDef& table,
                                 const std::vector<types::Value>& row,
                                 const storage::Rid& rid, uint64_t txn);
  Status MaintainIndexesOnDelete(const TableDef& table,
                                 const std::vector<types::Value>& row,
                                 const storage::Rid& rid, uint64_t txn);

  const Catalog* catalog_;
  storage::StorageEngine* engine_;
  es::EnclaveInvoker* invoker_;
  size_t batch_size_ = 256;

  static constexpr size_t kProgramCacheCap = 128;
  struct CacheEntry {
    std::shared_ptr<const es::EsProgram> program;
    std::list<std::string>::iterator lru_it;
  };
  std::shared_mutex program_cache_mu_;
  std::map<std::string, CacheEntry> program_cache_;
  std::list<std::string> lru_;  // front = most recently used
};

/// Orders a plaintext index by decoded Value comparison (NULLs first).
class ValueComparator : public storage::Comparator {
 public:
  Result<int> Compare(Slice a, Slice b) const override;
  const char* Name() const override { return "value"; }
};

}  // namespace aedb::sql

#endif  // AEDB_SQL_EXECUTOR_H_
