#include "sql/binder.h"

#include <algorithm>

namespace aedb::sql {

using types::EncKind;
using types::EncryptionType;
using types::TypeId;

// ---------------------------------------------------------------------------
// EncInference

int EncInference::AddUnknown() {
  Node n;
  n.parent = static_cast<int>(nodes_.size());
  nodes_.push_back(n);
  return n.parent;
}

int EncInference::AddKnown(EncryptionType type) {
  Node n;
  n.parent = static_cast<int>(nodes_.size());
  n.known = true;
  n.concrete = type;
  nodes_.push_back(n);
  return n.parent;
}

int EncInference::Find(int v) {
  while (nodes_[v].parent != v) {
    nodes_[v].parent = nodes_[nodes_[v].parent].parent;  // path halving
    v = nodes_[v].parent;
  }
  return v;
}

Status EncInference::Equate(int a, int b, const std::string& context) {
  int ra = Find(a), rb = Find(b);
  if (ra == rb) return Status::OK();
  Node& na = nodes_[ra];
  Node& nb = nodes_[rb];
  if (na.known && nb.known) {
    if (!(na.concrete == nb.concrete)) {
      return Status::TypeCheckError(
          context + ": operands have different encryption types (" +
          na.concrete.ToString() + " vs " + nb.concrete.ToString() + ")");
    }
  }
  // Merge rb into ra, combining knowledge and bounds.
  if (!na.known && nb.known) {
    na.known = true;
    na.concrete = nb.concrete;
  }
  na.max_kind = types::EncKindLeq(na.max_kind, nb.max_kind) ? na.max_kind
                                                            : nb.max_kind;
  if (na.known && !types::EncKindLeq(na.concrete.kind, na.max_kind)) {
    return Status::TypeCheckError(context + ": encryption type " +
                                  na.concrete.ToString() +
                                  " exceeds the operation's bound");
  }
  nodes_[rb].parent = ra;
  return Status::OK();
}

Status EncInference::RestrictKind(int v, EncKind max, const std::string& context) {
  int r = Find(v);
  Node& n = nodes_[r];
  n.max_kind = types::EncKindLeq(n.max_kind, max) ? n.max_kind : max;
  if (n.known && !types::EncKindLeq(n.concrete.kind, n.max_kind)) {
    return Status::TypeCheckError(context + ": " + n.concrete.ToString() +
                                  " not allowed here (bound " +
                                  types::EncKindName(max) + ")");
  }
  return Status::OK();
}

EncryptionType EncInference::Resolve(int v) {
  Node& n = nodes_[Find(v)];
  // Multiple solutions resolve to Plaintext (paper §4.3).
  return n.known ? n.concrete : EncryptionType::Plaintext();
}

// ---------------------------------------------------------------------------
// Binder

namespace {

/// Splits "t.col" into (qualifier, column).
std::pair<std::string, std::string> SplitColumn(const std::string& name) {
  size_t dot = name.find('.');
  if (dot == std::string::npos) return {"", name};
  return {name.substr(0, dot), name.substr(dot + 1)};
}

std::string LowerStr(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

bool TypesCompatible(TypeId a, TypeId b) {
  if (a == b) return true;
  auto numeric = [](TypeId t) {
    return t == TypeId::kInt32 || t == TypeId::kInt64 || t == TypeId::kDouble;
  };
  return numeric(a) && numeric(b);
}

}  // namespace

Result<int> Binder::BindColumn(Expr* e, Context* ctx) {
  auto [qualifier, column] = SplitColumn(e->column);
  const TableDef* table = ctx->out->table;
  int slot = 0;
  if (!qualifier.empty()) {
    if (ctx->out->table != nullptr &&
        LowerStr(qualifier) == LowerStr(ctx->out->table->name)) {
      table = ctx->out->table;
      slot = 0;
    } else if (ctx->out->join_table != nullptr &&
               LowerStr(qualifier) == LowerStr(ctx->out->join_table->name)) {
      table = ctx->out->join_table;
      slot = 1;
    } else {
      return Status::NotFound("unknown table qualifier: " + qualifier);
    }
    int idx = table->FindColumn(column);
    if (idx < 0) return Status::NotFound("no such column: " + e->column);
    e->table_slot = slot;
    e->column_index = idx;
  } else {
    int idx = table != nullptr ? table->FindColumn(column) : -1;
    if (idx >= 0) {
      e->table_slot = 0;
      e->column_index = idx;
    } else if (ctx->out->join_table != nullptr) {
      idx = ctx->out->join_table->FindColumn(column);
      if (idx < 0) return Status::NotFound("no such column: " + column);
      table = ctx->out->join_table;
      e->table_slot = 1;
      e->column_index = idx;
    } else {
      return Status::NotFound("no such column: " + column);
    }
  }
  const ColumnDef& def = (e->table_slot == 0 ? ctx->out->table
                                             : ctx->out->join_table)
                             ->columns[e->column_index];
  e->type = def.type;
  e->enc = def.enc;
  return ctx->inference.AddKnown(def.enc);
}

void Binder::SetParamType(const Expr* e, TypeId type, Context* ctx) {
  if (e->kind != Expr::Kind::kParam) return;
  BoundParam& p = ctx->out->params[e->param_index];
  if (!p.type_known) {
    p.type = type;
    p.type_known = true;
  }
}

Status Binder::UnifyTypes(Expr* a, Expr* b, Context* ctx) {
  auto node_type = [&](Expr* e, TypeId* t) -> bool {  // returns known?
    if (e->kind == Expr::Kind::kParam) {
      const BoundParam& p = ctx->out->params[e->param_index];
      *t = p.type;
      return p.type_known;
    }
    *t = e->type;
    return true;
  };
  TypeId ta, tb;
  bool ka = node_type(a, &ta);
  bool kb = node_type(b, &tb);
  if (ka && kb) {
    if (!TypesCompatible(ta, tb)) {
      return Status::TypeCheckError(std::string("cannot compare ") +
                                    types::TypeIdName(ta) + " with " +
                                    types::TypeIdName(tb));
    }
    return Status::OK();
  }
  if (ka) {
    SetParamType(b, ta, ctx);
    b->type = ta;
    return Status::OK();
  }
  if (kb) {
    SetParamType(a, tb, ctx);
    a->type = tb;
    return Status::OK();
  }
  // Both untyped parameters: a later predicate may still type one of them;
  // link and resolve by fixpoint at the end of Bind.
  if (a->kind == Expr::Kind::kParam && b->kind == Expr::Kind::kParam) {
    ctx->type_links.emplace_back(a->param_index, b->param_index);
    return Status::OK();
  }
  return Status::TypeCheckError("cannot deduce parameter types");
}

Status Binder::NoteEncryptedOperation(const EncryptionType& enc,
                                      bool needs_enclave, Context* ctx) {
  if (!needs_enclave) return Status::OK();
  ctx->out->requires_enclave = true;
  auto& list = ctx->out->enclave_ceks;
  if (std::find(list.begin(), list.end(), enc.cek_id) == list.end()) {
    list.push_back(enc.cek_id);
  }
  return Status::OK();
}

Status Binder::BindComparisonPair(Expr* a, Expr* b, int va, int vb,
                                  es::CompareOp op, bool is_like,
                                  Context* ctx) {
  AEDB_RETURN_IF_ERROR(UnifyTypes(a, b, ctx));
  AEDB_RETURN_IF_ERROR(ctx->inference.Equate(
      va, vb, is_like ? "LIKE" : std::string(es::CompareOpName(op))));
  // Validation happens after the whole statement's constraints have merged
  // (a later predicate can still bind this class to a column's type).
  ctx->checks.push_back(ComparisonCheck{a, b, va, op, is_like});
  return Status::OK();
}

Status Binder::ValidateComparison(const ComparisonCheck& check, Context* ctx) {
  EncryptionType enc = ctx->inference.Resolve(check.class_var);
  check.a->enc = enc;
  check.b->enc = enc;
  if (!enc.is_encrypted()) return Status::OK();

  bool is_equality = !check.is_like && (check.op == es::CompareOp::kEq ||
                                        check.op == es::CompareOp::kNe);
  if (!enc.enclave_enabled) {
    // Without an enclave: only equality on DET (paper §2.4.3).
    if (is_equality && enc.kind == EncKind::kDeterministic) {
      return Status::OK();  // evaluated as VARBINARY equality on the host
    }
    return Status::TypeCheckError(
        std::string(check.is_like ? "LIKE" : es::CompareOpName(check.op)) +
        " not supported on " + enc.ToString() +
        " (CEK is not enclave-enabled)");
  }
  // Enclave-enabled: equality, range and LIKE all go to the enclave —
  // except DET equality, which stays a host ciphertext comparison.
  bool needs_enclave = !(is_equality && enc.kind == EncKind::kDeterministic);
  return NoteEncryptedOperation(enc, needs_enclave, ctx);
}

Result<int> Binder::BindExpr(Expr* e, Context* ctx) {
  switch (e->kind) {
    case Expr::Kind::kLiteral:
      e->type = e->literal.type();
      e->enc = EncryptionType::Plaintext();
      return ctx->inference.AddKnown(e->enc);

    case Expr::Kind::kColumn:
      return BindColumn(e, ctx);

    case Expr::Kind::kParam: {
      auto it = ctx->param_vars.find(LowerStr(e->param));
      if (it != ctx->param_vars.end()) {
        e->param_index = static_cast<int>(ctx->param_ids[LowerStr(e->param)]);
        return it->second;
      }
      int var = ctx->inference.AddUnknown();
      ctx->param_vars[LowerStr(e->param)] = var;
      ctx->param_ids[LowerStr(e->param)] = ctx->out->params.size();
      e->param_index = static_cast<int>(ctx->out->params.size());
      BoundParam p;
      p.name = e->param;
      ctx->out->params.push_back(std::move(p));
      return var;
    }

    case Expr::Kind::kCompare: {
      int va, vb;
      AEDB_ASSIGN_OR_RETURN(va, BindExpr(e->a.get(), ctx));
      AEDB_ASSIGN_OR_RETURN(vb, BindExpr(e->b.get(), ctx));
      AEDB_RETURN_IF_ERROR(
          BindComparisonPair(e->a.get(), e->b.get(), va, vb, e->cmp, false, ctx));
      e->type = TypeId::kBool;
      e->enc = EncryptionType::Plaintext();
      return ctx->inference.AddKnown(e->enc);
    }

    case Expr::Kind::kLike: {
      int va, vb;
      AEDB_ASSIGN_OR_RETURN(va, BindExpr(e->a.get(), ctx));
      AEDB_ASSIGN_OR_RETURN(vb, BindExpr(e->b.get(), ctx));
      SetParamType(e->a.get(), TypeId::kString, ctx);
      SetParamType(e->b.get(), TypeId::kString, ctx);
      AEDB_RETURN_IF_ERROR(BindComparisonPair(e->a.get(), e->b.get(), va, vb,
                                              es::CompareOp::kEq, true, ctx));
      e->type = TypeId::kBool;
      e->enc = EncryptionType::Plaintext();
      return ctx->inference.AddKnown(e->enc);
    }

    case Expr::Kind::kBetween: {
      int va, vb, vc;
      AEDB_ASSIGN_OR_RETURN(va, BindExpr(e->a.get(), ctx));
      AEDB_ASSIGN_OR_RETURN(vb, BindExpr(e->b.get(), ctx));
      AEDB_ASSIGN_OR_RETURN(vc, BindExpr(e->c.get(), ctx));
      AEDB_RETURN_IF_ERROR(BindComparisonPair(e->a.get(), e->b.get(), va, vb,
                                              es::CompareOp::kGe, false, ctx));
      AEDB_RETURN_IF_ERROR(BindComparisonPair(e->a.get(), e->c.get(), va, vc,
                                              es::CompareOp::kLe, false, ctx));
      e->type = TypeId::kBool;
      e->enc = EncryptionType::Plaintext();
      return ctx->inference.AddKnown(e->enc);
    }

    case Expr::Kind::kAnd:
    case Expr::Kind::kOr: {
      AEDB_RETURN_IF_ERROR(BindExpr(e->a.get(), ctx).status());
      AEDB_RETURN_IF_ERROR(BindExpr(e->b.get(), ctx).status());
      e->type = TypeId::kBool;
      e->enc = EncryptionType::Plaintext();
      return ctx->inference.AddKnown(e->enc);
    }

    case Expr::Kind::kNot: {
      AEDB_RETURN_IF_ERROR(BindExpr(e->a.get(), ctx).status());
      e->type = TypeId::kBool;
      e->enc = EncryptionType::Plaintext();
      return ctx->inference.AddKnown(e->enc);
    }

    case Expr::Kind::kIsNull: {
      int va;
      AEDB_ASSIGN_OR_RETURN(va, BindExpr(e->a.get(), ctx));
      EncryptionType enc = ctx->inference.Resolve(va);
      e->a->enc = enc;
      if (enc.is_encrypted()) {
        // Nullness is hidden inside the cell: testing it needs the enclave.
        if (!enc.enclave_enabled) {
          return Status::TypeCheckError(
              "IS NULL not supported on encrypted column without an "
              "enclave-enabled key");
        }
        AEDB_RETURN_IF_ERROR(NoteEncryptedOperation(enc, true, ctx));
      }
      e->type = TypeId::kBool;
      e->enc = EncryptionType::Plaintext();
      return ctx->inference.AddKnown(e->enc);
    }

    case Expr::Kind::kArith: {
      int va, vb;
      AEDB_ASSIGN_OR_RETURN(va, BindExpr(e->a.get(), ctx));
      AEDB_ASSIGN_OR_RETURN(vb, BindExpr(e->b.get(), ctx));
      // AEv2 does not compute arithmetic over ciphertext (paper §1.1).
      AEDB_RETURN_IF_ERROR(ctx->inference.RestrictKind(
          va, EncKind::kPlaintext, "arithmetic"));
      AEDB_RETURN_IF_ERROR(ctx->inference.RestrictKind(
          vb, EncKind::kPlaintext, "arithmetic"));
      // An untyped parameter inherits the sibling operand's numeric type
      // (W_YTD + @a must type @a DOUBLE, not BIGINT).
      auto known_type = [&](Expr* x, TypeId* t) -> bool {
        if (x->kind == Expr::Kind::kParam) {
          const BoundParam& p = ctx->out->params[x->param_index];
          *t = p.type;
          return p.type_known;
        }
        *t = x->type;
        return true;
      };
      TypeId ta, tb;
      bool ka = known_type(e->a.get(), &ta);
      bool kb = known_type(e->b.get(), &tb);
      SetParamType(e->a.get(), kb ? tb : TypeId::kInt64, ctx);
      SetParamType(e->b.get(), ka ? ta : TypeId::kInt64, ctx);
      known_type(e->a.get(), &ta);
      known_type(e->b.get(), &tb);
      e->type = (ta == TypeId::kDouble || tb == TypeId::kDouble)
                    ? TypeId::kDouble
                    : TypeId::kInt64;
      e->enc = EncryptionType::Plaintext();
      return ctx->inference.AddKnown(e->enc);
    }

    case Expr::Kind::kNeg: {
      int va;
      AEDB_ASSIGN_OR_RETURN(va, BindExpr(e->a.get(), ctx));
      AEDB_RETURN_IF_ERROR(
          ctx->inference.RestrictKind(va, EncKind::kPlaintext, "negation"));
      SetParamType(e->a.get(), TypeId::kInt64, ctx);
      e->type = e->a->type == TypeId::kDouble ? TypeId::kDouble : TypeId::kInt64;
      e->enc = EncryptionType::Plaintext();
      return ctx->inference.AddKnown(e->enc);
    }
  }
  return Status::Internal("unreachable BindExpr");
}

Result<BoundStatement> Binder::Bind(Statement stmt) {
  BoundStatement out;
  out.stmt = std::move(stmt);
  Context ctx;
  ctx.out = &out;

  switch (out.stmt.kind) {
    case Statement::Kind::kSelect: {
      SelectStmt* sel = out.stmt.select.get();
      AEDB_ASSIGN_OR_RETURN(out.table, catalog_->GetTable(sel->table));
      if (!sel->join_table.empty()) {
        AEDB_ASSIGN_OR_RETURN(out.join_table,
                              catalog_->GetTable(sel->join_table));
        // Bind the equi-join predicate (DET equi-joins are the paper's v1
        // flagship, §1.1).
        // Synthesized exprs must outlive this block: ValidateComparison
        // dereferences them post-solve via ctx.checks.
        Expr& left = ctx.synthesized.emplace_back();
        Expr& right = ctx.synthesized.emplace_back();
        left.kind = Expr::Kind::kColumn;
        left.column = sel->join_left;
        right.kind = Expr::Kind::kColumn;
        right.column = sel->join_right;
        int vl, vr;
        AEDB_ASSIGN_OR_RETURN(vl, BindColumn(&left, &ctx));
        AEDB_ASSIGN_OR_RETURN(vr, BindColumn(&right, &ctx));
        AEDB_RETURN_IF_ERROR(BindComparisonPair(&left, &right, vl, vr,
                                                es::CompareOp::kEq, false,
                                                &ctx));
        // Join predicate must be evaluable by hash/merge on ciphertext or
        // plaintext — enclave-routed joins are out of scope (per paper).
        if (left.enc.is_encrypted() &&
            left.enc.kind != EncKind::kDeterministic) {
          return Status::TypeCheckError(
              "equi-join requires plaintext or DET columns");
        }
        sel->join_left = left.column;
        sel->join_right = right.column;
        // Record resolved positions via items below; executor re-resolves.
      }
      for (SelectItem& item : sel->items) {
        if (item.star) continue;
        Expr col;
        col.kind = Expr::Kind::kColumn;
        col.column = item.column;
        AEDB_RETURN_IF_ERROR(BindColumn(&col, &ctx).status());
        item.table_slot = col.table_slot;
        item.column_index = col.column_index;
        if (item.agg != AggFunc::kNone && col.enc.is_encrypted()) {
          return Status::TypeCheckError(
              "aggregates over encrypted columns are not supported");
        }
        if ((item.agg == AggFunc::kSum || item.agg == AggFunc::kAvg) &&
            !(col.type == TypeId::kInt32 || col.type == TypeId::kInt64 ||
              col.type == TypeId::kDouble)) {
          return Status::TypeCheckError("SUM/AVG require a numeric column");
        }
      }
      if (out.stmt.select->where != nullptr) {
        AEDB_RETURN_IF_ERROR(BindExpr(sel->where.get(), &ctx).status());
        if (sel->where->type != TypeId::kBool) {
          return Status::TypeCheckError("WHERE must be boolean");
        }
      }
      if (!sel->group_by.empty()) {
        Expr col;
        col.kind = Expr::Kind::kColumn;
        col.column = sel->group_by;
        AEDB_RETURN_IF_ERROR(BindColumn(&col, &ctx).status());
        sel->group_by_slot = col.table_slot;
        sel->group_by_index = col.column_index;
        if (col.enc.is_encrypted() && col.enc.kind != EncKind::kDeterministic) {
          return Status::TypeCheckError(
              "GROUP BY on randomized encryption is not supported "
              "(equality grouping needs DET, paper §2.4.3)");
        }
      }
      if (!sel->order_by.empty()) {
        Expr col;
        col.kind = Expr::Kind::kColumn;
        col.column = sel->order_by;
        AEDB_RETURN_IF_ERROR(BindColumn(&col, &ctx).status());
        sel->order_by_index = col.column_index;
        if (col.enc.is_encrypted()) {
          return Status::TypeCheckError(
              "ORDER BY on encrypted columns is not supported (paper §5.3)");
        }
      }
      break;
    }

    case Statement::Kind::kInsert: {
      InsertStmt* ins = out.stmt.insert.get();
      AEDB_ASSIGN_OR_RETURN(out.table, catalog_->GetTable(ins->table));
      std::vector<int> target_cols;
      if (ins->columns.empty()) {
        for (size_t i = 0; i < out.table->columns.size(); ++i) {
          target_cols.push_back(static_cast<int>(i));
        }
      } else {
        for (const std::string& name : ins->columns) {
          int idx = out.table->FindColumn(name);
          if (idx < 0) return Status::NotFound("no such column: " + name);
          target_cols.push_back(idx);
        }
      }
      for (auto& row : ins->rows) {
        if (row.size() != target_cols.size()) {
          return Status::InvalidArgument("INSERT arity mismatch");
        }
        for (size_t i = 0; i < row.size(); ++i) {
          const ColumnDef& col = out.table->columns[target_cols[i]];
          int v;
          AEDB_ASSIGN_OR_RETURN(v, BindExpr(row[i].get(), &ctx));
          int vcol = ctx.inference.AddKnown(col.enc);
          AEDB_RETURN_IF_ERROR(ctx.inference.Equate(
              v, vcol, "INSERT into column " + col.name));
          row[i]->enc = ctx.inference.Resolve(v);
          SetParamType(row[i].get(), col.type, &ctx);
          if (row[i]->kind == Expr::Kind::kLiteral &&
              !row[i]->literal.is_null() &&
              !TypesCompatible(row[i]->literal.type(), col.type)) {
            return Status::TypeCheckError("INSERT type mismatch for " + col.name);
          }
        }
      }
      break;
    }

    case Statement::Kind::kUpdate: {
      UpdateStmt* upd = out.stmt.update.get();
      AEDB_ASSIGN_OR_RETURN(out.table, catalog_->GetTable(upd->table));
      for (auto& [col_name, value] : upd->sets) {
        int idx = out.table->FindColumn(col_name);
        if (idx < 0) return Status::NotFound("no such column: " + col_name);
        const ColumnDef& col = out.table->columns[idx];
        int v;
        AEDB_ASSIGN_OR_RETURN(v, BindExpr(value.get(), &ctx));
        int vcol = ctx.inference.AddKnown(col.enc);
        AEDB_RETURN_IF_ERROR(
            ctx.inference.Equate(v, vcol, "UPDATE of column " + col.name));
        value->enc = ctx.inference.Resolve(v);
        SetParamType(value.get(), col.type, &ctx);
      }
      if (upd->where != nullptr) {
        AEDB_RETURN_IF_ERROR(BindExpr(upd->where.get(), &ctx).status());
      }
      break;
    }

    case Statement::Kind::kDelete: {
      DeleteStmt* del = out.stmt.del.get();
      AEDB_ASSIGN_OR_RETURN(out.table, catalog_->GetTable(del->table));
      if (del->where != nullptr) {
        AEDB_RETURN_IF_ERROR(BindExpr(del->where.get(), &ctx).status());
      }
      break;
    }

    default:
      // DDL statements carry no expressions; the server executes them
      // directly against the catalog.
      return out;
  }

  // Writes to a table with a range index over an enclave-encrypted column
  // route index comparisons into the enclave, so the CEK must be installed
  // ("the driver also transparently sends CEKs to the enclave", §2.5).
  if (out.stmt.kind != Statement::Kind::kSelect && out.table != nullptr) {
    for (const IndexDef* index : catalog_->TableIndexes(out.table->id)) {
      const ColumnDef& col = out.table->columns[index->column];
      if (index->kind == IndexKind::kRange && col.enc.is_encrypted() &&
          col.enc.enclave_enabled) {
        AEDB_RETURN_IF_ERROR(NoteEncryptedOperation(col.enc, true, &ctx));
      }
    }
  }

  // Propagate parameter types across param-param comparisons to fixpoint.
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto [ia, ib] : ctx.type_links) {
      BoundParam& pa = out.params[ia];
      BoundParam& pb = out.params[ib];
      if (pa.type_known && !pb.type_known) {
        pb.type = pa.type;
        pb.type_known = true;
        changed = true;
      } else if (pb.type_known && !pa.type_known) {
        pa.type = pb.type;
        pa.type_known = true;
        changed = true;
      }
    }
  }

  // Post-solve validation: every comparison is judged against its class's
  // final resolution.
  for (const ComparisonCheck& check : ctx.checks) {
    AEDB_RETURN_IF_ERROR(ValidateComparison(check, &ctx));
  }

  // Final parameter resolution: encryption types from the solved classes.
  for (auto& [name, var] : ctx.param_vars) {
    BoundParam& p = out.params[ctx.param_ids[name]];
    p.enc = ctx.inference.Resolve(var);
    if (!p.type_known) {
      return Status::TypeCheckError("cannot deduce type of parameter @" +
                                    p.name);
    }
  }
  return out;
}

}  // namespace aedb::sql
