#ifndef AEDB_SQL_LEXER_H_
#define AEDB_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"

namespace aedb::sql {

enum class TokenType : uint8_t {
  kIdentifier,   // foo, [foo], keywords are identifiers until matched
  kNumber,       // 123, 4.5
  kString,       // 'text' (N'text' accepted)
  kHexLiteral,   // 0xABCD
  kParam,        // @name
  kSymbol,       // ( ) , . = < > <= >= <> != + - * / ;
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;     // identifier (original case), symbol, or raw number
  std::string upper;    // uppercase identifier for keyword matching
  Bytes hex;            // decoded kHexLiteral payload
  bool is_float = false;
  size_t offset = 0;    // position in the input, for error messages
};

/// Tokenizes a SQL string up front (errors on malformed literals).
Result<std::vector<Token>> Tokenize(std::string_view sql);

}  // namespace aedb::sql

#endif  // AEDB_SQL_LEXER_H_
