#include "sql/executor.h"

#include <algorithm>
#include <map>
#include <mutex>
#include <shared_mutex>

#include "common/query_context.h"
#include "crypto/sha256.h"
#include "fault/fault.h"

namespace aedb::sql {

using storage::Rid;
using types::TypeId;
using types::Value;

namespace {

/// Cooperative deadline/cancellation check at morsel boundaries. Cost when
/// no context is installed: one thread-local load (bench_net guards <1% of
/// a plain loopback SELECT).
Status CheckQueryDeadline() {
  const QueryContext* q = QueryContext::Current();
  return q == nullptr ? Status::OK() : q->Check();
}

/// Fault point at the per-row boundary of a write statement's apply loop —
/// the place where a shed (enclave pool overload, injected kOverloaded)
/// strikes AFTER earlier rows were already applied. Tests arm it to prove
/// the server distinguishes a partially-applied statement's overload (must
/// abort the enclosing explicit transaction) from a pre-execution shed
/// (safe to replay). Unarmed cost: one relaxed atomic load.
Status CheckWriteShed() {
  fault::FaultSpec spec;
  if (AEDB_FAULT_FIRED("executor/write_shed", &spec)) return spec.status;
  return Status::OK();
}

/// Coerces a value into a column's plaintext type (numeric widening etc.).
Result<Value> Coerce(TypeId target, const Value& v) {
  if (v.is_null()) return Value::Null(target);
  if (v.type() == target) return v;
  switch (target) {
    case TypeId::kInt32:
      if (v.IsNumeric()) return Value::Int32(static_cast<int32_t>(v.AsInt64()));
      break;
    case TypeId::kInt64:
      if (v.IsNumeric()) return Value::Int64(v.AsInt64());
      break;
    case TypeId::kDouble:
      if (v.IsNumeric()) return Value::Double(v.AsDouble());
      break;
    default:
      break;
  }
  return Status::TypeCheckError(std::string("cannot coerce ") +
                                types::TypeIdName(v.type()) + " to " +
                                types::TypeIdName(target));
}

/// Pulls the (column, operand) shape out of a conjunct, flipping the
/// comparison if the column is on the right.
struct ColOpOperand {
  const Expr* column = nullptr;
  const Expr* operand = nullptr;  // literal or param
  es::CompareOp op = es::CompareOp::kEq;
};

bool MatchColOperand(const Expr* e, ColOpOperand* out) {
  if (e->kind != Expr::Kind::kCompare) return false;
  auto is_operand = [](const Expr* x) {
    return x->kind == Expr::Kind::kLiteral || x->kind == Expr::Kind::kParam;
  };
  if (e->a->kind == Expr::Kind::kColumn && is_operand(e->b.get())) {
    out->column = e->a.get();
    out->operand = e->b.get();
    out->op = e->cmp;
    return true;
  }
  if (e->b->kind == Expr::Kind::kColumn && is_operand(e->a.get())) {
    out->column = e->b.get();
    out->operand = e->a.get();
    switch (e->cmp) {  // flip
      case es::CompareOp::kLt: out->op = es::CompareOp::kGt; break;
      case es::CompareOp::kLe: out->op = es::CompareOp::kGe; break;
      case es::CompareOp::kGt: out->op = es::CompareOp::kLt; break;
      case es::CompareOp::kGe: out->op = es::CompareOp::kLe; break;
      default: out->op = e->cmp; break;
    }
    return true;
  }
  return false;
}

void FlattenConjuncts(const Expr* e, std::vector<const Expr*>* out) {
  if (e == nullptr) return;
  if (e->kind == Expr::Kind::kAnd) {
    FlattenConjuncts(e->a.get(), out);
    FlattenConjuncts(e->b.get(), out);
    return;
  }
  out->push_back(e);
}

Value OperandValue(const Expr* operand, const std::vector<Value>& params) {
  if (operand->kind == Expr::Kind::kLiteral) return operand->literal;
  return params[operand->param_index];
}

/// Preorder encoding of everything that influences compilation: node kinds,
/// binder annotations (slots, types, encryption) and literal values. Two
/// expressions with equal fingerprints compile to equal programs.
void FingerprintExpr(const Expr* e, Bytes* out) {
  if (e == nullptr) {
    out->push_back(0xFF);  // distinguishes "absent child" from any Kind
    return;
  }
  out->push_back(static_cast<uint8_t>(e->kind));
  out->push_back(static_cast<uint8_t>(e->cmp));
  out->push_back(static_cast<uint8_t>(e->arith));
  out->push_back(e->is_not ? 1 : 0);
  PutU32(out, static_cast<uint32_t>(e->table_slot));
  PutU32(out, static_cast<uint32_t>(e->column_index));
  PutU32(out, static_cast<uint32_t>(e->param_index));
  out->push_back(static_cast<uint8_t>(e->type));
  out->push_back(static_cast<uint8_t>(e->enc.kind));
  PutU32(out, e->enc.cek_id);
  out->push_back(e->enc.enclave_enabled ? 1 : 0);
  if (e->kind == Expr::Kind::kLiteral) {
    PutLengthPrefixed(out, e->literal.Encode());
  }
  FingerprintExpr(e->a.get(), out);
  FingerprintExpr(e->b.get(), out);
  FingerprintExpr(e->c.get(), out);
}

std::string ProgramCacheKey(const Expr* expr, const InputLayout& layout,
                            const std::vector<BoundParam>& params,
                            bool value_expr) {
  Bytes payload;
  FingerprintExpr(expr, &payload);
  PutU32(&payload, static_cast<uint32_t>(layout.table_columns));
  PutU32(&payload, static_cast<uint32_t>(layout.join_columns));
  PutU32(&payload, static_cast<uint32_t>(params.size()));
  for (const BoundParam& p : params) {
    payload.push_back(static_cast<uint8_t>(p.type));
    payload.push_back(p.type_known ? 1 : 0);
    payload.push_back(static_cast<uint8_t>(p.enc.kind));
    PutU32(&payload, p.enc.cek_id);
    payload.push_back(p.enc.enclave_enabled ? 1 : 0);
  }
  payload.push_back(value_expr ? 1 : 0);
  Bytes digest = crypto::Sha256::Hash(payload);
  return std::string(digest.begin(), digest.end());
}

}  // namespace

Result<int> ValueComparator::Compare(Slice a, Slice b) const {
  size_t off = 0;
  Value va, vb;
  AEDB_ASSIGN_OR_RETURN(va, Value::Decode(a, &off));
  off = 0;
  AEDB_ASSIGN_OR_RETURN(vb, Value::Decode(b, &off));
  if (va.is_null() && vb.is_null()) return 0;
  if (va.is_null()) return -1;
  if (vb.is_null()) return 1;
  return va.Compare(vb);
}

Bytes Executor::IndexKeyFor(const ColumnDef& col, const Value& v) {
  if (col.enc.is_encrypted() && !v.is_null() && v.type() == TypeId::kBinary) {
    return v.bin();  // the AEAD cell is the key
  }
  return v.Encode();
}

void Executor::ClearProgramCache() {
  std::unique_lock lock(program_cache_mu_);
  program_cache_.clear();
  lru_.clear();
}

Result<std::shared_ptr<const es::EsProgram>> Executor::CompiledFor(
    const Expr* expr, const InputLayout& layout,
    const std::vector<BoundParam>& params, bool value_expr) {
  std::string key = ProgramCacheKey(expr, layout, params, value_expr);
  {
    // Exclusive even on a hit: the LRU touch mutates the recency list.
    std::unique_lock lock(program_cache_mu_);
    auto it = program_cache_.find(key);
    if (it != program_cache_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      return it->second.program;
    }
  }
  es::EsProgram program;
  if (value_expr) {
    AEDB_ASSIGN_OR_RETURN(program, CompileValueExpr(expr, layout, params));
  } else {
    AEDB_ASSIGN_OR_RETURN(program, CompilePredicate(expr, layout, params));
  }
  std::unique_lock lock(program_cache_mu_);
  auto it = program_cache_.find(key);
  if (it != program_cache_.end()) {  // raced with another compiler
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return it->second.program;
  }
  lru_.push_front(key);
  CacheEntry entry;
  entry.program = std::make_shared<const es::EsProgram>(std::move(program));
  entry.lru_it = lru_.begin();
  auto result = entry.program;
  program_cache_.emplace(std::move(key), std::move(entry));
  if (program_cache_.size() > kProgramCacheCap) {
    program_cache_.erase(lru_.back());
    lru_.pop_back();
  }
  return result;
}

Result<bool> Executor::EvalPredicate(const es::EsProgram& program,
                                     const std::vector<Value>& inputs) {
  es::EvalContext ctx;
  ctx.enclave = invoker_;
  es::EsEvaluator evaluator(ctx);
  std::vector<Value> out;
  AEDB_ASSIGN_OR_RETURN(out, evaluator.Eval(program, inputs));
  // SQL semantics: a NULL predicate does not pass.
  return !out[0].is_null() && out[0].bool_v();
}

Result<std::vector<char>> Executor::EvalPredicateBatch(
    const es::EsProgram& program,
    const std::vector<std::vector<Value>>& batch) {
  es::EvalContext ctx;
  ctx.enclave = invoker_;
  es::EsEvaluator evaluator(ctx);
  std::vector<std::vector<Value>> out;
  AEDB_ASSIGN_OR_RETURN(out, evaluator.EvalBatch(program, batch));
  std::vector<char> pass(batch.size(), 0);
  for (size_t i = 0; i < out.size(); ++i) {
    pass[i] = !out[i][0].is_null() && out[i][0].bool_v();
  }
  return pass;
}

Result<std::vector<Value>> Executor::FetchRow(const TableDef& table,
                                              const Rid& rid) {
  Bytes record;
  AEDB_ASSIGN_OR_RETURN(record, engine_->table(table.id)->Read(rid));
  return DecodeRow(record, table.columns.size());
}

Result<Executor::Candidates> Executor::PlanAccess(
    const Expr* where, const TableDef& table,
    const std::vector<Value>& params) {
  Candidates out;
  if (where == nullptr) return out;
  std::vector<const Expr*> conjuncts;
  FlattenConjuncts(where, &conjuncts);

  // First preference: an equality probe.
  for (const Expr* e : conjuncts) {
    ColOpOperand shape;
    if (!MatchColOperand(e, &shape) || shape.column->table_slot != 0) continue;
    if (shape.op != es::CompareOp::kEq) continue;
    const ColumnDef& col = table.columns[shape.column->column_index];
    const IndexDef* index =
        catalog_->FindIndexOn(table.id, shape.column->column_index,
                              col.enc.kind == types::EncKind::kDeterministic
                                  ? IndexKind::kEquality
                                  : IndexKind::kRange);
    if (index == nullptr) continue;
    if (!engine_->CheckIndexUsable(index->id).ok()) continue;
    Bytes key = IndexKeyFor(col, OperandValue(shape.operand, params));
    auto rids = engine_->index_tree(index->id)->SeekEqual(key);
    if (!rids.ok()) return rids.status();
    out.use_index = true;
    out.rids = std::move(rids).value();
    return out;
  }

  // Second: range bounds on a column with a range index.
  for (const Expr* e : conjuncts) {
    const Expr* column = nullptr;
    const Expr *lower = nullptr, *upper = nullptr;
    bool lower_inc = true, upper_inc = true;
    ColOpOperand shape;
    if (e->kind == Expr::Kind::kBetween &&
        e->a->kind == Expr::Kind::kColumn && e->a->table_slot == 0) {
      column = e->a.get();
      lower = e->b.get();
      upper = e->c.get();
    } else if (MatchColOperand(e, &shape) && shape.column->table_slot == 0) {
      column = shape.column;
      switch (shape.op) {
        case es::CompareOp::kLt: upper = shape.operand; upper_inc = false; break;
        case es::CompareOp::kLe: upper = shape.operand; break;
        case es::CompareOp::kGt: lower = shape.operand; lower_inc = false; break;
        case es::CompareOp::kGe: lower = shape.operand; break;
        default: continue;
      }
    } else {
      continue;
    }
    const ColumnDef& col = table.columns[column->column_index];
    const IndexDef* index =
        catalog_->FindIndexOn(table.id, column->column_index, IndexKind::kRange);
    if (index == nullptr || !engine_->CheckIndexUsable(index->id).ok()) continue;

    storage::BTree* tree = engine_->index_tree(index->id);
    Bytes lower_key, upper_key;
    const Bytes* lower_ptr = nullptr;
    const Bytes* upper_ptr = nullptr;
    if (lower != nullptr) {
      lower_key = IndexKeyFor(col, OperandValue(lower, params));
      lower_ptr = &lower_key;
    }
    if (upper != nullptr) {
      upper_key = IndexKeyFor(col, OperandValue(upper, params));
      upper_ptr = &upper_key;
    }
    out.use_index = true;
    // SeekRange does the bound comparisons inside the tree, which lets an
    // enclave-backed comparator batch a whole leaf per call-gate crossing.
    auto rids = tree->SeekRange(lower_ptr, lower_inc, upper_ptr, upper_inc);
    if (!rids.ok()) return rids.status();
    out.rids = std::move(rids).value();
    return out;
  }
  return out;
}

Result<std::vector<std::pair<Rid, std::vector<Value>>>>
Executor::CollectMatches(const BoundStatement& bound, const Expr* where,
                         const TableDef& table,
                         const std::vector<Value>& params) {
  InputLayout layout;
  layout.table_columns = table.columns.size();
  es::EsProgram always_true;
  std::shared_ptr<const es::EsProgram> filter_holder;
  const es::EsProgram* filter = nullptr;
  if (where == nullptr) {
    AEDB_ASSIGN_OR_RETURN(always_true,
                          CompilePredicate(nullptr, layout, bound.params));
    filter = &always_true;
  } else {
    AEDB_ASSIGN_OR_RETURN(filter_holder,
                          CompiledFor(where, layout, bound.params, false));
    filter = filter_holder.get();
  }

  // Hold the table's statement latch (shared) across the index probe AND the
  // row fetches: a concurrent UPDATE applies its index-delete / heap-move /
  // index-insert steps under the same latch held exclusive, so candidates
  // collected here never land in that half-applied middle ("missing row" for
  // a row that logically always exists, e.g. a TPC-C district).
  std::shared_mutex* stmt = engine_->StatementLatch(table.id);
  std::shared_lock<std::shared_mutex> stmt_lock;
  if (stmt != nullptr) stmt_lock = std::shared_lock<std::shared_mutex>(*stmt);

  Candidates candidates;
  AEDB_ASSIGN_OR_RETURN(candidates, PlanAccess(where, table, params));

  // Morsel-driven filtering: buffer up to batch_size_ candidate rows, then
  // evaluate the predicate over the whole morsel at once — every encrypted
  // atom in it costs one enclave transition per morsel instead of one per
  // row. A failed batch drops the entire morsel (no partial application).
  std::vector<std::pair<Rid, std::vector<Value>>> matches;
  std::vector<std::pair<Rid, std::vector<Value>>> morsel;
  const size_t batch_size = batch_size_;
  morsel.reserve(std::min<size_t>(batch_size, 1024));

  auto flush = [&]() -> Status {
    if (morsel.empty()) return Status::OK();
    AEDB_RETURN_IF_ERROR(CheckQueryDeadline());
    std::vector<std::vector<Value>> inputs;
    inputs.reserve(morsel.size());
    for (auto& [rid, row] : morsel) {
      std::vector<Value> in = row;
      in.insert(in.end(), params.begin(), params.end());
      inputs.push_back(std::move(in));
    }
    std::vector<char> pass;
    AEDB_ASSIGN_OR_RETURN(pass, EvalPredicateBatch(*filter, inputs));
    for (size_t i = 0; i < morsel.size(); ++i) {
      if (pass[i]) matches.push_back(std::move(morsel[i]));
    }
    morsel.clear();
    return Status::OK();
  };
  auto consider = [&](const Rid& rid, std::vector<Value> row) -> Status {
    morsel.emplace_back(rid, std::move(row));
    if (morsel.size() >= batch_size) return flush();
    return Status::OK();
  };

  if (candidates.use_index) {
    for (const Rid& rid : candidates.rids) {
      auto row = FetchRow(table, rid);
      if (!row.ok()) {
        if (row.status().IsNotFound()) continue;  // dangling index entry
        return row.status();
      }
      AEDB_RETURN_IF_ERROR(consider(rid, std::move(row).value()));
    }
  } else {
    Status inner = Status::OK();
    engine_->table(table.id)->Scan([&](const Rid& rid, Slice record) {
      auto row = DecodeRow(record, table.columns.size());
      if (!row.ok()) {
        inner = row.status();
        return false;
      }
      Status st = consider(rid, std::move(row).value());
      if (!st.ok()) {
        inner = st;
        return false;
      }
      return true;
    });
    AEDB_RETURN_IF_ERROR(inner);
  }
  AEDB_RETURN_IF_ERROR(flush());
  return matches;
}

Result<ResultSet> Executor::Select(const BoundStatement& bound,
                                   const std::vector<Value>& params,
                                   uint64_t txn) {
  (void)txn;
  const SelectStmt& sel = *bound.stmt.select;
  const TableDef& table = *bound.table;

  // Gather matching (combined) rows.
  std::vector<std::vector<Value>> rows;
  if (bound.join_table == nullptr) {
    std::vector<std::pair<Rid, std::vector<Value>>> matches;
    AEDB_ASSIGN_OR_RETURN(matches,
                          CollectMatches(bound, sel.where.get(), table, params));
    rows.reserve(matches.size());
    for (auto& [rid, row] : matches) rows.push_back(std::move(row));
  } else {
    // Hash equi-join: build on the join table, probe with the main table
    // (ciphertext bytes hash equal values equal for DET, §2.4.3).
    const TableDef& right = *bound.join_table;
    auto resolve = [&](const std::string& name, const TableDef& t) {
      size_t dot = name.find('.');
      return t.FindColumn(dot == std::string::npos ? name
                                                   : name.substr(dot + 1));
    };
    int left_idx = resolve(sel.join_left, table);
    int right_idx = resolve(sel.join_right, right);
    if (left_idx < 0 || right_idx < 0) {
      // The binder may have bound them the other way around.
      std::swap(left_idx, right_idx);
      left_idx = left_idx < 0 ? resolve(sel.join_right, table) : left_idx;
      right_idx = right_idx < 0 ? resolve(sel.join_left, right) : right_idx;
    }
    if (left_idx < 0 || right_idx < 0) {
      return Status::Internal("join columns failed to resolve");
    }

    InputLayout layout;
    layout.table_columns = table.columns.size();
    layout.join_columns = right.columns.size();
    es::EsProgram always_true;
    std::shared_ptr<const es::EsProgram> filter_holder;
    const es::EsProgram* filter = nullptr;
    if (sel.where == nullptr) {
      AEDB_ASSIGN_OR_RETURN(always_true,
                            CompilePredicate(nullptr, layout, bound.params));
      filter = &always_true;
    } else {
      AEDB_ASSIGN_OR_RETURN(
          filter_holder,
          CompiledFor(sel.where.get(), layout, bound.params, false));
      filter = filter_holder.get();
    }

    std::map<Bytes, std::vector<std::vector<Value>>> hash;
    Status inner = Status::OK();
    engine_->table(right.id)->Scan([&](const Rid&, Slice record) {
      auto row = DecodeRow(record, right.columns.size());
      if (!row.ok()) {
        inner = row.status();
        return false;
      }
      const Value& key = (*row)[right_idx];
      if (key.is_null()) return true;  // NULL never joins
      hash[IndexKeyFor(right.columns[right_idx], key)].push_back(
          std::move(row).value());
      return true;
    });
    AEDB_RETURN_IF_ERROR(inner);

    // Probe-side morsels: joined rows accumulate until a batch is full, then
    // the residual filter runs over the whole morsel in one enclave trip.
    std::vector<std::vector<Value>> pending;
    auto flush_join = [&]() -> Status {
      if (pending.empty()) return Status::OK();
      AEDB_RETURN_IF_ERROR(CheckQueryDeadline());
      std::vector<std::vector<Value>> inputs;
      inputs.reserve(pending.size());
      for (const auto& combined : pending) {
        std::vector<Value> in = combined;
        in.insert(in.end(), params.begin(), params.end());
        inputs.push_back(std::move(in));
      }
      std::vector<char> pass;
      AEDB_ASSIGN_OR_RETURN(pass, EvalPredicateBatch(*filter, inputs));
      for (size_t i = 0; i < pending.size(); ++i) {
        if (pass[i]) rows.push_back(std::move(pending[i]));
      }
      pending.clear();
      return Status::OK();
    };
    engine_->table(table.id)->Scan([&](const Rid&, Slice record) {
      auto row = DecodeRow(record, table.columns.size());
      if (!row.ok()) {
        inner = row.status();
        return false;
      }
      const Value& key = (*row)[left_idx];
      if (key.is_null()) return true;
      auto it = hash.find(IndexKeyFor(table.columns[left_idx], key));
      if (it == hash.end()) return true;
      for (const auto& right_row : it->second) {
        std::vector<Value> combined = *row;
        combined.insert(combined.end(), right_row.begin(), right_row.end());
        pending.push_back(std::move(combined));
        if (pending.size() >= batch_size_) {
          Status st = flush_join();
          if (!st.ok()) {
            inner = st;
            return false;
          }
        }
      }
      return true;
    });
    AEDB_RETURN_IF_ERROR(inner);
    AEDB_RETURN_IF_ERROR(flush_join());
  }

  // Column resolution for projection.
  size_t main_cols = table.columns.size();
  auto slot_of = [&](const SelectItem& item) -> size_t {
    return item.table_slot == 0 ? static_cast<size_t>(item.column_index)
                                : main_cols + static_cast<size_t>(item.column_index);
  };

  ResultSet result;
  bool has_agg = false;
  for (const SelectItem& item : sel.items) {
    if (item.agg != AggFunc::kNone) has_agg = true;
  }

  if (has_agg || !sel.group_by.empty()) {
    // Aggregation (optionally grouped). Group keys are encoded values —
    // byte-equal iff value-equal (DET cells included).
    struct Acc {
      int64_t count = 0;
      int64_t count_col = 0;
      double sum = 0;
      bool sum_is_double = false;
      Value min, max;
      Value group_value;
    };
    size_t group_slot = 0;
    bool grouped = !sel.group_by.empty();
    if (grouped) {
      group_slot = sel.group_by_slot == 0
                       ? static_cast<size_t>(sel.group_by_index)
                       : main_cols + static_cast<size_t>(sel.group_by_index);
    }
    std::map<Bytes, Acc> groups;
    for (const auto& row : rows) {
      Bytes key;
      if (grouped) key = row[group_slot].Encode();
      Acc& acc = groups[key];
      if (grouped) acc.group_value = row[group_slot];
      ++acc.count;
      for (const SelectItem& item : sel.items) {
        if (item.agg == AggFunc::kNone || item.star) continue;
        const Value& v = row[slot_of(item)];
        if (v.is_null()) continue;
        ++acc.count_col;
        if (v.IsNumeric()) {
          acc.sum += v.AsDouble();
          if (v.type() == TypeId::kDouble) acc.sum_is_double = true;
        }
        if (acc.min.is_null() || *v.Compare(acc.min) < 0) acc.min = v;
        if (acc.max.is_null() || *v.Compare(acc.max) > 0) acc.max = v;
      }
    }
    if (!grouped && groups.empty()) groups[Bytes{}];  // empty input: one row
    for (const SelectItem& item : sel.items) {
      result.columns.push_back(item.alias.empty()
                                   ? (item.star ? "COUNT(*)" : item.column)
                                   : item.alias);
      if (item.agg == AggFunc::kNone && !item.star) {
        const TableDef& t = item.table_slot == 0 ? table : *bound.join_table;
        result.column_enc.push_back(t.columns[item.column_index].enc);
      } else {
        result.column_enc.push_back(types::EncryptionType::Plaintext());
      }
    }
    for (auto& [key, acc] : groups) {
      std::vector<Value> out_row;
      for (const SelectItem& item : sel.items) {
        switch (item.agg) {
          case AggFunc::kNone:
            out_row.push_back(acc.group_value);
            break;
          case AggFunc::kCount:
            out_row.push_back(Value::Int64(item.star ? acc.count : acc.count_col));
            break;
          case AggFunc::kSum:
            out_row.push_back(acc.sum_is_double
                                  ? Value::Double(acc.sum)
                                  : Value::Int64(static_cast<int64_t>(acc.sum)));
            break;
          case AggFunc::kMin:
            out_row.push_back(acc.min);
            break;
          case AggFunc::kMax:
            out_row.push_back(acc.max);
            break;
          case AggFunc::kAvg:
            out_row.push_back(acc.count_col == 0
                                  ? Value::Null(TypeId::kDouble)
                                  : Value::Double(acc.sum / acc.count_col));
            break;
        }
      }
      result.rows.push_back(std::move(out_row));
    }
    return result;
  }

  // Plain projection. ORDER BY sorts on the (plaintext) column.
  if (!sel.order_by.empty()) {
    size_t order_slot = static_cast<size_t>(sel.order_by_index);
    Status sort_status;
    std::stable_sort(rows.begin(), rows.end(),
                     [&](const std::vector<Value>& x, const std::vector<Value>& y) {
                       const Value& a = x[order_slot];
                       const Value& b = y[order_slot];
                       if (a.is_null() || b.is_null()) return b.is_null() < a.is_null();
                       auto c = a.Compare(b);
                       if (!c.ok()) return false;
                       return sel.order_desc ? *c > 0 : *c < 0;
                     });
  }
  if (sel.limit >= 0 && rows.size() > static_cast<size_t>(sel.limit)) {
    rows.resize(static_cast<size_t>(sel.limit));
  }
  if (sel.select_all) {
    for (const ColumnDef& col : table.columns) {
      result.columns.push_back(col.name);
      result.column_enc.push_back(col.enc);
    }
    if (bound.join_table != nullptr) {
      for (const ColumnDef& col : bound.join_table->columns) {
        result.columns.push_back(col.name);
        result.column_enc.push_back(col.enc);
      }
    }
    result.rows = std::move(rows);
  } else {
    for (const SelectItem& item : sel.items) {
      result.columns.push_back(item.alias.empty() ? item.column : item.alias);
      const TableDef& t = item.table_slot == 0 ? table : *bound.join_table;
      result.column_enc.push_back(t.columns[item.column_index].enc);
    }
    for (const auto& row : rows) {
      std::vector<Value> out_row;
      out_row.reserve(sel.items.size());
      for (const SelectItem& item : sel.items) out_row.push_back(row[slot_of(item)]);
      result.rows.push_back(std::move(out_row));
    }
  }
  return result;
}

Status Executor::MaintainIndexesOnInsert(const TableDef& table,
                                         const std::vector<Value>& row,
                                         const Rid& rid, uint64_t txn) {
  for (const IndexDef* index : catalog_->TableIndexes(table.id)) {
    Bytes key = IndexKeyFor(table.columns[index->column], row[index->column]);
    AEDB_RETURN_IF_ERROR(engine_->IndexInsert(txn, index->id, key, rid));
  }
  return Status::OK();
}

Status Executor::MaintainIndexesOnDelete(const TableDef& table,
                                         const std::vector<Value>& row,
                                         const Rid& rid, uint64_t txn) {
  for (const IndexDef* index : catalog_->TableIndexes(table.id)) {
    Bytes key = IndexKeyFor(table.columns[index->column], row[index->column]);
    AEDB_RETURN_IF_ERROR(engine_->IndexDelete(txn, index->id, key, rid));
  }
  return Status::OK();
}

Result<int64_t> Executor::Insert(const BoundStatement& bound,
                                 const std::vector<Value>& params,
                                 uint64_t txn) {
  const InsertStmt& ins = *bound.stmt.insert;
  const TableDef& table = *bound.table;

  std::vector<int> targets;
  if (ins.columns.empty()) {
    for (size_t i = 0; i < table.columns.size(); ++i) targets.push_back(static_cast<int>(i));
  } else {
    for (const std::string& name : ins.columns) targets.push_back(table.FindColumn(name));
  }

  InputLayout layout;  // VALUES expressions see only parameters
  int64_t inserted = 0;
  for (const auto& value_row : ins.rows) {
    std::vector<Value> row(table.columns.size());
    for (size_t i = 0; i < table.columns.size(); ++i) {
      row[i] = Value::Null(table.columns[i].type);
    }
    es::EvalContext ctx;
    ctx.enclave = invoker_;
    es::EsEvaluator evaluator(ctx);
    for (size_t i = 0; i < value_row.size(); ++i) {
      const ColumnDef& col = table.columns[targets[i]];
      std::shared_ptr<const es::EsProgram> program;
      AEDB_ASSIGN_OR_RETURN(program, CompiledFor(value_row[i].get(), layout,
                                                 bound.params, true));
      std::vector<Value> out;
      AEDB_ASSIGN_OR_RETURN(out, evaluator.Eval(*program, params));
      if (col.enc.is_encrypted()) {
        if (!out[0].is_null() && out[0].type() != TypeId::kBinary) {
          return Status::SecurityError(
              "plaintext value for encrypted column " + col.name +
              " (driver must encrypt parameters)");
        }
        row[targets[i]] = std::move(out[0]);
      } else {
        AEDB_ASSIGN_OR_RETURN(row[targets[i]], Coerce(col.type, out[0]));
      }
    }
    for (size_t i = 0; i < table.columns.size(); ++i) {
      if (!table.columns[i].nullable && row[i].is_null()) {
        return Status::InvalidArgument("column " + table.columns[i].name +
                                       " is NOT NULL");
      }
    }
    AEDB_RETURN_IF_ERROR(CheckQueryDeadline());
    AEDB_RETURN_IF_ERROR(CheckWriteShed());
    // Exclusive statement latch: the heap insert and every index insert
    // become one atomic step for unlatched readers. LockRow inside the latch
    // is safe — slot ids are never recycled, so a fresh rid has no owner and
    // the acquire cannot block.
    std::shared_mutex* stmt = engine_->StatementLatch(table.id);
    std::unique_lock<std::shared_mutex> stmt_lock;
    if (stmt != nullptr) stmt_lock = std::unique_lock<std::shared_mutex>(*stmt);
    Rid rid;
    AEDB_ASSIGN_OR_RETURN(rid, engine_->HeapInsert(txn, table.id, EncodeRow(row)));
    AEDB_RETURN_IF_ERROR(engine_->LockRow(txn, table.id, rid));
    AEDB_RETURN_IF_ERROR(MaintainIndexesOnInsert(table, row, rid, txn));
    if (stmt_lock.owns_lock()) stmt_lock.unlock();
    ++inserted;
  }
  return inserted;
}

Result<int64_t> Executor::Update(const BoundStatement& bound,
                                 const std::vector<Value>& params,
                                 uint64_t txn) {
  const UpdateStmt& upd = *bound.stmt.update;
  const TableDef& table = *bound.table;

  std::vector<std::pair<Rid, std::vector<Value>>> matches;
  AEDB_ASSIGN_OR_RETURN(matches,
                        CollectMatches(bound, upd.where.get(), table, params));

  InputLayout layout;
  layout.table_columns = table.columns.size();
  std::vector<std::pair<int, std::shared_ptr<const es::EsProgram>>>
      set_programs;
  for (const auto& [col_name, expr] : upd.sets) {
    int idx = table.FindColumn(col_name);
    std::shared_ptr<const es::EsProgram> program;
    AEDB_ASSIGN_OR_RETURN(program,
                          CompiledFor(expr.get(), layout, bound.params, true));
    set_programs.emplace_back(idx, std::move(program));
  }

  int64_t updated = 0;
  for (auto& [rid, row] : matches) {
    AEDB_RETURN_IF_ERROR(CheckQueryDeadline());
    AEDB_RETURN_IF_ERROR(CheckWriteShed());
    AEDB_RETURN_IF_ERROR(engine_->LockRow(txn, table.id, rid));
    // The scan ran before the lock was granted: a concurrent transaction may
    // have updated (moved) or deleted the row in the meantime. Re-read under
    // the lock so index maintenance sees the current committed values; a
    // vanished rid is a write-write conflict the caller must retry.
    auto current = FetchRow(table, rid);
    if (!current.ok()) {
      return Status::FailedPrecondition(
          "row changed during lock wait (write-write conflict): " +
          current.status().ToString());
    }
    row = std::move(*current);
    std::vector<Value> inputs = row;
    inputs.insert(inputs.end(), params.begin(), params.end());
    std::vector<Value> new_row = row;
    es::EvalContext ctx;
    ctx.enclave = invoker_;
    es::EsEvaluator evaluator(ctx);
    for (auto& [idx, program] : set_programs) {
      const ColumnDef& col = table.columns[idx];
      std::vector<Value> out;
      AEDB_ASSIGN_OR_RETURN(out, evaluator.Eval(*program, inputs));
      if (col.enc.is_encrypted()) {
        if (!out[0].is_null() && out[0].type() != TypeId::kBinary) {
          return Status::SecurityError("plaintext value for encrypted column " +
                                       col.name);
        }
        new_row[idx] = std::move(out[0]);
      } else {
        AEDB_ASSIGN_OR_RETURN(new_row[idx], Coerce(col.type, out[0]));
      }
      if (!col.nullable && new_row[idx].is_null()) {
        return Status::InvalidArgument("column " + col.name + " is NOT NULL");
      }
    }
    // Delete + insert keeps undo physical (see storage engine docs). The
    // whole move runs under the exclusive statement latch so latched readers
    // see the row before or after, never the index-less middle (LockRow on
    // the fresh rid cannot block: slot ids are never recycled).
    std::shared_mutex* stmt = engine_->StatementLatch(table.id);
    std::unique_lock<std::shared_mutex> stmt_lock;
    if (stmt != nullptr) stmt_lock = std::unique_lock<std::shared_mutex>(*stmt);
    AEDB_RETURN_IF_ERROR(MaintainIndexesOnDelete(table, row, rid, txn));
    AEDB_RETURN_IF_ERROR(engine_->HeapDelete(txn, table.id, rid));
    Rid new_rid;
    AEDB_ASSIGN_OR_RETURN(new_rid,
                          engine_->HeapInsert(txn, table.id, EncodeRow(new_row)));
    AEDB_RETURN_IF_ERROR(engine_->LockRow(txn, table.id, new_rid));
    AEDB_RETURN_IF_ERROR(MaintainIndexesOnInsert(table, new_row, new_rid, txn));
    if (stmt_lock.owns_lock()) stmt_lock.unlock();
    ++updated;
  }
  return updated;
}

Result<int64_t> Executor::Delete(const BoundStatement& bound,
                                 const std::vector<Value>& params,
                                 uint64_t txn) {
  const DeleteStmt& del = *bound.stmt.del;
  const TableDef& table = *bound.table;
  std::vector<std::pair<Rid, std::vector<Value>>> matches;
  AEDB_ASSIGN_OR_RETURN(matches,
                        CollectMatches(bound, del.where.get(), table, params));
  int64_t deleted = 0;
  for (auto& [rid, row] : matches) {
    AEDB_RETURN_IF_ERROR(CheckQueryDeadline());
    AEDB_RETURN_IF_ERROR(CheckWriteShed());
    AEDB_RETURN_IF_ERROR(engine_->LockRow(txn, table.id, rid));
    // Same lock-then-revalidate as Update: the row may have moved or vanished
    // while we waited for the lock.
    auto current = FetchRow(table, rid);
    if (!current.ok()) {
      return Status::FailedPrecondition(
          "row changed during lock wait (write-write conflict): " +
          current.status().ToString());
    }
    row = std::move(*current);
    // Same statement-latch discipline as Update: index deletes and the heap
    // delete are one atomic step for latched readers.
    std::shared_mutex* stmt = engine_->StatementLatch(table.id);
    std::unique_lock<std::shared_mutex> stmt_lock;
    if (stmt != nullptr) stmt_lock = std::unique_lock<std::shared_mutex>(*stmt);
    AEDB_RETURN_IF_ERROR(MaintainIndexesOnDelete(table, row, rid, txn));
    AEDB_RETURN_IF_ERROR(engine_->HeapDelete(txn, table.id, rid));
    if (stmt_lock.owns_lock()) stmt_lock.unlock();
    ++deleted;
  }
  return deleted;
}

Status Executor::BuildIndex(const TableDef& table, const IndexDef& index,
                            uint64_t txn) {
  Status inner = Status::OK();
  engine_->table(table.id)->Scan([&](const Rid& rid, Slice record) {
    auto row = DecodeRow(record, table.columns.size());
    if (!row.ok()) {
      inner = row.status();
      return false;
    }
    Bytes key =
        IndexKeyFor(table.columns[index.column], (*row)[index.column]);
    Status st = engine_->IndexInsert(txn, index.id, key, rid);
    if (!st.ok()) {
      inner = st;
      return false;
    }
    return true;
  });
  return inner;
}

}  // namespace aedb::sql
