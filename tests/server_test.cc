#include <gtest/gtest.h>

#include "client/driver.h"
#include "crypto/drbg.h"
#include "server/database.h"

namespace aedb::server {
namespace {

using client::Driver;
using client::DriverOptions;
using types::EncKind;
using types::TypeId;
using types::Value;

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    vault_ = std::make_unique<keys::InMemoryKeyVault>();
    ASSERT_TRUE(vault_->CreateKey("kv/a", 1024).ok());
    ASSERT_TRUE(registry_.Register(vault_.get()).ok());
    crypto::HmacDrbg drbg(crypto::SecureRandom(48),
                          Slice(std::string_view("server-test")));
    author_key_ = crypto::GenerateRsaKey(1024, &drbg);
    image_ = enclave::EnclaveImage::MakeEsImage(1, author_key_);
    hgs_ = std::make_unique<attestation::HostGuardianService>();
  }

  void StartServer(ServerOptions opts = ServerOptions{}) {
    db_ = std::make_unique<Database>(opts, hgs_.get(), &image_);
    if (db_->platform() != nullptr) {
      hgs_->RegisterTcgLog(db_->platform()->tcg_log());
    }
  }

  std::unique_ptr<Driver> MakeDriver(DriverOptions opts = DriverOptions{}) {
    if (opts.enclave_policy.trusted_author_id.empty()) {
      opts.enclave_policy.trusted_author_id = image_.AuthorId();
    }
    return std::make_unique<Driver>(db_.get(), &registry_,
                                    hgs_->signing_public(), opts);
  }

  void ProvisionSchema(Driver* driver) {
    ASSERT_TRUE(driver->ProvisionCmk("CMK", vault_->name(), "kv/a", true).ok());
    ASSERT_TRUE(driver->ProvisionCek("CEK", "CMK").ok());
    ASSERT_TRUE(driver
                    ->ExecuteDdl(
                        "CREATE TABLE T (id INT, secret VARCHAR(20) ENCRYPTED "
                        "WITH (COLUMN_ENCRYPTION_KEY = CEK, ENCRYPTION_TYPE = "
                        "Randomized, ALGORITHM = "
                        "'AEAD_AES_256_CBC_HMAC_SHA_256'), plain INT)")
                    .ok());
  }

  std::unique_ptr<keys::InMemoryKeyVault> vault_;
  keys::KeyProviderRegistry registry_;
  crypto::RsaPrivateKey author_key_;
  enclave::EnclaveImage image_;
  std::unique_ptr<attestation::HostGuardianService> hgs_;
  std::unique_ptr<Database> db_;
};

TEST_F(ServerTest, DescribeReportsParameterEncryption) {
  StartServer();
  auto driver = MakeDriver();
  ProvisionSchema(driver.get());
  auto describe = db_->DescribeParameterEncryption(
      "SELECT id FROM T WHERE secret = @s AND plain = @p", Slice());
  ASSERT_TRUE(describe.ok()) << describe.status().ToString();
  ASSERT_EQ(describe->params.size(), 2u);
  EXPECT_EQ(describe->params[0].name, "s");
  EXPECT_TRUE(describe->params[0].enc.is_encrypted());
  EXPECT_EQ(describe->params[0].enc.kind, EncKind::kRandomized);
  EXPECT_EQ(describe->params[0].type, TypeId::kString);
  EXPECT_FALSE(describe->params[1].enc.is_encrypted());
  EXPECT_TRUE(describe->requires_enclave);
  ASSERT_EQ(describe->keys.size(), 1u);
  EXPECT_EQ(describe->keys[0].cmk.name, "CMK");
  // No client DH key supplied: no attestation material.
  EXPECT_FALSE(describe->attestation_included);
}

TEST_F(ServerTest, DescribeIncludesAttestationWhenDhSupplied) {
  StartServer();
  auto driver = MakeDriver();
  ProvisionSchema(driver.get());
  crypto::HmacDrbg drbg(crypto::SecureRandom(48), Slice(std::string_view("x")));
  auto dh = crypto::GenerateDhKeyPair(&drbg);
  auto describe = db_->DescribeParameterEncryption(
      "SELECT id FROM T WHERE secret = @s", crypto::DhPublicKeyBytes(dh));
  ASSERT_TRUE(describe.ok());
  EXPECT_TRUE(describe->attestation_included);
  EXPECT_GT(describe->attestation.session_id, 0u);
}

TEST_F(ServerTest, ForcedEncryptionDefeatsLyingServer) {
  StartServer();
  auto setup = MakeDriver();
  ProvisionSchema(setup.get());
  // The application knows "plain" holds sensitive data and forces it; the
  // server (honestly) describes it as plaintext -> the driver fails closed.
  DriverOptions opts;
  opts.force_encrypted_params = {"p"};
  auto driver = MakeDriver(opts);
  auto r = driver->Query("SELECT id FROM T WHERE plain = @p",
                         {{"p", Value::Int32(1)}});
  EXPECT_TRUE(r.status().IsSecurityError()) << r.status().ToString();
}

TEST_F(ServerTest, UntrustedKeyPathRejected) {
  StartServer();
  auto setup = MakeDriver();
  ProvisionSchema(setup.get());
  DriverOptions opts;
  opts.trusted_key_paths = {"kv/some-other-path"};
  auto driver = MakeDriver(opts);
  auto r = driver->Query("INSERT INTO T (id, secret, plain) VALUES (@i, @s, @p)",
                         {{"i", Value::Int32(1)},
                          {"s", Value::String("x")},
                          {"p", Value::Int32(1)}});
  EXPECT_TRUE(r.status().IsSecurityError()) << r.status().ToString();
}

TEST_F(ServerTest, ExecuteNamedValidatesParameters) {
  StartServer();
  auto driver = MakeDriver();
  ProvisionSchema(driver.get());
  EXPECT_FALSE(db_->ExecuteNamed("SELECT id FROM T WHERE plain = @p",
                                 {{"nope", Value::Int32(1)}})
                   .ok());
  EXPECT_FALSE(db_->ExecuteNamed("SELECT id FROM T WHERE plain = @p", {}).ok());
}

TEST_F(ServerTest, DdlAndDmlEntryPointsAreDistinct) {
  StartServer();
  auto driver = MakeDriver();
  ProvisionSchema(driver.get());
  EXPECT_FALSE(db_->ExecuteDdl("SELECT id FROM T WHERE plain = 1").ok());
  EXPECT_FALSE(db_->Execute("CREATE TABLE X (a INT)", {}).ok());
}

TEST_F(ServerTest, PlanCacheAvoidsRebinding) {
  StartServer();
  auto driver = MakeDriver();
  ProvisionSchema(driver.get());
  for (int i = 0; i < 3; ++i) {
    auto r = db_->ExecuteNamed("SELECT id FROM T WHERE plain = @p",
                               {{"p", Value::Int32(i)}});
    ASSERT_TRUE(r.ok());
  }
  // Only sp_describe counts round trips; straight execution should not call
  // the describe path at all.
  EXPECT_EQ(db_->describe_calls(), 0u);
}

TEST_F(ServerTest, WorkerPoolModeServesEnclaveQueries) {
  ServerOptions opts;
  opts.enclave_worker_threads = 2;
  StartServer(opts);
  auto driver = MakeDriver();
  ProvisionSchema(driver.get());
  auto ins = driver->Query("INSERT INTO T (id, secret, plain) VALUES (@i, @s, @p)",
                           {{"i", Value::Int32(1)},
                            {"s", Value::String("topsecret")},
                            {"p", Value::Int32(7)}});
  ASSERT_TRUE(ins.ok()) << ins.status().ToString();
  auto r = driver->Query("SELECT id FROM T WHERE secret = @s",
                         {{"s", Value::String("topsecret")}});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows.size(), 1u);
}

TEST_F(ServerTest, RestartDropsSessionsAndDriverRecovers) {
  StartServer();
  auto driver = MakeDriver();
  ProvisionSchema(driver.get());
  auto ins = driver->Query("INSERT INTO T (id, secret, plain) VALUES (@i, @s, @p)",
                           {{"i", Value::Int32(1)},
                            {"s", Value::String("hideme")},
                            {"p", Value::Int32(7)}});
  ASSERT_TRUE(ins.ok());
  auto q1 = driver->Query("SELECT id FROM T WHERE secret = @s",
                          {{"s", Value::String("hideme")}});
  ASSERT_TRUE(q1.ok());
  uint64_t old_session = driver->session_id();

  auto recovery = db_->Restart();
  ASSERT_TRUE(recovery.ok());
  // The driver transparently re-attests and re-installs keys.
  auto q2 = driver->Query("SELECT id FROM T WHERE secret = @s",
                          {{"s", Value::String("hideme")}});
  ASSERT_TRUE(q2.ok()) << q2.status().ToString();
  EXPECT_EQ(q2->rows.size(), 1u);
  EXPECT_NE(driver->session_id(), old_session);
}

TEST_F(ServerTest, InvalidatedIndexFallsBackToScan) {
  StartServer();
  auto driver = MakeDriver();
  ProvisionSchema(driver.get());
  ASSERT_TRUE(driver->ExecuteDdl("CREATE INDEX idx_p ON T (plain)").ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(driver
                    ->Query("INSERT INTO T (id, secret, plain) VALUES "
                            "(@i, @s, @p)",
                            {{"i", Value::Int32(i)},
                             {"s", Value::String("v" + std::to_string(i))},
                             {"p", Value::Int32(i % 3)}})
                    .ok());
  }
  ASSERT_TRUE(db_->InvalidateIndexByName("idx_p").ok());
  // Index unusable, but scans still answer correctly.
  auto r = driver->Query("SELECT COUNT(*) FROM T WHERE plain = @p",
                         {{"p", Value::Int32(1)}});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows[0][0].i64(), 3);
}

TEST_F(ServerTest, ForwardingToUnknownSessionFails) {
  StartServer();
  EXPECT_FALSE(db_->ForwardKeysToEnclave(999, 0, Bytes{1, 2, 3}).ok());
  EXPECT_FALSE(db_->ForwardEncryptionAuthorization(999, 0, Bytes{1}).ok());
}

TEST_F(ServerTest, GetKeyDescriptionUnknownId) {
  StartServer();
  EXPECT_TRUE(db_->GetKeyDescription(42).status().IsNotFound());
}

TEST_F(ServerTest, TdsCaptureShowsMetadataNotValues) {
  ServerOptions opts;
  opts.capture_tds = true;
  StartServer(opts);
  auto driver = MakeDriver();
  ProvisionSchema(driver.get());
  auto ins = driver->Query("INSERT INTO T (id, secret, plain) VALUES (@i, @s, @p)",
                           {{"i", Value::Int32(1)},
                            {"s", Value::String("THE-SECRET-VALUE")},
                            {"p", Value::Int32(7)}});
  ASSERT_TRUE(ins.ok());
  std::string_view wire(
      reinterpret_cast<const char*>(db_->tds_capture().last_request.data()),
      db_->tds_capture().last_request.size());
  // Metadata (the statement text) is visible — AE does not hide metadata
  // (paper §3.2) — but the parameter value crossed encrypted.
  EXPECT_NE(wire.find("INSERT INTO T"), std::string_view::npos);
  EXPECT_EQ(wire.find("THE-SECRET-VALUE"), std::string_view::npos);
}

TEST_F(ServerTest, WrongBootConfigurationFailsAttestation) {
  ServerOptions opts;
  opts.boot_configuration = "rootkitted-boot-chain";
  // HGS never whitelisted this configuration.
  db_ = std::make_unique<Database>(opts, hgs_.get(), &image_);
  auto driver = MakeDriver();
  ASSERT_TRUE(driver->ProvisionCmk("CMK", vault_->name(), "kv/a", true).ok());
  ASSERT_TRUE(driver->ProvisionCek("CEK", "CMK").ok());
  ASSERT_TRUE(driver
                  ->ExecuteDdl(
                      "CREATE TABLE T (id INT, secret INT ENCRYPTED WITH ("
                      "COLUMN_ENCRYPTION_KEY = CEK, ENCRYPTION_TYPE = "
                      "Randomized, ALGORITHM = "
                      "'AEAD_AES_256_CBC_HMAC_SHA_256'))")
                  .ok());
  auto r = driver->Query("SELECT id FROM T WHERE secret = @s",
                         {{"s", Value::Int32(1)}});
  EXPECT_TRUE(r.status().IsSecurityError()) << r.status().ToString();
}

TEST_F(ServerTest, NoEnclaveServerRejectsEnclaveQueries) {
  ServerOptions opts;
  opts.enable_enclave = false;
  StartServer(opts);
  auto driver = MakeDriver();
  ASSERT_TRUE(driver->ProvisionCmk("CMK", vault_->name(), "kv/a", true).ok());
  ASSERT_TRUE(driver->ProvisionCek("CEK", "CMK").ok());
  ASSERT_TRUE(driver
                  ->ExecuteDdl(
                      "CREATE TABLE T (id INT, secret INT ENCRYPTED WITH ("
                      "COLUMN_ENCRYPTION_KEY = CEK, ENCRYPTION_TYPE = "
                      "Randomized, ALGORITHM = "
                      "'AEAD_AES_256_CBC_HMAC_SHA_256'))")
                  .ok());
  auto r = driver->Query("SELECT id FROM T WHERE secret = @s",
                         {{"s", Value::Int32(1)}});
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace aedb::server
