#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"

namespace aedb {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, CarriesCodeAndMessage) {
  Status s = Status::SecurityError("mac mismatch");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsSecurityError());
  EXPECT_EQ(s.ToString(), "SecurityError: mac mismatch");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kTypeCheckError); ++c) {
    EXPECT_NE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(0), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(7), 7);
}

Result<int> Doubler(Result<int> in) {
  int v;
  AEDB_ASSIGN_OR_RETURN(v, in);
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubler(21), 42);
  EXPECT_TRUE(Doubler(Status::Internal("x")).status().code() ==
              StatusCode::kInternal);
}

TEST(BytesTest, HexRoundTrip) {
  Bytes b = {0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(HexEncode(b), "0001abff");
  auto back = HexDecode("0001abff");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, b);
}

TEST(BytesTest, HexDecodeAccepts0xPrefixAndUppercase) {
  auto r = HexDecode("0xAB01");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (Bytes{0xab, 0x01}));
}

TEST(BytesTest, HexDecodeRejectsBadInput) {
  EXPECT_FALSE(HexDecode("abc").ok());
  EXPECT_FALSE(HexDecode("zz").ok());
}

TEST(BytesTest, SliceCompareIsMemcmpOrder) {
  Bytes a = {1, 2, 3};
  Bytes b = {1, 2, 4};
  Bytes c = {1, 2};
  EXPECT_LT(Slice(a).compare(b), 0);
  EXPECT_GT(Slice(b).compare(a), 0);
  EXPECT_GT(Slice(a).compare(c), 0);
  EXPECT_EQ(Slice(a).compare(a), 0);
}

TEST(BytesTest, ConstantTimeEquals) {
  Bytes a = {1, 2, 3};
  Bytes b = {1, 2, 3};
  Bytes c = {1, 2, 4};
  Bytes d = {1, 2};
  EXPECT_TRUE(ConstantTimeEquals(a, b));
  EXPECT_FALSE(ConstantTimeEquals(a, c));
  EXPECT_FALSE(ConstantTimeEquals(a, d));
}

TEST(BytesTest, VarintCodecRoundTrip) {
  Bytes buf;
  PutU16(&buf, 0xbeef);
  PutU32(&buf, 0xdeadbeef);
  PutU64(&buf, 0x0123456789abcdefULL);
  PutLengthPrefixed(&buf, Slice(std::string_view("hello")));

  size_t off = 0;
  EXPECT_EQ(*GetU16(buf, &off), 0xbeef);
  EXPECT_EQ(*GetU32(buf, &off), 0xdeadbeefu);
  EXPECT_EQ(*GetU64(buf, &off), 0x0123456789abcdefULL);
  auto s = GetLengthPrefixed(buf, &off);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(Slice(*s).ToString(), "hello");
  EXPECT_EQ(off, buf.size());
}

TEST(BytesTest, DecodePastEndFails) {
  Bytes buf = {1, 2};
  size_t off = 0;
  EXPECT_FALSE(GetU32(buf, &off).ok());
  // Length prefix claiming more bytes than available.
  Bytes bad;
  PutU32(&bad, 100);
  off = 0;
  EXPECT_FALSE(GetLengthPrefixed(bad, &off).ok());
}

TEST(BytesTest, Utf16Le) {
  Bytes b = Utf16LeBytes("AB");
  EXPECT_EQ(b, (Bytes{0x41, 0x00, 0x42, 0x00}));
}

TEST(RandomTest, UniformIsInRange) {
  Xoshiro256 rng(42);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(5, 10);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 10);
  }
}

TEST(RandomTest, NURandIsInRange) {
  Xoshiro256 rng(42);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NURand(255, 0, 999, 123);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 999);
  }
}

TEST(RandomTest, DeterministicForSeed) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

}  // namespace
}  // namespace aedb
